// End-to-end verifiable time-window queries: chain building, SP query
// processing, light-node verification, and result correctness against a
// brute-force oracle — typed over all four accumulator engines and swept
// over the three index modes.

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/vchain.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::LightClient;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

AccParams TestParams() {
  AccParams p;
  p.universe_bits = 16;
  return p;
}

template <typename Engine>
Engine MakeEngine() {
  auto oracle = KeyOracle::Create(/*seed=*/2024, TestParams());
  if constexpr (std::is_same_v<Engine, accum::Acc1Engine> ||
                std::is_same_v<Engine, accum::Acc2Engine>) {
    // Trusted digest path keeps test chains fast; bytes are identical to the
    // honest path (covered by ProverModeTest).
    return Engine(oracle, accum::ProverMode::kTrustedFast);
  } else {
    return Engine(oracle);
  }
}

/// Deterministic small workload: 2-d points with car-themed keywords.
std::vector<Object> MakeObjects(Rng* rng, uint64_t base_id, size_t count,
                                const NumericSchema& schema) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  std::vector<Object> objects;
  for (size_t i = 0; i < count; ++i) {
    Object o;
    o.id = base_id + i;
    o.numeric = {rng->Below(schema.DomainSize()),
                 rng->Below(schema.DomainSize())};
    o.keywords = {kTypes[rng->Below(3)], kMakes[rng->Below(4)]};
    objects.push_back(std::move(o));
  }
  return objects;
}

template <typename Engine>
struct Fixture {
  Fixture(IndexMode mode, size_t num_blocks, size_t objects_per_block,
          uint64_t seed)
      : engine(MakeEngine<Engine>()), config(), builder_storage() {
    config.mode = mode;
    config.schema = NumericSchema{2, 8};
    config.skiplist_size = 3;
    builder_storage =
        std::make_unique<ChainBuilder<Engine>>(engine, config);
    Rng rng(seed);
    uint64_t id = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      auto objs = MakeObjects(&rng, id, objects_per_block, config.schema);
      uint64_t ts = kBaseTime + b * kTimeStep;
      for (Object& o : objs) o.timestamp = ts;
      id += objs.size();
      auto st = builder_storage->AppendBlock(std::move(objs), ts);
      EXPECT_TRUE(st.ok()) << st.status().ToString();
      all_objects_per_block.push_back(builder_storage->blocks()[b].objects);
    }
    EXPECT_TRUE(builder_storage->SyncLightClient(&light).ok());
  }

  std::vector<Object> BruteForce(const Query& q) const {
    std::vector<Object> out;
    for (const auto& blk : all_objects_per_block) {
      for (const Object& o : blk) {
        if (LocalMatch(o, q, config.schema)) out.push_back(o);
      }
    }
    return out;
  }

  Engine engine;
  ChainConfig config;
  std::unique_ptr<ChainBuilder<Engine>> builder_storage;
  LightClient light;
  std::vector<std::vector<Object>> all_objects_per_block;
};

Query CarQuery(uint64_t ts, uint64_t te) {
  Query q;
  q.time_start = ts;
  q.time_end = te;
  q.ranges = {{0, 10, 120}, {1, 0, 200}};
  q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
  return q;
}

template <typename Engine>
class TimeWindowTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(TimeWindowTest, AllEngines);

template <typename Engine>
void RunRoundTrip(IndexMode mode, size_t blocks, size_t per_block,
                  uint64_t seed) {
  Fixture<Engine> fx(mode, blocks, per_block, seed);
  store::VectorBlockSource<Engine> source(&fx.builder_storage->blocks());
  QueryProcessor<Engine> sp(fx.engine, fx.config, &source);
  Verifier<Engine> verifier(fx.engine, fx.config, &fx.light);

  Query q = CarQuery(kBaseTime, kBaseTime + (blocks - 1) * kTimeStep);
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  Status st = verifier.VerifyTimeWindow(q, resp.value());
  EXPECT_TRUE(st.ok()) << st.ToString();

  // Result correctness vs brute force. Mapped collisions could only ever
  // *add* objects; with these tiny vocabularies they do not occur, so expect
  // exact equality of id sets.
  auto expected = fx.BruteForce(q);
  std::vector<uint64_t> got_ids, want_ids;
  for (const Object& o : resp.value().objects) got_ids.push_back(o.id);
  for (const Object& o : expected) want_ids.push_back(o.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
}

TYPED_TEST(TimeWindowTest, NilModeRoundTrip) {
  RunRoundTrip<TypeParam>(IndexMode::kNil, 4, 6, 1);
}

TYPED_TEST(TimeWindowTest, IntraModeRoundTrip) {
  RunRoundTrip<TypeParam>(IndexMode::kIntra, 4, 6, 2);
}

TYPED_TEST(TimeWindowTest, BothModeRoundTrip) {
  RunRoundTrip<TypeParam>(IndexMode::kBoth, 12, 4, 3);
}

TYPED_TEST(TimeWindowTest, PartialWindow) {
  Fixture<TypeParam> fx(IndexMode::kIntra, 6, 4, 4);
  store::VectorBlockSource<TypeParam> source(&fx.builder_storage->blocks());
  QueryProcessor<TypeParam> sp(fx.engine, fx.config, &source);
  Verifier<TypeParam> verifier(fx.engine, fx.config, &fx.light);
  // Blocks 2..4 only.
  Query q = CarQuery(kBaseTime + 2 * kTimeStep, kBaseTime + 4 * kTimeStep);
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
  for (const Object& o : resp.value().objects) {
    EXPECT_GE(o.timestamp, q.time_start);
    EXPECT_LE(o.timestamp, q.time_end);
  }
}

TYPED_TEST(TimeWindowTest, EmptyWindow) {
  Fixture<TypeParam> fx(IndexMode::kIntra, 3, 4, 5);
  store::VectorBlockSource<TypeParam> source(&fx.builder_storage->blocks());
  QueryProcessor<TypeParam> sp(fx.engine, fx.config, &source);
  Verifier<TypeParam> verifier(fx.engine, fx.config, &fx.light);
  Query q = CarQuery(1, 2);  // before genesis
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().objects.empty());
  EXPECT_TRUE(resp.value().vo.steps.empty());
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
}

TYPED_TEST(TimeWindowTest, SelectiveQueryReturnsNothingButVerifies) {
  Fixture<TypeParam> fx(IndexMode::kBoth, 12, 4, 6);
  store::VectorBlockSource<TypeParam> source(&fx.builder_storage->blocks());
  QueryProcessor<TypeParam> sp(fx.engine, fx.config, &source);
  Verifier<TypeParam> verifier(fx.engine, fx.config, &fx.light);
  Query q;
  q.time_start = kBaseTime;
  q.time_end = kBaseTime + 11 * kTimeStep;
  q.keyword_cnf = {{"Hovercraft"}};  // matches nothing
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().objects.empty());
  Status st = verifier.VerifyTimeWindow(q, resp.value());
  EXPECT_TRUE(st.ok()) << st.ToString();
  // With the skip list, the walk should use skips: fewer block steps than
  // blocks in the window.
  size_t block_steps = 0, skip_steps = 0;
  for (const auto& step : resp.value().vo.steps) {
    if (std::holds_alternative<BlockVO<TypeParam>>(step)) {
      ++block_steps;
    } else {
      ++skip_steps;
    }
  }
  EXPECT_GT(skip_steps, 0u);
  EXPECT_LT(block_steps, 12u);
}

TYPED_TEST(TimeWindowTest, VoSerdeRoundTripVerifies) {
  Fixture<TypeParam> fx(IndexMode::kBoth, 8, 4, 7);
  store::VectorBlockSource<TypeParam> source(&fx.builder_storage->blocks());
  QueryProcessor<TypeParam> sp(fx.engine, fx.config, &source);
  Verifier<TypeParam> verifier(fx.engine, fx.config, &fx.light);
  Query q = CarQuery(kBaseTime, kBaseTime + 7 * kTimeStep);
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());

  ByteWriter w;
  SerializeResponse(fx.engine, resp.value(), &w);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  QueryResponse<TypeParam> back;
  ASSERT_TRUE(DeserializeResponse(fx.engine, &r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, back).ok());
  EXPECT_GT(VoByteSize(fx.engine, back.vo), 0u);
}

TYPED_TEST(TimeWindowTest, RangeOnlyAndKeywordOnlyQueries) {
  Fixture<TypeParam> fx(IndexMode::kIntra, 4, 5, 8);
  store::VectorBlockSource<TypeParam> source(&fx.builder_storage->blocks());
  QueryProcessor<TypeParam> sp(fx.engine, fx.config, &source);
  Verifier<TypeParam> verifier(fx.engine, fx.config, &fx.light);
  Query range_only;
  range_only.time_start = kBaseTime;
  range_only.time_end = kBaseTime + 3 * kTimeStep;
  range_only.ranges = {{0, 0, 50}};
  auto r1 = sp.TimeWindowQuery(range_only);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(verifier.VerifyTimeWindow(range_only, r1.value()).ok());

  Query kw_only;
  kw_only.time_start = kBaseTime;
  kw_only.time_end = kBaseTime + 3 * kTimeStep;
  kw_only.keyword_cnf = {{"Van", "SUV"}};
  auto r2 = sp.TimeWindowQuery(kw_only);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(verifier.VerifyTimeWindow(kw_only, r2.value()).ok());
  auto expected = fx.BruteForce(kw_only);
  EXPECT_EQ(r2.value().objects.size(), expected.size());
}

}  // namespace
}  // namespace vchain::core

// The timestamp -> height index must agree with a brute-force linear scan on
// every window shape (inclusive bounds, duplicates, empty windows), and the
// query processor must produce identical responses whether it binary-searches
// the builder's index or the block vector directly.

#include "core/timestamp_index.h"

#include <gtest/gtest.h>

#include "accum/mock.h"
#include "common/rand.h"
#include "core/vchain.h"
#include "workload/datasets.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using workload::DatasetGenerator;
using workload::DatasetProfile;

std::optional<std::pair<uint64_t, uint64_t>> LinearScan(
    const std::vector<uint64_t>& ts_col, uint64_t ts, uint64_t te) {
  std::optional<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t h = 0; h < ts_col.size(); ++h) {
    uint64_t t = ts_col[h];
    if (t < ts || t > te) continue;
    if (!out) {
      out = {h, h};
    } else {
      out->second = h;
    }
  }
  return out;
}

TEST(TimestampIndexTest, MatchesLinearScanWithDuplicates) {
  // Runs of duplicate timestamps and gaps between runs.
  std::vector<uint64_t> ts_col;
  TimestampIndex index;
  Rng rng(77);
  uint64_t t = 100;
  for (int i = 0; i < 60; ++i) {
    if (i % 3 == 0) t += rng.Next() % 20;  // duplicates inside each run of 3
    ts_col.push_back(t);
    index.Append(t);
  }
  ASSERT_EQ(index.size(), ts_col.size());

  for (int round = 0; round < 500; ++round) {
    uint64_t a = 90 + rng.Next() % 400;
    uint64_t b = 90 + rng.Next() % 400;
    EXPECT_EQ(index.HeightRange(a, b), LinearScan(ts_col, a, b))
        << "ts=" << a << " te=" << b;
  }
  // Degenerate shapes.
  EXPECT_EQ(index.HeightRange(0, 99), LinearScan(ts_col, 0, 99));
  EXPECT_EQ(index.HeightRange(ts_col.back() + 1, ~uint64_t{0}),
            LinearScan(ts_col, ts_col.back() + 1, ~uint64_t{0}));
  EXPECT_EQ(index.HeightRange(ts_col[0], ts_col[0]),
            LinearScan(ts_col, ts_col[0], ts_col[0]));
  EXPECT_FALSE(index.HeightRange(50, 40).has_value());  // inverted window
}

TEST(TimestampIndexTest, EmptyIndex) {
  TimestampIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.HeightRange(0, ~uint64_t{0}).has_value());
}

TEST(TimestampIndexTest, ProcessorEquivalentWithAndWithoutIndex) {
  auto oracle = KeyOracle::Create(/*seed=*/4, AccParams{16});
  accum::MockAcc2Engine engine(oracle);
  DatasetProfile profile = workload::Profile4SQ(5);
  ChainConfig cfg;
  cfg.mode = IndexMode::kBoth;
  cfg.schema = profile.schema;
  cfg.skiplist_size = 2;

  ChainBuilder<accum::MockAcc2Engine> miner(engine, cfg);
  DatasetGenerator gen(profile, /*seed=*/11);
  // Duplicate timestamps in runs of two.
  for (int b = 0; b < 24; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = 1000 + static_cast<uint64_t>(b / 2) * 10;
    ASSERT_TRUE(miner.AppendBlock(std::move(objs), ts).ok());
  }
  ASSERT_EQ(miner.timestamp_index().size(), miner.blocks().size());

  store::VectorBlockSource<accum::MockAcc2Engine> source(&miner.blocks());
  QueryProcessor<accum::MockAcc2Engine> sp_indexed(
      engine, cfg, &source, &miner.timestamp_index());
  QueryProcessor<accum::MockAcc2Engine> sp_direct(engine, cfg, &source);

  chain::LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  Verifier<accum::MockAcc2Engine> verifier(engine, cfg, &light);

  // Windows hitting duplicate-run boundaries, partial windows, and misses.
  struct Window {
    uint64_t ts, te;
  };
  std::vector<Window> windows = {
      {1000, 1110}, {1005, 1052}, {1010, 1010}, {0, 999},
      {1111, 2000}, {1030, 1070}, {1000, 1000},
  };
  for (const Window& w : windows) {
    Query q = gen.MakeDefaultQuery(w.ts, w.te);
    auto a = sp_indexed.TimeWindowQuery(q);
    auto b = sp_direct.TimeWindowQuery(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ByteWriter wa, wb;
    SerializeResponse(engine, a.value(), &wa);
    SerializeResponse(engine, b.value(), &wb);
    EXPECT_EQ(wa.bytes(), wb.bytes()) << "window [" << w.ts << "," << w.te
                                      << "]";
    if (!a.value().vo.steps.empty()) {
      EXPECT_TRUE(verifier.VerifyTimeWindow(q, a.value()).ok());
    }
  }
}

}  // namespace
}  // namespace vchain::core

// The multi-threaded proof-resolution pass must produce byte-identical VOs
// to the single-threaded walk, verify cleanly, and actually run the jobs.

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/vchain.h"
#include "workload/datasets.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using workload::DatasetGenerator;
using workload::DatasetProfile;

template <typename Engine>
void RunParallelEquivalence() {
  auto oracle = KeyOracle::Create(/*seed=*/6, AccParams{16});
  Engine engine(oracle);
  DatasetProfile profile = workload::Profile4SQ(6);
  ChainConfig serial_cfg;
  serial_cfg.mode = IndexMode::kBoth;
  serial_cfg.schema = profile.schema;
  serial_cfg.skiplist_size = 2;
  ChainConfig parallel_cfg = serial_cfg;
  parallel_cfg.num_prover_threads = 4;

  ChainBuilder<Engine> miner(engine, serial_cfg);
  DatasetGenerator gen(profile, /*seed=*/8);
  for (int b = 0; b < 10; ++b) {
    auto objs = gen.NextBlock();
    ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  }
  chain::LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());

  store::VectorBlockSource<Engine> source(&miner.blocks());
  QueryProcessor<Engine> serial_sp(engine, serial_cfg, &source);
  QueryProcessor<Engine> parallel_sp(engine, parallel_cfg, &source);
  Verifier<Engine> verifier(engine, serial_cfg, &light);

  for (int round = 0; round < 4; ++round) {
    Query q = gen.MakeQuery(0.1 + 0.1 * round, 3, gen.TimestampOfBlock(0),
                            gen.TimestampOfBlock(9));
    auto a = serial_sp.TimeWindowQuery(q);
    auto b = parallel_sp.TimeWindowQuery(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ByteWriter wa, wb;
    SerializeResponse(engine, a.value(), &wa);
    SerializeResponse(engine, b.value(), &wb);
    EXPECT_EQ(wa.bytes(), wb.bytes()) << "round " << round;
    EXPECT_TRUE(verifier.VerifyTimeWindow(q, b.value()).ok());
  }
}

TEST(ParallelProverTest, MockAcc1ByteIdentical) {
  RunParallelEquivalence<accum::MockAcc1Engine>();
}

TEST(ParallelProverTest, Bn254Acc1ByteIdentical) {
  RunParallelEquivalence<accum::Acc1Engine>();
}

TEST(ParallelProverTest, AggregatingEngineUnaffected) {
  // acc2 uses the aggregation path; the thread option must be a no-op.
  auto oracle = KeyOracle::Create(/*seed=*/6, AccParams{16});
  accum::MockAcc2Engine engine(oracle);
  DatasetProfile profile = workload::ProfileETH(4);
  ChainConfig cfg;
  cfg.mode = IndexMode::kIntra;
  cfg.schema = profile.schema;
  cfg.num_prover_threads = 8;
  ChainBuilder<accum::MockAcc2Engine> miner(engine, cfg);
  DatasetGenerator gen(profile, 9);
  for (int b = 0; b < 5; ++b) {
    auto objs = gen.NextBlock();
    ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  }
  chain::LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  store::VectorBlockSource<accum::MockAcc2Engine> source(&miner.blocks());
  QueryProcessor<accum::MockAcc2Engine> sp(engine, cfg, &source);
  Verifier<accum::MockAcc2Engine> verifier(engine, cfg, &light);
  Query q = gen.MakeDefaultQuery(gen.TimestampOfBlock(0),
                                 gen.TimestampOfBlock(4));
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
}

}  // namespace
}  // namespace vchain::core

// LRU bounding of the SP's disjointness-proof cache: capacity is enforced,
// recency is refreshed by hits, evictions are counted, and capacity 0 keeps
// the old unbounded behavior.

#include <gtest/gtest.h>

#include "accum/mock.h"
#include "core/proof_cache.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using accum::MockAcc2Engine;
using accum::Multiset;

MockAcc2Engine MakeEngine() {
  AccParams params;
  params.universe_bits = 16;
  return MockAcc2Engine(KeyOracle::Create(/*seed=*/99, params));
}

/// Distinct disjoint (w, clause) pairs: w = {2k}, clause = {2k+1}.
Multiset W(uint64_t k) { return Multiset{2 * k + 2}; }
Multiset Clause(uint64_t k) { return Multiset{2 * k + 3}; }

TEST(ProofCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  MockAcc2Engine engine = MakeEngine();
  ProofCache<MockAcc2Engine> cache(/*capacity=*/2);

  auto prove = [&](uint64_t k) {
    auto proof = cache.GetOrProve(engine, engine.Digest(W(k)), W(k), Clause(k));
    ASSERT_TRUE(proof.ok());
  };

  prove(0);  // miss -> {0}
  prove(1);  // miss -> {1, 0}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  prove(0);  // hit, refreshes 0 -> {0, 1}
  EXPECT_EQ(cache.stats().hits, 1u);

  prove(2);  // miss, evicts 1 (LRU after the refresh) -> {2, 0}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // 0 survived thanks to the refresh; 1 was evicted.
  auto key0 = ProofCache<MockAcc2Engine>::KeyFor(engine, engine.Digest(W(0)),
                                                 Clause(0));
  auto key1 = ProofCache<MockAcc2Engine>::KeyFor(engine, engine.Digest(W(1)),
                                                 Clause(1));
  MockAcc2Engine::Proof out;
  EXPECT_TRUE(cache.Lookup(key0, &out));
  EXPECT_FALSE(cache.Lookup(key1, &out));
}

TEST(ProofCacheTest, ReprovingAfterEvictionStillReturnsIdenticalProof) {
  MockAcc2Engine engine = MakeEngine();
  ProofCache<MockAcc2Engine> cache(/*capacity=*/1);
  auto first = cache.GetOrProve(engine, engine.Digest(W(0)), W(0), Clause(0));
  ASSERT_TRUE(first.ok());
  auto evictor = cache.GetOrProve(engine, engine.Digest(W(1)), W(1), Clause(1));
  ASSERT_TRUE(evictor.ok());
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Proofs are deterministic: eviction affects cost, never bytes.
  auto again = cache.GetOrProve(engine, engine.Digest(W(0)), W(0), Clause(0));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), first.value());
}

TEST(ProofCacheTest, ZeroCapacityMeansUnbounded) {
  MockAcc2Engine engine = MakeEngine();
  ProofCache<MockAcc2Engine> cache(/*capacity=*/0);
  for (uint64_t k = 0; k < 100; ++k) {
    auto proof = cache.GetOrProve(engine, engine.Digest(W(k)), W(k), Clause(k));
    ASSERT_TRUE(proof.ok());
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ProofCacheTest, InsertRefreshesExistingEntryWithoutGrowth) {
  MockAcc2Engine engine = MakeEngine();
  ProofCache<MockAcc2Engine> cache(/*capacity=*/2);
  auto d0 = engine.Digest(W(0));
  auto key0 = ProofCache<MockAcc2Engine>::KeyFor(engine, d0, Clause(0));
  auto proof = engine.ProveDisjoint(W(0), Clause(0));
  ASSERT_TRUE(proof.ok());
  cache.Insert(key0, proof.value());
  cache.Insert(key0, proof.value());
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace vchain::core

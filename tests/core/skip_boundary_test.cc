// Regression tests for the skip-walk window boundary (Algorithm 4): a skip
// whose coverage ends exactly on the window start must be taken, terminate
// the walk cleanly (including the height-0 unsigned wrap-around), and still
// yield a verifiable VO. A query whose clause matches nothing forces every
// block to mismatch, so the walk consumes the largest legal skips.

#include <gtest/gtest.h>

#include "accum/mock.h"
#include "core/vchain.h"
#include "workload/datasets.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using workload::DatasetGenerator;
using workload::DatasetProfile;

template <typename Engine>
struct Fixture {
  Fixture()
      : oracle(KeyOracle::Create(/*seed=*/21, AccParams{16})),
        engine(oracle),
        profile(workload::Profile4SQ(4)) {
    cfg.mode = IndexMode::kBoth;
    cfg.schema = profile.schema;
    cfg.skiplist_size = 2;  // skip distances 4 and 8
    miner = std::make_unique<ChainBuilder<Engine>>(engine, cfg);
    DatasetGenerator gen(profile, /*seed=*/5);
    for (int b = 0; b < 16; ++b) {
      auto objs = gen.NextBlock();
      EXPECT_TRUE(
          miner->AppendBlock(std::move(objs), 1000 + static_cast<uint64_t>(b))
              .ok());
    }
    EXPECT_TRUE(miner->SyncLightClient(&light).ok());
  }

  /// A query over heights [first, last] that no object satisfies.
  Query NoMatchQuery(uint64_t first, uint64_t last) const {
    Query q;
    q.time_start = 1000 + first;
    q.time_end = 1000 + last;
    q.keyword_cnf = {{"__no_such_keyword__"}};
    return q;
  }

  std::shared_ptr<KeyOracle> oracle;
  Engine engine;
  DatasetProfile profile;
  ChainConfig cfg;
  std::unique_ptr<ChainBuilder<Engine>> miner;
  chain::LightClient light;
};

template <typename Engine>
void RunBoundaryCases() {
  Fixture<Engine> fx;
  store::VectorBlockSource<Engine> source(&fx.miner->blocks());
  QueryProcessor<Engine> sp(fx.engine, fx.cfg, &source,
                            &fx.miner->timestamp_index());
  Verifier<Engine> verifier(fx.engine, fx.cfg, &fx.light);

  // Case 1: skip lands exactly on the window start. Window [8, 12]: block 12
  // is processed, its distance-4 skip covers [8, 11] — precisely down to the
  // window start — and the walk must stop there.
  {
    Query q = fx.NoMatchQuery(8, 12);
    auto resp = sp.TimeWindowQuery(q);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().objects.empty());
    size_t blocks = 0, skips = 0;
    for (const auto& step : resp.value().vo.steps) {
      std::holds_alternative<BlockVO<Engine>>(step) ? ++blocks : ++skips;
    }
    EXPECT_EQ(blocks, 1u) << "only the newest block should be processed";
    EXPECT_EQ(skips, 1u) << "the distance-4 skip should cover the rest";
    EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
  }

  // Case 2: window starts at height 0 and the skip lands exactly on it —
  // the cursor arithmetic wraps below zero and the walk must still stop.
  // Window [0, 8]: block 8 processed, distance-8 skip covers [0, 7].
  {
    Query q = fx.NoMatchQuery(0, 8);
    auto resp = sp.TimeWindowQuery(q);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().objects.empty());
    size_t blocks = 0, skips = 0;
    for (const auto& step : resp.value().vo.steps) {
      std::holds_alternative<BlockVO<Engine>>(step) ? ++blocks : ++skips;
    }
    EXPECT_EQ(blocks, 1u);
    EXPECT_EQ(skips, 1u);
    EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
  }

  // Case 3: skip would overshoot by one — window [9, 12]: the distance-4
  // skip of block 12 covers [8, 11], one below the start, so it must be
  // rejected and the walk falls back to per-block processing.
  {
    Query q = fx.NoMatchQuery(9, 12);
    auto resp = sp.TimeWindowQuery(q);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().objects.empty());
    size_t blocks = 0, skips = 0;
    for (const auto& step : resp.value().vo.steps) {
      std::holds_alternative<BlockVO<Engine>>(step) ? ++blocks : ++skips;
    }
    EXPECT_EQ(skips, 0u) << "no legal skip exists inside [9, 12]";
    EXPECT_EQ(blocks, 4u);
    EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
  }
}

TEST(SkipBoundaryTest, MockAcc1) { RunBoundaryCases<accum::MockAcc1Engine>(); }
TEST(SkipBoundaryTest, MockAcc2) { RunBoundaryCases<accum::MockAcc2Engine>(); }

}  // namespace
}  // namespace vchain::core

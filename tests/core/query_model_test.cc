// Query model: CNF transformation, mapped matching, LocalMatch oracle
// consistency, and the SP proof cache.

#include <gtest/gtest.h>

#include "accum/mock.h"
#include "common/rand.h"
#include "core/proof_cache.h"
#include "core/query.h"
#include "workload/datasets.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using accum::MockAcc1Engine;
using accum::MockAcc2Engine;

NumericSchema Schema() { return NumericSchema{2, 8}; }

TEST(TransformQueryTest, ClauseCountAndOrder) {
  Query q;
  q.ranges = {{0, 10, 20}, {1, 0, 255}};
  q.keyword_cnf = {{"a", "b"}, {"c"}};
  TransformedQuery tq = TransformQuery(q, Schema());
  // 2 range clauses followed by 2 keyword clauses.
  ASSERT_EQ(tq.clauses.size(), 4u);
  EXPECT_TRUE(tq.clauses[2].Contains(accum::EncodeKeyword("a")));
  EXPECT_TRUE(tq.clauses[2].Contains(accum::EncodeKeyword("b")));
  EXPECT_TRUE(tq.clauses[3].Contains(accum::EncodeKeyword("c")));
  // Full-domain range clause is the root prefix only.
  ASSERT_EQ(tq.clauses[1].DistinctSize(), 1u);
}

TEST(TransformQueryTest, MatchEquivalenceWithLocalMatch) {
  // For identity-mapping engines, mapped CNF matching over W' must agree
  // exactly with LocalMatch on attributes (time handled separately).
  auto oracle = KeyOracle::Create(1, AccParams{16});
  MockAcc1Engine engine(oracle);
  NumericSchema schema = Schema();
  Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    Object o;
    o.numeric = {rng.Below(256), rng.Below(256)};
    if (rng.Chance(0.5)) o.keywords.push_back("red");
    if (rng.Chance(0.5)) o.keywords.push_back("blue");
    Query q;
    uint64_t a = rng.Below(256), b = rng.Below(256);
    q.ranges = {{0, std::min(a, b), std::max(a, b)}};
    if (rng.Chance(0.7)) q.keyword_cnf = {{"red"}};
    TransformedQuery tq = TransformQuery(q, schema);
    MappedQueryView view(engine, tq);
    Multiset w = chain::TransformObject(o, schema);
    EXPECT_EQ(view.Matches(engine, w), LocalMatch(o, q, schema))
        << o.ToString() << " vs " << q.ToString();
  }
}

TEST(MappedQueryViewTest, FindDisjointClause) {
  auto oracle = KeyOracle::Create(2, AccParams{16});
  MockAcc1Engine engine(oracle);
  Query q;
  q.keyword_cnf = {{"x"}, {"y", "z"}};
  TransformedQuery tq = TransformQuery(q, Schema());
  MappedQueryView view(engine, tq);

  Multiset has_x{accum::EncodeKeyword("x")};
  EXPECT_EQ(view.FindDisjointClause(engine, has_x), 1);  // misses {y,z}
  Multiset has_both{accum::EncodeKeyword("x"), accum::EncodeKeyword("z")};
  EXPECT_EQ(view.FindDisjointClause(engine, has_both), -1);
  EXPECT_TRUE(view.Matches(engine, has_both));
  EXPECT_FALSE(view.Matches(engine, has_x));
}

TEST(MappedQueryViewTest, Acc2MappingCollisionsRespected) {
  auto oracle = KeyOracle::Create(3, AccParams{10});  // tiny universe
  MockAcc2Engine engine(oracle);
  uint64_t q_minus_1 = oracle->params().UniverseSize() - 1;
  Query q;
  q.keyword_cnf = {{"probe"}};
  TransformedQuery tq = TransformQuery(q, Schema());
  MappedQueryView view(engine, tq);
  // An element congruent to the probe keyword modulo (q-1) must count as a
  // match under the acc2 view even though the raw ids differ.
  accum::Element probe = accum::EncodeKeyword("probe");
  Multiset collider{probe + q_minus_1};
  EXPECT_TRUE(view.Matches(engine, collider));
  MockAcc1Engine identity(oracle);
  MappedQueryView view1(identity, tq);
  EXPECT_FALSE(view1.Matches(identity, collider));
}

TEST(ProofCacheTest, HitsOnRepeatedRequests) {
  auto oracle = KeyOracle::Create(4, AccParams{16});
  MockAcc2Engine engine(oracle);
  ProofCache<MockAcc2Engine> cache;
  Multiset w{1, 2, 3};
  Multiset clause{50, 60};
  auto digest = engine.Digest(w);
  auto p1 = cache.GetOrProve(engine, digest, w, clause);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  auto p2 = cache.GetOrProve(engine, digest, w, clause);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProofCacheTest, DistinctKeysDoNotCollide) {
  auto oracle = KeyOracle::Create(5, AccParams{16});
  MockAcc2Engine engine(oracle);
  ProofCache<MockAcc2Engine> cache;
  Multiset w1{1, 2};
  Multiset w2{3, 4};
  Multiset clause{99};
  auto pa = cache.GetOrProve(engine, engine.Digest(w1), w1, clause);
  auto pb = cache.GetOrProve(engine, engine.Digest(w2), w2, clause);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(pa.value() == pb.value());
}

TEST(ProofCacheTest, IntersectionErrorNotCached) {
  auto oracle = KeyOracle::Create(6, AccParams{16});
  MockAcc2Engine engine(oracle);
  ProofCache<MockAcc2Engine> cache;
  Multiset w{7};
  Multiset clause{7};
  auto p = cache.GetOrProve(engine, engine.Digest(w), w, clause);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryToStringTest, ReadableForm) {
  Query q;
  q.time_start = 5;
  q.time_end = 9;
  q.ranges = {{0, 1, 2}};
  q.keyword_cnf = {{"a", "b"}, {"c"}};
  std::string s = q.ToString();
  EXPECT_NE(s.find("[5,9]"), std::string::npos);
  EXPECT_NE(s.find("(a OR b)"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

}  // namespace
}  // namespace vchain::core

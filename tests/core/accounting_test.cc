// Size accounting and lifecycle behaviours: ADS byte counts, VO byte
// counts vs serialized length, subscription register/deregister flows, and
// builder input validation.

#include <gtest/gtest.h>

#include "core/vchain.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"
#include "workload/datasets.h"

namespace vchain {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using workload::DatasetGenerator;
using workload::DatasetProfile;

template <typename Engine>
Engine MakeEngine() {
  return Engine(KeyOracle::Create(15, AccParams{16}));
}

TEST(AccountingTest, AdsBytesMatchesStructure) {
  auto engine = MakeEngine<accum::MockAcc2Engine>();
  DatasetProfile profile = workload::Profile4SQ(6);
  for (IndexMode mode :
       {IndexMode::kNil, IndexMode::kIntra, IndexMode::kBoth}) {
    ChainConfig config;
    config.mode = mode;
    config.schema = profile.schema;
    config.skiplist_size = 2;
    ChainBuilder<accum::MockAcc2Engine> miner(engine, config);
    DatasetGenerator gen(profile, 4);
    size_t last_ads = 0;
    for (int b = 0; b < 6; ++b) {
      auto objs = gen.NextBlock();
      auto st = miner.AppendBlock(objs, objs.front().timestamp);
      ASSERT_TRUE(st.ok());
      last_ads = st.value().ads_bytes;
    }
    const auto& block = miner.blocks().back();
    size_t digest_size = engine.DigestByteSize();
    size_t expected = block.leaf_digests.size() * digest_size;
    if (mode != IndexMode::kNil) {
      expected += (block.nodes.size() - block.objects.size()) *
                  (digest_size + 32);
    }
    expected += block.skips.size() * (digest_size + 64);
    EXPECT_EQ(last_ads, expected) << core::IndexModeName(mode);
    // nil < intra < both in ADS size.
    if (mode == IndexMode::kNil) {
      EXPECT_EQ(block.nodes.size(), 0u);
    }
    if (mode == IndexMode::kBoth) {
      EXPECT_GT(block.skips.size(), 0u);
    }
  }
}

TEST(AccountingTest, VoByteSizeEqualsSerializedLength) {
  auto engine = MakeEngine<accum::MockAcc2Engine>();
  DatasetProfile profile = workload::ProfileETH(5);
  ChainConfig config;
  config.mode = IndexMode::kBoth;
  config.schema = profile.schema;
  config.skiplist_size = 2;
  ChainBuilder<accum::MockAcc2Engine> miner(engine, config);
  DatasetGenerator gen(profile, 5);
  for (int b = 0; b < 8; ++b) {
    auto objs = gen.NextBlock();
    ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  }
  store::VectorBlockSource<accum::MockAcc2Engine> source(&miner.blocks());
  core::QueryProcessor<accum::MockAcc2Engine> sp(engine, config, &source);
  Query q = gen.MakeDefaultQuery(gen.TimestampOfBlock(0),
                                 gen.TimestampOfBlock(7));
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  ByteWriter w;
  core::SerializeWindowVO(engine, resp.value().vo, &w);
  EXPECT_EQ(core::VoByteSize(engine, resp.value().vo), w.size());
  EXPECT_GT(w.size(), 0u);
}

TEST(AccountingTest, BuilderRejectsBadInput) {
  auto engine = MakeEngine<accum::MockAcc1Engine>();
  ChainConfig config;
  config.schema = chain::NumericSchema{2, 8};
  ChainBuilder<accum::MockAcc1Engine> miner(engine, config);
  // Empty block.
  EXPECT_FALSE(miner.AppendBlock({}, 100).ok());
  // Wrong dimensionality.
  chain::Object bad;
  bad.numeric = {1};
  EXPECT_FALSE(miner.AppendBlock({bad}, 100).ok());
  // Good block, then a time warp.
  chain::Object ok;
  ok.numeric = {1, 2};
  ok.timestamp = 100;
  ASSERT_TRUE(miner.AppendBlock({ok}, 100).ok());
  chain::Object late = ok;
  late.timestamp = 50;
  EXPECT_FALSE(miner.AppendBlock({late}, 50).ok());
  EXPECT_EQ(miner.blocks().size(), 1u);
}

TEST(SubscriptionLifecycleTest, DeregisteredQueryStopsReceiving) {
  auto engine = MakeEngine<accum::MockAcc2Engine>();
  DatasetProfile profile = workload::Profile4SQ(4);
  ChainConfig config;
  config.mode = IndexMode::kIntra;
  config.schema = profile.schema;
  sub::SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  sub::SubscriptionManager<accum::MockAcc2Engine> mgr(engine, config, opts);
  Query q;
  q.keyword_cnf = {{"venue:1", "venue:2"}};
  uint32_t a = mgr.TrySubscribe(q).TakeValue();
  uint32_t b = mgr.TrySubscribe(q).TakeValue();
  ChainBuilder<accum::MockAcc2Engine> miner(engine, config);
  DatasetGenerator gen(profile, 6);
  auto objs = gen.NextBlock();
  ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  EXPECT_EQ(mgr.ProcessBlock(miner.blocks().back()).size(), 2u);
  mgr.Unsubscribe(a);
  auto objs2 = gen.NextBlock();
  ASSERT_TRUE(miner.AppendBlock(objs2, objs2.front().timestamp).ok());
  auto notifs = mgr.ProcessBlock(miner.blocks().back());
  ASSERT_EQ(notifs.size(), 1u);
  EXPECT_EQ(notifs[0].query_id, b);
}

TEST(SubscriptionLifecycleTest, ResubscribeGetsFreshId) {
  auto engine = MakeEngine<accum::MockAcc2Engine>();
  ChainConfig config;
  config.schema = chain::NumericSchema{1, 8};
  sub::SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  sub::SubscriptionManager<accum::MockAcc2Engine> mgr(engine, config, opts);
  Query q;
  q.keyword_cnf = {{"x"}};
  uint32_t a = mgr.TrySubscribe(q).TakeValue();
  mgr.Unsubscribe(a);
  uint32_t b = mgr.TrySubscribe(q).TakeValue();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace vchain

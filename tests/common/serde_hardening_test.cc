// Hostile-input hardening sweeps over every wire format the SP or a light
// node consumes: query responses (BlockVO / SkipVO / WindowVO / objects) and
// persisted block records.
//
//   * truncation sweep — every strict prefix of a valid encoding must decode
//     to Status::Corruption (no field is optional, so no prefix is valid);
//   * byte-flip sweep — flipping any single byte must never crash or force
//     an allocation sized by the corrupted bytes; decoding either fails with
//     a non-OK status or yields a structurally valid object (a flip inside
//     e.g. digest bytes is indistinguishable from a different digest — the
//     *verifier*, not the decoder, rejects those).

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/vchain.h"

namespace vchain {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::NumericSchema;
using chain::Object;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using core::QueryProcessor;
using core::QueryResponse;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

template <typename Engine>
Engine MakeEngine() {
  AccParams params;
  params.universe_bits = 16;
  auto oracle = KeyOracle::Create(/*seed=*/2024, params);
  return Engine(oracle);
}

template <typename Engine>
struct Corpus {
  Corpus() : engine(MakeEngine<Engine>()) {
    config.mode = IndexMode::kBoth;
    config.schema = NumericSchema{2, 8};
    config.skiplist_size = 2;
    ChainBuilder<Engine> miner(engine, config);
    static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
    static const char* kTypes[] = {"Sedan", "Van", "SUV"};
    Rng rng(42);
    uint64_t id = 0;
    for (size_t b = 0; b < 10; ++b) {
      uint64_t ts = kBaseTime + b * kTimeStep;
      std::vector<Object> objs;
      for (size_t i = 0; i < 3; ++i) {
        Object o;
        o.id = id++;
        o.timestamp = ts;
        o.numeric = {rng.Below(config.schema.DomainSize()),
                     rng.Below(config.schema.DomainSize())};
        o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
        objs.push_back(std::move(o));
      }
      EXPECT_TRUE(miner.AppendBlock(std::move(objs), ts).ok());
    }

    // A response exercising matches, mismatch proofs, skips, aggregation.
    store::VectorBlockSource<Engine> source(&miner.blocks());
    QueryProcessor<Engine> sp(engine, config, &source,
                              &miner.timestamp_index());
    Query q;
    q.time_start = kBaseTime;
    q.time_end = kBaseTime + 9 * kTimeStep;
    q.ranges = {{0, 10, 120}};
    q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
    auto resp = sp.TimeWindowQuery(q);
    EXPECT_TRUE(resp.ok());
    ByteWriter rw;
    SerializeResponse(engine, resp.value(), &rw);
    response_bytes = rw.bytes();

    // A persisted block record body (the densest block: tip, full skips).
    const core::Block<Engine>& tip = miner.blocks().back();
    ByteWriter bw;
    store::SerializeBlockBody(engine, tip, &bw);
    block_body = bw.bytes();
    block_header = tip.header;
  }

  Engine engine;
  ChainConfig config;
  Bytes response_bytes;
  Bytes block_body;
  chain::BlockHeader block_header;
};

template <typename Engine>
Status DecodeResponse(const Engine& engine, ByteSpan bytes) {
  ByteReader r(bytes);
  QueryResponse<Engine> out;
  return DeserializeResponse(engine, &r, &out);
}

template <typename Engine>
Status DecodeBlock(const Engine& engine, const chain::BlockHeader& header,
                   ByteSpan bytes) {
  ByteReader r(bytes);
  core::Block<Engine> out;
  return store::DeserializeBlockBody(engine, header, &r, &out);
}

template <typename Engine>
class SerdeHardeningTest : public ::testing::Test {};

// Mock engines keep the sweeps fast (thousands of decodes); Acc2 is covered
// by the spot-check test below so real point deserialization is exercised.
using SweepEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine>;
TYPED_TEST_SUITE(SerdeHardeningTest, SweepEngines);

TYPED_TEST(SerdeHardeningTest, ResponseRoundTripIsExact) {
  Corpus<TypeParam> corpus;
  ByteReader r(ByteSpan(corpus.response_bytes.data(),
                        corpus.response_bytes.size()));
  QueryResponse<TypeParam> back;
  ASSERT_TRUE(DeserializeResponse(corpus.engine, &r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  ByteWriter w;
  SerializeResponse(corpus.engine, back, &w);
  EXPECT_EQ(w.bytes(), corpus.response_bytes);
}

TYPED_TEST(SerdeHardeningTest, BlockRecordRoundTripIsExact) {
  Corpus<TypeParam> corpus;
  ByteReader r(ByteSpan(corpus.block_body.data(), corpus.block_body.size()));
  core::Block<TypeParam> back;
  ASSERT_TRUE(store::DeserializeBlockBody(corpus.engine, corpus.block_header,
                                          &r, &back)
                  .ok());
  ByteWriter w;
  store::SerializeBlockBody(corpus.engine, back, &w);
  EXPECT_EQ(w.bytes(), corpus.block_body);
}

TYPED_TEST(SerdeHardeningTest, EveryTruncationIsCorruption) {
  Corpus<TypeParam> corpus;
  ASSERT_GT(corpus.response_bytes.size(), 0u);
  for (size_t len = 0; len < corpus.response_bytes.size(); ++len) {
    Status st = DecodeResponse(corpus.engine,
                               ByteSpan(corpus.response_bytes.data(), len));
    ASSERT_FALSE(st.ok()) << "prefix " << len << " decoded successfully";
    ASSERT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
  }
  for (size_t len = 0; len < corpus.block_body.size(); ++len) {
    Status st = DecodeBlock(corpus.engine, corpus.block_header,
                            ByteSpan(corpus.block_body.data(), len));
    ASSERT_FALSE(st.ok()) << "prefix " << len << " decoded successfully";
    ASSERT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
  }
}

TYPED_TEST(SerdeHardeningTest, EveryByteFlipIsHandledGracefully) {
  Corpus<TypeParam> corpus;
  // Each flipped buffer must decode without crashing and without a
  // corrupted-length-sized allocation (the remaining-bytes guards); a
  // surviving decode must itself re-serialize without crashing.
  auto sweep = [&](Bytes bytes, auto decode) {
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (uint8_t mask : {uint8_t{0x01}, uint8_t{0xFF}}) {
        bytes[i] ^= mask;
        Status st = decode(ByteSpan(bytes.data(), bytes.size()));
        if (!st.ok()) {
          ASSERT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
        }
        bytes[i] ^= mask;
      }
    }
  };
  sweep(corpus.response_bytes, [&](ByteSpan b) {
    return DecodeResponse(corpus.engine, b);
  });
  sweep(corpus.block_body, [&](ByteSpan b) {
    return DecodeBlock(corpus.engine, corpus.block_header, b);
  });
}

// A CRC can't vouch for a malicious writer: records whose intra-index tree
// shape would crash the query walk (childless internal nodes, self/forward
// references, leaves with children) must be rejected at decode time.
TYPED_TEST(SerdeHardeningTest, MalformedIndexTreeShapesAreRejected) {
  Corpus<TypeParam> corpus;
  ByteReader r0(ByteSpan(corpus.block_body.data(), corpus.block_body.size()));
  core::Block<TypeParam> block;
  ASSERT_TRUE(store::DeserializeBlockBody(corpus.engine, corpus.block_header,
                                          &r0, &block)
                  .ok());
  ASSERT_GT(block.nodes.size(), block.objects.size());  // has internal nodes
  auto expect_rejected = [&](const core::Block<TypeParam>& bad) {
    ByteWriter w;
    store::SerializeBlockBody(corpus.engine, bad, &w);
    ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
    core::Block<TypeParam> out;
    Status st = store::DeserializeBlockBody(corpus.engine, corpus.block_header,
                                            &r, &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
  };
  size_t internal = block.nodes.size() - 1;  // root (appended last)
  {
    auto bad = block;  // childless internal node -> walk would index [-1]
    bad.nodes[internal].left = -1;
    expect_rejected(bad);
  }
  {
    auto bad = block;  // self reference -> walk would recurse forever
    bad.nodes[internal].left = static_cast<int32_t>(internal);
    expect_rejected(bad);
  }
  {
    auto bad = block;  // leaf with a child
    bad.nodes[0].left = 0;
    expect_rejected(bad);
  }
  {
    auto bad = block;  // leaf pointing at a nonexistent object
    bad.nodes[0].object_index =
        static_cast<int32_t>(bad.objects.size());
    expect_rejected(bad);
  }
}

// Real-crypto spot check: Acc2's G1/G2 point decoding rejects off-curve
// flips instead of crashing, and truncation behaves like the mocks.
TEST(SerdeHardeningAcc2Test, TruncationAndFlipSpotChecks) {
  Corpus<accum::Acc2Engine> corpus;
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Below(corpus.response_bytes.size());
    Status st = DecodeResponse(corpus.engine,
                               ByteSpan(corpus.response_bytes.data(), len));
    ASSERT_FALSE(st.ok());
    ASSERT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
  }
  Bytes bytes = corpus.response_bytes;
  for (int trial = 0; trial < 200; ++trial) {
    size_t i = rng.Below(bytes.size());
    bytes[i] ^= 0xFF;
    Status st = DecodeResponse(corpus.engine,
                               ByteSpan(bytes.data(), bytes.size()));
    if (!st.ok()) {
      EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
    }
    bytes[i] ^= 0xFF;
  }
}

}  // namespace
}  // namespace vchain

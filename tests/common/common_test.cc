// Unit tests for the common layer: Status/Result, hex, serde, PRNG, timer.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rand.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/timer.h"

namespace vchain {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::VerifyFailed("proof rejected");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kVerifyFailed);
  EXPECT_EQ(st.message(), "proof rejected");
  EXPECT_EQ(st.ToString(), "VERIFY_FAILED: proof rejected");
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.TakeValue();
  EXPECT_EQ(s, "payload");
}

Status Fails() { return Status::Corruption("inner"); }
Status Propagates() {
  VCHAIN_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status st = Propagates();
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  std::string hex = ToHex(ByteSpan(data.data(), data.size()));
  EXPECT_EQ(hex, "0001abff");
  auto back = FromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  auto upper = FromHex("0001ABFF");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper.value(), data);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex
}

TEST(SerdeTest, IntegerRoundTrips) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutBool(true);
  w.PutBool(false);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  bool t, f;
  ASSERT_TRUE(r.GetU8(&a).ok());
  ASSERT_TRUE(r.GetU16(&b).ok());
  ASSERT_TRUE(r.GetU32(&c).ok());
  ASSERT_TRUE(r.GetU64(&d).ok());
  ASSERT_TRUE(r.GetBool(&t).ok());
  ASSERT_TRUE(r.GetBool(&f).ok());
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(t);
  EXPECT_FALSE(f);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, StringsAndBytes) {
  ByteWriter w;
  w.PutString("hello");
  w.PutBytes(Bytes{1, 2, 3});
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  std::string s;
  Bytes b;
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetBytes(&b).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(b, (Bytes{1, 2, 3}));
}

TEST(SerdeTest, TruncationDetected) {
  ByteWriter w;
  w.PutU64(7);
  Bytes buf = w.TakeBytes();
  buf.pop_back();
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  uint64_t v;
  EXPECT_EQ(r.GetU64(&v).code(), Status::Code::kCorruption);
}

TEST(SerdeTest, HostileLengthPrefixRejected) {
  ByteWriter w;
  w.PutU32(0xFFFFFFFF);  // absurd length prefix with no payload
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Bytes out;
  EXPECT_FALSE(r.GetBytes(&out).ok());
}

TEST(SerdeTest, BoolByteValidated) {
  Bytes buf{2};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  bool b;
  EXPECT_FALSE(r.GetBool(&b).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += static_cast<uint64_t>(i);
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds() * 1000 * 0.5);
  CostAccumulator acc;
  acc.Add(0.5);
  acc.AddTimer(t);
  EXPECT_GT(acc.seconds(), 0.5);
  acc.Reset();
  EXPECT_EQ(acc.seconds(), 0.0);
}

}  // namespace
}  // namespace vchain

// The metrics substrate: exact bucket math, exact counts under concurrent
// writers (the TSan CI job runs this), idempotent registration with stable
// pointers, collector lifecycle, and a golden Prometheus exposition.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace vchain::metrics {
namespace {

TEST(MetricsTest, CounterCountsExactly) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsTest, GaugeSetAddSub) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  g.Sub(3.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.0);
}

TEST(MetricsTest, HistogramBucketMath) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0 (<= 0.1)
  h.Observe(0.1);    // bucket 0 (boundary counts in its bucket)
  h.Observe(0.5);    // bucket 1
  h.Observe(10.0);   // bucket 2
  h.Observe(100.0);  // +Inf overflow bucket
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.05 + 0.1 + 0.5 + 10.0 + 100.0);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniform in bucket (1, 2]: every quantile lands there.
  for (int i = 0; i < 100; ++i) h.Observe(1.5);
  double p50 = h.P50();
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  double p99 = h.P99();
  EXPECT_GE(p99, 1.0);
  EXPECT_LE(p99, 2.0);
  // Empty histogram reads as 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  // Overflow observations clamp the estimate to the last finite bound.
  Histogram over({1.0, 2.0});
  over.Observe(50.0);
  EXPECT_DOUBLE_EQ(over.P99(), 2.0);
}

TEST(MetricsTest, ConcurrentObserversStayExact) {
  Registry r;
  Counter* c = r.GetCounter("vchain_test_ops_total", "ops");
  Histogram* h = r.GetHistogram("vchain_test_lat_seconds", "lat",
                                {0.001, 0.01, 0.1});
  Gauge* g = r.GetGauge("vchain_test_inflight", "inflight");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        // 2^-7: every partial sum is exactly representable, so the CAS
        // loop's exactness is observable as FP equality, not a tolerance.
        h->Observe(0.0078125);
        g->Add(t % 2 == 0 ? 1.0 : -1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0078125 * kThreads * kPerThread);
  EXPECT_EQ(h->BucketCount(1), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);  // equal adds and subs
}

TEST(MetricsTest, RegistrationIsIdempotentWithStablePointers) {
  Registry r;
  Counter* a = r.GetCounter("vchain_test_total", "help");
  Counter* b = r.GetCounter("vchain_test_total", "ignored on re-get");
  EXPECT_EQ(a, b);
  Counter* la = r.GetCounter("vchain_test_labeled_total", "h", {{"k", "v1"}});
  Counter* lb = r.GetCounter("vchain_test_labeled_total", "h", {{"k", "v2"}});
  Counter* lc = r.GetCounter("vchain_test_labeled_total", "h", {{"k", "v1"}});
  EXPECT_NE(la, lb);  // distinct children
  EXPECT_EQ(la, lc);  // same child
}

TEST(MetricsTest, CollectorsRunAtScrapeAndAreRemovable) {
  Registry r;
  Gauge* g = r.GetGauge("vchain_test_gauge", "refreshed by collector");
  std::atomic<int> runs{0};
  size_t id = r.AddCollector([&] {
    runs.fetch_add(1);
    g->Set(7);
  });
  std::string text = r.WriteText();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_NE(text.find("vchain_test_gauge 7"), std::string::npos);
  r.RemoveCollector(id);
  r.WriteText();
  EXPECT_EQ(runs.load(), 1);  // did not run again
}

TEST(MetricsTest, ExpositionGolden) {
  Registry r;
  r.GetCounter("vchain_test_requests_total", "Requests served")->Inc(3);
  r.GetCounter("vchain_test_by_route_total", "By route", {{"route", "/q"}})
      ->Inc();
  r.GetGauge("vchain_test_up", "Liveness")->Set(1);
  Histogram* h =
      r.GetHistogram("vchain_test_seconds", "Latency", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(2.0);
  const std::string expected =
      "# HELP vchain_test_by_route_total By route\n"
      "# TYPE vchain_test_by_route_total counter\n"
      "vchain_test_by_route_total{route=\"/q\"} 1\n"
      "# HELP vchain_test_requests_total Requests served\n"
      "# TYPE vchain_test_requests_total counter\n"
      "vchain_test_requests_total 3\n"
      "# HELP vchain_test_seconds Latency\n"
      "# TYPE vchain_test_seconds histogram\n"
      "vchain_test_seconds_bucket{le=\"0.5\"} 1\n"
      "vchain_test_seconds_bucket{le=\"1\"} 2\n"
      "vchain_test_seconds_bucket{le=\"+Inf\"} 3\n"
      "vchain_test_seconds_sum 3\n"
      "vchain_test_seconds_count 3\n"
      "# HELP vchain_test_up Liveness\n"
      "# TYPE vchain_test_up gauge\n"
      "vchain_test_up 1\n";
  EXPECT_EQ(r.WriteText(), expected);
}

TEST(MetricsTest, ExpositionEscapesHelpAndLabelValues) {
  Registry r;
  r.GetCounter("vchain_test_esc_total", "line\\one \"two\"",
               {{"path", "a\\b\"c\""}})
      ->Inc();
  std::string text = r.WriteText();
  EXPECT_NE(text.find("# HELP vchain_test_esc_total line\\\\one \"two\"\n"),
            std::string::npos);
  EXPECT_NE(text.find("vchain_test_esc_total{path=\"a\\\\b\\\"c\\\"\"} 1\n"),
            std::string::npos);
}

TEST(MetricsTest, ScopedTimerObservesAndToleratesNull) {
  Registry r;
  Histogram* h = r.GetLatencyHistogram("vchain_test_timer_seconds", "t");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
  {
    ScopedTimer noop(nullptr);  // must not crash
  }
}

TEST(MetricsTest, LatencyBucketLayoutIsSane) {
  const std::vector<double>& b = LatencyBucketsSeconds();
  ASSERT_GE(b.size(), 10u);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "bounds must ascend";
  }
  EXPECT_LE(b.front(), 1e-5);  // resolves micro-scale ops
  EXPECT_GE(b.back(), 1.0);    // and second-scale ones
}

TEST(MetricsTest, MonotonicNanosAdvances) {
  uint64_t a = MonotonicNanos();
  uint64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace vchain::metrics

// Span trees: structure, durations, notes, the ambient thread-local
// context, the kMaxSpans drop path, JSON shape, and TraceRing retention
// (sampled FIFO + always-keep-slowest). The TSan CI job runs the
// concurrent-writers case — the tree is written by the query thread and
// pool workers at once during deferred proving.

#include "common/span.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace vchain::trace {
namespace {

TEST(SpanTreeTest, RootAndChildren) {
  SpanTree t("query");
  EXPECT_EQ(t.NumSpans(), 1u);  // root exists from construction
  EXPECT_EQ(t.RootDurationNs(), 0u);  // open until EndRoot

  uint32_t walk = t.Begin("match_walk");
  uint32_t prove = t.Begin("prove", walk);
  t.End(prove);
  t.End(walk);
  t.EndRoot();

  EXPECT_EQ(t.NumSpans(), 3u);
  EXPECT_EQ(t.DroppedSpans(), 0u);
  std::vector<Span> spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, kRootSpan);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_STREQ(spans[0].name, "query");
  EXPECT_EQ(spans[1].parent, kRootSpan);
  EXPECT_EQ(spans[2].parent, walk);
  // Root covers its children: it started first and ended last.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[2].end_ns);
  EXPECT_GT(t.RootDurationNs(), 0u);
}

TEST(SpanTreeTest, NullIdIsNoOp) {
  SpanTree t("query");
  t.End(0);
  t.Note(0, "k", 1);
  t.End(999);  // unknown id: ignored
  EXPECT_EQ(t.NumSpans(), 1u);
}

TEST(SpanTreeTest, SumDurationsByNameAndAncestor) {
  SpanTree t("query");
  uint32_t walk = t.Begin("match_walk");
  uint32_t p1 = t.Begin("prove", walk);  // inline prove, under the walk
  t.End(p1);
  t.End(walk);
  uint32_t p2 = t.Begin("prove");  // deferred prove, under the root
  t.End(p2);
  t.EndRoot();

  uint64_t all = t.SumDurationsNs("prove");
  uint64_t inline_only = t.SumDurationsUnderNs("prove", "match_walk");
  EXPECT_GE(all, inline_only);
  std::vector<Span> spans = t.Snapshot();
  uint64_t expect_inline = 0, expect_all = 0;
  for (const Span& s : spans) {
    if (std::string(s.name) == "prove") {
      expect_all += s.DurationNs();
      if (s.parent == walk) expect_inline += s.DurationNs();
    }
  }
  EXPECT_EQ(all, expect_all);
  EXPECT_EQ(inline_only, expect_inline);
  EXPECT_EQ(t.SumDurationsNs("no_such_span"), 0u);
  EXPECT_EQ(t.SumDurationsUnderNs("prove", "no_such_ancestor"), 0u);
}

TEST(SpanTreeTest, CapsAtMaxSpansAndCountsDrops) {
  SpanTree t("query");
  for (size_t i = 0; i < SpanTree::kMaxSpans + 10; ++i) {
    uint32_t id = t.Begin("filler");
    if (t.NumSpans() < SpanTree::kMaxSpans) EXPECT_NE(id, 0u);
    t.End(id);
  }
  EXPECT_EQ(t.NumSpans(), SpanTree::kMaxSpans);
  // Root takes one slot, so 10 + 1 Begin calls found the tree full.
  EXPECT_EQ(t.DroppedSpans(), 11u);
  // A dropped id is the null span: all operations on it are no-ops.
  uint32_t dropped = t.Begin("one_more");
  EXPECT_EQ(dropped, 0u);
  t.Note(dropped, "k", 7);
}

TEST(SpanTreeTest, JsonShapeAndNotes) {
  SpanTree t("query");
  uint32_t walk = t.Begin("match_walk");
  t.Note(walk, "blocks", 24);
  t.End(walk);
  t.EndRoot();

  std::string json;
  t.AppendJson(&json);
  // Flat array of span objects; notes ride as extra numeric members.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"match_walk\""), std::string::npos);
  EXPECT_NE(json.find("\"blocks\":24"), std::string::npos);
  // Start times are rebased to the root: the root starts at 0.
  EXPECT_NE(json.find("\"start_ns\":0"), std::string::npos);

  // max_spans truncates but stays well-formed.
  std::string capped;
  t.AppendJson(&capped, 1);
  EXPECT_EQ(capped.front(), '[');
  EXPECT_EQ(capped.back(), ']');
  EXPECT_NE(capped.find("\"name\":\"query\""), std::string::npos);
  EXPECT_EQ(capped.find("match_walk"), std::string::npos);
}

TEST(SpanTreeTest, ScopedSpanNullTreeIsNoOp) {
  ScopedSpan s(nullptr, "anything");
  EXPECT_EQ(s.id(), 0u);
  s.Note("k", 1);  // must not crash
}

TEST(SpanTreeTest, AmbientScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentSpan().tree, nullptr);
  SpanTree t("query");
  {
    AmbientScope outer(&t, kRootSpan);
    EXPECT_EQ(CurrentSpan().tree, &t);
    EXPECT_EQ(CurrentSpan().parent, kRootSpan);
    uint32_t walk = t.Begin("match_walk");
    {
      AmbientScope inner(&t, walk);
      EXPECT_EQ(CurrentSpan().parent, walk);
    }
    EXPECT_EQ(CurrentSpan().parent, kRootSpan);  // restored
  }
  EXPECT_EQ(CurrentSpan().tree, nullptr);
}

TEST(SpanTreeTest, AmbientContextIsPerThread) {
  SpanTree t("query");
  AmbientScope scope(&t, kRootSpan);
  SpanTree* seen = &t;  // sentinel: overwritten by the thread
  std::thread other([&seen] { seen = CurrentSpan().tree; });
  other.join();
  EXPECT_EQ(seen, nullptr);  // the other thread saw no ambient context
}

// The deferred-prove shape: pool workers attach prove_task spans to one
// shared tree while the query thread is also writing. TSan-checked in CI.
TEST(SpanTreeTest, ConcurrentWritersAreSafe) {
  SpanTree t("query");
  uint32_t prove = t.Begin("prove");
  constexpr int kThreads = 8;
  constexpr int kSpansEach = 16;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, prove] {
      for (int i = 0; i < kSpansEach; ++i) {
        ScopedSpan task(&t, "prove_task", prove);
        task.Note("iter", static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  t.End(prove);
  t.EndRoot();
  // 1 root + 1 prove + 128 tasks = 130 < kMaxSpans: nothing dropped.
  EXPECT_EQ(t.NumSpans(), 2u + kThreads * kSpansEach);
  EXPECT_EQ(t.DroppedSpans(), 0u);
  EXPECT_EQ(t.SumDurationsNs("prove_task"),
            t.SumDurationsUnderNs("prove_task", "prove"));
}

TEST(TraceRingTest, SamplesEveryNthAndEvictsFifo) {
  TraceRing ring(/*capacity=*/2, /*sample_every=*/2, /*slow_slots=*/0);
  for (int i = 0; i < 6; ++i) {
    auto t = std::make_shared<SpanTree>("query");
    t->EndRoot();
    ring.Offer(std::move(t));
  }
  EXPECT_EQ(ring.Offered(), 6u);
  // Offers 0, 2, 4 were sampled; capacity 2 keeps the newest two.
  std::vector<TraceRing::Entry> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(ring.Occupancy(), 2u);
  EXPECT_EQ(kept[0].seq, 2u);
  EXPECT_EQ(kept[1].seq, 4u);
  EXPECT_FALSE(kept[0].slowest);
}

TEST(TraceRingTest, KeepsSlowestRegardlessOfSampling) {
  // sample_every=0: only the slowest rule retains anything.
  TraceRing ring(/*capacity=*/4, /*sample_every=*/0, /*slow_slots=*/1);
  auto fast = std::make_shared<SpanTree>("query");
  fast->EndRoot();
  auto slow = std::make_shared<SpanTree>("query");
  // Make `slow` measurably slower than `fast` without a timing assumption.
  uint32_t busy = slow->Begin("busy");
  volatile uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<uint64_t>(i);
  slow->End(busy);
  slow->EndRoot();
  ASSERT_GT(slow->RootDurationNs(), fast->RootDurationNs());

  ring.Offer(slow);
  ring.Offer(fast);  // faster: must not displace `slow` from the one slot
  std::vector<TraceRing::Entry> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].tree.get(), slow.get());
  EXPECT_TRUE(kept[0].slowest);
}

TEST(TraceRingTest, ToJsonShape) {
  TraceRing ring(/*capacity=*/4, /*sample_every=*/1);
  auto t = std::make_shared<SpanTree>("append");
  t->EndRoot();
  ring.Offer(std::move(t));
  std::string json = ring.ToJson();
  EXPECT_NE(json.find("\"offered\":1"), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"root\":\"append\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

}  // namespace
}  // namespace vchain::trace

// The shared worker pool: every ParallelFor index runs exactly once, the
// caller participates (so a saturated or single-worker pool cannot
// deadlock), nesting works, and Submit executes detached tasks.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

namespace vchain {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  pool.ParallelFor(hits.size(), 8,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithOneWorkerAndCapOne) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, 1, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
  pool.ParallelFor(0, 4, [&](size_t) { FAIL(); });  // n = 0 is a no-op
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(8, 4, [&](size_t) {
    pool.ParallelFor(8, 4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.NumWorkers(), 1u);
  std::atomic<int> sum{0};
  a.ParallelFor(10, 4, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

}  // namespace
}  // namespace vchain

// The flight recorder: ordering and payloads through the ring, wraparound,
// the concurrent writers + concurrent dump case (the TSan CI job runs this
// file — the seqlock must be clean, not just "usually right"), JSON shape,
// and the signal-handler-grade DumpToFd path.
//
// The recorder is a process-wide singleton shared with every other test in
// this binary, so assertions count only this file's distinctively-named
// events and never assume the ring starts empty.

#include "common/flight_recorder.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace vchain::flight {
namespace {

std::vector<Event> EventsNamed(const std::string& name) {
  std::vector<Event> out;
  for (const Event& e : FlightRecorder::Get().Snapshot()) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

TEST(FlightRecorderTest, RecordCarriesPayloadAndOrder) {
  FlightRecorder& rec = FlightRecorder::Get();
  uint64_t before = rec.NextSeq();
  rec.Record("test", "fr_payload", 1, 2, 3);
  rec.Record("test", "fr_payload", 4);
  EXPECT_EQ(rec.NextSeq(), before + 2);

  std::vector<Event> mine = EventsNamed("fr_payload");
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_STREQ(mine[0].tier, "test");
  EXPECT_EQ(mine[0].a, 1u);
  EXPECT_EQ(mine[0].b, 2u);
  EXPECT_EQ(mine[0].c, 3u);
  EXPECT_EQ(mine[1].a, 4u);
  EXPECT_EQ(mine[1].b, 0u);
  EXPECT_LT(mine[0].seq, mine[1].seq);
  EXPECT_LE(mine[0].ns, mine[1].ns);
}

TEST(FlightRecorderTest, WrapAroundKeepsNewestRingful) {
  FlightRecorder& rec = FlightRecorder::Get();
  for (size_t i = 0; i < FlightRecorder::kSlots + 100; ++i) {
    rec.Record("test", "fr_wrap", i);
  }
  std::vector<Event> snap = rec.Snapshot();
  EXPECT_LE(snap.size(), FlightRecorder::kSlots);
  // Oldest first, strictly increasing seq.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
  // We just wrote kSlots+100 events, so the whole ring is ours and the
  // newest survivor is the last one recorded.
  ASSERT_FALSE(snap.empty());
  EXPECT_STREQ(snap.back().name, "fr_wrap");
  EXPECT_EQ(snap.back().a, FlightRecorder::kSlots + 100 - 1);
  EXPECT_EQ(snap.front().a + FlightRecorder::kSlots - 1, snap.back().a);
}

// 8 writers flood the ring while a reader snapshots, serializes, and dumps
// concurrently. The reader must only ever see consistent slots: an event
// either has this test's (tier, name, a<kPerWriter) shape or belongs to an
// earlier test — never a torn mixture. TSan validates the memory ordering.
TEST(FlightRecorderTest, ConcurrentWritersWithConcurrentDump) {
  FlightRecorder& rec = FlightRecorder::Get();
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 4000;  // 8 * 4000 > kSlots: wraps often
  uint64_t before = rec.NextSeq();

  std::atomic<bool> stop{false};
  std::thread reader([&rec, &stop, kPerWriter] {
    int devnull = ::open("/dev/null", O_WRONLY);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Event> snap = rec.Snapshot();
      for (size_t i = 1; i < snap.size(); ++i) {
        ASSERT_LT(snap[i - 1].seq, snap[i].seq);
      }
      for (const Event& e : snap) {
        if (std::string(e.name) == "fr_conc") {
          ASSERT_STREQ(e.tier, "test");
          ASSERT_LT(e.a, kPerWriter);
          ASSERT_EQ(e.c, e.a + e.b);  // payload written as a coherent triple
        }
      }
      std::string json = rec.ToJson();
      ASSERT_FALSE(json.empty());
      if (devnull >= 0) rec.DumpToFd(devnull);
    }
    if (devnull >= 0) ::close(devnull);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        rec.Record("test", "fr_conc", i, static_cast<uint64_t>(w),
                   i + static_cast<uint64_t>(w));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(rec.NextSeq(), before + kWriters * kPerWriter);
  // Post-quiescence the entire ring is consistent and readable.
  EXPECT_EQ(rec.Snapshot().size(), FlightRecorder::kSlots);
}

TEST(FlightRecorderTest, ToJsonShape) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Record("test", "fr_json", 7);
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"next_seq\":"), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fr_json\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single-line, header-safe
}

TEST(FlightRecorderTest, DumpToFdWritesTextLines) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Record("test", "fr_dump", 42, 43, 44);

  char path[] = "/tmp/flight_dump_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  rec.DumpToFd(fd);
  ::lseek(fd, 0, SEEK_SET);
  std::string text;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) text.append(buf, n);
  ::close(fd);
  ::unlink(path);

  EXPECT_NE(text.find("=== flight recorder:"), std::string::npos);
  EXPECT_NE(text.find("=== end flight recorder ==="), std::string::npos);
  EXPECT_NE(text.find("test/fr_dump"), std::string::npos);
  EXPECT_NE(text.find("a=42"), std::string::npos);
}

}  // namespace
}  // namespace vchain::flight

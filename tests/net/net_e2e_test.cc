// Loopback end-to-end: a real SpServer on 127.0.0.1 serving a real Service,
// queried by SpClient over actual sockets, for all four engines.
//
// The contract under test is the paper's: the client trusts nothing past
// the socket. Headers are re-validated by the client's own LightClient,
// response bytes are verified against those headers, and — the reproduction
// invariant — the bytes that cross the wire are bit-identical to what an
// in-process Service::Query returns for the same query.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rand.h"
#include "core/vchain.h"
#include "net/sp_client.h"
#include "net/sp_server.h"
#include "net/wire.h"

namespace vchain::net {
namespace {

using api::EngineKind;
using api::QueryResult;
using api::Service;
using api::ServiceOptions;
using chain::Object;
using core::Query;

template <typename Engine>
struct KindOf;
template <>
struct KindOf<accum::MockAcc1Engine> {
  static constexpr EngineKind value = EngineKind::kMockAcc1;
};
template <>
struct KindOf<accum::MockAcc2Engine> {
  static constexpr EngineKind value = EngineKind::kMockAcc2;
};
template <>
struct KindOf<accum::Acc1Engine> {
  static constexpr EngineKind value = EngineKind::kAcc1;
};
template <>
struct KindOf<accum::Acc2Engine> {
  static constexpr EngineKind value = EngineKind::kAcc2;
};

/// SSE responses are close-delimited (no Content-Length), which
/// HttpConnection rejects by design — the stream test speaks raw TCP.
class RawSseSocket {
 public:
  explicit RawSseSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSseSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawSseSocket(const RawSseSocket&) = delete;
  RawSseSocket& operator=(const RawSseSocket&) = delete;

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Read (appending to an internal carry) until `token` has been seen
  /// past the previous call's consumption point, EOF, or timeout; returns
  /// everything up to and including the token's line context.
  std::string ReadUntil(const std::string& token, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char buf[4096];
    while (carry_.find(token) == std::string::npos) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) break;
      struct pollfd pfd = {fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) break;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      carry_.append(buf, static_cast<size_t>(n));
    }
    size_t pos = carry_.find(token);
    if (pos == std::string::npos) {
      std::string all;
      all.swap(carry_);
      return all;
    }
    std::string out = carry_.substr(0, pos + token.size());
    carry_.erase(0, pos + token.size());
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string carry_;
};

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

ServiceOptions MakeOptions(EngineKind kind) {
  ServiceOptions opts;
  opts.engine = kind;
  opts.config.mode = core::IndexMode::kBoth;
  opts.config.schema = chain::NumericSchema{/*dims=*/2, /*bits=*/8};
  opts.config.skiplist_size = 2;
  opts.oracle_seed = 2026;  // public trusted setup, shared out of band
  opts.acc_params.universe_bits = 16;
  return opts;
}

/// SP-side service with a small deterministic chain mined in.
std::unique_ptr<Service> MakeServedService(EngineKind kind) {
  auto svc = Service::Open(MakeOptions(kind)).TakeValue();
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  Rng rng(42);
  uint64_t id = 0;
  for (size_t b = 0; b < 8; ++b) {
    uint64_t ts = kBaseTime + b * kTimeStep;
    std::vector<Object> objs;
    for (size_t i = 0; i < 3; ++i) {
      Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {rng.Below(256), rng.Below(256)};
      o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
      objs.push_back(std::move(o));
    }
    EXPECT_TRUE(svc->Append(std::move(objs), ts).ok());
  }
  return svc;
}

Query MatchyQuery() {
  return api::QueryBuilder()
      .Window(kBaseTime, kBaseTime + 7 * kTimeStep)
      .Range(0, 10, 200)
      .AnyOf({"Sedan", "Van"})
      .Build();
}

template <typename Engine>
class NetE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = MakeServedService(KindOf<Engine>::value);
    SpServer::Options sopts;
    sopts.http.num_threads = 2;
    auto server = SpServer::Start(service_.get(), sopts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server.TakeValue();

    SpClient::Options copts;
    copts.port = server_->port();
    copts.verify = MakeOptions(KindOf<Engine>::value);
    auto client = SpClient::Connect(copts);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = client.TakeValue();
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<SpServer> server_;
  std::unique_ptr<SpClient> client_;
};

using AllEngines = ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                                    accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(NetE2eTest, AllEngines);

TYPED_TEST(NetE2eTest, HealthzAndStats) {
  EXPECT_TRUE(this->client_->Healthz().ok());
  auto stats = this->client_->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().engine, KindOf<TypeParam>::value);
  EXPECT_EQ(stats.value().num_blocks, 8u);
}

TYPED_TEST(NetE2eTest, HeaderSyncValidatesTheWholeChain) {
  chain::LightClient light = this->client_->NewLightClient();
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  EXPECT_EQ(light.Height(), 8u);

  // The wire headers are the service's own headers, byte for byte.
  chain::LightClient direct;
  ASSERT_TRUE(this->service_->SyncLightClient(&direct).ok());
  for (uint64_t h = 0; h < 8; ++h) {
    EXPECT_EQ(light.HeaderAt(h), direct.HeaderAt(h));
  }

  // Re-syncing from the current height is a no-op, not an error.
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  EXPECT_EQ(light.Height(), 8u);
}

TYPED_TEST(NetE2eTest, WireBytesAreBitIdenticalToInProcess) {
  Query q = MatchyQuery();
  auto wire = this->client_->Query(q);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto local = this->service_->Query(q);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(wire.value().response_bytes, local.value().response_bytes);
  EXPECT_EQ(wire.value().vo_bytes, local.value().vo_bytes);
  ASSERT_EQ(wire.value().objects.size(), local.value().objects.size());
  for (size_t i = 0; i < wire.value().objects.size(); ++i) {
    EXPECT_EQ(wire.value().objects[i], local.value().objects[i]);
  }
}

// The observability invariant: opting into stage tracing changes response
// *headers* only — the body is the canonical encoding, bit for bit.
TYPED_TEST(NetE2eTest, TracingNeverChangesTheResponseBytes) {
  Query q = MatchyQuery();
  auto untraced = this->client_->Query(q);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
  std::string trace_json;
  auto traced = this->client_->Query(q, &trace_json);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  EXPECT_EQ(traced.value().response_bytes, untraced.value().response_bytes);
  EXPECT_EQ(traced.value().vo_bytes, untraced.value().vo_bytes);
  ASSERT_FALSE(trace_json.empty()) << "SP must answer X-Vchain-Trace: 1";
  EXPECT_NE(trace_json.find("\"total_ns\":"), std::string::npos) << trace_json;
  EXPECT_NE(trace_json.find("\"prove_ns\":"), std::string::npos) << trace_json;
}

// The traced stages are non-overlapping and cover the processor+serialize
// path: their sum must track the server-side total. The acceptance bound
// is ~10%, with an absolute floor so scheduler noise on a fast query
// cannot flake CI.
TYPED_TEST(NetE2eTest, TraceStagesSumToTotal) {
  Query q = MatchyQuery();
  core::QueryTrace trace;
  auto local = this->service_->Query(q, &trace);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_GT(trace.total_ns, 0u);
  uint64_t stage_sum = trace.StageSumNs();
  ASSERT_GT(stage_sum, 0u);
  EXPECT_LE(stage_sum, trace.total_ns)
      << "stages cannot exceed the enclosing total";
  uint64_t slack = std::max<uint64_t>(trace.total_ns / 10, 200000);  // 200 µs
  EXPECT_GE(stage_sum + slack, trace.total_ns)
      << "untraced gap too large: total=" << trace.total_ns
      << " stage_sum=" << stage_sum;
  // The work counts describe this workload: 8 blocks walked, results found.
  EXPECT_GT(trace.blocks_walked, 0u);
  EXPECT_GT(trace.results_matched, 0u);
  EXPECT_EQ(trace.results_matched, local.value().objects.size());
}

TYPED_TEST(NetE2eTest, ClientVerifiesAndCatchesTampering) {
  chain::LightClient light = this->client_->NewLightClient();
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  Query q = MatchyQuery();
  auto result = this->client_->Query(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().objects.empty());
  ASSERT_TRUE(this->client_->Verify(q, result.value(), light).ok());

  // Any flipped byte in what arrived must be caught locally.
  QueryResult tampered = result.value();
  tampered.response_bytes[tampered.response_bytes.size() / 2] ^= 0x01;
  Status bad = this->client_->Verify(q, tampered, light);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsVerifyFailed() || bad.IsCorruption()) << bad.ToString();
}

TYPED_TEST(NetE2eTest, EmptyWindowIsAVerifiableEmptyAnswer) {
  chain::LightClient light = this->client_->NewLightClient();
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  Query q = api::QueryBuilder()
                .Window(kBaseTime + 1000, kBaseTime + 2000)
                .AnyOf({"Sedan"})
                .Build();
  auto result = this->client_->Query(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().objects.empty());
  EXPECT_TRUE(this->client_->Verify(q, result.value(), light).ok());
}

TYPED_TEST(NetE2eTest, InvalidQueryComesBackInvalidArgument) {
  Query inverted = api::QueryBuilder().Range(0, 200, 100).Build();
  auto result = this->client_->Query(inverted);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status().ToString();
}

TYPED_TEST(NetE2eTest, BatchMixesSuccessesAndFailures) {
  chain::LightClient light = this->client_->NewLightClient();
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  std::vector<Query> qs = {
      MatchyQuery(),
      api::QueryBuilder().Range(0, 200, 100).Build(),  // inverted: fails
      api::QueryBuilder().Window(0, kBaseTime - 1).AnyOf({"Benz"}).Build(),
  };
  auto batch = this->client_->QueryBatch(qs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), 3u);

  ASSERT_TRUE(batch.value()[0].ok());
  EXPECT_TRUE(
      this->client_->Verify(qs[0], batch.value()[0].value(), light).ok());
  auto local = this->service_->Query(qs[0]);
  EXPECT_EQ(batch.value()[0].value().response_bytes,
            local.value().response_bytes);

  EXPECT_FALSE(batch.value()[1].ok());
  EXPECT_TRUE(batch.value()[1].status().IsInvalidArgument());

  ASSERT_TRUE(batch.value()[2].ok());
  EXPECT_TRUE(batch.value()[2].value().objects.empty());
  EXPECT_TRUE(
      this->client_->Verify(qs[2], batch.value()[2].value(), light).ok());
}

TYPED_TEST(NetE2eTest, QueriesKeepWorkingWhileTheChainGrows) {
  chain::LightClient light = this->client_->NewLightClient();
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  // Mine a new block between two wire queries; the second query + a header
  // re-sync must observe and verify the longer chain.
  std::vector<Object> objs(1);
  objs[0].id = 999;
  objs[0].timestamp = kBaseTime + 8 * kTimeStep;
  objs[0].numeric = {50, 60};
  objs[0].keywords = {"Sedan", "Benz"};
  ASSERT_TRUE(
      this->service_->Append(std::move(objs), kBaseTime + 8 * kTimeStep).ok());

  Query q = api::QueryBuilder()
                .Window(kBaseTime + 8 * kTimeStep, kBaseTime + 8 * kTimeStep)
                .AnyOf({"Sedan"})
                .Build();
  auto result = this->client_->Query(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().objects.size(), 1u);
  EXPECT_EQ(result.value().objects[0].id, 999u);
  ASSERT_TRUE(this->client_->SyncHeaders(&light).ok());
  EXPECT_EQ(light.Height(), 9u);
  EXPECT_TRUE(this->client_->Verify(q, result.value(), light).ok());
}

// The reproduction invariant, extended to the streaming path: a
// notification delivered over the wire is byte-identical to what the
// in-process cursor read returns for the same subscription, and both verify
// against the client's own validated headers.
TYPED_TEST(NetE2eTest, WireNotificationVerifiesBitIdenticallyToInProcess) {
  auto sub = this->client_->Subscribe(MatchyQuery());
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  uint64_t start_cursor = sub.value().cursor();
  EXPECT_EQ(start_cursor, 8u);  // subscribed at tip; events start here

  // Mine a block that matches the standing query.
  std::vector<Object> objs(1);
  objs[0].id = 999;
  objs[0].timestamp = kBaseTime + 8 * kTimeStep;
  objs[0].numeric = {50, 60};
  objs[0].keywords = {"Sedan", "Benz"};
  ASSERT_TRUE(
      this->service_->Append(std::move(objs), kBaseTime + 8 * kTimeStep).ok());

  // In-process read of the same subscription stream.
  auto local = this->service_->EventsSince(sub.value().id(), start_cursor, 64);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_EQ(local.value().events.size(), 1u);
  EXPECT_EQ(local.value().events[0].height, 8u);

  // Wire read: Poll decodes, header-syncs, and verifies before returning.
  chain::LightClient light = this->client_->NewLightClient();
  auto events = sub.value().Poll(&light, /*wait_ms=*/0);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events.value().size(), 1u);
  const auto& ev = events.value()[0];
  EXPECT_EQ(ev.height, 8u);
  ASSERT_EQ(ev.objects.size(), 1u);
  EXPECT_EQ(ev.objects[0].id, 999u);

  // Bit identity: the bytes that crossed the socket are the bytes the
  // service holds, and both verify against an independently synced client.
  EXPECT_EQ(ev.notification_bytes, local.value().events[0].notification_bytes);
  chain::LightClient direct;
  ASSERT_TRUE(this->service_->SyncLightClient(&direct).ok());
  EXPECT_TRUE(this->service_
                  ->VerifyNotification(sub.value().query(),
                                       local.value().events[0], direct)
                  .ok());
  EXPECT_TRUE(
      this->service_->VerifyNotification(sub.value().query(), ev, light).ok());

  // The cursor advanced: a second poll is empty, not a redelivery.
  auto again = sub.value().Poll(&light, /*wait_ms=*/0);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().empty());

  EXPECT_TRUE(sub.value().Unsubscribe().ok());
  // After unsubscribe the stream is gone, not silently empty.
  auto dead = sub.value().Poll(&light, /*wait_ms=*/0);
  EXPECT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsNotFound()) << dead.status().ToString();
}

// Several mined blocks arrive as one ordered, verified batch over the wire.
TYPED_TEST(NetE2eTest, PollDeliversMultipleBlocksInOrder) {
  auto sub = this->client_->Subscribe(MatchyQuery());
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  for (int b = 0; b < 3; ++b) {
    uint64_t ts = kBaseTime + (8 + b) * kTimeStep;
    std::vector<Object> objs(1);
    objs[0].id = 2000 + b;
    objs[0].timestamp = ts;
    objs[0].numeric = {50, 60};
    objs[0].keywords = {"Van", "Audi"};
    ASSERT_TRUE(this->service_->Append(std::move(objs), ts).ok());
  }

  chain::LightClient light = this->client_->NewLightClient();
  auto events = sub.value().Poll(&light, /*wait_ms=*/0);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events.value().size(), 3u);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(events.value()[b].height, 8u + b);
    ASSERT_EQ(events.value()[b].objects.size(), 1u);
    EXPECT_EQ(events.value()[b].objects[0].id, 2000u + b);
  }
}
// (to - from + 1 overflows to 0; the clamp must not be skipped).
TEST(NetE2eRawTest, HeaderPageCapSurvivesFullRangeRequest) {
  auto svc = MakeServedService(EngineKind::kMockAcc2);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  sopts.max_headers_per_page = 2;  // chain has 8 blocks
  auto server = SpServer::Start(svc.get(), sopts).TakeValue();
  HttpConnection conn({.host = "127.0.0.1", .port = server->port()});
  auto resp = conn.RoundTrip(
      "GET", "/headers?from=0&to=18446744073709551615", "", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().status, 200);
  auto page = DecodeHeaderPage(
      ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
               resp.value().body.size()));
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page.value().size(), 2u);  // capped, not the whole chain
}

// GET /metrics serves a Prometheus exposition covering every tier, and the
// service-state gauges the SpServer's collector refreshes at scrape time.
TEST(NetE2eRawTest, MetricsEndpointCoversAllTiers) {
  auto svc = MakeServedService(EngineKind::kMockAcc2);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  auto server = SpServer::Start(svc.get(), sopts).TakeValue();
  HttpConnection conn({.host = "127.0.0.1", .port = server->port()});
  // Serve one query first so the service-tier histograms have samples.
  auto q = conn.RoundTrip("POST", "/query", QueryToJson(MatchyQuery()),
                          "application/json");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().status, 200);
  auto resp = conn.RoundTrip("GET", "/metrics", "", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().status, 200);
  const std::string& text = resp.value().body;
  // One family from each tier, plus the scrape-time service gauges.
  EXPECT_NE(text.find("# TYPE vchain_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vchain_service_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find(
                "vchain_service_query_stage_seconds_bucket{stage=\"prove\""),
            std::string::npos);
  EXPECT_NE(text.find("vchain_service_blocks 8"), std::string::npos);
  EXPECT_NE(text.find("vchain_service_degraded 0"), std::string::npos);
  EXPECT_NE(text.find("vchain_http_route_requests_total{route=\"/query\"}"),
            std::string::npos);
  // Stopping the server deregisters its collector; a later registry write
  // must not touch the (about-to-die) service.
  server->Stop();
  server.reset();
  svc.reset();
  std::string after = metrics::Registry::Default().WriteText();
  EXPECT_FALSE(after.empty());  // no use-after-free, exposition still sane
}

// The /query endpoint speaks strict JSON: hostile bodies get a 400, not a
// crash (the full malformed-HTTP sweep lives in http_server_test.cc).
TEST(NetE2eRawTest, MalformedQueryBodyIs400) {
  auto svc = MakeServedService(EngineKind::kMockAcc2);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  auto server = SpServer::Start(svc.get(), sopts).TakeValue();
  HttpConnection conn({.host = "127.0.0.1", .port = server->port()});
  for (const char* bad : {"", "{", "[]", "{\"window\":[0]}",
                          "{\"window\":[0,1],\"ranges\":[],\"cnf\":[[]]}"}) {
    auto resp = conn.RoundTrip("POST", "/query", bad, "application/json");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 400) << bad;
  }
  auto not_found = conn.RoundTrip("GET", "/nope", "", "text/plain");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found.value().status, 404);
  auto wrong_method = conn.RoundTrip("GET", "/query", "", "text/plain");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);
}

// A long-poll /events request with nothing to deliver parks on the event
// hub and completes the moment a block is mined — no polling loop, no
// worker thread held while parked.
TEST(NetE2eRawTest, LongPollParksUntilAppendDeliversEvents) {
  auto svc = MakeServedService(EngineKind::kMockAcc2);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;  // one worker: a parked request must not hold it
  auto server = SpServer::Start(svc.get(), sopts).TakeValue();
  HttpConnection conn({.host = "127.0.0.1", .port = server->port()});

  auto sub_resp = conn.RoundTrip("POST", "/subscribe",
                                 SubscribeRequestToJson(MatchyQuery()),
                                 "application/json");
  ASSERT_TRUE(sub_resp.ok()) << sub_resp.status().ToString();
  ASSERT_EQ(sub_resp.value().status, 200);
  auto sub = SubscribeResponseFromJson(sub_resp.value().body);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub.value().cursor, 8u);

  std::thread miner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::vector<Object> objs(1);
    objs[0].id = 7777;
    objs[0].timestamp = kBaseTime + 8 * kTimeStep;
    objs[0].numeric = {50, 60};
    objs[0].keywords = {"Van", "BMW"};
    ASSERT_TRUE(svc->Append(std::move(objs), kBaseTime + 8 * kTimeStep).ok());
  });
  auto t0 = std::chrono::steady_clock::now();
  auto poll = conn.RoundTrip(
      "GET",
      "/events?id=" + std::to_string(sub.value().id) + "&cursor=8&wait_ms=5000",
      "", "text/plain");
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  miner.join();
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  ASSERT_EQ(poll.value().status, 200);
  EXPECT_GE(waited.count(), 50) << "request did not park";
  EXPECT_LT(waited.count(), 5000) << "append did not wake the parked request";

  auto frame = DecodeEventFrame(
      ByteSpan(reinterpret_cast<const uint8_t*>(poll.value().body.data()),
               poll.value().body.size()));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame.value().events.size(), 1u);
  EXPECT_EQ(frame.value().next_cursor, 9u);
  auto local = svc->EventsSince(sub.value().id, 8, 64);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(frame.value().events[0].notification_bytes,
            local.value().events[0].notification_bytes);
}

// The SSE flavor of /events: records arrive as blocks are mined, with the
// block height as the record id and the canonical notification bytes
// base64'd in `data:` — decoded, they are the service's bytes verbatim.
TEST(NetE2eRawTest, SseStreamDeliversMinedBlocks) {
  auto svc = MakeServedService(EngineKind::kMockAcc2);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  auto server = SpServer::Start(svc.get(), sopts).TakeValue();
  HttpConnection conn({.host = "127.0.0.1", .port = server->port()});
  auto sub_resp = conn.RoundTrip("POST", "/subscribe",
                                 SubscribeRequestToJson(MatchyQuery()),
                                 "application/json");
  ASSERT_TRUE(sub_resp.ok()) << sub_resp.status().ToString();
  auto sub = SubscribeResponseFromJson(sub_resp.value().body);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  // SSE is close-delimited, so it needs a raw socket (HttpConnection
  // requires Content-Length).
  RawSseSocket sock(server->port());
  ASSERT_TRUE(sock.connected());
  sock.Send("GET /events?id=" + std::to_string(sub.value().id) +
            "&cursor=8 HTTP/1.1\r\nAccept: text/event-stream\r\n\r\n");
  std::string head = sock.ReadUntil("retry: 1000\n\n", 5000);
  ASSERT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos) << head;
  ASSERT_NE(head.find("text/event-stream"), std::string::npos) << head;

  std::vector<Object> objs(1);
  objs[0].id = 8888;
  objs[0].timestamp = kBaseTime + 8 * kTimeStep;
  objs[0].numeric = {50, 60};
  objs[0].keywords = {"Sedan", "Audi"};
  ASSERT_TRUE(svc->Append(std::move(objs), kBaseTime + 8 * kTimeStep).ok());

  std::string record = sock.ReadUntil("\n\n", 5000);
  size_t id_pos = record.find("id: 8");
  ASSERT_NE(id_pos, std::string::npos) << record;
  size_t data_pos = record.find("data: ", id_pos);
  ASSERT_NE(data_pos, std::string::npos) << record;
  size_t data_end = record.find('\n', data_pos);
  std::string b64 = record.substr(data_pos + 6, data_end - data_pos - 6);
  auto bytes = Base64Decode(b64);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto local = svc->EventsSince(sub.value().id, 8, 64);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(local.value().events.size(), 1u);
  EXPECT_EQ(bytes.value(), local.value().events[0].notification_bytes);
}

}  // namespace
}  // namespace vchain::net

// Availability under abuse and partial failure:
//
//   * overload: connections past the cap are shed with an immediate 503 +
//     Retry-After — bounded memory, never a queue that grows with the flood;
//   * per-IP rate limiting: a chatty client gets 429 + Retry-After without
//     the handler running, and is served again once its bucket refills;
//   * graceful drain: in-flight requests finish, the listener closes, and
//     idle keep-alive peers are shut;
//   * degraded mode end-to-end: a storage write fault flips the Service to
//     read-only — queries keep serving bit-identical answers, appends come
//     back Unavailable, /healthz answers 503;
//   * client resilience: SpClient retries 429/503 and transport failures
//     with jittered exponential backoff, and surfaces errno text when the
//     SP is unreachable.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "core/vchain.h"
#include "net/sp_client.h"
#include "net/sp_server.h"
#include "net/wire.h"
#include "store/env.h"

namespace vchain::net {
namespace {

using api::EngineKind;
using api::Service;
using api::ServiceOptions;
using chain::Object;
using core::Query;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_overload_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

ServiceOptions MakeOptions() {
  ServiceOptions opts;
  opts.engine = EngineKind::kMockAcc2;
  opts.config.mode = core::IndexMode::kBoth;
  opts.config.schema = chain::NumericSchema{/*dims=*/2, /*bits=*/8};
  opts.config.skiplist_size = 2;
  opts.oracle_seed = 2026;
  opts.acc_params.universe_bits = 16;
  return opts;
}

std::vector<Object> MakeBlock(uint64_t height) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  Rng rng(height + 7);
  std::vector<Object> objs;
  for (size_t i = 0; i < 3; ++i) {
    Object o;
    o.id = height * 100 + i;
    o.timestamp = kBaseTime + height * kTimeStep;
    o.numeric = {rng.Below(256), rng.Below(256)};
    o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
    objs.push_back(std::move(o));
  }
  return objs;
}

// --- transport-level availability (plain HttpServer) -------------------------

TEST(OverloadTest, FloodIsShedWith503AndBoundedState) {
  HttpServer::Options opts;
  opts.num_threads = 1;
  opts.max_connections = 2;
  opts.accept_queue = 1;
  opts.recv_timeout_seconds = 1;  // close served keep-alive conns quickly
  auto server = HttpServer::Start(opts, [](const HttpRequest&) {
    SleepMs(400);
    return HttpResponse{.content_type = "text/plain", .body = "slow\n"};
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = server.value()->port();

  // Occupy the single worker...
  RawSocket busy(port);
  ASSERT_TRUE(busy.connected());
  busy.Send("GET /slow HTTP/1.1\r\n\r\n");
  SleepMs(100);  // worker picks up `busy` (frees the queue slot)
  // ... then the one queue slot ...
  RawSocket queued(port);
  ASSERT_TRUE(queued.connected());
  queued.Send("GET /slow HTTP/1.1\r\n\r\n");
  SleepMs(50);

  // ... so the third connection is shed at accept time, before any bytes.
  RawSocket shed(port);
  ASSERT_TRUE(shed.connected());
  std::string reply = shed.ReadAll();
  ASSERT_EQ(reply.substr(0, 12), "HTTP/1.1 503") << reply;
  EXPECT_NE(reply.find("Retry-After:"), std::string::npos);

  // The occupied connections are served to completion regardless.
  EXPECT_NE(busy.ReadAll().find("slow"), std::string::npos);
  EXPECT_NE(queued.ReadAll().find("slow"), std::string::npos);
  HttpServerStats stats = server.value()->stats();
  EXPECT_GE(stats.shed_overload, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(OverloadTest, PerIpRateLimitAnswers429ThenRecovers) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  opts.rate_limit_rps = 2;
  opts.rate_limit_burst = 2;
  auto server = HttpServer::Start(opts, [](const HttpRequest&) {
    return HttpResponse{.content_type = "text/plain", .body = "ok\n"};
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  HttpConnection conn({.host = "127.0.0.1", .port = server.value()->port()});
  int limited = 0, served = 0;
  std::string retry_after;
  for (int i = 0; i < 6; ++i) {
    auto resp = conn.RoundTrip("GET", "/", "", "text/plain");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp.value().status == 429) {
      ++limited;
      for (const auto& [k, v] : resp.value().headers) {
        if (k == "retry-after") retry_after = v;
      }
    } else {
      ASSERT_EQ(resp.value().status, 200);
      ++served;
    }
  }
  EXPECT_GE(limited, 3);  // burst of 2, then the hammering gets 429
  EXPECT_GE(served, 2);
  EXPECT_EQ(retry_after, "1");  // 429 keeps the connection + tells when

  SleepMs(1100);  // bucket refills ~2 tokens
  auto resp = conn.RoundTrip("GET", "/", "", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_GE(server.value()->stats().rate_limited, 3u);
}

TEST(OverloadTest, DrainFinishesInFlightThenStopsAccepting) {
  HttpServer::Options opts;
  opts.num_threads = 1;
  auto server = HttpServer::Start(opts, [](const HttpRequest&) {
    SleepMs(200);
    return HttpResponse{.content_type = "text/plain", .body = "done\n"};
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = server.value()->port();

  std::atomic<bool> got_response{false};
  std::thread in_flight([&] {
    HttpConnection conn({.host = "127.0.0.1", .port = port});
    auto resp = conn.RoundTrip("GET", "/", "", "text/plain");
    got_response = resp.ok() && resp.value().status == 200 &&
                   resp.value().body == "done\n";
  });
  SleepMs(80);  // let the request reach the worker
  server.value()->Drain(/*timeout_seconds=*/5);
  in_flight.join();
  EXPECT_TRUE(got_response);  // the in-flight request completed through drain

  RawSocket after(port);  // the listener is gone
  EXPECT_TRUE(!after.connected() || after.ReadAll().empty());
}

// --- degraded mode end-to-end ------------------------------------------------

TEST(OverloadTest, StorageFaultDegradesToReadOnlyServiceAndHealthz503) {
  std::string dir = UniqueDir();
  store::FaultInjectionEnv fenv;
  ServiceOptions sopts = MakeOptions();
  sopts.store_dir = dir;
  sopts.store_options.env = &fenv;
  auto svc = Service::Open(sopts);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (uint64_t h = 0; h < 4; ++h) {
    ASSERT_TRUE(
        svc.value()->Append(MakeBlock(h), kBaseTime + h * kTimeStep).ok());
  }
  ASSERT_TRUE(svc.value()->Sync().ok());
  ASSERT_TRUE(svc.value()->Health().ok());

  Query q = api::QueryBuilder()
                .Window(kBaseTime, kBaseTime + 3 * kTimeStep)
                .AnyOf({"Sedan", "Van", "SUV"})
                .Build();
  auto before = svc.value()->Query(q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // The disk starts refusing writes: the next append fails and the service
  // flips to read-only instead of dying.
  store::FaultInjectionEnv::Fault fault;
  fault.op = store::FaultInjectionEnv::Fault::Op::kWrite;
  fault.err = 28;  // ENOSPC
  fault.at = 1;
  fenv.ScheduleFault(fault);
  Status failed = svc.value()->Append(MakeBlock(4), kBaseTime + 4 * kTimeStep);
  ASSERT_FALSE(failed.ok());
  fenv.ClearFault();

  // Writes shed as Unavailable; reads still serve bit-identical answers.
  Status refused = svc.value()->Append(MakeBlock(4), kBaseTime + 4 * kTimeStep);
  ASSERT_TRUE(refused.IsUnavailable()) << refused.ToString();
  EXPECT_NE(refused.ToString().find("read-only"), std::string::npos);
  EXPECT_TRUE(svc.value()->Health().IsUnavailable());
  EXPECT_TRUE(svc.value()->Stats().degraded);
  auto after = svc.value()->Query(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().response_bytes, before.value().response_bytes);

  // Over the wire: /healthz answers 503 "degraded", /stats carries the flag,
  // and queries keep working.
  SpServer::Options server_opts;
  server_opts.http.num_threads = 2;
  auto server = SpServer::Start(svc.value().get(), server_opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpConnection conn({.host = "127.0.0.1", .port = server.value()->port()});
  auto health = conn.RoundTrip("GET", "/healthz", "", "text/plain");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 503);
  EXPECT_NE(health.value().body.find("degraded"), std::string::npos);

  SpClient::Options copts;
  copts.port = server.value()->port();
  copts.verify = MakeOptions();
  copts.retry.max_attempts = 1;
  auto client = SpClient::Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.value()->Healthz().IsUnavailable());
  auto stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().degraded);
  auto wire = client.value()->Query(q);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire.value().response_bytes, before.value().response_bytes);
}

// --- client retry ------------------------------------------------------------

TEST(OverloadTest, BackoffIsJitteredExponentialAndCapped) {
  SpClient::RetryPolicy p;  // 100ms base, x2, cap 2000ms
  EXPECT_EQ(SpClient::ComputeBackoffMs(p, 1, 0), 50);    // low end of [50,100]
  EXPECT_EQ(SpClient::ComputeBackoffMs(p, 1, 50), 100);  // high end
  EXPECT_EQ(SpClient::ComputeBackoffMs(p, 3, 0), 200);   // 400ms base
  for (int attempt = 1; attempt < 20; ++attempt) {
    int64_t ms = SpClient::ComputeBackoffMs(p, attempt, 0xABCDEF1234567890ull);
    EXPECT_GE(ms, 50);
    EXPECT_LE(ms, 2000);  // capped however deep the retry goes
  }
}

TEST(OverloadTest, ClientRetriesThrough429AndSucceeds) {
  std::string dir = UniqueDir();
  ServiceOptions sopts = MakeOptions();
  auto svc = Service::Open(sopts);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (uint64_t h = 0; h < 2; ++h) {
    ASSERT_TRUE(
        svc.value()->Append(MakeBlock(h), kBaseTime + h * kTimeStep).ok());
  }
  SpServer::Options server_opts;
  server_opts.http.num_threads = 2;
  server_opts.http.rate_limit_rps = 1;
  server_opts.http.rate_limit_burst = 1;
  auto server = SpServer::Start(svc.value().get(), server_opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  SpClient::Options copts;
  copts.port = server.value()->port();
  copts.verify = MakeOptions();
  copts.retry.max_attempts = 4;
  copts.retry.initial_backoff_ms = 200;
  auto client = SpClient::Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Burst of 1: the back-to-back second call gets 429 and must retry its
  // way (Retry-After: 1) to a 200.
  auto first = client.value()->Stats();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = client.value()->Stats();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().num_blocks, 2u);
  EXPECT_GE(server.value()->http_stats().rate_limited, 1u);
}

TEST(OverloadTest, UnreachableSpExhaustsRetriesWithErrnoText) {
  // Grab a port that is free and keep it closed.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<struct sockaddr*>(&addr),
                          &len),
            0);
  uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  SpClient::Options copts;
  copts.port = dead_port;
  copts.verify = MakeOptions();
  copts.retry.max_attempts = 2;
  copts.retry.initial_backoff_ms = 10;
  auto client = SpClient::Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto t0 = std::chrono::steady_clock::now();
  Status st = client.value()->Healthz();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(st.ok());
  // The transport error carries where and why, errno text included.
  EXPECT_NE(st.ToString().find("connect to 127.0.0.1:"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("refused"), std::string::npos) << st.ToString();
  // Both attempts ran (one backoff sleep), then it gave up promptly.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

}  // namespace
}  // namespace vchain::net

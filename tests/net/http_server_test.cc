// Transport hardening: a live HttpServer fed hostile bytes over raw
// sockets. Every malformed request must come back 4xx/5xx — never a crash,
// never a hang — and the server must keep serving well-formed requests on
// fresh connections afterwards.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "net/http.h"

namespace vchain::net {
namespace {

class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Read until the peer closes (our server closes after any 4xx/5xx).
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServer::Options opts;
    opts.num_threads = 2;
    opts.max_body_bytes = 1024;
    opts.recv_timeout_seconds = 2;  // hostile half-requests time out fast
    auto server = HttpServer::Start(opts, [](const HttpRequest& req) {
      HttpResponse resp;
      resp.content_type = "text/plain";
      resp.body = req.method + " " + req.path + " ok\n";
      return resp;
    });
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server.TakeValue();
  }

  std::string StatusOf(const std::string& raw_request) {
    RawSocket sock(server_->port());
    EXPECT_TRUE(sock.connected());
    sock.Send(raw_request);
    std::string reply = sock.ReadAll();
    size_t eol = reply.find("\r\n");
    return eol == std::string::npos ? reply : reply.substr(0, eol);
  }

  void ExpectStillServing() {
    HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
    auto resp = conn.RoundTrip("GET", "/ping", "", "text/plain");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 200);
    EXPECT_EQ(resp.value().body, "GET /ping ok\n");
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, WellFormedRequestRoundTrips) {
  ExpectStillServing();
}

TEST_F(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
  for (int i = 0; i < 16; ++i) {
    auto resp = conn.RoundTrip("POST", "/n", std::to_string(i), "text/plain");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 200);
  }
}

TEST_F(HttpServerTest, MalformedRequestsGet400) {
  for (const char* bad : {
           "GARBAGE\r\n\r\n",                       // no method/target/version
           "GET /\r\n\r\n",                          // missing version
           "GET / HTTP/2.0\r\n\r\n",                 // unsupported version
           "GET relative HTTP/1.1\r\n\r\n",          // target not absolute
           "GET /%zz HTTP/1.1\r\n\r\n",              // bad percent escape
           "GET / HTTP/1.1\r\nno-colon\r\n\r\n",     // malformed header
           "GET / HTTP/1.1\r\n : empty-name\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
           "GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",  // obs-fold
       }) {
    EXPECT_EQ(StatusOf(bad), "HTTP/1.1 400 Bad Request") << bad;
  }
  ExpectStillServing();
}

TEST_F(HttpServerTest, TransferEncodingIsNotImplemented) {
  EXPECT_EQ(StatusOf("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            "HTTP/1.1 501 Not Implemented");
  ExpectStillServing();
}

TEST_F(HttpServerTest, OversizedBodyIs413) {
  EXPECT_EQ(StatusOf("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"),
            "HTTP/1.1 413 Payload Too Large");
  ExpectStillServing();
}

TEST_F(HttpServerTest, OversizedHeadIs400) {
  std::string huge = "GET / HTTP/1.1\r\nX-Filler: ";
  huge += std::string(HttpServer::kMaxHeadBytes + 10, 'a');
  EXPECT_EQ(StatusOf(huge), "HTTP/1.1 400 Bad Request");
  ExpectStillServing();
}

TEST_F(HttpServerTest, TooManyHeadersIs400) {
  std::string req = "GET / HTTP/1.1\r\n";
  for (size_t i = 0; i <= HttpServer::kMaxHeaderCount; ++i) {
    req += "X-H" + std::to_string(i) + ": v\r\n";
  }
  req += "\r\n";
  EXPECT_EQ(StatusOf(req), "HTTP/1.1 400 Bad Request");
  ExpectStillServing();
}

TEST_F(HttpServerTest, SlowPeerTimesOutWithoutWedgingWorkers) {
  RawSocket slow(server_->port());
  ASSERT_TRUE(slow.connected());
  slow.Send("GET / HTT");  // half a request, then silence
  // The worker must reclaim itself via the progress deadline; meanwhile
  // (and afterwards) other connections keep being served.
  ExpectStillServing();
  // Slow-loris answer: 408 + close (the peer started a head and stalled).
  EXPECT_EQ(slow.ReadAll().substr(0, 12), "HTTP/1.1 408");
  ExpectStillServing();
}

TEST_F(HttpServerTest, StopUnblocksEverything) {
  RawSocket idle(server_->port());
  ASSERT_TRUE(idle.connected());
  server_->Stop();  // must not hang on the idle connection
  SUCCEED();
}

const std::string* FindHeader(const HttpResponse& resp,
                              const std::string& key) {
  for (const auto& [k, v] : resp.headers) {
    if (k == key) return &v;  // client lower-cases field names
  }
  return nullptr;
}

TEST_F(HttpServerTest, RequestIdIsGeneratedWhenAbsent) {
  HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
  auto resp = conn.RoundTrip("GET", "/ping", "", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const std::string* id = FindHeader(resp.value(), "x-request-id");
  ASSERT_NE(id, nullptr) << "every response must carry X-Request-Id";
  EXPECT_FALSE(id->empty());
  // A second request gets a different id.
  auto resp2 = conn.RoundTrip("GET", "/ping", "", "text/plain");
  ASSERT_TRUE(resp2.ok());
  const std::string* id2 = FindHeader(resp2.value(), "x-request-id");
  ASSERT_NE(id2, nullptr);
  EXPECT_NE(*id, *id2);
}

TEST_F(HttpServerTest, ClientRequestIdIsEchoedBack) {
  HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
  auto resp = conn.RoundTrip("GET", "/ping", "", "text/plain", nullptr,
                             {{"X-Request-Id", "abc-123.DEF"}});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const std::string* id = FindHeader(resp.value(), "x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "abc-123.DEF");
}

TEST_F(HttpServerTest, HostileRequestIdIsReplacedNotEchoed) {
  HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
  // Characters outside [0-9a-zA-Z-_.] (here: quotes, spaces, braces) must
  // never be reflected into a response header or a log line.
  auto resp = conn.RoundTrip("GET", "/ping", "", "text/plain", nullptr,
                             {{"X-Request-Id", "evil\"id {inject}"}});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const std::string* id = FindHeader(resp.value(), "x-request-id");
  ASSERT_NE(id, nullptr);
  EXPECT_FALSE(id->empty());
  EXPECT_EQ(id->find_first_of("\" {}"), std::string::npos);
  EXPECT_NE(*id, "evil\"id {inject}");
}

TEST(HttpServerMetricsTest, InjectedRegistryIsTheOneSourceOfTruth) {
  metrics::Registry registry;
  HttpServer::Options opts;
  opts.num_threads = 2;
  opts.registry = &registry;
  auto server = HttpServer::Start(opts, [](const HttpRequest&) {
    return HttpResponse{.content_type = "text/plain", .body = "ok\n"};
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpConnection conn({.host = "127.0.0.1", .port = server.value()->port()});
  for (int i = 0; i < 3; ++i) {
    auto resp = conn.RoundTrip("GET", "/x", "", "text/plain");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }
  // stats() reads back the same registry counters /metrics exposes.
  HttpServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.accepted, 1u);  // one keep-alive connection
  std::string text = registry.WriteText();
  EXPECT_NE(text.find("vchain_http_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vchain_http_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("vchain_http_responses_total{class=\"2xx\"} 3"),
      std::string::npos);
  server.value()->Stop();
}

}  // namespace
}  // namespace vchain::net

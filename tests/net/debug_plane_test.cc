// The debug plane's gate and payloads. Off by default, the three /debug/*
// routes must be byte-indistinguishable from any unknown endpoint (the
// introspection plane must not change the public surface). Enabled, each
// serves strict JSON (net/json.h parses it — the same parser that rejects
// hostile wire input, so "parseable" is a real property, not vibes), and
// /debug/config carries per-field provenance that flips from "default" to
// "set" when an option was actually set.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/query_builder.h"
#include "api/service.h"
#include "core/vchain.h"
#include "net/http.h"
#include "net/json.h"
#include "net/sp_server.h"

namespace vchain::net {
namespace {

using api::Service;
using api::ServiceOptions;
using chain::Object;

constexpr uint64_t kBaseTime = 1000;

std::unique_ptr<Service> SmallService(uint64_t canary_sample_every = 0,
                                      uint64_t trace_sample_every = 1) {
  ServiceOptions opts;
  opts.engine = api::EngineKind::kMockAcc1;
  opts.config.mode = core::IndexMode::kBoth;
  opts.config.schema = chain::NumericSchema{2, 8};
  opts.oracle_seed = 2026;
  opts.canary_sample_every = canary_sample_every;
  opts.trace_sample_every = trace_sample_every;
  auto svc = Service::Open(std::move(opts)).TakeValue();
  for (size_t b = 0; b < 3; ++b) {
    std::vector<Object> objs(2);
    objs[0].id = b * 2;
    objs[1].id = b * 2 + 1;
    for (Object& o : objs) {
      o.timestamp = kBaseTime + b;
      o.numeric = {10, 20};
      o.keywords = {"Sedan"};
    }
    EXPECT_TRUE(svc->Append(std::move(objs), kBaseTime + b).ok());
  }
  return svc;
}

Result<HttpResponse> Get(uint16_t port, const std::string& path) {
  HttpConnection conn({.host = "127.0.0.1", .port = port});
  return conn.RoundTrip("GET", path, "", "text/plain");
}

TEST(DebugPlaneTest, DisabledRoutesAreIndistinguishableFrom404) {
  auto svc = SmallService();
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  ASSERT_FALSE(sopts.debug_endpoints);  // off is the default
  auto server = SpServer::Start(svc.get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = server.value()->port();

  auto unknown = Get(port, "/no/such/route");
  ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
  ASSERT_EQ(unknown.value().status, 404);
  for (const char* path :
       {"/debug/traces", "/debug/events", "/debug/config"}) {
    auto resp = Get(port, path);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 404) << path;
    EXPECT_EQ(resp.value().body, unknown.value().body) << path;
    EXPECT_EQ(resp.value().content_type, unknown.value().content_type);
  }
  server.value()->Stop();
}

TEST(DebugPlaneTest, EnabledRoutesServeStrictJson) {
  auto svc = SmallService(/*canary_sample_every=*/1);
  SpServer::Options sopts;
  sopts.http.num_threads = 1;
  sopts.debug_endpoints = true;
  auto server = SpServer::Start(svc.get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = server.value()->port();

  // Give the ring and recorder something to show.
  auto q = api::QueryBuilder()
               .Window(kBaseTime, kBaseTime + 2)
               .AllOf({"Sedan"})
               .Build();
  ASSERT_TRUE(svc->Query(q).ok());
  svc->DrainCanary();

  auto traces = Get(port, "/debug/traces");
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  ASSERT_EQ(traces.value().status, 200);
  EXPECT_EQ(traces.value().content_type, "application/json");
  auto traces_json = ParseJson(traces.value().body);
  ASSERT_TRUE(traces_json.ok()) << traces_json.status().ToString();
  const JsonValue* offered = traces_json.value().Find("offered");
  ASSERT_NE(offered, nullptr);
  EXPECT_GE(offered->as_number(), 1u);  // the query above was retained
  const JsonValue* trace_list = traces_json.value().Find("traces");
  ASSERT_NE(trace_list, nullptr);
  ASSERT_TRUE(trace_list->is_array());
  ASSERT_FALSE(trace_list->items().empty());
  EXPECT_NE(trace_list->items()[0].Find("spans"), nullptr);

  auto events = Get(port, "/debug/events");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events.value().status, 200);
  auto events_json = ParseJson(events.value().body);
  ASSERT_TRUE(events_json.ok()) << events_json.status().ToString();
  ASSERT_NE(events_json.value().Find("next_seq"), nullptr);
  ASSERT_NE(events_json.value().Find("events"), nullptr);

  auto config = Get(port, "/debug/config");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config.value().status, 200);
  auto config_json = ParseJson(config.value().body);
  ASSERT_TRUE(config_json.ok()) << config_json.status().ToString();
  const JsonValue* service = config_json.value().Find("service");
  ASSERT_NE(service, nullptr);
  ASSERT_TRUE(service->is_object());
  const JsonValue* chain = config_json.value().Find("chain");
  ASSERT_NE(chain, nullptr);

  // Provenance: canary_sample_every was set to a non-default value above,
  // engine was set explicitly; retain_window rode its default.
  auto provenance = [&](const JsonValue* tier, const char* field) {
    const JsonValue* f = tier->Find(field);
    EXPECT_NE(f, nullptr) << field;
    if (f == nullptr) return std::string();
    const JsonValue* p = f->Find("provenance");
    EXPECT_NE(p, nullptr) << field;
    return p != nullptr ? p->as_string() : std::string();
  };
  EXPECT_EQ(provenance(service, "canary_sample_every"), "set");
  EXPECT_EQ(provenance(service, "engine"), "set");
  EXPECT_EQ(provenance(service, "retain_window"), "default");

  // The debug plane is read-only.
  HttpConnection conn({.host = "127.0.0.1", .port = port});
  auto post = conn.RoundTrip("POST", "/debug/traces", "{}", "application/json");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post.value().status, 405);

  server.value()->Stop();
}

}  // namespace
}  // namespace vchain::net

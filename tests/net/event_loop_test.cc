// Event-loop torture: the readiness-driven transport under hostile and
// degenerate workloads. The invariants proved here are the ones the
// streaming subscription API leans on:
//
//   * malformed bytes are answered 400 and never wedge the loop;
//   * a thousand idle keep-alive connections cost one epoll set, not a
//     thousand blocked threads — queries keep serving at full speed;
//   * a stream consumer slower than its producer hits the bounded buffer
//     (Write() backpressure or disconnect), never unbounded server memory;
//   * Drain() ends parked streams promptly instead of waiting out their
//     consumers;
//   * a Responder parked past handler return completes from any thread,
//     and one dropped without completing answers 500 (no leaked
//     connections from buggy routes).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/http.h"

namespace vchain::net {
namespace {

using Clock = std::chrono::steady_clock;

class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawSocket(const RawSocket&) = delete;
  RawSocket& operator=(const RawSocket&) = delete;

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Read until the peer closes.
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  /// Read until `token` appears in the accumulated bytes, EOF, or timeout.
  std::string ReadUntil(const std::string& token, int timeout_ms) {
    std::string out;
    char buf[4096];
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (out.find(token) == std::string::npos) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) break;
      struct pollfd pfd = {fd_, POLLIN, 0};
      int p = ::poll(&pfd, 1, static_cast<int>(left));
      if (p <= 0) break;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Poll `cond` every 2ms until true or `timeout_ms` elapses.
bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// Async-handler server with the route shapes the subscription endpoints
/// use: buffered, parked (long-poll), streaming, and buggy (no completion).
class EventLoopTest : public ::testing::Test {
 protected:
  static constexpr size_t kFloodCap = 64u << 20;  // producer gives up here

  void StartServer(HttpServer::Options opts) {
    opts.registry = &registry_;
    auto server = HttpServer::Start(
        std::move(opts), [this](const HttpRequest& req, Responder responder) {
          HandleRoute(req, std::move(responder));
        });
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server.TakeValue();
  }

  void HandleRoute(const HttpRequest& req, Responder responder) {
    if (req.path == "/ping") {
      responder.Send(
          {.status = 200, .content_type = "text/plain", .body = "pong\n"});
    } else if (req.path == "/park") {
      std::lock_guard<std::mutex> lock(mu_);
      parked_.push_back(std::move(responder));
      parked_cv_.notify_all();
    } else if (req.path == "/park-stream") {
      responder.BeginStream(200, "text/event-stream");
      responder.Write("hello\n\n");
      std::lock_guard<std::mutex> lock(mu_);
      parked_.push_back(std::move(responder));
      parked_cv_.notify_all();
    } else if (req.path == "/flood") {
      // Producer far faster than any consumer: write until the bounded
      // buffer pushes back (Write false repeatedly, or disconnect).
      const std::string chunk(1024, 'x');
      size_t accepted = 0;
      int consecutive_fail = 0;
      bool backpressured = false;
      if (responder.BeginStream(200, "application/octet-stream")) {
        while (accepted < kFloodCap) {
          if (!responder.alive()) {  // overflow disconnect also counts
            backpressured = true;
            break;
          }
          if (responder.Write(chunk)) {
            accepted += chunk.size();
            consecutive_fail = 0;
          } else if (++consecutive_fail >= 200) {
            backpressured = true;  // 200 rejects over >= 200ms: buffer full
            break;
          } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        responder.End();
      }
      flood_accepted_.store(accepted);
      flood_backpressured_.store(backpressured);
      flood_done_.store(true);
    } else if (req.path == "/drop") {
      // Return without completing: the transport must answer 500 for us.
    } else {
      responder.Send(
          {.status = 404, .content_type = "text/plain", .body = "nope\n"});
    }
  }

  void ExpectStillServing() {
    HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
    auto resp = conn.RoundTrip("GET", "/ping", "", "text/plain");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 200);
    EXPECT_EQ(resp.value().body, "pong\n");
  }

  Responder TakeParked(int timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    parked_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return !parked_.empty(); });
    if (parked_.empty()) return Responder();
    Responder r = std::move(parked_.back());
    parked_.pop_back();
    return r;
  }

  metrics::Registry registry_;
  std::unique_ptr<HttpServer> server_;
  std::mutex mu_;
  std::condition_variable parked_cv_;
  std::vector<Responder> parked_;
  std::atomic<size_t> flood_accepted_{0};
  std::atomic<bool> flood_backpressured_{false};
  std::atomic<bool> flood_done_{false};
};

TEST_F(EventLoopTest, MalformedRequestsNeverWedgeTheLoop) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  opts.recv_timeout_seconds = 2;
  StartServer(std::move(opts));
  for (const char* bad : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",
           "GET / HTTP/2.0\r\n\r\n",
           "GET relative HTTP/1.1\r\n\r\n",
           "GET /%zz HTTP/1.1\r\n\r\n",
           "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
           "GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
           "GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
       }) {
    RawSocket sock(server_->port());
    ASSERT_TRUE(sock.connected());
    sock.Send(bad);
    std::string reply = sock.ReadAll();
    EXPECT_EQ(reply.substr(0, reply.find("\r\n")), "HTTP/1.1 400 Bad Request")
        << bad;
    // The loop must be answering well-formed traffic between every blow.
    ExpectStillServing();
  }
}

TEST_F(EventLoopTest, ThousandIdleKeepAliveConnectionsStayCheap) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  opts.max_connections = 1100;
  opts.recv_timeout_seconds = 120;  // idles must survive the test
  StartServer(std::move(opts));

  constexpr size_t kIdle = 1000;
  std::vector<std::unique_ptr<RawSocket>> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    idle.push_back(std::make_unique<RawSocket>(server_->port()));
    ASSERT_TRUE(idle.back()->connected()) << "connection " << i;
  }
  ASSERT_TRUE(WaitFor(
      [&] { return server_->stats().active_connections >= kIdle; }, 5000))
      << "loop accepted " << server_->stats().active_connections;

  // Real requests keep round-tripping while the thousand idles are held.
  for (int i = 0; i < 8; ++i) ExpectStillServing();

  // The idles are live connections, not zombies: any of them can speak up.
  idle[0]->Send("GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
  std::string reply = idle[0]->ReadAll();
  EXPECT_EQ(reply.substr(0, reply.find("\r\n")), "HTTP/1.1 200 OK");
  EXPECT_NE(reply.find("pong"), std::string::npos);

  // Hanging up releases their slots (peer EOF wakes the loop).
  idle.clear();
  EXPECT_TRUE(WaitFor(
      [&] { return server_->stats().active_connections <= 4; }, 5000))
      << "still held: " << server_->stats().active_connections;
  ExpectStillServing();
}

TEST_F(EventLoopTest, SlowStreamConsumerHitsBackpressureNotServerMemory) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  opts.max_stream_buffer_bytes = 4096;  // tiny: overflow fast
  StartServer(std::move(opts));

  RawSocket sock(server_->port());
  ASSERT_TRUE(sock.connected());
  sock.Send("GET /flood HTTP/1.1\r\n\r\n");
  // Do not read: the consumer is infinitely slow. The producer must stop
  // long before its 64 MiB budget — bounded by the stream buffer plus
  // whatever the kernel socket buffers absorb.
  ASSERT_TRUE(WaitFor([&] { return flood_done_.load(); }, 30000));
  EXPECT_TRUE(flood_backpressured_.load());
  EXPECT_LT(flood_accepted_.load(), kFloodCap);

  // Now drain what did get through: a response head plus bounded payload,
  // then EOF — the server never owed us the rest.
  std::string got = sock.ReadAll();
  EXPECT_EQ(got.substr(0, got.find("\r\n")), "HTTP/1.1 200 OK");
  ExpectStillServing();
}

TEST_F(EventLoopTest, DrainEndsParkedStreamsPromptly) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  StartServer(std::move(opts));

  RawSocket sock(server_->port());
  ASSERT_TRUE(sock.connected());
  sock.Send("GET /park-stream HTTP/1.1\r\n\r\n");
  std::string head = sock.ReadUntil("hello", 5000);
  ASSERT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(head.find("hello"), std::string::npos);

  // The stream's Responder is parked in parked_ — nobody will End() it.
  // Drain must not wait out the consumer: it ends the stream itself.
  Clock::time_point t0 = Clock::now();
  server_->Drain(/*timeout_seconds=*/10);
  std::string rest = sock.ReadAll();  // EOF once the stream is shut
  auto elapsed =
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - t0);
  EXPECT_LT(elapsed.count(), 8) << "drain waited out a parked stream";

  Responder r = TakeParked(1000);
  EXPECT_FALSE(r.alive());  // the parked producer was told to stop
}

TEST_F(EventLoopTest, ParkedRequestCompletesFromAnotherThread) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  StartServer(std::move(opts));

  Result<HttpResponse> got = Status::Internal("never ran");
  std::thread client_thread([&] {
    HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
    got = conn.RoundTrip("GET", "/park", "", "text/plain");
  });
  Responder r = TakeParked(5000);
  ASSERT_TRUE(r.alive());
  // Complete the long-poll from a foreign thread, well after the handler
  // returned — exactly how the event hub answers /events.
  r.Send({.status = 200, .content_type = "text/plain", .body = "late\n"});
  client_thread.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().status, 200);
  EXPECT_EQ(got.value().body, "late\n");
}

/// Restores the soft RLIMIT_NOFILE even when an ASSERT bails out early.
struct FdLimitGuard {
  struct rlimit saved;
  FdLimitGuard() { ::getrlimit(RLIMIT_NOFILE, &saved); }
  ~FdLimitGuard() { ::setrlimit(RLIMIT_NOFILE, &saved); }
};

TEST_F(EventLoopTest, FdExhaustionParksListenerAndRecovers) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  StartServer(std::move(opts));
  ExpectStillServing();

  // The client fd must exist before the table fills; connect() after that
  // completes at SYN-ACK from the kernel backlog without the server
  // accepting, which is exactly the EMFILE trap: a level-triggered
  // listener with a backlog it can never drain.
  int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0);

  FdLimitGuard guard;
  struct rlimit tight = guard.saved;
  tight.rlim_cur = std::min<rlim_t>(guard.saved.rlim_cur, 512);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  for (;;) {
    int p[2];
    if (::pipe(p) != 0) break;
    fillers.push_back(p[0]);
    fillers.push_back(p[1]);
  }
  ASSERT_FALSE(fillers.empty());  // the table really is exhausted now

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(cfd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string req = "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(cfd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));

  // The loop must park the listener, not hot-spin on it: over a half
  // second of EMFILE the process burns almost no CPU. A spinning loop
  // thread would consume the entire window.
  struct rusage ru0, ru1;
  ::getrusage(RUSAGE_SELF, &ru0);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ::getrusage(RUSAGE_SELF, &ru1);
  auto cpu_us = [](const struct rusage& a, const struct rusage& b) {
    auto us = [](const struct timeval& t) {
      return static_cast<int64_t>(t.tv_sec) * 1000000 + t.tv_usec;
    };
    return (us(b.ru_utime) - us(a.ru_utime)) +
           (us(b.ru_stime) - us(a.ru_stime));
  };
  EXPECT_LT(cpu_us(ru0, ru1), 250000)
      << "loop burned CPU while the fd table was exhausted";

  // Slots free up: the parked listener re-arms, drains the backlog, and
  // the connection that waited out the famine gets served.
  for (int fd : fillers) ::close(fd);
  fillers.clear();
  std::string reply;
  char buf[4096];
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    if (left <= 0) break;
    struct pollfd pfd = {cfd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) break;
    ssize_t n = ::recv(cfd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(cfd);
  EXPECT_EQ(reply.substr(0, reply.find("\r\n")), "HTTP/1.1 200 OK");
  EXPECT_NE(reply.find("pong"), std::string::npos);
  ExpectStillServing();
}

TEST_F(EventLoopTest, DroppedResponderAnswers500) {
  HttpServer::Options opts;
  opts.num_threads = 2;
  StartServer(std::move(opts));
  HttpConnection conn({.host = "127.0.0.1", .port = server_->port()});
  auto resp = conn.RoundTrip("GET", "/drop", "", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 500);
  ExpectStillServing();
}

}  // namespace
}  // namespace vchain::net

// Wire-codec hardening (net/json.h, net/wire.h): exact round trips for the
// JSON query framing and the binary batch/header frames, then the same
// hostile-input sweeps the rest of the serde layer gets — every truncation
// of a binary frame is Corruption, every byte flip is handled without a
// crash or a hostile-length allocation, and malformed JSON never panics.

#include <gtest/gtest.h>

#include "net/json.h"
#include "net/wire.h"

namespace vchain::net {
namespace {

using core::Query;

Query SampleQuery() {
  Query q;
  q.time_start = 1000;
  q.time_end = 1090;
  q.ranges = {{0, 10, 120}, {1, 0, 255}};
  q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
  return q;
}

bool SameQuery(const Query& a, const Query& b) {
  if (a.time_start != b.time_start || a.time_end != b.time_end) return false;
  if (a.ranges.size() != b.ranges.size()) return false;
  for (size_t i = 0; i < a.ranges.size(); ++i) {
    if (a.ranges[i].dim != b.ranges[i].dim || a.ranges[i].lo != b.ranges[i].lo ||
        a.ranges[i].hi != b.ranges[i].hi) {
      return false;
    }
  }
  return a.keyword_cnf == b.keyword_cnf;
}

// --- JSON layer ---------------------------------------------------------------

TEST(JsonTest, ParsesTheProtocolSubset) {
  auto v = ParseJson(R"({"a": [1, 2], "b": "x", "c": true, "d": null})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v.value().is_object());
  EXPECT_EQ(v.value().Find("a")->items().size(), 2u);
  EXPECT_EQ(v.value().Find("a")->items()[1].as_number(), 2u);
  EXPECT_EQ(v.value().Find("b")->as_string(), "x");
  EXPECT_TRUE(v.value().Find("c")->as_bool());
  EXPECT_TRUE(v.value().Find("d")->is_null());
}

TEST(JsonTest, FullU64RangeSurvives) {
  auto v = ParseJson("18446744073709551615");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_number(), UINT64_MAX);
  EXPECT_FALSE(ParseJson("18446744073709551616").ok());  // overflow
}

TEST(JsonTest, RejectsWhatTheProtocolDoesNotNeed) {
  for (const char* bad :
       {"-1", "1.5", "1e3", "+1", "01", "0x10",       // non-u64 numbers
        "\"unterminated", "[1,", "{\"a\":}", "",       // truncations
        "[1] garbage", "{\"a\":1,\"a\":2}",            // trailing / dup key
        "\"\\x41\"", "\"\\ud800\"", "\"raw\tctrl\"",   // bad strings
        "nul", "tru", "falsehood"}) {
    auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    EXPECT_TRUE(v.status().IsInvalidArgument()) << bad;
  }
}

TEST(JsonTest, DepthIsCapped) {
  std::string deep(kMaxJsonDepth + 2, '[');
  std::string closer(kMaxJsonDepth + 2, ']');
  EXPECT_FALSE(ParseJson(deep + closer).ok());
  std::string ok_depth(8, '[');
  std::string ok_close(8, ']');
  EXPECT_TRUE(ParseJson(ok_depth + ok_close).ok());
}

TEST(JsonTest, StringEscapesRoundTrip) {
  std::string nasty = "quote\" back\\slash \n\t\x01 uni\xE2\x82\xAC";
  std::string dumped = JsonValue::Str(nasty).Dump();
  auto back = ParseJson(dumped);
  ASSERT_TRUE(back.ok()) << dumped;
  EXPECT_EQ(back.value().as_string(), nasty);
  // \uXXXX escapes and surrogate pairs decode to UTF-8.
  auto uni = ParseJson("\"\\u20ac \\ud83d\\ude00\"");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni.value().as_string(), "\xE2\x82\xAC \xF0\x9F\x98\x80");
}

// --- query framing ------------------------------------------------------------

TEST(WireQueryTest, RoundTripIsExact) {
  Query q = SampleQuery();
  auto back = QueryFromJson(QueryToJson(q));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(SameQuery(q, back.value()));
}

TEST(WireQueryTest, UnicodeKeywordsSurvive) {
  Query q;
  q.keyword_cnf = {{"\xE2\x82\xAC", "tag with \"quotes\" and \\slashes\\"}};
  auto back = QueryFromJson(QueryToJson(q));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().keyword_cnf, q.keyword_cnf);
}

TEST(WireQueryTest, DefaultWindowSpansEverything) {
  Query q;  // no window set: [0, u64max]
  auto back = QueryFromJson(QueryToJson(q));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().time_start, 0u);
  EXPECT_EQ(back.value().time_end, UINT64_MAX);
}

TEST(WireQueryTest, MalformedRequestsAreInvalidArgument) {
  for (const char* bad : {
           "",                                       // empty
           "not json",                               //
           "[]",                                     // wrong top-level type
           "{}",                                     // missing members
           R"({"window":[1],"ranges":[],"cnf":[]})",  // short window
           R"({"window":[1,2],"ranges":{},"cnf":[]})",  // ranges not array
           R"({"window":[1,2],"ranges":[],"cnf":[["a"],"b"]})",  // clause type
           R"({"window":[1,2],"ranges":[],"cnf":[[1]]})",        // kw type
           R"({"window":[1,2],"ranges":[{"dim":4294967296,"lo":0,"hi":1}],"cnf":[]})",
       }) {
    auto q = QueryFromJson(bad);
    EXPECT_FALSE(q.ok()) << "accepted: " << bad;
    EXPECT_TRUE(q.status().IsInvalidArgument()) << bad;
  }
}

TEST(WireQueryTest, SizeCapsAreEnforced) {
  {
    Query q;
    q.keyword_cnf.assign(kMaxWireClauses + 1, {"a"});
    EXPECT_FALSE(QueryFromJson(QueryToJson(q)).ok());
  }
  {
    Query q;
    q.keyword_cnf = {
        std::vector<std::string>(kMaxWireKeywordsPerClause + 1, "a")};
    EXPECT_FALSE(QueryFromJson(QueryToJson(q)).ok());
  }
  {
    Query q;
    q.ranges.assign(kMaxWireRanges + 1, {0, 0, 1});
    EXPECT_FALSE(QueryFromJson(QueryToJson(q)).ok());
  }
  {
    Query q;
    q.keyword_cnf = {{std::string(kMaxWireKeywordBytes + 1, 'k')}};
    EXPECT_FALSE(QueryFromJson(QueryToJson(q)).ok());
  }
}

TEST(WireBatchRequestTest, RoundTripAndCaps) {
  std::vector<Query> qs = {SampleQuery(), Query{}};
  auto back = BatchRequestFromJson(BatchRequestToJson(qs));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_TRUE(SameQuery(back.value()[0], qs[0]));

  std::vector<Query> too_many(kMaxWireBatchQueries + 1);
  EXPECT_FALSE(BatchRequestFromJson(BatchRequestToJson(too_many)).ok());
}

// --- binary frames ------------------------------------------------------------

std::vector<WireBatchItem> SampleBatch() {
  std::vector<WireBatchItem> items(3);
  items[0].response_bytes = {0x01, 0x02, 0x03, 0xFF};
  items[1].status = Status::InvalidArgument("inverted range");
  items[2].response_bytes = {};  // empty-but-ok response
  return items;
}

TEST(WireBatchFrameTest, RoundTripIsExact) {
  auto items = SampleBatch();
  Bytes frame = EncodeBatchResponse(items);
  auto back = DecodeBatchResponse(ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_TRUE(back.value()[0].status.ok());
  EXPECT_EQ(back.value()[0].response_bytes, items[0].response_bytes);
  EXPECT_TRUE(back.value()[1].status.IsInvalidArgument());
  EXPECT_EQ(back.value()[1].status.message(), "inverted range");
  EXPECT_TRUE(back.value()[2].status.ok());
  EXPECT_TRUE(back.value()[2].response_bytes.empty());
}

TEST(WireBatchFrameTest, EveryTruncationIsCorruption) {
  Bytes frame = EncodeBatchResponse(SampleBatch());
  for (size_t len = 0; len < frame.size(); ++len) {
    auto st = DecodeBatchResponse(ByteSpan(frame.data(), len));
    ASSERT_FALSE(st.ok()) << "prefix " << len << " decoded";
    ASSERT_TRUE(st.status().IsCorruption()) << st.status().ToString();
  }
}

TEST(WireBatchFrameTest, EveryByteFlipIsHandledGracefully) {
  Bytes frame = EncodeBatchResponse(SampleBatch());
  for (size_t i = 0; i < frame.size(); ++i) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0xFF}}) {
      frame[i] ^= mask;
      auto st = DecodeBatchResponse(ByteSpan(frame.data(), frame.size()));
      if (!st.ok()) {
        ASSERT_TRUE(st.status().IsCorruption()) << st.status().ToString();
      }
      frame[i] ^= mask;
    }
  }
}

TEST(WireBatchFrameTest, HostileCountCannotForceAllocation) {
  ByteWriter w;
  w.PutU32(0xFFFFFFFF);  // claims 4 billion items in a 4-byte body
  auto st = DecodeBatchResponse(ByteSpan(w.bytes().data(), w.bytes().size()));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsCorruption());
}

TEST(WireBatchFrameTest, TrailingBytesAreCorruption) {
  Bytes frame = EncodeBatchResponse(SampleBatch());
  frame.push_back(0x00);
  auto st = DecodeBatchResponse(ByteSpan(frame.data(), frame.size()));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsCorruption());
}

std::vector<chain::BlockHeader> SampleHeaders() {
  std::vector<chain::BlockHeader> headers(3);
  for (size_t i = 0; i < headers.size(); ++i) {
    headers[i].height = i;
    headers[i].timestamp = 1000 + 10 * i;
    headers[i].nonce = 7 * i;
    headers[i].prev_hash[0] = static_cast<uint8_t>(i);
    headers[i].object_root[1] = static_cast<uint8_t>(0xA0 + i);
    headers[i].skiplist_root[2] = static_cast<uint8_t>(0xB0 + i);
  }
  return headers;
}

TEST(WireHeaderPageTest, RoundTripIsExact) {
  auto headers = SampleHeaders();
  Bytes frame = EncodeHeaderPage(headers);
  auto back = DecodeHeaderPage(ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), headers.size());
  for (size_t i = 0; i < headers.size(); ++i) {
    EXPECT_EQ(back.value()[i], headers[i]);
  }
}

TEST(WireHeaderPageTest, EveryTruncationIsCorruption) {
  Bytes frame = EncodeHeaderPage(SampleHeaders());
  for (size_t len = 0; len < frame.size(); ++len) {
    auto st = DecodeHeaderPage(ByteSpan(frame.data(), len));
    ASSERT_FALSE(st.ok()) << "prefix " << len << " decoded";
    ASSERT_TRUE(st.status().IsCorruption());
  }
}

TEST(WireHeaderPageTest, HostileCountAndTrailingBytesRejected) {
  {
    ByteWriter w;
    w.PutU32(0xFFFFFFFF);
    auto st = DecodeHeaderPage(ByteSpan(w.bytes().data(), w.bytes().size()));
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.status().IsCorruption());
  }
  {
    Bytes frame = EncodeHeaderPage(SampleHeaders());
    frame.push_back(0x42);
    auto st = DecodeHeaderPage(ByteSpan(frame.data(), frame.size()));
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.status().IsCorruption());
  }
}

// --- stats + status taxonomy --------------------------------------------------

TEST(WireStatsTest, RoundTripIsExact) {
  api::ServiceStats stats;
  stats.engine = api::EngineKind::kAcc1;
  stats.durable = true;
  stats.num_blocks = 42;
  stats.queries_served = 7;
  stats.subscriptions_active = 3;
  stats.subscription_events_pending = 9;
  stats.proof_cache = {100, 20, 5};
  stats.block_cache = {1, 2, 3};
  auto back = StatsFromJson(StatsToJson(stats));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().engine, stats.engine);
  EXPECT_EQ(back.value().durable, stats.durable);
  EXPECT_EQ(back.value().num_blocks, stats.num_blocks);
  EXPECT_EQ(back.value().queries_served, stats.queries_served);
  EXPECT_EQ(back.value().proof_cache.hits, 100u);
  EXPECT_EQ(back.value().block_cache.evictions, 3u);
}

TEST(WireStatusTest, CodesRoundTripAndRejectUnknown) {
  for (Status::Code code :
       {Status::Code::kInvalidArgument, Status::Code::kNotFound,
        Status::Code::kCorruption, Status::Code::kVerifyFailed,
        Status::Code::kNotSupported, Status::Code::kInternal}) {
    auto back = StatusCodeFromWire(StatusCodeToWire(code));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), code);
  }
  EXPECT_FALSE(StatusCodeFromWire(0).ok());    // kOk never crosses as error
  EXPECT_FALSE(StatusCodeFromWire(200).ok());  // out of range
}

TEST(WireStatusTest, EngineNamesRoundTrip) {
  for (api::EngineKind kind :
       {api::EngineKind::kMockAcc1, api::EngineKind::kMockAcc2,
        api::EngineKind::kAcc1, api::EngineKind::kAcc2}) {
    api::EngineKind back;
    ASSERT_TRUE(api::EngineKindFromName(api::EngineKindName(kind), &back));
    EXPECT_EQ(back, kind);
  }
  api::EngineKind unused;
  EXPECT_FALSE(api::EngineKindFromName("acc3", &unused));
  EXPECT_FALSE(api::EngineKindFromName("", &unused));
}

}  // namespace
}  // namespace vchain::net

// Workload generators: determinism, schema conformance, distribution shape,
// and query selectivity.

#include "workload/datasets.h"

#include <gtest/gtest.h>

#include <set>

namespace vchain::workload {
namespace {

TEST(ZipfTest, SkewConcentratesMass) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  // Head outweighs tail.
  int head = counts[0] + counts[1] + counts[2];
  int tail = 0;
  for (int i = 50; i < 100; ++i) tail += counts[i];
  EXPECT_GT(head, tail);
  EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfTest, CoversSupport) {
  ZipfSampler zipf(8, 0.5);
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.Sample(&rng));
  EXPECT_EQ(seen.size(), 8u);
}

class DatasetTest : public ::testing::TestWithParam<DatasetKind> {};

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::Values(DatasetKind::k4SQ, DatasetKind::kWX,
                                           DatasetKind::kETH),
                         [](const auto& info) {
                           return std::string(DatasetName(info.param));
                         });

TEST_P(DatasetTest, Deterministic) {
  DatasetProfile p = ProfileFor(GetParam(), 8);
  DatasetGenerator a(p, 42), b(p, 42);
  for (int blk = 0; blk < 3; ++blk) {
    EXPECT_EQ(a.NextBlock(), b.NextBlock());
  }
  DatasetGenerator c(p, 43);
  EXPECT_NE(a.NextBlock(), c.NextBlock());
}

TEST_P(DatasetTest, ObjectsConformToSchema) {
  DatasetProfile p = ProfileFor(GetParam(), 8);
  DatasetGenerator gen(p, 7);
  for (int blk = 0; blk < 5; ++blk) {
    auto objects = gen.NextBlock();
    ASSERT_EQ(objects.size(), p.objects_per_block);
    for (const auto& o : objects) {
      EXPECT_TRUE(chain::ValidateObject(o, p.schema).ok());
      EXPECT_EQ(o.keywords.size(), p.keywords_per_object);
      EXPECT_EQ(o.timestamp, gen.TimestampOfBlock(blk));
    }
  }
}

TEST_P(DatasetTest, IdsUniqueAndMonotonic) {
  DatasetProfile p = ProfileFor(GetParam(), 8);
  DatasetGenerator gen(p, 7);
  uint64_t prev = 0;
  bool first = true;
  for (int blk = 0; blk < 4; ++blk) {
    for (const auto& o : gen.NextBlock()) {
      if (!first) EXPECT_GT(o.id, prev);
      prev = o.id;
      first = false;
    }
  }
}

TEST_P(DatasetTest, QueriesRespectSelectivity) {
  DatasetProfile p = ProfileFor(GetParam(), 8);
  DatasetGenerator gen(p, 9);
  for (double sel : {0.1, 0.5}) {
    core::Query q = gen.MakeQuery(sel, 3, 0, 100);
    ASSERT_EQ(q.ranges.size(), p.range_dims_per_query);
    for (const auto& r : q.ranges) {
      double width = static_cast<double>(r.hi - r.lo + 1);
      double frac = width / static_cast<double>(p.schema.DomainSize());
      EXPECT_NEAR(frac, sel, 0.01);
      EXPECT_LE(r.hi, p.schema.MaxValue());
    }
    ASSERT_EQ(q.keyword_cnf.size(), 1u);
    EXPECT_EQ(q.keyword_cnf[0].size(), 3u);
  }
}

TEST_P(DatasetTest, QueriesEventuallyMatchSomething) {
  DatasetProfile p = ProfileFor(GetParam(), 16);
  DatasetGenerator gen(p, 11);
  std::vector<chain::Object> all;
  for (int blk = 0; blk < 20; ++blk) {
    auto objs = gen.NextBlock();
    all.insert(all.end(), objs.begin(), objs.end());
  }
  uint64_t t0 = gen.TimestampOfBlock(0), t1 = gen.TimestampOfBlock(19);
  size_t total = 0;
  for (int i = 0; i < 20; ++i) {
    core::Query q = gen.MakeQuery(0.5, 8, t0, t1);
    for (const auto& o : all) {
      if (core::LocalMatch(o, q, p.schema)) ++total;
    }
  }
  EXPECT_GT(total, 0u) << "generated queries never match: workload broken";
}

TEST(DatasetShapeTest, WxMoreSimilarThanEth) {
  // Cross-object Jaccard similarity ordering drives the paper's index
  // effectiveness story: WX (stable sensors) >> ETH (random transfers).
  auto mean_similarity = [](const DatasetProfile& p, uint64_t seed) {
    DatasetGenerator gen(p, seed);
    auto objs = gen.NextBlock();
    double total = 0;
    int pairs = 0;
    for (size_t i = 0; i < objs.size(); ++i) {
      for (size_t j = i + 1; j < objs.size(); ++j) {
        total += chain::TransformObject(objs[i], p.schema)
                     .Jaccard(chain::TransformObject(objs[j], p.schema));
        ++pairs;
      }
    }
    return total / pairs;
  };
  double wx = mean_similarity(ProfileWX(12), 3);
  double eth = mean_similarity(ProfileETH(12), 3);
  EXPECT_GT(wx, eth);
}

}  // namespace
}  // namespace vchain::workload

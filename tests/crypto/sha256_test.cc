// SHA-256 against FIPS 180-4 / NIST CAVS known-answer vectors.

#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace vchain::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashToHex(Sha256Digest(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashToHex(Sha256Digest(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashToHex(Sha256Digest(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(HashToHex(ctx.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "vChain: verifiable Boolean range queries over blockchain databases";
  Sha256 ctx;
  for (char c : msg) ctx.Update(std::string(1, c));
  EXPECT_EQ(ctx.Finalize(), Sha256Digest(msg));
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise the padding logic at block boundaries (55/56/63/64/65 bytes).
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    std::string msg(len, 'x');
    Sha256 a;
    a.Update(msg);
    Sha256 b;
    b.Update(msg.substr(0, len / 2));
    b.Update(msg.substr(len / 2));
    EXPECT_EQ(a.Finalize(), b.Finalize()) << "len=" << len;
  }
}

TEST(Sha256Test, HashPairDiffersFromConcatReversed) {
  Hash32 a = Sha256Digest(std::string("a"));
  Hash32 b = Sha256Digest(std::string("b"));
  EXPECT_NE(HashPair(a, b), HashPair(b, a));
}

TEST(Sha256Test, Hash64Deterministic) {
  EXPECT_EQ(Hash64("Sedan"), Hash64("Sedan"));
  EXPECT_NE(Hash64("Sedan"), Hash64("Van"));
}

TEST(Sha256Test, LeadingZeroBits) {
  Hash32 h{};
  EXPECT_EQ(LeadingZeroBits(h), 256);
  h[0] = 0x80;
  EXPECT_EQ(LeadingZeroBits(h), 0);
  h[0] = 0x01;
  EXPECT_EQ(LeadingZeroBits(h), 7);
  h[0] = 0x00;
  h[1] = 0x40;
  EXPECT_EQ(LeadingZeroBits(h), 9);
}

TEST(Sha256Test, HashLessThan) {
  Hash32 a{};
  Hash32 b{};
  b[31] = 1;
  EXPECT_TRUE(HashLessThan(a, b));
  EXPECT_FALSE(HashLessThan(b, a));
  EXPECT_FALSE(HashLessThan(a, a));
}

}  // namespace
}  // namespace vchain::crypto

// Pairing correctness: generator sanity, bilinearity, non-degeneracy,
// multi-pairing products. These tests validate the whole crypto stack —
// a single wrong constant anywhere below breaks bilinearity.

#include "crypto/pairing.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace vchain::crypto {
namespace {

Fr RandFr(Rng* rng) {
  return Fr::FromU256Reduce(U256(rng->Next(), rng->Next(), rng->Next(), 0));
}

TEST(GroupTest, GeneratorsOnCurve) {
  EXPECT_TRUE(OnCurve(G1Generator(), G1B()));
  EXPECT_TRUE(OnCurve(G2Generator(), G2B()));
}

TEST(GroupTest, GeneratorsHavePrimeOrderR) {
  G1 rg1 = G1::FromAffine(G1Generator()).ScalarMul(kBnR);
  EXPECT_TRUE(rg1.IsInfinity());
  G2 rg2 = G2::FromAffine(G2Generator()).ScalarMul(kBnR);
  EXPECT_TRUE(rg2.IsInfinity());
}

TEST(GroupTest, JacobianAddConsistency) {
  Rng rng(1);
  G1 g = G1::FromAffine(G1Generator());
  for (int i = 0; i < 20; ++i) {
    U256 a = RandFr(&rng).ToCanonical();
    U256 b = RandFr(&rng).ToCanonical();
    G1 pa = g.ScalarMul(a);
    G1 pb = g.ScalarMul(b);
    U256 sum = a;
    uint64_t carry = sum.AddInPlace(b);
    G1 direct;
    if (carry || sum >= kBnR) {
      U256 reduced = sum;
      reduced.SubInPlace(kBnR);
      direct = g.ScalarMul(reduced);
    } else {
      direct = g.ScalarMul(sum);
    }
    EXPECT_TRUE(pa.Add(pb).Equal(direct));
  }
}

TEST(GroupTest, DoubleMatchesAddSelf) {
  Rng rng(2);
  G1 p = G1::FromAffine(G1Generator()).ScalarMul(RandFr(&rng).ToCanonical());
  EXPECT_TRUE(p.Double().Equal(p.Add(p)));
  G2 q = G2::FromAffine(G2Generator()).ScalarMul(RandFr(&rng).ToCanonical());
  EXPECT_TRUE(q.Double().Equal(q.Add(q)));
}

TEST(GroupTest, AffineRoundTrip) {
  Rng rng(3);
  G1 p = G1::FromAffine(G1Generator()).ScalarMul(RandFr(&rng).ToCanonical());
  G1Affine a = p.ToAffine();
  EXPECT_TRUE(OnCurve(a, G1B()));
  EXPECT_TRUE(G1::FromAffine(a).Equal(p));
}

TEST(GroupTest, InfinityBehaviour) {
  G1 inf = G1::Infinity();
  G1 g = G1::FromAffine(G1Generator());
  EXPECT_TRUE(inf.Add(g).Equal(g));
  EXPECT_TRUE(g.Add(inf).Equal(g));
  EXPECT_TRUE(g.Add(g.Neg()).IsInfinity());
  EXPECT_TRUE(inf.Double().IsInfinity());
  EXPECT_TRUE(g.ScalarMul(U256(0)).IsInfinity());
}

TEST(PairingTest, NonDegenerate) {
  const GT& e = PairingOfGenerators();
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
}

TEST(PairingTest, GtElementHasOrderR) {
  const GT& e = PairingOfGenerators();
  EXPECT_TRUE(e.Pow(kBnR).IsOne());
}

TEST(PairingTest, BilinearInFirstArgument) {
  Rng rng(4);
  Fr a = RandFr(&rng);
  G1Affine pa = G1Mul(a).ToAffine();
  GT lhs = Pairing(pa, G2Generator());
  GT rhs = PairingOfGenerators().Pow(a.ToCanonical());
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, BilinearInSecondArgument) {
  Rng rng(5);
  Fr b = RandFr(&rng);
  G2Affine qb = G2Mul(b).ToAffine();
  GT lhs = Pairing(G1Generator(), qb);
  GT rhs = PairingOfGenerators().Pow(b.ToCanonical());
  EXPECT_EQ(lhs, rhs);
}

TEST(PairingTest, FullBilinearity) {
  Rng rng(6);
  for (int i = 0; i < 3; ++i) {
    Fr a = RandFr(&rng);
    Fr b = RandFr(&rng);
    G1Affine pa = G1Mul(a).ToAffine();
    G2Affine qb = G2Mul(b).ToAffine();
    GT lhs = Pairing(pa, qb);
    GT rhs = PairingOfGenerators().Pow((a * b).ToCanonical());
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(PairingTest, AdditiveInFirstArgument) {
  Rng rng(7);
  Fr a = RandFr(&rng);
  Fr b = RandFr(&rng);
  G1Affine pa = G1Mul(a).ToAffine();
  G1Affine pb = G1Mul(b).ToAffine();
  G1Affine pab = G1Mul(a + b).ToAffine();
  GT split = Pairing(pa, G2Generator()) * Pairing(pb, G2Generator());
  GT joint = Pairing(pab, G2Generator());
  EXPECT_EQ(split, joint);
}

TEST(PairingTest, InfinityGivesOne) {
  EXPECT_TRUE(Pairing(G1Affine(), G2Generator()).IsOne());
  EXPECT_TRUE(Pairing(G1Generator(), G2Affine()).IsOne());
}

TEST(PairingTest, ProductIsOneDetectsIdentity) {
  Rng rng(8);
  Fr a = RandFr(&rng);
  // e(aG1, G2) * e(-aG1, G2) == 1.
  G1Affine pa = G1Mul(a).ToAffine();
  G1Affine pna = G1Mul(a.Neg()).ToAffine();
  EXPECT_TRUE(PairingProductIsOne({{pa, G2Generator()}, {pna, G2Generator()}}));
  // And a non-identity case.
  EXPECT_FALSE(
      PairingProductIsOne({{pa, G2Generator()}, {pa, G2Generator()}}));
}

TEST(PairingTest, ProductMatchesPairwise) {
  Rng rng(9);
  Fr a = RandFr(&rng);
  Fr b = RandFr(&rng);
  G1Affine pa = G1Mul(a).ToAffine();
  G1Affine pb = G1Mul(b).ToAffine();
  G2Affine q = G2Generator();
  GT prod = PairingProduct({{pa, q}, {pb, q}});
  EXPECT_EQ(prod, Pairing(pa, q) * Pairing(pb, q));
}

TEST(SerdeTest, G1RoundTrip) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    G1Affine p = G1Mul(RandFr(&rng)).ToAffine();
    ByteWriter w;
    SerializeG1(p, &w);
    EXPECT_EQ(w.size(), kG1SerializedSize);
    ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
    G1Affine back;
    ASSERT_TRUE(DeserializeG1(&r, &back).ok());
    EXPECT_EQ(back, p);
  }
}

TEST(SerdeTest, G1InfinityRoundTrip) {
  ByteWriter w;
  SerializeG1(G1Affine(), &w);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  G1Affine back;
  ASSERT_TRUE(DeserializeG1(&r, &back).ok());
  EXPECT_TRUE(back.infinity);
}

TEST(SerdeTest, G2RoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    G2Affine q = G2Mul(RandFr(&rng)).ToAffine();
    ByteWriter w;
    SerializeG2(q, &w);
    EXPECT_EQ(w.size(), kG2SerializedSize);
    ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
    G2Affine back;
    ASSERT_TRUE(DeserializeG2(&r, &back).ok());
    EXPECT_EQ(back, q);
  }
}

TEST(SerdeTest, G1RejectsOffCurveX) {
  // x = 4 gives rhs = 67 which is a QR? Construct an x with no curve point by
  // brute force search.
  for (uint64_t x = 0; x < 100; ++x) {
    Fp fx = Fp::FromUint64(x);
    Fp rhs = fx.Square() * fx + G1B();
    Fp root;
    if (!rhs.Sqrt(&root)) {
      uint8_t buf[32] = {0};
      U256ToBytesBE(U256(x), buf);
      ByteReader r(ByteSpan(buf, 32));
      G1Affine out;
      EXPECT_FALSE(DeserializeG1(&r, &out).ok());
      return;
    }
  }
  FAIL() << "no non-residue x found in range";
}

TEST(MultiExpTest, MatchesNaive) {
  Rng rng(12);
  for (size_t n : {1u, 2u, 5u, 33u}) {
    std::vector<G1Affine> bases;
    std::vector<U256> scalars;
    G1 expected = G1::Infinity();
    for (size_t i = 0; i < n; ++i) {
      Fr k = RandFr(&rng);
      G1Affine base = G1Mul(RandFr(&rng)).ToAffine();
      bases.push_back(base);
      scalars.push_back(k.ToCanonical());
      expected = expected.Add(G1::FromAffine(base).ScalarMul(k.ToCanonical()));
    }
    G1 got = MultiScalarMul(bases, scalars);
    EXPECT_TRUE(got.Equal(expected)) << "n=" << n;
  }
}

TEST(MultiExpTest, HandlesZeroScalars) {
  std::vector<G1Affine> bases{G1Generator(), G1Generator()};
  std::vector<U256> scalars{U256(0), U256(7)};
  G1 got = MultiScalarMul(bases, scalars);
  EXPECT_TRUE(got.Equal(G1::FromAffine(G1Generator()).ScalarMul(U256(7))));
}

}  // namespace
}  // namespace vchain::crypto

// Property tests for the batch-affine Pippenger MultiScalarMul: the
// optimized path (signed digits, simultaneous-inversion bucket reduction,
// optional window parallelism) must agree with naive per-point ScalarMul
// summation on every input shape, including the degenerate ones that
// exercise the affine special cases (duplicate bases -> doublings,
// base/negated-base pairs -> cancellations, zero scalars).

#include <gtest/gtest.h>

#include <vector>

#include "common/rand.h"
#include "common/thread_pool.h"
#include "crypto/bn254.h"
#include "crypto/pairing.h"

namespace vchain::crypto {
namespace {

U256 RandScalar(Rng* rng) {
  U256 v(rng->Next(), rng->Next(), rng->Next(), rng->Next());
  v.limb[3] &= (1ULL << 62) - 1;
  return Fr::FromU256Reduce(v).ToCanonical();
}

template <typename F>
JacobianPoint<F> NaiveMsm(const std::vector<AffinePoint<F>>& bases,
                          const std::vector<U256>& scalars) {
  JacobianPoint<F> acc = JacobianPoint<F>::Infinity();
  for (size_t i = 0; i < bases.size(); ++i) {
    acc = acc.Add(JacobianPoint<F>::FromAffine(bases[i]).ScalarMul(scalars[i]));
  }
  return acc;
}

TEST(MsmTest, MatchesNaiveAcrossSizes) {
  Rng rng(101);
  for (size_t n : {1u, 2u, 3u, 7u, 16u, 33u, 90u}) {
    std::vector<G1Affine> bases;
    std::vector<U256> scalars;
    for (size_t i = 0; i < n; ++i) {
      bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
      scalars.push_back(RandScalar(&rng));
    }
    G1 got = MultiScalarMul(bases, scalars);
    EXPECT_TRUE(got.Equal(NaiveMsm(bases, scalars))) << "n=" << n;
  }
}

TEST(MsmTest, ZeroScalarsAndEmptyInput) {
  EXPECT_TRUE(MultiScalarMul(std::vector<G1Affine>{}, std::vector<U256>{})
                  .IsInfinity());

  Rng rng(102);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < 20; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(i % 3 == 0 ? U256(0) : RandScalar(&rng));
  }
  EXPECT_TRUE(
      MultiScalarMul(bases, scalars).Equal(NaiveMsm(bases, scalars)));

  // All-zero scalars.
  std::vector<U256> zeros(bases.size(), U256(0));
  EXPECT_TRUE(MultiScalarMul(bases, zeros).IsInfinity());
}

// Large mixed input engineered to drive the batch-affine rounds through all
// four pair kinds: random points (additions), duplicated (base, scalar)
// pairs that collide in one bucket (doublings), and P / -P pairs with equal
// scalars (cancellation to infinity, then identity propagation).
TEST(MsmTest, BatchAffineSpecialCasesAtScale) {
  Rng rng(103);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < 96; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(RandScalar(&rng));
  }
  // 64 copies of one (base, scalar): deep doubling chains in one bucket.
  G1Affine dup = G1Mul(Fr::FromUint64(777)).ToAffine();
  U256 dup_scalar = RandScalar(&rng);
  for (size_t i = 0; i < 64; ++i) {
    bases.push_back(dup);
    scalars.push_back(dup_scalar);
  }
  // 32 P/-P pairs sharing a scalar: in-bucket cancellations.
  for (size_t i = 0; i < 32; ++i) {
    G1Affine p = G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine();
    U256 s = RandScalar(&rng);
    bases.push_back(p);
    scalars.push_back(s);
    bases.push_back(p.Neg());
    scalars.push_back(s);
  }
  G1 got = MultiScalarMul(bases, scalars);
  EXPECT_TRUE(got.Equal(NaiveMsm(bases, scalars)));
}

TEST(MsmTest, SmallScalarsMatchNaive) {
  Rng rng(104);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < 150; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(U256((rng.Next() % 16) + 1));  // multiplicity counts
  }
  EXPECT_TRUE(
      MultiScalarMul(bases, scalars).Equal(NaiveMsm(bases, scalars)));
}

TEST(MsmTest, G2MatchesNaive) {
  Rng rng(105);
  std::vector<G2Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < 40; ++i) {
    bases.push_back(G2Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(RandScalar(&rng));
  }
  G2 got = MultiScalarMul(bases, scalars);
  EXPECT_TRUE(got.Equal(NaiveMsm(bases, scalars)));
}

TEST(MsmTest, ParallelVariantIsBitIdenticalToSerial) {
  Rng rng(106);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < 70; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(RandScalar(&rng));
  }
  G1 serial = MultiScalarMul(bases, scalars);
  G1 parallel = MultiScalarMul(bases, scalars, &ThreadPool::Shared());
  EXPECT_TRUE(parallel.Equal(serial));
  // The affine views must be identical bytes.
  G1Affine sa = serial.ToAffine();
  G1Affine pa = parallel.ToAffine();
  EXPECT_EQ(sa, pa);
  // Null pool degrades to serial.
  EXPECT_TRUE(MultiScalarMul(bases, scalars, nullptr).Equal(serial));
}

TEST(MsmTest, BatchInvertMatchesIndividualInverses) {
  Rng rng(107);
  std::vector<Fp> xs;
  for (size_t i = 0; i < 37; ++i) {
    xs.push_back(Fp::FromUint64(rng.Next() | 1));
  }
  std::vector<Fp> expect;
  for (const Fp& x : xs) expect.push_back(x.Inverse());
  std::vector<Fp> scratch;
  BatchInvert(xs.data(), xs.size(), &scratch);
  EXPECT_EQ(xs, expect);
}

TEST(MsmTest, MixedAdditionEdgeCases) {
  G1 g = G1::FromAffine(G1Generator());
  // inf + P, P + inf.
  EXPECT_TRUE(G1::Infinity().AddAffine(G1Generator()).Equal(g));
  EXPECT_TRUE(g.AddAffine(G1Affine()).Equal(g));
  // P + P = 2P.
  EXPECT_TRUE(g.AddAffine(G1Generator()).Equal(g.Double()));
  // P + (-P) = inf.
  EXPECT_TRUE(g.AddAffine(G1Generator().Neg()).IsInfinity());
  // Mixed add agrees with the general add on random points.
  Rng rng(108);
  for (int i = 0; i < 10; ++i) {
    G1 a = G1Mul(Fr::FromUint64(rng.Next() | 1));
    G1Affine b = G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine();
    EXPECT_TRUE(a.AddAffine(b).Equal(a.Add(G1::FromAffine(b))));
  }
}

}  // namespace
}  // namespace vchain::crypto

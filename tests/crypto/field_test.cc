// Unit tests for U256 arithmetic and the Montgomery prime fields.

#include "crypto/field.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace vchain::crypto {
namespace {

U256 RandU256Below(Rng* rng, const U256& bound) {
  for (;;) {
    U256 v(rng->Next(), rng->Next(), rng->Next(), rng->Next());
    v.limb[3] &= (1ULL << 62) - 1;  // both moduli are 254-bit
    if (v < bound) return v;
  }
}

Fp RandFp(Rng* rng) { return Fp::FromCanonical(RandU256Below(rng, kBnP)); }
Fr RandFr(Rng* rng) { return Fr::FromCanonical(RandU256Below(rng, kBnR)); }

TEST(U256Test, HexRoundTrip) {
  U256 v = U256FromHex("30644e72e131a029b85045b68181585d"
                       "97816a916871ca8d3c208c16d87cfd47");
  EXPECT_EQ(U256ToHex(v),
            "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
}

TEST(U256Test, DecimalMatchesKnownModuli) {
  U256 p;
  ASSERT_TRUE(U256FromDecimal(
      "218882428718392752222464057452572750886963111572978236626890378946452262"
      "08583",
      &p));
  EXPECT_EQ(p, kBnP);
  U256 r;
  ASSERT_TRUE(U256FromDecimal(
      "218882428718392752222464057452572750885483644004160343436982041865758084"
      "95617",
      &r));
  EXPECT_EQ(r, kBnR);
}

TEST(U256Test, ModuliMatchSeedPolynomial) {
  // p = 36u^4 + 36u^3 + 24u^2 + 6u + 1, r = p - 6u^2 (standard BN identity).
  // Evaluate in Fr-free integer arithmetic using repeated AddInPlace.
  auto mul_small = [](const U256& a, uint64_t m) {
    U256 acc;
    for (int bit = 63; bit >= 0; --bit) {
      acc.Shl1InPlace();
      if ((m >> bit) & 1) acc.AddInPlace(a);
    }
    return acc;
  };
  U256 u(kBnU);
  U256 u2 = mul_small(u, kBnU);
  // u^3 and u^4 overflow 64-bit multipliers, so square/multiply in steps:
  // u^2 * u  via binary expansion of u over U256 addition.
  auto mul_u256_by_u = [&](const U256& a) {
    U256 acc;
    for (int bit = 63; bit >= 0; --bit) {
      acc.Shl1InPlace();
      if ((kBnU >> bit) & 1) acc.AddInPlace(a);
    }
    return acc;
  };
  U256 u3 = mul_u256_by_u(u2);
  U256 u4 = mul_u256_by_u(u3);
  U256 p = mul_small(u4, 36);
  p.AddInPlace(mul_small(u3, 36));
  p.AddInPlace(mul_small(u2, 24));
  p.AddInPlace(mul_small(u, 6));
  p.AddInPlace(U256(1));
  EXPECT_EQ(p, kBnP);
  U256 r = p;
  r.SubInPlace(mul_small(u2, 6));
  EXPECT_EQ(r, kBnR);
}

TEST(U256Test, AddSubRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    U256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 b(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 c = a;
    uint64_t carry = c.AddInPlace(b);
    uint64_t borrow = c.SubInPlace(b);
    EXPECT_EQ(c, a);
    EXPECT_EQ(carry, borrow);  // overflow round-trips through the borrow
  }
}

TEST(U256Test, DivByWord) {
  U256 v = U256FromHex("123456789abcdef0fedcba9876543210");
  U256 q;
  uint64_t rem = 0;
  DivByWord(v, 7, &q, &rem);
  // Reconstruct q*7 + rem == v.
  U256 back;
  for (int i = 0; i < 3; ++i) back.AddInPlace(q);  // placeholder, replaced below
  back = U256();
  for (int bit = 2; bit >= 0; --bit) {
    back.Shl1InPlace();
    if ((7 >> bit) & 1) back.AddInPlace(q);
  }
  back.AddInPlace(U256(rem));
  EXPECT_EQ(back, v);
  EXPECT_LT(rem, 7u);
}

TEST(U256Test, BytesBERoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    U256 v(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    uint8_t buf[32];
    U256ToBytesBE(v, buf);
    EXPECT_EQ(U256FromBytesBE(buf), v);
  }
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256(0).BitLength(), 0);
  EXPECT_EQ(U256(1).BitLength(), 1);
  EXPECT_EQ(U256(0xFF).BitLength(), 8);
  U256 top;
  top.limb[3] = 1ULL << 63;
  EXPECT_EQ(top.BitLength(), 256);
}

template <typename F>
class FieldOpsTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<Fp, Fr>;
TYPED_TEST_SUITE(FieldOpsTest, FieldTypes);

TYPED_TEST(FieldOpsTest, AdditiveGroupLaws) {
  using F = TypeParam;
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    F a = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    F b = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    F c = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + F::Zero(), a);
    EXPECT_EQ(a - a, F::Zero());
    EXPECT_EQ(a + a.Neg(), F::Zero());
  }
}

TYPED_TEST(FieldOpsTest, MultiplicativeLaws) {
  using F = TypeParam;
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    F a = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    F b = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    F c = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * F::One(), a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    EXPECT_EQ(a.Double(), a + a);
  }
}

TYPED_TEST(FieldOpsTest, InverseAgainstFermat) {
  using F = TypeParam;
  Rng rng(44);
  for (int i = 0; i < 30; ++i) {
    F a = F::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
    if (a.IsZero()) continue;
    F inv = a.Inverse();
    EXPECT_EQ(a * inv, F::One());
    // Cross-check against Fermat's little theorem exponentiation.
    EXPECT_EQ(inv, a.Pow(F::FromCanonical(U256(0)).Modulus() == kBnP
                             ? kFpParams.modulus_minus_two
                             : kFrParams.modulus_minus_two));
  }
}

TYPED_TEST(FieldOpsTest, CanonicalRoundTrip) {
  using F = TypeParam;
  Rng rng(45);
  for (int i = 0; i < 50; ++i) {
    U256 v(rng.Next(), rng.Next(), rng.Next(), 0);
    F a = F::FromU256Reduce(v);
    EXPECT_EQ(F::FromCanonical(a.ToCanonical()), a);
  }
  EXPECT_EQ(F::Zero().ToCanonical(), U256(0));
  EXPECT_EQ(F::One().ToCanonical(), U256(1));
}

TYPED_TEST(FieldOpsTest, PowLaws) {
  using F = TypeParam;
  Rng rng(46);
  F a = F::FromU256Reduce(U256(rng.Next(), rng.Next(), 0, 0));
  EXPECT_EQ(a.Pow(U256(0)), F::One());
  EXPECT_EQ(a.Pow(U256(1)), a);
  EXPECT_EQ(a.Pow(U256(5)), a * a * a * a * a);
  // a^(modulus-1) == 1 (Fermat).
  U256 pm1 = F::Modulus();
  pm1.SubInPlace(U256(1));
  EXPECT_EQ(a.Pow(pm1), F::One());
}

TEST(FpTest, SqrtRoundTrip) {
  Rng rng(47);
  int squares = 0;
  for (int i = 0; i < 60; ++i) {
    Fp a = RandFp(&rng);
    Fp sq = a.Square();
    Fp root;
    ASSERT_TRUE(sq.Sqrt(&root));
    EXPECT_TRUE(root == a || root == a.Neg());
    Fp maybe;
    if (a.Sqrt(&maybe)) ++squares;
  }
  // Roughly half of field elements are squares.
  EXPECT_GT(squares, 10);
  EXPECT_LT(squares, 50);
}

TEST(FrTest, FromUint64) {
  EXPECT_EQ(Fr::FromUint64(7) + Fr::FromUint64(8), Fr::FromUint64(15));
  EXPECT_EQ(Fr::FromUint64(6) * Fr::FromUint64(7), Fr::FromUint64(42));
}

TEST(FieldParamsTest, MontgomeryConstantsConsistent) {
  // n0inv * p[0] == -1 mod 2^64.
  EXPECT_EQ(kFpParams.n0inv * kFpParams.modulus.limb[0], ~0ULL);
  EXPECT_EQ(kFrParams.n0inv * kFrParams.modulus.limb[0], ~0ULL);
}

}  // namespace
}  // namespace vchain::crypto

// Unit tests for the Fp2 / Fp6 / Fp12 extension tower.

#include <gtest/gtest.h>

#include "common/rand.h"
#include "crypto/fp12.h"

namespace vchain::crypto {
namespace {

Fp RandFp(Rng* rng) {
  return Fp::FromU256Reduce(U256(rng->Next(), rng->Next(), rng->Next(), 0));
}
Fp2 RandFp2(Rng* rng) { return Fp2(RandFp(rng), RandFp(rng)); }
Fp6 RandFp6(Rng* rng) {
  return Fp6(RandFp2(rng), RandFp2(rng), RandFp2(rng));
}
Fp12 RandFp12(Rng* rng) { return Fp12(RandFp6(rng), RandFp6(rng)); }

TEST(Fp2Test, FieldLaws) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Fp2 a = RandFp2(&rng);
    Fp2 b = RandFp2(&rng);
    Fp2 c = RandFp2(&rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) EXPECT_EQ(a * a.Inverse(), Fp2::One());
  }
}

TEST(Fp2Test, ISquaredIsMinusOne) {
  Fp2 i(Fp::Zero(), Fp::One());
  EXPECT_EQ(i.Square(), Fp2::One().Neg());
}

TEST(Fp2Test, ConjugateIsFrobenius) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    Fp2 a = RandFp2(&rng);
    EXPECT_EQ(a.Pow(kFpParams.modulus), a.Conjugate());
  }
}

TEST(Fp2Test, MulByXiMatchesExplicit) {
  Rng rng(3);
  Fp2 xi = Fp2::FromUint64(9, 1);
  for (int i = 0; i < 20; ++i) {
    Fp2 a = RandFp2(&rng);
    EXPECT_EQ(a.MulByXi(), a * xi);
  }
}

TEST(Fp2Test, SqrtRoundTrip) {
  Rng rng(4);
  int squares = 0;
  for (int i = 0; i < 40; ++i) {
    Fp2 a = RandFp2(&rng);
    Fp2 sq = a.Square();
    Fp2 root;
    ASSERT_TRUE(sq.Sqrt(&root)) << "square of field element must have a root";
    EXPECT_TRUE(root == a || root == a.Neg());
    Fp2 maybe;
    if (a.Sqrt(&maybe)) {
      ++squares;
      EXPECT_EQ(maybe.Square(), a);
    }
  }
  EXPECT_GT(squares, 5);
  EXPECT_LT(squares, 35);
}

TEST(Fp6Test, FieldLaws) {
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    Fp6 a = RandFp6(&rng);
    Fp6 b = RandFp6(&rng);
    Fp6 c = RandFp6(&rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!a.IsZero()) EXPECT_EQ(a * a.Inverse(), Fp6::One());
  }
}

TEST(Fp6Test, VCubedIsXi) {
  Fp6 v(Fp2::Zero(), Fp2::One(), Fp2::Zero());
  Fp6 v3 = v * v * v;
  Fp6 xi(Fp2::FromUint64(9, 1), Fp2::Zero(), Fp2::Zero());
  EXPECT_EQ(v3, xi);
}

TEST(Fp6Test, MulByVMatchesExplicit) {
  Rng rng(6);
  Fp6 v(Fp2::Zero(), Fp2::One(), Fp2::Zero());
  for (int i = 0; i < 10; ++i) {
    Fp6 a = RandFp6(&rng);
    EXPECT_EQ(a.MulByV(), a * v);
  }
}

TEST(Fp12Test, FieldLaws) {
  Rng rng(7);
  for (int i = 0; i < 15; ++i) {
    Fp12 a = RandFp12(&rng);
    Fp12 b = RandFp12(&rng);
    Fp12 c = RandFp12(&rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) EXPECT_EQ(a * a.Inverse(), Fp12::One());
  }
}

TEST(Fp12Test, WSquaredIsV) {
  Fp12 w(Fp6::Zero(), Fp6::One());
  Fp12 v(Fp6(Fp2::Zero(), Fp2::One(), Fp2::Zero()), Fp6::Zero());
  EXPECT_EQ(w * w, v);
}

TEST(Fp12Test, FrobeniusMatchesPow) {
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    Fp12 a = RandFp12(&rng);
    EXPECT_EQ(a.Frobenius(), a.Pow(kFpParams.modulus));
  }
}

TEST(Fp12Test, FrobeniusP2Consistency) {
  Rng rng(9);
  Fp12 a = RandFp12(&rng);
  EXPECT_EQ(a.FrobeniusP2(), a.Frobenius().Frobenius());
  // Twelve applications of Frobenius are the identity.
  Fp12 b = a;
  for (int i = 0; i < 12; ++i) b = b.Frobenius();
  EXPECT_EQ(b, a);
}

TEST(Fp12Test, SparseLineMulMatchesGeneric) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    Fp12 f = RandFp12(&rng);
    Fp2 l00 = RandFp2(&rng);
    Fp2 l10 = RandFp2(&rng);
    Fp2 l11 = RandFp2(&rng);
    Fp12 line(Fp6(l00, Fp2::Zero(), Fp2::Zero()),
              Fp6(l10, l11, Fp2::Zero()));
    EXPECT_EQ(f.MulBySparseLine(l00, l10, l11), f * line);
  }
}

TEST(Fp12Test, PowLaws) {
  Rng rng(11);
  Fp12 a = RandFp12(&rng);
  EXPECT_EQ(a.Pow(U256(0)), Fp12::One());
  EXPECT_EQ(a.Pow(U256(3)), a * a * a);
}

}  // namespace
}  // namespace vchain::crypto

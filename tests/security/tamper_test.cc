// Failure injection: an adversarial SP mutates honest responses in targeted
// ways; every mutation must be rejected by the light-node verifier
// (Definition 8.2's forgery game, played constructively).

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/vchain.h"

namespace vchain::core {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::LightClient;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

template <typename Engine>
struct Env {
  explicit Env(IndexMode mode, size_t blocks = 8, uint64_t seed = 11)
      : engine(MakeEngine()), config() {
    config.mode = mode;
    config.schema = NumericSchema{1, 8};
    config.skiplist_size = 2;
    builder = std::make_unique<ChainBuilder<Engine>>(engine, config);
    Rng rng(seed);
    static const char* kWords[] = {"alpha", "beta", "gamma", "delta"};
    uint64_t id = 0;
    for (size_t b = 0; b < blocks; ++b) {
      std::vector<Object> objs;
      for (int i = 0; i < 4; ++i) {
        Object o;
        o.id = id++;
        o.timestamp = kBaseTime + b * kTimeStep;
        o.numeric = {rng.Below(256)};
        o.keywords = {kWords[rng.Below(4)], kWords[rng.Below(4)]};
        objs.push_back(std::move(o));
      }
      auto st = builder->AppendBlock(std::move(objs),
                                     kBaseTime + b * kTimeStep);
      EXPECT_TRUE(st.ok());
    }
    EXPECT_TRUE(builder->SyncLightClient(&light).ok());
  }

  static Engine MakeEngine() {
    auto oracle = KeyOracle::Create(/*seed=*/31, AccParams{14});
    return Engine(oracle);
  }

  Query StdQuery(size_t blocks = 8) const {
    Query q;
    q.time_start = kBaseTime;
    q.time_end = kBaseTime + (blocks - 1) * kTimeStep;
    q.ranges = {{0, 20, 200}};
    q.keyword_cnf = {{"alpha", "gamma"}};
    return q;
  }

  QueryResponse<Engine> HonestResponse(const Query& q) {
    store::VectorBlockSource<Engine> source(&builder->blocks());
    QueryProcessor<Engine> sp(engine, config, &source);
    auto resp = sp.TimeWindowQuery(q);
    EXPECT_TRUE(resp.ok());
    return resp.TakeValue();
  }

  Status Verify(const Query& q, const QueryResponse<Engine>& resp) const {
    Verifier<Engine> verifier(engine, config, &light);
    return verifier.VerifyTimeWindow(q, resp);
  }

  Engine engine;
  ChainConfig config;
  std::unique_ptr<ChainBuilder<Engine>> builder;
  LightClient light;
};

// The mock engines make adversarial surgery cheap; the BN254 engines get a
// representative subset (same templated code paths).
using MockEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine>;

template <typename Engine>
class TamperTest : public ::testing::Test {};
TYPED_TEST_SUITE(TamperTest, MockEngines);

template <typename Engine>
int FindFirstBlockWithMatch(QueryResponse<Engine>* resp) {
  for (size_t s = 0; s < resp->vo.steps.size(); ++s) {
    if (!std::holds_alternative<BlockVO<Engine>>(resp->vo.steps[s])) continue;
    auto& bvo = std::get<BlockVO<Engine>>(resp->vo.steps[s]);
    for (const auto& n : bvo.nodes) {
      if (n.kind == VoKind::kMatch) return static_cast<int>(s);
    }
  }
  return -1;
}

TYPED_TEST(TamperTest, HonestResponsePassesAllModes) {
  for (IndexMode mode :
       {IndexMode::kNil, IndexMode::kIntra, IndexMode::kBoth}) {
    Env<TypeParam> env(mode);
    Query q = env.StdQuery();
    auto resp = env.HonestResponse(q);
    Status st = env.Verify(q, resp);
    EXPECT_TRUE(st.ok()) << IndexModeName(mode) << ": " << st.ToString();
  }
}

TYPED_TEST(TamperTest, DroppedResultDetected) {
  // Completeness: silently removing a matching object must fail — the VO
  // tree still references it.
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  if (resp.objects.empty()) GTEST_SKIP() << "query matched nothing";
  resp.objects.pop_back();
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, TamperedObjectDetected) {
  // Soundness: altering a returned object breaks the committed leaf hash.
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  if (resp.objects.empty()) GTEST_SKIP();
  resp.objects[0].numeric[0] = (resp.objects[0].numeric[0] + 7) % 200 + 20;
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, InjectedForeignObjectDetected) {
  // An object that never existed cannot be smuggled into the results.
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  if (resp.objects.empty()) GTEST_SKIP();
  Object fake = resp.objects[0];
  fake.id = 424242;  // matches the query but was never mined
  resp.objects[0] = fake;
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, MatchConcealedAsMismatchDetected) {
  // Turning a matching leaf into a "mismatch" requires a disjointness proof
  // the adversary cannot make; a stolen proof from another node fails too.
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  int step = FindFirstBlockWithMatch(&resp);
  if (step < 0) GTEST_SKIP();
  auto& bvo = std::get<BlockVO<TypeParam>>(resp.vo.steps[step]);
  // Find a mismatch node to steal a proof from, and a match node to conceal.
  const VoNode<TypeParam>* donor = nullptr;
  for (const auto& n : bvo.nodes) {
    if (n.kind == VoKind::kMismatch && n.proof.has_value()) donor = &n;
  }
  for (auto& n : bvo.nodes) {
    if (n.kind == VoKind::kMatch) {
      const Object& o = resp.objects[n.object_ref];
      n.kind = VoKind::kMismatch;
      n.inner_hash = o.Hash();
      n.clause_idx = 0;
      if (donor) n.proof = donor->proof;
      // The concealed object also disappears from R.
      resp.objects.erase(resp.objects.begin() + n.object_ref);
      for (auto& bstep : resp.vo.steps) {
        if (!std::holds_alternative<BlockVO<TypeParam>>(bstep)) continue;
        for (auto& m : std::get<BlockVO<TypeParam>>(bstep).nodes) {
          if (m.kind == VoKind::kMatch && m.object_ref > n.object_ref) {
            --m.object_ref;
          }
        }
      }
      break;
    }
  }
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, SwappedDigestDetected) {
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  bool mutated = false;
  for (auto& step : resp.vo.steps) {
    if (!std::holds_alternative<BlockVO<TypeParam>>(step)) continue;
    for (auto& n : std::get<BlockVO<TypeParam>>(step).nodes) {
      if (n.kind == VoKind::kMismatch) {
        n.digest = env.engine.Digest(accum::Multiset{123456789});
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  if (!mutated) GTEST_SKIP();
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, TruncatedWindowDetected) {
  // Dropping the oldest steps (claiming the walk is done early) must fail.
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  ASSERT_GT(resp.vo.steps.size(), 1u);
  resp.vo.steps.pop_back();
  // Remove result objects referenced by the dropped step to keep the
  // "unreferenced object" check from being the only failure.
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, ReorderedStepsDetected) {
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  ASSERT_GT(resp.vo.steps.size(), 1u);
  std::swap(resp.vo.steps[0], resp.vo.steps[1]);
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, OvershootingSkipDetected) {
  // A skip jumping past the window start would hide in-window blocks.
  Env<TypeParam> env(IndexMode::kBoth, /*blocks=*/12);
  Query q;  // matches nothing -> walk is all skips/mismatches
  q.time_start = kBaseTime + 6 * kTimeStep;
  q.time_end = kBaseTime + 11 * kTimeStep;
  q.keyword_cnf = {{"zeta"}};
  auto resp = env.HonestResponse(q);
  Status honest = env.Verify(q, resp);
  ASSERT_TRUE(honest.ok()) << honest.ToString();
  // Find a skip step and enlarge its claimed distance to overshoot.
  for (auto& step : resp.vo.steps) {
    if (std::holds_alternative<SkipVO<TypeParam>>(step)) {
      auto& svo = std::get<SkipVO<TypeParam>>(step);
      svo.distance *= 4;
      svo.level += 1;
      break;
    }
  }
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, SkipDigestSubstitutionDetected) {
  Env<TypeParam> env(IndexMode::kBoth, /*blocks=*/12);
  Query q;
  q.time_start = kBaseTime;
  q.time_end = kBaseTime + 11 * kTimeStep;
  q.keyword_cnf = {{"zeta"}};
  auto resp = env.HonestResponse(q);
  bool mutated = false;
  for (auto& step : resp.vo.steps) {
    if (std::holds_alternative<SkipVO<TypeParam>>(step)) {
      auto& svo = std::get<SkipVO<TypeParam>>(step);
      svo.digest = env.engine.Digest(accum::Multiset{42});
      if constexpr (TypeParam::kSupportsAggregation) {
        // keep proof absence consistent; aggregation check must now fail
      } else {
        // leave the (now wrong) proof in place
      }
      mutated = true;
      break;
    }
  }
  if (!mutated) GTEST_SKIP();
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, WrongClauseIndexDetected) {
  Env<TypeParam> env(IndexMode::kIntra);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  bool mutated = false;
  for (auto& step : resp.vo.steps) {
    if (!std::holds_alternative<BlockVO<TypeParam>>(step)) continue;
    for (auto& n : std::get<BlockVO<TypeParam>>(step).nodes) {
      if (n.kind == VoKind::kMismatch) {
        n.clause_idx = 999;  // out of range
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  if (!mutated) GTEST_SKIP();
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

TYPED_TEST(TamperTest, CorruptBytesRejectedBySerde) {
  Env<TypeParam> env(IndexMode::kBoth);
  Query q = env.StdQuery();
  auto resp = env.HonestResponse(q);
  ByteWriter w;
  SerializeResponse(env.engine, resp, &w);
  Bytes bytes = w.TakeBytes();
  // Truncations at many offsets must fail cleanly (no crash, no accept).
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    size_t cut = rng.Below(bytes.size());
    Bytes prefix(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    ByteReader r(ByteSpan(prefix.data(), prefix.size()));
    QueryResponse<TypeParam> out;
    Status st = DeserializeResponse(env.engine, &r, &out);
    if (st.ok()) {
      // Rare: cut landed exactly after a well-formed prefix; the verifier
      // must still reject it (different window coverage).
      EXPECT_FALSE(env.Verify(q, out).ok() &&
                   out.objects.size() == resp.objects.size());
    }
  }
}

// BN254 spot-checks over the same templated code paths.
TEST(TamperBn254Test, DroppedResultAndTamperedProofDetected) {
  Env<accum::Acc2Engine> env(IndexMode::kBoth, /*blocks=*/6, /*seed=*/17);
  Query q = env.StdQuery(6);
  auto resp = env.HonestResponse(q);
  Status honest = env.Verify(q, resp);
  ASSERT_TRUE(honest.ok()) << honest.ToString();
  if (!resp.objects.empty()) {
    auto dropped = resp;
    dropped.objects.pop_back();
    EXPECT_FALSE(env.Verify(q, dropped).ok());
  }
  if (!resp.vo.aggregated.empty()) {
    auto bad = resp;
    bad.vo.aggregated[0].proof =
        accum::Acc2Engine::Proof{crypto::G1Mul(crypto::Fr::FromUint64(5))
                                     .ToAffine()};
    EXPECT_FALSE(env.Verify(q, bad).ok());
  }
}

TEST(TamperBn254Test, Acc1ProofSwapDetected) {
  Env<accum::Acc1Engine> env(IndexMode::kIntra, /*blocks=*/4, /*seed=*/19);
  Query q = env.StdQuery(4);
  auto resp = env.HonestResponse(q);
  ASSERT_TRUE(env.Verify(q, resp).ok());
  std::vector<VoNode<accum::Acc1Engine>*> mismatches;
  for (auto& step : resp.vo.steps) {
    if (!std::holds_alternative<BlockVO<accum::Acc1Engine>>(step)) continue;
    for (auto& n : std::get<BlockVO<accum::Acc1Engine>>(step).nodes) {
      if (n.kind == VoKind::kMismatch && n.proof.has_value()) {
        mismatches.push_back(&n);
      }
    }
  }
  if (mismatches.size() < 2) GTEST_SKIP();
  // Swap two proofs between nodes with different multisets.
  std::swap(mismatches[0]->proof, mismatches[1]->proof);
  EXPECT_FALSE(env.Verify(q, resp).ok());
}

}  // namespace
}  // namespace vchain::core

// api::Service — the engine-erased, thread-safe SP front door.
//
// The load-bearing property is determinism under concurrency: N threads
// hammering one Service over a disk-backed store (shared mutex-striped
// proof cache, shared decoded-block cache) must produce VO bytes
// bit-identical to a serial, typed QueryProcessor over the same chain, for
// every engine. The suite also covers the erased lifecycle: open/reopen of
// a durable service, query batching, subscriptions through the front door,
// strict query validation, and stats.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/query_builder.h"
#include "api/service.h"
#include "common/rand.h"
#include "core/vchain.h"

namespace vchain::api {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::LightClient;
using chain::NumericSchema;
using chain::Object;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using core::QueryProcessor;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_svc_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

template <typename Engine>
EngineKind KindOf() {
  if constexpr (std::is_same_v<Engine, accum::MockAcc1Engine>) {
    return EngineKind::kMockAcc1;
  } else if constexpr (std::is_same_v<Engine, accum::MockAcc2Engine>) {
    return EngineKind::kMockAcc2;
  } else if constexpr (std::is_same_v<Engine, accum::Acc1Engine>) {
    return EngineKind::kAcc1;
  } else {
    return EngineKind::kAcc2;
  }
}

template <typename Engine>
Engine MakeEngine(std::shared_ptr<KeyOracle> oracle) {
  if constexpr (std::is_same_v<Engine, accum::Acc1Engine> ||
                std::is_same_v<Engine, accum::Acc2Engine>) {
    return Engine(std::move(oracle), accum::ProverMode::kTrustedFast);
  } else {
    return Engine(std::move(oracle));
  }
}

ChainConfig TestConfig(IndexMode mode = IndexMode::kBoth) {
  ChainConfig config;
  config.mode = mode;
  config.schema = NumericSchema{2, 8};
  config.skiplist_size = 3;
  return config;
}

/// Service and serial reference must share one trusted setup to be
/// byte-comparable.
std::shared_ptr<KeyOracle> TestOracle() {
  return KeyOracle::Create(/*seed=*/2026, AccParams{16});
}

template <typename Engine>
ServiceOptions BaseOptions(std::shared_ptr<KeyOracle> oracle,
                           std::string store_dir = "") {
  ServiceOptions opts;
  opts.engine = KindOf<Engine>();
  opts.config = TestConfig();
  opts.oracle = std::move(oracle);
  opts.prover_mode = accum::ProverMode::kTrustedFast;
  opts.store_dir = std::move(store_dir);
  return opts;
}

std::vector<Object> MakeObjects(Rng* rng, uint64_t base_id, size_t count,
                                const NumericSchema& schema) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  std::vector<Object> objects;
  for (size_t i = 0; i < count; ++i) {
    Object o;
    o.id = base_id + i;
    o.numeric = {rng->Below(schema.DomainSize()),
                 rng->Below(schema.DomainSize())};
    o.keywords = {kTypes[rng->Below(3)], kMakes[rng->Below(4)]};
    objects.push_back(std::move(o));
  }
  return objects;
}

/// One deterministic stream of blocks; feed the same (seed, shape) to a
/// Service and a reference ChainBuilder and the chains are identical.
std::vector<std::vector<Object>> MakeBlocks(size_t num_blocks,
                                            size_t objects_per_block,
                                            uint64_t seed,
                                            const NumericSchema& schema) {
  Rng rng(seed);
  std::vector<std::vector<Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto objs = MakeObjects(&rng, id, objects_per_block, schema);
    uint64_t ts = kBaseTime + b * kTimeStep;
    for (Object& o : objs) o.timestamp = ts;
    id += objs.size();
    out.push_back(std::move(objs));
  }
  return out;
}

void AppendAll(Service* svc, const std::vector<std::vector<Object>>& blocks) {
  for (const auto& objs : blocks) {
    Status st = svc->Append(objs, objs.front().timestamp);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

/// A deterministic mixed query workload over the mined window.
std::vector<Query> TestQueries(size_t num_blocks) {
  uint64_t t_end = kBaseTime + (num_blocks - 1) * kTimeStep;
  return {
      QueryBuilder().Window(kBaseTime, t_end).Range(0, 10, 120).Build(),
      QueryBuilder()
          .Window(kBaseTime + 2 * kTimeStep, t_end - 2 * kTimeStep)
          .Range(0, 10, 120)
          .Range(1, 0, 200)
          .AllOf({"Sedan"})
          .AnyOf({"Benz", "BMW"})
          .Build(),
      QueryBuilder().Window(kBaseTime, t_end).AnyOf({"Van", "SUV"}).Build(),
      QueryBuilder()
          .Window(kBaseTime, kBaseTime)  // single block
          .Range(1, 0, 255)
          .Build(),
      QueryBuilder().Window(t_end + 1, t_end + 2).AnyOf({"Sedan"}).Build(),
      QueryBuilder()
          .Window(kBaseTime, t_end)
          .Range(0, 0, 3)  // highly selective
          .AnyOf({"Toyota"})
          .Build(),
  };
}

template <typename Engine>
Bytes SerialResponseBytes(const Engine& engine,
                          const core::QueryResponse<Engine>& resp) {
  ByteWriter w;
  core::SerializeResponse(engine, resp, &w);
  return w.bytes();
}

/// Serial ground truth: a typed ChainBuilder + QueryProcessor over the same
/// object stream and oracle, queried from one thread.
template <typename Engine>
std::vector<Bytes> SerialReference(const std::shared_ptr<KeyOracle>& oracle,
                                   const std::vector<std::vector<Object>>& bs,
                                   const std::vector<Query>& queries) {
  Engine engine = MakeEngine<Engine>(oracle);
  ChainConfig config = TestConfig();  // QueryProcessor keeps a reference
  ChainBuilder<Engine> builder(engine, config);
  for (const auto& objs : bs) {
    auto st = builder.AppendBlock(objs, objs.front().timestamp);
    EXPECT_TRUE(st.ok()) << st.status().ToString();
  }
  store::VectorBlockSource<Engine> source(&builder.blocks());
  QueryProcessor<Engine> sp(engine, config, &source,
                            &builder.timestamp_index());
  std::vector<Bytes> out;
  for (const Query& q : queries) {
    auto resp = sp.TimeWindowQuery(q);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    out.push_back(SerialResponseBytes(engine, resp.value()));
  }
  return out;
}

template <typename Engine>
class ServiceTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(ServiceTest, AllEngines);

// The tentpole acceptance criterion: >= 8 threads hammering one disk-backed
// Service (shared striped proof cache, shared block cache small enough to
// churn) yield VO bytes bit-identical to the serial typed QueryProcessor,
// for every engine.
TYPED_TEST(ServiceTest, ConcurrentDiskQueriesBitIdenticalToSerialProcessor) {
  using Engine = TypeParam;
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 2;
  constexpr size_t kBlocks = 12;

  auto oracle = TestOracle();
  auto blocks = MakeBlocks(kBlocks, 4, /*seed=*/7, TestConfig().schema);
  auto queries = TestQueries(kBlocks);
  std::vector<Bytes> expected =
      SerialReference<Engine>(oracle, blocks, queries);

  ServiceOptions opts = BaseOptions<Engine>(oracle, UniqueDir());
  opts.proof_cache_shards = 4;
  opts.config.block_cache_blocks = 4;  // far below the walk: force churn
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  AppendAll(svc.value().get(), blocks);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread starts at a different query so shards/cache lines are
      // hit in different orders.
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < queries.size(); ++i) {
          size_t qi = (i + t) % queries.size();
          auto result = svc.value()->Query(queries[qi]);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (result.value().response_bytes != expected[qi]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // And the concurrent service's answers verify from headers alone.
  LightClient light;
  ASSERT_TRUE(svc.value()->SyncLightClient(&light).ok());
  auto result = svc.value()->Query(queries[1]);
  ASSERT_TRUE(result.ok());
  Status st = svc.value()->Verify(queries[1], result.value(), light);
  EXPECT_TRUE(st.ok()) << st.ToString();

  ServiceStats stats = svc.value()->Stats();
  EXPECT_EQ(stats.queries_served, kThreads * kRounds * queries.size() + 1);
  EXPECT_TRUE(stats.durable);
  EXPECT_GT(stats.block_cache.misses, 0u);
}

// Appends racing with queries: writers extend the chain past the queried
// window while 8 threads replay a fixed historical window. Every response
// must stay bit-identical to the pre-append reference — the admission-time
// height freeze means a growing tip never shifts a walk.
TYPED_TEST(ServiceTest, QueriesStayDeterministicUnderConcurrentAppends) {
  using Engine = TypeParam;
  constexpr size_t kThreads = 8;
  constexpr size_t kBlocks = 8;
  constexpr size_t kExtraBlocks = 6;

  auto oracle = TestOracle();
  auto blocks = MakeBlocks(kBlocks + kExtraBlocks, 3, /*seed=*/11,
                           TestConfig().schema);
  // Queries strictly inside the first kBlocks' window.
  std::vector<Query> queries = {
      QueryBuilder()
          .Window(kBaseTime, kBaseTime + (kBlocks - 1) * kTimeStep)
          .Range(0, 10, 120)
          .AnyOf({"Sedan", "Van"})
          .Build(),
      QueryBuilder()
          .Window(kBaseTime + kTimeStep, kBaseTime + (kBlocks - 2) * kTimeStep)
          .Range(1, 0, 200)
          .Build(),
  };
  std::vector<std::vector<Object>> first(blocks.begin(),
                                         blocks.begin() + kBlocks);
  std::vector<Bytes> expected =
      SerialReference<Engine>(oracle, first, queries);

  ServiceOptions opts = BaseOptions<Engine>(oracle, UniqueDir());
  opts.proof_cache_shards = 2;
  opts.config.block_cache_blocks = 3;
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  AppendAll(svc.value().get(), first);

  // Fixed rounds on both sides — readers must NOT wait for the writer:
  // glibc's shared_mutex admits overlapping readers indefinitely, so a
  // reader loop keyed on writer progress livelocks (the writer never gets
  // the exclusive lock while readers continuously hold shared ones).
  std::atomic<int> bad{0};
  std::thread writer([&] {
    for (size_t b = kBlocks; b < kBlocks + kExtraBlocks; ++b) {
      Status st =
          svc.value()->Append(blocks[b], blocks[b].front().timestamp);
      if (!st.ok()) bad.fetch_add(1);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (size_t round = 0; round < 4; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto result = svc.value()->Query(queries[(qi + t) % queries.size()]);
          if (!result.ok() ||
              result.value().response_bytes !=
                  expected[(qi + t) % queries.size()]) {
            bad.fetch_add(1);
          }
        }
        std::this_thread::yield();
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(svc.value()->NumBlocks(), kBlocks + kExtraBlocks);
}

TYPED_TEST(ServiceTest, InMemoryAndDiskServicesServeIdenticalBytes) {
  using Engine = TypeParam;
  auto oracle = TestOracle();
  auto blocks = MakeBlocks(10, 3, /*seed=*/5, TestConfig().schema);
  auto queries = TestQueries(10);

  auto mem = Service::Open(BaseOptions<Engine>(oracle));
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  auto disk = Service::Open(BaseOptions<Engine>(oracle, UniqueDir()));
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  AppendAll(mem.value().get(), blocks);
  AppendAll(disk.value().get(), blocks);

  for (const Query& q : queries) {
    auto a = mem.value()->Query(q);
    auto b = disk.value()->Query(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().response_bytes, b.value().response_bytes);
    EXPECT_EQ(a.value().vo_bytes, b.value().vo_bytes);
  }
  EXPECT_FALSE(mem.value()->Stats().durable);
  EXPECT_TRUE(disk.value()->Stats().durable);
}

TYPED_TEST(ServiceTest, ReopenedDurableServiceResumesChain) {
  using Engine = TypeParam;
  auto oracle = TestOracle();
  std::string dir = UniqueDir();
  auto blocks = MakeBlocks(12, 3, /*seed=*/9, TestConfig().schema);
  std::vector<std::vector<Object>> first(blocks.begin(), blocks.begin() + 8);
  std::vector<std::vector<Object>> rest(blocks.begin() + 8, blocks.end());

  {
    auto svc = Service::Open(BaseOptions<Engine>(oracle, dir));
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    AppendAll(svc.value().get(), first);
    ASSERT_TRUE(svc.value()->Sync().ok());
  }  // service destroyed: "process exit"

  auto svc = Service::Open(BaseOptions<Engine>(oracle, dir));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  EXPECT_EQ(svc.value()->NumBlocks(), 8u);
  AppendAll(svc.value().get(), rest);
  EXPECT_EQ(svc.value()->NumBlocks(), 12u);

  // The resumed service's answer matches an uninterrupted in-memory one.
  auto reference = Service::Open(BaseOptions<Engine>(oracle));
  ASSERT_TRUE(reference.ok());
  AppendAll(reference.value().get(), blocks);
  Query q = TestQueries(12)[1];
  auto a = svc.value()->Query(q);
  auto b = reference.value()->Query(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().response_bytes, b.value().response_bytes);

  LightClient light;
  ASSERT_TRUE(svc.value()->SyncLightClient(&light).ok());
  EXPECT_TRUE(svc.value()->Verify(q, a.value(), light).ok());
}

TYPED_TEST(ServiceTest, SubscriptionEventsFlowThroughAndVerify) {
  using Engine = TypeParam;
  auto oracle = TestOracle();
  auto blocks = MakeBlocks(6, 3, /*seed=*/13, TestConfig().schema);

  auto svc = Service::Open(BaseOptions<Engine>(oracle));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  Query standing = QueryBuilder().Range(0, 0, 200).AnyOf({"Sedan"}).Build();
  auto id = svc.value()->Subscribe(standing);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  AppendAll(svc.value().get(), blocks);
  auto events = svc.value()->TakeSubscriptionEvents();
  ASSERT_EQ(events.size(), blocks.size());  // one per block for one query
  EXPECT_TRUE(svc.value()->TakeSubscriptionEvents().empty());  // drained

  LightClient light;
  ASSERT_TRUE(svc.value()->SyncLightClient(&light).ok());
  for (const SubscriptionEvent& ev : events) {
    EXPECT_EQ(ev.query_id, id.value());
    Status st = svc.value()->VerifyNotification(standing, ev, light);
    EXPECT_TRUE(st.ok()) << "height " << ev.height << ": " << st.ToString();
  }

  EXPECT_TRUE(svc.value()->Unsubscribe(id.value()).ok());
  Status again = svc.value()->Unsubscribe(id.value());
  EXPECT_TRUE(again.IsNotFound()) << again.ToString();
  // No active subscriptions: further appends buffer nothing.
  Status st = svc.value()->Append(blocks[0], blocks.back().front().timestamp);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(svc.value()->TakeSubscriptionEvents().empty());
}

TEST(ServiceValidationTest, RejectsStructurallyInvalidQueries) {
  auto svc = Service::Open(BaseOptions<accum::MockAcc2Engine>(TestOracle()));
  ASSERT_TRUE(svc.ok());
  auto blocks = MakeBlocks(4, 3, /*seed=*/3, TestConfig().schema);
  AppendAll(svc.value().get(), blocks);

  // Inverted range.
  auto r1 = svc.value()->Query(QueryBuilder().Range(0, 50, 40).Build());
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsInvalidArgument()) << r1.status().ToString();
  // Unknown dimension.
  auto r2 = svc.value()->Query(QueryBuilder().Range(7, 0, 10).Build());
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsInvalidArgument());
  // Empty OR-clause.
  auto r3 = svc.value()->Query(QueryBuilder().AnyOf({}).Build());
  ASSERT_FALSE(r3.ok());
  EXPECT_TRUE(r3.status().IsInvalidArgument());
  // Out-of-domain bound (8-bit schema).
  auto r4 = svc.value()->Query(QueryBuilder().Range(0, 0, 300).Build());
  ASSERT_FALSE(r4.ok());
  EXPECT_TRUE(r4.status().IsInvalidArgument());
  // Subscriptions reject the same taxonomy.
  auto s1 = svc.value()->Subscribe(QueryBuilder().Range(0, 50, 40).Build());
  ASSERT_FALSE(s1.ok());
  EXPECT_TRUE(s1.status().IsInvalidArgument());
  // A well-formed query still flows.
  auto ok = svc.value()->Query(QueryBuilder().Range(0, 40, 50).Build());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ServiceValidationTest, OpenRejectsInconsistentOptions) {
  ServiceOptions opts = BaseOptions<accum::MockAcc2Engine>(TestOracle());
  opts.retain_window = 32;  // pruning without a store: older blocks would
                            // become unreachable
  auto svc = Service::Open(std::move(opts));
  ASSERT_FALSE(svc.ok());
  EXPECT_TRUE(svc.status().IsInvalidArgument()) << svc.status().ToString();
}

TEST(ServiceBatchTest, QueryBatchMatchesIndividualQueries) {
  auto oracle = TestOracle();
  auto svc = Service::Open(BaseOptions<accum::MockAcc2Engine>(oracle));
  ASSERT_TRUE(svc.ok());
  auto blocks = MakeBlocks(10, 3, /*seed=*/17, TestConfig().schema);
  AppendAll(svc.value().get(), blocks);

  std::vector<Query> queries = TestQueries(10);
  queries.push_back(QueryBuilder().Range(0, 9, 1).Build());  // invalid
  auto batch = svc.value()->QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i + 1 < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << i << ": " << batch[i].status().ToString();
    auto solo = svc.value()->Query(queries[i]);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(batch[i].value().response_bytes, solo.value().response_bytes)
        << "query " << i;
  }
  // The malformed member fails alone; it does not poison the batch.
  EXPECT_TRUE(batch.back().status().IsInvalidArgument());
}

TEST(ServiceStatsTest, StatsTrackCachesAndEngineKind) {
  auto svc = Service::Open(BaseOptions<accum::MockAcc2Engine>(TestOracle()));
  ASSERT_TRUE(svc.ok());
  EXPECT_EQ(svc.value()->engine_kind(), EngineKind::kMockAcc2);
  EXPECT_STREQ(EngineKindName(svc.value()->engine_kind()), "mock-acc2");

  auto blocks = MakeBlocks(8, 3, /*seed=*/19, TestConfig().schema);
  AppendAll(svc.value().get(), blocks);
  Query q = TestQueries(8)[1];
  ASSERT_TRUE(svc.value()->Query(q).ok());
  ServiceStats first = svc.value()->Stats();
  EXPECT_EQ(first.num_blocks, 8u);
  EXPECT_EQ(first.queries_served, 1u);
  ASSERT_TRUE(svc.value()->Query(q).ok());
  ServiceStats second = svc.value()->Stats();
  EXPECT_EQ(second.queries_served, 2u);
  // The second identical query hits the shared proof cache.
  EXPECT_GT(second.proof_cache.hits, first.proof_cache.hits);
}

}  // namespace
}  // namespace vchain::api

// QueryBuilder assembly and core::ValidateQuery's typed rejection of
// structurally invalid queries — the InvalidArgument taxonomy every
// query-consuming entry point (Service, QueryProcessor, Verifier,
// SubscriptionManager::TrySubscribe) now shares.

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "core/query.h"

namespace vchain::api {
namespace {

using chain::NumericSchema;
using core::Query;
using core::ValidateQuery;

NumericSchema TestSchema() { return NumericSchema{/*dims=*/2, /*bits=*/8}; }

TEST(QueryBuilderTest, AssemblesAllPredicateKinds) {
  Query q = QueryBuilder()
                .Window(100, 200)
                .Range(0, 10, 20)
                .Range(1, 0, 255)
                .AllOf({"Sedan", "Hybrid"})
                .AnyOf({"Benz", "BMW"})
                .Build();
  EXPECT_EQ(q.time_start, 100u);
  EXPECT_EQ(q.time_end, 200u);
  ASSERT_EQ(q.ranges.size(), 2u);
  EXPECT_EQ(q.ranges[0].dim, 0u);
  EXPECT_EQ(q.ranges[0].lo, 10u);
  EXPECT_EQ(q.ranges[0].hi, 20u);
  EXPECT_EQ(q.ranges[1].dim, 1u);
  // AllOf expands to one single-keyword clause each; AnyOf is one clause.
  ASSERT_EQ(q.keyword_cnf.size(), 3u);
  EXPECT_EQ(q.keyword_cnf[0], (std::vector<std::string>{"Sedan"}));
  EXPECT_EQ(q.keyword_cnf[1], (std::vector<std::string>{"Hybrid"}));
  EXPECT_EQ(q.keyword_cnf[2], (std::vector<std::string>{"Benz", "BMW"}));
}

TEST(QueryBuilderTest, DefaultWindowSpansWholeChain) {
  Query q = QueryBuilder().AnyOf({"x"}).Build();
  EXPECT_EQ(q.time_start, 0u);
  EXPECT_EQ(q.time_end, std::numeric_limits<uint64_t>::max());
}

TEST(QueryBuilderTest, ValidatingBuildAcceptsWellFormedQuery) {
  auto q = QueryBuilder()
               .Range(0, 10, 20)
               .AnyOf({"Benz", "BMW"})
               .Build(TestSchema());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().ranges.size(), 1u);
}

TEST(QueryBuilderTest, ValidatingBuildRejectsInvertedRange) {
  auto q = QueryBuilder().Range(0, 30, 20).Build(TestSchema());
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
}

TEST(ValidateQueryTest, AcceptsEmptyQuery) {
  // No predicates at all: matches everything in the window; legal.
  EXPECT_TRUE(ValidateQuery(Query{}, TestSchema()).ok());
}

TEST(ValidateQueryTest, RejectsInvertedRange) {
  Query q;
  q.ranges = {{0, 200, 100}};
  Status st = ValidateQuery(q, TestSchema());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(ValidateQueryTest, RejectsOutOfSchemaDimension) {
  Query q;
  q.ranges = {{2, 0, 10}};  // schema has dims 0 and 1 only
  Status st = ValidateQuery(q, TestSchema());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(ValidateQueryTest, RejectsOutOfDomainBound) {
  Query q;
  q.ranges = {{0, 0, 256}};  // 8-bit domain max is 255
  Status st = ValidateQuery(q, TestSchema());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(ValidateQueryTest, AcceptsFullDomainRange) {
  Query q;
  q.ranges = {{0, 0, 255}};
  EXPECT_TRUE(ValidateQuery(q, TestSchema()).ok());
}

TEST(ValidateQueryTest, RejectsEmptyOrClause) {
  Query q;
  q.keyword_cnf = {{"Sedan"}, {}};  // second conjunct is unsatisfiable
  Status st = ValidateQuery(q, TestSchema());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(ValidateQueryTest, InvertedTimeWindowIsNotAnError) {
  // An empty window selects zero blocks — a verifiable empty answer, not a
  // malformed query.
  Query q = QueryBuilder().Window(200, 100).AnyOf({"x"}).Build();
  EXPECT_TRUE(ValidateQuery(q, TestSchema()).ok());
}

TEST(ValidateQueryTest, ErrorMessagesNameTheOffendingPredicate) {
  Query q;
  q.ranges = {{0, 0, 10}, {1, 9, 3}};
  Status st = ValidateQuery(q, TestSchema());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("predicate 1"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace vchain::api

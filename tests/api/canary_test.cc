// The verification canary: the SP auditing itself. A clean chain must
// produce only vchain_canary_verified_total increments (failed stays 0 —
// that flat 0 is the observable "all clear"); a byte-level tamper of the
// durable store must fire vchain_canary_failed_total even though the store
// opens cleanly (CRC repaired) and the query path happily serves the
// tampered object. Also pins the introspection plane's prime directive:
// response bytes are bit-identical with tracing + canary + recorder on vs
// everything off.
//
// Canary totals live in the process-wide metrics registry (one source of
// truth), so every assertion is a delta, never an absolute.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/service.h"
#include "common/crc32c.h"
#include "common/metrics.h"
#include "chain/header.h"
#include "core/vchain.h"
#include "store/segment_log.h"

namespace vchain::api {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::NumericSchema;
using chain::Object;
using core::ChainConfig;
using core::IndexMode;
using core::Query;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;
constexpr size_t kBlocks = 6;
constexpr size_t kObjectsPerBlock = 3;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_canary_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

template <typename Engine>
EngineKind KindOf() {
  if constexpr (std::is_same_v<Engine, accum::MockAcc1Engine>) {
    return EngineKind::kMockAcc1;
  } else if constexpr (std::is_same_v<Engine, accum::MockAcc2Engine>) {
    return EngineKind::kMockAcc2;
  } else if constexpr (std::is_same_v<Engine, accum::Acc1Engine>) {
    return EngineKind::kAcc1;
  } else {
    return EngineKind::kAcc2;
  }
}

template <typename Engine>
ServiceOptions BaseOptions(std::string store_dir = "") {
  ServiceOptions opts;
  opts.engine = KindOf<Engine>();
  opts.config.mode = IndexMode::kBoth;
  opts.config.schema = NumericSchema{2, 8};
  opts.config.skiplist_size = 3;
  opts.oracle = KeyOracle::Create(/*seed=*/2026, AccParams{16});
  opts.prover_mode = accum::ProverMode::kTrustedFast;
  opts.store_dir = std::move(store_dir);
  return opts;
}

/// Deterministic chain where every object matches MatchAllQuery below, so
/// any tampered object is guaranteed to ride in the result set R (the
/// client re-hashes received objects — that is the mismatch the canary
/// must catch).
void MineChain(Service* svc) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi"};
  uint64_t id = 0;
  for (size_t b = 0; b < kBlocks; ++b) {
    std::vector<Object> objs;
    for (size_t i = 0; i < kObjectsPerBlock; ++i) {
      Object o;
      o.id = 1000 + id;
      o.timestamp = kBaseTime + b * kTimeStep;
      o.numeric = {10 + id % 50, 20 + id % 50};
      o.keywords = {"Sedan", kMakes[id % 3]};
      objs.push_back(std::move(o));
      ++id;
    }
    Status st = svc->Append(objs, kBaseTime + b * kTimeStep);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

Query MatchAllQuery() {
  return QueryBuilder()
      .Window(kBaseTime, kBaseTime + (kBlocks - 1) * kTimeStep)
      .AllOf({"Sedan"})
      .Build();
}

struct CanaryCounts {
  uint64_t verified, failed, skipped;
};

CanaryCounts ReadCanaryCounts() {
  metrics::Registry& r = metrics::Registry::Default();
  return {
      r.GetCounter("vchain_canary_verified_total", "")->Value(),
      r.GetCounter("vchain_canary_failed_total", "")->Value(),
      r.GetCounter("vchain_canary_skipped_total", "")->Value(),
  };
}

/// Flip one byte of objects[0].id inside the first block record of
/// seg-000000.log and repair the record CRC, so the store reopens cleanly
/// and serves the tampered object as if nothing happened.
void TamperFirstBlockObjectId(const std::string& store_dir) {
  std::string path = store_dir + "/seg-000000.log";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  const size_t rec = store::SegmentLog::kFileHeaderBytes;
  const size_t payload_off = rec + store::SegmentLog::kRecordHeaderBytes;
  ASSERT_GT(bytes.size(), payload_off + chain::BlockHeader::kSerializedSize);
  auto u32_at = [&bytes](size_t off) {
    return static_cast<uint32_t>(static_cast<uint8_t>(bytes[off])) |
           static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 3])) << 24;
  };
  const uint32_t len = u32_at(rec);
  ASSERT_LE(payload_off + len, bytes.size());

  // Record payload = 120-byte header || body; the body opens with the
  // object count (u32) followed by objects[0], whose first field is id.
  const size_t id_off =
      payload_off + chain::BlockHeader::kSerializedSize + sizeof(uint32_t);
  bytes[id_off] = static_cast<char>(static_cast<uint8_t>(bytes[id_off]) ^ 0xff);

  // Repair the CRC (it covers len || payload) so recovery sees a clean
  // record — this models a malicious SP, not bit rot.
  const uint8_t* base = reinterpret_cast<const uint8_t*>(bytes.data());
  uint32_t crc = Crc32c(ByteSpan(base + payload_off, len),
                        Crc32c(ByteSpan(base + rec, 4)));
  bytes[rec + 4] = static_cast<char>(crc);
  bytes[rec + 5] = static_cast<char>(crc >> 8);
  bytes[rec + 6] = static_cast<char>(crc >> 16);
  bytes[rec + 7] = static_cast<char>(crc >> 24);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

template <typename Engine>
class CanaryTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(CanaryTest, AllEngines);

TYPED_TEST(CanaryTest, CleanChainVerifiesAndNeverFails) {
  ServiceOptions opts = BaseOptions<TypeParam>();
  opts.canary_sample_every = 1;  // audit every query
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  MineChain(svc.value().get());

  CanaryCounts before = ReadCanaryCounts();
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    auto result = svc.value()->Query(MatchAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().objects.size(), kBlocks * kObjectsPerBlock);
  }
  svc.value()->DrainCanary();
  CanaryCounts after = ReadCanaryCounts();
  EXPECT_EQ(after.verified, before.verified + kQueries);
  EXPECT_EQ(after.failed, before.failed);  // the "all clear"
  EXPECT_EQ(after.skipped, before.skipped);

  // The canary totals surface through Stats() (read back from the
  // registry), and the trace ring retained the sampled queries.
  ServiceStats stats = svc.value()->Stats();
  EXPECT_EQ(stats.canary_verified, after.verified);
  EXPECT_EQ(stats.canary_failed, after.failed);
  EXPECT_GT(stats.trace_ring_occupancy, 0u);
}

TYPED_TEST(CanaryTest, TamperedStoreFiresCanary) {
  std::string dir = UniqueDir();
  {
    auto svc = Service::Open(BaseOptions<TypeParam>(dir));
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    MineChain(svc.value().get());
    ASSERT_TRUE(svc.value()->Sync().ok());
  }
  TamperFirstBlockObjectId(dir);

  ServiceOptions opts = BaseOptions<TypeParam>(dir);
  opts.canary_sample_every = 1;
  auto svc = Service::Open(std::move(opts));
  // The tamper is CRC-consistent: the store must open and serve normally.
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  CanaryCounts before = ReadCanaryCounts();
  auto result = svc.value()->Query(MatchAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  svc.value()->DrainCanary();
  CanaryCounts after = ReadCanaryCounts();
  EXPECT_GE(after.failed, before.failed + 1)
      << "canary did not fire on a tampered store";
  EXPECT_EQ(after.verified, before.verified);
}

TYPED_TEST(CanaryTest, QueueCapSkipsInsteadOfBlocking) {
  ServiceOptions opts = BaseOptions<TypeParam>();
  opts.canary_sample_every = 1;
  opts.canary_max_pending = 0;  // zero budget: every sample is shed
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  MineChain(svc.value().get());

  CanaryCounts before = ReadCanaryCounts();
  ASSERT_TRUE(svc.value()->Query(MatchAllQuery()).ok());
  svc.value()->DrainCanary();
  CanaryCounts after = ReadCanaryCounts();
  EXPECT_EQ(after.skipped, before.skipped + 1);
  EXPECT_EQ(after.verified, before.verified);
  EXPECT_EQ(after.failed, before.failed);
}

// The introspection plane must be invisible in the bytes: the same chain
// answers with bit-identical responses whether tracing + canary are all on
// or all off. (Verification depends on this — and so does the canary
// itself, which replays the bytes the client saw.)
TYPED_TEST(CanaryTest, ResponseBytesIdenticalWithIntrospectionOnAndOff) {
  ServiceOptions on = BaseOptions<TypeParam>();
  on.tracing = true;
  on.canary_sample_every = 1;
  ServiceOptions off = BaseOptions<TypeParam>();
  off.tracing = false;
  off.canary_sample_every = 0;

  auto svc_on = Service::Open(std::move(on));
  auto svc_off = Service::Open(std::move(off));
  ASSERT_TRUE(svc_on.ok()) << svc_on.status().ToString();
  ASSERT_TRUE(svc_off.ok()) << svc_off.status().ToString();
  MineChain(svc_on.value().get());
  MineChain(svc_off.value().get());

  CanaryCounts before = ReadCanaryCounts();
  std::vector<Query> queries = {
      MatchAllQuery(),
      QueryBuilder()
          .Window(kBaseTime + kTimeStep, kBaseTime + 3 * kTimeStep)
          .Range(0, 0, 40)
          .AnyOf({"Benz", "BMW"})
          .Build(),
  };
  for (const Query& q : queries) {
    core::QueryTrace trace;
    auto traced = svc_on.value()->Query(q, &trace);
    auto untraced = svc_off.value()->Query(q);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
    EXPECT_EQ(traced.value().response_bytes, untraced.value().response_bytes);
    // The traced side really did build a span tree and project it.
    ASSERT_NE(trace.spans, nullptr);
    EXPECT_GT(trace.spans->NumSpans(), 1u);
    EXPECT_GT(trace.total_ns, 0u);
  }
  svc_on.value()->DrainCanary();
  EXPECT_EQ(ReadCanaryCounts().failed, before.failed);  // clean chain
}

}  // namespace
}  // namespace vchain::api

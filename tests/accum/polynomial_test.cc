// Polynomial arithmetic over Fr: ring laws, division, XGCD / Bezout.

#include "accum/polynomial.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace vchain::accum {
namespace {

Poly RandPoly(Rng* rng, int degree) {
  std::vector<Fr> c(degree + 1);
  for (Fr& x : c) x = Fr::FromUint64(rng->Next() | 1);
  return Poly(std::move(c));
}

TEST(PolyTest, ConstantAndZero) {
  EXPECT_TRUE(Poly::Zero().IsZero());
  EXPECT_EQ(Poly::Zero().Degree(), -1);
  Poly one = Poly::Constant(Fr::One());
  EXPECT_EQ(one.Degree(), 0);
  EXPECT_EQ(one.Eval(Fr::FromUint64(123)), Fr::One());
  EXPECT_TRUE(Poly::Constant(Fr::Zero()).IsZero());
}

TEST(PolyTest, FromShiftedRootsEvaluates) {
  // P(Z) = (Z+2)(Z+3); P(1) = 12, P(0) = 6.
  Poly p = Poly::FromShiftedRoots({Fr::FromUint64(2), Fr::FromUint64(3)});
  EXPECT_EQ(p.Degree(), 2);
  EXPECT_EQ(p.Eval(Fr::FromUint64(1)), Fr::FromUint64(12));
  EXPECT_EQ(p.Eval(Fr::Zero()), Fr::FromUint64(6));
  // Root at -2.
  EXPECT_TRUE(p.Eval(Fr::FromUint64(2).Neg()).IsZero());
}

TEST(PolyTest, FromShiftedRootsEmpty) {
  Poly p = Poly::FromShiftedRoots({});
  EXPECT_EQ(p.Degree(), 0);
  EXPECT_EQ(p.Eval(Fr::FromUint64(99)), Fr::One());
}

TEST(PolyTest, RingLaws) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Poly a = RandPoly(&rng, static_cast<int>(rng.Range(0, 8)));
    Poly b = RandPoly(&rng, static_cast<int>(rng.Range(0, 8)));
    Poly c = RandPoly(&rng, static_cast<int>(rng.Range(0, 8)));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Poly::Zero());
    // Evaluation is a ring homomorphism.
    Fr x = Fr::FromUint64(rng.Next());
    EXPECT_EQ((a * b).Eval(x), a.Eval(x) * b.Eval(x));
    EXPECT_EQ((a + b).Eval(x), a.Eval(x) + b.Eval(x));
  }
}

TEST(PolyTest, DivRemIdentity) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    Poly a = RandPoly(&rng, static_cast<int>(rng.Range(0, 12)));
    Poly d = RandPoly(&rng, static_cast<int>(rng.Range(0, 6)));
    Poly q, r;
    a.DivRem(d, &q, &r);
    EXPECT_EQ(q * d + r, a);
    EXPECT_LT(r.Degree(), d.Degree() == -1 ? 0 : d.Degree());
  }
}

TEST(PolyTest, DivRemSmallerDividend) {
  Poly a = Poly::Constant(Fr::FromUint64(5));
  Poly d = Poly::FromShiftedRoots({Fr::FromUint64(1), Fr::FromUint64(2)});
  Poly q, r;
  a.DivRem(d, &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r, a);
}

TEST(PolyTest, XgcdBezoutIdentity) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Poly a = RandPoly(&rng, static_cast<int>(rng.Range(1, 10)));
    Poly b = RandPoly(&rng, static_cast<int>(rng.Range(1, 10)));
    Poly g, u, v;
    PolyXgcd(a, b, &g, &u, &v);
    EXPECT_EQ(a * u + b * v, g);
    EXPECT_EQ(g.Leading(), Fr::One());  // monic
  }
}

TEST(PolyTest, XgcdFindsCommonRoot) {
  // a = (Z+5)(Z+7), b = (Z+5)(Z+9): gcd = (Z+5).
  Poly a = Poly::FromShiftedRoots({Fr::FromUint64(5), Fr::FromUint64(7)});
  Poly b = Poly::FromShiftedRoots({Fr::FromUint64(5), Fr::FromUint64(9)});
  Poly g, u, v;
  PolyXgcd(a, b, &g, &u, &v);
  EXPECT_EQ(g, Poly::FromShiftedRoots({Fr::FromUint64(5)}));
}

TEST(PolyTest, BezoutForCoprimeSucceedsOnDisjointRoots) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    std::vector<Fr> ra, rb;
    for (int k = 0; k < 6; ++k) ra.push_back(Fr::FromUint64(100 + k));
    for (int k = 0; k < 3; ++k) rb.push_back(Fr::FromUint64(200 + k));
    Poly a = Poly::FromShiftedRoots(ra);
    Poly b = Poly::FromShiftedRoots(rb);
    Poly u, v;
    ASSERT_TRUE(PolyBezoutForCoprime(a, b, &u, &v).ok());
    EXPECT_EQ(a * u + b * v, Poly::Constant(Fr::One()));
  }
}

TEST(PolyTest, BezoutForCoprimeFailsOnSharedRoot) {
  Poly a = Poly::FromShiftedRoots({Fr::FromUint64(5), Fr::FromUint64(7)});
  Poly b = Poly::FromShiftedRoots({Fr::FromUint64(7)});
  Poly u, v;
  Status st = PolyBezoutForCoprime(a, b, &u, &v);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST(PolyTest, RepeatedRootsStillCoprimeWhenDisjoint) {
  // Multisets allow multiplicity: (Z+5)^3 vs (Z+7)^2 are still coprime.
  Poly a = Poly::FromShiftedRoots(
      {Fr::FromUint64(5), Fr::FromUint64(5), Fr::FromUint64(5)});
  Poly b = Poly::FromShiftedRoots({Fr::FromUint64(7), Fr::FromUint64(7)});
  Poly u, v;
  ASSERT_TRUE(PolyBezoutForCoprime(a, b, &u, &v).ok());
  EXPECT_EQ(a * u + b * v, Poly::Constant(Fr::One()));
}

}  // namespace
}  // namespace vchain::accum

// Multiset semantics: union (max), sum (add), intersection, Jaccard, serde.

#include "accum/multiset.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace vchain::accum {
namespace {

TEST(MultisetTest, AddAndCount) {
  Multiset m;
  m.Add(5);
  m.Add(5, 2);
  m.Add(3);
  EXPECT_EQ(m.CountOf(5), 3u);
  EXPECT_EQ(m.CountOf(3), 1u);
  EXPECT_EQ(m.CountOf(99), 0u);
  EXPECT_EQ(m.DistinctSize(), 2u);
  EXPECT_EQ(m.TotalSize(), 4u);
  EXPECT_TRUE(m.Contains(3));
  EXPECT_FALSE(m.Contains(4));
}

TEST(MultisetTest, EntriesSorted) {
  Multiset m{9, 1, 5, 1};
  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries()[0].element, 1u);
  EXPECT_EQ(m.entries()[0].count, 2u);
  EXPECT_EQ(m.entries()[1].element, 5u);
  EXPECT_EQ(m.entries()[2].element, 9u);
}

TEST(MultisetTest, UnionTakesMax) {
  Multiset a;
  a.Add(1, 3);
  a.Add(2, 1);
  Multiset b;
  b.Add(1, 1);
  b.Add(3, 5);
  Multiset u = a.UnionWith(b);
  EXPECT_EQ(u.CountOf(1), 3u);
  EXPECT_EQ(u.CountOf(2), 1u);
  EXPECT_EQ(u.CountOf(3), 5u);
}

TEST(MultisetTest, SumAddsCounts) {
  Multiset a;
  a.Add(1, 3);
  a.Add(2, 1);
  Multiset b;
  b.Add(1, 1);
  b.Add(3, 5);
  Multiset s = a.SumWith(b);
  EXPECT_EQ(s.CountOf(1), 4u);
  EXPECT_EQ(s.CountOf(2), 1u);
  EXPECT_EQ(s.CountOf(3), 5u);
  EXPECT_EQ(s.TotalSize(), a.TotalSize() + b.TotalSize());
}

TEST(MultisetTest, Intersects) {
  Multiset a{1, 2, 3};
  Multiset b{4, 5};
  Multiset c{3, 4};
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.Intersects(Multiset{}));
  EXPECT_FALSE(Multiset{}.Intersects(Multiset{}));
}

TEST(MultisetTest, JaccardBasics) {
  Multiset a{1, 2};
  Multiset b{1, 2};
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0);
  Multiset c{3, 4};
  EXPECT_DOUBLE_EQ(a.Jaccard(c), 0.0);
  Multiset d{1, 3};
  EXPECT_DOUBLE_EQ(a.Jaccard(d), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Multiset{}.Jaccard(Multiset{}), 1.0);
}

TEST(MultisetTest, JaccardUsesMultiplicity) {
  Multiset a;
  a.Add(1, 4);
  Multiset b;
  b.Add(1, 2);
  // min/max = 2/4.
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.5);
}

TEST(MultisetTest, UnionSumCommute) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Multiset a, b;
    for (int k = 0; k < 10; ++k) a.Add(rng.Range(0, 8), rng.Range(1, 3));
    for (int k = 0; k < 10; ++k) b.Add(rng.Range(0, 8), rng.Range(1, 3));
    EXPECT_EQ(a.UnionWith(b), b.UnionWith(a));
    EXPECT_EQ(a.SumWith(b), b.SumWith(a));
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    EXPECT_DOUBLE_EQ(a.Jaccard(b), b.Jaccard(a));
  }
}

TEST(MultisetTest, SerdeRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    Multiset m;
    int n = static_cast<int>(rng.Range(0, 20));
    for (int k = 0; k < n; ++k) m.Add(rng.Next(), rng.Range(1, 4));
    ByteWriter w;
    m.Serialize(&w);
    ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
    Multiset back;
    ASSERT_TRUE(Multiset::Deserialize(&r, &back).ok());
    EXPECT_EQ(back, m);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(MultisetTest, DeserializeRejectsUnsorted) {
  ByteWriter w;
  w.PutU32(2);
  w.PutU64(9);
  w.PutU32(1);
  w.PutU64(3);  // out of order
  w.PutU32(1);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Multiset out;
  EXPECT_FALSE(Multiset::Deserialize(&r, &out).ok());
}

TEST(MultisetTest, DeserializeRejectsZeroCount) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU64(9);
  w.PutU32(0);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Multiset out;
  EXPECT_FALSE(Multiset::Deserialize(&r, &out).ok());
}

TEST(MultisetTest, DeserializeRejectsTruncation) {
  Multiset m{1, 2, 3};
  ByteWriter w;
  m.Serialize(&w);
  Bytes full = w.TakeBytes();
  Bytes cut(full.begin(), full.end() - 3);
  ByteReader r(ByteSpan(cut.data(), cut.size()));
  Multiset out;
  EXPECT_FALSE(Multiset::Deserialize(&r, &out).ok());
}

TEST(ElementTest, KeywordEncodingStable) {
  EXPECT_EQ(EncodeKeyword("Sedan"), EncodeKeyword("Sedan"));
  EXPECT_NE(EncodeKeyword("Sedan"), EncodeKeyword("Van"));
  // Prefix namespace must not collide with keywords.
  EXPECT_NE(EncodeKeyword("p"), EncodePrefix(0, 0, 1, 8));
}

TEST(ElementTest, PrefixEncodingDistinguishesEverything) {
  // Same bits, different dim / length / width must differ.
  Element base = EncodePrefix(0, 0b10, 2, 8);
  EXPECT_NE(base, EncodePrefix(1, 0b10, 2, 8));
  EXPECT_NE(base, EncodePrefix(0, 0b10, 3, 8));
  EXPECT_NE(base, EncodePrefix(0, 0b11, 2, 8));
  EXPECT_NE(base, EncodePrefix(0, 0b10, 2, 16));
  EXPECT_EQ(base, EncodePrefix(0, 0b10, 2, 8));
}

Multiset RandomMultiset(Rng* rng, size_t max_distinct) {
  Multiset m;
  size_t n = rng->Next() % (max_distinct + 1);
  for (size_t i = 0; i < n; ++i) {
    m.Add((rng->Next() % 50) + 1, static_cast<uint32_t>(rng->Next() % 4) + 1);
  }
  return m;
}

TEST(MultisetTest, SumInPlaceMatchesSumWith) {
  Rng rng(31);
  for (int round = 0; round < 200; ++round) {
    Multiset a = RandomMultiset(&rng, 12);
    Multiset b = RandomMultiset(&rng, 12);
    Multiset expect = a.SumWith(b);
    Multiset got = a;
    got.SumInPlace(b);
    EXPECT_EQ(got, expect) << "round " << round;
  }
}

TEST(MultisetTest, UnionInPlaceMatchesUnionWith) {
  Rng rng(32);
  for (int round = 0; round < 200; ++round) {
    Multiset a = RandomMultiset(&rng, 12);
    Multiset b = RandomMultiset(&rng, 12);
    Multiset expect = a.UnionWith(b);
    Multiset got = a;
    got.UnionInPlace(b);
    EXPECT_EQ(got, expect) << "round " << round;
  }
}

TEST(MultisetTest, InPlaceEdgeCases) {
  Multiset empty;
  Multiset m{1, 2, 3};

  Multiset a = m;
  a.SumInPlace(empty);
  EXPECT_EQ(a, m);
  a = empty;
  a.SumInPlace(m);
  EXPECT_EQ(a, m);

  // Disjoint tail fast path (all of b beyond a's last element).
  a = Multiset{1, 2};
  a.SumInPlace(Multiset{5, 9});
  EXPECT_EQ(a, (Multiset{1, 2, 5, 9}));

  // Self-aliasing: sum doubles counts, union is the identity.
  a = Multiset{4, 4, 7};
  a.SumInPlace(a);
  EXPECT_EQ(a.CountOf(4), 4u);
  EXPECT_EQ(a.CountOf(7), 2u);
  Multiset u{4, 4, 7};
  u.UnionInPlace(u);
  EXPECT_EQ(u, (Multiset{4, 4, 7}));
}

TEST(MultisetTest, AddAllSumsManyParts) {
  Rng rng(33);
  std::vector<Multiset> parts;
  for (int i = 0; i < 9; ++i) parts.push_back(RandomMultiset(&rng, 8));
  Multiset expect;
  std::vector<const Multiset*> ptrs;
  for (const Multiset& p : parts) {
    expect = expect.SumWith(p);
    ptrs.push_back(&p);
  }
  Multiset got;
  got.AddAll(ptrs);
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace vchain::accum

// NTT over Fr: root-of-unity structure, transform round trips, and exact
// agreement between NTT and schoolbook polynomial multiplication.

#include "accum/ntt.h"

#include <gtest/gtest.h>

#include "accum/polynomial.h"
#include "common/rand.h"

namespace vchain::accum {
namespace {

std::vector<Fr> RandCoeffs(Rng* rng, size_t n) {
  std::vector<Fr> out(n);
  for (Fr& x : out) x = Fr::FromUint64(rng->Next());
  return out;
}

TEST(NttTest, RootOfUnityOrders) {
  // w_k has exact order 2^k: w_k^(2^k) == 1 and w_k^(2^(k-1)) == -1.
  for (uint32_t log_size : {1u, 4u, 10u, 28u}) {
    Fr w = NttRootOfUnity(log_size);
    Fr acc = w;
    for (uint32_t i = 0; i < log_size - 1; ++i) acc = acc.Square();
    EXPECT_EQ(acc, Fr::One().Neg()) << "log_size=" << log_size;
    EXPECT_EQ(acc.Square(), Fr::One());
  }
  // Consistency across sizes: w_k = w_{k+1}^2.
  EXPECT_EQ(NttRootOfUnity(10), NttRootOfUnity(11).Square());
}

TEST(NttTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  for (size_t n : {2u, 8u, 64u, 256u}) {
    std::vector<Fr> a = RandCoeffs(&rng, n);
    std::vector<Fr> copy = a;
    NttForward(&copy);
    NttInverse(&copy);
    EXPECT_EQ(copy, a) << "n=" << n;
  }
}

TEST(NttTest, TransformOfDeltaIsAllOnes) {
  std::vector<Fr> delta(16, Fr::Zero());
  delta[0] = Fr::One();
  NttForward(&delta);
  for (const Fr& x : delta) EXPECT_EQ(x, Fr::One());
}

TEST(NttTest, MultiplyMatchesSchoolbook) {
  Rng rng(2);
  for (int round = 0; round < 12; ++round) {
    size_t na = 1 + rng.Below(120);
    size_t nb = 1 + rng.Below(120);
    std::vector<Fr> a = RandCoeffs(&rng, na);
    std::vector<Fr> b = RandCoeffs(&rng, nb);
    std::vector<Fr> school(na + nb - 1, Fr::Zero());
    for (size_t i = 0; i < na; ++i) {
      for (size_t j = 0; j < nb; ++j) school[i + j] += a[i] * b[j];
    }
    EXPECT_EQ(NttMultiply(a, b), school) << "na=" << na << " nb=" << nb;
  }
}

TEST(NttTest, MultiplyEdgeCases) {
  EXPECT_TRUE(NttMultiply({}, {Fr::One()}).empty());
  // Constant * constant.
  auto r = NttMultiply({Fr::FromUint64(6)}, {Fr::FromUint64(7)});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], Fr::FromUint64(42));
}

TEST(NttTest, PolyMultiplicationConsistentAcrossCrossover) {
  // Products straddling the schoolbook/NTT threshold must agree with
  // evaluation homomorphism at random points.
  Rng rng(3);
  for (size_t n : {20u, 40u, 80u, 300u}) {
    std::vector<Fr> ra, rb;
    for (size_t i = 0; i < n; ++i) ra.push_back(Fr::FromUint64(rng.Next()));
    for (size_t i = 0; i < n / 2; ++i) rb.push_back(Fr::FromUint64(rng.Next()));
    Poly a = Poly::FromShiftedRoots(ra);
    Poly b = Poly::FromShiftedRoots(rb);
    Poly prod = a * b;
    EXPECT_EQ(prod.Degree(), a.Degree() + b.Degree());
    Fr x = Fr::FromUint64(rng.Next());
    EXPECT_EQ(prod.Eval(x), a.Eval(x) * b.Eval(x)) << "n=" << n;
  }
}

TEST(NttTest, LargeFromShiftedRootsEvaluates) {
  // 2^11 roots: exercises deep divide-and-conquer over the NTT path.
  Rng rng(4);
  std::vector<Fr> roots;
  for (int i = 0; i < 2048; ++i) roots.push_back(Fr::FromUint64(rng.Next()));
  Poly p = Poly::FromShiftedRoots(roots);
  EXPECT_EQ(p.Degree(), 2048);
  // P(-root) == 0 for a sampled root; P(fresh) != 0.
  EXPECT_TRUE(p.Eval(roots[1000].Neg()).IsZero());
  EXPECT_FALSE(p.Eval(Fr::FromUint64(123456789)).IsZero());
  EXPECT_EQ(p.Leading(), Fr::One());
}

}  // namespace
}  // namespace vchain::accum

// Accumulator engine correctness — typed across all four engines
// (acc1/acc2 x BN254/mock), plus acc2-specific aggregation and the
// unforgeability game from Definition 8.1 played with tampered proofs.

#include <gtest/gtest.h>

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/engine.h"
#include "accum/mock.h"
#include "common/rand.h"

namespace vchain::accum {
namespace {

static_assert(AccumulatorEngine<Acc1Engine>);
static_assert(AccumulatorEngine<Acc2Engine>);
static_assert(AccumulatorEngine<MockAcc1Engine>);
static_assert(AccumulatorEngine<MockAcc2Engine>);

AccParams SmallParams() {
  AccParams p;
  p.universe_bits = 12;  // tiny universe keeps test key material cheap
  return p;
}

template <typename Engine>
Engine MakeEngine();

template <>
Acc1Engine MakeEngine<Acc1Engine>() {
  return Acc1Engine(KeyOracle::Create(/*seed=*/77, SmallParams()));
}
template <>
Acc2Engine MakeEngine<Acc2Engine>() {
  return Acc2Engine(KeyOracle::Create(/*seed=*/77, SmallParams()));
}
template <>
MockAcc1Engine MakeEngine<MockAcc1Engine>() {
  return MockAcc1Engine(KeyOracle::Create(/*seed=*/77, SmallParams()));
}
template <>
MockAcc2Engine MakeEngine<MockAcc2Engine>() {
  return MockAcc2Engine(KeyOracle::Create(/*seed=*/77, SmallParams()));
}

template <typename Engine>
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(MakeEngine<Engine>()) {}
  Engine engine_;
};

using AllEngines =
    ::testing::Types<Acc1Engine, Acc2Engine, MockAcc1Engine, MockAcc2Engine>;
TYPED_TEST_SUITE(EngineTest, AllEngines);

TYPED_TEST(EngineTest, DisjointProofVerifies) {
  Multiset w{10, 20, 30};
  Multiset clause{40, 50};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  EXPECT_TRUE(this->engine_.VerifyDisjoint(this->engine_.Digest(w),
                                           this->engine_.QueryDigestOf(clause),
                                           proof.value()));
}

TYPED_TEST(EngineTest, IntersectingSetsRefuseProof) {
  Multiset w{10, 20, 30};
  Multiset clause{30, 50};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  EXPECT_FALSE(proof.ok());
}

TYPED_TEST(EngineTest, ProofDoesNotVerifyAgainstWrongDigest) {
  Multiset w{10, 20, 30};
  Multiset other{11, 21};
  Multiset clause{40, 50};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(this->engine_.VerifyDisjoint(
      this->engine_.Digest(other), this->engine_.QueryDigestOf(clause),
      proof.value()));
}

TYPED_TEST(EngineTest, ProofDoesNotVerifyAgainstWrongClause) {
  Multiset w{10, 20, 30};
  Multiset clause{40, 50};
  Multiset other_clause{60};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(this->engine_.VerifyDisjoint(
      this->engine_.Digest(w), this->engine_.QueryDigestOf(other_clause),
      proof.value()));
}

TYPED_TEST(EngineTest, DigestDeterministic) {
  Multiset w{1, 2, 3, 3};
  EXPECT_EQ(this->engine_.Digest(w), this->engine_.Digest(w));
  Multiset w2{1, 2};
  EXPECT_FALSE(this->engine_.Digest(w) == this->engine_.Digest(w2));
}

TYPED_TEST(EngineTest, MultiplicityChangesDigest) {
  Multiset once{7};
  Multiset twice;
  twice.Add(7, 2);
  EXPECT_FALSE(this->engine_.Digest(once) == this->engine_.Digest(twice));
}

TYPED_TEST(EngineTest, MultisetWithMultiplicityStillProvable) {
  Multiset w;
  w.Add(10, 3);
  w.Add(20, 2);
  Multiset clause{40};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(this->engine_.VerifyDisjoint(this->engine_.Digest(w),
                                           this->engine_.QueryDigestOf(clause),
                                           proof.value()));
}

TYPED_TEST(EngineTest, DigestSerdeRoundTrip) {
  Multiset w{5, 6, 7};
  auto d = this->engine_.Digest(w);
  ByteWriter bw;
  this->engine_.SerializeDigest(d, &bw);
  EXPECT_EQ(bw.size(), this->engine_.DigestByteSize());
  ByteReader br(ByteSpan(bw.bytes().data(), bw.bytes().size()));
  decltype(d) back;
  ASSERT_TRUE(this->engine_.DeserializeDigest(&br, &back).ok());
  EXPECT_EQ(back, d);
}

TYPED_TEST(EngineTest, ProofSerdeRoundTrip) {
  Multiset w{5, 6, 7};
  Multiset clause{9};
  auto proof = this->engine_.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok());
  ByteWriter bw;
  this->engine_.SerializeProof(proof.value(), &bw);
  EXPECT_EQ(bw.size(), this->engine_.ProofByteSize());
  ByteReader br(ByteSpan(bw.bytes().data(), bw.bytes().size()));
  typename TypeParam::Proof back;
  ASSERT_TRUE(this->engine_.DeserializeProof(&br, &back).ok());
  EXPECT_TRUE(this->engine_.VerifyDisjoint(
      this->engine_.Digest(w), this->engine_.QueryDigestOf(clause), back));
}

TYPED_TEST(EngineTest, RandomizedDisjointSweep) {
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    Multiset w, clause;
    // Disjoint by construction: distinct ranges (mapped ids stay distinct in
    // the 12-bit universe because raw ids are < 2^12 - 1 here).
    int nw = static_cast<int>(rng.Range(1, 12));
    int nc = static_cast<int>(rng.Range(1, 4));
    for (int i = 0; i < nw; ++i) w.Add(rng.Range(1, 1000), rng.Range(1, 3));
    for (int i = 0; i < nc; ++i) clause.Add(rng.Range(1001, 2000));
    auto proof = this->engine_.ProveDisjoint(w, clause);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(this->engine_.VerifyDisjoint(
        this->engine_.Digest(w), this->engine_.QueryDigestOf(clause),
        proof.value()));
  }
}

// --- acc2-only aggregation (paper §6.3) -------------------------------------

template <typename Engine>
class AggregationTest : public ::testing::Test {
 protected:
  AggregationTest() : engine_(MakeEngine<Engine>()) {}
  Engine engine_;
};

using AggEngines = ::testing::Types<Acc2Engine, MockAcc2Engine>;
TYPED_TEST_SUITE(AggregationTest, AggEngines);

TYPED_TEST(AggregationTest, SumDigestsEqualsDigestOfSum) {
  Multiset a{1, 2, 3};
  Multiset b{2, 4};
  Multiset c{9};
  auto sum = this->engine_.SumDigests(
      {this->engine_.Digest(a), this->engine_.Digest(b),
       this->engine_.Digest(c)});
  EXPECT_EQ(sum, this->engine_.Digest(a.SumWith(b).SumWith(c)));
}

TYPED_TEST(AggregationTest, ProofSumVerifiesAgainstSummedDigest) {
  Multiset a{1, 2, 3};
  Multiset b{2, 4};
  Multiset clause{100, 200};
  auto pa = this->engine_.ProveDisjoint(a, clause);
  auto pb = this->engine_.ProveDisjoint(b, clause);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  auto agg_proof = this->engine_.SumProofs({pa.value(), pb.value()});
  auto agg_digest = this->engine_.SumDigests(
      {this->engine_.Digest(a), this->engine_.Digest(b)});
  EXPECT_TRUE(this->engine_.VerifyDisjoint(
      agg_digest, this->engine_.QueryDigestOf(clause), agg_proof));
}

TYPED_TEST(AggregationTest, AggregatedProofRejectsForeignDigest) {
  Multiset a{1, 2, 3};
  Multiset b{2, 4};
  Multiset clause{100, 200};
  auto pa = this->engine_.ProveDisjoint(a, clause);
  ASSERT_TRUE(pa.ok());
  auto agg_digest = this->engine_.SumDigests(
      {this->engine_.Digest(a), this->engine_.Digest(b)});
  // Proof covering only `a` must not verify for the digest of a+b.
  EXPECT_FALSE(this->engine_.VerifyDisjoint(
      agg_digest, this->engine_.QueryDigestOf(clause), pa.value()));
}

// --- unforgeability spot-checks (Definition 8.1 adversary) ------------------

TEST(UnforgeabilityTest, Acc1TamperedProofRejected) {
  Acc1Engine engine = MakeEngine<Acc1Engine>();
  Multiset w{10, 20};
  Multiset clause{30};
  auto proof = engine.ProveDisjoint(w, clause);
  ASSERT_TRUE(proof.ok());
  Acc1Engine::Proof bad = proof.value();
  bad.f1 = crypto::G2Mul(Fr::FromUint64(12345)).ToAffine();
  EXPECT_FALSE(
      engine.VerifyDisjoint(engine.Digest(w), engine.QueryDigestOf(clause), bad));
}

TEST(UnforgeabilityTest, Acc2ProofForIntersectingSetsFailsVerification) {
  // Even if an adversary hands us a "proof" computed as A*B for
  // intersecting multisets via the trusted path, verification against the
  // honest digests of *different* claimed sets must fail.
  auto oracle = KeyOracle::Create(/*seed=*/77, SmallParams());
  Acc2Engine engine(oracle);
  Multiset w{10, 20, 30};
  Multiset clause{40};
  // Forge: proof for (w', clause) with w' != w.
  Multiset w_prime{11, 21};
  Acc2Engine trusted(oracle, ProverMode::kTrustedFast);
  auto forged = trusted.ProveDisjoint(w_prime, clause);
  ASSERT_TRUE(forged.ok());
  EXPECT_FALSE(engine.VerifyDisjoint(engine.Digest(w),
                                     engine.QueryDigestOf(clause),
                                     forged.value()));
}

// --- trusted fast path must be byte-identical --------------------------------

TEST(ProverModeTest, Acc1FastDigestMatchesHonest) {
  auto oracle = KeyOracle::Create(/*seed=*/123, SmallParams());
  Acc1Engine honest(oracle, ProverMode::kHonest);
  Acc1Engine fast(oracle, ProverMode::kTrustedFast);
  Multiset w;
  Rng rng(5);
  for (int i = 0; i < 9; ++i) w.Add(rng.Next(), rng.Range(1, 3));
  EXPECT_EQ(honest.Digest(w), fast.Digest(w));
  Multiset clause{123, 456};
  auto ph = honest.ProveDisjoint(w, clause);
  auto pf = fast.ProveDisjoint(w, clause);
  ASSERT_TRUE(ph.ok());
  ASSERT_TRUE(pf.ok());
  EXPECT_EQ(ph.value(), pf.value());
}

TEST(ProverModeTest, Acc2FastDigestMatchesHonest) {
  auto oracle = KeyOracle::Create(/*seed=*/123, SmallParams());
  Acc2Engine honest(oracle, ProverMode::kHonest);
  Acc2Engine fast(oracle, ProverMode::kTrustedFast);
  Multiset w;
  Rng rng(6);
  for (int i = 0; i < 9; ++i) w.Add(rng.Next(), rng.Range(1, 3));
  EXPECT_EQ(honest.Digest(w), fast.Digest(w));
  Multiset clause{EncodeKeyword("a"), EncodeKeyword("b")};
  auto ph = honest.ProveDisjoint(w, clause);
  auto pf = fast.ProveDisjoint(w, clause);
  if (ph.ok() && pf.ok()) {
    EXPECT_EQ(ph.value(), pf.value());
  } else {
    // Mapped collision between w and clause: both paths must agree.
    EXPECT_EQ(ph.ok(), pf.ok());
  }
}

TEST(MappedIntersectsTest, UsesEngineMapping) {
  auto oracle = KeyOracle::Create(/*seed=*/1, SmallParams());
  Acc2Engine acc2(oracle);
  uint64_t q = oracle->params().UniverseSize();
  // Two raw ids that collide mod (q-1).
  Element a = 5;
  Element b = 5 + (q - 1);
  EXPECT_EQ(acc2.MapElement(a), acc2.MapElement(b));
  Multiset w{a};
  Multiset clause{b};
  EXPECT_TRUE(MappedIntersects(acc2, w, clause));
  EXPECT_FALSE(w.Intersects(clause));
  // acc1 maps identically, so no collision there.
  Acc1Engine acc1(oracle);
  EXPECT_FALSE(MappedIntersects(acc1, w, clause));
}

TEST(KeyOracleTest, PowersAreConsistent) {
  auto oracle = KeyOracle::Create(/*seed=*/9, SmallParams());
  // g^{s^j} must equal commit(s^j) for dense and sparse paths.
  oracle->WarmupG1(8);
  for (uint64_t j : {0ULL, 1ULL, 5ULL, 8ULL, 1000ULL}) {
    crypto::G1Affine p = oracle->G1PowerOf(j);
    crypto::G1Affine expect = oracle->CommitG1(oracle->SecretPow(j)).ToAffine();
    EXPECT_EQ(p, expect) << "j=" << j;
  }
  for (uint64_t j : {0ULL, 3ULL, 700ULL}) {
    crypto::G2Affine p = oracle->G2PowerOf(j);
    crypto::G2Affine expect = oracle->CommitG2(oracle->SecretPow(j)).ToAffine();
    EXPECT_EQ(p, expect) << "j=" << j;
  }
}

TEST(KeyOracleTest, FixedBaseMatchesScalarMul) {
  auto oracle = KeyOracle::Create(/*seed=*/10, SmallParams());
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    Fr k = Fr::FromU256Reduce(
        crypto::U256(rng.Next(), rng.Next(), rng.Next(), 0));
    EXPECT_TRUE(oracle->CommitG1(k).Equal(crypto::G1Mul(k)));
  }
}

}  // namespace
}  // namespace vchain::accum

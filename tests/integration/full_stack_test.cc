// Full-stack integration: PoW-mined chains, workload-driven data, random
// queries cross-checked against a brute-force oracle, and serialization
// through the wire format — the whole Fig 3 deployment in one process.

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/mht_baseline.h"
#include "core/vchain.h"
#include "workload/datasets.h"

namespace vchain {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using workload::DatasetGenerator;
using workload::DatasetKind;
using workload::DatasetProfile;

TEST(FullStackTest, PowMinedChainVerifiesEndToEnd) {
  auto oracle = KeyOracle::Create(/*seed=*/9, AccParams{16});
  accum::Acc2Engine engine(oracle, accum::ProverMode::kTrustedFast);
  DatasetProfile profile = workload::Profile4SQ(/*objects_per_block=*/5);
  ChainConfig config;
  config.mode = IndexMode::kBoth;
  config.schema = profile.schema;
  config.skiplist_size = 2;
  config.pow.difficulty_bits = 10;  // real mining, ~1k hashes per block

  ChainBuilder<accum::Acc2Engine> miner(engine, config);
  DatasetGenerator gen(profile, /*seed=*/42);
  uint64_t attempts = 0;
  for (int b = 0; b < 10; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = objs.front().timestamp;
    auto stats = miner.AppendBlock(std::move(objs), ts);
    ASSERT_TRUE(stats.ok());
    attempts += stats.value().pow_attempts;
  }
  EXPECT_GT(attempts, 10u);  // difficulty actually forced work

  // The light client enforces PoW on sync.
  chain::LightClient light(config.pow);
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  // A forged header (wrong nonce) is rejected.
  chain::LightClient strict(chain::PowConfig{30});
  Status st = strict.SyncHeader(miner.blocks()[0].header);
  EXPECT_FALSE(st.ok());

  store::VectorBlockSource<accum::Acc2Engine> source(&miner.blocks());
  core::QueryProcessor<accum::Acc2Engine> sp(engine, config, &source);
  core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
  Query q = gen.MakeDefaultQuery(gen.TimestampOfBlock(0),
                                 gen.TimestampOfBlock(9));
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, resp.value()).ok());
}

class OracleSweepTest
    : public ::testing::TestWithParam<std::tuple<DatasetKind, IndexMode>> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, OracleSweepTest,
    ::testing::Combine(::testing::Values(DatasetKind::k4SQ, DatasetKind::kWX,
                                         DatasetKind::kETH),
                       ::testing::Values(IndexMode::kNil, IndexMode::kIntra,
                                         IndexMode::kBoth)),
    [](const auto& info) {
      return std::string(workload::DatasetName(std::get<0>(info.param))) +
             "_" + core::IndexModeName(std::get<1>(info.param));
    });

// Property sweep: for every dataset x index mode, random queries agree with
// the brute-force oracle (mock engine: identity element mapping, so results
// are exact) and every response verifies.
TEST_P(OracleSweepTest, RandomQueriesMatchBruteForce) {
  auto [kind, mode] = GetParam();
  auto oracle = KeyOracle::Create(/*seed=*/10, AccParams{16});
  accum::MockAcc1Engine engine(oracle);
  DatasetProfile profile = workload::ProfileFor(kind, 6);
  ChainConfig config;
  config.mode = mode;
  config.schema = profile.schema;
  config.skiplist_size = 2;

  ChainBuilder<accum::MockAcc1Engine> miner(engine, config);
  DatasetGenerator gen(profile, /*seed=*/kind == DatasetKind::kWX ? 5u : 6u);
  std::vector<chain::Object> all;
  for (int b = 0; b < 14; ++b) {
    auto objs = gen.NextBlock();
    all.insert(all.end(), objs.begin(), objs.end());
    ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  }
  chain::LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  store::VectorBlockSource<accum::MockAcc1Engine> source(&miner.blocks());
  core::QueryProcessor<accum::MockAcc1Engine> sp(engine, config, &source);
  core::Verifier<accum::MockAcc1Engine> verifier(engine, config, &light);

  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    uint64_t b0 = rng.Below(14);
    uint64_t b1 = b0 + rng.Below(14 - b0);
    Query q = gen.MakeQuery(0.1 + 0.2 * rng.NextDouble(),
                            2 + rng.Below(4), gen.TimestampOfBlock(b0),
                            gen.TimestampOfBlock(b1));
    auto resp = sp.TimeWindowQuery(q);
    ASSERT_TRUE(resp.ok());
    Status st = verifier.VerifyTimeWindow(q, resp.value());
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::vector<uint64_t> got, want;
    for (const auto& o : resp.value().objects) got.push_back(o.id);
    for (const auto& o : all) {
      if (core::LocalMatch(o, q, config.schema)) want.push_back(o.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << q.ToString();
  }
}

TEST(MhtBaselineTest, TreeCountGrowsExponentially) {
  DatasetProfile profile = workload::ProfileWX(6);
  DatasetGenerator gen(profile, 1);
  auto objs = gen.NextBlock();
  for (uint32_t dims : {1u, 3u, 5u}) {
    core::MhtAdsStats stats = core::BuildMhtBaseline(objs, dims);
    EXPECT_EQ(stats.num_trees, (uint64_t{1} << dims) - 1);
    EXPECT_EQ(stats.roots.size(), stats.num_trees);
    EXPECT_EQ(stats.ads_bytes,
              stats.num_trees * (2 * objs.size() - 1) * 32);
  }
}

TEST(MhtBaselineTest, RootsDependOnSortAttribute) {
  // Different single-attribute trees must generally have different roots
  // (different leaf order) while containing the same objects.
  DatasetProfile profile = workload::Profile4SQ(8);
  DatasetGenerator gen(profile, 2);
  auto objs = gen.NextBlock();
  core::MhtAdsStats stats = core::BuildMhtBaseline(objs, 2);
  ASSERT_EQ(stats.num_trees, 3u);
  // Deterministic rebuild.
  core::MhtAdsStats again = core::BuildMhtBaseline(objs, 2);
  EXPECT_EQ(stats.roots, again.roots);
}

TEST(FullStackTest, ResponseBytesSurviveHostileReordering) {
  // Serialize a response, deserialize, verify — then byte-flip sweeps must
  // never crash and never verify as a *different* accepted answer.
  auto oracle = KeyOracle::Create(/*seed=*/11, AccParams{16});
  accum::MockAcc2Engine engine(oracle);
  DatasetProfile profile = workload::ProfileETH(4);
  ChainConfig config;
  config.mode = IndexMode::kIntra;
  config.schema = profile.schema;

  ChainBuilder<accum::MockAcc2Engine> miner(engine, config);
  DatasetGenerator gen(profile, 3);
  for (int b = 0; b < 5; ++b) {
    auto objs = gen.NextBlock();
    ASSERT_TRUE(miner.AppendBlock(objs, objs.front().timestamp).ok());
  }
  chain::LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  store::VectorBlockSource<accum::MockAcc2Engine> source(&miner.blocks());
  core::QueryProcessor<accum::MockAcc2Engine> sp(engine, config, &source);
  core::Verifier<accum::MockAcc2Engine> verifier(engine, config, &light);
  Query q = gen.MakeDefaultQuery(gen.TimestampOfBlock(0),
                                 gen.TimestampOfBlock(4));
  auto resp = sp.TimeWindowQuery(q);
  ASSERT_TRUE(resp.ok());

  ByteWriter w;
  core::SerializeResponse(engine, resp.value(), &w);
  Bytes bytes = w.TakeBytes();
  size_t baseline_results = resp.value().objects.size();

  Rng rng(13);
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    Bytes mutated = bytes;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.Below(8));
    ByteReader r(ByteSpan(mutated.data(), mutated.size()));
    core::QueryResponse<accum::MockAcc2Engine> out;
    Status st = core::DeserializeResponse(engine, &r, &out);
    if (!st.ok()) continue;  // rejected at the wire layer: fine
    Status v = verifier.VerifyTimeWindow(q, out);
    if (v.ok()) {
      ++accepted;
      // A flip that still verifies must not have changed the result set.
      EXPECT_EQ(out.objects.size(), baseline_results);
    }
  }
  // Overwhelmingly, random flips must be rejected somewhere.
  EXPECT_LE(accepted, 2);
}

}  // namespace
}  // namespace vchain

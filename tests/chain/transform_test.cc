// trans(.) and range covers (§5.3): value-in-range <=> set intersection.

#include "chain/transform.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/rand.h"

namespace vchain::chain {
namespace {

bool SetsIntersect(const std::vector<accum::Element>& a,
                   const std::vector<accum::Element>& b) {
  std::unordered_set<accum::Element> sa(a.begin(), a.end());
  for (accum::Element e : b) {
    if (sa.count(e)) return true;
  }
  return false;
}

TEST(TransformTest, PrefixSetSizeAndDeterminism) {
  NumericSchema schema{1, 8};
  auto set1 = PrefixSetOf(42, 0, schema);
  EXPECT_EQ(set1.size(), schema.bits + 1);  // root prefix included
  EXPECT_EQ(set1, PrefixSetOf(42, 0, schema));
  EXPECT_NE(set1, PrefixSetOf(43, 0, schema));
  // Different dimension encodes differently.
  EXPECT_NE(set1, PrefixSetOf(42, 1, schema));
}

TEST(TransformTest, PaperExampleRangeZeroToSix) {
  // Fig 5: [0,6] over a 3-bit space covers {0*, 10*, 110}.
  NumericSchema schema{1, 3};
  auto cover = RangeCoverElements(0, 6, 0, schema);
  std::vector<accum::Element> expected = {
      accum::EncodePrefix(0, 0b110, 3, 3),
      accum::EncodePrefix(0, 0b10, 2, 3),
      accum::EncodePrefix(0, 0b0, 1, 3),
  };
  std::sort(cover.begin(), cover.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cover, expected);
}

TEST(TransformTest, PaperExampleMembership) {
  // 4 in [0,6] (shares "10*"); (4,2) not in [(0,3),(6,4)] per §5.3.
  NumericSchema schema{1, 3};
  EXPECT_TRUE(SetsIntersect(PrefixSetOf(4, 0, schema),
                            RangeCoverElements(0, 6, 0, schema)));
  NumericSchema schema2{2, 3};
  auto obj = PrefixSetOf(4, 0, schema2);
  auto dim2 = PrefixSetOf(2, 1, schema2);
  obj.insert(obj.end(), dim2.begin(), dim2.end());
  // Dimension 2 clause of the query range: y in [3,4].
  auto clause2 = RangeCoverElements(3, 4, 1, schema2);
  EXPECT_FALSE(SetsIntersect(obj, clause2));
}

TEST(TransformTest, FullDomainRangeMatchesEverything) {
  NumericSchema schema{1, 6};
  auto cover = RangeCoverElements(0, schema.MaxValue(), 0, schema);
  ASSERT_EQ(cover.size(), 1u);  // the trie root
  for (uint64_t v : {0ULL, 17ULL, 63ULL}) {
    EXPECT_TRUE(SetsIntersect(PrefixSetOf(v, 0, schema), cover)) << v;
  }
}

TEST(TransformTest, SingletonRange) {
  NumericSchema schema{1, 8};
  auto cover = RangeCoverElements(77, 77, 0, schema);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_TRUE(SetsIntersect(PrefixSetOf(77, 0, schema), cover));
  EXPECT_FALSE(SetsIntersect(PrefixSetOf(78, 0, schema), cover));
}

TEST(TransformTest, MembershipEquivalenceRandomized) {
  // Property: v in [lo,hi] <=> trans(v) intersects cover([lo,hi]).
  Rng rng(42);
  NumericSchema schema{1, 10};
  for (int round = 0; round < 300; ++round) {
    uint64_t a = rng.Below(schema.DomainSize());
    uint64_t b = rng.Below(schema.DomainSize());
    uint64_t lo = std::min(a, b), hi = std::max(a, b);
    uint64_t v = rng.Below(schema.DomainSize());
    auto cover = RangeCoverElements(lo, hi, 0, schema);
    bool expect = (v >= lo && v <= hi);
    EXPECT_EQ(SetsIntersect(PrefixSetOf(v, 0, schema), cover), expect)
        << "v=" << v << " range=[" << lo << "," << hi << "]";
  }
}

TEST(TransformTest, CoverSizeIsLogarithmic) {
  NumericSchema schema{1, 16};
  Rng rng(43);
  for (int round = 0; round < 50; ++round) {
    uint64_t a = rng.Below(schema.DomainSize());
    uint64_t b = rng.Below(schema.DomainSize());
    auto cover =
        RangeCoverElements(std::min(a, b), std::max(a, b), 0, schema);
    EXPECT_LE(cover.size(), 2 * schema.bits);
  }
}

TEST(TransformTest, DyadicRangeBounds) {
  NumericSchema schema{1, 8};
  DyadicRange r{0b10, 2};  // prefix "10": [128, 191]
  EXPECT_EQ(r.Lo(schema), 128u);
  EXPECT_EQ(r.Hi(schema), 191u);
  EXPECT_TRUE(r.Contains(150, schema));
  EXPECT_FALSE(r.Contains(192, schema));
  DyadicRange root{0, 0};
  EXPECT_EQ(root.Lo(schema), 0u);
  EXPECT_EQ(root.Hi(schema), 255u);
}

TEST(TransformTest, TransformObjectCombinesDimsAndKeywords) {
  NumericSchema schema{2, 4};
  Object o;
  o.numeric = {3, 9};
  o.keywords = {"Sedan", "Benz"};
  Multiset w = TransformObject(o, schema);
  // 2 dims x 5 prefixes + 2 keywords = 12 distinct elements.
  EXPECT_EQ(w.DistinctSize(), 12u);
  EXPECT_TRUE(w.Contains(accum::EncodeKeyword("Sedan")));
  EXPECT_FALSE(w.Contains(accum::EncodeKeyword("BMW")));
  EXPECT_TRUE(w.Contains(accum::EncodePrefix(0, 3, 4, 4)));
  EXPECT_TRUE(w.Contains(accum::EncodePrefix(1, 0b100, 3, 4)));
}

TEST(TransformTest, ValidateObject) {
  NumericSchema schema{2, 8};
  Object ok;
  ok.numeric = {1, 255};
  EXPECT_TRUE(ValidateObject(ok, schema).ok());
  Object wrong_dims;
  wrong_dims.numeric = {1};
  EXPECT_FALSE(ValidateObject(wrong_dims, schema).ok());
  Object too_big;
  too_big.numeric = {1, 256};
  EXPECT_FALSE(ValidateObject(too_big, schema).ok());
}

TEST(ObjectTest, SerdeRoundTrip) {
  Object o;
  o.id = 42;
  o.timestamp = 1234567;
  o.numeric = {7, 99};
  o.keywords = {"alpha", "beta gamma"};
  ByteWriter w;
  o.Serialize(&w);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Object back;
  ASSERT_TRUE(Object::Deserialize(&r, &back).ok());
  EXPECT_EQ(back, o);
  EXPECT_EQ(back.Hash(), o.Hash());
}

TEST(ObjectTest, HashSensitiveToEveryField) {
  Object o;
  o.id = 1;
  o.numeric = {5};
  o.keywords = {"x"};
  Object o2 = o;
  o2.id = 2;
  EXPECT_NE(o.Hash(), o2.Hash());
  Object o3 = o;
  o3.numeric = {6};
  EXPECT_NE(o.Hash(), o3.Hash());
  Object o4 = o;
  o4.keywords = {"y"};
  EXPECT_NE(o.Hash(), o4.Hash());
  Object o5 = o;
  o5.timestamp = 9;
  EXPECT_NE(o.Hash(), o5.Hash());
}

}  // namespace
}  // namespace vchain::chain

// Merkle tree, PoW, headers, light-client sync.

#include <gtest/gtest.h>

#include "chain/light_client.h"
#include "chain/merkle.h"
#include "chain/pow.h"
#include "common/rand.h"

namespace vchain::chain {
namespace {

Hash32 LeafOf(uint64_t i) {
  ByteWriter w;
  w.PutU64(i);
  return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
}

TEST(MerkleTest, EmptyAndSingle) {
  EXPECT_EQ(MerkleRootOf({}), Hash32{});
  Hash32 leaf = LeafOf(1);
  EXPECT_EQ(MerkleRootOf({leaf}), leaf);
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<Hash32> leaves;
  for (uint64_t i = 0; i < 7; ++i) leaves.push_back(LeafOf(i));
  Hash32 root = MerkleRootOf(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = LeafOf(100 + i);
    EXPECT_NE(MerkleRootOf(mutated), root) << i;
  }
}

TEST(MerkleTest, ProofsVerifyForAllSizesAndIndexes) {
  for (size_t n = 1; n <= 18; ++n) {
    std::vector<Hash32> leaves;
    for (uint64_t i = 0; i < n; ++i) leaves.push_back(LeafOf(i));
    Hash32 root = MerkleRootOf(leaves);
    for (uint32_t idx = 0; idx < n; ++idx) {
      MerkleProof proof = MerkleProve(leaves, idx);
      EXPECT_TRUE(MerkleVerify(root, leaves[idx], proof))
          << "n=" << n << " idx=" << idx;
      // Wrong leaf rejected.
      EXPECT_FALSE(MerkleVerify(root, LeafOf(999), proof));
    }
  }
}

TEST(MerkleTest, ProofSerdeRoundTrip) {
  std::vector<Hash32> leaves;
  for (uint64_t i = 0; i < 11; ++i) leaves.push_back(LeafOf(i));
  MerkleProof proof = MerkleProve(leaves, 6);
  ByteWriter w;
  proof.Serialize(&w);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  MerkleProof back;
  ASSERT_TRUE(MerkleProof::Deserialize(&r, &back).ok());
  EXPECT_TRUE(MerkleVerify(MerkleRootOf(leaves), leaves[6], back));
}

TEST(PowTest, ZeroDifficultyAlwaysPasses) {
  BlockHeader h;
  EXPECT_TRUE(CheckPow(h, PowConfig{0}));
}

TEST(PowTest, MiningSatisfiesDifficulty) {
  BlockHeader h;
  h.height = 3;
  h.timestamp = 99;
  PowConfig config{8};
  uint64_t attempts = MineNonce(&h, config);
  EXPECT_GE(attempts, 1u);
  EXPECT_TRUE(CheckPow(h, config));
  EXPECT_GE(crypto::LeadingZeroBits(h.Hash()), 8);
  // Tampering after sealing breaks the proof (with overwhelming odds).
  BlockHeader tampered = h;
  tampered.timestamp ^= 1;
  // Re-check multiple fields to keep flake odds negligible (~2^-24).
  BlockHeader t2 = h;
  t2.height ^= 1;
  BlockHeader t3 = h;
  t3.object_root[0] ^= 1;
  EXPECT_FALSE(CheckPow(tampered, config) && CheckPow(t2, config) &&
               CheckPow(t3, config));
}

TEST(HeaderTest, SerdeRoundTrip) {
  BlockHeader h;
  h.height = 7;
  h.prev_hash = LeafOf(1);
  h.timestamp = 1234;
  h.nonce = 999;
  h.object_root = LeafOf(2);
  h.skiplist_root = LeafOf(3);
  ByteWriter w;
  h.Serialize(&w);
  EXPECT_EQ(w.size(), BlockHeader::kSerializedSize);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  BlockHeader back;
  ASSERT_TRUE(BlockHeader::Deserialize(&r, &back).ok());
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.Hash(), h.Hash());
}

BlockHeader MakeHeader(uint64_t height, const Hash32& prev, uint64_t ts) {
  BlockHeader h;
  h.height = height;
  h.prev_hash = prev;
  h.timestamp = ts;
  h.object_root = LeafOf(height);
  return h;
}

TEST(LightClientTest, AcceptsValidChain) {
  LightClient lc;
  Hash32 prev{};
  for (uint64_t i = 0; i < 10; ++i) {
    BlockHeader h = MakeHeader(i, prev, 100 + i * 10);
    ASSERT_TRUE(lc.SyncHeader(h).ok()) << i;
    prev = h.Hash();
  }
  EXPECT_EQ(lc.Height(), 10u);
  EXPECT_EQ(lc.HeaderAt(3).timestamp, 130u);
}

TEST(LightClientTest, RejectsBrokenLinkage) {
  LightClient lc;
  BlockHeader h0 = MakeHeader(0, Hash32{}, 100);
  ASSERT_TRUE(lc.SyncHeader(h0).ok());
  BlockHeader bad = MakeHeader(1, LeafOf(99), 110);
  EXPECT_FALSE(lc.SyncHeader(bad).ok());
  BlockHeader wrong_height = MakeHeader(5, h0.Hash(), 110);
  EXPECT_FALSE(lc.SyncHeader(wrong_height).ok());
  BlockHeader time_warp = MakeHeader(1, h0.Hash(), 50);
  EXPECT_FALSE(lc.SyncHeader(time_warp).ok());
}

TEST(LightClientTest, RejectsBadPow) {
  LightClient lc(PowConfig{16});
  BlockHeader h = MakeHeader(0, Hash32{}, 100);
  h.nonce = 0;
  if (crypto::LeadingZeroBits(h.Hash()) >= 16) h.nonce = 1;  // de-flake
  EXPECT_FALSE(lc.SyncHeader(h).ok());
  MineNonce(&h, PowConfig{16});
  EXPECT_TRUE(lc.SyncHeader(h).ok());
}

TEST(LightClientTest, HeightRangeForWindow) {
  LightClient lc;
  Hash32 prev{};
  for (uint64_t i = 0; i < 10; ++i) {
    BlockHeader h = MakeHeader(i, prev, 100 + i * 10);  // ts: 100..190
    ASSERT_TRUE(lc.SyncHeader(h).ok());
    prev = h.Hash();
  }
  auto r = lc.HeightRangeForWindow(120, 150);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 2u);
  EXPECT_EQ(r->second, 5u);
  // Partial overlap.
  r = lc.HeightRangeForWindow(0, 105);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0u);
  EXPECT_EQ(r->second, 0u);
  // Window between blocks.
  EXPECT_FALSE(lc.HeightRangeForWindow(101, 109).has_value());
  // Empty / inverted windows.
  EXPECT_FALSE(lc.HeightRangeForWindow(500, 600).has_value());
  EXPECT_FALSE(lc.HeightRangeForWindow(150, 120).has_value());
  // Full coverage.
  r = lc.HeightRangeForWindow(0, 1000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0u);
  EXPECT_EQ(r->second, 9u);
}

}  // namespace
}  // namespace vchain::chain

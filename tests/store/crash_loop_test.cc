// Crash loop: hundreds of append / fault / power-cut / reopen cycles per
// engine, driven through FaultInjectionEnv. The invariants, every cycle:
//
//   1. Reopen NEVER reports Corruption — injected write/sync failures and
//      power-cut writeback artifacts are crash damage, and crash damage
//      always recovers to a clean prefix (Corruption is reserved for bit
//      rot in fsync'd data, which this test never produces).
//   2. Recovery never loses durable blocks: the recovered height is at
//      least the last height a successful Sync() (or sync_every_append
//      append) covered.
//   3. The recovered prefix is bit-identical to the reference chain —
//      header hashes always, and periodically the full query path: a
//      TimeWindowQuery served from the recovered store returns the same
//      response bytes (results + VO) as the in-memory reference.
//
// Mining is deterministic per height (the per-block Rng is seeded by the
// height), so a block lost to a crash and re-mined after recovery is
// bit-identical to the reference chain's block at that height.
//
// Cycle counts: VCHAIN_CRASH_CYCLES overrides per engine (tools/crash_loop.sh
// raises it; --quick lowers it). Defaults sum to >200 across the four
// engines.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.h"
#include "core/vchain.h"
#include "store/env.h"

namespace vchain::store {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::NumericSchema;
using chain::Object;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using core::QueryProcessor;
using core::QueryResponse;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;
constexpr uint64_t kMineSeedBase = 0xC0FFEE;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_crash_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

template <typename Engine>
Engine MakeEngine() {
  AccParams params;
  params.universe_bits = 16;
  auto oracle = KeyOracle::Create(/*seed=*/2024, params);
  if constexpr (std::is_same_v<Engine, accum::Acc1Engine> ||
                std::is_same_v<Engine, accum::Acc2Engine>) {
    return Engine(oracle, accum::ProverMode::kTrustedFast);
  } else {
    return Engine(oracle);
  }
}

ChainConfig TestConfig() {
  ChainConfig config;
  config.mode = IndexMode::kBoth;
  config.schema = NumericSchema{2, 8};
  config.skiplist_size = 3;
  return config;
}

/// Mine the next block. Deterministic per height: re-mining height h after
/// a crash reproduces the reference chain's block h bit for bit.
template <typename Engine>
Status MineNext(ChainBuilder<Engine>* builder) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  uint64_t height = builder->NumBlocks();
  Rng rng(kMineSeedBase + height);
  uint64_t ts = kBaseTime + height * kTimeStep;
  std::vector<Object> objs;
  for (size_t i = 0; i < 3; ++i) {
    Object o;
    o.id = height * 1000 + i;
    o.timestamp = ts;
    o.numeric = {rng.Below(builder->config().schema.DomainSize()),
                 rng.Below(builder->config().schema.DomainSize())};
    o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
    objs.push_back(std::move(o));
  }
  auto st = builder->AppendBlock(std::move(objs), ts);
  return st.ok() ? Status::OK() : st.status();
}

template <typename Engine>
Bytes ResponseBytes(const Engine& engine, const QueryResponse<Engine>& resp) {
  ByteWriter w;
  SerializeResponse(engine, resp, &w);
  return w.bytes();
}

size_t CyclesFor(bool mock_engine) {
  if (const char* env = std::getenv("VCHAIN_CRASH_CYCLES")) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return mock_engine ? 80 : 25;
}

template <typename Engine>
class CrashLoopTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(CrashLoopTest, AllEngines);

TYPED_TEST(CrashLoopTest, RecoversToCleanDurablePrefixEveryCycle) {
  using Engine = TypeParam;
  constexpr bool kMock = std::is_same_v<Engine, accum::MockAcc1Engine> ||
                         std::is_same_v<Engine, accum::MockAcc2Engine>;
  const size_t kCycles = CyclesFor(kMock);

  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig();

  // The reference chain, mined in memory ahead of the store. Deterministic
  // mining makes it the ground truth for every height the store ever holds.
  ChainBuilder<Engine> ref(engine, config);

  FaultInjectionEnv fenv;
  Rng rng(/*seed=*/0xDECAF + (kMock ? 1 : 2));
  uint64_t durable_height = 0;  // proven-durable lower bound for recovery

  for (size_t cycle = 0; cycle < kCycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    BlockStore::Options sopts;
    sopts.env = &fenv;
    sopts.segment_target_bytes = 8192;  // force segment rolls
    sopts.sync_every_append = (cycle % 2 == 1);

    // Occasionally the crash hits during recovery itself: arm a fault for
    // the reopen, require a non-Corruption failure or success, then clear
    // and reopen for real.
    if (rng.Chance(0.15)) {
      FaultInjectionEnv::Fault f;
      f.op = rng.Chance(0.5) ? FaultInjectionEnv::Fault::Op::kWrite
                             : FaultInjectionEnv::Fault::Op::kSync;
      f.at = 1 + rng.Below(3);
      fenv.ScheduleFault(f);
      auto attempt = BlockStore::Open(dir, sopts);
      if (!attempt.ok()) {
        ASSERT_NE(attempt.status().code(), Status::Code::kCorruption)
            << attempt.status().ToString();
      }
      fenv.ClearFault();
    }

    auto db = BlockStore::Open(dir, sopts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();  // invariant 1
    uint64_t recovered = db.value()->NumBlocks();
    ASSERT_GE(recovered, durable_height);  // invariant 2
    ASSERT_LE(recovered, ref.NumBlocks() + 8);

    // Invariant 3a: every recovered header is the reference chain's header.
    while (ref.NumBlocks() < recovered) {
      ASSERT_TRUE(MineNext(&ref).ok());
    }
    for (uint64_t h = 0; h < recovered; ++h) {
      ASSERT_EQ(db.value()->HeaderAt(h).Hash(), ref.blocks()[h].header.Hash())
          << "height " << h;
    }

    // Invariant 3b (periodically — the query path is the expensive part):
    // a window query over the recovered prefix returns bit-identical
    // response bytes to the in-memory reference.
    if (recovered >= 3 && (cycle % 7 == 0 || cycle + 1 == kCycles)) {
      core::TimestampIndex ts_index = db.value()->RebuildTimestampIndex();
      StoreBlockSource<Engine> source(engine, db.value().get(), 4);
      QueryProcessor<Engine> disk_sp(engine, config, &source, &ts_index);
      store::VectorBlockSource<Engine> mem_source(&ref.blocks());
      QueryProcessor<Engine> mem_sp(engine, config, &mem_source,
                                    &ref.timestamp_index());
      Query q;
      q.time_start = kBaseTime;
      q.time_end = kBaseTime + (recovered - 1) * kTimeStep;
      q.ranges = {{0, 10, 120}};
      q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
      auto disk_resp = disk_sp.TimeWindowQuery(q);
      auto mem_resp = mem_sp.TimeWindowQuery(q);
      ASSERT_TRUE(disk_resp.ok()) << disk_resp.status().ToString();
      ASSERT_TRUE(mem_resp.ok()) << mem_resp.status().ToString();
      ASSERT_EQ(ResponseBytes(engine, disk_resp.value()),
                ResponseBytes(engine, mem_resp.value()));
    }

    // Resume mining under an armed fault, then pull the plug.
    auto resumed =
        ChainBuilder<Engine>::ResumeFromStore(engine, config, db.value().get());
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

    FaultInjectionEnv::Fault fault;
    switch (rng.Below(5)) {
      case 0: break;  // clean cycle: power cut only
      case 1:
        fault.op = FaultInjectionEnv::Fault::Op::kWrite;
        fault.err = 5;  // EIO
        break;
      case 2:
        fault.op = FaultInjectionEnv::Fault::Op::kWrite;
        fault.err = 28;  // ENOSPC
        break;
      case 3:
        fault.op = FaultInjectionEnv::Fault::Op::kWrite;
        fault.err = 5;
        fault.short_write = true;  // torn frame on disk
        break;
      case 4:
        fault.op = FaultInjectionEnv::Fault::Op::kSync;
        fault.err = 5;
        break;
    }
    fault.at = 1 + rng.Below(8);
    fenv.ScheduleFault(fault);

    size_t to_mine = 1 + rng.Below(3);
    bool write_failed = false;
    for (size_t i = 0; i < to_mine && !write_failed; ++i) {
      Status st = MineNext(&resumed.value());
      if (!st.ok()) {
        ASSERT_NE(st.code(), Status::Code::kCorruption) << st.ToString();
        write_failed = true;
      } else if (sopts.sync_every_append) {
        durable_height = db.value()->NumBlocks();
      }
    }
    // A write that failed mid-record puts the store into write-refusal
    // until reopened (a failed segment *roll* is retryable — nothing was
    // recorded — and leaves the store healthy).
    if (write_failed && db.value()->broken()) {
      Status again = MineNext(&resumed.value());
      ASSERT_FALSE(again.ok());
    }
    if (!write_failed && rng.Chance(0.6)) {
      Status synced = db.value()->Sync();
      if (synced.ok()) {
        durable_height = db.value()->NumBlocks();
      } else {
        ASSERT_NE(synced.code(), Status::Code::kCorruption)
            << synced.ToString();
      }
    }

    db.value().reset();  // "kill -9": drop the process state...
    fenv.ClearFault();
    ASSERT_TRUE(fenv.PowerCut(rng.Next()).ok());  // ...and the page cache
  }
}

}  // namespace
}  // namespace vchain::store

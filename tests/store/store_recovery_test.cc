// Crash-recovery: sever the store's segment file mid-record (a torn write),
// reopen, and assert the surviving prefix is byte-for-byte the chain that
// was committed — digests, query results and VO bytes identical to the
// in-memory original.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rand.h"
#include "core/vchain.h"
#include "store/env.h"

namespace vchain::store {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::NumericSchema;
using chain::Object;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using core::QueryProcessor;
using core::QueryResponse;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_recovery_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

using Engine = accum::MockAcc2Engine;

Engine MakeEngine() {
  AccParams params;
  params.universe_bits = 16;
  return Engine(KeyOracle::Create(/*seed=*/2024, params));
}

ChainConfig TestConfig() {
  ChainConfig config;
  config.mode = IndexMode::kBoth;
  config.schema = NumericSchema{2, 8};
  config.skiplist_size = 3;
  return config;
}

void Mine(ChainBuilder<Engine>* builder, size_t num_blocks,
          size_t objects_per_block, uint64_t seed) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  Rng rng(seed);
  uint64_t id = builder->NumBlocks() * 1000;
  for (size_t b = 0; b < num_blocks; ++b) {
    uint64_t ts = kBaseTime + builder->NumBlocks() * kTimeStep;
    std::vector<Object> objs;
    for (size_t i = 0; i < objects_per_block; ++i) {
      Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {rng.Below(builder->config().schema.DomainSize()),
                   rng.Below(builder->config().schema.DomainSize())};
      o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
      objs.push_back(std::move(o));
    }
    auto st = builder->AppendBlock(std::move(objs), ts);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }
}

/// The last segment file in `dir` (highest index).
std::string LastSegment(const std::string& dir) {
  std::string last;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string p = entry.path().string();
    if (p > last) last = p;
  }
  EXPECT_FALSE(last.empty());
  return last;
}

Bytes ResponseBytes(const Engine& engine, const QueryResponse<Engine>& resp) {
  ByteWriter w;
  SerializeResponse(engine, resp, &w);
  return w.bytes();
}

TEST(StoreRecoveryTest, TornTailRecoveryPreservesCommittedPrefixExactly) {
  constexpr size_t kBlocks = 20;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> miner(engine, config);
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, kBlocks - 1, 4, /*seed=*/13);
    ASSERT_TRUE(db.value()->Sync().ok());  // watermark: blocks 0..kBlocks-2
    Mine(&miner, 1, 4, /*seed=*/13);       // final block, never fsync'd
  }

  // Crash simulation: sever the final segment mid-way through its last
  // record (a torn write leaves a prefix of the record on disk). Only the
  // unsynced final block is severed — damage below the commit watermark
  // would be bit rot, which Open reports as Corruption instead.
  std::string seg = LastSegment(dir);
  uint64_t size = std::filesystem::file_size(seg);
  ASSERT_EQ(truncate(seg.c_str(), static_cast<off_t>(size - 37)), 0);

  BlockStore::RecoveryStats stats;
  auto db = BlockStore::Open(dir, BlockStore::Options{}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db.value()->NumBlocks(), kBlocks - 1);
  EXPECT_GT(stats.truncated_bytes, 0u);

  // Every surviving block decodes to exactly the bytes the miner produced:
  // header hash (committing to all digests) and the full re-encoded body.
  for (uint64_t h = 0; h + 1 < kBlocks; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(),
              miner.blocks()[h].header.Hash());
    auto block = ReadBlockFromStore(engine, *db.value(), h);
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    ByteWriter disk_w, mem_w;
    SerializeBlockBody(engine, block.value(), &disk_w);
    SerializeBlockBody(engine, miner.blocks()[h], &mem_w);
    EXPECT_EQ(disk_w.bytes(), mem_w.bytes()) << "height " << h;
  }

  // A window query over the surviving prefix returns bit-identical result
  // and VO bytes to the in-memory chain.
  core::TimestampIndex ts_index = db.value()->RebuildTimestampIndex();
  StoreBlockSource<Engine> source(engine, db.value().get(), 4);
  QueryProcessor<Engine> disk_sp(engine, config, &source, &ts_index);
  store::VectorBlockSource<Engine> mem_source(&miner.blocks());
  QueryProcessor<Engine> mem_sp(engine, config, &mem_source,
                                &miner.timestamp_index());
  Query q;
  q.time_start = kBaseTime;
  q.time_end = kBaseTime + (kBlocks - 2) * kTimeStep;
  q.ranges = {{0, 10, 120}};
  q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
  auto disk_resp = disk_sp.TimeWindowQuery(q);
  auto mem_resp = mem_sp.TimeWindowQuery(q);
  ASSERT_TRUE(disk_resp.ok());
  ASSERT_TRUE(mem_resp.ok());
  EXPECT_EQ(ResponseBytes(engine, disk_resp.value()),
            ResponseBytes(engine, mem_resp.value()));

  // And a cold light client accepts the disk-served response.
  chain::LightClient light;
  ASSERT_TRUE(db.value()->SyncLightClient(&light).ok());
  core::Verifier<Engine> verifier(engine, config, &light);
  EXPECT_TRUE(verifier.VerifyTimeWindow(q, disk_resp.value()).ok());

  // Mining resumes on top of the recovered prefix: the re-mined block slots
  // back into the chain at the severed height.
  auto resumed =
      ChainBuilder<Engine>::ResumeFromStore(engine, config, db.value().get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  Mine(&resumed.value(), 1, 4, /*seed=*/14);
  EXPECT_EQ(db.value()->NumBlocks(), kBlocks);
}

// Unsynced writeback is not ordered: after a power loss, a damaged record
// *past* the commit watermark with clean records after it must recover to
// the clean prefix instead of bricking the store (the same damage below the
// watermark is bit rot in fsync'd data — see FlippedBodyByteIsDetectedAtOpen).
TEST(StoreRecoveryTest, UnsyncedMidFileDamageRecoversToCleanPrefix) {
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> miner(engine, config);
  uint64_t synced_size = 0;
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 4, 4, /*seed=*/31);
    ASSERT_TRUE(db.value()->Sync().ok());  // watermark after block 3
    synced_size = std::filesystem::file_size(LastSegment(dir));
    Mine(&miner, 4, 4, /*seed=*/32);  // blocks 4..7, never synced
  }
  // "Power loss with reordered writeback": a byte inside record 4 (past the
  // watermark) is damaged while records 5..7 landed clean.
  std::string seg = LastSegment(dir);
  {
    std::FILE* f = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(synced_size + 200), SEEK_SET),
              0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  BlockStore::RecoveryStats stats;
  auto db = BlockStore::Open(dir, BlockStore::Options{}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()->NumBlocks(), 4u);  // the synced prefix, exactly
  EXPECT_GT(stats.truncated_bytes, 0u);
  for (uint64_t h = 0; h < 4; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(), miner.blocks()[h].header.Hash());
  }
  // Mining resumes on the recovered prefix.
  auto resumed =
      ChainBuilder<Engine>::ResumeFromStore(engine, config, db.value().get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  Mine(&resumed.value(), 1, 4, /*seed=*/33);
  EXPECT_EQ(db.value()->NumBlocks(), 5u);
}

// The disk fills mid-append (injected ENOSPC): the store must refuse
// further writes — the on-disk state is ambiguous — while reads over the
// already-appended prefix stay valid, and a reopen recovers exactly the
// durable prefix and resumes mining.
TEST(StoreRecoveryTest, EnospcDuringAppendFailsStoreAndReopenRecovers) {
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();
  FaultInjectionEnv fenv;
  BlockStore::Options opts;
  opts.env = &fenv;

  ChainBuilder<Engine> miner(engine, config);
  {
    auto db = BlockStore::Open(dir, opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 5, 4, /*seed=*/41);
    ASSERT_TRUE(db.value()->Sync().ok());  // watermark after block 4

    FaultInjectionEnv::Fault fault;
    fault.op = FaultInjectionEnv::Fault::Op::kWrite;
    fault.err = 28;  // ENOSPC
    fault.at = 1;
    fenv.ScheduleFault(fault);
    auto st = miner.AppendBlock(
        {{.id = 9000,
          .timestamp = kBaseTime + 5 * kTimeStep,
          .numeric = {1, 2},
          .keywords = {"Sedan", "Benz"}}},
        kBaseTime + 5 * kTimeStep);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.status().ToString().find("No space left"), std::string::npos)
        << st.status().ToString();
    fenv.ClearFault();

    // Write-refusal: even with space back, the store stays failed ...
    EXPECT_TRUE(db.value()->broken());
    auto again = miner.AppendBlock(
        {{.id = 9001,
          .timestamp = kBaseTime + 5 * kTimeStep,
          .numeric = {1, 2},
          .keywords = {"Sedan", "Benz"}}},
        kBaseTime + 5 * kTimeStep);
    EXPECT_FALSE(again.ok());
    // ... but reads over the durable prefix still serve.
    EXPECT_EQ(db.value()->NumBlocks(), 5u);
    EXPECT_TRUE(db.value()->ReadRecord(4).ok());
  }

  // Reopen: recovery truncates the ambiguous tail back to the durable
  // prefix and mining resumes.
  BlockStore::RecoveryStats stats;
  auto db = BlockStore::Open(dir, opts, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()->NumBlocks(), 5u);
  for (uint64_t h = 0; h < 5; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(), miner.blocks()[h].header.Hash());
  }
  auto resumed =
      ChainBuilder<Engine>::ResumeFromStore(engine, config, db.value().get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  Mine(&resumed.value(), 2, 4, /*seed=*/42);
  EXPECT_EQ(db.value()->NumBlocks(), 7u);
}

// fsync fails under sync_every_append (fsyncgate: the kernel may have
// dropped the page, so "retry the fsync" is not a recovery strategy). The
// append must report failure, the store must refuse further writes, and a
// reopen recovers a consistent prefix that includes everything previously
// acknowledged as durable.
TEST(StoreRecoveryTest, FsyncFailureDuringAppendFailsStoreAndReopenRecovers) {
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();
  FaultInjectionEnv fenv;
  BlockStore::Options opts;
  opts.env = &fenv;
  opts.sync_every_append = true;

  ChainBuilder<Engine> miner(engine, config);
  {
    auto db = BlockStore::Open(dir, opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 4, 4, /*seed=*/51);  // each append acked durable

    FaultInjectionEnv::Fault fault;
    fault.op = FaultInjectionEnv::Fault::Op::kSync;
    fault.at = 1;
    fenv.ScheduleFault(fault);
    auto st = miner.AppendBlock(
        {{.id = 9100,
          .timestamp = kBaseTime + 4 * kTimeStep,
          .numeric = {1, 2},
          .keywords = {"Sedan", "Benz"}}},
        kBaseTime + 4 * kTimeStep);
    ASSERT_FALSE(st.ok());
    fenv.ClearFault();
    EXPECT_TRUE(db.value()->broken());
    EXPECT_EQ(db.value()->NumBlocks(), 4u);  // the failed block was not acked
  }
  // Power loss after the failed fsync: unsynced pages may vanish.
  ASSERT_TRUE(fenv.PowerCut(/*seed=*/77).ok());

  auto db = BlockStore::Open(dir, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_GE(db.value()->NumBlocks(), 4u);  // acked durability held
  for (uint64_t h = 0; h < 4; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(), miner.blocks()[h].header.Hash());
  }
  auto resumed =
      ChainBuilder<Engine>::ResumeFromStore(engine, config, db.value().get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
}

TEST(StoreRecoveryTest, FlippedBodyByteIsDetectedAtOpen) {
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> miner(engine, config);
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 6, 3, /*seed=*/21);
    ASSERT_TRUE(db.value()->Sync().ok());
  }
  // Flip a byte deep in the middle of the segment (inside an early record).
  std::string seg = LastSegment(dir);
  std::FILE* f = std::fopen(seg.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 256, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  auto db = BlockStore::Open(dir);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), Status::Code::kCorruption);
}

// The watermark, not EOF adjacency, decides bit-rot vs torn-write: damage in
// the *last* record of a fully fsync'd store is bit rot and must refuse to
// open rather than silently truncate a durably committed block.
TEST(StoreRecoveryTest, BitRotInLastSyncedRecordIsCorruptionNotTruncation) {
  std::string dir = UniqueDir();
  Engine engine = MakeEngine();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> miner(engine, config);
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 6, 3, /*seed=*/22);
    ASSERT_TRUE(db.value()->Sync().ok());  // watermark at end of record 5
  }
  std::string seg = LastSegment(dir);
  uint64_t size = std::filesystem::file_size(seg);
  std::FILE* f = std::fopen(seg.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(size - 10), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  auto db = BlockStore::Open(dir);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace vchain::store

// SegmentLog framing, reopen, and torn-tail recovery semantics.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "store/segment_log.h"

namespace vchain::store {
namespace {

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_seglog_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

Bytes Payload(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(ByteSpan(zeros.data(), zeros.size())), 0x8A9136AAu);
  // "123456789" -> 0xE3069283 (the canonical CRC32C check value).
  Bytes digits = Payload("123456789");
  EXPECT_EQ(Crc32c(ByteSpan(digits.data(), digits.size())), 0xE3069283u);
}

TEST(SegmentLogTest, AppendReadReopen) {
  std::string path = UniqueDir() + "/seg.log";
  std::vector<uint64_t> offsets;
  {
    auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    for (int i = 0; i < 10; ++i) {
      auto off = log.value()->Append(Payload("record-" + std::to_string(i)));
      ASSERT_TRUE(off.ok());
      offsets.push_back(off.value());
    }
    ASSERT_TRUE(log.value()->Sync().ok());
  }
  SegmentLog::OpenStats stats;
  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true, &stats);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  ASSERT_EQ(log.value()->record_offsets(), offsets);
  for (int i = 0; i < 10; ++i) {
    auto payload = log.value()->ReadAt(offsets[i]);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(payload.value(), Payload("record-" + std::to_string(i)));
  }
  // Appends continue after the last recovered record.
  auto off = log.value()->Append(Payload("post-reopen"));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(log.value()->num_records(), 11u);
}

TEST(SegmentLogTest, TornTailIsTruncatedAndPrefixSurvives) {
  std::string path = UniqueDir() + "/seg.log";
  uint64_t full_size = 0;
  {
    auto log = SegmentLog::Open(path, true);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(log.value()->Append(Payload("rec" + std::to_string(i))).ok());
    }
    full_size = log.value()->size_bytes();
  }
  // Sever the file mid-way through the last record's payload.
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(full_size - 2)), 0);

  SegmentLog::OpenStats stats;
  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true, &stats);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(stats.records, 4u);
  EXPECT_GT(stats.truncated_bytes, 0u);
  auto last = log.value()->ReadAt(log.value()->record_offsets().back());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value(), Payload("rec3"));

  // Without recovery permission the same tear is an error, not a truncation.
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(log.value()->size_bytes() - 1)),
            0);
  log = SegmentLog::Open(path, /*truncate_torn_tail=*/false);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), Status::Code::kCorruption);
}

TEST(SegmentLogTest, TornFileHeaderRecoversAsEmptySegment) {
  std::string path = UniqueDir() + "/seg.log";
  {
    auto log = SegmentLog::Open(path, true);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(Payload("doomed")).ok());
  }
  // Crash during the freshly rolled segment's 8-byte header write: only a
  // prefix of the header landed.
  ASSERT_EQ(truncate(path.c_str(), 3), 0);

  // Non-final segments must not self-heal.
  auto strict = SegmentLog::Open(path, /*truncate_torn_tail=*/false);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);

  SegmentLog::OpenStats stats;
  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true, &stats);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 3u);
  // The recovered segment is a working empty log.
  ASSERT_TRUE(log.value()->Append(Payload("fresh")).ok());
  auto back = log.value()->ReadAt(log.value()->record_offsets()[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Payload("fresh"));
}

TEST(SegmentLogTest, FlippedLengthFieldIsDetectedByCrc) {
  std::string path = UniqueDir() + "/seg.log";
  uint64_t second_offset = 0;
  {
    auto log = SegmentLog::Open(path, true);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(Payload("aaaaaaaaaaaaaaaa")).ok());
    auto off = log.value()->Append(Payload("bbbbbbbbbbbbbbbb"));
    ASSERT_TRUE(off.ok());
    second_offset = off.value();
    ASSERT_TRUE(log.value()->Append(Payload("cccccccccccccccc")).ok());
  }
  // The stored checksum covers the length prefix (LevelDB-style): the CRC
  // of the payload alone must NOT match, or a bit-rotted length could
  // silently re-frame the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(second_offset), SEEK_SET), 0);
    uint8_t frame[8 + 16];
    ASSERT_EQ(std::fread(frame, 1, sizeof(frame), f), sizeof(frame));
    std::fclose(f);
    uint32_t stored_crc = static_cast<uint32_t>(frame[4]) |
                          static_cast<uint32_t>(frame[5]) << 8 |
                          static_cast<uint32_t>(frame[6]) << 16 |
                          static_cast<uint32_t>(frame[7]) << 24;
    EXPECT_EQ(Crc32c(ByteSpan(frame + 8, 16), Crc32c(ByteSpan(frame, 4))),
              stored_crc);
    EXPECT_NE(Crc32c(ByteSpan(frame + 8, 16)), stored_crc);
  }

  // Shrink the middle record's length field by one: the re-framed record
  // still lies inside the file and the CRC catches it as mid-file bit rot.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(second_offset), SEEK_SET), 0);
  std::fputc(15, f);  // was 16
  std::fclose(f);

  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), Status::Code::kCorruption);
}

TEST(SegmentLogTest, MidFileBitRotIsCorruptionNotRecovery) {
  std::string path = UniqueDir() + "/seg.log";
  uint64_t second_offset = 0;
  {
    auto log = SegmentLog::Open(path, true);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(Payload("first-record")).ok());
    auto off = log.value()->Append(Payload("second-record"));
    ASSERT_TRUE(off.ok());
    second_offset = off.value();
    ASSERT_TRUE(log.value()->Append(Payload("third-record")).ok());
  }
  // Flip one payload byte of the *middle* record.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(second_offset +
                                            SegmentLog::kRecordHeaderBytes),
                       SEEK_SET),
            0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), Status::Code::kCorruption);
}

TEST(SegmentLogTest, GarbageLengthFieldCannotForceHugeAllocation) {
  std::string path = UniqueDir() + "/seg.log";
  {
    auto log = SegmentLog::Open(path, true);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(Payload("ok")).ok());
  }
  // Append a fake record header claiming a multi-GB payload.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  uint8_t fake[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  ASSERT_EQ(std::fwrite(fake, 1, sizeof(fake), f), sizeof(fake));
  std::fclose(f);

  SegmentLog::OpenStats stats;
  auto log = SegmentLog::Open(path, /*truncate_torn_tail=*/true, &stats);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(stats.records, 1u);  // the garbage tail was dropped
  EXPECT_EQ(stats.truncated_bytes, sizeof(fake));
}

}  // namespace
}  // namespace vchain::store

// Durable block store + BlockSource: a chain persisted to disk serves
// bit-identical query results and VO bytes after a full process restart
// (fresh BlockStore::Open, rebuilt TimestampIndex, re-synced LightClient),
// mining resumes from the tip without recomputing digests, and a pruned
// miner keeps a bounded in-memory window while the on-disk chain grows.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rand.h"
#include "core/mht_baseline.h"
#include "core/vchain.h"
#include "sub/subscription.h"

namespace vchain::store {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::LightClient;
using chain::NumericSchema;
using chain::Object;
using core::Block;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using core::QueryProcessor;
using core::QueryResponse;

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_store_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

template <typename Engine>
Engine MakeEngine() {
  AccParams params;
  params.universe_bits = 16;
  auto oracle = KeyOracle::Create(/*seed=*/2024, params);
  if constexpr (std::is_same_v<Engine, accum::Acc1Engine> ||
                std::is_same_v<Engine, accum::Acc2Engine>) {
    return Engine(oracle, accum::ProverMode::kTrustedFast);
  } else {
    return Engine(oracle);
  }
}

ChainConfig TestConfig(IndexMode mode = IndexMode::kBoth) {
  ChainConfig config;
  config.mode = mode;
  config.schema = NumericSchema{2, 8};
  config.skiplist_size = 3;
  return config;
}

std::vector<Object> MakeObjects(Rng* rng, uint64_t base_id, size_t count,
                                const NumericSchema& schema) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  std::vector<Object> objects;
  for (size_t i = 0; i < count; ++i) {
    Object o;
    o.id = base_id + i;
    o.numeric = {rng->Below(schema.DomainSize()),
                 rng->Below(schema.DomainSize())};
    o.keywords = {kTypes[rng->Below(3)], kMakes[rng->Below(4)]};
    objects.push_back(std::move(o));
  }
  return objects;
}

template <typename Engine>
void Mine(ChainBuilder<Engine>* builder, size_t num_blocks,
          size_t objects_per_block, uint64_t seed, uint64_t first_height) {
  Rng rng(seed);
  uint64_t id = first_height * 1000;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto objs = MakeObjects(&rng, id, objects_per_block,
                            builder->config().schema);
    uint64_t ts = kBaseTime + (first_height + b) * kTimeStep;
    for (Object& o : objs) o.timestamp = ts;
    id += objs.size();
    auto st = builder->AppendBlock(std::move(objs), ts);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }
}

Query CarQuery(uint64_t ts, uint64_t te) {
  Query q;
  q.time_start = ts;
  q.time_end = te;
  q.ranges = {{0, 10, 120}, {1, 0, 200}};
  q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
  return q;
}

template <typename Engine>
Bytes ResponseBytes(const Engine& engine, const QueryResponse<Engine>& resp) {
  ByteWriter w;
  SerializeResponse(engine, resp, &w);
  return w.bytes();
}

template <typename Engine>
class BlockStoreTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(BlockStoreTest, AllEngines);

// The tentpole acceptance criterion: a TimeWindowQuery served from a
// *reopened* on-disk store is bit-identical (results + VO bytes) to the same
// query served from the in-memory chain.
TYPED_TEST(BlockStoreTest, ReopenedStoreServesIdenticalVoBytes) {
  using Engine = TypeParam;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> miner(engine, config);
  Mine(&miner, 12, 4, /*seed=*/7, 0);

  // Attach after mining: flushes the whole existing chain, then syncs.
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    ASSERT_TRUE(db.value()->Sync().ok());
    ASSERT_EQ(db.value()->NumBlocks(), 12u);
  }  // "process exit": store closed

  // Reference: the in-memory SP.
  LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  store::VectorBlockSource<Engine> mem_source(&miner.blocks());
  QueryProcessor<Engine> mem_sp(engine, config, &mem_source,
                                &miner.timestamp_index());
  Query q = CarQuery(kBaseTime + 2 * kTimeStep, kBaseTime + 10 * kTimeStep);
  auto mem_resp = mem_sp.TimeWindowQuery(q);
  ASSERT_TRUE(mem_resp.ok());

  // Cold start: reopen, rebuild indexes, sync a fresh light client from
  // disk, and serve through the LRU'd StoreBlockSource.
  BlockStore::RecoveryStats stats;
  auto db = BlockStore::Open(dir, BlockStore::Options{}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(stats.blocks, 12u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  core::TimestampIndex ts_index = db.value()->RebuildTimestampIndex();
  LightClient cold_light;
  ASSERT_TRUE(db.value()->SyncLightClient(&cold_light).ok());
  EXPECT_EQ(cold_light.Height(), 12u);

  StoreBlockSource<Engine> source(engine, db.value().get(),
                                  /*capacity=*/4);
  QueryProcessor<Engine> disk_sp(engine, config, &source, &ts_index);
  auto disk_resp = disk_sp.TimeWindowQuery(q);
  ASSERT_TRUE(disk_resp.ok());

  EXPECT_EQ(ResponseBytes(engine, disk_resp.value()),
            ResponseBytes(engine, mem_resp.value()));
  EXPECT_EQ(disk_resp.value().objects.size(), mem_resp.value().objects.size());

  // The cold light client verifies the disk-served response end to end.
  core::Verifier<Engine> verifier(engine, config, &cold_light);
  Status st = verifier.VerifyTimeWindow(q, disk_resp.value());
  EXPECT_TRUE(st.ok()) << st.ToString();

  // The walk touched more blocks than the cache holds: evictions happened,
  // yet the bytes above still matched.
  EXPECT_GT(source.cache_stats().misses, 0u);
  EXPECT_LE(source.cached_blocks(), 4u);
}

TYPED_TEST(BlockStoreTest, ResumeFromStoreContinuesMiningBitIdentically) {
  using Engine = TypeParam;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig();

  // Reference chain: 18 blocks mined in one uninterrupted process.
  ChainBuilder<Engine> reference(engine, config);
  Mine(&reference, 12, 4, /*seed=*/7, 0);
  Mine(&reference, 6, 4, /*seed=*/8, 12);

  // Interrupted chain: 12 blocks, write-through, "crash", resume, 6 more.
  {
    auto db = BlockStore::Open(dir);
    ASSERT_TRUE(db.ok());
    ChainBuilder<Engine> miner(engine, config);
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 12, 4, /*seed=*/7, 0);
    ASSERT_TRUE(db.value()->Sync().ok());
  }
  auto db = BlockStore::Open(dir);
  ASSERT_TRUE(db.ok());
  auto resumed = ChainBuilder<Engine>::ResumeFromStore(engine, config,
                                                       db.value().get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ChainBuilder<Engine>& miner = resumed.value();
  EXPECT_EQ(miner.NumBlocks(), 12u);
  Mine(&miner, 6, 4, /*seed=*/8, 12);
  ASSERT_EQ(db.value()->NumBlocks(), 18u);

  // Every header hash — which commits to every digest, index node and skip
  // entry — matches the uninterrupted reference chain.
  for (uint64_t h = 0; h < 18; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(),
              reference.blocks()[h].header.Hash())
        << "height " << h;
  }
  // And the resumed miner's light-client sync covers pruned-out heights.
  LightClient light;
  ASSERT_TRUE(miner.SyncLightClient(&light).ok());
  EXPECT_EQ(light.Height(), 18u);
}

TYPED_TEST(BlockStoreTest, PrunedMinerKeepsBoundedWindow) {
  using Engine = TypeParam;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig();

  ChainBuilder<Engine> reference(engine, config);
  Mine(&reference, 30, 3, /*seed=*/11, 0);

  auto db = BlockStore::Open(dir);
  ASSERT_TRUE(db.ok());
  ChainBuilder<Engine> miner(engine, config);
  ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
  // Max skip distance for skiplist_size=3 is 16; pruning below that must be
  // rejected, pruning at it must succeed.
  EXPECT_FALSE(miner.SetRetainWindow(8).ok());
  ASSERT_TRUE(miner.SetRetainWindow(16).ok());
  Mine(&miner, 30, 3, /*seed=*/11, 0);

  EXPECT_EQ(miner.NumBlocks(), 30u);
  EXPECT_LE(miner.blocks().size(), 16u);
  EXPECT_EQ(miner.base_height() + miner.blocks().size(), 30u);
  for (uint64_t h = 0; h < 30; ++h) {
    EXPECT_EQ(db.value()->HeaderAt(h).Hash(),
              reference.blocks()[h].header.Hash())
        << "height " << h;
  }

  // The full chain stays queryable through the store even though the miner
  // only retains a 16-block tail.
  core::TimestampIndex ts_index = db.value()->RebuildTimestampIndex();
  StoreBlockSource<Engine> source(engine, db.value().get(), 8);
  QueryProcessor<Engine> disk_sp(engine, config, &source, &ts_index);
  store::VectorBlockSource<Engine> mem_source(&reference.blocks());
  QueryProcessor<Engine> mem_sp(engine, config, &mem_source,
                                &reference.timestamp_index());
  Query q = CarQuery(kBaseTime, kBaseTime + 29 * kTimeStep);
  auto disk_resp = disk_sp.TimeWindowQuery(q);
  auto mem_resp = mem_sp.TimeWindowQuery(q);
  ASSERT_TRUE(disk_resp.ok());
  ASSERT_TRUE(mem_resp.ok());
  EXPECT_EQ(ResponseBytes(engine, disk_resp.value()),
            ResponseBytes(engine, mem_resp.value()));
}

TEST(BlockStoreSegmentsTest, RollsSegmentsAndReopensAcrossFiles) {
  using Engine = accum::MockAcc2Engine;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig();

  BlockStore::Options options;
  options.segment_target_bytes = 4096;  // force frequent rollover
  {
    auto db = BlockStore::Open(dir, options);
    ASSERT_TRUE(db.ok());
    ChainBuilder<Engine> miner(engine, config);
    ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
    Mine(&miner, 24, 4, /*seed=*/3, 0);
    EXPECT_GT(db.value()->NumSegments(), 1u);
    ASSERT_TRUE(db.value()->Sync().ok());
  }
  BlockStore::RecoveryStats stats;
  auto db = BlockStore::Open(dir, options, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(stats.blocks, 24u);
  EXPECT_GT(stats.segments, 1u);
  // Random access across segment boundaries decodes cleanly.
  for (uint64_t h : {0u, 7u, 13u, 23u}) {
    auto block = ReadBlockFromStore(engine, *db.value(), h);
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    EXPECT_EQ(block.value().header.height, h);
  }
}

TEST(BlockStoreSourceTest, LruCacheCountsHitsMissesEvictions) {
  using Engine = accum::MockAcc2Engine;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig(IndexMode::kIntra);

  auto db = BlockStore::Open(dir);
  ASSERT_TRUE(db.ok());
  ChainBuilder<Engine> miner(engine, config);
  ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
  Mine(&miner, 6, 2, /*seed=*/5, 0);

  StoreBlockSource<Engine> source(engine, db.value().get(), /*capacity=*/2);
  (void)source.BlockAt(0);  // miss
  (void)source.BlockAt(1);  // miss
  (void)source.BlockAt(0);  // hit
  (void)source.BlockAt(2);  // miss, evicts 1 (LRU)
  (void)source.BlockAt(1);  // miss again
  EXPECT_EQ(source.cache_stats().hits, 1u);
  EXPECT_EQ(source.cache_stats().misses, 4u);
  EXPECT_EQ(source.cache_stats().evictions, 2u);
  EXPECT_EQ(source.cached_blocks(), 2u);
  // Timestamp probes never fault blocks in.
  uint64_t before = source.cache_stats().misses;
  EXPECT_EQ(source.TimestampAt(5), kBaseTime + 5 * kTimeStep);
  EXPECT_EQ(source.cache_stats().misses, before);
}

// The subscription drain and the MHT baseline both run off the same
// disk-backed source the query processor uses.
TEST(BlockStoreSourceTest, SubscriptionDrainAndMhtBaselineFromStore) {
  using Engine = accum::MockAcc2Engine;
  std::string dir = UniqueDir();
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig(IndexMode::kIntra);

  auto db = BlockStore::Open(dir);
  ASSERT_TRUE(db.ok());
  ChainBuilder<Engine> miner(engine, config);
  ASSERT_TRUE(miner.AttachStore(db.value().get()).ok());
  Mine(&miner, 8, 3, /*seed=*/9, 0);

  StoreBlockSource<Engine> source(engine, db.value().get(), /*capacity=*/2);

  sub::SubscriptionManager<Engine> subs(engine, config, {});
  Query q;
  q.keyword_cnf = {{"Sedan"}};
  ASSERT_TRUE(subs.TrySubscribe(q).ok());
  uint64_t next_height = 0;
  auto notifs = subs.ProcessNewBlocks(source, &next_height);
  EXPECT_EQ(next_height, 8u);
  EXPECT_EQ(notifs.size(), 8u);  // one per block for the single query

  // Reference: drain the same blocks from the in-memory chain.
  sub::SubscriptionManager<Engine> mem_subs(engine, config, {});
  ASSERT_TRUE(mem_subs.TrySubscribe(q).ok());
  VectorBlockSource<Engine> mem_source(&miner.blocks());
  uint64_t mem_next = 0;
  auto mem_notifs = mem_subs.ProcessNewBlocks(mem_source, &mem_next);
  ASSERT_EQ(mem_notifs.size(), notifs.size());
  for (size_t i = 0; i < notifs.size(); ++i) {
    EXPECT_EQ(notifs[i].height, mem_notifs[i].height);
    EXPECT_EQ(notifs[i].objects.size(), mem_notifs[i].objects.size());
    EXPECT_EQ(notifs[i].nodes.size(), mem_notifs[i].nodes.size());
  }

  core::MhtAdsStats disk_stats = core::BuildMhtBaseline(source, 2);
  core::MhtAdsStats mem_stats = core::BuildMhtBaseline(mem_source, 2);
  EXPECT_EQ(disk_stats.num_trees, mem_stats.num_trees);
  EXPECT_EQ(disk_stats.ads_bytes, mem_stats.ads_bytes);
  EXPECT_EQ(disk_stats.roots, mem_stats.roots);
}

TEST(BlockStoreOpenTest, RejectsForeignChainAndStaleAttach) {
  using Engine = accum::MockAcc2Engine;
  Engine engine = MakeEngine<Engine>();
  ChainConfig config = TestConfig(IndexMode::kIntra);

  std::string dir = UniqueDir();
  auto db = BlockStore::Open(dir);
  ASSERT_TRUE(db.ok());
  ChainBuilder<Engine> miner_a(engine, config);
  ASSERT_TRUE(miner_a.AttachStore(db.value().get()).ok());
  Mine(&miner_a, 4, 2, /*seed=*/1, 0);

  // A different chain cannot attach to this store.
  ChainBuilder<Engine> miner_b(engine, config);
  Mine(&miner_b, 4, 2, /*seed=*/2, 0);
  Status st = miner_b.AttachStore(db.value().get());
  EXPECT_FALSE(st.ok());

  // A store ahead of the builder is rejected (use ResumeFromStore).
  ChainBuilder<Engine> empty(engine, config);
  EXPECT_FALSE(empty.AttachStore(db.value().get()).ok());
}

}  // namespace
}  // namespace vchain::store

// Subscription checkpoint durability: slot-file framing and fallback,
// torn-write tolerance through FaultInjectionEnv, lazy-run state surviving a
// snapshot/restore cycle, and service-level kill/reopen resume with the
// documented at-least-once redelivery window.

#include "sub/match/checkpoint.h"

#include <gtest/gtest.h>

#include "api/service.h"
#include "common/rand.h"
#include "core/vchain.h"
#include "store/env.h"
#include "sub/sub_verifier.h"
#include "sub/subscription.h"

namespace vchain::sub {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using api::EngineKind;
using api::Service;
using api::ServiceOptions;
using core::Query;

std::string UniqueDir() {
  std::string tmpl = ::testing::TempDir() + "vchain_subckpt_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(got);
}

Bytes Payload(std::string_view s) { return Bytes(s.begin(), s.end()); }

// --- slot files -------------------------------------------------------------

TEST(CheckpointSlotsTest, RoundtripAndSlotAlternation) {
  std::string dir = UniqueDir();
  store::Env* env = store::Env::Default();
  CheckpointSlots slots(env, dir);
  ASSERT_TRUE(slots.Open().ok());
  EXPECT_FALSE(slots.HasCheckpoint());

  ASSERT_TRUE(slots.WriteNext(Payload("one")).ok());
  ASSERT_TRUE(slots.WriteNext(Payload("two")).ok());
  ASSERT_TRUE(slots.WriteNext(Payload("three")).ok());

  // Consecutive writes alternate slots, so both files exist on disk.
  EXPECT_TRUE(env->FileExists(dir + "/" + CheckpointSlots::SlotFileName(0))
                  .value());
  EXPECT_TRUE(env->FileExists(dir + "/" + CheckpointSlots::SlotFileName(1))
                  .value());

  // A fresh instance (the restarted process) recovers the newest frame.
  CheckpointSlots reopened(env, dir);
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_TRUE(reopened.HasCheckpoint());
  EXPECT_EQ(reopened.latest_seq(), 3u);
  EXPECT_EQ(reopened.LatestPayload(), Payload("three"));
  // And continues the sequence from there.
  ASSERT_TRUE(reopened.WriteNext(Payload("four")).ok());
  EXPECT_EQ(reopened.latest_seq(), 4u);
}

TEST(CheckpointSlotsTest, CorruptLatestSlotFallsBackToPrevious) {
  std::string dir = UniqueDir();
  store::Env* env = store::Env::Default();
  CheckpointSlots slots(env, dir);
  ASSERT_TRUE(slots.Open().ok());
  ASSERT_TRUE(slots.WriteNext(Payload("good")).ok());
  ASSERT_TRUE(slots.WriteNext(Payload("newest")).ok());

  // Truncate the newest frame (seq 2 lives in slot 2 % 2 = 0) mid-payload.
  {
    auto f = env->OpenFile(dir + "/" + CheckpointSlots::SlotFileName(0));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Truncate(10).ok());
  }
  CheckpointSlots after(env, dir);
  ASSERT_TRUE(after.Open().ok());
  ASSERT_TRUE(after.HasCheckpoint());
  EXPECT_EQ(after.latest_seq(), 1u);
  EXPECT_EQ(after.LatestPayload(), Payload("good"));

  // Flip one payload byte in the remaining slot: CRC rejects it, and with
  // both slots bad there is no checkpoint (clean open, not an error).
  {
    auto f = env->OpenFile(dir + "/" + CheckpointSlots::SlotFileName(1));
    ASSERT_TRUE(f.ok());
    auto size = f.value()->Size();
    ASSERT_TRUE(size.ok());
    uint8_t last = 0;
    ASSERT_TRUE(f.value()->Read(size.value() - 1, &last, 1).ok());
    last ^= 0xff;
    ASSERT_TRUE(f.value()->Write(size.value() - 1, &last, 1).ok());
  }
  CheckpointSlots none(env, dir);
  ASSERT_TRUE(none.Open().ok());
  EXPECT_FALSE(none.HasCheckpoint());
}

TEST(CheckpointSlotsTest, TornWriteLeavesPreviousCheckpointIntact) {
  std::string dir = UniqueDir();
  FaultInjectionEnv fenv;
  CheckpointSlots slots(&fenv, dir);
  ASSERT_TRUE(slots.Open().ok());
  ASSERT_TRUE(slots.WriteNext(Payload("durable")).ok());

  // The very next write — the seq-2 frame — is torn short and fails.
  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Fault::Op::kWrite;
  fault.at = 1;
  fault.short_write = true;
  fenv.ScheduleFault(fault);
  EXPECT_FALSE(slots.WriteNext(Payload("torn-and-lost")).ok());
  fenv.ClearFault();

  // Recovery ignores the torn slot and resumes from the survivor.
  CheckpointSlots after(&fenv, dir);
  ASSERT_TRUE(after.Open().ok());
  ASSERT_TRUE(after.HasCheckpoint());
  EXPECT_EQ(after.latest_seq(), 1u);
  EXPECT_EQ(after.LatestPayload(), Payload("durable"));
}

// --- lazy-run state round-trips through the payload serde -------------------

TEST(CheckpointSnapshotTest, LazyRunSurvivesSerializedRestore) {
  auto oracle = KeyOracle::Create(404, AccParams{14});
  accum::MockAcc2Engine engine(oracle);
  core::ChainConfig config;
  config.mode = core::IndexMode::kBoth;
  config.schema = NumericSchema{2, 6};
  config.skiplist_size = 2;
  core::ChainBuilder<accum::MockAcc2Engine> builder(engine, config);
  chain::LightClient light;

  typename SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  opts.lazy = true;
  SubscriptionManager<accum::MockAcc2Engine> mgr(engine, config, opts);
  Query q;
  q.ranges = {{0, 0, 15}, {1, 0, 15}};
  q.keyword_cnf = {{"hit"}};
  uint32_t qid = mgr.TrySubscribe(q).TakeValue();

  // Mine silent blocks so a lazy run with pending units is in flight.
  Rng rng(11);
  uint64_t next_id = 0;
  auto mine = [&](size_t n, bool matches) {
    for (size_t b = 0; b < n; ++b) {
      std::vector<chain::Object> objs;
      for (int i = 0; i < 3; ++i) {
        chain::Object o;
        o.id = next_id++;
        o.timestamp = 5000 + builder.blocks().size() * 10;
        if (matches && i == 0) {
          o.numeric = {rng.Below(16), rng.Below(16)};
          o.keywords = {"hit"};
        } else {
          o.numeric = {16 + rng.Below(48), 16 + rng.Below(48)};
          o.keywords = {"red"};
        }
        objs.push_back(std::move(o));
      }
      ASSERT_TRUE(
          builder.AppendBlock(std::move(objs), 5000 + builder.blocks().size() * 10)
              .ok());
    }
    ASSERT_TRUE(builder.SyncLightClient(&light).ok());
  };
  mine(6, false);
  uint64_t owed = 0;
  SubVerifier<accum::MockAcc2Engine> verifier(engine, config, &light);
  for (const auto& block : builder.blocks()) {
    for (const auto& batch : mgr.ProcessBlockLazy(block)) {
      uint64_t next = 0;
      ASSERT_TRUE(verifier.VerifyLazyBatch(q, batch, owed, &next).ok());
      owed = next;
    }
  }

  // Checkpoint: snapshot -> payload bytes -> fresh manager ("new process").
  ByteWriter w;
  SerializeSubCheckpoint(engine, builder.blocks().size(), mgr.Snapshot(), &w);
  uint64_t next_height = 0;
  SubscriptionSnapshot<accum::MockAcc2Engine> snap;
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  ASSERT_TRUE(DeserializeSubCheckpoint(engine, &r, &next_height, &snap).ok());
  EXPECT_EQ(next_height, builder.blocks().size());
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_EQ(snap.queries[0].id, qid);
  ASSERT_EQ(snap.lazy.size(), 1u);  // the silent run is mid-flight

  SubscriptionManager<accum::MockAcc2Engine> restored(engine, config, opts);
  ASSERT_TRUE(restored.Restore(snap).ok());
  EXPECT_EQ(restored.NumActive(), 1u);

  // The restored run continues verifiably: new blocks extend the pending
  // evidence and the final flush accounts for every height since genesis.
  mine(3, false);
  mine(1, true);
  for (size_t h = next_height; h < builder.blocks().size(); ++h) {
    for (const auto& batch : restored.ProcessBlockLazy(builder.blocks()[h])) {
      uint64_t next = 0;
      Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
      ASSERT_TRUE(st.ok()) << st.ToString();
      owed = next;
    }
  }
  for (const auto& batch : restored.FlushAll()) {
    uint64_t next = 0;
    Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
    ASSERT_TRUE(st.ok()) << st.ToString();
    owed = next;
  }
  EXPECT_EQ(owed, builder.blocks().size());

  // A truncated payload is Corruption, never a partial restore.
  ByteReader torn(ByteSpan(w.bytes().data(), w.bytes().size() / 2));
  EXPECT_FALSE(
      DeserializeSubCheckpoint(engine, &torn, &next_height, &snap).ok());
}

// --- service-level kill / reopen --------------------------------------------

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kStep = 10;

ServiceOptions CkptOptions(std::shared_ptr<KeyOracle> oracle, std::string dir) {
  ServiceOptions opts;
  opts.engine = EngineKind::kMockAcc2;
  opts.config.schema = NumericSchema{2, 6};
  opts.config.skiplist_size = 2;
  opts.oracle = std::move(oracle);
  opts.store_dir = std::move(dir);
  return opts;
}

Query MatchAllishQuery() {
  Query q;
  q.keyword_cnf = {{"hit"}};
  return q;
}

void AppendBlocks(Service* svc, size_t n, uint64_t* height) {
  for (size_t b = 0; b < n; ++b) {
    std::vector<chain::Object> objs;
    chain::Object o;
    o.id = *height * 10;
    o.timestamp = kBaseTime + *height * kStep;
    o.numeric = {1, 2};
    o.keywords = {"hit"};
    objs.push_back(std::move(o));
    ASSERT_TRUE(svc->Append(std::move(objs), kBaseTime + *height * kStep).ok());
    ++*height;
  }
}

TEST(ServiceCheckpointTest, KilledAndRestartedServiceResumesSubscriptions) {
  auto oracle = KeyOracle::Create(2026, AccParams{14});
  std::string dir = UniqueDir();
  uint64_t height = 0;
  uint32_t qid = 0;
  {
    auto svc = Service::Open(CkptOptions(oracle, dir));
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    auto id = svc.value()->Subscribe(MatchAllishQuery());
    ASSERT_TRUE(id.ok());
    qid = id.value();
    AppendBlocks(svc.value().get(), 3, &height);
    EXPECT_EQ(svc.value()->TakeSubscriptionEvents().size(), 3u);
    ASSERT_TRUE(svc.value()->Sync().ok());
    EXPECT_GT(svc.value()->Stats().sub_checkpoint_seq, 0u);
  }  // process killed

  auto svc = Service::Open(CkptOptions(oracle, dir));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  auto stats = svc.value()->Stats();
  EXPECT_EQ(stats.num_blocks, 3u);
  EXPECT_EQ(stats.subscriptions_active, 1u);  // resumed, not re-subscribed
  EXPECT_GT(stats.sub_checkpoint_seq, 0u);
  // The checkpoint covered every drained block: nothing is re-delivered.
  EXPECT_TRUE(svc.value()->TakeSubscriptionEvents().empty());

  // The resumed subscription keeps notifying under its original id, and the
  // notifications verify against headers like any others.
  AppendBlocks(svc.value().get(), 1, &height);
  auto events = svc.value()->TakeSubscriptionEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_id, qid);
  EXPECT_EQ(events[0].height, 3u);
  chain::LightClient light;
  ASSERT_TRUE(svc.value()->SyncLightClient(&light).ok());
  EXPECT_TRUE(svc.value()
                  ->VerifyNotification(MatchAllishQuery(), events[0], light)
                  .ok());
  // Unsubscribing the restored id works (ids survived the restart).
  EXPECT_TRUE(svc.value()->Unsubscribe(qid).ok());
}

TEST(ServiceCheckpointTest, StaleCheckpointRedeliversAtLeastOnce) {
  auto oracle = KeyOracle::Create(2027, AccParams{14});
  std::string dir = UniqueDir();
  uint64_t height = 0;
  {
    ServiceOptions opts = CkptOptions(oracle, dir);
    opts.sub_checkpoint_interval_blocks = 0;  // checkpoint only at (un)sub/Sync
    auto svc = Service::Open(std::move(opts));
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    ASSERT_TRUE(svc.value()->Subscribe(MatchAllishQuery()).ok());  // ckpt @ 0
    AppendBlocks(svc.value().get(), 4, &height);
    EXPECT_EQ(svc.value()->TakeSubscriptionEvents().size(), 4u);
    ASSERT_TRUE(svc.value()->Sync().ok());  // ckpt @ 4 (the newest slot)
  }

  // Tear the newest checkpoint on "disk": recovery must fall back to the
  // subscribe-time checkpoint, whose drain cursor is still at height 0.
  {
    store::Env* env = store::Env::Default();
    CheckpointSlots probe(env, dir);
    ASSERT_TRUE(probe.Open().ok());
    ASSERT_TRUE(probe.HasCheckpoint());
    int newest_slot = static_cast<int>(probe.latest_seq() % 2);
    auto f = env->OpenFile(dir + "/" +
                           CheckpointSlots::SlotFileName(newest_slot));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Truncate(7).ok());
  }

  ServiceOptions opts = CkptOptions(oracle, dir);
  opts.sub_checkpoint_interval_blocks = 0;
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  EXPECT_EQ(svc.value()->Stats().subscriptions_active, 1u);
  // At-least-once: all four already-published blocks are re-delivered (the
  // subscriber dedups by (query_id, height)); none is skipped.
  auto events = svc.value()->TakeSubscriptionEvents();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].height, i);
    EXPECT_FALSE(events[i].notification_bytes.empty());
  }
  // Delivery continues exactly where the chain tip is.
  AppendBlocks(svc.value().get(), 1, &height);
  events = svc.value()->TakeSubscriptionEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].height, 4u);
}

TEST(ServiceCheckpointTest, TornSubscribeCheckpointFallsBackToLastDurable) {
  auto oracle = KeyOracle::Create(2028, AccParams{14});
  std::string dir = UniqueDir();
  FaultInjectionEnv fenv;
  uint64_t height = 0;
  {
    ServiceOptions opts = CkptOptions(oracle, dir);
    opts.store_options.env = &fenv;
    opts.sub_checkpoint_interval_blocks = 0;
    auto svc = Service::Open(std::move(opts));
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    ASSERT_TRUE(svc.value()->Subscribe(MatchAllishQuery()).ok());
    AppendBlocks(svc.value().get(), 2, &height);
    ASSERT_TRUE(svc.value()->Sync().ok());  // q1 durable at height 2

    // The second Subscribe's checkpoint write (the very next write through
    // the env) is torn. Subscribe itself stays best-effort-ok — the standing
    // query lives in memory — but the slot on disk is garbage.
    FaultInjectionEnv::Fault fault;
    fault.op = FaultInjectionEnv::Fault::Op::kWrite;
    fault.at = 1;
    fault.short_write = true;
    fenv.ScheduleFault(fault);
    auto q2 = svc.value()->Subscribe(MatchAllishQuery());
    ASSERT_TRUE(q2.ok());
    fenv.ClearFault();
    EXPECT_EQ(svc.value()->Stats().subscriptions_active, 2u);
  }  // crash before the second subscription ever became durable

  ServiceOptions opts = CkptOptions(oracle, dir);
  opts.store_options.env = &fenv;
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  // Recovery lands on the last durable checkpoint: one subscription, cursor
  // already at the tip (no replay window).
  auto stats = svc.value()->Stats();
  EXPECT_EQ(stats.subscriptions_active, 1u);
  EXPECT_TRUE(svc.value()->TakeSubscriptionEvents().empty());
  AppendBlocks(svc.value().get(), 1, &height);
  EXPECT_EQ(svc.value()->TakeSubscriptionEvents().size(), 1u);
}

TEST(ServiceCheckpointTest, PeriodicIntervalBoundsReplayWindow) {
  auto oracle = KeyOracle::Create(2029, AccParams{14});
  std::string dir = UniqueDir();
  ServiceOptions opts = CkptOptions(oracle, dir);
  opts.sub_checkpoint_interval_blocks = 2;
  auto svc = Service::Open(std::move(opts));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  ASSERT_TRUE(svc.value()->Subscribe(MatchAllishQuery()).ok());  // seq 1
  uint64_t seq_after_subscribe = svc.value()->Stats().sub_checkpoint_seq;
  EXPECT_GE(seq_after_subscribe, 1u);
  uint64_t height = 0;
  AppendBlocks(svc.value().get(), 5, &height);
  // Two periodic checkpoints fired (after 2 and 4 drained blocks) without
  // any Sync or subscribe in between.
  EXPECT_GE(svc.value()->Stats().sub_checkpoint_seq, seq_after_subscribe + 2);
}

}  // namespace
}  // namespace vchain::sub

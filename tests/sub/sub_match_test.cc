// The indexed subscription matcher (sub/match/): clause-index units,
// randomized linear-vs-indexed equivalence (byte-identical notifications
// across all four engines, all index modes, lazy included), subscribe/
// unsubscribe churn, and service-level subscribe-during-append stress.

#include "sub/match/clause_index.h"

#include <gtest/gtest.h>

#include <thread>

#include "api/service.h"
#include "common/rand.h"
#include "core/vchain.h"
#include "sub/sub_serde.h"
#include "sub/subscription.h"

namespace vchain::sub {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using core::Query;

constexpr uint64_t kBaseTime = 5000;
constexpr uint64_t kStep = 10;

// --- ClauseIndex units ------------------------------------------------------

TEST(ClauseIndexTest, InternDedupsByContentAndRefcounts) {
  ClauseIndex idx;
  accum::Multiset a{1, 2, 3};
  accum::Multiset b{4, 5};
  uint32_t c1 = idx.Intern(a, {11, 12, 13}, false);
  uint32_t c2 = idx.Intern(a, {11, 12, 13}, false);  // same content
  uint32_t c3 = idx.Intern(b, {14, 15}, true);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_EQ(idx.NumClauses(), 2u);
  EXPECT_EQ(idx.NumRangeClauses(), 1u);
  EXPECT_EQ(idx.SetOf(c1), a);
  // Two references on c1: the first release keeps it alive.
  idx.Release(c1);
  EXPECT_EQ(idx.NumClauses(), 2u);
  idx.Release(c1);
  EXPECT_EQ(idx.NumClauses(), 1u);
}

TEST(ClauseIndexTest, EpochHitsResetPerBlock) {
  ClauseIndex idx;
  uint32_t c1 = idx.Intern(accum::Multiset{1}, {10}, false);
  uint32_t c2 = idx.Intern(accum::Multiset{2}, {20}, false);
  idx.BeginBlock();
  idx.MarkElement(10);
  EXPECT_TRUE(idx.IsHit(c1));
  EXPECT_FALSE(idx.IsHit(c2));
  idx.BeginBlock();  // O(1) invalidation
  EXPECT_FALSE(idx.IsHit(c1));
  idx.MarkElement(20);
  EXPECT_FALSE(idx.IsHit(c1));
  EXPECT_TRUE(idx.IsHit(c2));
  idx.MarkElement(99);  // unknown element: no-op
}

TEST(ClauseIndexTest, ReleaseScrubsPostingsAndRecyclesIds) {
  ClauseIndex idx;
  uint32_t c1 = idx.Intern(accum::Multiset{1, 2}, {10, 20}, false);
  EXPECT_EQ(idx.NumPostings(), 2u);
  idx.Release(c1);
  EXPECT_EQ(idx.NumClauses(), 0u);
  EXPECT_EQ(idx.NumPostings(), 0u);
  // Dead clause no longer reachable through postings.
  idx.BeginBlock();
  idx.MarkElement(10);
  EXPECT_FALSE(idx.IsHit(c1));
  // The id is recycled for the next distinct clause.
  uint32_t c2 = idx.Intern(accum::Multiset{7}, {70}, true);
  EXPECT_EQ(c2, c1);
  EXPECT_EQ(idx.NumClauses(), 1u);
}

// --- equivalence harness ----------------------------------------------------

template <typename Engine>
Engine MakeEngine(uint64_t seed = 404) {
  auto oracle = KeyOracle::Create(seed, AccParams{14});
  return Engine(oracle);
}

template <typename Engine>
struct MatchEnv {
  explicit MatchEnv(core::IndexMode mode = core::IndexMode::kBoth)
      : engine(MakeEngine<Engine>()) {
    config.mode = mode;
    config.schema = NumericSchema{2, 6};
    config.skiplist_size = 2;
    builder = std::make_unique<core::ChainBuilder<Engine>>(engine, config);
  }

  void Mine(size_t n, bool allow_matches, uint64_t seed) {
    Rng rng(seed);
    static const char* kWords[] = {"red", "green", "blue", "hit"};
    for (size_t b = 0; b < n; ++b) {
      std::vector<chain::Object> objs;
      for (int i = 0; i < 3; ++i) {
        chain::Object o;
        o.id = next_id++;
        o.timestamp = kBaseTime + builder->blocks().size() * kStep;
        if (allow_matches && i == 0) {
          o.numeric = {rng.Below(16), rng.Below(16)};
          o.keywords = {"hit", kWords[rng.Below(3)]};
        } else {
          o.numeric = {16 + rng.Below(48), 16 + rng.Below(48)};
          o.keywords = {kWords[rng.Below(3)], kWords[rng.Below(3)]};
        }
        objs.push_back(std::move(o));
      }
      uint64_t ts = kBaseTime + builder->blocks().size() * kStep;
      auto st = builder->AppendBlock(std::move(objs), ts);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
  }

  Engine engine;
  core::ChainConfig config;
  std::unique_ptr<core::ChainBuilder<Engine>> builder;
  uint64_t next_id = 0;
};

/// Random standing query mixing boundary/point/overlapping ranges with
/// keyword CNFs (never-matching keywords included so some queries go
/// permanently silent).
Query RandomQuery(Rng* rng) {
  Query q;
  static const char* kWords[] = {"red", "green", "blue", "hit", "nosuchword"};
  for (uint32_t d = 0; d < 2; ++d) {
    if (rng->Below(3) == 0) continue;  // dimension unconstrained
    uint64_t a = rng->Below(64), b = rng->Below(64);
    if (a > b) std::swap(a, b);
    switch (rng->Below(6)) {
      case 0:
        a = 0;  // left domain boundary
        break;
      case 1:
        b = 63;  // right domain boundary
        break;
      case 2:
        b = a;  // point range
        break;
      case 3:
        a = 0, b = 63;  // whole domain
        break;
      default:
        break;
    }
    q.ranges.push_back({d, a, b});
  }
  uint32_t n_clauses = rng->Below(3);
  for (uint32_t c = 0; c < n_clauses; ++c) {
    std::vector<std::string> clause;
    uint32_t n_kw = 1 + rng->Below(2);
    for (uint32_t k = 0; k < n_kw; ++k) clause.push_back(kWords[rng->Below(5)]);
    q.keyword_cnf.push_back(std::move(clause));
  }
  if (q.ranges.empty() && q.keyword_cnf.empty()) q.keyword_cnf = {{"hit"}};
  return q;
}

template <typename Engine>
Bytes NotifBytes(const Engine& e, const SubNotification<Engine>& n) {
  ByteWriter w;
  SerializeSubNotification(e, n, &w);
  return w.TakeBytes();
}

template <typename Engine>
Bytes BatchBytes(const Engine& e, const LazyBatch<Engine>& b) {
  ByteWriter w;
  SerializeLazyBatch(e, b, &w);
  return w.TakeBytes();
}

template <typename Engine>
void ExpectBlockEquivalent(MatchEnv<Engine>& env,
                           SubscriptionManager<Engine>& linear,
                           SubscriptionManager<Engine>& indexed,
                           const core::Block<Engine>& block) {
  auto a = linear.ProcessBlock(block);
  auto b = indexed.ProcessBlock(block);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(NotifBytes(env.engine, a[i]), NotifBytes(env.engine, b[i]))
        << "query " << a[i].query_id << " height " << block.header.height;
  }
}

template <typename Engine>
void RunEquivalence(uint64_t seed, size_t n_subs, size_t n_blocks,
                    core::IndexMode mode = core::IndexMode::kBoth,
                    bool prefer_cells = false, bool use_ip_tree = true) {
  MatchEnv<Engine> env(mode);
  typename SubscriptionManager<Engine>::Options lin, idx;
  lin.matcher = MatcherMode::kLinear;
  idx.matcher = MatcherMode::kIndexed;
  lin.prefer_cell_exclusions = idx.prefer_cell_exclusions = prefer_cells;
  lin.use_ip_tree = idx.use_ip_tree = use_ip_tree;
  SubscriptionManager<Engine> linear(env.engine, env.config, lin);
  SubscriptionManager<Engine> indexed(env.engine, env.config, idx);

  Rng rng(seed);
  for (size_t i = 0; i < n_subs; ++i) {
    Query q = RandomQuery(&rng);
    auto ida = linear.TrySubscribe(q);
    auto idb = indexed.TrySubscribe(q);
    ASSERT_TRUE(ida.ok());
    ASSERT_TRUE(idb.ok());
    ASSERT_EQ(ida.value(), idb.value());
    if (rng.Below(4) == 0) {  // explicit duplicate: exercises grouping
      ASSERT_EQ(linear.TrySubscribe(q).value(), indexed.TrySubscribe(q).value());
    }
  }
  // Match-bearing blocks, then all-mismatch blocks (empty-match path).
  env.Mine(n_blocks / 2 + 1, /*allow_matches=*/true, seed * 7 + 1);
  env.Mine(n_blocks / 2, /*allow_matches=*/false, seed * 7 + 2);
  for (const auto& block : env.builder->blocks()) {
    ExpectBlockEquivalent(env, linear, indexed, block);
  }
}

template <typename Engine>
class SubMatchEquivalenceTest : public ::testing::Test {};

using AllEngines =
    ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine,
                     accum::Acc1Engine, accum::Acc2Engine>;
TYPED_TEST_SUITE(SubMatchEquivalenceTest, AllEngines);

TYPED_TEST(SubMatchEquivalenceTest, RandomizedNotificationsBitIdentical) {
  // Real-curve engines prove slowly; trim sizes, keep the same shapes.
  constexpr bool kMock = std::is_same_v<TypeParam, accum::MockAcc1Engine> ||
                         std::is_same_v<TypeParam, accum::MockAcc2Engine>;
  const size_t subs = kMock ? 24 : 6;
  const size_t blocks = kMock ? 8 : 4;
  RunEquivalence<TypeParam>(/*seed=*/1, subs, blocks);
}

TEST(SubMatchEquivalenceModesTest, FlatModeAndCellPolicyAndNoSharing) {
  // The non-fast dispatch paths: kNil (flat proof trees), cell-preferring
  // exclusions, and the no-proof-sharing configuration.
  RunEquivalence<accum::MockAcc2Engine>(/*seed=*/2, 16, 6, core::IndexMode::kNil);
  RunEquivalence<accum::MockAcc2Engine>(/*seed=*/3, 16, 6,
                                        core::IndexMode::kBoth,
                                        /*prefer_cells=*/true);
  RunEquivalence<accum::MockAcc2Engine>(/*seed=*/4, 16, 6,
                                        core::IndexMode::kBoth,
                                        /*prefer_cells=*/false,
                                        /*use_ip_tree=*/false);
}

TEST(SubMatchEquivalenceModesTest, OnlySilentSubscriptions) {
  // Every query silent on every block: pure mismatch fast path vs linear.
  MatchEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options lin, idx;
  lin.matcher = MatcherMode::kLinear;
  idx.matcher = MatcherMode::kIndexed;
  SubscriptionManager<accum::MockAcc2Engine> linear(env.engine, env.config,
                                                    lin);
  SubscriptionManager<accum::MockAcc2Engine> indexed(env.engine, env.config,
                                                     idx);
  Query q;
  q.keyword_cnf = {{"nosuchword"}};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(linear.TrySubscribe(q).ok());
    ASSERT_TRUE(indexed.TrySubscribe(q).ok());
  }
  env.Mine(4, /*allow_matches=*/false, 9);
  for (const auto& block : env.builder->blocks()) {
    ExpectBlockEquivalent(env, linear, indexed, block);
  }
}

// --- lazy equivalence -------------------------------------------------------

template <typename Engine>
void RunLazyEquivalence(uint64_t seed, size_t n_subs, size_t n_blocks) {
  MatchEnv<Engine> env;
  typename SubscriptionManager<Engine>::Options lin, idx;
  lin.lazy = idx.lazy = true;
  lin.matcher = MatcherMode::kLinear;
  idx.matcher = MatcherMode::kIndexed;
  SubscriptionManager<Engine> linear(env.engine, env.config, lin);
  SubscriptionManager<Engine> indexed(env.engine, env.config, idx);
  Rng rng(seed);
  for (size_t i = 0; i < n_subs; ++i) {
    Query q = RandomQuery(&rng);
    ASSERT_EQ(linear.TrySubscribe(q).value(), indexed.TrySubscribe(q).value());
  }
  // Long silent runs (skip consolidation) punctuated by match blocks.
  env.Mine(n_blocks, /*allow_matches=*/false, seed + 1);
  env.Mine(1, /*allow_matches=*/true, seed + 2);
  env.Mine(n_blocks, /*allow_matches=*/false, seed + 3);
  for (const auto& block : env.builder->blocks()) {
    auto a = linear.ProcessBlockLazy(block);
    auto b = indexed.ProcessBlockLazy(block);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].query_id, b[i].query_id);
      EXPECT_EQ(BatchBytes(env.engine, a[i]), BatchBytes(env.engine, b[i]));
    }
  }
  auto fa = linear.FlushAll();
  auto fb = indexed.FlushAll();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(BatchBytes(env.engine, fa[i]), BatchBytes(env.engine, fb[i]));
  }
}

TEST(SubMatchLazyEquivalenceTest, MockAcc2) {
  RunLazyEquivalence<accum::MockAcc2Engine>(/*seed=*/5, 16, 12);
}

TEST(SubMatchLazyEquivalenceTest, Acc2) {
  RunLazyEquivalence<accum::Acc2Engine>(/*seed=*/6, 4, 10);
}

// --- churn ------------------------------------------------------------------

TEST(SubMatchChurnTest, SubscribeUnsubscribeInterleavedWithBlocks) {
  MatchEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options lin, idx;
  lin.matcher = MatcherMode::kLinear;
  idx.matcher = MatcherMode::kIndexed;
  SubscriptionManager<accum::MockAcc2Engine> linear(env.engine, env.config,
                                                    lin);
  SubscriptionManager<accum::MockAcc2Engine> indexed(env.engine, env.config,
                                                     idx);
  Rng rng(77);
  std::vector<uint32_t> live;
  for (int round = 0; round < 20; ++round) {
    uint32_t n_new = rng.Below(3);
    for (uint32_t i = 0; i < n_new; ++i) {
      Query q = RandomQuery(&rng);
      auto ida = linear.TrySubscribe(q);
      auto idb = indexed.TrySubscribe(q);
      ASSERT_TRUE(ida.ok());
      ASSERT_EQ(ida.value(), idb.value());
      live.push_back(ida.value());
    }
    while (!live.empty() && rng.Below(3) == 0) {
      size_t pick = rng.Below(live.size());
      uint32_t id = live[pick];
      live.erase(live.begin() + pick);
      linear.Unsubscribe(id);
      indexed.Unsubscribe(id);
    }
    ASSERT_EQ(linear.NumActive(), live.size());
    ASSERT_EQ(indexed.NumActive(), live.size());
    env.Mine(1, /*allow_matches=*/rng.Below(2) == 0, 1000 + round);
    const auto& block = env.builder->blocks().back();
    ExpectBlockEquivalent(env, linear, indexed, block);
  }
  // Releasing every subscription empties the clause index completely.
  for (uint32_t id : live) indexed.Unsubscribe(id);
  EXPECT_EQ(indexed.clause_index().NumClauses(), 0u);
  EXPECT_EQ(indexed.clause_index().NumPostings(), 0u);
}

// --- service-level churn under appends (exercised in the TSan job) ----------

TEST(SubMatchServiceTest, SubscribeChurnDuringAppends) {
  api::ServiceOptions opts;
  opts.engine = api::EngineKind::kMockAcc2;
  opts.config.schema = NumericSchema{2, 6};
  opts.config.skiplist_size = 2;
  auto svc_or = api::Service::Open(std::move(opts));
  ASSERT_TRUE(svc_or.ok());
  auto svc = svc_or.TakeValue();

  std::atomic<bool> done{false};
  std::thread miner([&] {
    Rng rng(1);
    for (int b = 0; b < 30; ++b) {
      std::vector<chain::Object> objs;
      for (int i = 0; i < 3; ++i) {
        chain::Object o;
        o.id = static_cast<uint64_t>(b) * 8 + i;
        o.timestamp = kBaseTime + b * kStep;
        o.numeric = {rng.Below(64), rng.Below(64)};
        o.keywords = {"hit"};
        objs.push_back(std::move(o));
      }
      ASSERT_TRUE(svc->Append(std::move(objs), kBaseTime + b * kStep).ok());
    }
    done.store(true);
  });
  std::thread churner([&] {
    Rng rng(2);
    std::vector<uint32_t> ids;
    while (!done.load()) {
      Query q = RandomQuery(&rng);
      auto id = svc->Subscribe(q);
      if (id.ok()) ids.push_back(id.value());
      if (ids.size() > 4) {
        ASSERT_TRUE(svc->Unsubscribe(ids.front()).ok());
        ids.erase(ids.begin());
      }
    }
  });
  miner.join();
  churner.join();
  auto stats = svc->Stats();
  EXPECT_EQ(stats.num_blocks, 30u);
  EXPECT_EQ(stats.sub_matcher, MatcherMode::kIndexed);
  // Every buffered event decodes and carries a drained height.
  for (const auto& ev : svc->TakeSubscriptionEvents()) {
    EXPECT_LT(ev.height, 30u);
    EXPECT_FALSE(ev.notification_bytes.empty());
  }
}

}  // namespace
}  // namespace vchain::sub

// End-to-end verifiable subscriptions: realtime notifications, lazy batches
// with skip consolidation and aggregated proofs, IP-Tree proof sharing, and
// tamper rejection.

#include "sub/subscription.h"

#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/vchain.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"

namespace vchain::sub {
namespace {

using accum::AccParams;
using accum::KeyOracle;
using chain::LightClient;
using core::ChainBuilder;
using core::Query;

constexpr uint64_t kBaseTime = 5000;
constexpr uint64_t kStep = 10;

template <typename Engine>
Engine MakeEngine(uint64_t seed = 404) {
  auto oracle = KeyOracle::Create(seed, AccParams{14});
  return Engine(oracle);
}

template <typename Engine>
struct SubEnv {
  explicit SubEnv(bool sparse_matches = false)
      : engine(MakeEngine<Engine>()), config() {
    config.mode = core::IndexMode::kBoth;
    config.schema = NumericSchema{2, 6};
    config.skiplist_size = 2;  // skips of 4 and 8
    builder = std::make_unique<ChainBuilder<Engine>>(engine, config);
    sparse = sparse_matches;
  }

  /// Mine `n` more blocks; objects in "match zone" ([0,15]^2 + "hit") appear
  /// only when allow_matches.
  void Mine(size_t n, bool allow_matches, uint64_t seed) {
    Rng rng(seed);
    static const char* kWords[] = {"red", "green", "blue", "hit"};
    for (size_t b = 0; b < n; ++b) {
      std::vector<chain::Object> objs;
      for (int i = 0; i < 3; ++i) {
        chain::Object o;
        o.id = next_id++;
        uint64_t h = builder->blocks().size();
        o.timestamp = kBaseTime + h * kStep;
        if (allow_matches && i == 0) {
          o.numeric = {rng.Below(16), rng.Below(16)};
          o.keywords = {"hit", kWords[rng.Below(3)]};
        } else {
          o.numeric = {16 + rng.Below(48), 16 + rng.Below(48)};
          o.keywords = {kWords[rng.Below(3)], kWords[rng.Below(3)]};
        }
        objs.push_back(std::move(o));
      }
      uint64_t ts = kBaseTime + builder->blocks().size() * kStep;
      auto st = builder->AppendBlock(std::move(objs), ts);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
    ASSERT_TRUE(builder->SyncLightClient(&light).ok());
  }

  Query MatchZoneQuery() const {
    Query q;
    q.ranges = {{0, 0, 15}, {1, 0, 15}};
    q.keyword_cnf = {{"hit"}};
    return q;
  }

  Engine engine;
  core::ChainConfig config;
  std::unique_ptr<ChainBuilder<Engine>> builder;
  LightClient light;
  uint64_t next_id = 0;
  bool sparse = false;
};

template <typename Engine>
class SubscriptionTest : public ::testing::Test {};

using Engines = ::testing::Types<accum::MockAcc1Engine, accum::MockAcc2Engine>;
TYPED_TEST_SUITE(SubscriptionTest, Engines);

TYPED_TEST(SubscriptionTest, RealtimeNotificationsVerifyAndMatchOracle) {
  SubEnv<TypeParam> env;
  typename SubscriptionManager<TypeParam>::Options opts;
  SubscriptionManager<TypeParam> mgr(env.engine, env.config, opts);
  uint32_t qid = mgr.TrySubscribe(env.MatchZoneQuery()).TakeValue();
  // A broad keyword-only query too.
  Query kw;
  kw.keyword_cnf = {{"red", "blue"}};
  uint32_t qid2 = mgr.TrySubscribe(kw).TakeValue();

  env.Mine(6, /*allow_matches=*/true, /*seed=*/1);
  SubVerifier<TypeParam> verifier(env.engine, env.config, &env.light);

  size_t total_matches = 0;
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    ASSERT_EQ(notifs.size(), 2u);
    for (const auto& n : notifs) {
      const Query& q = n.query_id == qid ? mgr.ip_tree().QueryOf(qid)
                                         : mgr.ip_tree().QueryOf(qid2);
      Status st = verifier.VerifyNotification(q, n);
      EXPECT_TRUE(st.ok()) << st.ToString();
      // Oracle comparison: every true match must be returned (completeness);
      // extras are possible only as mapped-universe collisions, which the
      // client filters locally with LocalMatch.
      std::vector<uint64_t> got;
      for (const chain::Object& o : n.objects) got.push_back(o.id);
      for (const chain::Object& o : block.objects) {
        if (core::LocalMatch(o, q, env.config.schema)) {
          EXPECT_NE(std::find(got.begin(), got.end(), o.id), got.end());
        }
      }
      size_t true_matches = 0;
      for (const chain::Object& o : n.objects) {
        if (core::LocalMatch(o, q, env.config.schema)) ++true_matches;
      }
      if (n.query_id == qid) total_matches += true_matches;
    }
  }
  EXPECT_GT(total_matches, 0u);
}

TYPED_TEST(SubscriptionTest, RangeOnlyQueryUsesCellExclusions) {
  SubEnv<TypeParam> env;
  typename SubscriptionManager<TypeParam>::Options opts;
  opts.prefer_cell_exclusions = true;
  SubscriptionManager<TypeParam> mgr(env.engine, env.config, opts);
  Query range_only;
  range_only.ranges = {{0, 0, 15}, {1, 0, 15}};
  uint32_t qid = mgr.TrySubscribe(range_only).TakeValue();
  (void)qid;

  env.Mine(4, /*allow_matches=*/false, /*seed=*/2);  // all objects outside
  SubVerifier<TypeParam> verifier(env.engine, env.config, &env.light);
  bool saw_cell_exclusion = false;
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    ASSERT_EQ(notifs.size(), 1u);
    EXPECT_TRUE(notifs[0].objects.empty());
    Status st = verifier.VerifyNotification(range_only, notifs[0]);
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (const auto& node : notifs[0].nodes) {
      for (const auto& ex : node.exclusions) {
        if (ex.is_cell) saw_cell_exclusion = true;
      }
    }
  }
  EXPECT_TRUE(saw_cell_exclusion);
}

TYPED_TEST(SubscriptionTest, NotificationSerdeRoundTrip) {
  SubEnv<TypeParam> env;
  typename SubscriptionManager<TypeParam>::Options opts;
  SubscriptionManager<TypeParam> mgr(env.engine, env.config, opts);
  Query q = env.MatchZoneQuery();
  ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  env.Mine(3, true, 3);
  SubVerifier<TypeParam> verifier(env.engine, env.config, &env.light);
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    ByteWriter w;
    SerializeSubNotification(env.engine, notifs[0], &w);
    ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
    SubNotification<TypeParam> back;
    ASSERT_TRUE(DeserializeSubNotification(env.engine, &r, &back).ok());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_TRUE(verifier.VerifyNotification(q, back).ok());
  }
}

TYPED_TEST(SubscriptionTest, TamperedNotificationRejected) {
  SubEnv<TypeParam> env;
  typename SubscriptionManager<TypeParam>::Options opts;
  SubscriptionManager<TypeParam> mgr(env.engine, env.config, opts);
  Query q = env.MatchZoneQuery();
  ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  env.Mine(4, true, 4);
  SubVerifier<TypeParam> verifier(env.engine, env.config, &env.light);
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    auto& n = notifs[0];
    if (n.objects.empty()) continue;
    // Hide a match: drop the object and rewrite its node as a mismatch with
    // a stolen exclusion.
    SubNotification<TypeParam> evil = n;
    const SubExclusion<TypeParam>* donor = nullptr;
    for (const auto& node : evil.nodes) {
      if (node.kind == core::VoKind::kMismatch && !node.exclusions.empty()) {
        donor = &node.exclusions[0];
      }
    }
    if (donor == nullptr) continue;
    for (auto& node : evil.nodes) {
      if (node.kind == core::VoKind::kMatch) {
        const chain::Object& o = evil.objects[node.object_ref];
        node.kind = core::VoKind::kMismatch;
        node.inner_hash = o.Hash();
        node.exclusions.push_back(*donor);
        evil.objects.erase(evil.objects.begin() + node.object_ref);
        break;
      }
    }
    EXPECT_FALSE(verifier.VerifyNotification(q, evil).ok());
    return;
  }
  GTEST_SKIP() << "no match produced";
}

TEST(LazySubscriptionTest, SilentRunFlushesWithAggregatedProof) {
  SubEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  opts.lazy = true;
  SubscriptionManager<accum::MockAcc2Engine> mgr(env.engine, env.config, opts);
  Query q = env.MatchZoneQuery();
  uint32_t qid = mgr.TrySubscribe(q).TakeValue();
  (void)qid;

  // 10 silent blocks, then one matching block.
  env.Mine(10, /*allow_matches=*/false, /*seed=*/5);
  env.Mine(1, /*allow_matches=*/true, /*seed=*/6);

  SubVerifier<accum::MockAcc2Engine> verifier(env.engine, env.config,
                                              &env.light);
  uint64_t owed = 0;
  size_t batches = 0;
  bool saw_skip_unit = false, saw_match = false;
  for (const auto& block : env.builder->blocks()) {
    auto out = mgr.ProcessBlockLazy(block);
    for (const auto& batch : out) {
      ++batches;
      uint64_t next = 0;
      Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
      ASSERT_TRUE(st.ok()) << st.ToString();
      owed = next;
      for (const auto& unit : batch.units) {
        if (std::holds_alternative<
                LazyBatch<accum::MockAcc2Engine>::SkipUnit>(unit)) {
          saw_skip_unit = true;
        }
      }
      if (batch.match.has_value()) {
        saw_match = true;
        EXPECT_FALSE(batch.match->objects.empty());
      }
    }
  }
  auto leftovers = mgr.FlushAll();
  for (const auto& batch : leftovers) {
    uint64_t next = 0;
    Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
    ASSERT_TRUE(st.ok()) << st.ToString();
    owed = next;
  }
  EXPECT_EQ(owed, env.builder->blocks().size());  // every height accounted
  EXPECT_GT(batches, 0u);
  EXPECT_TRUE(saw_match);
  EXPECT_TRUE(saw_skip_unit);  // the 10-block run must use a skip
}

TEST(LazySubscriptionTest, TamperedBatchRejected) {
  SubEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  opts.lazy = true;
  SubscriptionManager<accum::MockAcc2Engine> mgr(env.engine, env.config, opts);
  Query q = env.MatchZoneQuery();
  ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  env.Mine(5, false, 7);
  for (const auto& block : env.builder->blocks()) {
    auto out = mgr.ProcessBlockLazy(block);
    EXPECT_TRUE(out.empty());  // silent: nothing published yet
  }
  auto batches = mgr.FlushAll();
  ASSERT_EQ(batches.size(), 1u);
  SubVerifier<accum::MockAcc2Engine> verifier(env.engine, env.config,
                                              &env.light);
  uint64_t next = 0;
  ASSERT_TRUE(verifier.VerifyLazyBatch(q, batches[0], 0, &next).ok());
  EXPECT_EQ(next, 5u);

  // (a) Drop a unit: gap detected.
  auto missing = batches[0];
  missing.units.erase(missing.units.begin());
  EXPECT_FALSE(verifier.VerifyLazyBatch(q, missing, 0, &next).ok());
  // (b) Wrong starting height.
  EXPECT_FALSE(verifier.VerifyLazyBatch(q, batches[0], 1, &next).ok());
  // (c) Corrupt the aggregated proof.
  auto bad_proof = batches[0];
  bad_proof.agg_proof->pi = crypto::Fr::FromUint64(1234567);
  EXPECT_FALSE(verifier.VerifyLazyBatch(q, bad_proof, 0, &next).ok());
  // (d) Swap a unit digest.
  auto bad_digest = batches[0];
  for (auto& unit : bad_digest.units) {
    if (std::holds_alternative<LazyBatch<accum::MockAcc2Engine>::BlockUnit>(
            unit)) {
      std::get<LazyBatch<accum::MockAcc2Engine>::BlockUnit>(unit).digest =
          env.engine.Digest(accum::Multiset{99});
      break;
    }
  }
  EXPECT_FALSE(verifier.VerifyLazyBatch(q, bad_digest, 0, &next).ok());
  // (e) Serde smoke: batch serializes without error.
  EXPECT_GT(LazyBatchByteSize(env.engine, batches[0]), 0u);
}

TEST(SharedProofTest, IpTreeModeSharesProofsAcrossQueries) {
  SubEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options ip_opts;
  ip_opts.use_ip_tree = true;
  // The linear matcher walks every query independently, so cross-query
  // sharing shows up as proof-cache hits (the indexed matcher shares
  // upstream of the cache — covered by the test below).
  ip_opts.matcher = MatcherMode::kLinear;
  SubscriptionManager<accum::MockAcc2Engine> mgr(env.engine, env.config,
                                                 ip_opts);
  // Many subscriptions sharing the same clause.
  Query q;
  q.keyword_cnf = {{"nosuchword"}};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  env.Mine(3, false, 8);
  for (const auto& block : env.builder->blocks()) {
    mgr.ProcessBlock(block);
  }
  const auto& stats = mgr.cache_stats();
  // 8 identical queries: all but the first hit the shared cache.
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(SharedProofTest, IndexedMatcherSharesWorkUpstreamOfCache) {
  SubEnv<accum::MockAcc2Engine> env;
  typename SubscriptionManager<accum::MockAcc2Engine>::Options opts;
  opts.matcher = MatcherMode::kIndexed;
  SubscriptionManager<accum::MockAcc2Engine> mgr(env.engine, env.config, opts);
  Query q;
  q.keyword_cnf = {{"nosuchword"}};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  // 8 identical subscriptions intern one clause.
  EXPECT_EQ(mgr.clause_index().NumClauses(), 1u);
  env.Mine(3, false, 8);
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    EXPECT_EQ(notifs.size(), 8u);
  }
  // Grouped dispatch proves each (digest, clause) pair exactly once — the
  // cache never even sees the 7 duplicate probes the linear matcher makes.
  const auto& stats = mgr.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);  // one root-mismatch proof per block
}

TEST(SubscriptionBn254Test, RealtimeAndLazyEndToEnd) {
  SubEnv<accum::Acc2Engine> env;
  typename SubscriptionManager<accum::Acc2Engine>::Options opts;
  SubscriptionManager<accum::Acc2Engine> mgr(env.engine, env.config, opts);
  Query q = env.MatchZoneQuery();
  ASSERT_TRUE(mgr.TrySubscribe(q).ok());
  env.Mine(3, true, 9);
  SubVerifier<accum::Acc2Engine> verifier(env.engine, env.config, &env.light);
  for (const auto& block : env.builder->blocks()) {
    auto notifs = mgr.ProcessBlock(block);
    Status st = verifier.VerifyNotification(q, notifs[0]);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  typename SubscriptionManager<accum::Acc2Engine>::Options lazy_opts;
  lazy_opts.lazy = true;
  SubscriptionManager<accum::Acc2Engine> lazy_mgr(env.engine, env.config,
                                                  lazy_opts);
  ASSERT_TRUE(lazy_mgr.TrySubscribe(q).ok());
  uint64_t owed = 0;
  for (const auto& block : env.builder->blocks()) {
    for (const auto& batch : lazy_mgr.ProcessBlockLazy(block)) {
      uint64_t next = 0;
      Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
      EXPECT_TRUE(st.ok()) << st.ToString();
      owed = next;
    }
  }
  for (const auto& batch : lazy_mgr.FlushAll()) {
    uint64_t next = 0;
    Status st = verifier.VerifyLazyBatch(q, batch, owed, &next);
    EXPECT_TRUE(st.ok()) << st.ToString();
    owed = next;
  }
  EXPECT_EQ(owed, env.builder->blocks().size());
}

}  // namespace
}  // namespace vchain::sub

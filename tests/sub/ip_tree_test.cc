// IP-Tree construction & classification (Algorithm 6, Fig 8) and the
// geometric cell-coverage check used by the subscription verifier.

#include "sub/ip_tree.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace vchain::sub {
namespace {

using core::Query;
using core::RangePredicate;

NumericSchema Schema2D() { return NumericSchema{2, 4}; }  // 16x16 grid space

Query RangeQuery(uint64_t x0, uint64_t x1, uint64_t y0, uint64_t y1) {
  Query q;
  q.ranges = {{0, x0, x1}, {1, y0, y1}};
  return q;
}

TEST(CellBoxTest, RootCoversEverything) {
  NumericSchema s = Schema2D();
  CellBox root = CellBox::Root(s);
  EXPECT_TRUE(root.ContainsPoint({0, 0}, s));
  EXPECT_TRUE(root.ContainsPoint({15, 15}, s));
  EXPECT_EQ(root.Depth(), 0u);
}

TEST(CellBoxTest, SplitProducesDisjointCover) {
  NumericSchema s = Schema2D();
  CellBox root = CellBox::Root(s);
  auto children = root.Split();
  ASSERT_EQ(children.size(), 4u);  // 2^2
  // Every point lies in exactly one child.
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint64_t> p = {rng.Below(16), rng.Below(16)};
    int count = 0;
    for (const CellBox& c : children) {
      if (c.ContainsPoint(p, s)) ++count;
    }
    EXPECT_EQ(count, 1);
  }
}

TEST(CellBoxTest, CoverByClassification) {
  NumericSchema s = Schema2D();
  CellBox root = CellBox::Root(s);
  auto children = root.Split();
  // Quadrants: child order interleaves bits; find the lower-left quadrant
  // ([0,7]x[0,7]) and check classifications against a query.
  Query q = RangeQuery(0, 7, 0, 7);
  int full = 0, none = 0, partial = 0;
  for (const CellBox& c : children) {
    switch (c.CoverBy(q, s)) {
      case CellBox::Cover::kFull: ++full; break;
      case CellBox::Cover::kNone: ++none; break;
      case CellBox::Cover::kPartial: ++partial; break;
    }
  }
  EXPECT_EQ(full, 1);
  EXPECT_EQ(none, 3);
  EXPECT_EQ(partial, 0);
  // A straddling query partially covers all quadrants.
  Query straddle = RangeQuery(4, 12, 4, 12);
  for (const CellBox& c : children) {
    EXPECT_EQ(c.CoverBy(straddle, s), CellBox::Cover::kPartial);
  }
}

TEST(CellBoxTest, MissingDimensionMeansFullDomain) {
  NumericSchema s = Schema2D();
  Query q;
  q.ranges = {{0, 0, 7}};  // no predicate on dim 1
  CellBox root = CellBox::Root(s);
  EXPECT_EQ(root.CoverBy(q, s), CellBox::Cover::kPartial);
  Query all;
  EXPECT_EQ(root.CoverBy(all, s), CellBox::Cover::kFull);
}

TEST(CellBoxTest, PrefixMultisetIntersectsObjectsInside) {
  NumericSchema s = Schema2D();
  CellBox root = CellBox::Root(s);
  auto quad = root.Split()[0];  // some quadrant
  Multiset cell_set = quad.PrefixMultiset(s);
  // Any object inside the quadrant has those prefixes in its W'.
  uint64_t x = quad.dims[0].Lo(s), y = quad.dims[1].Lo(s);
  chain::Object inside;
  inside.numeric = {x, y};
  Multiset w = chain::TransformObject(inside, s);
  EXPECT_TRUE(w.Intersects(cell_set));
  // Count: an inside object carries *all* cell prefixes.
  for (const Multiset::Entry& e : cell_set.entries()) {
    EXPECT_TRUE(w.Contains(e.element));
  }
}

TEST(CellBoxTest, SerdeRoundTrip) {
  CellBox b;
  b.dims = {DyadicRange{0b101, 3}, DyadicRange{0b0, 1}};
  ByteWriter w;
  b.Serialize(&w);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  CellBox back;
  ASSERT_TRUE(CellBox::Deserialize(&r, &back).ok());
  EXPECT_EQ(back, b);
}

TEST(CoverageTest, TerminalCellsCoverQueryRange) {
  NumericSchema s = Schema2D();
  IpTree tree(s, IpTree::Options{/*max_depth=*/4});
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    uint64_t x0 = rng.Below(16), x1 = x0 + rng.Below(16 - x0);
    uint64_t y0 = rng.Below(16), y1 = y0 + rng.Below(16 - y0);
    uint32_t id = tree.Register(RangeQuery(x0, x1, y0, y1));
    ASSERT_TRUE(tree.IsIndexable(id));
    const auto& cells = tree.TerminalCells(id);
    EXPECT_TRUE(CellsCoverQueryRange(tree.QueryOf(id), cells, s))
        << "q=[" << x0 << "," << x1 << "]x[" << y0 << "," << y1 << "]";
    // Dropping any cell must break coverage (cells are minimal/terminal).
    if (cells.size() > 1) {
      std::vector<CellBox> missing(cells.begin() + 1, cells.end());
      EXPECT_FALSE(CellsCoverQueryRange(tree.QueryOf(id), missing, s));
    }
  }
}

TEST(CoverageTest, UnrelatedCellsDoNotCover) {
  NumericSchema s = Schema2D();
  Query q = RangeQuery(8, 15, 8, 15);
  // Cells covering only the opposite quadrant.
  CellBox ll;
  ll.dims = {DyadicRange{0, 1}, DyadicRange{0, 1}};
  EXPECT_FALSE(CellsCoverQueryRange(q, {ll}, s));
  // The root cell trivially covers everything.
  EXPECT_TRUE(CellsCoverQueryRange(q, {CellBox::Root(s)}, s));
}

TEST(IpTreeTest, FullCoverQueryStopsAtRoot) {
  NumericSchema s = Schema2D();
  IpTree tree(s);
  Query q;  // no range predicates: full cover everywhere
  uint32_t id = tree.Register(q);
  ASSERT_EQ(tree.TerminalCells(id).size(), 1u);
  EXPECT_EQ(tree.TerminalCells(id)[0], CellBox::Root(s));
  EXPECT_EQ(tree.NodeCount(), 1u);  // no splits needed
}

TEST(IpTreeTest, AlignedQueryGetsOneCell) {
  NumericSchema s = Schema2D();
  IpTree tree(s);
  // Exactly the lower-left quadrant.
  uint32_t id = tree.Register(RangeQuery(0, 7, 0, 7));
  ASSERT_TRUE(tree.IsIndexable(id));
  ASSERT_EQ(tree.TerminalCells(id).size(), 1u);
  EXPECT_EQ(tree.TerminalCells(id)[0].Depth(), 1u);
}

TEST(IpTreeTest, DepthCapMarksNonIndexable) {
  NumericSchema s = Schema2D();
  IpTree tree(s, IpTree::Options{/*max_depth=*/1});
  // A range not resolvable at depth 1.
  uint32_t id = tree.Register(RangeQuery(3, 5, 3, 5));
  EXPECT_FALSE(tree.IsIndexable(id));
}

TEST(IpTreeTest, NodeBudgetCapsHighDimensionalExplosion) {
  // 7-dim spaces fan out 2^7 = 128 children per split; unconstrained
  // splitting would allocate hundreds of millions of nodes for a handful of
  // partial queries. The node budget must stop growth and fall back.
  NumericSchema wide{7, 12};
  IpTree::Options opts;
  opts.max_depth = 6;
  opts.max_nodes = 2000;
  IpTree tree(wide, opts);
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    Query q;
    for (uint32_t d = 0; d < 2; ++d) {
      uint64_t lo = rng.Below(wide.DomainSize() / 2) + 1;
      q.ranges.push_back(
          core::RangePredicate{d, lo, lo + wide.DomainSize() / 3});
    }
    tree.Register(q);
  }
  EXPECT_LE(tree.NodeCount(), 2000u + 128u);
  // Queries may be non-indexable, but remain active and processable.
  EXPECT_EQ(tree.ActiveQueryIds().size(), 4u);
}

TEST(IpTreeTest, DeregisterRemovesQuery) {
  NumericSchema s = Schema2D();
  IpTree tree(s);
  uint32_t a = tree.Register(RangeQuery(0, 7, 0, 7));
  uint32_t b = tree.Register(RangeQuery(8, 15, 0, 7));
  EXPECT_EQ(tree.ActiveQueryIds().size(), 2u);
  tree.Deregister(a);
  auto active = tree.ActiveQueryIds();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], b);
}

TEST(IpTreeTest, SharedCellsAcrossQueries) {
  // Queries over the same quadrant produce the same terminal cell —
  // the sharing the paper's Fig 8 illustrates.
  NumericSchema s = Schema2D();
  IpTree tree(s);
  uint32_t a = tree.Register(RangeQuery(0, 7, 0, 7));
  uint32_t b = tree.Register(RangeQuery(0, 7, 0, 7));
  ASSERT_EQ(tree.TerminalCells(a).size(), 1u);
  ASSERT_EQ(tree.TerminalCells(b).size(), 1u);
  EXPECT_EQ(tree.TerminalCells(a)[0], tree.TerminalCells(b)[0]);
}

}  // namespace
}  // namespace vchain::sub

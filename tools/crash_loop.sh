#!/usr/bin/env bash
# Crash-loop harness, the way CI runs it. Two stages:
#
#   1. In-process fault loop: tests/store/crash_loop_test drives hundreds of
#      append / injected-fault / power-cut / reopen cycles per engine
#      through FaultInjectionEnv and requires recovery to a clean durable
#      prefix (bit-identical headers and VO bytes, never Corruption).
#
#   2. Real kill -9 loop: vchain_spd mines a demo chain into a persisted
#      store and is SIGKILLed at random points mid-mining, over and over.
#      Every restart must recover the store and resume; the finished chain
#      must answer the canonical demo query with exactly the same bytes as
#      an uninterrupted in-memory run (hash equality), and a final
#      separate-process sp_query must verify against it. The last daemon is
#      stopped with SIGTERM to exercise the graceful drain + final-Sync
#      path.
#
# Usage: tools/crash_loop.sh [--quick] <build-dir> [work-dir]
#   --quick : fewer cycles/kills (the ASan CI job uses this)

set -euo pipefail

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
  shift
fi
BUILD_DIR=${1:?usage: crash_loop.sh [--quick] <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
mkdir -p "$WORK_DIR"
SPD="$BUILD_DIR/vchain_spd"
LOOP_TEST="$BUILD_DIR/crash_loop_test"
CLIENT="$BUILD_DIR/sp_query"
# The real accumulator plus a chain this long keeps mining busy for ~250ms,
# so the 20-200ms kills below land mid-append, not after the chain is
# already complete.
ENGINE=acc2
DEMO_BLOCKS=400

if [[ "$QUICK" == 1 ]]; then
  CYCLES=25   # x4 engines = 100 injected-crash cycles
  KILLS=6
else
  CYCLES=150  # x4 engines = 600 injected-crash cycles
  KILLS=15
fi

echo "=== stage 1: injected fault loop ($CYCLES cycles/engine) ==="
VCHAIN_CRASH_CYCLES=$CYCLES "$LOOP_TEST"

echo "=== stage 2: kill -9 loop ($KILLS kills) ==="
SPD_PID=""
cleanup() {
  if [[ -n "$SPD_PID" ]] && kill -0 "$SPD_PID" 2>/dev/null; then
    kill -9 "$SPD_PID" 2>/dev/null || true
    wait "$SPD_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

# Reference: the uninterrupted run's answer to the canonical demo query.
REF_LOG="$WORK_DIR/ref.log"
"$SPD" --engine "$ENGINE" --demo "$DEMO_BLOCKS" --port 0 --once > "$REF_LOG" 2>&1
REF_HASH=$(grep -oE 'demo_query_hash=[0-9a-f]+' "$REF_LOG" | cut -d= -f2)
[[ -n "$REF_HASH" ]] || { echo "no reference hash:"; cat "$REF_LOG"; exit 1; }

STORE="$WORK_DIR/spd-crash-store"
rm -rf "$STORE"
HASH=""
PORT=""
for ((i = 1; i <= KILLS; ++i)); do
  LOG="$WORK_DIR/spd-kill-$i.log"
  "$SPD" --engine "$ENGINE" --store "$STORE" --demo "$DEMO_BLOCKS" \
         --port 0 --threads 2 > "$LOG" 2>&1 &
  SPD_PID=$!
  # Kill at a random point 20-200ms in — usually mid-mining, sometimes
  # mid-recovery of the previous kill's damage.
  sleep "$(awk -v r=$RANDOM 'BEGIN{printf "%.3f", 0.02 + (r % 180) / 1000}')"
  if ! kill -0 "$SPD_PID" 2>/dev/null; then
    # Exited already — it must have been a clean come-up, not a crash.
    wait "$SPD_PID" && status=0 || status=$?
    echo "daemon exited early (status $status):"; cat "$LOG"; exit 1
  fi
  kill -9 "$SPD_PID"
  wait "$SPD_PID" 2>/dev/null || true
  SPD_PID=""
  echo "  kill $i: $(wc -c < "$STORE"/seg-*.log 2>/dev/null | tail -1 | awk '{print $1}' || echo 0) bytes in last segment"
done

# Final run: recover once more and let mining finish.
LOG="$WORK_DIR/spd-final.log"
"$SPD" --engine "$ENGINE" --store "$STORE" --demo "$DEMO_BLOCKS" \
       --port 0 --threads 2 > "$LOG" 2>&1 &
SPD_PID=$!
for _ in $(seq 1 300); do
  grep -q "serving" "$LOG" 2>/dev/null && break
  if ! kill -0 "$SPD_PID" 2>/dev/null; then
    echo "daemon failed to recover after kill loop:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
grep -q "serving" "$LOG" || { echo "daemon never came up:"; cat "$LOG"; exit 1; }
PORT=$(grep -oE 'on 127\.0\.0\.1:[0-9]+' "$LOG" | grep -oE '[0-9]+$')
HASH=$(grep -oE 'demo_query_hash=[0-9a-f]+' "$LOG" | cut -d= -f2)

if [[ "$HASH" != "$REF_HASH" ]]; then
  echo "recovered chain answers differently after $KILLS kills:"
  echo "  expected $REF_HASH"
  echo "  received $HASH"
  exit 1
fi

# Separate-process client verification against the survivor.
"$CLIENT" --engine "$ENGINE" --port "$PORT" --demo-query --expect-hash "$REF_HASH"

# Graceful exit: SIGTERM must drain and run the final Sync.
kill -TERM "$SPD_PID"
wait "$SPD_PID" && status=0 || status=$?
SPD_PID=""
[[ "$status" == 0 ]] || { echo "graceful shutdown exited $status:"; cat "$LOG"; exit 1; }
grep -q "shutting down" "$LOG" || { echo "no graceful drain in log:"; cat "$LOG"; exit 1; }

echo "crash loop: store survived $KILLS kill -9s with bit-identical answers"

#!/usr/bin/env bash
# End-to-end wire-protocol test, the way CI runs it: for every engine,
# start vchain_spd as a real daemon against a persisted store, query it
# with sp_query from a *separate process*, and require that
#   1. client-side verification accepts (trust ends at the socket), and
#   2. the VO bytes received over the wire hash-match the in-process
#      Service::Query answer (vchain_spd prints demo_query_hash at startup;
#      sp_query fails unless its received bytes hash to --expect-hash).
# Each engine also exercises the restart path: the daemon is killed,
# reopened from the same store directory, and must serve identical bytes.
#
# Observability ride-along: GET /metrics is scraped mid-run — once before
# and once after the client's queries — and both expositions are linted by
# tools/check_metrics.py (structure, naming scheme, histogram math, counter
# monotonicity across the two scrapes, and span-vs-stage reconciliation).
# The daemon runs with --debug-endpoints --canary 1, so the run also curls
# GET /debug/traces and /debug/events mid-run (both must parse as strict
# JSON and show live content) and requires the canary to have verified at
# least one query with zero failures by the second scrape.
#
# Usage: tools/e2e_wire_test.sh <build-dir> [work-dir]

set -euo pipefail

BUILD_DIR=${1:?usage: e2e_wire_test.sh <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
SPD="$BUILD_DIR/vchain_spd"
CLIENT="$BUILD_DIR/sp_query"
DEMO_BLOCKS=16

SPD_PID=""
cleanup() {
  if [[ -n "$SPD_PID" ]] && kill -0 "$SPD_PID" 2>/dev/null; then
    kill "$SPD_PID" 2>/dev/null || true
    wait "$SPD_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_spd() {  # engine store log [extra-flags...] -> sets SPD_PID, PORT, HASH
  local engine=$1 store=$2 log=$3
  shift 3
  "$SPD" --engine "$engine" --store "$store" --demo "$DEMO_BLOCKS" \
         --port 0 --threads 2 --debug-endpoints --canary 1 "$@" > "$log" 2>&1 &
  SPD_PID=$!
  for _ in $(seq 1 100); do
    grep -q "serving" "$log" 2>/dev/null && break
    if ! kill -0 "$SPD_PID" 2>/dev/null; then
      echo "vchain_spd exited early:"; cat "$log"; exit 1
    fi
    sleep 0.1
  done
  grep -q "serving" "$log" || { echo "vchain_spd never came up:"; cat "$log"; exit 1; }
  PORT=$(grep -oE 'on 127\.0\.0\.1:[0-9]+' "$log" | grep -oE '[0-9]+$')
  HASH=$(grep -oE 'demo_query_hash=[0-9a-f]+' "$log" | cut -d= -f2)
  [[ -n "$PORT" && -n "$HASH" ]] || { echo "missing port/hash:"; cat "$log"; exit 1; }
}

stop_spd() {
  kill "$SPD_PID"
  wait "$SPD_PID" 2>/dev/null || true
  SPD_PID=""
}

scrape_metrics() {  # port out-file
  local port=$1 out=$2
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "http://127.0.0.1:$port/metrics" -o "$out"
  else
    python3 -c "import sys, urllib.request; \
sys.stdout.write(urllib.request.urlopen('http://127.0.0.1:$port/metrics', timeout=10).read().decode())" > "$out"
  fi
}

fetch_url() {  # url out-file
  local url=$1 out=$2
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "$url" -o "$out"
  else
    python3 -c "import sys, urllib.request; \
sys.stdout.write(urllib.request.urlopen('$url', timeout=10).read().decode())" > "$out"
  fi
}

check_debug_plane() {  # port work-prefix
  local port=$1 prefix=$2
  fetch_url "http://127.0.0.1:$port/debug/traces" "$prefix-traces.json"
  fetch_url "http://127.0.0.1:$port/debug/events" "$prefix-events.json"
  python3 - "$prefix-traces.json" "$prefix-events.json" <<'PYEOF'
import json, sys
traces = json.load(open(sys.argv[1]))
assert traces["offered"] >= 1, f"no traces offered: {traces}"
assert isinstance(traces["traces"], list) and traces["traces"],     "trace ring is empty mid-run"
assert traces["traces"][0]["spans"], "retained trace has no spans"
events = json.load(open(sys.argv[2]))
assert events["next_seq"] >= 1, "flight recorder recorded nothing"
assert isinstance(events["events"], list) and events["events"],     "flight recorder ring is empty"
print(f"debug plane OK: {traces['occupancy']} trace(s), "
      f"{len(events['events'])} event(s)")
PYEOF
}

check_canary() {  # port (polls: the canary audits asynchronously)
  python3 - "$1" <<'PYEOF'
import sys, time, urllib.request
port = sys.argv[1]
verified = failed = None
for _ in range(100):
    text = urllib.request.urlopen(
        "http://127.0.0.1:%s/metrics" % port, timeout=10).read().decode()
    verified = failed = None
    for line in text.splitlines():
        if line.startswith("vchain_canary_verified_total"):
            verified = float(line.split()[-1])
        elif line.startswith("vchain_canary_failed_total"):
            failed = float(line.split()[-1])
    assert verified is not None and failed is not None, (
        "canary families missing from /metrics")
    if verified >= 1:
        break
    time.sleep(0.1)
assert verified >= 1, "canary never verified a query"
assert failed == 0, "canary failures on a clean chain: %s" % failed
print("canary OK: verified=%d failed=0" % verified)
PYEOF
}

for engine in mock-acc1 mock-acc2 acc1 acc2; do
  store="$WORK_DIR/spd-$engine"
  rm -rf "$store"

  echo "=== $engine: fresh store, separate-process query + verify ==="
  start_spd "$engine" "$store" "$WORK_DIR/spd-$engine.log"
  scrape_metrics "$PORT" "$WORK_DIR/metrics-$engine-1.txt"
  "$CLIENT" --engine "$engine" --port "$PORT" --demo-query \
            --expect-hash "$HASH" --stats --timing
  scrape_metrics "$PORT" "$WORK_DIR/metrics-$engine-2.txt"
  echo "=== $engine: debug plane + canary mid-run ==="
  check_debug_plane "$PORT" "$WORK_DIR/debug-$engine"
  check_canary "$PORT"
  echo "=== $engine: /metrics exposition lint (two scrapes) ==="
  python3 "$(dirname "$0")/check_metrics.py" \
          "$WORK_DIR/metrics-$engine-1.txt" "$WORK_DIR/metrics-$engine-2.txt"
  grep -q "vchain_store_appends_total" "$WORK_DIR/metrics-$engine-2.txt" || {
    echo "store tier missing from /metrics"; exit 1; }
  grep -q "vchain_service_query_stage_seconds_bucket" \
          "$WORK_DIR/metrics-$engine-2.txt" || {
    echo "service stage histograms missing from /metrics"; exit 1; }
  first_hash=$HASH
  stop_spd

  echo "=== $engine: restart from the persisted store ==="
  start_spd "$engine" "$store" "$WORK_DIR/spd-$engine-reopen.log"
  if [[ "$HASH" != "$first_hash" ]]; then
    echo "reopened store answered with different bytes: $HASH vs $first_hash"
    exit 1
  fi
  "$CLIENT" --engine "$engine" --port "$PORT" --demo-query \
            --expect-hash "$HASH"
  stop_spd

  echo "=== $engine: live subscription (subscribe -> mine -> notify -> verify) ==="
  # In-memory chain that keeps mining while serving: the client registers
  # the demo query as a standing subscription over the wire, then every
  # notification must decode from its canonical bytes and verify against
  # the client's own header chain before it counts. No --expect-hash here:
  # the chain grows underneath the query, so the startup hash is stale by
  # design.
  start_spd "$engine" "" "$WORK_DIR/spd-$engine-sub.log" --mine-every 150
  "$CLIENT" --engine "$engine" --port "$PORT" --demo-query \
            --subscribe 2 --subscribe-timeout-s 30
  stop_spd
done

echo "e2e wire test: all engines OK"

#!/usr/bin/env python3
"""Bench-regression guard: compare freshly generated BENCH_*.json files
against the committed baselines in bench/results/.

Every figure/bench driver emits rows of {"op", "n", "median_ns",
"throughput"} (bench/harness.h BenchJson). This tool matches rows by
(op, n) across a baseline directory and a current directory and fails
(exit 1) when any matched row's median_ns regressed by more than
--threshold (default 0.30 = +30%).

Rows are skipped, never failed, when:
  * the file or the (op, n) row exists on only one side (new/retired ops);
  * the baseline median is below --min-ns (sub-microsecond timings are
    dominated by jitter, not by the code under test).

Usage:
  tools/bench_diff.py --baseline bench/results --current /tmp/bench-out
  tools/bench_diff.py ... --threshold 0.5 --only BENCH_net_roundtrip.json
"""

import argparse
import json
import pathlib
import sys


def load_rows(path: pathlib.Path):
    """-> {(op, n): median_ns}; last occurrence of a key wins."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row["op"], row["n"])] = float(row["median_ns"])
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, type=pathlib.Path,
                    help="directory with the committed BENCH_*.json files")
    ap.add_argument("--current", required=True, type=pathlib.Path,
                    help="directory with freshly generated BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="fail when median_ns grows by more than this "
                         "fraction (default: 0.30)")
    ap.add_argument("--min-ns", type=float, default=1000.0,
                    help="ignore rows whose baseline median is below this "
                         "(jitter floor; default: 1000)")
    ap.add_argument("--only", nargs="*", default=None,
                    help="restrict the comparison to these file names")
    args = ap.parse_args()

    current_files = sorted(args.current.glob("BENCH_*.json"))
    if args.only:
        current_files = [f for f in current_files if f.name in set(args.only)]
    if not current_files:
        print(f"bench_diff: no BENCH_*.json files under {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for current_path in current_files:
        baseline_path = args.baseline / current_path.name
        if not baseline_path.exists():
            print(f"  [skip] {current_path.name}: no committed baseline")
            continue
        baseline = load_rows(baseline_path)
        current = load_rows(current_path)
        for key in sorted(baseline.keys() & current.keys(),
                          key=lambda k: (str(k[0]), k[1])):
            base_ns, cur_ns = baseline[key], current[key]
            if base_ns < args.min_ns:
                continue
            compared += 1
            delta = (cur_ns - base_ns) / base_ns
            op, n = key
            line = (f"  {current_path.name}: {op} (n={n}) "
                    f"{base_ns:.0f} -> {cur_ns:.0f} ns ({delta:+.1%})")
            if delta > args.threshold:
                regressions.append(line)
                print(line + "  REGRESSION")
            else:
                print(line)

    print(f"bench_diff: compared {compared} rows, "
          f"{len(regressions)} regression(s) beyond +{args.threshold:.0%}")
    if regressions:
        print("\nregressed rows:")
        for line in regressions:
            print(line)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

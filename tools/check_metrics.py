#!/usr/bin/env python3
"""Lint a Prometheus text exposition (version 0.0.4) from GET /metrics.

Checks, in CI (tools/e2e_wire_test.sh scrapes a live vchain_spd twice):

  * structure: every sample belongs to a family that declared # HELP and
    # TYPE exactly once; no family block appears twice; samples parse.
  * naming: families are vchain_<tier>_<name> with a known tier; counters
    end in _total; histograms end in _seconds (latency) or _bytes.
  * histogram math: _bucket series are cumulative and non-decreasing in le,
    the +Inf bucket equals _count, and _sum is present.
  * across two scrapes: counters and histogram counts never decrease
    (monotonicity — a restart or a double-registration bug shows up here).

Usage: check_metrics.py SCRAPE1 [SCRAPE2]
Exit 0 = clean; 1 = violations (printed one per line).
"""

import re
import sys

KNOWN_TIERS = ("store", "core", "service", "sub", "http", "canary", "test")

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r'\s+(?P<value>[^\s]+)(?:\s+\d+)?$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse(path):
    """-> (families: name -> {help, type}, samples: [(name, labels, value)],
    errors)."""
    families = {}
    samples = []
    errors = []
    closed = set()  # families whose block has ended (another family began)
    current = None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue

            def err(msg):
                errors.append(f"{path}:{lineno}: {msg}")

            if line.startswith("#"):
                m = re.match(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$",
                             line)
                if not m:
                    err(f"malformed comment line: {line!r}")
                    continue
                kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
                if name in closed:
                    err(f"duplicate family block for {name}")
                if name != current and current is not None:
                    closed.add(current)
                current = name
                fam = families.setdefault(name, {"help": None, "type": None})
                if kind == "HELP":
                    if fam["help"] is not None:
                        err(f"duplicate HELP for {name}")
                    fam["help"] = rest
                else:
                    if fam["type"] is not None:
                        err(f"duplicate TYPE for {name}")
                    if rest not in ("counter", "gauge", "histogram", "summary",
                                    "untyped"):
                        err(f"unknown TYPE {rest!r} for {name}")
                    fam["type"] = rest
                continue

            m = SAMPLE_RE.match(line)
            if not m:
                err(f"unparseable sample line: {line!r}")
                continue
            name = m.group("name")
            labels = {}
            if m.group("labels"):
                labels = dict(LABEL_RE.findall(m.group("labels")))
            raw = m.group("value")
            if raw == "+Inf":
                value = float("inf")
            elif raw == "-Inf":
                value = float("-inf")
            else:
                try:
                    value = float(raw)
                except ValueError:
                    err(f"non-numeric sample value {raw!r} for {name}")
                    continue
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            fam_name = base if base in families else name
            if fam_name not in families:
                err(f"sample {name} has no # TYPE/# HELP declaration")
            elif fam_name != current:
                err(f"sample {name} outside its family block "
                    f"(family {fam_name}, current block {current})")
            samples.append((name, labels, value))
    return families, samples, errors


def check_naming(families):
    errors = []
    for name, fam in sorted(families.items()):
        if fam["help"] is None:
            errors.append(f"family {name} is missing # HELP")
        if fam["type"] is None:
            errors.append(f"family {name} is missing # TYPE")
            continue
        m = re.match(r"^vchain_([a-z0-9]+)_", name)
        if not m:
            errors.append(f"family {name} does not follow vchain_<tier>_<name>")
        elif m.group(1) not in KNOWN_TIERS:
            errors.append(f"family {name} has unknown tier {m.group(1)!r} "
                          f"(known: {', '.join(KNOWN_TIERS)})")
        if fam["type"] == "counter" and not name.endswith("_total"):
            errors.append(f"counter {name} must end in _total")
        if fam["type"] == "histogram" and not re.search(r"_(seconds|bytes)$",
                                                        name):
            errors.append(f"histogram {name} must end in _seconds or _bytes")
    return errors


def labels_key(labels, drop=("le",)):
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def check_histograms(families, samples):
    errors = []
    buckets = {}  # (family, child) -> [(le, value)]
    counts = {}
    sums = set()
    for name, labels, value in samples:
        for suffix, store in (("_bucket", buckets), ("_count", counts),
                              ("_sum", None)):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            if families.get(base, {}).get("type") != "histogram":
                continue
            key = (base, labels_key(labels))
            if suffix == "_bucket":
                if "le" not in labels:
                    errors.append(f"{name}: bucket sample without le label")
                    continue
                le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                buckets.setdefault(key, []).append((le, value))
            elif suffix == "_count":
                counts[key] = value
            else:
                sums.add(key)
    for key, series in sorted(buckets.items()):
        base, child = key
        label_str = f"{base}{dict(child) if child else ''}"
        series.sort()
        prev = -1.0
        for le, value in series:
            if value < prev:
                errors.append(
                    f"{label_str}: bucket counts not cumulative at le={le}")
            prev = value
        if series[-1][0] != float("inf"):
            errors.append(f"{label_str}: missing +Inf bucket")
        elif key in counts and series[-1][1] != counts[key]:
            errors.append(f"{label_str}: +Inf bucket {series[-1][1]} != "
                          f"_count {counts[key]}")
        if key not in counts:
            errors.append(f"{label_str}: missing _count")
        if key not in sums:
            errors.append(f"{label_str}: missing _sum")
    return errors


def check_span_stage_reconciliation(samples):
    """The per-stage histograms are *projections* of the query span tree
    (core::QueryTrace::ProjectSpans), not an independent mechanism — so for
    a scrape where every query fed the stages (each stage _count equals the
    query _count; the untraced fast path feeds only the total), the summed
    stage time must reconcile with total query time. A stage that silently
    stopped being fed, or a span double-counted into two stages, shows up
    here."""
    total_sum = None
    total_count = None
    stage_sums = {}
    stage_counts = {}
    for name, labels, value in samples:
        if name == "vchain_service_query_seconds_sum":
            total_sum = value
        elif name == "vchain_service_query_seconds_count":
            total_count = value
        elif name == "vchain_service_query_stage_seconds_sum":
            stage_sums[labels.get("stage", "?")] = value
        elif name == "vchain_service_query_stage_seconds_count":
            stage_counts[labels.get("stage", "?")] = value
    if total_sum is None or total_count is None or not stage_sums:
        return []
    if total_count == 0 or any(c != total_count
                               for c in stage_counts.values()):
        return []  # some queries bypassed tracing: stages are a subset
    if total_sum < 0.005:
        return []  # too little signal to reconcile against jitter
    stage_total = sum(stage_sums.values())
    errors = []
    # Stages partition the root span minus small unattributed gaps, so the
    # sum may fall short but never meaningfully exceed the total.
    if stage_total > total_sum * 1.10:
        errors.append(
            f"stage sums {stage_total:.6f}s exceed total query time "
            f"{total_sum:.6f}s (double-counted span?)")
    if stage_total < total_sum * 0.5:
        errors.append(
            f"stage sums {stage_total:.6f}s cover under half of total query "
            f"time {total_sum:.6f}s (stage not fed from the span tree?)")
    return errors


def monotonic_values(families, samples):
    """Counter samples and histogram bucket/count samples, keyed for
    cross-scrape comparison."""
    out = {}
    for name, labels, value in samples:
        base = re.sub(r"_(bucket|count)$", "", name)
        fam = families.get(name) or families.get(base)
        if fam is None:
            continue
        if fam["type"] == "counter" or (fam["type"] == "histogram"
                                        and name != base):
            out[(name, tuple(sorted(labels.items())))] = value
    return out


def check_monotonic(first, second):
    errors = []
    for key, v1 in sorted(first.items()):
        v2 = second.get(key)
        if v2 is None:
            errors.append(f"{key[0]}{dict(key[1])}: disappeared between scrapes")
        elif v2 < v1:
            errors.append(f"{key[0]}{dict(key[1])}: went backwards "
                          f"({v1} -> {v2})")
    return errors


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    parsed = []
    for path in argv[1:]:
        families, samples, errs = parse(path)
        errors += errs
        errors += check_naming(families)
        errors += check_histograms(families, samples)
        errors += check_span_stage_reconciliation(samples)
        parsed.append((families, samples))
    if len(parsed) == 2:
        errors += check_monotonic(monotonic_values(*parsed[0]),
                                  monotonic_values(*parsed[1]))
    for e in errors:
        print(f"check_metrics: {e}")
    if errors:
        print(f"check_metrics: {len(errors)} violation(s) in "
              f"{', '.join(argv[1:])}")
        return 1
    nfam = len(parsed[0][0])
    print(f"check_metrics: OK ({nfam} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Fig 18 (Appendix D.2) — impact of range selectivity (WX).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSelectivityFigure("Fig 18",
                                      vchain::workload::DatasetKind::kWX);
  return 0;
}

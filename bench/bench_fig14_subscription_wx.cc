// Fig 14 — subscription performance over the subscription period (WX).

#include "sub_harness.h"

int main() {
  vchain::bench::RunSubscriptionFigure("Fig 14",
                                       vchain::workload::DatasetKind::kWX);
  return 0;
}

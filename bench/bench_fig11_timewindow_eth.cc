// Fig 11 — time-window query performance on the ETH workload.

#include "harness.h"

int main() {
  vchain::bench::RunTimeWindowFigure("Fig 11",
                                     vchain::workload::DatasetKind::kETH);
  return 0;
}

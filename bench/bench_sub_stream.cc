// Streaming subscription delivery latency vs subscriber count: N standing
// queries registered over the wire, one block mined, and the clock runs
// until every subscriber has long-polled, decoded, and *verified* its
// notification — the full client-side trust path, not just transport.
// Emits BENCH_sub_stream.json for cross-PR tracking.
//
//   notify-all : wall time from Append() to the last of N subscribers
//                holding a verified notification for the new block
//                (n = subscriber count; throughput = notifications/s)
//
// Growth with N separates the per-subscriber cost (matching, wire frame,
// client verify) from the per-block cost (hub wakeup, header sync).
//
// `--quick` (CI smoke) shrinks counts/iterations; absolute numbers come
// from full runs.

#include "harness.h"
#include "net/sp_client.h"
#include "net/sp_server.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

double MedianSeconds(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  Scale scale = GetScale();
  // Same mined setup in both modes: quick trims iterations and counts
  // only, so a quick row's (op, n) measures the same workload as the
  // committed baseline row tools/bench_diff.py matches it against.
  const size_t setup_blocks = scale.setup_blocks;
  const size_t iters = quick ? 2 : 7;
  std::vector<size_t> counts =
      quick ? std::vector<size_t>{2, 4} : scale.sub_query_counts;

  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ,
                           scale.objects_per_block);

  std::printf("# sub stream — wire notification latency vs subscriber count "
              "(%zu iters%s)\n",
              iters, quick ? ", quick" : "");
  std::printf("%-16s %-18s %6s %14s %12s\n", "op", "engine", "subs",
              "median_ns", "notif/s");
  BenchJson json("sub_stream");

  for (api::EngineKind kind :
       {api::EngineKind::kMockAcc2, api::EngineKind::kAcc2}) {
    const char* engine_name = api::EngineKindName(kind);

    api::ServiceOptions opts;
    opts.engine = kind;
    opts.config = ConfigFor(profile, IndexMode::kBoth);
    opts.oracle = SharedOracle();
    opts.prover_mode = ProverMode::kTrustedFast;
    auto svc = api::Service::Open(opts).TakeValue();

    DatasetGenerator gen(profile, /*seed=*/1234);
    for (size_t b = 0; b < setup_blocks; ++b) {
      auto objs = gen.NextBlock();
      uint64_t ts = objs.front().timestamp;
      if (!svc->Append(std::move(objs), ts).ok()) std::abort();
    }

    net::SpServer::Options sopts;
    sopts.http.num_threads = 2;
    auto server = net::SpServer::Start(svc.get(), sopts).TakeValue();
    net::SpClient::Options copts;
    copts.port = server->port();
    copts.verify = opts;  // same shared oracle: setup cost not re-paid
    auto client = net::SpClient::Connect(copts).TakeValue();
    chain::LightClient light = client->NewLightClient();
    if (!client->SyncHeaders(&light).ok()) std::abort();

    auto headers = svc->Headers(0, setup_blocks - 1).TakeValue();
    DatasetGenerator qgen(profile, /*seed=*/99);

    for (size_t n : counts) {
      // N distinct standing queries over the wire. Every mined block owes
      // each of them one notification (match or verified non-match).
      std::vector<net::SpClient::SubscriptionHandle> handles;
      handles.reserve(n);
      for (size_t s = 0; s < n; ++s) {
        core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                       profile.default_clause_size,
                                       headers.front().timestamp,
                                       headers.back().timestamp);
        auto sub = client->Subscribe(q);
        if (!sub.ok()) std::abort();
        handles.push_back(std::move(sub.value()));
      }

      std::vector<double> samples;
      samples.reserve(iters);
      for (size_t i = 0; i < iters; ++i) {
        auto objs = gen.NextBlock();
        uint64_t ts = objs.front().timestamp;
        Timer t;
        if (!svc->Append(std::move(objs), ts).ok()) std::abort();
        // Every subscriber long-polls until its verified notification for
        // the new block arrives (Poll returns only verified events).
        for (auto& h : handles) {
          size_t got = 0;
          while (got == 0) {
            auto events = h.Poll(&light, /*wait_ms=*/2000);
            if (!events.ok()) std::abort();
            got = events.value().size();
          }
        }
        samples.push_back(t.ElapsedSeconds());
      }
      double median = MedianSeconds(&samples);
      std::printf("%-16s %-18s %6zu %14.0f %12.1f\n", "notify-all",
                  engine_name, n, median * 1e9,
                  median > 0 ? n / median : 0);
      json.Add(std::string("notify-all-") + engine_name, n, median * 1e9,
               median > 0 ? n / median : 0);

      for (auto& h : handles) {
        if (!h.Unsubscribe().ok()) std::abort();
      }
    }
  }
  return 0;
}

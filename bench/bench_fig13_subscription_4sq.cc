// Fig 13 — subscription performance over the subscription period (4SQ):
// accumulated SP CPU, user CPU, VO size for realtime-acc1/acc2 and
// lazy-acc2.

#include "sub_harness.h"

int main() {
  vchain::bench::RunSubscriptionFigure("Fig 13",
                                       vchain::workload::DatasetKind::k4SQ);
  return 0;
}

// Overload behavior: keep-alive query latency/goodput with the server
// alone vs under a 4x connection flood, plus how much of the flood the
// admission control sheds. The availability claim being tracked: shedding
// is what keeps the established clients' goodput near baseline instead of
// everyone timing out together. Emits BENCH_overload.json.
//
//   query_p99_baseline : p99 keep-alive query latency, no flood (ns)
//   query_p99_flood    : same clients while 4x flooders hammer accept
//   shed_rate          : fraction of flood connections answered 503/429
//
// The p99 goes in the median_ns column (the cross-PR diff tooling keys on
// op name, not on which percentile the column holds); throughput is the
// keep-alive clients' aggregate goodput in queries/s.
//
// `--quick` (CI smoke) shrinks the chain and iteration counts so the
// binary proves the shed path works in seconds.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "harness.h"
#include "net/sp_client.h"
#include "net/sp_server.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

double Percentile(std::vector<double>* samples, double p) {
  std::sort(samples->begin(), samples->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples->size()));
  return (*samples)[std::min(idx, samples->size() - 1)];
}

/// One flood connection: connect, fire a healthz, read whatever comes back
/// (200, 429, 503, or a slammed door), close. Returns true when the server
/// answered at all — the flood must be *shed*, not ignored into timeouts.
bool FloodOnce(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  bool answered = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char req[] =
        "GET /healthz HTTP/1.1\r\nHost: sp\r\nConnection: close\r\n\r\n";
    if (::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL) > 0) {
      char buf[256];
      answered = ::recv(fd, buf, sizeof(buf), 0) > 0;
    }
  }
  ::close(fd);
  return answered;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  Scale scale = GetScale();
  const size_t blocks = quick ? 8 : scale.window_blocks.back();
  const size_t iters_per_client = quick ? 40 : 300;
  const size_t n_clients = 2;
  const size_t n_flooders = 4 * n_clients;  // the 4x overload

  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ,
                           scale.objects_per_block);

  api::ServiceOptions opts;
  opts.engine = api::EngineKind::kMockAcc2;
  opts.config = ConfigFor(profile, IndexMode::kBoth);
  opts.oracle = SharedOracle();
  opts.prover_mode = ProverMode::kTrustedFast;
  auto svc = api::Service::Open(opts).TakeValue();

  DatasetGenerator gen(profile, /*seed=*/1234);
  for (size_t b = 0; b < blocks; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = objs.front().timestamp;
    if (!svc->Append(std::move(objs), ts).ok()) std::abort();
  }

  // Two workers for the two keep-alive clients; a short accept queue so
  // the flood actually hits the shed path instead of parking forever.
  net::SpServer::Options sopts;
  sopts.http.num_threads = n_clients;
  sopts.http.max_connections = n_clients + 2;
  sopts.http.accept_queue = 2;
  auto server = net::SpServer::Start(svc.get(), sopts).TakeValue();

  auto headers = svc->Headers(0, blocks - 1).TakeValue();
  DatasetGenerator qgen(profile, /*seed=*/1234);
  core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                 profile.default_clause_size,
                                 headers[blocks / 2].timestamp,
                                 headers.back().timestamp);

  // The keep-alive clients connect once, BEFORE any flood: the claim under
  // test is that established connections keep being served at near-baseline
  // goodput while the admission control sheds newcomers. (A client that had
  // to connect mid-flood would be a newcomer itself and correctly eat 503s.)
  std::vector<std::unique_ptr<net::SpClient>> clients;
  for (size_t c = 0; c < n_clients; ++c) {
    net::SpClient::Options copts;
    copts.port = server->port();
    copts.verify = opts;
    copts.retry.max_attempts = 1;  // raw latency, no retry smoothing
    clients.push_back(net::SpClient::Connect(copts).TakeValue());
  }

  // One measurement pass: each keep-alive client runs `iters_per_client`
  // queries on its own connection; per-request latencies are pooled.
  auto run_clients = [&](std::vector<double>* latencies, double* goodput) {
    std::vector<std::vector<double>> per_client(n_clients);
    std::vector<std::thread> threads;
    Timer wall;
    for (size_t c = 0; c < n_clients; ++c) {
      threads.emplace_back([&, c] {
        per_client[c].reserve(iters_per_client);
        for (size_t i = 0; i < iters_per_client; ++i) {
          Timer t;
          if (!clients[c]->Query(q).ok()) std::abort();
          per_client[c].push_back(t.ElapsedSeconds());
        }
      });
    }
    for (auto& t : threads) t.join();
    double seconds = wall.ElapsedSeconds();
    for (auto& samples : per_client) {
      latencies->insert(latencies->end(), samples.begin(), samples.end());
    }
    *goodput = static_cast<double>(n_clients * iters_per_client) / seconds;
  };

  std::printf("# overload — keep-alive query latency with and without a "
              "%zux connection flood (%zu blocks%s)\n",
              n_flooders / n_clients, blocks, quick ? ", quick" : "");
  std::printf("%-20s %14s %14s\n", "op", "p99_ns", "goodput_qps");
  BenchJson json("overload");

  std::vector<double> baseline;
  double baseline_qps = 0;
  run_clients(&baseline, &baseline_qps);
  double baseline_p99 = Percentile(&baseline, 0.99) * 1e9;
  std::printf("%-20s %14.0f %14.1f\n", "query_p99_baseline", baseline_p99,
              baseline_qps);
  json.Add("query_p99_baseline", blocks, baseline_p99, baseline_qps);

  net::HttpServerStats before = server->http_stats();

  std::atomic<bool> flooding{true};
  std::atomic<uint64_t> flood_attempts{0};
  std::atomic<uint64_t> flood_unanswered{0};
  std::vector<std::thread> flooders;
  for (size_t f = 0; f < n_flooders; ++f) {
    flooders.emplace_back([&] {
      while (flooding.load()) {
        flood_attempts.fetch_add(1);
        if (!FloodOnce(server->port())) flood_unanswered.fetch_add(1);
        // Pace each flooder: a real flood arrives over a network, it does
        // not timeshare the server's cores with a spin loop. The aggregate
        // is still hundreds of connection attempts per second against a
        // server whose admission control only has room for the two
        // established clients.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  std::vector<double> flooded;
  double flooded_qps = 0;
  run_clients(&flooded, &flooded_qps);
  flooding.store(false);
  for (auto& t : flooders) t.join();

  net::HttpServerStats after = server->http_stats();
  uint64_t shed = (after.shed_overload - before.shed_overload) +
                  (after.rate_limited - before.rate_limited);
  uint64_t attempts = flood_attempts.load();
  double shed_rate =
      attempts > 0 ? static_cast<double>(shed) / static_cast<double>(attempts)
                   : 0;

  double flooded_p99 = Percentile(&flooded, 0.99) * 1e9;
  std::printf("%-20s %14.0f %14.1f\n", "query_p99_flood", flooded_p99,
              flooded_qps);
  json.Add("query_p99_flood", blocks, flooded_p99, flooded_qps);
  std::printf("%-20s %14.2f %14s   (%llu of %llu flood conns, "
              "%llu unanswered)\n",
              "shed_rate", shed_rate, "-",
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(attempts),
              static_cast<unsigned long long>(flood_unanswered.load()));
  json.Add("shed_rate", attempts, shed_rate * 100, 0);

  std::printf("# goodput under flood: %.0f%% of baseline; peak tracked "
              "connections %llu (cap %zu)\n",
              baseline_qps > 0 ? 100 * flooded_qps / baseline_qps : 0,
              static_cast<unsigned long long>(after.active_connections),
              sopts.http.max_connections);
  return 0;
}

// Wire-protocol roundtrip overhead: the same query served in-process
// (Service::Query) vs over the loopback HTTP wire (SpClient -> SpServer),
// plus the fixed transport floor (healthz) and the batch amortization.
// Emits BENCH_net_roundtrip.json for cross-PR tracking.
//
//   healthz          : minimal request/response — the transport floor
//   inprocess-query  : Service::Query, no wire (the lower bound)
//   wire-query       : JSON in, canonical VO bytes out, keep-alive socket
//   wire-query-x16   : 16-query batch, per-query cost (one HTTP exchange)
//
// `--quick` (CI smoke) shrinks iterations so the binary proves the wire
// path works in seconds; absolute numbers come from full runs.

#include "harness.h"
#include "net/sp_client.h"
#include "net/sp_server.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

double MedianSeconds(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  Scale scale = GetScale();
  const size_t blocks = quick ? 8 : scale.window_blocks.back();
  const size_t iters = quick ? 3 : 25;
  const size_t batch = 16;

  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ,
                           scale.objects_per_block);

  std::printf("# net roundtrip — wire vs in-process query latency "
              "(%zu blocks, %zu iters%s)\n",
              blocks, iters, quick ? ", quick" : "");
  std::printf("%-24s %-18s %14s %12s\n", "op", "engine", "median_ns",
              "ops/s");
  BenchJson json("net_roundtrip");

  for (api::EngineKind kind :
       {api::EngineKind::kMockAcc2, api::EngineKind::kAcc2}) {
    const char* engine_name = api::EngineKindName(kind);

    api::ServiceOptions opts;
    opts.engine = kind;
    opts.config = ConfigFor(profile, IndexMode::kBoth);
    opts.oracle = SharedOracle();
    opts.prover_mode = ProverMode::kTrustedFast;
    auto svc = api::Service::Open(opts).TakeValue();

    DatasetGenerator gen(profile, /*seed=*/1234);
    for (size_t b = 0; b < blocks; ++b) {
      auto objs = gen.NextBlock();
      uint64_t ts = objs.front().timestamp;
      if (!svc->Append(std::move(objs), ts).ok()) std::abort();
    }

    net::SpServer::Options sopts;
    sopts.http.num_threads = 2;
    auto server = net::SpServer::Start(svc.get(), sopts).TakeValue();
    net::SpClient::Options copts;
    copts.port = server->port();
    copts.verify = opts;  // same shared oracle: setup cost not re-paid
    auto client = net::SpClient::Connect(copts).TakeValue();

    chain::LightClient light = client->NewLightClient();
    if (!client->SyncHeaders(&light).ok()) std::abort();

    // One representative query over the newer half of the chain.
    auto headers = svc->Headers(0, blocks - 1).TakeValue();
    DatasetGenerator qgen(profile, /*seed=*/1234);
    core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                   profile.default_clause_size,
                                   headers[blocks / 2].timestamp,
                                   headers.back().timestamp);

    auto measure = [&](const char* op, auto body) {
      std::vector<double> samples;
      samples.reserve(iters);
      for (size_t i = 0; i < iters; ++i) {
        Timer t;
        body();
        samples.push_back(t.ElapsedSeconds());
      }
      double median = MedianSeconds(&samples);
      std::printf("%-24s %-18s %14.0f %12.1f\n", op, engine_name,
                  median * 1e9, median > 0 ? 1.0 / median : 0);
      json.Add(std::string(op) + "-" + engine_name, blocks, median * 1e9,
               median > 0 ? 1.0 / median : 0);
    };

    measure("healthz", [&] {
      if (!client->Healthz().ok()) std::abort();
    });
    measure("inprocess-query", [&] {
      if (!svc->Query(q).ok()) std::abort();
    });
    measure("wire-query", [&] {
      auto r = client->Query(q);
      if (!r.ok()) std::abort();
    });
    measure("wire-query-x16", [&] {
      std::vector<core::Query> qs(batch, q);
      auto r = client->QueryBatch(qs);
      if (!r.ok()) std::abort();
    });
  }
  return 0;
}

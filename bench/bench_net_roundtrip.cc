// Wire-protocol roundtrip overhead: the same query served in-process
// (Service::Query) vs over the loopback HTTP wire (SpClient -> SpServer),
// plus the fixed transport floor (healthz) and the batch amortization.
// Emits BENCH_net_roundtrip.json for cross-PR tracking.
//
//   healthz          : minimal request/response — the transport floor
//   inprocess-query  : Service::Query, no wire (the lower bound)
//   wire-query       : JSON in, canonical VO bytes out, keep-alive socket
//   wire-query-x16   : 16-query batch, per-query cost (one HTTP exchange)
//   wire-query-idle  : wire-query again while `--idle N` (default 10000)
//                      idle keep-alive connections are parked on the event
//                      loop — the medians must not move, or idle
//                      subscribers would tax every query (the idle_conns
//                      column records the held count per row)
//
// `--quick` (CI smoke) shrinks iterations so the binary proves the wire
// path works in seconds; absolute numbers come from full runs.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "harness.h"
#include "net/sp_client.h"
#include "net/sp_server.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

double MedianSeconds(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

/// `count` idle keep-alive connections parked on the server's event loop,
/// held open by a forked child. The child's fd table is separate from this
/// process's, so the server's `count` accepted fds and the holder's `count`
/// client fds do not fight over one RLIMIT_NOFILE budget — without the
/// fork, 2x10000 fds overflow a 20k limit and accept() starves.
struct IdleHolder {
  pid_t pid = -1;
  size_t held = 0;  ///< connections the child actually established
};

IdleHolder HoldIdleConnections(uint16_t port, size_t count) {
  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) return {};
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fd[0]);
    ::close(pipe_fd[1]);
    return {};
  }
  if (pid == 0) {
    // Child: connect, report the held count, then sleep until killed.
    // Syscalls only — after fork in a threaded process the heap and any
    // library locks are off limits.
    ::close(pipe_fd[0]);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    uint64_t held = 0;
    for (size_t i = 0; i < count; ++i) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) break;
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(fd);
        break;
      }
      ++held;
    }
    [[maybe_unused]] ssize_t wn =
        ::write(pipe_fd[1], &held, sizeof(held));
    for (;;) ::pause();
  }
  ::close(pipe_fd[1]);
  uint64_t held = 0;
  size_t got = 0;
  while (got < sizeof(held)) {
    ssize_t rn = ::read(pipe_fd[0], reinterpret_cast<char*>(&held) + got,
                        sizeof(held) - got);
    if (rn <= 0) break;
    got += static_cast<size_t>(rn);
  }
  ::close(pipe_fd[0]);
  return {pid, static_cast<size_t>(held)};
}

void ReleaseIdleConnections(IdleHolder* holder) {
  if (holder->pid <= 0) return;
  ::kill(holder->pid, SIGKILL);
  ::waitpid(holder->pid, nullptr, 0);
  holder->pid = -1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  size_t idle_target = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--idle" && i + 1 < argc) {
      idle_target = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  Scale scale = GetScale();
  const size_t blocks = quick ? 8 : scale.window_blocks.back();
  const size_t iters = quick ? 3 : 25;
  const size_t batch = 16;
  if (idle_target == 0) idle_target = quick ? 256 : 10000;

  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ,
                           scale.objects_per_block);

  std::printf("# net roundtrip — wire vs in-process query latency "
              "(%zu blocks, %zu iters%s)\n",
              blocks, iters, quick ? ", quick" : "");
  std::printf("%-24s %-18s %14s %12s %10s\n", "op", "engine", "median_ns",
              "ops/s", "idle_conns");
  BenchJson json("net_roundtrip");

  for (api::EngineKind kind :
       {api::EngineKind::kMockAcc2, api::EngineKind::kAcc2}) {
    const char* engine_name = api::EngineKindName(kind);

    api::ServiceOptions opts;
    opts.engine = kind;
    opts.config = ConfigFor(profile, IndexMode::kBoth);
    opts.oracle = SharedOracle();
    opts.prover_mode = ProverMode::kTrustedFast;
    auto svc = api::Service::Open(opts).TakeValue();

    DatasetGenerator gen(profile, /*seed=*/1234);
    for (size_t b = 0; b < blocks; ++b) {
      auto objs = gen.NextBlock();
      uint64_t ts = objs.front().timestamp;
      if (!svc->Append(std::move(objs), ts).ok()) std::abort();
    }

    net::SpServer::Options sopts;
    sopts.http.num_threads = 2;
    sopts.http.max_connections = idle_target + 16;
    sopts.http.recv_timeout_seconds = 300;  // the idles must outlive the run
    auto server = net::SpServer::Start(svc.get(), sopts).TakeValue();
    net::SpClient::Options copts;
    copts.port = server->port();
    copts.verify = opts;  // same shared oracle: setup cost not re-paid
    auto client = net::SpClient::Connect(copts).TakeValue();

    chain::LightClient light = client->NewLightClient();
    if (!client->SyncHeaders(&light).ok()) std::abort();

    // One representative query over the newer half of the chain.
    auto headers = svc->Headers(0, blocks - 1).TakeValue();
    DatasetGenerator qgen(profile, /*seed=*/1234);
    core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                   profile.default_clause_size,
                                   headers[blocks / 2].timestamp,
                                   headers.back().timestamp);

    size_t held_idle = 0;  // idle keep-alive connections parked right now
    auto measure = [&](const char* op, auto body) {
      std::vector<double> samples;
      samples.reserve(iters);
      for (size_t i = 0; i < iters; ++i) {
        Timer t;
        body();
        samples.push_back(t.ElapsedSeconds());
      }
      double median = MedianSeconds(&samples);
      std::printf("%-24s %-18s %14.0f %12.1f %10zu\n", op, engine_name,
                  median * 1e9, median > 0 ? 1.0 / median : 0, held_idle);
      json.Add(std::string(op) + "-" + engine_name, blocks, median * 1e9,
               median > 0 ? 1.0 / median : 0);
    };

    measure("healthz", [&] {
      if (!client->Healthz().ok()) std::abort();
    });
    measure("inprocess-query", [&] {
      if (!svc->Query(q).ok()) std::abort();
    });
    measure("wire-query", [&] {
      auto r = client->Query(q);
      if (!r.ok()) std::abort();
    });
    measure("wire-query-x16", [&] {
      std::vector<core::Query> qs(batch, q);
      auto r = client->QueryBatch(qs);
      if (!r.ok()) std::abort();
    });

    // The event-loop claim: thousands of idle keep-alive subscribers cost
    // one epoll set, so query medians must not move while they are held.
    // connect() returns at SYN-ACK, before the loop has accepted — wait for
    // steady state so the accept burst is not what gets measured.
    IdleHolder idle = HoldIdleConnections(server->port(), idle_target);
    held_idle = idle.held;
    for (int spins = 0; spins < 2000; ++spins) {
      if (server->http_stats().active_connections > held_idle) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    measure("wire-query-idle", [&] {
      auto r = client->Query(q);
      if (!r.ok()) std::abort();
    });
    ReleaseIdleConnections(&idle);
  }
  return 0;
}

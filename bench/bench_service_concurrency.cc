// Concurrent-SP throughput through the vchain::Service front door.
//
// One disk-backed Service (shared mutex-striped proof cache, shared
// decoded-block LRU) is hammered by 1..8 query threads replaying a fixed
// mixed workload; reported throughput is total queries / wall time. The
// serial point doubles as the regression baseline for the erased API's
// overhead, and every thread cross-checks its responses against the
// single-threaded bytes (a cheap in-bench determinism probe — the real
// proof lives in tests/api/service_test.cc).
//
//   $ ./bench_service_concurrency          # writes BENCH_service_concurrency.json

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "harness.h"

namespace vchain::bench {
namespace {

constexpr uint64_t kBaseTime = 1000;
constexpr uint64_t kTimeStep = 10;

std::vector<std::vector<chain::Object>> MakeBlocks(size_t num_blocks,
                                                   size_t per_block,
                                                   const chain::NumericSchema&
                                                       schema) {
  Rng rng(42);
  static const char* kTags[] = {"Sedan", "Van", "SUV", "Benz", "BMW", "Audi"};
  std::vector<std::vector<chain::Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    std::vector<chain::Object> objs;
    for (size_t i = 0; i < per_block; ++i) {
      chain::Object o;
      o.id = id++;
      o.timestamp = kBaseTime + b * kTimeStep;
      o.numeric = {rng.Below(schema.DomainSize()),
                   rng.Below(schema.DomainSize())};
      o.keywords = {kTags[rng.Below(3)], kTags[3 + rng.Below(3)]};
      objs.push_back(std::move(o));
    }
    out.push_back(std::move(objs));
  }
  return out;
}

std::vector<core::Query> MakeWorkload(size_t num_blocks,
                                      const chain::NumericSchema& schema) {
  uint64_t t_end = kBaseTime + (num_blocks - 1) * kTimeStep;
  uint64_t mid = schema.MaxValue() / 2;
  return {
      api::QueryBuilder().Window(kBaseTime, t_end).Range(0, 0, mid).Build(),
      api::QueryBuilder()
          .Window(kBaseTime + 4 * kTimeStep, t_end - 4 * kTimeStep)
          .Range(0, mid / 2, mid)
          .AllOf({"Sedan"})
          .AnyOf({"Benz", "BMW"})
          .Build(),
      api::QueryBuilder().Window(kBaseTime, t_end).AnyOf({"Van"}).Build(),
      api::QueryBuilder()
          .Window(t_end - 8 * kTimeStep, t_end)
          .Range(1, 0, mid)
          .AnyOf({"SUV", "Audi"})
          .Build(),
  };
}

void RunEngine(api::EngineKind kind, BenchJson* json) {
  chain::NumericSchema schema{2, 8};
  const size_t num_blocks = 24;

  auto dir = std::filesystem::temp_directory_path() /
             ("vchain_bench_svc_" + std::string(api::EngineKindName(kind)));
  std::filesystem::remove_all(dir);

  api::ServiceOptions opts;
  opts.engine = kind;
  opts.config.mode = core::IndexMode::kBoth;
  opts.config.schema = schema;
  opts.config.skiplist_size = 3;
  opts.config.block_cache_blocks = 8;  // below the walk: cache churn on
  opts.proof_cache_shards = 8;
  opts.oracle = SharedOracle();
  opts.prover_mode = ProverMode::kTrustedFast;
  opts.store_dir = dir.string();
  auto svc = api::Service::Open(std::move(opts));
  if (!svc.ok()) {
    std::fprintf(stderr, "open failed: %s\n", svc.status().ToString().c_str());
    return;
  }
  auto blocks = MakeBlocks(num_blocks, 8, schema);
  for (const auto& objs : blocks) {
    if (!svc.value()->Append(objs, objs.front().timestamp).ok()) return;
  }
  auto workload = MakeWorkload(num_blocks, schema);

  // Single-threaded reference pass (also warms nothing: fresh service per
  // engine, and the proof cache is what we are measuring the sharing of).
  std::vector<Bytes> reference;
  for (const auto& q : workload) {
    auto r = svc.value()->Query(q);
    if (!r.ok()) return;
    reference.push_back(r.value().response_bytes);
  }

  const size_t kTotalQueries = 64;  // fixed total, split across threads
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::atomic<int> bad{0};
    Timer wall;
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = 0; i < kTotalQueries / threads; ++i) {
          size_t qi = (i + t) % workload.size();
          auto r = svc.value()->Query(workload[qi]);
          if (!r.ok() || r.value().response_bytes != reference[qi]) {
            bad.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    double secs = wall.ElapsedSeconds();
    double qps = static_cast<double>(kTotalQueries) / secs;
    std::printf("%-10s threads=%zu  %6.2f q/s  (%.1f ms total%s)\n",
                api::EngineKindName(kind), threads, qps, secs * 1e3,
                bad.load() != 0 ? ", MISMATCHES" : "");
    json->Add(std::string(api::EngineKindName(kind)) + "-qps", threads,
              secs / kTotalQueries * 1e9, qps);
    std::fflush(stdout);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vchain::bench

int main() {
  using vchain::api::EngineKind;
  std::printf("# service_concurrency — Service::Query throughput vs threads\n");
  std::printf("# disk-backed store, shared striped proof cache, fixed 64-query "
              "workload\n");
  vchain::bench::BenchJson json("service_concurrency");
  vchain::bench::RunEngine(EngineKind::kMockAcc2, &json);
  vchain::bench::RunEngine(EngineKind::kAcc2, &json);
  vchain::bench::RunEngine(EngineKind::kAcc1, &json);
  return 0;
}

// Per-stage query cost breakdown from the live trace (core/query_trace.h):
// where does a server-side query's wall time actually go, per engine?
// Reproduces the paper's SP cost decomposition (vChain §8) as medians of
// the traced stages rather than ad-hoc stopwatch calls, so this bench and
// the production /metrics histograms can never disagree on definitions.
//
//   total            : Service::Query end to end (serialization included)
//   setup            : validation + keyword mapping + processor setup
//   window_lookup    : [ts, te] -> height range
//   match_walk       : block walk, clause matching, skip attempts
//   aggregate        : multiset summing + digesting (contains the MSM)
//   prove            : deferred disjointness proving
//   serialize        : canonical response encoding
//   msm              : informational sub-stage of aggregate
//
// A second, untraced service (ServiceOptions::tracing = false, the true
// zero-instrumentation path) answers the same query; `total_untraced-<e>`
// and `trace_overhead_pct-<e>` pin the introspection plane's cost — the
// acceptance bound is a median overhead <= 3%.
//
// Emits BENCH_query_stages.json. `--quick` shrinks the workload for CI
// smoke; absolute numbers come from full runs.

#include "core/query_trace.h"
#include "harness.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

double Median(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  Scale scale = GetScale();
  const size_t blocks = quick ? 8 : scale.window_blocks.back();
  const size_t iters = quick ? 3 : 25;

  DatasetProfile profile = workload::ProfileFor(workload::DatasetKind::k4SQ,
                                                scale.objects_per_block);

  std::printf("# query stages — per-stage server-side cost from the trace "
              "(%zu blocks, %zu iters%s)\n",
              blocks, iters, quick ? ", quick" : "");
  std::printf("%-16s %-18s %14s %9s\n", "stage", "engine", "median_ns",
              "share");
  BenchJson json("query_stages");

  for (api::EngineKind kind :
       {api::EngineKind::kMockAcc2, api::EngineKind::kAcc2}) {
    const char* engine_name = api::EngineKindName(kind);

    api::ServiceOptions opts;
    opts.engine = kind;
    opts.config = ConfigFor(profile, IndexMode::kBoth);
    opts.oracle = SharedOracle();
    opts.prover_mode = ProverMode::kTrustedFast;
    api::ServiceOptions opts_untraced = opts;
    opts_untraced.tracing = false;
    auto svc = api::Service::Open(opts).TakeValue();
    auto svc_untraced = api::Service::Open(opts_untraced).TakeValue();

    DatasetGenerator gen(profile, /*seed=*/1234);
    DatasetGenerator gen2(profile, /*seed=*/1234);
    for (size_t b = 0; b < blocks; ++b) {
      auto objs = gen.NextBlock();
      auto objs2 = gen2.NextBlock();
      uint64_t ts = objs.front().timestamp;
      if (!svc->Append(std::move(objs), ts).ok()) std::abort();
      if (!svc_untraced->Append(std::move(objs2), ts).ok()) std::abort();
    }

    auto headers = svc->Headers(0, blocks - 1).TakeValue();
    DatasetGenerator qgen(profile, /*seed=*/1234);
    core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                   profile.default_clause_size,
                                   headers[blocks / 2].timestamp,
                                   headers.back().timestamp);

    struct StageSamples {
      const char* name;
      std::vector<double> ns;
    };
    StageSamples stages[] = {{"total"},   {"setup"},     {"window_lookup"},
                             {"match_walk"}, {"aggregate"}, {"prove"},
                             {"serialize"},  {"msm"}};
    for (size_t i = 0; i < iters; ++i) {
      core::QueryTrace t;
      if (!svc->Query(q, &t).ok()) std::abort();
      double vals[] = {static_cast<double>(t.total_ns),
                       static_cast<double>(t.setup_ns),
                       static_cast<double>(t.window_lookup_ns),
                       static_cast<double>(t.match_walk_ns),
                       static_cast<double>(t.aggregate_ns),
                       static_cast<double>(t.prove_ns),
                       static_cast<double>(t.serialize_ns),
                       static_cast<double>(t.msm_ns)};
      for (size_t s = 0; s < 8; ++s) stages[s].ns.push_back(vals[s]);
    }
    // The untraced control: same chain, same query, tracing compiled in
    // but disabled — wall-clocked from outside since there is no trace to
    // read. Interleaving would hide cache asymmetry, but each service owns
    // its caches, so a straight second loop measures the same steady state.
    std::vector<double> untraced_ns;
    for (size_t i = 0; i < iters; ++i) {
      uint64_t t0 = metrics::MonotonicNanos();
      if (!svc_untraced->Query(q).ok()) std::abort();
      untraced_ns.push_back(
          static_cast<double>(metrics::MonotonicNanos() - t0));
    }

    double total_median = Median(&stages[0].ns);
    for (auto& stage : stages) {
      double median = Median(&stage.ns);
      double share = total_median > 0 ? median / total_median : 0;
      std::printf("%-16s %-18s %14.0f %8.1f%%\n", stage.name, engine_name,
                  median, share * 100);
      json.Add(std::string(stage.name) + "-" + engine_name, blocks, median,
               median > 0 ? 1e9 / median : 0);
    }
    double untraced_median = Median(&untraced_ns);
    double overhead_pct =
        untraced_median > 0
            ? (total_median - untraced_median) / untraced_median * 100
            : 0;
    std::printf("%-16s %-18s %14.0f %8s\n", "total_untraced", engine_name,
                untraced_median, "-");
    std::printf("%-16s %-18s %13.1f%% %8s\n", "trace_overhead", engine_name,
                overhead_pct, "-");
    json.Add(std::string("total_untraced-") + engine_name, blocks,
             untraced_median, untraced_median > 0 ? 1e9 / untraced_median : 0);
    json.Add(std::string("trace_overhead_pct-") + engine_name, blocks,
             overhead_pct, 0);
  }
  return 0;
}

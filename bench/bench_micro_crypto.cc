// Micro-benchmarks for the cryptographic substrate and accumulator
// primitives (google-benchmark). These anchor the absolute-cost differences
// between this reproduction and the paper's MCL/Flint-based prototype when
// interpreting the figure-level benches.

#include <benchmark/benchmark.h>

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/polynomial.h"
#include "common/rand.h"
#include "crypto/pairing.h"
#include "crypto/sha256.h"

using namespace vchain;
using namespace vchain::crypto;
using namespace vchain::accum;

namespace {

std::shared_ptr<KeyOracle> Oracle() {
  static auto kOracle = KeyOracle::Create(/*seed=*/1, AccParams{16});
  return kOracle;
}

Multiset RandomMultiset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Multiset m;
  for (size_t i = 0; i < n; ++i) m.Add(rng.Next() | 1);
  return m;
}

void BM_FpMul(benchmark::State& state) {
  Fp x = Fp::FromUint64(0x123456789abcdefULL);
  Fp y = Fp::FromUint64(0xfedcba987654321ULL);
  for (auto _ : state) {
    x = x * y;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FpMul);

void BM_FpInverse(benchmark::State& state) {
  Fp x = Fp::FromUint64(0x123456789abcdefULL);
  for (auto _ : state) {
    Fp inv = x.Inverse();
    benchmark::DoNotOptimize(inv);
    x = inv + Fp::One();
  }
}
BENCHMARK(BM_FpInverse);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    Hash32 h = Sha256Digest(ByteSpan(data.data(), data.size()));
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_G1ScalarMul(benchmark::State& state) {
  G1 g = G1::FromAffine(G1Generator());
  U256 k = Fr::FromUint64(0xDEADBEEF12345ULL).Pow(U256(3)).ToCanonical();
  for (auto _ : state) {
    G1 r = g.ScalarMul(k);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_G2ScalarMul(benchmark::State& state) {
  G2 g = G2::FromAffine(G2Generator());
  U256 k = Fr::FromUint64(0xDEADBEEF12345ULL).Pow(U256(3)).ToCanonical();
  for (auto _ : state) {
    G2 r = g.ScalarMul(k);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2ScalarMul);

U256 RandScalar(Rng* rng) {
  U256 v(rng->Next(), rng->Next(), rng->Next(), rng->Next());
  v.limb[3] &= (1ULL << 62) - 1;
  return Fr::FromU256Reduce(v).ToCanonical();
}

/// Full-width scalars — the acc1 polynomial-commitment workload.
void BM_MultiScalarMulG1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(RandScalar(&rng));
  }
  for (auto _ : state) {
    G1 r = MultiScalarMul(bases, scalars);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MultiScalarMulG1)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Tiny scalars (multiplicity counts) — the acc2 digest workload.
void BM_MultiScalarMulG1SmallScalars(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(43);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(G1Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(U256((rng.Next() % 8) + 1));
  }
  for (auto _ : state) {
    G1 r = MultiScalarMul(bases, scalars);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MultiScalarMulG1SmallScalars)->Arg(64)->Arg(256);

void BM_MultiScalarMulG2(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(44);
  std::vector<G2Affine> bases;
  std::vector<U256> scalars;
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(G2Mul(Fr::FromUint64(rng.Next() | 1)).ToAffine());
    scalars.push_back(RandScalar(&rng));
  }
  for (auto _ : state) {
    G2 r = MultiScalarMul(bases, scalars);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MultiScalarMulG2)->Arg(64);

void BM_MillerLoop(benchmark::State& state) {
  G1Affine p = G1Mul(Fr::FromUint64(7)).ToAffine();
  G2Affine q = G2Mul(Fr::FromUint64(9)).ToAffine();
  for (auto _ : state) {
    GT f = MillerLoop(p, q);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_MillerLoop);

void BM_FullPairing(benchmark::State& state) {
  G1Affine p = G1Mul(Fr::FromUint64(7)).ToAffine();
  G2Affine q = G2Mul(Fr::FromUint64(9)).ToAffine();
  for (auto _ : state) {
    GT f = Pairing(p, q);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FullPairing);

void BM_PolyFromRoots(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Fr> roots;
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) roots.push_back(Fr::FromUint64(rng.Next()));
  for (auto _ : state) {
    Poly p = Poly::FromShiftedRoots(roots);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PolyFromRoots)->Arg(16)->Arg(64)->Arg(256);

void BM_PolyXgcdDisjoint(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Fr> ra, rb;
  for (size_t i = 0; i < n; ++i) ra.push_back(Fr::FromUint64(1000 + i));
  for (size_t i = 0; i < 3; ++i) rb.push_back(Fr::FromUint64(10 + i));
  Poly a = Poly::FromShiftedRoots(ra);
  Poly b = Poly::FromShiftedRoots(rb);
  for (auto _ : state) {
    Poly u, v;
    Status st = PolyBezoutForCoprime(a, b, &u, &v);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_PolyXgcdDisjoint)->Arg(16)->Arg(64)->Arg(256);

template <typename Engine>
void BM_Digest(benchmark::State& state) {
  Engine engine(Oracle());
  Multiset w = RandomMultiset(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto d = engine.Digest(w);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Digest<Acc1Engine>)->Arg(16)->Arg(64);
BENCHMARK(BM_Digest<Acc2Engine>)->Arg(16)->Arg(64);

template <typename Engine>
void BM_ProveDisjoint(benchmark::State& state) {
  Engine engine(Oracle());
  Multiset w = RandomMultiset(static_cast<size_t>(state.range(0)), 8);
  Multiset clause{1, 2, 3};  // tiny ids cannot collide with Rng ids
  for (auto _ : state) {
    auto proof = engine.ProveDisjoint(w, clause);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveDisjoint<Acc1Engine>)->Arg(16)->Arg(64);
BENCHMARK(BM_ProveDisjoint<Acc2Engine>)->Arg(16)->Arg(64);

template <typename Engine>
void BM_VerifyDisjoint(benchmark::State& state) {
  Engine engine(Oracle());
  Multiset w = RandomMultiset(32, 9);
  Multiset clause{1, 2, 3};
  auto digest = engine.Digest(w);
  auto qd = engine.QueryDigestOf(clause);
  auto proof = engine.ProveDisjoint(w, clause);
  for (auto _ : state) {
    bool ok = engine.VerifyDisjoint(digest, qd, proof.value());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_VerifyDisjoint<Acc1Engine>);
BENCHMARK(BM_VerifyDisjoint<Acc2Engine>);

}  // namespace

BENCHMARK_MAIN();

// Subscription matcher sweep — per-block SP matching cost, linear vs
// indexed, from 10^3 to 10^6 registered subscriptions.
//
// This is the scaling story behind ServiceOptions::sub_matcher: the linear
// matcher touches every standing query on every block, so its per-block
// cost is Θ(n); the clause-inverted index probes the block's mapped
// elements once, proves once per distinct clause group, and pays per
// subscriber only a template stamp. Subscribers draw from a fixed pool of
// distinct interest templates (real pub/sub workloads share interests —
// the correlation §7.1's sharing exploits), so group count stays constant
// as n grows and the indexed curve should flatten toward the stamping
// floor: >=10x over linear at 10^5, and sublinear growth 10^5 -> 10^6.
//
// The mock acc2 engine isolates matching/dispatch cost from pairing
// crypto; Figs 12-15 cover the cryptographic side of subscriptions.
// `--quick` (CI smoke) caps the sweep at 10^4 subscriptions.

#include "sub_harness.h"

using namespace vchain;
using namespace vchain::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  constexpr size_t kPeriodBlocks = 4;
  constexpr size_t kTemplates = 128;  // distinct interests, fixed across n
  constexpr size_t kLinearCap = 100'000;
  std::vector<size_t> counts = {1'000, 10'000, 100'000, 1'000'000};
  if (quick) counts = {1'000, 10'000};

  Scale scale = GetScale();
  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ, scale.objects_per_block);
  ChainConfig config = ConfigFor(profile, IndexMode::kBoth);

  std::printf("# subscription matcher sweep — per-block SP cost "
              "(%zu blocks, %zu templates, mock-acc2)\n",
              kPeriodBlocks, kTemplates);
  std::printf("%-10s %10s %16s %12s\n", "matcher", "subs", "per_block_ms",
              "speedup");

  BenchJson json("sub_match");
  for (size_t n : counts) {
    double linear_s = 0;
    bool have_linear = n <= kLinearCap;
    if (have_linear) {
      SubSessionOptions so;
      so.matcher = sub::MatcherMode::kLinear;
      so.verify = false;
      so.measure_vo = false;
      so.n_templates = kTemplates;
      so.full_query_templates = true;
      SubCosts c = RunSubscriptionSession<accum::MockAcc2Engine>(
          profile, config, kPeriodBlocks, n, so);
      linear_s = c.sp_seconds / kPeriodBlocks;
      std::printf("%-10s %10zu %16.3f %12s\n", "linear", n, linear_s * 1e3,
                  "1.0x");
      json.Add("linear-per-block", n, linear_s * 1e9,
               linear_s > 0 ? 1.0 / linear_s : 0);
      std::fflush(stdout);
    }
    {
      SubSessionOptions so;
      so.matcher = sub::MatcherMode::kIndexed;
      so.verify = false;
      so.measure_vo = false;
      so.n_templates = kTemplates;
      so.full_query_templates = true;
      SubCosts c = RunSubscriptionSession<accum::MockAcc2Engine>(
          profile, config, kPeriodBlocks, n, so);
      double indexed_s = c.sp_seconds / kPeriodBlocks;
      char speedup[32];
      if (have_linear && indexed_s > 0) {
        std::snprintf(speedup, sizeof(speedup), "%.1fx",
                      linear_s / indexed_s);
      } else {
        std::snprintf(speedup, sizeof(speedup), "-");
      }
      std::printf("%-10s %10zu %16.3f %12s\n", "indexed", n, indexed_s * 1e3,
                  speedup);
      json.Add("indexed-per-block", n, indexed_s * 1e9,
               indexed_s > 0 ? 1.0 / indexed_s : 0);
      std::fflush(stdout);
    }
  }
  return 0;
}

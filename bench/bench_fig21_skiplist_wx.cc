// Fig 21 (Appendix D.3) — impact of the skip-list size (WX).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSkiplistFigure("Fig 21",
                                   vchain::workload::DatasetKind::kWX);
  return 0;
}

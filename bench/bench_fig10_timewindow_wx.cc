// Fig 10 — time-window query performance on the WX workload.

#include "harness.h"

int main() {
  vchain::bench::RunTimeWindowFigure("Fig 10",
                                     vchain::workload::DatasetKind::kWX);
  return 0;
}

// Fig 19 (Appendix D.2) — impact of range selectivity (ETH).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSelectivityFigure("Fig 19",
                                      vchain::workload::DatasetKind::kETH);
  return 0;
}

// Shared benchmark plumbing for the per-table / per-figure drivers.
//
// Every binary prints the same rows/series its paper counterpart reports.
// Absolute numbers differ from the paper (single laptop core vs a 24-thread
// Xeon SP, synthetic data, our own BN254); EXPERIMENTS.md tracks the curve
// *shapes*. Scales:
//   VCHAIN_BENCH_SCALE=small  (default) minutes-total run
//   VCHAIN_BENCH_SCALE=full   closer to paper magnitudes (much slower)

#ifndef VCHAIN_BENCH_HARNESS_H_
#define VCHAIN_BENCH_HARNESS_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/vchain.h"
#include "workload/datasets.h"

namespace vchain::bench {

using accum::Acc1Engine;
using accum::Acc2Engine;
using accum::AccParams;
using accum::KeyOracle;
using accum::ProverMode;
using core::ChainBuilder;
using core::ChainConfig;
using core::IndexMode;
using core::Query;
using workload::DatasetGenerator;
using workload::DatasetKind;
using workload::DatasetProfile;

/// Machine-readable results alongside the human tables: every figure/table
/// driver appends rows and flushes `BENCH_<name>.json` on destruction, so
/// the perf trajectory can be diffed across PRs.
class BenchJson {
 public:
  explicit BenchJson(const std::string& name) {
    for (char ch : name) {
      path_ += std::isalnum(static_cast<unsigned char>(ch))
                   ? static_cast<char>(std::tolower(static_cast<unsigned char>(ch)))
                   : '_';
    }
    path_ = "BENCH_" + path_ + ".json";
  }

  /// One measurement: `op` (scheme/operation), `n` (x-axis point, e.g.
  /// window size), median latency in ns, and throughput in ops/s.
  void Add(const std::string& op, size_t n, double median_ns,
           double throughput) {
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"op\": \"%s\", \"n\": %zu, \"median_ns\": %.1f, "
                  "\"throughput\": %.4f}",
                  op.c_str(), n, median_ns, throughput);
    rows_.push_back(row);
  }

  ~BenchJson() {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"rows\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s (%zu rows)\n", path_.c_str(),
                 rows_.size());
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

struct Scale {
  size_t objects_per_block = 8;
  std::vector<size_t> window_blocks = {4, 8, 16, 24, 32};  // x-axis sweeps
  size_t queries_per_point = 2;
  std::vector<size_t> sub_query_counts = {2, 4, 6, 8, 10};
  size_t setup_blocks = 8;  // blocks measured in Table 1 / Fig 16
};

inline Scale GetScale() {
  Scale s;
  const char* env = std::getenv("VCHAIN_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    s.objects_per_block = 16;
    s.window_blocks = {16, 32, 64, 96, 128};
    s.queries_per_point = 5;
    s.sub_query_counts = {20, 40, 60, 80, 100};
    s.setup_blocks = 16;
  }
  return s;
}

/// The six evaluated schemes.
struct Scheme {
  IndexMode mode;
  bool acc2;
  std::string Name() const {
    return std::string(core::IndexModeName(mode)) + (acc2 ? "-acc2" : "-acc1");
  }
};

inline std::vector<Scheme> AllSchemes() {
  return {{IndexMode::kNil, false},   {IndexMode::kNil, true},
          {IndexMode::kIntra, false}, {IndexMode::kIntra, true},
          {IndexMode::kBoth, false},  {IndexMode::kBoth, true}};
}

inline std::shared_ptr<KeyOracle> SharedOracle() {
  static std::shared_ptr<KeyOracle> kOracle =
      KeyOracle::Create(/*seed=*/20190630, AccParams{16});
  return kOracle;
}

inline ChainConfig ConfigFor(const DatasetProfile& profile, IndexMode mode,
                             uint32_t skiplist_size = 3) {
  ChainConfig config;
  config.mode = mode;
  config.schema = profile.schema;
  config.skiplist_size = skiplist_size;
  return config;
}

/// Build a chain of `blocks` blocks from the dataset generator. `mining`
/// selects honest public-key digest computation (Table 1 / Fig 16 measure
/// this) vs the byte-identical trusted fast path (query benches).
template <typename Engine>
std::unique_ptr<ChainBuilder<Engine>> BuildChain(const DatasetProfile& profile,
                                                 const ChainConfig& config,
                                                 size_t blocks, uint64_t seed,
                                                 ProverMode mode,
                                                 double* build_seconds = nullptr,
                                                 size_t* ads_bytes = nullptr) {
  Engine engine(SharedOracle(), mode);
  auto builder = std::make_unique<ChainBuilder<Engine>>(engine, config);
  DatasetGenerator gen(profile, seed);
  double total_s = 0;
  size_t total_b = 0;
  for (size_t b = 0; b < blocks; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = objs.front().timestamp;
    auto stats = builder->AppendBlock(std::move(objs), ts);
    if (!stats.ok()) {
      std::fprintf(stderr, "AppendBlock failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    total_s += stats.value().ads_seconds;
    total_b += stats.value().ads_bytes;
  }
  if (build_seconds != nullptr) *build_seconds = total_s;
  if (ads_bytes != nullptr) *ads_bytes = total_b;
  return builder;
}

struct QueryPoint {
  double sp_seconds = 0;
  double user_seconds = 0;
  double vo_kb = 0;
  size_t results = 0;
};

/// Run `n_queries` time-window queries over the last `window` blocks and
/// average SP time, user time, and VO size.
template <typename Engine>
QueryPoint RunTimeWindowPoint(const ChainBuilder<Engine>& builder,
                              const ChainConfig& config,
                              DatasetGenerator* gen, size_t window,
                              size_t n_queries, double selectivity,
                              size_t clause_size) {
  chain::LightClient light;
  Status st = builder.SyncLightClient(&light);
  if (!st.ok()) std::abort();
  const Engine& engine = builder.engine();
  store::VectorBlockSource<Engine> source(&builder.blocks());
  core::QueryProcessor<Engine> sp(engine, config, &source,
                                  &builder.timestamp_index());
  core::Verifier<Engine> verifier(engine, config, &light);

  size_t total = builder.blocks().size();
  uint64_t t_start = builder.blocks()[total - window].header.timestamp;
  uint64_t t_end = builder.blocks()[total - 1].header.timestamp;

  QueryPoint point;
  for (size_t i = 0; i < n_queries; ++i) {
    Query q = gen->MakeQuery(selectivity, clause_size, t_start, t_end);
    Timer sp_t;
    auto resp = sp.TimeWindowQuery(q);
    point.sp_seconds += sp_t.ElapsedSeconds();
    if (!resp.ok()) std::abort();
    point.vo_kb +=
        static_cast<double>(core::VoByteSize(engine, resp.value().vo)) / 1024;
    point.results += resp.value().objects.size();
    Timer user_t;
    Status v = verifier.VerifyTimeWindow(q, resp.value());
    point.user_seconds += user_t.ElapsedSeconds();
    if (!v.ok()) {
      std::fprintf(stderr, "verification failed: %s\n", v.ToString().c_str());
      std::abort();
    }
  }
  point.sp_seconds /= static_cast<double>(n_queries);
  point.user_seconds /= static_cast<double>(n_queries);
  point.vo_kb /= static_cast<double>(n_queries);
  return point;
}

/// One full figure: the six schemes swept over window sizes for a dataset.
inline void RunTimeWindowFigure(const char* figure, DatasetKind kind) {
  Scale scale = GetScale();
  DatasetProfile profile = workload::ProfileFor(kind, scale.objects_per_block);
  size_t max_window = scale.window_blocks.back();

  std::printf("# %s — time-window query performance (%s)\n", figure,
              workload::DatasetName(kind));
  std::printf("# selectivity=%.0f%%, clause=%zu, %zu objects/block, "
              "%zu queries/point\n",
              profile.default_selectivity * 100, profile.default_clause_size,
              profile.objects_per_block, scale.queries_per_point);
  std::printf("%-12s %8s %12s %12s %10s %8s\n", "scheme", "window",
              "sp_cpu_s", "user_cpu_s", "vo_kb", "results");

  BenchJson json(figure);
  for (const Scheme& scheme : AllSchemes()) {
    auto run = [&](auto engine_tag) {
      using Engine = decltype(engine_tag);
      ChainConfig config = ConfigFor(profile, scheme.mode);
      auto builder = BuildChain<Engine>(profile, config, max_window,
                                        /*seed=*/1234,
                                        ProverMode::kTrustedFast);
      DatasetGenerator qgen(profile, /*seed=*/1234);
      for (size_t window : scale.window_blocks) {
        QueryPoint p = RunTimeWindowPoint(*builder, config, &qgen, window,
                                          scale.queries_per_point,
                                          profile.default_selectivity,
                                          profile.default_clause_size);
        std::printf("%-12s %8zu %12.4f %12.4f %10.2f %8zu\n",
                    scheme.Name().c_str(), window, p.sp_seconds,
                    p.user_seconds, p.vo_kb, p.results);
        json.Add(scheme.Name() + "-sp", window, p.sp_seconds * 1e9,
                 p.sp_seconds > 0 ? 1.0 / p.sp_seconds : 0);
        json.Add(scheme.Name() + "-user", window, p.user_seconds * 1e9,
                 p.user_seconds > 0 ? 1.0 / p.user_seconds : 0);
        std::fflush(stdout);
      }
    };
    if (scheme.acc2) {
      run(Acc2Engine(SharedOracle()));
    } else {
      run(Acc1Engine(SharedOracle()));
    }
  }
}

}  // namespace vchain::bench

#endif  // VCHAIN_BENCH_HARNESS_H_

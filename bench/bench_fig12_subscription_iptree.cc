// Fig 12 — SP processing cost for subscription queries with and without the
// IP-Tree (proof sharing), realtime and lazy, as the number of registered
// queries grows. Reported per dataset, acc2 only (as in the paper).

#include "sub_harness.h"

using namespace vchain;
using namespace vchain::bench;

int main() {
  Scale scale = GetScale();
  size_t period = scale.window_blocks[0];  // short fixed period
  sub::MatcherMode matcher = SubMatcherFromEnv();
  std::printf("# Fig 12 — subscription SP cost vs number of queries "
              "(period=%zu blocks, acc2, %s matcher)\n",
              period, sub::MatcherModeName(matcher));
  std::printf("%-8s %-14s %9s %12s\n", "dataset", "scheme", "queries",
              "sp_cpu_s");
  for (DatasetKind kind :
       {DatasetKind::k4SQ, DatasetKind::kWX, DatasetKind::kETH}) {
    DatasetProfile profile =
        workload::ProfileFor(kind, scale.objects_per_block);
    ChainConfig config = ConfigFor(profile, IndexMode::kBoth);
    for (size_t n : scale.sub_query_counts) {
      struct Variant {
        const char* name;
        bool lazy, ip;
      };
      for (const Variant& v :
           {Variant{"real-nip-acc2", false, false},
            Variant{"real-ip-acc2", false, true},
            Variant{"lazy-nip-acc2", true, false},
            Variant{"lazy-ip-acc2", true, true}}) {
        SubSessionOptions so;
        so.lazy = v.lazy;
        so.use_ip_tree = v.ip;
        so.matcher = matcher;
        SubCosts c =
            RunSubscriptionSession<Acc2Engine>(profile, config, period, n, so);
        std::printf("%-8s %-14s %9zu %12.4f\n", workload::DatasetName(kind),
                    v.name, n, c.sp_seconds);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

// Fig 15 — subscription performance over the subscription period (ETH).

#include "sub_harness.h"

int main() {
  vchain::bench::RunSubscriptionFigure("Fig 15",
                                       vchain::workload::DatasetKind::kETH);
  return 0;
}

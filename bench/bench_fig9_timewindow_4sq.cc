// Fig 9 — time-window query performance on the 4SQ workload:
// SP CPU time, user CPU time, and VO size vs window size, for all six
// schemes.

#include "harness.h"

int main() {
  vchain::bench::RunTimeWindowFigure("Fig 9",
                                     vchain::workload::DatasetKind::k4SQ);
  return 0;
}

// Shared driver for the subscription benchmarks (Figs 12-15 and the
// matcher sweep in bench_sub_match): one session loop serves every variant
// — realtime/lazy, IP-Tree on/off, linear/indexed matcher — so the drivers
// stay declarative. VCHAIN_SUB_MATCHER=linear|indexed overrides the matcher
// for the figure binaries without recompiling.

#ifndef VCHAIN_BENCH_SUB_HARNESS_H_
#define VCHAIN_BENCH_SUB_HARNESS_H_

#include "harness.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"

namespace vchain::bench {

/// Matcher under test: the VCHAIN_SUB_MATCHER env knob, defaulting to the
/// service default (indexed).
inline sub::MatcherMode SubMatcherFromEnv() {
  const char* env = std::getenv("VCHAIN_SUB_MATCHER");
  sub::MatcherMode mode = sub::MatcherMode::kIndexed;
  if (env != nullptr && !sub::MatcherModeFromName(env, &mode)) {
    std::fprintf(stderr, "unknown VCHAIN_SUB_MATCHER %s\n", env);
    std::abort();
  }
  return mode;
}

struct SubCosts {
  double sp_seconds = 0;    ///< accumulated SP processing time
  double user_seconds = 0;  ///< accumulated verification time
  double vo_kb = 0;         ///< accumulated notification/batch bytes
  std::vector<double> block_sp_seconds;  ///< per-block SP samples
};

struct SubSessionOptions {
  bool lazy = false;         ///< Algorithm 5 (requires aggregation)
  bool use_ip_tree = true;   ///< cross-query proof sharing (§7.1)
  bool verify = false;       ///< measure user-side verification too
  bool measure_vo = true;    ///< serialize outputs for the VO-size metric
  sub::MatcherMode matcher = sub::MatcherMode::kIndexed;
  /// Distinct query templates the subscribers draw their keyword interests
  /// from (0 = n_queries / 4). Correlated interests are the workload the
  /// IP-Tree and the clause index both exploit.
  size_t n_templates = 0;
  /// Share *entire* queries from the template pool, not just the popular
  /// keyword clause. Figs 12-15 keep per-subscriber ranges (the paper's
  /// IP-Tree workload); the matcher sweep models topic-style pub/sub where
  /// whole interests repeat across subscribers and grouped dispatch can
  /// build each notification once per group.
  bool full_query_templates = false;
};

/// Engines differ in whether they take a prover mode (the pairing engines
/// do, the mocks don't); benches always want the byte-identical fast path.
template <typename Engine>
Engine MakeBenchEngine() {
  if constexpr (std::is_constructible_v<Engine, std::shared_ptr<KeyOracle>,
                                        ProverMode>) {
    return Engine(SharedOracle(), ProverMode::kTrustedFast);
  } else {
    return Engine(SharedOracle());
  }
}

/// Run a subscription session of `period_blocks` blocks with `n_queries`
/// registered queries under `so`.
template <typename Engine>
SubCosts RunSubscriptionSession(const DatasetProfile& profile,
                                const ChainConfig& config,
                                size_t period_blocks, size_t n_queries,
                                const SubSessionOptions& so) {
  Engine engine = MakeBenchEngine<Engine>();
  ChainBuilder<Engine> builder(engine, config);
  DatasetGenerator gen(profile, /*seed=*/555);

  typename sub::SubscriptionManager<Engine>::Options opts;
  opts.lazy = so.lazy;
  opts.use_ip_tree = so.use_ip_tree;
  opts.matcher = so.matcher;
  sub::SubscriptionManager<Engine> mgr(engine, config, opts);

  struct Reg {
    Query q;
    uint32_t id;
    uint64_t owed = 0;
  };
  // Registrations are kept only when user-side verification is measured —
  // the million-subscriber sweep doesn't need a second copy of every query.
  std::vector<Reg> regs;
  if (so.verify) regs.reserve(n_queries);
  uint64_t t0 = gen.TimestampOfBlock(0);
  uint64_t t1 = gen.TimestampOfBlock(period_blocks);
  // Subscription workloads are rare-matching (most registered interests stay
  // silent on most blocks): tighten range selectivity and keyword breadth
  // relative to the time-window defaults so that silent runs — the substrate
  // of lazy authentication — actually occur. Interests are also correlated:
  // many subscribers watch the same popular keywords (with their own ranges),
  // which is what the IP-Tree's cross-query proof sharing and the clause
  // index's interning both exploit (§7.1).
  double sel = profile.default_selectivity / 5;
  size_t clause = std::max<size_t>(1, profile.default_clause_size / 3);
  size_t n_templates =
      so.n_templates != 0 ? so.n_templates : std::max<size_t>(1, n_queries / 4);
  std::vector<std::vector<std::string>> popular;
  std::vector<Query> pool;
  for (size_t i = 0; i < n_queries; ++i) {
    Reg r;
    if (so.full_query_templates) {
      if (pool.size() < n_templates) pool.push_back(gen.MakeQuery(sel, clause, t0, t1));
      r.q = pool[i % pool.size()];
    } else {
      r.q = gen.MakeQuery(sel, clause, t0, t1);
      if (popular.size() < n_templates) {
        popular.push_back(r.q.keyword_cnf.back());
      } else {
        r.q.keyword_cnf.back() = popular[i % n_templates];
      }
    }
    r.id = mgr.TrySubscribe(r.q).TakeValue();
    if (so.verify) regs.push_back(std::move(r));
  }

  chain::LightClient light;
  sub::SubVerifier<Engine> verifier(engine, config, &light);
  SubCosts costs;

  auto handle_batch = [&](const sub::LazyBatch<Engine>& batch) {
    if (so.measure_vo) {
      costs.vo_kb +=
          static_cast<double>(sub::LazyBatchByteSize(engine, batch)) / 1024;
    }
    if (!so.verify) return;
    Reg* reg = nullptr;
    for (Reg& r : regs) {
      if (r.id == batch.query_id) reg = &r;
    }
    Timer t;
    uint64_t next = 0;
    Status st = verifier.VerifyLazyBatch(reg->q, batch, reg->owed, &next);
    costs.user_seconds += t.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "lazy verify failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    reg->owed = next;
  };

  for (size_t b = 0; b < period_blocks; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = objs.front().timestamp;
    auto st = builder.AppendBlock(std::move(objs), ts);
    if (!st.ok()) std::abort();
    if (so.verify) {
      Status sync = builder.SyncLightClient(&light);
      if (!sync.ok()) std::abort();
    }
    const auto& block = builder.blocks().back();

    if (so.lazy) {
      if constexpr (Engine::kSupportsAggregation) {
        Timer sp_t;
        auto batches = mgr.ProcessBlockLazy(block);
        double s = sp_t.ElapsedSeconds();
        costs.sp_seconds += s;
        costs.block_sp_seconds.push_back(s);
        for (const auto& batch : batches) handle_batch(batch);
      }
    } else {
      Timer sp_t;
      auto notifs = mgr.ProcessBlock(block);
      double s = sp_t.ElapsedSeconds();
      costs.sp_seconds += s;
      costs.block_sp_seconds.push_back(s);
      if (so.measure_vo || so.verify) {
        for (const auto& notif : notifs) {
          if (so.measure_vo) {
            costs.vo_kb += static_cast<double>(
                               sub::SubNotificationByteSize(engine, notif)) /
                           1024;
          }
          if (so.verify) {
            const Query& q = regs[notif.query_id].q;
            Timer t;
            Status v = verifier.VerifyNotification(q, notif);
            costs.user_seconds += t.ElapsedSeconds();
            if (!v.ok()) {
              std::fprintf(stderr, "notif verify failed: %s\n",
                           v.ToString().c_str());
              std::abort();
            }
            regs[notif.query_id].owed = notif.height + 1;
          }
        }
      }
    }
  }
  if (so.lazy) {
    if constexpr (Engine::kSupportsAggregation) {
      Timer sp_t;
      auto batches = mgr.FlushAll();
      costs.sp_seconds += sp_t.ElapsedSeconds();
      for (const auto& batch : batches) handle_batch(batch);
    }
  }
  return costs;
}

/// Figs 13-15: period sweep with realtime-acc1, realtime-acc2, lazy-acc2.
inline void RunSubscriptionFigure(const char* figure, DatasetKind kind) {
  Scale scale = GetScale();
  DatasetProfile profile = workload::ProfileFor(kind, scale.objects_per_block);
  size_t n_queries = 3;
  sub::MatcherMode matcher = SubMatcherFromEnv();
  std::printf("# %s — subscription query performance (%s), %zu queries, "
              "%s matcher\n",
              figure, workload::DatasetName(kind), n_queries,
              sub::MatcherModeName(matcher));
  std::printf("%-15s %8s %12s %12s %10s\n", "scheme", "period", "sp_cpu_s",
              "user_cpu_s", "vo_kb");
  for (size_t period : scale.window_blocks) {
    ChainConfig config = ConfigFor(profile, IndexMode::kBoth);
    SubSessionOptions so;
    so.verify = true;
    so.matcher = matcher;
    SubCosts rt1 = RunSubscriptionSession<Acc1Engine>(profile, config, period,
                                                      n_queries, so);
    std::printf("%-15s %8zu %12.4f %12.4f %10.2f\n", "realtime-acc1", period,
                rt1.sp_seconds, rt1.user_seconds, rt1.vo_kb);
    SubCosts rt2 = RunSubscriptionSession<Acc2Engine>(profile, config, period,
                                                      n_queries, so);
    std::printf("%-15s %8zu %12.4f %12.4f %10.2f\n", "realtime-acc2", period,
                rt2.sp_seconds, rt2.user_seconds, rt2.vo_kb);
    so.lazy = true;
    SubCosts lz2 = RunSubscriptionSession<Acc2Engine>(profile, config, period,
                                                      n_queries, so);
    std::printf("%-15s %8zu %12.4f %12.4f %10.2f\n", "lazy-acc2", period,
                lz2.sp_seconds, lz2.user_seconds, lz2.vo_kb);
    std::fflush(stdout);
  }
}

}  // namespace vchain::bench

#endif  // VCHAIN_BENCH_SUB_HARNESS_H_

// Fig 16 (Appendix D.1) — accumulator ADS vs the traditional
// MHT-per-attribute-combination baseline as dimensionality grows:
// (a) ADS construction time per block, (b) block size normalized by the
// no-ADS block size.

#include "core/mht_baseline.h"
#include "harness.h"

using namespace vchain;
using namespace vchain::bench;

int main() {
  Scale scale = GetScale();
  size_t blocks = scale.setup_blocks;
  std::printf("# Fig 16 — ADS cost vs dimensionality (WX-style synthetic, %zu "
              "blocks averaged)\n",
              blocks);
  std::printf("%-6s %-6s %16s %18s\n", "dims", "ads", "build_s_per_blk",
              "normalized_size");

  for (uint32_t dims : {1u, 3u, 5u, 7u, 9u}) {
    DatasetProfile profile = workload::ProfileWX(scale.objects_per_block);
    profile.schema.dims = dims;
    // As in the paper, the set-valued attribute is dropped (the MHT cannot
    // index it) — keywords stay but are excluded from the MHT trees.
    DatasetGenerator gen(profile, /*seed=*/99);
    std::vector<std::vector<chain::Object>> data;
    size_t raw_bytes = 0;
    for (size_t b = 0; b < blocks; ++b) {
      data.push_back(gen.NextBlock());
      for (const auto& o : data.back()) {
        ByteWriter w;
        o.Serialize(&w);
        raw_bytes += w.size();
      }
    }
    double raw_per_block =
        static_cast<double>(raw_bytes) / static_cast<double>(blocks);

    // Accumulator ADS (intra index), honest prover.
    for (bool acc2 : {false, true}) {
      ChainConfig config = ConfigFor(profile, IndexMode::kIntra);
      double build_s = 0;
      size_t ads_bytes = 0;
      auto build = [&](auto engine_tag) {
        using Engine = decltype(engine_tag);
        Engine engine(SharedOracle(), ProverMode::kHonest);
        ChainBuilder<Engine> builder(engine, config);
        for (const auto& objs : data) {
          auto st = builder.AppendBlock(objs, objs.front().timestamp);
          if (!st.ok()) std::abort();
          build_s += st.value().ads_seconds;
          ads_bytes += st.value().ads_bytes;
        }
      };
      if (acc2) {
        build(Acc2Engine(SharedOracle()));
      } else {
        build(Acc1Engine(SharedOracle()));
      }
      double norm = (raw_per_block + static_cast<double>(ads_bytes) /
                                         static_cast<double>(blocks)) /
                    raw_per_block;
      std::printf("%-6u %-6s %16.4f %18.2f\n", dims, acc2 ? "acc2" : "acc1",
                  build_s / static_cast<double>(blocks), norm);
    }

    // MHT baseline: one tree per attribute combination.
    double mht_s = 0;
    size_t mht_bytes = 0;
    for (const auto& objs : data) {
      Timer t;
      core::MhtAdsStats stats = core::BuildMhtBaseline(objs, dims);
      mht_s += t.ElapsedSeconds();
      mht_bytes += stats.ads_bytes;
    }
    double norm = (raw_per_block + static_cast<double>(mht_bytes) /
                                       static_cast<double>(blocks)) /
                  raw_per_block;
    std::printf("%-6u %-6s %16.4f %18.2f\n", dims, "MHT",
                mht_s / static_cast<double>(blocks), norm);
  }
  return 0;
}

// Store I/O microbenchmark — append throughput of the durable block store
// and cold-vs-warm time-window query latency through StoreBlockSource's LRU
// cache. Emits BENCH_store_io.json for cross-PR tracking.
//
//   append-batched : write-through mining, one fsync at the end
//   append-fsync   : write-through mining, fsync per block
//   query-mem      : in-memory chain (the pre-store baseline)
//   query-cold     : reopened store, empty block cache (all misses)
//   query-warm     : same source again (window resident, all hits)

#include <filesystem>

#include "harness.h"

using namespace vchain;
using namespace vchain::bench;

namespace {

std::string FreshDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("vchain_bench_store_") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct AppendPoint {
  double seconds = 0;
  uint64_t bytes = 0;
};

AppendPoint MineThrough(const DatasetProfile& profile,
                        const ChainConfig& config, size_t blocks,
                        const char* tag, bool sync_every_append) {
  std::string dir = FreshDir(tag);
  store::BlockStore::Options options;
  options.sync_every_append = sync_every_append;
  auto db = store::BlockStore::Open(dir, options);
  if (!db.ok()) std::abort();

  Acc2Engine engine(SharedOracle(), ProverMode::kTrustedFast);
  core::ChainBuilder<Acc2Engine> miner(engine, config);
  if (!miner.AttachStore(db.value().get()).ok()) std::abort();

  DatasetGenerator gen(profile, /*seed=*/4242);
  // Pre-generate blocks so the timer sees mining+persistence, not dataset
  // synthesis.
  std::vector<std::vector<chain::Object>> data;
  for (size_t b = 0; b < blocks; ++b) data.push_back(gen.NextBlock());

  Timer t;
  for (auto& objs : data) {
    uint64_t ts = objs.front().timestamp;
    if (!miner.AppendBlock(std::move(objs), ts).ok()) std::abort();
  }
  if (!db.value()->Sync().ok()) std::abort();
  AppendPoint point;
  point.seconds = t.ElapsedSeconds();
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) point.bytes += entry.file_size();
  }
  std::filesystem::remove_all(dir);
  return point;
}

}  // namespace

int main() {
  Scale scale = GetScale();
  size_t blocks = scale.window_blocks.back();
  size_t window = scale.window_blocks[scale.window_blocks.size() / 2];
  DatasetProfile profile =
      workload::ProfileFor(workload::DatasetKind::k4SQ,
                           scale.objects_per_block);
  ChainConfig config = ConfigFor(profile, IndexMode::kBoth);

  std::printf("# store I/O — durable block store append + query latency "
              "(%zu blocks, %zu objects/block)\n",
              blocks, profile.objects_per_block);
  BenchJson json("store_io");

  // --- append throughput -----------------------------------------------------
  for (bool sync_each : {false, true}) {
    AppendPoint p = MineThrough(profile, config, blocks,
                                sync_each ? "fsync" : "batched", sync_each);
    const char* op = sync_each ? "append-fsync" : "append-batched";
    double per_block_ns = p.seconds * 1e9 / static_cast<double>(blocks);
    double blocks_per_s = static_cast<double>(blocks) / p.seconds;
    std::printf("%-16s %6zu blocks  %10.0f ns/block  %10.1f blocks/s  "
                "%8.1f KiB on disk\n",
                op, blocks, per_block_ns, blocks_per_s,
                static_cast<double>(p.bytes) / 1024);
    json.Add(op, blocks, per_block_ns, blocks_per_s);
  }

  // --- cold vs warm window queries -------------------------------------------
  std::string dir = FreshDir("query");
  auto db = store::BlockStore::Open(dir);
  if (!db.ok()) std::abort();
  Acc2Engine engine(SharedOracle(), ProverMode::kTrustedFast);
  core::ChainBuilder<Acc2Engine> miner(engine, config);
  if (!miner.AttachStore(db.value().get()).ok()) std::abort();
  DatasetGenerator gen(profile, /*seed=*/4242);
  for (size_t b = 0; b < blocks; ++b) {
    auto objs = gen.NextBlock();
    uint64_t ts = objs.front().timestamp;
    if (!miner.AppendBlock(std::move(objs), ts).ok()) std::abort();
  }
  if (!db.value()->Sync().ok()) std::abort();

  uint64_t t_start = miner.blocks()[blocks - window].header.timestamp;
  uint64_t t_end = miner.blocks()[blocks - 1].header.timestamp;
  DatasetGenerator qgen(profile, /*seed=*/4242);
  core::Query q = qgen.MakeQuery(profile.default_selectivity,
                                 profile.default_clause_size, t_start, t_end);

  auto run_query = [&](auto& sp) {
    Timer t;
    auto resp = sp.TimeWindowQuery(q);
    if (!resp.ok()) std::abort();
    return t.ElapsedSeconds();
  };

  // Baseline: fully-resident chain.
  {
    store::VectorBlockSource<Acc2Engine> mem_source(&miner.blocks());
    core::QueryProcessor<Acc2Engine> sp(engine, config, &mem_source,
                                        &miner.timestamp_index());
    double s = run_query(sp);
    std::printf("%-16s %6zu blocks  %10.0f ns\n", "query-mem", window,
                s * 1e9);
    json.Add("query-mem", window, s * 1e9, s > 0 ? 1.0 / s : 0);
  }
  // Cold: fresh store handle, empty LRU — every block faults in from disk.
  {
    auto db2 = store::BlockStore::Open(dir);
    if (!db2.ok()) std::abort();
    core::TimestampIndex ts_index = db2.value()->RebuildTimestampIndex();
    store::StoreBlockSource<Acc2Engine> source(engine, db2.value().get(),
                                               config.block_cache_blocks);
    core::QueryProcessor<Acc2Engine> sp(engine, config, &source, &ts_index);
    double cold = run_query(sp);
    std::printf("%-16s %6zu blocks  %10.0f ns  (%llu cache misses)\n",
                "query-cold", window, cold * 1e9,
                static_cast<unsigned long long>(source.cache_stats().misses));
    json.Add("query-cold", window, cold * 1e9, cold > 0 ? 1.0 / cold : 0);

    // Warm: the window is now resident; a fresh processor (no proof cache
    // carry-over) isolates the block-cache effect.
    core::QueryProcessor<Acc2Engine> sp2(engine, config, &source, &ts_index);
    double warm = run_query(sp2);
    std::printf("%-16s %6zu blocks  %10.0f ns  (%llu cache hits)\n",
                "query-warm", window, warm * 1e9,
                static_cast<unsigned long long>(source.cache_stats().hits));
    json.Add("query-warm", window, warm * 1e9, warm > 0 ? 1.0 / warm : 0);
  }
  std::filesystem::remove_all(dir);
  return 0;
}

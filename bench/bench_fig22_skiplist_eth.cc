// Fig 22 (Appendix D.3) — impact of the skip-list size (ETH).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSkiplistFigure("Fig 22",
                                   vchain::workload::DatasetKind::kETH);
  return 0;
}

// Shared driver for the selectivity (Figs 17-19) and skip-list-size
// (Figs 20-22) appendix sweeps.

#ifndef VCHAIN_BENCH_SELECTIVITY_HARNESS_H_
#define VCHAIN_BENCH_SELECTIVITY_HARNESS_H_

#include "harness.h"

namespace vchain::bench {

/// Figs 17-19: vary numeric-range selectivity at a fixed (largest) window,
/// both indexes enabled, acc1 vs acc2.
inline void RunSelectivityFigure(const char* figure, DatasetKind kind) {
  Scale scale = GetScale();
  DatasetProfile profile = workload::ProfileFor(kind, scale.objects_per_block);
  size_t window = scale.window_blocks.back();
  std::printf("# %s — impact of range selectivity (%s), window=%zu blocks, "
              "mode=both\n",
              figure, workload::DatasetName(kind), window);
  std::printf("%-6s %12s %12s %12s %10s %8s\n", "acc", "selectivity",
              "sp_cpu_s", "user_cpu_s", "vo_kb", "results");
  for (bool acc2 : {false, true}) {
    auto run = [&](auto engine_tag) {
      using Engine = decltype(engine_tag);
      ChainConfig config = ConfigFor(profile, IndexMode::kBoth);
      auto builder = BuildChain<Engine>(profile, config, window, /*seed=*/31,
                                        ProverMode::kTrustedFast);
      for (double sel : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        DatasetGenerator qgen(profile, /*seed=*/31);
        QueryPoint p = RunTimeWindowPoint(*builder, config, &qgen, window,
                                          scale.queries_per_point, sel,
                                          profile.default_clause_size);
        std::printf("%-6s %11.0f%% %12.4f %12.4f %10.2f %8zu\n",
                    acc2 ? "acc2" : "acc1", sel * 100, p.sp_seconds,
                    p.user_seconds, p.vo_kb, p.results);
        std::fflush(stdout);
      }
    };
    if (acc2) {
      run(Acc2Engine(SharedOracle()));
    } else {
      run(Acc1Engine(SharedOracle()));
    }
  }
}

/// Figs 20-22: vary the skip-list size (0 = intra-only) at a fixed window.
inline void RunSkiplistFigure(const char* figure, DatasetKind kind) {
  Scale scale = GetScale();
  DatasetProfile profile = workload::ProfileFor(kind, scale.objects_per_block);
  size_t window = scale.window_blocks.back();
  std::printf("# %s — impact of skip-list size (%s), window=%zu blocks\n",
              figure, workload::DatasetName(kind), window);
  std::printf("%-6s %10s %10s %12s %12s %10s\n", "acc", "skiplist",
              "max_jump", "sp_cpu_s", "user_cpu_s", "vo_kb");
  for (bool acc2 : {false, true}) {
    auto run = [&](auto engine_tag) {
      using Engine = decltype(engine_tag);
      for (uint32_t size : {0u, 1u, 3u, 5u}) {
        IndexMode mode = size == 0 ? IndexMode::kIntra : IndexMode::kBoth;
        ChainConfig config = ConfigFor(profile, mode, size);
        auto builder = BuildChain<Engine>(profile, config, window,
                                          /*seed=*/32,
                                          ProverMode::kTrustedFast);
        DatasetGenerator qgen(profile, /*seed=*/32);
        QueryPoint p = RunTimeWindowPoint(*builder, config, &qgen, window,
                                          scale.queries_per_point,
                                          profile.default_selectivity,
                                          profile.default_clause_size);
        uint64_t max_jump = size == 0 ? 0 : (uint64_t{4} << (size - 1));
        std::printf("%-6s %10u %10llu %12.4f %12.4f %10.2f\n",
                    acc2 ? "acc2" : "acc1", size,
                    static_cast<unsigned long long>(max_jump), p.sp_seconds,
                    p.user_seconds, p.vo_kb);
        std::fflush(stdout);
      }
    };
    if (acc2) {
      run(Acc2Engine(SharedOracle()));
    } else {
      run(Acc1Engine(SharedOracle()));
    }
  }
}

}  // namespace vchain::bench

#endif  // VCHAIN_BENCH_SELECTIVITY_HARNESS_H_

// Fig 17 (Appendix D.2) — impact of range selectivity (4SQ).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSelectivityFigure("Fig 17",
                                      vchain::workload::DatasetKind::k4SQ);
  return 0;
}

// Table 1 — miner's setup cost: ADS construction time (s/block) and ADS
// size (KB/block) for {nil, intra, both} x {acc1, acc2} x {4SQ, WX, ETH},
// plus the §9.1 light-node header size comparison.
//
// Digests here are computed honestly from served public-key powers — this
// *is* the cost under measurement.

#include "harness.h"

using namespace vchain;
using namespace vchain::bench;

int main() {
  Scale scale = GetScale();
  std::printf("# Table 1 — miner's setup cost (%zu blocks averaged, honest "
              "prover)\n",
              scale.setup_blocks);
  std::printf("%-8s %-6s %-7s %14s %14s\n", "dataset", "acc", "index",
              "T (s/block)", "S (KB/block)");

  for (DatasetKind kind :
       {DatasetKind::k4SQ, DatasetKind::kWX, DatasetKind::kETH}) {
    DatasetProfile profile =
        workload::ProfileFor(kind, GetScale().objects_per_block);
    for (bool acc2 : {false, true}) {
      for (IndexMode mode :
           {IndexMode::kNil, IndexMode::kIntra, IndexMode::kBoth}) {
        ChainConfig config = ConfigFor(profile, mode);
        double build_s = 0;
        size_t ads_bytes = 0;
        // Two passes: the first warms the oracle's public-key power caches
        // (key publication is setup cost, not per-block ADS cost); the
        // second is measured.
        if (acc2) {
          BuildChain<Acc2Engine>(profile, config, scale.setup_blocks,
                                 /*seed=*/77, ProverMode::kHonest);
          BuildChain<Acc2Engine>(profile, config, scale.setup_blocks,
                                 /*seed=*/77, ProverMode::kHonest, &build_s,
                                 &ads_bytes);
        } else {
          BuildChain<Acc1Engine>(profile, config, scale.setup_blocks,
                                 /*seed=*/77, ProverMode::kHonest);
          BuildChain<Acc1Engine>(profile, config, scale.setup_blocks,
                                 /*seed=*/77, ProverMode::kHonest, &build_s,
                                 &ads_bytes);
        }
        double per_block_s = build_s / static_cast<double>(scale.setup_blocks);
        double per_block_kb = static_cast<double>(ads_bytes) / 1024 /
                              static_cast<double>(scale.setup_blocks);
        std::printf("%-8s %-6s %-7s %14.4f %14.2f\n",
                    workload::DatasetName(kind), acc2 ? "acc2" : "acc1",
                    core::IndexModeName(mode), per_block_s, per_block_kb);
      }
    }
  }

  // §9.1: light-node storage per block header.
  std::printf("\n# light-node header size\n");
  std::printf("nil/intra header: %zu bytes (%zu bits)\n",
              chain::BlockHeader::kSerializedSize,
              chain::BlockHeader::kSerializedSize * 8);
  std::printf("both header:      %zu bytes (%zu bits, skip-list root "
              "included)\n",
              chain::BlockHeader::kSerializedSize,
              chain::BlockHeader::kSerializedSize * 8);
  std::printf("(our header always reserves the 32-byte skip-list root; the "
              "paper's 800 vs 960 bits reflects adding it only in `both`)\n");
  return 0;
}

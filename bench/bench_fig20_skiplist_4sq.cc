// Fig 20 (Appendix D.3) — impact of the skip-list size (4SQ).

#include "selectivity_harness.h"

int main() {
  vchain::bench::RunSkiplistFigure("Fig 20",
                                   vchain::workload::DatasetKind::k4SQ);
  return 0;
}

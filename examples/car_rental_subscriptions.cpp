// Verifiable subscription queries over a car-rental chain (the paper's
// Example 3.2 and §7).
//
// Several users register standing queries such as
//   <- , [200, 250], "Sedan" AND ("Benz" OR "BMW")>
// and receive, for every newly mined block, either matching offers plus a
// proof, or verifiable evidence that nothing matched.
//
// The realtime scheme runs through the vchain::Service front door
// (Subscribe / TakeSubscriptionEvents / VerifyNotification — queries are
// validated, events buffered per block). The lazy scheme (§7.2, Algorithm 5)
// stays on the typed layer (SubscriptionManager + SubVerifier): a second SP
// mines the identical chain (same oracle, same offers) and aggregates silent
// runs of blocks into single proofs — showing the facade and the typed core
// working side by side.
//
//   $ ./car_rental_subscriptions

#include <algorithm>
#include <cstdio>

#include "common/rand.h"
#include "core/vchain.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"

using namespace vchain;

int main() {
  auto oracle = accum::KeyOracle::Create(/*seed=*/21);

  core::ChainConfig config;
  config.mode = core::IndexMode::kBoth;
  config.schema = chain::NumericSchema{1, 10};  // daily price
  config.skiplist_size = 2;

  // Realtime SP: one Service owns miner, subscriptions, and event buffer.
  ServiceOptions opts;
  opts.engine = EngineKind::kAcc2;
  opts.config = config;
  opts.oracle = oracle;
  opts.prover_mode = accum::ProverMode::kTrustedFast;
  auto opened = Service::Open(opts);
  if (!opened.ok()) return 1;
  std::unique_ptr<Service>& market = opened.value();

  // Standing queries of three subscribers (validated at Subscribe — a
  // malformed one would come back InvalidArgument, not match nothing).
  core::Query q_sedan = QueryBuilder()
                            .Range(0, 200, 250)
                            .AllOf({"Sedan"})
                            .AnyOf({"Benz", "BMW"})
                            .Build();
  core::Query q_van = QueryBuilder().Range(0, 0, 150).AllOf({"Van"}).Build();
  core::Query q_lux = QueryBuilder().Range(0, 700, 1023).Build();

  // Lazy SP: typed layer, identical chain mined alongside.
  accum::Acc2Engine engine(oracle, accum::ProverMode::kTrustedFast);
  sub::SubscriptionManager<accum::Acc2Engine>::Options lazy_opts;
  lazy_opts.lazy = true;
  sub::SubscriptionManager<accum::Acc2Engine> lazy(engine, config, lazy_opts);
  core::ChainBuilder<accum::Acc2Engine> lazy_miner(engine, config);

  struct Sub {
    const char* who;
    core::Query q;
    uint32_t rt_id, lazy_id;
    uint64_t owed = 0;  // next height owed by the lazy SP
  };
  std::vector<Sub> subs = {{"alice(sedan)", q_sedan, 0, 0},
                           {"bob(van)", q_van, 0, 0},
                           {"carol(lux)", q_lux, 0, 0}};
  for (Sub& s : subs) {
    auto id = market->Subscribe(s.q);
    if (!id.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    s.rt_id = id.value();
    auto lazy_id = lazy.TrySubscribe(s.q);
    if (!lazy_id.ok()) return 1;
    s.lazy_id = lazy_id.value();
  }

  chain::LightClient light;
  sub::SubVerifier<accum::Acc2Engine> lazy_verifier(engine, config, &light);

  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  Rng rng(3);
  uint64_t id = 0, ts = 1700000000;
  size_t rt_bytes = 0, lazy_bytes = 0;

  for (int day = 0; day < 14; ++day) {
    std::vector<chain::Object> offers;
    for (int i = 0; i < 4; ++i) {
      chain::Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {100 + rng.Below(400)};
      o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
      offers.push_back(std::move(o));
    }
    // The same offers feed both SPs: the Service mines + notifies in one
    // Append; the lazy SP mines on the typed layer.
    if (!market->Append(offers, ts).ok()) return 1;
    auto st = lazy_miner.AppendBlock(std::move(offers), ts);
    if (!st.ok()) return 1;
    (void)market->SyncLightClient(&light);
    const auto& block = lazy_miner.blocks().back();
    ts += 86400;

    // Realtime delivery: drain this block's buffered events and verify each
    // against headers only.
    for (const SubscriptionEvent& ev : market->TakeSubscriptionEvents()) {
      Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
        return x.rt_id == ev.query_id;
      });
      Status ok = market->VerifyNotification(s.q, ev, light);
      rt_bytes += ev.notification_bytes.size();
      if (!ev.objects.empty()) {
        std::printf("day %2d  %-13s %zu new offer(s) [%s]\n", day, s.who,
                    ev.objects.size(), ok.ToString().c_str());
        for (const auto& o : ev.objects) {
          std::printf("         -> %s\n", o.ToString().c_str());
        }
      }
      if (!ok.ok()) return 1;
    }

    // Lazy delivery: batches appear only when something matches.
    for (const auto& batch : lazy.ProcessBlockLazy(block)) {
      Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
        return x.lazy_id == batch.query_id;
      });
      uint64_t next = 0;
      Status ok = lazy_verifier.VerifyLazyBatch(s.q, batch, s.owed, &next);
      lazy_bytes += sub::LazyBatchByteSize(engine, batch);
      if (!ok.ok()) {
        std::printf("lazy batch rejected for %s: %s\n", s.who,
                    ok.ToString().c_str());
        return 1;
      }
      s.owed = next;
      if (batch.has_pending) {
        std::printf("day %2d  %-13s lazy batch: blocks %llu..%llu silent, "
                    "1 aggregated proof, %zu unit(s)\n",
                    day, s.who,
                    static_cast<unsigned long long>(batch.from_height),
                    static_cast<unsigned long long>(batch.to_height),
                    batch.units.size());
      }
    }
  }

  // Period end: flush remaining silent runs and verify full coverage.
  for (const auto& batch : lazy.FlushAll()) {
    Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
      return x.lazy_id == batch.query_id;
    });
    uint64_t next = 0;
    Status ok = lazy_verifier.VerifyLazyBatch(s.q, batch, s.owed, &next);
    lazy_bytes += sub::LazyBatchByteSize(engine, batch);
    if (!ok.ok()) return 1;
    s.owed = next;
  }
  for (const Sub& s : subs) {
    if (s.owed != market->NumBlocks()) {
      std::printf("%s: missing evidence for some blocks!\n", s.who);
      return 1;
    }
  }
  std::printf("\nall %llu blocks accounted for by every subscriber\n",
              static_cast<unsigned long long>(market->NumBlocks()));
  std::printf("bandwidth: realtime=%zuB lazy=%zuB (lazy aggregates silent "
              "runs)\n",
              rt_bytes, lazy_bytes);
  return 0;
}

// Verifiable subscription queries over a car-rental chain (the paper's
// Example 3.2 and §7).
//
// Several users register standing queries such as
//   <- , [200, 250], "Sedan" AND ("Benz" OR "BMW")>
// and receive, for every newly mined block, either matching offers plus a
// proof, or verifiable evidence that nothing matched. Shows both realtime
// notifications and the lazy scheme (Algorithm 5) whose aggregated proofs
// cover silent runs of blocks with a single pairing check.
//
//   $ ./car_rental_subscriptions

#include <algorithm>
#include <cstdio>

#include "common/rand.h"
#include "core/vchain.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"

using namespace vchain;

int main() {
  auto oracle = accum::KeyOracle::Create(/*seed=*/21);
  accum::Acc2Engine engine(oracle, accum::ProverMode::kTrustedFast);

  core::ChainConfig config;
  config.mode = core::IndexMode::kBoth;
  config.schema = chain::NumericSchema{1, 10};  // daily price
  config.skiplist_size = 2;

  // Standing queries of three subscribers.
  core::Query q_sedan;
  q_sedan.ranges = {{0, 200, 250}};
  q_sedan.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};
  core::Query q_van;
  q_van.ranges = {{0, 0, 150}};
  q_van.keyword_cnf = {{"Van"}};
  core::Query q_lux;
  q_lux.ranges = {{0, 700, 1023}};
  q_lux.keyword_cnf = {};

  sub::SubscriptionManager<accum::Acc2Engine>::Options rt_opts;
  sub::SubscriptionManager<accum::Acc2Engine> realtime(engine, config,
                                                       rt_opts);
  sub::SubscriptionManager<accum::Acc2Engine>::Options lazy_opts;
  lazy_opts.lazy = true;
  sub::SubscriptionManager<accum::Acc2Engine> lazy(engine, config, lazy_opts);

  struct Sub {
    const char* who;
    core::Query q;
    uint32_t rt_id, lazy_id;
    uint64_t owed = 0;  // next height owed by the lazy SP
  };
  std::vector<Sub> subs = {{"alice(sedan)", q_sedan, 0, 0},
                           {"bob(van)", q_van, 0, 0},
                           {"carol(lux)", q_lux, 0, 0}};
  for (Sub& s : subs) {
    s.rt_id = realtime.Subscribe(s.q);
    s.lazy_id = lazy.Subscribe(s.q);
  }

  // The rental market mines a block per day.
  core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
  chain::LightClient light;
  sub::SubVerifier<accum::Acc2Engine> verifier(engine, config, &light);

  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  Rng rng(3);
  uint64_t id = 0, ts = 1700000000;
  size_t rt_bytes = 0, lazy_bytes = 0;

  for (int day = 0; day < 14; ++day) {
    std::vector<chain::Object> offers;
    for (int i = 0; i < 4; ++i) {
      chain::Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {100 + rng.Below(400)};
      o.keywords = {kTypes[rng.Below(3)], kMakes[rng.Below(4)]};
      offers.push_back(std::move(o));
    }
    auto st = miner.AppendBlock(std::move(offers), ts);
    if (!st.ok()) return 1;
    (void)miner.SyncLightClient(&light);
    const auto& block = miner.blocks().back();
    ts += 86400;

    // Realtime delivery: every subscriber gets a verifiable notification.
    for (const auto& notif : realtime.ProcessBlock(block)) {
      Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
        return x.rt_id == notif.query_id;
      });
      Status ok = verifier.VerifyNotification(s.q, notif);
      rt_bytes += sub::SubNotificationByteSize(engine, notif);
      if (!notif.objects.empty()) {
        std::printf("day %2d  %-13s %zu new offer(s) [%s]\n", day, s.who,
                    notif.objects.size(), ok.ToString().c_str());
        for (const auto& o : notif.objects) {
          std::printf("         -> %s\n", o.ToString().c_str());
        }
      }
      if (!ok.ok()) return 1;
    }

    // Lazy delivery: batches appear only when something matches.
    for (const auto& batch : lazy.ProcessBlockLazy(block)) {
      Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
        return x.lazy_id == batch.query_id;
      });
      uint64_t next = 0;
      Status ok = verifier.VerifyLazyBatch(s.q, batch, s.owed, &next);
      lazy_bytes += sub::LazyBatchByteSize(engine, batch);
      if (!ok.ok()) {
        std::printf("lazy batch rejected for %s: %s\n", s.who,
                    ok.ToString().c_str());
        return 1;
      }
      s.owed = next;
      if (batch.has_pending) {
        std::printf("day %2d  %-13s lazy batch: blocks %llu..%llu silent, "
                    "1 aggregated proof, %zu unit(s)\n",
                    day, s.who,
                    static_cast<unsigned long long>(batch.from_height),
                    static_cast<unsigned long long>(batch.to_height),
                    batch.units.size());
      }
    }
  }

  // Period end: flush remaining silent runs and verify full coverage.
  for (const auto& batch : lazy.FlushAll()) {
    Sub& s = *std::find_if(subs.begin(), subs.end(), [&](const Sub& x) {
      return x.lazy_id == batch.query_id;
    });
    uint64_t next = 0;
    Status ok = verifier.VerifyLazyBatch(s.q, batch, s.owed, &next);
    lazy_bytes += sub::LazyBatchByteSize(engine, batch);
    if (!ok.ok()) return 1;
    s.owed = next;
  }
  for (const Sub& s : subs) {
    if (s.owed != miner.blocks().size()) {
      std::printf("%s: missing evidence for some blocks!\n", s.who);
      return 1;
    }
  }
  std::printf("\nall %zu blocks accounted for by every subscriber\n",
              miner.blocks().size());
  std::printf("bandwidth: realtime=%zuB lazy=%zuB (lazy aggregates silent "
              "runs)\n",
              rt_bytes, lazy_bytes);
  return 0;
}

// sp_query — a light user querying a remote SP from a separate process.
//
// Connects to a vchain_spd instance, syncs and validates block headers,
// submits one Boolean range query, verifies the response locally against
// those headers, and prints the results plus the SHA-256 of the response
// bytes. Exit 0 only when everything — transport, decode, verification,
// and an optional expected-bytes hash — checks out, which is what the CI
// e2e job asserts.
//
//   $ ./sp_query --port 8080 --demo-query --expect-hash <hex>
//   $ ./sp_query --port 8080 --window 1700000000 1700400000 \
//                --range 0 200 260 --all Sedan --any Benz --any BMW
//
// Flags: --host H --port N --engine KIND    (must match the SP)
//        --demo-query                       use the canonical demo query
//        --window TS TE | --range DIM LO HI | --all KW | --any KW (repeat)
//        --expect-hash HEX                  fail unless response hash matches
//        --stats                            also print /stats JSON
//        --timing                           print client wall time + the SP's
//                                           per-stage trace (X-Vchain-Trace)
//        --trace                            render the SP's span tree
//                                           (causal, indented, with per-span
//                                           counts) instead of the one-line
//                                           trace JSON
//        --retries N                        attempts per request (default 3;
//                                           1 disables retry)
//        --backoff-ms N                     initial retry backoff (default 100)
//        --subscribe N                      after the query: register the same
//                                           query as a standing subscription
//                                           and long-poll /events until N
//                                           notifications arrive, each decoded
//                                           from its canonical bytes and
//                                           verified against the header chain
//                                           (the SP must be mining, e.g.
//                                           vchain_spd --mine-every)
//        --subscribe-timeout-s N            give up on the subscription leg
//                                           after N seconds (default 60)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/json.h"
#include "net/sp_client.h"
#include "net/wire.h"
#include "spd_common.h"

namespace {

/// --window/--range consume the following N positional values, so collect
/// raw argv once here instead of teaching Flags about arities.
bool BuildQueryFromFlags(int argc, char** argv, vchain::core::Query* out) {
  vchain::QueryBuilder builder;
  bool any_flag = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_u64 = [&](uint64_t* v) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *v = std::strtoull(argv[++i], &end, 10);
      return end != nullptr && *end == '\0';
    };
    if (arg == "--window") {
      uint64_t ts, te;
      if (!next_u64(&ts) || !next_u64(&te)) return false;
      builder.Window(ts, te);
      any_flag = true;
    } else if (arg == "--range") {
      uint64_t dim, lo, hi;
      if (!next_u64(&dim) || !next_u64(&lo) || !next_u64(&hi)) return false;
      builder.Range(static_cast<uint32_t>(dim), lo, hi);
      any_flag = true;
    } else if (arg == "--all") {
      if (i + 1 >= argc) return false;
      builder.AllOf({argv[++i]});
      any_flag = true;
    } else if (arg == "--any") {
      if (i + 1 >= argc) return false;
      std::vector<std::string> clause;
      std::string kws = argv[++i];
      size_t start = 0;
      while (start <= kws.size()) {
        size_t comma = kws.find(',', start);
        if (comma == std::string::npos) comma = kws.size();
        if (comma > start) clause.push_back(kws.substr(start, comma - start));
        start = comma + 1;
      }
      if (clause.empty()) return false;
      builder.AnyOf(std::move(clause));
      any_flag = true;
    }
  }
  if (!any_flag) return false;
  *out = builder.Build();
  return true;
}

/// Render the server's span tree (the "spans" array inside the
/// X-Vchain-Trace JSON) as an indented causal tree, children under their
/// parent in start order, with each span's notes as trailing key=value
/// counts. Returns false when the header carries no parseable span tree
/// (old server, or the tree was dropped) — caller falls back to raw JSON.
bool PrintSpanTree(const std::string& trace_json) {
  auto parsed = vchain::net::ParseJson(trace_json);
  if (!parsed.ok() || !parsed.value().is_object()) return false;
  const vchain::net::JsonValue* spans = parsed.value().Find("spans");
  if (spans == nullptr || !spans->is_array() || spans->items().empty()) {
    return false;
  }
  const auto& items = spans->items();
  std::printf("server span tree:\n");
  // Spans are emitted in Begin() order, so children always follow their
  // parent; a single pass with a recursive print keeps start order.
  auto num = [](const vchain::net::JsonValue* v) {
    return v != nullptr && v->is_number() ? v->as_number() : 0;
  };
  std::vector<char> printed(items.size(), 0);
  // Recursive lambda via explicit self-reference.
  auto print_span = [&](auto&& self, size_t idx, int depth) -> void {
    const vchain::net::JsonValue& span = items[idx];
    printed[idx] = 1;
    const vchain::net::JsonValue* name = span.Find("name");
    std::printf("%*s%-*s %10.3f ms", 2 * depth, "",
                depth < 12 ? 28 - 2 * depth : 4,
                name != nullptr && name->is_string() ? name->as_string().c_str()
                                                     : "?",
                static_cast<double>(num(span.Find("duration_ns"))) * 1e-6);
    for (const auto& [key, value] : span.members()) {
      if (key == "id" || key == "parent" || key == "name" ||
          key == "start_ns" || key == "duration_ns" || !value.is_number()) {
        continue;
      }
      std::printf("  %s=%llu", key.c_str(),
                  static_cast<unsigned long long>(value.as_number()));
    }
    std::printf("\n");
    const uint64_t id = num(span.Find("id"));
    for (size_t j = idx + 1; j < items.size(); ++j) {
      if (!printed[j] && num(items[j].Find("parent")) == id) {
        self(self, j, depth + 1);
      }
    }
  };
  for (size_t i = 0; i < items.size(); ++i) {
    // Roots first (parent 0); orphans of dropped spans surface at top level
    // too, so a truncated tree still prints every retained span.
    if (!printed[i] && num(items[i].Find("parent")) == 0) {
      print_span(print_span, i, 1);
    }
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (!printed[i]) print_span(print_span, i, 1);
  }
  const vchain::net::JsonValue* dropped =
      parsed.value().Find("spans_dropped");
  if (dropped != nullptr && dropped->is_number() &&
      dropped->as_number() > 0) {
    std::printf("  (+%llu spans dropped at the server's cap)\n",
                static_cast<unsigned long long>(dropped->as_number()));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spd::Flags flags(argc, argv);
  vchain::EngineKind engine;
  if (!spd::ParseEngineFlag(flags, &engine)) return 2;

  vchain::core::Query q;
  if (flags.Has("--demo-query")) {
    q = spd::DemoQuery();
  } else if (!BuildQueryFromFlags(argc, argv, &q)) {
    std::fprintf(stderr,
                 "no query: pass --demo-query or --window/--range/--all/--any "
                 "flags\n");
    return 2;
  }

  vchain::net::SpClient::Options copts;
  copts.host = flags.Get("--host", "127.0.0.1");
  copts.port =
      static_cast<uint16_t>(std::stoul(flags.Get("--port", "8080")));
  copts.verify = spd::DemoOptions(engine);
  // Resilience knobs: transient failures (connect refused during an SP
  // restart, 429/503 back-off answers) are retried with jittered
  // exponential backoff before anything is reported as an error.
  copts.retry.max_attempts =
      static_cast<int>(std::stoul(flags.Get("--retries", "3")));
  copts.retry.initial_backoff_ms =
      static_cast<int>(std::stoul(flags.Get("--backoff-ms", "100")));
  auto connected = vchain::net::SpClient::Connect(copts);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  auto client = connected.TakeValue();

  vchain::Status health = client->Healthz();
  if (!health.ok()) {
    std::fprintf(stderr, "healthz failed: %s\n", health.ToString().c_str());
    return 1;
  }

  // 1. Validated header sync: the client's own light client re-checks
  // heights, hash linkage, timestamps, and consensus proofs.
  vchain::chain::LightClient light = client->NewLightClient();
  vchain::Status synced = client->SyncHeaders(&light);
  if (!synced.ok()) {
    std::fprintf(stderr, "header sync failed: %s\n",
                 synced.ToString().c_str());
    return 1;
  }
  std::printf("synced %zu headers\n", light.Height());

  // 2. The query, over the wire. --timing/--trace additionally opt into the
  // SP's trace header; the response bytes are identical either way.
  std::printf("query: %s\n", vchain::net::QueryToJson(q).c_str());
  const bool timing = flags.Has("--timing");
  const bool render_trace = flags.Has("--trace");
  std::string server_trace;
  uint64_t t0 = vchain::metrics::MonotonicNanos();
  auto result =
      client->Query(q, timing || render_trace ? &server_trace : nullptr);
  uint64_t wall_ns = vchain::metrics::MonotonicNanos() - t0;
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (timing) {
    std::printf("client_wall_ms=%.3f\n",
                static_cast<double>(wall_ns) * 1e-6);
    std::printf("server_trace=%s\n",
                server_trace.empty() ? "(none)" : server_trace.c_str());
  }
  if (render_trace &&
      (server_trace.empty() || !PrintSpanTree(server_trace))) {
    std::printf("server span tree: (none)\n");
  }
  std::printf("received %zu result(s), VO = %zu bytes\n",
              result.value().objects.size(), result.value().vo_bytes);
  for (const vchain::chain::Object& o : result.value().objects) {
    std::printf("  %s\n", o.ToString().c_str());
  }
  std::string hash = spd::HexDigest(result.value().response_bytes);
  std::printf("response_hash=%s\n", hash.c_str());

  // 3. Local verification — nothing past the socket is trusted without it.
  vchain::Status verified = client->Verify(q, result.value(), light);
  std::printf("verification: %s\n", verified.ToString().c_str());
  if (!verified.ok()) return 1;

  std::string expect = flags.Get("--expect-hash", "");
  if (!expect.empty() && expect != hash) {
    std::fprintf(stderr,
                 "response bytes differ from the in-process answer:\n"
                 "  expected %s\n  received %s\n",
                 expect.c_str(), hash.c_str());
    return 1;
  }

  // 4. Optional subscription leg: the same query as a standing
  // subscription. Every notification is decoded from its canonical bytes
  // and verified before it counts — a lying SP fails the leg, exactly like
  // a tampered query response fails step 3.
  size_t want = std::stoul(flags.Get("--subscribe", "0"));
  if (want > 0) {
    auto sub = client->Subscribe(q);
    if (!sub.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   sub.status().ToString().c_str());
      return 1;
    }
    std::printf("subscribed id=%u cursor=%llu\n", sub.value().id(),
                static_cast<unsigned long long>(sub.value().cursor()));
    std::fflush(stdout);
    uint64_t timeout_s =
        std::stoull(flags.Get("--subscribe-timeout-s", "60"));
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(static_cast<int64_t>(timeout_s));
    size_t got = 0;
    while (got < want && std::chrono::steady_clock::now() < deadline) {
      auto events = sub.value().Poll(&light, /*wait_ms=*/1000);
      if (!events.ok()) {
        std::fprintf(stderr, "poll failed: %s\n",
                     events.status().ToString().c_str());
        return 1;
      }
      for (const vchain::api::SubscriptionEvent& ev : events.value()) {
        std::printf("notification height=%llu results=%zu hash=%s\n",
                    static_cast<unsigned long long>(ev.height),
                    ev.objects.size(),
                    spd::HexDigest(ev.notification_bytes).c_str());
        if (++got >= want) break;
      }
      std::fflush(stdout);
    }
    if (got < want) {
      std::fprintf(stderr,
                   "subscription timed out: %zu/%zu notifications in %llus "
                   "(is the SP mining? vchain_spd --mine-every)\n",
                   got, want, static_cast<unsigned long long>(timeout_s));
      return 1;
    }
    vchain::Status bye = sub.value().Unsubscribe();
    if (!bye.ok()) {
      std::fprintf(stderr, "unsubscribe failed: %s\n",
                   bye.ToString().c_str());
      return 1;
    }
    std::printf("subscription: verified %zu notification(s)\n", got);
  }

  if (flags.Has("--stats")) {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("stats: %s\n",
                vchain::net::StatsToJson(stats.value()).c_str());
  }
  return 0;
}

// Verifiable blockchain transaction search (the paper's Example 3.1).
//
// Models a coin-transfer ledger: each object is a transaction with a
// transfer amount (numeric) and sender/receiver addresses (set-valued).
// A mobile wallet asks an untrusted explorer service for
//   "transactions of >= N coins touching address X in a time window"
// and verifies the explorer's answer against block headers only, for all six
// scheme combinations the paper evaluates ({nil,intra,both} x {acc1,acc2}).
//
//   $ ./btc_explorer

#include <cstdio>

#include "common/rand.h"
#include "common/timer.h"
#include "core/vchain.h"

using namespace vchain;

namespace {

std::vector<std::vector<chain::Object>> MakeLedger(
    const chain::NumericSchema& schema, size_t blocks, size_t tx_per_block) {
  Rng rng(99);
  std::vector<std::vector<chain::Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<chain::Object> txs;
    for (size_t i = 0; i < tx_per_block; ++i) {
      chain::Object tx;
      tx.id = id++;
      tx.timestamp = 1600000000 + b * 600;  // ~10 min blocks
      // Heavy-tailed transfer amount.
      double u = rng.NextDouble();
      tx.numeric = {static_cast<uint64_t>(u * u * schema.MaxValue())};
      tx.keywords = {"send:acct" + std::to_string(rng.Below(40)),
                     "recv:acct" + std::to_string(rng.Below(40))};
      txs.push_back(std::move(tx));
    }
    out.push_back(std::move(txs));
  }
  return out;
}

template <typename Engine>
void RunScheme(const char* name, Engine engine, core::IndexMode mode,
               const std::vector<std::vector<chain::Object>>& ledger,
               const chain::NumericSchema& schema) {
  core::ChainConfig config;
  config.mode = mode;
  config.schema = schema;
  config.skiplist_size = 2;

  core::ChainBuilder<Engine> miner(engine, config);
  Timer build;
  for (const auto& txs : ledger) {
    auto st = miner.AppendBlock(txs, txs.front().timestamp);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   st.status().ToString().c_str());
      return;
    }
  }
  double build_ms = build.ElapsedMillis();

  chain::LightClient light;
  (void)miner.SyncLightClient(&light);

  // "Amount >= 60% of max, touching acct7, last 8 blocks."
  core::Query q;
  q.time_start = ledger[ledger.size() - 8].front().timestamp;
  q.time_end = ledger.back().front().timestamp;
  q.ranges = {{0, schema.MaxValue() * 6 / 10, schema.MaxValue()}};
  q.keyword_cnf = {{"send:acct7", "recv:acct7"}};

  core::QueryProcessor<Engine> sp(engine, config, &miner.blocks());
  Timer sp_time;
  auto resp = sp.TimeWindowQuery(q);
  double sp_ms = sp_time.ElapsedMillis();
  if (!resp.ok()) return;

  core::Verifier<Engine> verifier(engine, config, &light);
  Timer user_time;
  Status st = verifier.VerifyTimeWindow(q, resp.value());
  double user_ms = user_time.ElapsedMillis();

  std::printf(
      "%-12s results=%2zu  build=%7.1fms  sp=%7.1fms  user=%7.1fms  "
      "vo=%6zuB  %s\n",
      name, resp.value().objects.size(), build_ms, sp_ms, user_ms,
      core::VoByteSize(engine, resp.value().vo), st.ToString().c_str());
}

}  // namespace

int main() {
  chain::NumericSchema schema{1, 12};
  auto ledger = MakeLedger(schema, /*blocks=*/16, /*tx_per_block=*/6);
  std::printf("ledger: %zu blocks x %zu transactions\n", ledger.size(),
              ledger[0].size());

  auto oracle = accum::KeyOracle::Create(/*seed=*/5);
  using Mode = core::IndexMode;
  // The paper's six schemes. Trusted-fast digests keep this demo snappy;
  // proof generation (the SP cost) stays honest.
  for (auto [mode, label] : {std::pair{Mode::kNil, "nil"},
                             std::pair{Mode::kIntra, "intra"},
                             std::pair{Mode::kBoth, "both"}}) {
    RunScheme((std::string(label) + "-acc1").c_str(),
              accum::Acc1Engine(oracle, accum::ProverMode::kTrustedFast), mode,
              ledger, schema);
    RunScheme((std::string(label) + "-acc2").c_str(),
              accum::Acc2Engine(oracle, accum::ProverMode::kTrustedFast), mode,
              ledger, schema);
  }
  return 0;
}

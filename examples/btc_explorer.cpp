// Verifiable blockchain transaction search (the paper's Example 3.1).
//
// Models a coin-transfer ledger: each object is a transaction with a
// transfer amount (numeric) and sender/receiver addresses (set-valued).
// A mobile wallet asks an untrusted explorer service for
//   "transactions of >= N coins touching address X in a time window"
// and verifies the explorer's answer against block headers only, for all six
// scheme combinations the paper evaluates ({nil,intra,both} x {acc1,acc2}).
//
// Since the vchain::Service redesign the engine is a *runtime* value, so the
// six schemes are plain data — one options struct each, no templates.
//
//   $ ./btc_explorer

#include <cstdio>

#include "common/rand.h"
#include "common/timer.h"
#include "core/vchain.h"

using namespace vchain;

namespace {

std::vector<std::vector<chain::Object>> MakeLedger(
    const chain::NumericSchema& schema, size_t blocks, size_t tx_per_block) {
  Rng rng(99);
  std::vector<std::vector<chain::Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<chain::Object> txs;
    for (size_t i = 0; i < tx_per_block; ++i) {
      chain::Object tx;
      tx.id = id++;
      tx.timestamp = 1600000000 + b * 600;  // ~10 min blocks
      // Heavy-tailed transfer amount.
      double u = rng.NextDouble();
      tx.numeric = {static_cast<uint64_t>(u * u * schema.MaxValue())};
      tx.keywords = {"send:acct" + std::to_string(rng.Below(40)),
                     "recv:acct" + std::to_string(rng.Below(40))};
      txs.push_back(std::move(tx));
    }
    out.push_back(std::move(txs));
  }
  return out;
}

bool RunScheme(const char* name, EngineKind engine, core::IndexMode mode,
               const std::shared_ptr<accum::KeyOracle>& oracle,
               const std::vector<std::vector<chain::Object>>& ledger,
               const chain::NumericSchema& schema) {
  ServiceOptions opts;
  opts.engine = engine;
  opts.config.mode = mode;
  opts.config.schema = schema;
  opts.config.skiplist_size = 2;
  opts.oracle = oracle;  // one trusted setup shared by all six schemes
  // Trusted-fast digests keep this demo snappy; proof generation (the SP
  // cost) stays honest.
  opts.prover_mode = accum::ProverMode::kTrustedFast;

  auto opened = Service::Open(opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<Service>& explorer = opened.value();

  Timer build;
  for (const auto& txs : ledger) {
    Status st = explorer->Append(txs, txs.front().timestamp);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return false;
    }
  }
  double build_ms = build.ElapsedMillis();

  chain::LightClient light;
  if (!explorer->SyncLightClient(&light).ok()) return false;

  // "Amount >= 60% of max, touching acct7, last 8 blocks."
  core::Query q =
      QueryBuilder()
          .Window(ledger[ledger.size() - 8].front().timestamp,
                  ledger.back().front().timestamp)
          .Range(0, schema.MaxValue() * 6 / 10, schema.MaxValue())
          .AnyOf({"send:acct7", "recv:acct7"})
          .Build();

  Timer sp_time;
  auto result = explorer->Query(q);
  double sp_ms = sp_time.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return false;
  }

  Timer user_time;
  Status st = explorer->Verify(q, result.value(), light);
  double user_ms = user_time.ElapsedMillis();

  std::printf(
      "%-12s results=%2zu  build=%7.1fms  sp=%7.1fms  user=%7.1fms  "
      "vo=%6zuB  %s\n",
      name, result.value().objects.size(), build_ms, sp_ms, user_ms,
      result.value().vo_bytes, st.ToString().c_str());
  return st.ok();
}

}  // namespace

int main() {
  chain::NumericSchema schema{1, 12};
  auto ledger = MakeLedger(schema, /*blocks=*/16, /*tx_per_block=*/6);
  std::printf("ledger: %zu blocks x %zu transactions\n", ledger.size(),
              ledger[0].size());

  auto oracle = accum::KeyOracle::Create(/*seed=*/5);
  using Mode = core::IndexMode;
  // The paper's six schemes, as runtime (mode, engine) pairs.
  for (auto [mode, label] : {std::pair{Mode::kNil, "nil"},
                             std::pair{Mode::kIntra, "intra"},
                             std::pair{Mode::kBoth, "both"}}) {
    if (!RunScheme((std::string(label) + "-acc1").c_str(), EngineKind::kAcc1,
                   mode, oracle, ledger, schema)) {
      return 1;
    }
    if (!RunScheme((std::string(label) + "-acc2").c_str(), EngineKind::kAcc2,
                   mode, oracle, ledger, schema)) {
      return 1;
    }
  }
  return 0;
}

// Quickstart: the smallest complete vChain deployment.
//
// One miner builds an ADS-extended chain, an untrusted service provider
// answers a Boolean range query with a verification object, and a light node
// that holds nothing but block headers verifies soundness and completeness.
// The chain is then persisted to a durable block store and the same query is
// served again from a *reopened* store — byte-identical — the restart path a
// production SP takes.
//
//   $ ./quickstart

#include <cstdio>
#include <filesystem>

#include "core/vchain.h"

using namespace vchain;

int main() {
  // 1. Trusted setup: the accumulator key oracle (a TTP/SGX role; §5.2.2).
  auto oracle = accum::KeyOracle::Create(/*seed=*/7);
  accum::Acc2Engine engine(oracle);  // Construction 2: supports aggregation

  // 2. Chain configuration shared by miner, SP and users.
  core::ChainConfig config;
  config.mode = core::IndexMode::kBoth;  // intra-block tree + skip list
  config.schema = chain::NumericSchema{/*dims=*/1, /*bits=*/10};  // price
  config.skiplist_size = 2;

  // 3. The miner packs rental offers into blocks (Example 3.2 of the paper).
  core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
  struct Offer {
    uint64_t price;
    std::vector<std::string> tags;
  };
  std::vector<std::vector<Offer>> days = {
      {{230, {"Sedan", "Benz"}}, {180, {"Van", "Toyota"}}},
      {{260, {"Sedan", "BMW"}}, {210, {"SUV", "Audi"}}},
      {{240, {"Sedan", "BMW"}}, {520, {"Van", "Benz"}}},
      {{199, {"Sedan", "Audi"}}, {245, {"Sedan", "Benz"}}},
  };
  uint64_t id = 0, ts = 1700000000;
  for (const auto& day : days) {
    std::vector<chain::Object> objects;
    for (const Offer& offer : day) {
      chain::Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {offer.price};
      o.keywords = offer.tags;
      objects.push_back(std::move(o));
    }
    auto stats = miner.AppendBlock(std::move(objects), ts);
    if (!stats.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    ts += 86400;
  }
  std::printf("mined %zu blocks\n", miner.blocks().size());

  // 4. A light node syncs headers only (~%zu bytes per block).
  chain::LightClient light;
  if (!miner.SyncLightClient(&light).ok()) return 1;
  std::printf("light node synced %zu headers (%zu bytes each)\n",
              light.Height(), chain::LightClient::HeaderBytes());

  // 5. Query: sedans from Benz or BMW priced 200..250 over the whole window.
  core::Query q;
  q.time_start = 1700000000;
  q.time_end = ts;
  q.ranges = {{0, 200, 250}};
  q.keyword_cnf = {{"Sedan"}, {"Benz", "BMW"}};

  core::QueryProcessor<accum::Acc2Engine> sp(engine, config, &miner.blocks(),
                                             &miner.timestamp_index());
  auto resp = sp.TimeWindowQuery(q);
  if (!resp.ok()) return 1;

  std::printf("SP returned %zu result(s), VO = %zu bytes\n",
              resp.value().objects.size(),
              core::VoByteSize(engine, resp.value().vo));
  for (const chain::Object& o : resp.value().objects) {
    std::printf("  %s\n", o.ToString().c_str());
  }

  // 6. The light node verifies soundness + completeness from headers alone.
  core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
  Status st = verifier.VerifyTimeWindow(q, resp.value());
  std::printf("verification: %s\n", st.ToString().c_str());

  // 7. A cheating SP is caught: drop one result.
  auto tampered = resp.value();
  if (!tampered.objects.empty()) {
    tampered.objects.pop_back();
    Status bad = verifier.VerifyTimeWindow(q, tampered);
    std::printf("tampered response rejected: %s\n", bad.ToString().c_str());
  }

  // 8. Persist the chain: every block (objects + digests + indexes) lands in
  // an append-only, checksummed segment log. O(1) per block.
  auto store_dir =
      (std::filesystem::temp_directory_path() / "vchain_quickstart").string();
  std::filesystem::remove_all(store_dir);
  {
    auto db = store::BlockStore::Open(store_dir);
    if (!db.ok()) return 1;
    if (!miner.AttachStore(db.value().get()).ok()) return 1;
    if (!db.value()->Sync().ok()) return 1;
    std::printf("persisted %llu blocks to %s\n",
                static_cast<unsigned long long>(db.value()->NumBlocks()),
                store_dir.c_str());
    // The builder never owns the store; detach before it goes away.
    if (!miner.DetachStore().ok()) return 1;
  }  // store closed — "process exit"

  // 9. Cold start: reopen the store, rebuild the timestamp index and light
  // client from the persisted headers (no re-mining), and serve the same
  // query through the disk-backed BlockSource.
  auto db = store::BlockStore::Open(store_dir);
  if (!db.ok()) return 1;
  core::TimestampIndex ts_index = db.value()->RebuildTimestampIndex();
  chain::LightClient cold_light;
  if (!db.value()->SyncLightClient(&cold_light).ok()) return 1;
  store::StoreBlockSource<accum::Acc2Engine> source(engine, db.value().get(),
                                                    config.block_cache_blocks);
  core::QueryProcessor<accum::Acc2Engine> cold_sp(engine, config, &source,
                                                  &ts_index);
  auto cold_resp = cold_sp.TimeWindowQuery(q);
  if (!cold_resp.ok()) return 1;
  ByteWriter mem_bytes, disk_bytes;
  core::SerializeResponse(engine, resp.value(), &mem_bytes);
  core::SerializeResponse(engine, cold_resp.value(), &disk_bytes);
  bool identical = mem_bytes.bytes() == disk_bytes.bytes();
  core::Verifier<accum::Acc2Engine> cold_verifier(engine, config, &cold_light);
  Status cold_st = cold_verifier.VerifyTimeWindow(q, cold_resp.value());
  std::printf("reopened store served the query: %s, bytes %s in-memory SP\n",
              cold_st.ToString().c_str(),
              identical ? "identical to" : "DIFFER from");
  std::filesystem::remove_all(store_dir);
  return (st.ok() && cold_st.ok() && identical) ? 0 : 1;
}

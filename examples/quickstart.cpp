// Quickstart: the smallest complete vChain deployment, through the
// vchain::Service front door.
//
// One Service owns the whole SP stack — miner write-through, durable block
// store, timestamp index, proof cache, subscriptions — behind a runtime
// engine choice. A light node that holds nothing but block headers verifies
// soundness and completeness of every answer. The service is then torn down
// and reopened from its store directory and the same query is served again,
// byte-identical — the restart path a production SP takes.
//
//   $ ./quickstart

#include <cstdio>
#include <filesystem>

#include "core/vchain.h"

using namespace vchain;

int main() {
  // 1. One options struct fixes the deployment: engine (a runtime value —
  // no templates at this layer), chain schema, store directory.
  auto store_dir =
      (std::filesystem::temp_directory_path() / "vchain_quickstart").string();
  std::filesystem::remove_all(store_dir);

  ServiceOptions opts;
  opts.engine = EngineKind::kAcc2;  // Construction 2: supports aggregation
  opts.config.mode = core::IndexMode::kBoth;  // intra-block tree + skip list
  opts.config.schema = chain::NumericSchema{/*dims=*/1, /*bits=*/10};
  opts.config.skiplist_size = 2;
  opts.oracle_seed = 7;  // trusted setup (a TTP/SGX role; §5.2.2)
  opts.store_dir = store_dir;  // "" would keep the chain in memory

  auto opened = Service::Open(opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Service> svc = opened.TakeValue();

  // 2. The miner packs rental offers into blocks (Example 3.2 of the paper).
  struct Offer {
    uint64_t price;
    std::vector<std::string> tags;
  };
  std::vector<std::vector<Offer>> days = {
      {{230, {"Sedan", "Benz"}}, {180, {"Van", "Toyota"}}},
      {{260, {"Sedan", "BMW"}}, {210, {"SUV", "Audi"}}},
      {{240, {"Sedan", "BMW"}}, {520, {"Van", "Benz"}}},
      {{199, {"Sedan", "Audi"}}, {245, {"Sedan", "Benz"}}},
  };
  uint64_t id = 0, ts = 1700000000;
  for (const auto& day : days) {
    std::vector<chain::Object> objects;
    for (const Offer& offer : day) {
      chain::Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {offer.price};
      o.keywords = offer.tags;
      objects.push_back(std::move(o));
    }
    Status st = svc->Append(std::move(objects), ts);
    if (!st.ok()) {
      std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ts += 86400;
  }
  if (!svc->Sync().ok()) return 1;  // durable commit point
  std::printf("mined %llu blocks (engine %s, store %s)\n",
              static_cast<unsigned long long>(svc->NumBlocks()),
              EngineKindName(svc->engine_kind()), store_dir.c_str());

  // 3. A light node syncs headers only.
  chain::LightClient light;
  if (!svc->SyncLightClient(&light).ok()) return 1;
  std::printf("light node synced %zu headers (%zu bytes each)\n",
              light.Height(), chain::LightClient::HeaderBytes());

  // 4. Query: sedans from Benz or BMW priced 200..250 over the whole window.
  // Malformed queries (inverted ranges, empty OR-clauses, unknown
  // dimensions) come back as InvalidArgument instead of silent garbage.
  core::Query q = QueryBuilder()
                      .Window(1700000000, ts)
                      .Range(/*dim=*/0, 200, 250)
                      .AllOf({"Sedan"})
                      .AnyOf({"Benz", "BMW"})
                      .Build();
  auto result = svc->Query(q);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("SP returned %zu result(s), VO = %zu bytes\n",
              result.value().objects.size(), result.value().vo_bytes);
  for (const chain::Object& o : result.value().objects) {
    std::printf("  %s\n", o.ToString().c_str());
  }

  // 5. The light node verifies soundness + completeness from headers alone.
  Status st = svc->Verify(q, result.value(), light);
  std::printf("verification: %s\n", st.ToString().c_str());

  // 6. A cheating (or corrupted) SP is caught: flip one byte of the wire
  // response and re-verify — the user either can't decode it (Corruption)
  // or catches the lie against the headers (VerifyFailed).
  QueryResult tampered = result.value();
  if (!tampered.response_bytes.empty()) {
    tampered.response_bytes[tampered.response_bytes.size() / 2] ^= 0x01;
    Status bad = svc->Verify(q, tampered, light);
    std::printf("tampered response rejected: %s\n", bad.ToString().c_str());
    if (bad.ok()) return 1;
  }

  // 7. Restart: drop the service, reopen the same directory, serve the same
  // query. No digest is recomputed; the response is byte-identical.
  Bytes first_bytes = result.value().response_bytes;
  svc.reset();
  auto reopened = Service::Open(opts);
  if (!reopened.ok()) return 1;
  svc = reopened.TakeValue();
  chain::LightClient cold_light;
  if (!svc->SyncLightClient(&cold_light).ok()) return 1;
  auto cold = svc->Query(q);
  if (!cold.ok()) return 1;
  bool identical = cold.value().response_bytes == first_bytes;
  Status cold_st = svc->Verify(q, cold.value(), cold_light);
  std::printf("reopened service served the query: %s, bytes %s first run\n",
              cold_st.ToString().c_str(),
              identical ? "identical to" : "DIFFER from");

  std::filesystem::remove_all(store_dir);
  return (st.ok() && cold_st.ok() && identical) ? 0 : 1;
}

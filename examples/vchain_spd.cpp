// vchain_spd — the SP as a standalone network daemon.
//
// Serves a vchain::Service (in-memory or persisted) over the HTTP wire
// protocol (net/sp_server.h) until SIGINT/SIGTERM. With --demo N it first
// mines N deterministic demo blocks (resuming a persisted store mines only
// the missing tail) and prints `demo_query_hash=<sha256>` — the hash of the
// canonical demo query's in-process response bytes, which a separate-process
// client can compare against what it receives over the wire (CI does
// exactly this; see sp_query --expect-hash).
//
//   $ ./vchain_spd --engine acc2 --store /tmp/spd --demo 24 --port 8080
//   serving engine=acc2 blocks=24 on 127.0.0.1:8080
//
// Flags: --engine mock-acc1|mock-acc2|acc1|acc2   (default acc2)
//        --store DIR    persist/reopen a chain    (default: in-memory)
//        --port N       0 = ephemeral             (default 8080)
//        --threads N    HTTP workers              (default 4)
//        --demo N       ensure N demo blocks exist
//        --mine-every MS  keep mining one demo block every MS milliseconds
//                         *after* serving starts — the live-chain mode the
//                         e2e subscription leg drives (subscribers watch
//                         blocks land over /events while queries serve)
//        --once         exit immediately after startup (smoke mode)
//        --max-conns N  connection cap; excess shed 503  (default 64)
//        --rps N        per-IP rate limit, 0 = off       (default 0)
//        --drain-timeout N  graceful-drain budget, seconds (default 10)
//        --log-level L  debug|info|warn|error|off        (default info)
//        --log-json     one JSON object per log line (for log shippers)
//        --slow-query-ms N  warn-log queries slower than N ms, with their
//                           stage breakdown (default 0 = off)
//        --debug-endpoints  serve GET /debug/traces|events|config (off by
//                           default; they 404 otherwise)
//        --canary N     audit every Nth completed query by re-verifying it
//                       against the header chain (default 0 = off)
//
// Observability: GET /metrics serves the Prometheus exposition of every
// tier (store, service, HTTP); logs go to stderr with a request id stamped
// on every line a request emits (the client's X-Request-Id when sent).
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish in-flight
// requests, then a final store Sync() so everything served as durable is.
// The handlers are installed before demo mining — an interrupt mid-mining
// syncs what was mined and exits cleanly instead of dying mid-append.
// SIGQUIT dumps the flight recorder (recent structured events across all
// tiers) to stderr without stopping the daemon — the "what just happened"
// lever for a wedged or misbehaving SP.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flight_recorder.h"
#include "common/log.h"
#include "net/sp_server.h"
#include "spd_common.h"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
// Async-signal-safe: DumpToFd uses only stack buffers, atomics, write(2).
void HandleQuit(int) { vchain::flight::FlightRecorder::Get().DumpToFd(2); }
}  // namespace

int main(int argc, char** argv) {
  spd::Flags flags(argc, argv);
  vchain::EngineKind engine;
  if (!spd::ParseEngineFlag(flags, &engine)) return 2;

  if (!vchain::logging::SetMinLevelFromName(flags.Get("--log-level", "info"))) {
    std::fprintf(stderr, "bad --log-level (debug|info|warn|error|off)\n");
    return 2;
  }
  vchain::logging::SetJsonOutput(flags.Has("--log-json"));

  // Before any mining or serving: a signal during startup must still reach
  // the sync-and-exit path below, not the default handler. The recorder
  // singleton is forced into existence here so the SIGQUIT handler never
  // runs its (non-signal-safe) first-use construction.
  vchain::flight::FlightRecorder::Get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGQUIT, HandleQuit);

  vchain::ServiceOptions opts = spd::DemoOptions(engine);
  opts.store_dir = flags.Get("--store", "");
  opts.canary_sample_every = std::stoull(flags.Get("--canary", "0"));
  auto opened = vchain::Service::Open(opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<vchain::Service> svc = opened.TakeValue();

  size_t demo_blocks = std::stoul(flags.Get("--demo", "0"));
  if (demo_blocks > 0) {
    if (svc->NumBlocks() > demo_blocks) {
      std::fprintf(stderr, "store already has %llu blocks (> --demo %zu)\n",
                   static_cast<unsigned long long>(svc->NumBlocks()),
                   demo_blocks);
      return 1;
    }
    vchain::Status mined = spd::MineDemoChain(svc.get(), demo_blocks, &g_stop);
    if (!mined.ok()) {
      std::fprintf(stderr, "demo mining failed: %s\n",
                   mined.ToString().c_str());
      return 1;
    }
    if (g_stop.load()) {
      std::printf("interrupted during demo mining; synced and exiting\n");
      return 0;  // MineDemoChain already ran the final Sync()
    }
    // The in-process answer to the canonical demo query; a remote client
    // receiving different bytes for the same query proves a wire bug.
    auto result = svc->Query(spd::DemoQuery());
    if (!result.ok()) {
      std::fprintf(stderr, "demo query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("demo_query_hash=%s\n",
                spd::HexDigest(result.value().response_bytes).c_str());
  }

  vchain::net::SpServer::Options sopts;
  sopts.http.port = static_cast<uint16_t>(std::stoul(flags.Get("--port", "8080")));
  sopts.http.num_threads = std::stoul(flags.Get("--threads", "4"));
  sopts.http.max_connections = std::stoul(flags.Get("--max-conns", "64"));
  sopts.http.rate_limit_rps = std::stod(flags.Get("--rps", "0"));
  sopts.slow_query_ms = std::stoull(flags.Get("--slow-query-ms", "0"));
  sopts.debug_endpoints = flags.Has("--debug-endpoints");
  auto server = vchain::net::SpServer::Start(svc.get(), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving engine=%s blocks=%llu on 127.0.0.1:%u\n",
              vchain::api::EngineKindName(engine),
              static_cast<unsigned long long>(svc->NumBlocks()),
              server.value()->port());
  std::fflush(stdout);

  if (flags.Has("--once")) {
    server.value()->Stop();
    return 0;
  }
  // Live-chain mode: keep extending the deterministic demo chain while
  // serving, so wire subscribers actually see notifications arrive.
  uint64_t mine_every_ms = std::stoull(flags.Get("--mine-every", "0"));
  auto last_mine = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (mine_every_ms == 0) continue;
    auto now = std::chrono::steady_clock::now();
    if (now - last_mine <
        std::chrono::milliseconds(static_cast<int64_t>(mine_every_ms))) {
      continue;
    }
    last_mine = now;
    vchain::Status mined =
        spd::MineDemoChain(svc.get(), svc->NumBlocks() + 1, &g_stop);
    if (!mined.ok()) {
      std::fprintf(stderr, "live mining failed: %s\n",
                   mined.ToString().c_str());
      break;
    }
  }
  // Graceful drain: no new connections, in-flight requests finish, then a
  // final Sync() makes everything served as durable actually durable.
  std::printf("draining\n");
  std::fflush(stdout);
  int drain_timeout = std::stoi(flags.Get("--drain-timeout", "10"));
  vchain::Status drained = server.value()->Drain(drain_timeout);
  if (!drained.ok()) {
    std::fprintf(stderr, "final sync failed: %s\n",
                 drained.ToString().c_str());
    return 1;
  }
  std::printf("shutting down\n");
  return 0;
}

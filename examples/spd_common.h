// Shared plumbing for the vchain_spd server and sp_query client binaries:
// the demo deployment parameters (engine-agnostic public setup both sides
// must agree on out of band), a deterministic demo workload, the canonical
// demo query, and a tiny flag parser. Kept header-only so each example
// stays a single translation unit.

#ifndef VCHAIN_EXAMPLES_SPD_COMMON_H_
#define VCHAIN_EXAMPLES_SPD_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/vchain.h"
#include "crypto/sha256.h"

namespace spd {

/// The public parameters of the demo deployment. Server and client both
/// derive them from the engine name alone — exactly the out-of-band
/// agreement (trusted setup + chain config) the paper assumes.
inline vchain::ServiceOptions DemoOptions(vchain::EngineKind engine) {
  vchain::ServiceOptions opts;
  opts.engine = engine;
  opts.config.mode = vchain::core::IndexMode::kBoth;
  opts.config.schema = vchain::chain::NumericSchema{/*dims=*/1, /*bits=*/10};
  opts.config.skiplist_size = 2;
  opts.oracle_seed = 7;
  opts.acc_params.universe_bits = 16;
  return opts;
}

inline constexpr uint64_t kDemoBaseTime = 1700000000;
inline constexpr uint64_t kDemoTimeStep = 86400;

/// Mine `blocks` deterministic rental-offer blocks (Example 3.2 shapes).
/// Same inputs -> same chain -> same digests, on every run and engine.
/// `stop` (optional) aborts between blocks — the daemon passes its signal
/// flag so SIGTERM mid-mining still syncs what was mined and exits cleanly.
inline vchain::Status MineDemoChain(vchain::Service* svc, size_t blocks,
                                    const std::atomic<bool>* stop = nullptr) {
  static const char* kMakes[] = {"Benz", "BMW", "Audi", "Toyota"};
  static const char* kTypes[] = {"Sedan", "Van", "SUV"};
  uint64_t id = svc->NumBlocks() * 2;
  for (size_t b = svc->NumBlocks(); b < blocks; ++b) {
    if (stop != nullptr && stop->load()) break;
    uint64_t ts = kDemoBaseTime + b * kDemoTimeStep;
    std::vector<vchain::chain::Object> objects;
    for (size_t i = 0; i < 2; ++i) {
      vchain::chain::Object o;
      o.id = id++;
      o.timestamp = ts;
      o.numeric = {180 + ((b * 37 + i * 53) % 160)};  // prices in [180, 339]
      o.keywords = {kTypes[(b + i) % 3], kMakes[(b * 2 + i) % 4]};
      objects.push_back(std::move(o));
    }
    VCHAIN_RETURN_IF_ERROR(svc->Append(std::move(objects), ts));
  }
  return svc->Sync();
}

/// The canonical demo query both binaries know: sedans from Benz or BMW at
/// 200..260 over the whole demo window.
inline vchain::core::Query DemoQuery() {
  return vchain::QueryBuilder()
      .Window(kDemoBaseTime, kDemoBaseTime + 4096 * kDemoTimeStep)
      .Range(/*dim=*/0, 200, 260)
      .AllOf({"Sedan"})
      .AnyOf({"Benz", "BMW"})
      .Build();
}

inline std::string HexDigest(const vchain::Bytes& bytes) {
  vchain::crypto::Hash32 h = vchain::crypto::Sha256Digest(
      vchain::ByteSpan(bytes.data(), bytes.size()));
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (uint8_t byte : h) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

/// argv walker: Next("--flag") consumes "--flag VALUE" pairs in order.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Value of `--name` (last occurrence wins), or `fallback`.
  std::string Get(const char* name, const std::string& fallback) const {
    std::string value = fallback;
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) value = argv_[i + 1];
    }
    return value;
  }

  bool Has(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }

  /// All values of a repeatable `--name VALUE` flag, in order.
  std::vector<std::string> GetAll(const char* name) const {
    std::vector<std::string> out;
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) out.emplace_back(argv_[i + 1]);
    }
    return out;
  }

 private:
  int argc_;
  char** argv_;
};

inline bool ParseEngineFlag(const Flags& flags, vchain::EngineKind* out) {
  std::string name = flags.Get("--engine", "acc2");
  if (!vchain::api::EngineKindFromName(name, out)) {
    std::fprintf(stderr,
                 "unknown --engine %s (mock-acc1|mock-acc2|acc1|acc2)\n",
                 name.c_str());
    return false;
  }
  return true;
}

}  // namespace spd

#endif  // VCHAIN_EXAMPLES_SPD_COMMON_H_

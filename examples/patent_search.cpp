// Verifiable patent-keyword search (the paper's intro scenario: a
// blockchain-based IP-rights registry queried with Boolean keyword
// combinations such as "Blockchain" AND ("Query" OR "Search")).
//
// Pure set-valued matching: no numeric predicates at all, which exercises
// the CNF machinery and shows VOs staying compact when whole subtrees of a
// block mismatch one clause.
//
//   $ ./patent_search

#include <cstdio>

#include "common/rand.h"
#include "core/vchain.h"

using namespace vchain;

namespace {

struct Filing {
  std::vector<std::string> tags;
};

std::vector<std::vector<chain::Object>> MakeRegistry(size_t blocks,
                                                     size_t per_block) {
  // A tiny topic model: each filing draws a field plus technique keywords.
  static const char* kFields[] = {"Blockchain", "Database", "Network",
                                  "Storage", "Compiler"};
  static const char* kTechniques[] = {"Query",  "Search", "Index",
                                      "Crypto", "Cache",  "Consensus"};
  Rng rng(2026);
  std::vector<std::vector<chain::Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<chain::Object> filings;
    for (size_t i = 0; i < per_block; ++i) {
      chain::Object o;
      o.id = id++;
      o.timestamp = 1500000000 + b * 86400;
      o.numeric = {};  // schema has zero numeric dimensions
      o.keywords = {kFields[rng.Below(5)], kTechniques[rng.Below(6)],
                    kTechniques[rng.Below(6)]};
      filings.push_back(std::move(o));
    }
    out.push_back(std::move(filings));
  }
  return out;
}

}  // namespace

int main() {
  auto oracle = accum::KeyOracle::Create(/*seed=*/13);
  accum::Acc2Engine engine(oracle, accum::ProverMode::kTrustedFast);

  core::ChainConfig config;
  config.mode = core::IndexMode::kBoth;
  config.schema = chain::NumericSchema{/*dims=*/0, /*bits=*/8};
  config.skiplist_size = 2;

  core::ChainBuilder<accum::Acc2Engine> registry(engine, config);
  auto filings = MakeRegistry(/*blocks=*/20, /*per_block=*/5);
  for (const auto& day : filings) {
    auto st = registry.AppendBlock(day, day.front().timestamp);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   st.status().ToString().c_str());
      return 1;
    }
  }
  chain::LightClient light;
  if (!registry.SyncLightClient(&light).ok()) return 1;
  std::printf("patent registry: %zu blocks, %zu filings\n",
              registry.blocks().size(),
              registry.blocks().size() * filings[0].size());

  core::QueryProcessor<accum::Acc2Engine> sp(engine, config,
                                             &registry.blocks());
  core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);

  // The paper's example query plus two variations.
  struct Search {
    const char* description;
    std::vector<std::vector<std::string>> cnf;
  };
  std::vector<Search> searches = {
      {"Blockchain AND (Query OR Search)",
       {{"Blockchain"}, {"Query", "Search"}}},
      {"Database AND Index", {{"Database"}, {"Index"}}},
      {"(Blockchain OR Database) AND Consensus",
       {{"Blockchain", "Database"}, {"Consensus"}}},
  };

  for (const Search& s : searches) {
    core::Query q;
    q.time_start = 0;
    q.time_end = ~uint64_t{0};
    q.keyword_cnf = s.cnf;
    auto resp = sp.TimeWindowQuery(q);
    if (!resp.ok()) return 1;
    Status st = verifier.VerifyTimeWindow(q, resp.value());
    std::printf("\n\"%s\": %zu filing(s), VO %zu bytes, verification %s\n",
                s.description, resp.value().objects.size(),
                core::VoByteSize(engine, resp.value().vo),
                st.ToString().c_str());
    for (size_t i = 0; i < resp.value().objects.size() && i < 3; ++i) {
      std::printf("   %s\n", resp.value().objects[i].ToString().c_str());
    }
    if (!st.ok()) return 1;
  }
  return 0;
}

// Verifiable patent-keyword search (the paper's intro scenario: a
// blockchain-based IP-rights registry queried with Boolean keyword
// combinations such as "Blockchain" AND ("Query" OR "Search")).
//
// Pure set-valued matching: no numeric predicates at all, which exercises
// the CNF machinery and shows VOs staying compact when whole subtrees of a
// block mismatch one clause. Queries are phrased with the fluent
// QueryBuilder and served through one vchain::Service.
//
//   $ ./patent_search

#include <cstdio>

#include "common/rand.h"
#include "core/vchain.h"

using namespace vchain;

namespace {

std::vector<std::vector<chain::Object>> MakeRegistry(size_t blocks,
                                                     size_t per_block) {
  // A tiny topic model: each filing draws a field plus technique keywords.
  static const char* kFields[] = {"Blockchain", "Database", "Network",
                                  "Storage", "Compiler"};
  static const char* kTechniques[] = {"Query",  "Search", "Index",
                                      "Crypto", "Cache",  "Consensus"};
  Rng rng(2026);
  std::vector<std::vector<chain::Object>> out;
  uint64_t id = 0;
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<chain::Object> filings;
    for (size_t i = 0; i < per_block; ++i) {
      chain::Object o;
      o.id = id++;
      o.timestamp = 1500000000 + b * 86400;
      o.numeric = {};  // schema has zero numeric dimensions
      o.keywords = {kFields[rng.Below(5)], kTechniques[rng.Below(6)],
                    kTechniques[rng.Below(6)]};
      filings.push_back(std::move(o));
    }
    out.push_back(std::move(filings));
  }
  return out;
}

}  // namespace

int main() {
  ServiceOptions opts;
  opts.engine = EngineKind::kAcc2;
  opts.config.mode = core::IndexMode::kBoth;
  opts.config.schema = chain::NumericSchema{/*dims=*/0, /*bits=*/8};
  opts.config.skiplist_size = 2;
  opts.oracle_seed = 13;
  opts.prover_mode = accum::ProverMode::kTrustedFast;
  auto opened = Service::Open(opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Service>& registry = opened.value();

  auto filings = MakeRegistry(/*blocks=*/20, /*per_block=*/5);
  for (const auto& day : filings) {
    Status st = registry->Append(day, day.front().timestamp);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  chain::LightClient light;
  if (!registry->SyncLightClient(&light).ok()) return 1;
  std::printf("patent registry: %llu blocks, %zu filings\n",
              static_cast<unsigned long long>(registry->NumBlocks()),
              registry->NumBlocks() * filings[0].size());

  // The paper's example query plus two variations, via the fluent builder.
  struct Search {
    const char* description;
    core::Query q;
  };
  std::vector<Search> searches = {
      {"Blockchain AND (Query OR Search)",
       QueryBuilder().AllOf({"Blockchain"}).AnyOf({"Query", "Search"}).Build()},
      {"Database AND Index", QueryBuilder().AllOf({"Database", "Index"}).Build()},
      {"(Blockchain OR Database) AND Consensus",
       QueryBuilder()
           .AnyOf({"Blockchain", "Database"})
           .AllOf({"Consensus"})
           .Build()},
  };

  for (const Search& s : searches) {
    auto result = registry->Query(s.q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    Status st = registry->Verify(s.q, result.value(), light);
    std::printf("\n\"%s\": %zu filing(s), VO %zu bytes, verification %s\n",
                s.description, result.value().objects.size(),
                result.value().vo_bytes, st.ToString().c_str());
    for (size_t i = 0; i < result.value().objects.size() && i < 3; ++i) {
      std::printf("   %s\n", result.value().objects[i].ToString().c_str());
    }
    if (!st.ok()) return 1;
  }
  return 0;
}

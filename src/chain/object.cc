#include "chain/object.h"

#include <sstream>

namespace vchain::chain {

void Object::Serialize(ByteWriter* w) const {
  w->PutU64(id);
  w->PutU64(timestamp);
  w->PutU32(static_cast<uint32_t>(numeric.size()));
  for (uint64_t v : numeric) w->PutU64(v);
  w->PutU32(static_cast<uint32_t>(keywords.size()));
  for (const std::string& k : keywords) w->PutString(k);
}

Status Object::Deserialize(ByteReader* r, Object* out) {
  Object o;
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&o.id));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&o.timestamp));
  uint32_t nd = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&nd));
  if (nd > 64) return Status::Corruption("too many numeric dimensions");
  o.numeric.resize(nd);
  for (uint32_t i = 0; i < nd; ++i) {
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&o.numeric[i]));
  }
  uint32_t nk = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&nk));
  if (nk > 1u << 16) return Status::Corruption("too many keywords");
  o.keywords.resize(nk);
  for (uint32_t i = 0; i < nk; ++i) {
    VCHAIN_RETURN_IF_ERROR(r->GetString(&o.keywords[i], 1u << 16));
  }
  *out = std::move(o);
  return Status::OK();
}

Hash32 Object::Hash() const {
  ByteWriter w;
  Serialize(&w);
  return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
}

std::string Object::ToString() const {
  std::ostringstream os;
  os << "o" << id << "@" << timestamp << " V=(";
  for (size_t i = 0; i < numeric.size(); ++i) {
    if (i) os << ", ";
    os << numeric[i];
  }
  os << ") W={";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i) os << ", ";
    os << keywords[i];
  }
  os << "}";
  return os.str();
}

}  // namespace vchain::chain

// Binary Merkle hash tree over leaf digests (Fig 2).
//
// Used for the `nil`-mode object root and for standalone object-inclusion
// proofs. Odd nodes are promoted unchanged to the next level (no
// duplication), so every proof has at most ceil(log2 n) siblings.

#ifndef VCHAIN_CHAIN_MERKLE_H_
#define VCHAIN_CHAIN_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace vchain::chain {

using crypto::Hash32;

/// Root of the tree; the empty tree hashes to all-zeroes.
Hash32 MerkleRootOf(const std::vector<Hash32>& leaves);

/// Inclusion proof for one leaf.
struct MerkleProof {
  uint32_t leaf_index = 0;
  struct Sibling {
    Hash32 hash;
    bool sibling_on_left = false;
  };
  std::vector<Sibling> siblings;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, MerkleProof* out);
};

/// Build the proof for `index` (must be < leaves.size()).
MerkleProof MerkleProve(const std::vector<Hash32>& leaves, uint32_t index);

/// Check that `leaf` is included under `root` via `proof`.
bool MerkleVerify(const Hash32& root, const Hash32& leaf,
                  const MerkleProof& proof);

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_MERKLE_H_

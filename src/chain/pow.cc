#include "chain/pow.h"

namespace vchain::chain {

uint64_t MineNonce(BlockHeader* header, const PowConfig& config) {
  uint64_t attempts = 0;
  header->nonce = 0;
  for (;;) {
    ++attempts;
    if (CheckPow(*header, config)) return attempts;
    ++header->nonce;
  }
}

bool CheckPow(const BlockHeader& header, const PowConfig& config) {
  if (config.difficulty_bits == 0) return true;
  Hash32 h = header.Hash();
  return crypto::LeadingZeroBits(h) >=
         static_cast<int>(config.difficulty_bits);
}

}  // namespace vchain::chain

// The numerical-to-set transformation of §5.3.
//
// Each `bits`-wide numerical value v in dimension d becomes the set of its
// binary prefixes trans(v) = {*, b1*, b1b2*, ..., b1..bk}; a range [lo, hi]
// becomes the canonical dyadic cover of the interval — the minimal set of
// binary-trie nodes exactly covering it (Fig 5). A value lies in a range iff
// the two element sets intersect, which reduces range predicates to the same
// set-disjointness machinery as Boolean keyword predicates.
//
// (Deviation from the paper's example: we include the zero-length "match
// everything" root prefix in trans(v) so that full-domain ranges — whose
// canonical cover is the trie root — behave correctly.)

#ifndef VCHAIN_CHAIN_TRANSFORM_H_
#define VCHAIN_CHAIN_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "accum/multiset.h"
#include "chain/object.h"
#include "common/status.h"

namespace vchain::chain {

using accum::Element;
using accum::Multiset;

/// Shape of the numerical attribute space; fixed per chain.
struct NumericSchema {
  uint32_t dims = 2;   ///< number of numerical attributes
  uint32_t bits = 16;  ///< width of each attribute, domain [0, 2^bits)

  uint64_t DomainSize() const { return uint64_t{1} << bits; }
  uint64_t MaxValue() const { return DomainSize() - 1; }
};

/// trans(v) for one dimension: bits+1 prefix elements (root included).
std::vector<Element> PrefixSetOf(uint64_t value, uint32_t dim,
                                 const NumericSchema& schema);

/// Canonical dyadic cover of [lo, hi] (inclusive) in dimension `dim`,
/// as prefix elements. This is one CNF clause of the transformed query.
/// Requires lo <= hi <= schema.MaxValue().
std::vector<Element> RangeCoverElements(uint64_t lo, uint64_t hi, uint32_t dim,
                                        const NumericSchema& schema);

/// A dyadic node of the trie: the top `prefix_len` bits of values are
/// `prefix_bits`. Used by the IP-Tree's grid cells.
struct DyadicRange {
  uint64_t prefix_bits = 0;
  uint32_t prefix_len = 0;

  bool operator==(const DyadicRange&) const = default;

  uint64_t Lo(const NumericSchema& schema) const {
    return prefix_bits << (schema.bits - prefix_len);
  }
  uint64_t Hi(const NumericSchema& schema) const {
    uint64_t span = uint64_t{1} << (schema.bits - prefix_len);
    return Lo(schema) + span - 1;
  }
  bool Contains(uint64_t v, const NumericSchema& schema) const {
    return v >= Lo(schema) && v <= Hi(schema);
  }
};

/// The full transformed attribute multiset W' = trans(V) + W (§5.3):
/// all per-dimension prefix sets plus the encoded keywords.
Multiset TransformObject(const Object& o, const NumericSchema& schema);

/// Validate an object against a schema (dimension count, value width).
Status ValidateObject(const Object& o, const NumericSchema& schema);

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_TRANSFORM_H_

// Temporal data objects — the paper's o_i = <t_i, V_i, W_i> (§3).
//
// V_i is a vector of unsigned numerical attributes (e.g. longitude/latitude,
// transfer amount), W_i a set of keywords (e.g. check-in tags, addresses).
// Objects are the unit of storage, query matching and result return.

#ifndef VCHAIN_CHAIN_OBJECT_H_
#define VCHAIN_CHAIN_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace vchain::chain {

using crypto::Hash32;

struct Object {
  uint64_t id = 0;         ///< chain-unique object id
  uint64_t timestamp = 0;  ///< t_i; equals the enclosing block's timestamp
  std::vector<uint64_t> numeric;      ///< V_i, one value per dimension
  std::vector<std::string> keywords;  ///< W_i, set-valued attribute

  bool operator==(const Object&) const = default;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, Object* out);

  /// hash(o_i): digest of the canonical serialization.
  Hash32 Hash() const;

  std::string ToString() const;
};

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_OBJECT_H_

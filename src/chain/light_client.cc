#include "chain/light_client.h"

#include <algorithm>

namespace vchain::chain {

Status LightClient::SyncHeader(const BlockHeader& header) {
  if (header.height != headers_.size()) {
    return Status::InvalidArgument("unexpected header height");
  }
  if (!headers_.empty()) {
    if (header.prev_hash != hashes_.back()) {
      return Status::VerifyFailed("header does not extend the chain tip");
    }
    if (header.timestamp < headers_.back().timestamp) {
      return Status::VerifyFailed("non-monotonic block timestamp");
    }
  }
  if (!CheckPow(header, pow_)) {
    return Status::VerifyFailed("consensus proof does not meet difficulty");
  }
  headers_.push_back(header);
  hashes_.push_back(header.Hash());
  return Status::OK();
}

std::optional<std::pair<uint64_t, uint64_t>> LightClient::HeightRangeForWindow(
    uint64_t ts, uint64_t te) const {
  if (headers_.empty() || ts > te) return std::nullopt;
  auto lo = std::lower_bound(
      headers_.begin(), headers_.end(), ts,
      [](const BlockHeader& h, uint64_t t) { return h.timestamp < t; });
  if (lo == headers_.end() || lo->timestamp > te) return std::nullopt;
  auto hi = std::upper_bound(
      headers_.begin(), headers_.end(), te,
      [](uint64_t t, const BlockHeader& h) { return t < h.timestamp; });
  uint64_t first = static_cast<uint64_t>(lo - headers_.begin());
  uint64_t last = static_cast<uint64_t>(hi - headers_.begin()) - 1;
  return std::make_pair(first, last);
}

}  // namespace vchain::chain

// Block headers — what a light node stores (Figs 2/4/7).
//
//   prev_hash     PreBkHash
//   timestamp     TS (one timestamp per block, as in the paper)
//   nonce         ConsProof (proof-of-work witness)
//   object_root   MerkleRoot / ObjectHash: root of the per-block object tree
//                 (plain Merkle in `nil` mode, intra-block index otherwise)
//   skiplist_root SkipListRoot: commitment to the inter-block index
//                 (all-zero when the chain runs without it)

#ifndef VCHAIN_CHAIN_HEADER_H_
#define VCHAIN_CHAIN_HEADER_H_

#include <cstdint>

#include "common/serde.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace vchain::chain {

using crypto::Hash32;

struct BlockHeader {
  uint64_t height = 0;
  Hash32 prev_hash{};
  uint64_t timestamp = 0;
  uint64_t nonce = 0;
  Hash32 object_root{};
  Hash32 skiplist_root{};

  bool operator==(const BlockHeader&) const = default;

  /// Canonical serialization (fixed 104 bytes).
  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, BlockHeader* out);
  static constexpr size_t kSerializedSize = 8 + 32 + 8 + 8 + 32 + 32;

  /// Block hash: digest of the canonical serialization (nonce included).
  Hash32 Hash() const;
};

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_HEADER_H_

// Light node header store (Fig 1/3).
//
// A light client keeps block headers only, validating the hash chain and
// the consensus proof as headers arrive. Every result-verification routine
// in src/core reads authenticated roots exclusively from here — never from
// SP-supplied data.

#ifndef VCHAIN_CHAIN_LIGHT_CLIENT_H_
#define VCHAIN_CHAIN_LIGHT_CLIENT_H_

#include <optional>
#include <vector>

#include "chain/header.h"
#include "chain/pow.h"

namespace vchain::chain {

class LightClient {
 public:
  explicit LightClient(const PowConfig& pow = {}) : pow_(pow) {}

  /// Validate and append the next header. Rejects wrong height, broken
  /// prev-hash linkage, non-monotonic timestamps, and bad consensus proofs.
  Status SyncHeader(const BlockHeader& header);

  size_t Height() const { return headers_.size(); }
  bool Empty() const { return headers_.empty(); }

  const BlockHeader& HeaderAt(uint64_t height) const {
    return headers_.at(height);
  }
  const Hash32& BlockHashAt(uint64_t height) const {
    return hashes_.at(height);
  }
  const std::vector<BlockHeader>& headers() const { return headers_; }

  /// Heights whose block timestamp lies in [ts, te]; nullopt when empty.
  /// (Query windows resolve at block granularity, §3.)
  std::optional<std::pair<uint64_t, uint64_t>> HeightRangeForWindow(
      uint64_t ts, uint64_t te) const;

  /// Total bytes a light node stores per block (the paper's §9.1 metric).
  static constexpr size_t HeaderBytes() { return BlockHeader::kSerializedSize; }

 private:
  PowConfig pow_;
  std::vector<BlockHeader> headers_;
  std::vector<Hash32> hashes_;  // memoized header hashes
};

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_LIGHT_CLIENT_H_

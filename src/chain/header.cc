#include "chain/header.h"

namespace vchain::chain {

void BlockHeader::Serialize(ByteWriter* w) const {
  w->PutU64(height);
  w->PutFixed(crypto::HashSpan(prev_hash));
  w->PutU64(timestamp);
  w->PutU64(nonce);
  w->PutFixed(crypto::HashSpan(object_root));
  w->PutFixed(crypto::HashSpan(skiplist_root));
}

Status BlockHeader::Deserialize(ByteReader* r, BlockHeader* out) {
  BlockHeader h;
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&h.height));
  Bytes buf;
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  std::copy(buf.begin(), buf.end(), h.prev_hash.begin());
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&h.timestamp));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&h.nonce));
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  std::copy(buf.begin(), buf.end(), h.object_root.begin());
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  std::copy(buf.begin(), buf.end(), h.skiplist_root.begin());
  *out = h;
  return Status::OK();
}

Hash32 BlockHeader::Hash() const {
  ByteWriter w;
  Serialize(&w);
  return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
}

}  // namespace vchain::chain

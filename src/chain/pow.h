// Proof-of-work consensus simulation (§2).
//
// ConsProof is a nonce making the header hash start with `difficulty_bits`
// zero bits — the same shape as Bitcoin's target check, scaled down so that
// chains mine in microseconds in tests. Difficulty 0 disables the search
// (benchmarks measure ADS construction, not mining).

#ifndef VCHAIN_CHAIN_POW_H_
#define VCHAIN_CHAIN_POW_H_

#include "chain/header.h"

namespace vchain::chain {

struct PowConfig {
  uint32_t difficulty_bits = 0;
};

/// Finds and installs a nonce satisfying the difficulty. Returns the number
/// of attempts (for mining statistics).
uint64_t MineNonce(BlockHeader* header, const PowConfig& config);

/// Check the consensus proof of a sealed header.
bool CheckPow(const BlockHeader& header, const PowConfig& config);

}  // namespace vchain::chain

#endif  // VCHAIN_CHAIN_POW_H_

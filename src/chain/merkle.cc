#include "chain/merkle.h"

namespace vchain::chain {

Hash32 MerkleRootOf(const std::vector<Hash32>& leaves) {
  if (leaves.empty()) return Hash32{};
  std::vector<Hash32> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(crypto::HashPair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());  // promote the odd node
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof MerkleProve(const std::vector<Hash32>& leaves, uint32_t index) {
  MerkleProof proof;
  proof.leaf_index = index;
  std::vector<Hash32> level = leaves;
  uint32_t pos = index;
  while (level.size() > 1) {
    if (pos % 2 == 0) {
      if (pos + 1 < level.size()) {
        proof.siblings.push_back({level[pos + 1], /*sibling_on_left=*/false});
      }
      // else: promoted node, no sibling at this level
    } else {
      proof.siblings.push_back({level[pos - 1], /*sibling_on_left=*/true});
    }
    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(crypto::HashPair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    // A promoted node keeps its position at the end of the next level.
    pos = (pos % 2 == 0 && pos + 1 == level.size())
              ? static_cast<uint32_t>(next.size()) - 1
              : pos / 2;
    level = std::move(next);
  }
  return proof;
}

bool MerkleVerify(const Hash32& root, const Hash32& leaf,
                  const MerkleProof& proof) {
  Hash32 cur = leaf;
  for (const MerkleProof::Sibling& s : proof.siblings) {
    cur = s.sibling_on_left ? crypto::HashPair(s.hash, cur)
                            : crypto::HashPair(cur, s.hash);
  }
  return cur == root;
}

void MerkleProof::Serialize(ByteWriter* w) const {
  w->PutU32(leaf_index);
  w->PutU32(static_cast<uint32_t>(siblings.size()));
  for (const Sibling& s : siblings) {
    w->PutFixed(crypto::HashSpan(s.hash));
    w->PutBool(s.sibling_on_left);
  }
}

Status MerkleProof::Deserialize(ByteReader* r, MerkleProof* out) {
  MerkleProof p;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&p.leaf_index));
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 64) return Status::Corruption("merkle proof too deep");
  p.siblings.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    Bytes buf;
    VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
    std::copy(buf.begin(), buf.end(), p.siblings[i].hash.begin());
    VCHAIN_RETURN_IF_ERROR(r->GetBool(&p.siblings[i].sibling_on_left));
  }
  *out = std::move(p);
  return Status::OK();
}

}  // namespace vchain::chain

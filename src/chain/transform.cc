#include "chain/transform.h"

#include "accum/element.h"

namespace vchain::chain {

std::vector<Element> PrefixSetOf(uint64_t value, uint32_t dim,
                                 const NumericSchema& schema) {
  std::vector<Element> out;
  out.reserve(schema.bits + 1);
  for (uint32_t len = 0; len <= schema.bits; ++len) {
    uint64_t prefix = (len == 0) ? 0 : (value >> (schema.bits - len));
    out.push_back(accum::EncodePrefix(dim, prefix, len, schema.bits));
  }
  return out;
}

std::vector<Element> RangeCoverElements(uint64_t lo, uint64_t hi, uint32_t dim,
                                        const NumericSchema& schema) {
  std::vector<Element> out;
  // Standard canonical cover: walk both endpoints up the trie, emitting a
  // maximal node whenever an endpoint is the "inner" child of its parent.
  uint32_t level = 0;  // 0 = leaves; prefix_len = bits - level
  while (lo <= hi) {
    uint32_t prefix_len = schema.bits - level;
    if (lo & 1) {
      out.push_back(accum::EncodePrefix(dim, lo, prefix_len, schema.bits));
      ++lo;
    }
    if (!(hi & 1)) {
      out.push_back(accum::EncodePrefix(dim, hi, prefix_len, schema.bits));
      if (hi == 0) break;  // cannot descend below zero
      --hi;
    }
    lo >>= 1;
    hi >>= 1;
    ++level;
    if (level > schema.bits) break;  // full-domain range: root emitted above
  }
  return out;
}

Multiset TransformObject(const Object& o, const NumericSchema& schema) {
  Multiset w;
  for (uint32_t d = 0; d < schema.dims && d < o.numeric.size(); ++d) {
    for (Element e : PrefixSetOf(o.numeric[d], d, schema)) {
      w.Add(e);
    }
  }
  for (const std::string& k : o.keywords) {
    w.Add(accum::EncodeKeyword(k));
  }
  return w;
}

Status ValidateObject(const Object& o, const NumericSchema& schema) {
  if (o.numeric.size() != schema.dims) {
    return Status::InvalidArgument("object dimensionality mismatch");
  }
  for (uint64_t v : o.numeric) {
    if (schema.bits < 64 && v > schema.MaxValue()) {
      return Status::InvalidArgument("numeric value exceeds schema domain");
    }
  }
  return Status::OK();
}

}  // namespace vchain::chain

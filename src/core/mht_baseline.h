// The traditional MHT-per-attribute-combination baseline (Appendix D.1).
//
// Conventional Merkle-tree authentication supports range queries only on the
// key the tree is sorted by; serving *arbitrary* attribute combinations
// therefore requires one MHT per non-empty subset of the d numeric
// attributes — 2^d - 1 trees per block. This module builds exactly that, so
// Fig 16 can contrast its exponential construction time / ADS size with the
// accumulator-based design (which needs one digest per node regardless of
// dimensionality). Set-valued attributes are unsupported by construction —
// the very limitation §5 motivates.

#ifndef VCHAIN_CORE_MHT_BASELINE_H_
#define VCHAIN_CORE_MHT_BASELINE_H_

#include <algorithm>
#include <numeric>
#include <vector>

#include "chain/merkle.h"
#include "chain/object.h"
#include "store/block_source.h"

namespace vchain::core {

struct MhtAdsStats {
  size_t num_trees = 0;
  size_t ads_bytes = 0;  ///< all interior+root hashes across all trees
  std::vector<chain::Hash32> roots;
};

/// Build the 2^dims - 1 per-combination Merkle trees for one block.
inline MhtAdsStats BuildMhtBaseline(const std::vector<chain::Object>& objects,
                                    uint32_t dims) {
  MhtAdsStats stats;
  std::vector<chain::Hash32> object_hashes;
  object_hashes.reserve(objects.size());
  for (const chain::Object& o : objects) object_hashes.push_back(o.Hash());

  for (uint64_t mask = 1; mask < (uint64_t{1} << dims); ++mask) {
    // Sort objects by the composite key of the attribute subset `mask`.
    std::vector<size_t> order(objects.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (uint32_t d = 0; d < dims; ++d) {
        if (!((mask >> d) & 1)) continue;
        if (objects[a].numeric[d] != objects[b].numeric[d]) {
          return objects[a].numeric[d] < objects[b].numeric[d];
        }
      }
      return a < b;
    });
    std::vector<chain::Hash32> leaves;
    leaves.reserve(order.size());
    for (size_t idx : order) leaves.push_back(object_hashes[idx]);
    stats.roots.push_back(chain::MerkleRootOf(leaves));
    ++stats.num_trees;
    // Interior nodes of a binary tree over n leaves: n - 1; plus the leaf
    // level is re-stored per tree because each tree has its own order.
    stats.ads_bytes +=
        (2 * leaves.size() - 1) * sizeof(chain::Hash32);
  }
  return stats;
}

/// Whole-chain baseline over any BlockSource: builds the per-block tree set
/// block at a time, so it runs against chains larger than RAM exactly like
/// the accumulator SP it is compared to.
template <typename Engine>
MhtAdsStats BuildMhtBaseline(const store::BlockSource<Engine>& source,
                             uint32_t dims) {
  MhtAdsStats total;
  for (uint64_t h = 0; h < source.NumBlocks(); ++h) {
    MhtAdsStats per = BuildMhtBaseline(source.BlockAt(h).objects, dims);
    total.num_trees += per.num_trees;
    total.ads_bytes += per.ads_bytes;
    total.roots.insert(total.roots.end(), per.roots.begin(), per.roots.end());
  }
  return total;
}

}  // namespace vchain::core

#endif  // VCHAIN_CORE_MHT_BASELINE_H_

// ADS-extended blocks (Figs 4/6/7), templated on the accumulator engine.
//
// A block carries, besides its objects:
//   * per-object transformed multisets W' and their AttDigests;
//   * leaf hashes H(H(o_i) | digest-bytes) binding object and digest;
//   * in `intra`/`both` mode, the intra-block index of §6.1 — a binary tree
//     grown by Algorithm 2's similarity clustering, each node holding
//     (W, acc(W), hash) per Definition 6.1;
//   * in `both` mode, the inter-block skip list of §6.2 — entries covering
//     the previous 4, 8, ..., 2^(L+1) blocks with summed multisets and
//     aggregate digests.
//
// Node hashing (uniform for leaves and internal nodes):
//     node_hash = H(inner_hash | digest_bytes)
//     inner_hash = H(object_bytes)        for leaves
//                = H(hash_left|hash_right) for internal nodes
// This deviates from the paper only in binding *leaf* digests too, closing a
// malleability gap for single-leaf mismatch proofs.

#ifndef VCHAIN_CORE_BLOCK_H_
#define VCHAIN_CORE_BLOCK_H_

#include <cstdint>
#include <vector>

#include "accum/engine.h"
#include "chain/header.h"
#include "chain/merkle.h"
#include "chain/object.h"
#include "chain/pow.h"
#include "chain/transform.h"

namespace vchain::core {

using accum::Multiset;
using chain::BlockHeader;
using chain::Hash32;
using chain::NumericSchema;
using chain::Object;

/// Which ADS indexes a chain maintains — the paper's evaluated schemes.
enum class IndexMode : uint8_t {
  kNil = 0,    ///< flat per-object digests under a plain Merkle tree
  kIntra = 1,  ///< + intra-block similarity tree (§6.1)
  kBoth = 2,   ///< + inter-block skip list (§6.2)
};

const char* IndexModeName(IndexMode mode);

/// Chain-wide public configuration every party agrees on (part of the
/// genesis spec in a deployment).
struct ChainConfig {
  IndexMode mode = IndexMode::kBoth;
  NumericSchema schema;
  /// Skip-list levels; level i covers the previous 2^(i+2) blocks, so size 5
  /// gives a maximum jump of 64 (Appendix D.3).
  uint32_t skiplist_size = 5;
  chain::PowConfig pow;
  /// SP-side proof workers. With >1, non-aggregating engines defer the
  /// disjointness proofs discovered during a window walk and resolve the
  /// deduplicated set on a thread pool (the paper's SP used 24 OpenMP
  /// hyperthreads; multi-core scaling is also its §10 future work).
  uint32_t num_prover_threads = 1;
  /// SP-local tuning (not consensus): max proofs resident in a processor's
  /// or subscription manager's disjointness-proof cache before LRU eviction
  /// kicks in; 0 = unbounded. Long-lived subscription SPs prove against an
  /// ever-growing digest set, so leave this finite in production.
  size_t proof_cache_capacity = 1u << 16;
  /// SP-local tuning (not consensus): decoded blocks a disk-backed
  /// BlockSource keeps resident (store/block_source.h). Size to the hot
  /// query window; the chain itself may be arbitrarily larger than RAM.
  size_t block_cache_blocks = 256;

  uint64_t SkipDistance(uint32_t level) const { return uint64_t{4} << level; }
  /// Number of levels materialized at `height` (a skip must have all its
  /// covered blocks mined).
  uint32_t NumSkipLevels(uint64_t height) const {
    if (mode != IndexMode::kBoth) return 0;
    uint32_t n = 0;
    while (n < skiplist_size && SkipDistance(n) <= height) ++n;
    return n;
  }
};

/// One node of the intra-block index.
template <typename Engine>
struct IndexNode {
  Multiset w;
  typename Engine::ObjectDigest digest;
  Hash32 hash{};
  int32_t left = -1;          ///< child indices; -1 for leaves
  int32_t right = -1;
  int32_t object_index = -1;  ///< >= 0 iff leaf

  bool IsLeaf() const { return object_index >= 0; }
};

/// One inter-block skip entry of block i: covers blocks [i-d, i-1].
template <typename Engine>
struct SkipEntry {
  uint64_t distance = 0;
  Hash32 preskipped_hash{};  ///< H(blockhash_{i-d} | ... | blockhash_{i-1})
  Multiset w;                ///< multiset sum of the covered blocks' root W
  typename Engine::ObjectDigest digest;
  Hash32 entry_hash{};       ///< H(preskipped_hash | digest_bytes)
};

template <typename Engine>
struct Block {
  BlockHeader header;
  std::vector<Object> objects;
  std::vector<Multiset> object_ws;  ///< transformed W' per object
  std::vector<typename Engine::ObjectDigest> leaf_digests;
  std::vector<Hash32> leaf_hashes;

  /// Intra-block index; empty in kNil mode. Leaves come first (aligned with
  /// `objects`), internal nodes follow; `root_index` is the tree root.
  std::vector<IndexNode<Engine>> nodes;
  int32_t root_index = -1;

  /// Union multiset of the whole block (root W; materialized in every mode).
  Multiset block_w;
  /// Digest of block_w (== root digest in intra mode).
  typename Engine::ObjectDigest block_digest;

  std::vector<SkipEntry<Engine>> skips;

  /// ADS byte size for this block: everything the miner adds beyond the raw
  /// objects (digests + index hashes + skip commitments).
  size_t AdsBytes(const Engine& engine) const;
};

/// Uniform node-hash rule (see file comment).
template <typename Engine>
Hash32 NodeHash(const Engine& engine, const Hash32& inner,
                const typename Engine::ObjectDigest& digest) {
  ByteWriter w;
  w.PutFixed(crypto::HashSpan(inner));
  engine.SerializeDigest(digest, &w);
  return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
}

/// Algorithm 2: bottom-up similarity clustering. Returns the root index and
/// appends internal nodes to `block->nodes` (leaves must already be there).
template <typename Engine>
int32_t BuildIntraIndex(const Engine& engine, Block<Engine>* block) {
  std::vector<int32_t> frontier;
  for (int32_t i = 0; i < static_cast<int32_t>(block->objects.size()); ++i) {
    frontier.push_back(i);
  }
  auto& nodes = block->nodes;
  while (frontier.size() > 1) {
    std::vector<int32_t> next_level;
    // Pair up greedily: heaviest node first, best-Jaccard partner second.
    while (frontier.size() > 1) {
      size_t li = 0;
      for (size_t k = 1; k < frontier.size(); ++k) {
        if (nodes[frontier[k]].w.TotalSize() >
            nodes[frontier[li]].w.TotalSize()) {
          li = k;
        }
      }
      int32_t nl = frontier[li];
      frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(li));
      size_t ri = 0;
      double best = -1.0;
      for (size_t k = 0; k < frontier.size(); ++k) {
        double sim = nodes[nl].w.Jaccard(nodes[frontier[k]].w);
        if (sim > best) {
          best = sim;
          ri = k;
        }
      }
      int32_t nr = frontier[ri];
      frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(ri));

      IndexNode<Engine> parent;
      parent.w = nodes[nl].w.UnionWith(nodes[nr].w);
      parent.digest = engine.Digest(parent.w);
      parent.left = nl;
      parent.right = nr;
      parent.hash = NodeHash(engine,
                             crypto::HashPair(nodes[nl].hash, nodes[nr].hash),
                             parent.digest);
      nodes.push_back(parent);
      next_level.push_back(static_cast<int32_t>(nodes.size()) - 1);
    }
    // Odd leftover joins the next level (paper: nodes <- newnodes + nodes).
    for (int32_t rest : frontier) next_level.push_back(rest);
    frontier = std::move(next_level);
  }
  return frontier.empty() ? -1 : frontier[0];
}

template <typename Engine>
size_t Block<Engine>::AdsBytes(const Engine& engine) const {
  size_t bytes = leaf_digests.size() * engine.DigestByteSize();
  if (root_index >= 0) {
    size_t internal = nodes.size() - objects.size();
    bytes += internal * (engine.DigestByteSize() + sizeof(Hash32));
  }
  for (const SkipEntry<Engine>& s : skips) {
    (void)s;
    bytes += engine.DigestByteSize() + 2 * sizeof(Hash32);
  }
  return bytes;
}

}  // namespace vchain::core

#endif  // VCHAIN_CORE_BLOCK_H_

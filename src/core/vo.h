// Verification objects (VO) — what the SP returns beside the result set, and
// what a light node replays against its headers (§3 threat model, §5-§6).
//
// A time-window response walks the window's blocks newest-to-oldest as a
// sequence of steps:
//   * BlockVO    — the per-block proof tree: matched leaves (objects are in
//                  the result set), pruned mismatch subtrees (digest +
//                  disjointness proof against one query clause), and
//                  expanded internal nodes (digest only; hash recomputed);
//   * SkipVO     — one inter-block skip entry standing in for `distance`
//                  whole blocks (§6.2).
// With an aggregating engine (acc2), individual mismatch proofs may be
// omitted and replaced by per-clause aggregated proofs over the summed
// digests (§6.3 online batch verification) — `AggregatedProof`.
//
// Everything serializes to a canonical byte format; VO size metrics are
// measured on these bytes, and the verifier consumes deserialized copies so
// that corrupt or hostile encodings are exercised end-to-end.

#ifndef VCHAIN_CORE_VO_H_
#define VCHAIN_CORE_VO_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "core/block.h"

namespace vchain::core {

/// Node kinds of the per-block proof tree.
enum class VoKind : uint8_t {
  kMatch = 0,     ///< leaf; object returned in the result set
  kMismatch = 1,  ///< pruned subtree with a disjointness proof
  kExpand = 2,    ///< expanded internal node (both children present)
};

template <typename Engine>
struct VoNode {
  VoKind kind = VoKind::kExpand;
  typename Engine::ObjectDigest digest;  // all kinds

  // kMatch
  uint32_t object_ref = 0;  ///< index into the response's object list

  // kMismatch
  Hash32 inner_hash{};      ///< H(obj) for leaves / H(h_l|h_r) for subtrees
  uint32_t clause_idx = 0;
  std::optional<typename Engine::Proof> proof;  ///< absent when aggregated

  // kExpand
  int32_t left = -1;
  int32_t right = -1;
};

template <typename Engine>
struct BlockVO {
  uint64_t height = 0;
  /// kNil mode: `nodes` lists every leaf in object order and `root` is -1
  /// (the verifier rebuilds the plain Merkle root). Otherwise a tree.
  std::vector<VoNode<Engine>> nodes;
  int32_t root = -1;
};

template <typename Engine>
struct SkipVO {
  uint64_t from_height = 0;  ///< block whose skip list this entry belongs to
  uint32_t level = 0;
  uint64_t distance = 0;
  typename Engine::ObjectDigest digest;
  uint32_t clause_idx = 0;
  std::optional<typename Engine::Proof> proof;
  /// entry hashes of the block's other skip levels, in level order with this
  /// entry's slot skipped; needed to rebuild skiplist_root.
  std::vector<Hash32> other_entry_hashes;
};

template <typename Engine>
struct AggregatedProof {
  uint32_t clause_idx = 0;
  typename Engine::Proof proof;
};

template <typename Engine>
struct WindowVO {
  using Step = std::variant<BlockVO<Engine>, SkipVO<Engine>>;
  std::vector<Step> steps;  ///< descending heights, covering [ts,te] exactly
  std::vector<AggregatedProof<Engine>> aggregated;
};

/// The result set R plus the VO.
template <typename Engine>
struct QueryResponse {
  std::vector<Object> objects;
  WindowVO<Engine> vo;
};

// --- serialization -----------------------------------------------------------

template <typename Engine>
void SerializeVoNode(const Engine& e, const VoNode<Engine>& n, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(n.kind));
  e.SerializeDigest(n.digest, w);
  switch (n.kind) {
    case VoKind::kMatch:
      w->PutU32(n.object_ref);
      break;
    case VoKind::kMismatch:
      w->PutFixed(crypto::HashSpan(n.inner_hash));
      w->PutU32(n.clause_idx);
      w->PutBool(n.proof.has_value());
      if (n.proof) e.SerializeProof(*n.proof, w);
      break;
    case VoKind::kExpand:
      w->PutU32(static_cast<uint32_t>(n.left));
      w->PutU32(static_cast<uint32_t>(n.right));
      break;
  }
}

template <typename Engine>
Status DeserializeVoNode(const Engine& e, ByteReader* r, VoNode<Engine>* out) {
  uint8_t kind = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU8(&kind));
  if (kind > 2) return Status::Corruption("bad VO node kind");
  out->kind = static_cast<VoKind>(kind);
  VCHAIN_RETURN_IF_ERROR(e.DeserializeDigest(r, &out->digest));
  switch (out->kind) {
    case VoKind::kMatch:
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->object_ref));
      break;
    case VoKind::kMismatch: {
      Bytes buf;
      VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
      std::copy(buf.begin(), buf.end(), out->inner_hash.begin());
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->clause_idx));
      bool has_proof = false;
      VCHAIN_RETURN_IF_ERROR(r->GetBool(&has_proof));
      if (has_proof) {
        typename Engine::Proof p;
        VCHAIN_RETURN_IF_ERROR(e.DeserializeProof(r, &p));
        out->proof = std::move(p);
      }
      break;
    }
    case VoKind::kExpand: {
      uint32_t l = 0, rr = 0;
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&l));
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&rr));
      out->left = static_cast<int32_t>(l);
      out->right = static_cast<int32_t>(rr);
      break;
    }
  }
  return Status::OK();
}

template <typename Engine>
void SerializeBlockVO(const Engine& e, const BlockVO<Engine>& b,
                      ByteWriter* w) {
  w->PutU64(b.height);
  w->PutU32(static_cast<uint32_t>(b.nodes.size()));
  for (const VoNode<Engine>& n : b.nodes) SerializeVoNode(e, n, w);
  w->PutU32(static_cast<uint32_t>(b.root));
}

template <typename Engine>
Status DeserializeBlockVO(const Engine& e, ByteReader* r,
                          BlockVO<Engine>* out) {
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->height));
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 22) return Status::Corruption("block VO too large");
  // A node encodes to at least kind(1) + digest(>=32) + 4 payload bytes;
  // never size an allocation from a count the remaining buffer cannot hold
  // (hostile-length rule, common/serde.h).
  if (n > r->Remaining() / 16) {
    return Status::Corruption("block VO count exceeds buffer");
  }
  out->nodes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VCHAIN_RETURN_IF_ERROR(DeserializeVoNode(e, r, &out->nodes[i]));
  }
  uint32_t root = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&root));
  out->root = static_cast<int32_t>(root);
  return Status::OK();
}

template <typename Engine>
void SerializeSkipVO(const Engine& e, const SkipVO<Engine>& s, ByteWriter* w) {
  w->PutU64(s.from_height);
  w->PutU32(s.level);
  w->PutU64(s.distance);
  e.SerializeDigest(s.digest, w);
  w->PutU32(s.clause_idx);
  w->PutBool(s.proof.has_value());
  if (s.proof) e.SerializeProof(*s.proof, w);
  w->PutU32(static_cast<uint32_t>(s.other_entry_hashes.size()));
  for (const Hash32& h : s.other_entry_hashes) {
    w->PutFixed(crypto::HashSpan(h));
  }
}

template <typename Engine>
Status DeserializeSkipVO(const Engine& e, ByteReader* r, SkipVO<Engine>* out) {
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->from_height));
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->level));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->distance));
  VCHAIN_RETURN_IF_ERROR(e.DeserializeDigest(r, &out->digest));
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->clause_idx));
  bool has_proof = false;
  VCHAIN_RETURN_IF_ERROR(r->GetBool(&has_proof));
  if (has_proof) {
    typename Engine::Proof p;
    VCHAIN_RETURN_IF_ERROR(e.DeserializeProof(r, &p));
    out->proof = std::move(p);
  }
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 64) return Status::Corruption("too many skip levels");
  out->other_entry_hashes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    Bytes buf;
    VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
    std::copy(buf.begin(), buf.end(), out->other_entry_hashes[i].begin());
  }
  return Status::OK();
}

template <typename Engine>
void SerializeWindowVO(const Engine& e, const WindowVO<Engine>& vo,
                       ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(vo.steps.size()));
  for (const auto& step : vo.steps) {
    if (std::holds_alternative<BlockVO<Engine>>(step)) {
      w->PutU8(0);
      SerializeBlockVO(e, std::get<BlockVO<Engine>>(step), w);
    } else {
      w->PutU8(1);
      SerializeSkipVO(e, std::get<SkipVO<Engine>>(step), w);
    }
  }
  w->PutU32(static_cast<uint32_t>(vo.aggregated.size()));
  for (const AggregatedProof<Engine>& a : vo.aggregated) {
    w->PutU32(a.clause_idx);
    e.SerializeProof(a.proof, w);
  }
}

template <typename Engine>
Status DeserializeWindowVO(const Engine& e, ByteReader* r,
                           WindowVO<Engine>* out) {
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 22) return Status::Corruption("window VO too large");
  // A step encodes to at least tag(1) + height(8) + count(4) + root(4).
  if (n > r->Remaining() / 16) {
    return Status::Corruption("window VO count exceeds buffer");
  }
  out->steps.clear();
  out->steps.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t tag = 0;
    VCHAIN_RETURN_IF_ERROR(r->GetU8(&tag));
    if (tag == 0) {
      BlockVO<Engine> b;
      VCHAIN_RETURN_IF_ERROR(DeserializeBlockVO(e, r, &b));
      out->steps.emplace_back(std::move(b));
    } else if (tag == 1) {
      SkipVO<Engine> s;
      VCHAIN_RETURN_IF_ERROR(DeserializeSkipVO(e, r, &s));
      out->steps.emplace_back(std::move(s));
    } else {
      return Status::Corruption("bad VO step tag");
    }
  }
  uint32_t na = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&na));
  if (na > 1u << 20) return Status::Corruption("too many aggregated proofs");
  // An aggregated proof encodes to at least clause_idx(4) + proof(>=32).
  if (na > r->Remaining() / 16) {
    return Status::Corruption("aggregated proof count exceeds buffer");
  }
  out->aggregated.resize(na);
  for (uint32_t i = 0; i < na; ++i) {
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->aggregated[i].clause_idx));
    VCHAIN_RETURN_IF_ERROR(e.DeserializeProof(r, &out->aggregated[i].proof));
  }
  return Status::OK();
}

template <typename Engine>
void SerializeResponse(const Engine& e, const QueryResponse<Engine>& resp,
                       ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(resp.objects.size()));
  for (const Object& o : resp.objects) o.Serialize(w);
  SerializeWindowVO(e, resp.vo, w);
}

template <typename Engine>
Status DeserializeResponse(const Engine& e, ByteReader* r,
                           QueryResponse<Engine>* out) {
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 22) return Status::Corruption("result set too large");
  // A serialized object is at least 24 bytes (id, timestamp, two counts).
  if (n > r->Remaining() / 24) {
    return Status::Corruption("result count exceeds buffer");
  }
  out->objects.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VCHAIN_RETURN_IF_ERROR(Object::Deserialize(r, &out->objects[i]));
  }
  return DeserializeWindowVO(e, r, &out->vo);
}

/// Serialized byte size of a VO (the paper's "VO size" metric).
template <typename Engine>
size_t VoByteSize(const Engine& e, const WindowVO<Engine>& vo) {
  ByteWriter w;
  SerializeWindowVO(e, vo, &w);
  return w.size();
}

}  // namespace vchain::core

#endif  // VCHAIN_CORE_VO_H_

// Boolean range queries and their set-form transformation (§3, §5.3).
//
// A query q = <[ts,te], [alpha,beta], Upsilon> carries a time window, one
// optional range predicate per numeric dimension, and a monotone Boolean
// keyword function in CNF. `TransformQuery` rewrites it into a pure CNF over
// attribute elements: each range predicate contributes one OR-clause (its
// dyadic cover, §5.3) and each keyword clause maps element-wise. An object
// matches iff its transformed multiset W' intersects every clause.
//
// Matching is always evaluated under an engine's element mapping
// (MappedQueryView), so SP decisions stay provable (see accum/element.h).

#ifndef VCHAIN_CORE_QUERY_H_
#define VCHAIN_CORE_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "accum/multiset.h"
#include "chain/transform.h"

namespace vchain::core {

using accum::Element;
using accum::Multiset;
using chain::NumericSchema;
using chain::Object;

/// Range selection predicate on one numeric dimension (inclusive bounds).
struct RangePredicate {
  uint32_t dim = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// A (historical) time-window query; subscription queries reuse the same
/// shape with the window ignored (§3).
struct Query {
  uint64_t time_start = 0;
  uint64_t time_end = std::numeric_limits<uint64_t>::max();
  std::vector<RangePredicate> ranges;
  /// CNF: outer vector = AND, inner vector = OR of keywords.
  std::vector<std::vector<std::string>> keyword_cnf;

  std::string ToString() const;
};

/// The query rewritten as CNF over attribute elements.
struct TransformedQuery {
  /// One multiset per clause; an object matches iff W' intersects each.
  std::vector<Multiset> clauses;
};

/// Structural validation against the chain's schema. Returns
/// Status::InvalidArgument for a range with `lo > hi`, a range whose bounds
/// exceed the dimension's domain, a range on a dimension the schema does not
/// have, or an empty OR-clause (an unsatisfiable CNF conjunct). TransformQuery
/// requires a valid query: feeding it an invalid one mis-transforms silently
/// (an inverted or out-of-domain range yields a wrong dyadic cover; an
/// out-of-schema dimension produces elements no object carries), so every
/// query-consuming entry point (QueryProcessor, Verifier, api::Service,
/// SubscriptionManager::TrySubscribe) calls this first.
///
/// An inverted *time window* (`time_start > time_end`) is deliberately not an
/// error: the window selects zero blocks, and an empty response is the
/// correct, verifiable answer.
Status ValidateQuery(const Query& q, const NumericSchema& schema);

/// Binary serde for the raw query (subscription checkpoints persist the
/// registered query set; the HTTP wire uses JSON instead — net/wire.h).
void SerializeQuery(const Query& q, ByteWriter* w);
Status DeserializeQuery(ByteReader* r, Query* out);

TransformedQuery TransformQuery(const Query& q, const NumericSchema& schema);

/// Ground-truth predicate evaluation on raw attribute values (no prefix
/// sets, no mapping) — the brute-force oracle for tests and local
/// post-filtering of mapped-collision false positives.
bool LocalMatch(const Object& o, const Query& q, const NumericSchema& schema);

/// A transformed query with every clause element pushed through an engine's
/// universe mapping; this is the SP's and the verifier's shared match
/// relation.
class MappedQueryView {
 public:
  template <typename Engine>
  MappedQueryView(const Engine& engine, const TransformedQuery& tq) {
    clauses_.reserve(tq.clauses.size());
    for (const Multiset& c : tq.clauses) {
      std::unordered_set<uint64_t> mapped;
      mapped.reserve(c.DistinctSize());
      for (const Multiset::Entry& e : c.entries()) {
        mapped.insert(engine.MapElement(e.element));
      }
      clauses_.push_back(std::move(mapped));
    }
  }

  size_t NumClauses() const { return clauses_.size(); }

  // --- pre-mapped fast path --------------------------------------------------
  // The SP probes the same node multiset against every clause (Matches, then
  // FindDisjointClause on a miss). Mapping w's elements through the engine
  // once and reusing the result across all probes removes the dominant
  // repeated work; `out` is caller-owned scratch so walks don't allocate.

  template <typename Engine>
  void MapForMatch(const Engine& engine, const Multiset& w,
                   std::vector<uint64_t>* out) const {
    out->clear();
    out->reserve(w.entries().size());
    for (const Multiset::Entry& e : w.entries()) {
      out->push_back(engine.MapElement(e.element));
    }
  }

  bool ClauseIntersects(const std::vector<uint64_t>& mapped_w,
                        size_t idx) const {
    const auto& clause = clauses_[idx];
    for (uint64_t v : mapped_w) {
      if (clause.count(v)) return true;
    }
    return false;
  }

  bool Matches(const std::vector<uint64_t>& mapped_w) const {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (!ClauseIntersects(mapped_w, i)) return false;
    }
    return true;
  }

  int FindDisjointClause(const std::vector<uint64_t>& mapped_w) const {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (!ClauseIntersects(mapped_w, i)) return static_cast<int>(i);
    }
    return -1;
  }

  int FindDisjointClauseFrom(const std::vector<uint64_t>& mapped_w,
                             size_t start) const {
    size_t n = clauses_.size();
    for (size_t k = 0; k < n; ++k) {
      size_t i = (start + k) % n;
      if (!ClauseIntersects(mapped_w, i)) return static_cast<int>(i);
    }
    return -1;
  }

  // --- engine-mapping-per-probe variants (verifier / subscription side) ------

  /// True iff the mapped multiset intersects clause `idx`.
  template <typename Engine>
  bool ClauseIntersects(const Engine& engine, const Multiset& w,
                        size_t idx) const {
    const auto& clause = clauses_[idx];
    for (const Multiset::Entry& e : w.entries()) {
      if (clause.count(engine.MapElement(e.element))) return true;
    }
    return false;
  }

  /// True iff every clause intersects (the match relation).
  template <typename Engine>
  bool Matches(const Engine& engine, const Multiset& w) const {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (!ClauseIntersects(engine, w, i)) return false;
    }
    return true;
  }

  /// Index of some clause disjoint from `w`, or -1 when all intersect.
  template <typename Engine>
  int FindDisjointClause(const Engine& engine, const Multiset& w) const {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (!ClauseIntersects(engine, w, i)) return static_cast<int>(i);
    }
    return -1;
  }

  /// Like FindDisjointClause, but scans from `start` first (wrapping).
  /// Subscriptions start at the keyword clauses, which are shared between
  /// queries far more often than per-query range covers, so the resulting
  /// proofs hit the cross-query cache (§7.1's BCIF effect).
  template <typename Engine>
  int FindDisjointClauseFrom(const Engine& engine, const Multiset& w,
                             size_t start) const {
    size_t n = clauses_.size();
    for (size_t k = 0; k < n; ++k) {
      size_t i = (start + k) % n;
      if (!ClauseIntersects(engine, w, i)) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<std::unordered_set<uint64_t>> clauses_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_QUERY_H_

// Sorted timestamp -> height index for time-window queries.
//
// Block timestamps are monotonic by construction (AppendBlock rejects
// regressions), so the index is just the dense timestamp column in height
// order and a window lookup is two binary searches — O(log n) against the
// O(n) full-chain scan the query processor used to do per query
// (TimelineIndex-style; duplicate timestamps are handled by the
// lower/upper-bound pairing).

#ifndef VCHAIN_CORE_TIMESTAMP_INDEX_H_
#define VCHAIN_CORE_TIMESTAMP_INDEX_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace vchain::core {

class TimestampIndex {
 public:
  /// Record the next block's timestamp; heights are implicit (0, 1, ...).
  /// Timestamps must be non-decreasing.
  void Append(uint64_t timestamp) {
    assert(timestamps_.empty() || timestamp >= timestamps_.back());
    timestamps_.push_back(timestamp);
  }

  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// The inclusive height range [first, last] whose timestamps fall in
  /// [ts, te], or nullopt when no block does.
  std::optional<std::pair<uint64_t, uint64_t>> HeightRange(uint64_t ts,
                                                           uint64_t te) const {
    if (ts > te) return std::nullopt;
    auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(), ts);
    auto hi = std::upper_bound(lo, timestamps_.end(), te);
    if (lo == hi) return std::nullopt;
    return std::make_pair(
        static_cast<uint64_t>(lo - timestamps_.begin()),
        static_cast<uint64_t>(hi - timestamps_.begin()) - 1);
  }

 private:
  std::vector<uint64_t> timestamps_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_TIMESTAMP_INDEX_H_

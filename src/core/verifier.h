// Light-node result verification (the user side of Algorithms 1/3/4 and the
// §8.2 security game).
//
// Given <R, VO> and nothing but the authenticated block headers, the
// verifier establishes:
//   soundness     — every returned object hashes into its block's committed
//                   object root and satisfies the (mapped) query condition;
//   completeness  — the VO's steps tile the query window exactly; every
//                   block root is reconstructed from the VO, which forces
//                   every object to be either returned or covered by a
//                   verified mismatch proof; skip steps are checked against
//                   the committed skip-list roots and proven disjoint.
//
// All disjointness proofs are verified with VerifyDisjoint; with an
// aggregating engine, proof-less mismatch entries are grouped per clause,
// their digests summed, and one aggregated proof per clause checked (§6.3).

#ifndef VCHAIN_CORE_VERIFIER_H_
#define VCHAIN_CORE_VERIFIER_H_

#include <map>
#include <vector>

#include "chain/light_client.h"
#include "core/query.h"
#include "core/vo.h"

namespace vchain::core {

template <typename Engine>
class Verifier {
 public:
  Verifier(const Engine& engine, const ChainConfig& config,
           const chain::LightClient* light_client)
      : engine_(engine), config_(config), lc_(light_client) {}

  /// Full verification of a time-window query response. A structurally
  /// invalid query is InvalidArgument (the user-side mirror of the SP's
  /// rejection — such a query could not have produced an honest response).
  Status VerifyTimeWindow(const Query& q,
                          const QueryResponse<Engine>& resp) const {
    VCHAIN_RETURN_IF_ERROR(ValidateQuery(q, config_.schema));
    TransformedQuery tq = TransformQuery(q, config_.schema);
    MappedQueryView view(engine_, tq);

    auto range = lc_->HeightRangeForWindow(q.time_start, q.time_end);
    if (!range) {
      if (!resp.vo.steps.empty() || !resp.objects.empty()) {
        return Status::VerifyFailed("non-empty response for empty window");
      }
      return Status::OK();
    }

    // Pre-compute query digests once per clause (the user-side pk work).
    std::vector<typename Engine::QueryDigest> clause_digests;
    clause_digests.reserve(tq.clauses.size());
    for (const Multiset& c : tq.clauses) {
      clause_digests.push_back(engine_.QueryDigestOf(c));
    }

    std::vector<bool> object_used(resp.objects.size(), false);
    // clause -> digests of proof-less mismatch entries (aggregated mode).
    std::map<uint32_t, std::vector<typename Engine::ObjectDigest>> pending;

    uint64_t cursor = range->second;
    bool done = false;
    for (const auto& step : resp.vo.steps) {
      if (done) return Status::VerifyFailed("VO continues past window start");
      if (std::holds_alternative<BlockVO<Engine>>(step)) {
        const auto& bvo = std::get<BlockVO<Engine>>(step);
        if (bvo.height != cursor) {
          return Status::VerifyFailed("VO block out of order");
        }
        VCHAIN_RETURN_IF_ERROR(VerifyBlockStep(bvo, q, tq, view,
                                               clause_digests, resp.objects,
                                               &object_used, &pending));
        if (cursor == range->first) {
          done = true;
        } else {
          --cursor;
        }
      } else {
        const auto& svo = std::get<SkipVO<Engine>>(step);
        // The skip must belong to the block we just descended past: the
        // processor emits it right after that block's own VO.
        if (svo.from_height != cursor + 1) {
          return Status::VerifyFailed("skip step from unexpected height");
        }
        VCHAIN_RETURN_IF_ERROR(
            VerifySkipStep(svo, tq, clause_digests, &pending));
        if (svo.distance > cursor + 1 ||
            cursor + 1 - svo.distance < range->first) {
          return Status::VerifyFailed("skip overshoots the query window");
        }
        cursor = cursor + 1 - svo.distance;
        if (cursor == range->first) {
          done = true;
        } else {
          --cursor;
        }
      }
    }
    if (!done) return Status::VerifyFailed("VO does not cover the window");

    for (bool used : object_used) {
      if (!used) return Status::VerifyFailed("unreferenced object in results");
    }
    return VerifyAggregates(resp.vo, tq, clause_digests, pending);
  }

 private:
  Status VerifyBlockStep(
      const BlockVO<Engine>& bvo, const Query& q, const TransformedQuery& tq,
      const MappedQueryView& view,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      const std::vector<Object>& objects, std::vector<bool>* object_used,
      std::map<uint32_t, std::vector<typename Engine::ObjectDigest>>* pending)
      const {
    const chain::BlockHeader& header = lc_->HeaderAt(bvo.height);
    if (bvo.nodes.empty()) {
      return Status::VerifyFailed("empty block VO");
    }
    Hash32 root;
    if (config_.mode == IndexMode::kNil) {
      // Flat mode: nodes are all leaves in object order.
      std::vector<Hash32> leaf_hashes;
      leaf_hashes.reserve(bvo.nodes.size());
      for (const VoNode<Engine>& n : bvo.nodes) {
        if (n.kind == VoKind::kExpand) {
          return Status::VerifyFailed("expand node in nil-mode VO");
        }
        Hash32 h;
        VCHAIN_RETURN_IF_ERROR(VerifyLeafOrMismatch(
            n, q, tq, view, clause_digests, objects, object_used, pending,
            &h));
        leaf_hashes.push_back(h);
      }
      root = chain::MerkleRootOf(leaf_hashes);
    } else {
      if (bvo.root < 0 ||
          bvo.root >= static_cast<int32_t>(bvo.nodes.size())) {
        return Status::VerifyFailed("bad VO root index");
      }
      std::vector<int> visited(bvo.nodes.size(), 0);
      VCHAIN_RETURN_IF_ERROR(VerifyTreeNode(bvo, bvo.root, q, tq, view,
                                            clause_digests, objects,
                                            object_used, pending, &visited,
                                            &root));
    }
    if (root != header.object_root) {
      return Status::VerifyFailed("reconstructed object root mismatch");
    }
    return Status::OK();
  }

  /// Recursively recompute the node hash of a VO subtree, verifying each
  /// node's claim along the way.
  Status VerifyTreeNode(
      const BlockVO<Engine>& bvo, int32_t idx, const Query& q,
      const TransformedQuery& tq, const MappedQueryView& view,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      const std::vector<Object>& objects, std::vector<bool>* object_used,
      std::map<uint32_t, std::vector<typename Engine::ObjectDigest>>* pending,
      std::vector<int>* visited, Hash32* out_hash) const {
    if (idx < 0 || idx >= static_cast<int32_t>(bvo.nodes.size())) {
      return Status::VerifyFailed("VO node index out of range");
    }
    if ((*visited)[idx]++) {
      return Status::VerifyFailed("VO node referenced twice");
    }
    const VoNode<Engine>& n = bvo.nodes[idx];
    if (n.kind == VoKind::kExpand) {
      Hash32 hl, hr;
      VCHAIN_RETURN_IF_ERROR(VerifyTreeNode(bvo, n.left, q, tq, view,
                                            clause_digests, objects,
                                            object_used, pending, visited,
                                            &hl));
      VCHAIN_RETURN_IF_ERROR(VerifyTreeNode(bvo, n.right, q, tq, view,
                                            clause_digests, objects,
                                            object_used, pending, visited,
                                            &hr));
      *out_hash = NodeHash(engine_, crypto::HashPair(hl, hr), n.digest);
      return Status::OK();
    }
    return VerifyLeafOrMismatch(n, q, tq, view, clause_digests, objects,
                                object_used, pending, out_hash);
  }

  Status VerifyLeafOrMismatch(
      const VoNode<Engine>& n, const Query& q, const TransformedQuery& tq,
      const MappedQueryView& view,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      const std::vector<Object>& objects, std::vector<bool>* object_used,
      std::map<uint32_t, std::vector<typename Engine::ObjectDigest>>* pending,
      Hash32* out_hash) const {
    if (n.kind == VoKind::kMatch) {
      if (n.object_ref >= objects.size()) {
        return Status::VerifyFailed("VO match references missing object");
      }
      if ((*object_used)[n.object_ref]) {
        return Status::VerifyFailed("object referenced twice");
      }
      (*object_used)[n.object_ref] = true;
      const Object& o = objects[n.object_ref];
      // Soundness: the object must satisfy the query. Time is checked via
      // the header walk; attributes via the shared mapped-match relation.
      Multiset w = chain::TransformObject(o, config_.schema);
      if (!view.Matches(engine_, w)) {
        return Status::VerifyFailed("returned object does not match query");
      }
      (void)q;
      *out_hash = NodeHash(engine_, o.Hash(), n.digest);
      return Status::OK();
    }
    // Mismatch node.
    if (n.clause_idx >= tq.clauses.size()) {
      return Status::VerifyFailed("mismatch clause index out of range");
    }
    if (n.proof.has_value()) {
      if (!engine_.VerifyDisjoint(n.digest, clause_digests[n.clause_idx],
                                  *n.proof)) {
        return Status::VerifyFailed("disjointness proof rejected");
      }
    } else {
      if constexpr (Engine::kSupportsAggregation) {
        (*pending)[n.clause_idx].push_back(n.digest);
      } else {
        return Status::VerifyFailed("missing proof for mismatch node");
      }
    }
    *out_hash = NodeHash(engine_, n.inner_hash, n.digest);
    return Status::OK();
  }

  Status VerifySkipStep(
      const SkipVO<Engine>& svo, const TransformedQuery& tq,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      std::map<uint32_t, std::vector<typename Engine::ObjectDigest>>* pending)
      const {
    const chain::BlockHeader& header = lc_->HeaderAt(svo.from_height);
    uint32_t levels = config_.NumSkipLevels(svo.from_height);
    if (svo.level >= levels ||
        svo.distance != config_.SkipDistance(svo.level)) {
      return Status::VerifyFailed("invalid skip level");
    }
    if (svo.other_entry_hashes.size() + 1 != levels) {
      return Status::VerifyFailed("wrong skip sibling count");
    }
    // Recompute this entry's hash from our own headers plus the claimed
    // digest, then the skip-list root from all level hashes.
    ByteWriter hs;
    for (uint64_t j = svo.from_height - svo.distance; j < svo.from_height;
         ++j) {
      hs.PutFixed(crypto::HashSpan(lc_->BlockHashAt(j)));
    }
    Hash32 preskipped = crypto::Sha256Digest(
        ByteSpan(hs.bytes().data(), hs.bytes().size()));
    ByteWriter ew;
    ew.PutFixed(crypto::HashSpan(preskipped));
    engine_.SerializeDigest(svo.digest, &ew);
    Hash32 entry_hash = crypto::Sha256Digest(
        ByteSpan(ew.bytes().data(), ew.bytes().size()));
    ByteWriter root_w;
    size_t sibling = 0;
    for (uint32_t li = 0; li < levels; ++li) {
      if (li == svo.level) {
        root_w.PutFixed(crypto::HashSpan(entry_hash));
      } else {
        root_w.PutFixed(crypto::HashSpan(svo.other_entry_hashes[sibling++]));
      }
    }
    Hash32 root = crypto::Sha256Digest(
        ByteSpan(root_w.bytes().data(), root_w.bytes().size()));
    if (root != header.skiplist_root) {
      return Status::VerifyFailed("skip-list root mismatch");
    }
    if (svo.clause_idx >= tq.clauses.size()) {
      return Status::VerifyFailed("skip clause index out of range");
    }
    if (svo.proof.has_value()) {
      if (!engine_.VerifyDisjoint(svo.digest, clause_digests[svo.clause_idx],
                                  *svo.proof)) {
        return Status::VerifyFailed("skip disjointness proof rejected");
      }
    } else {
      if constexpr (Engine::kSupportsAggregation) {
        (*pending)[svo.clause_idx].push_back(svo.digest);
      } else {
        return Status::VerifyFailed("missing proof for skip step");
      }
    }
    return Status::OK();
  }

  Status VerifyAggregates(
      const WindowVO<Engine>& vo, const TransformedQuery& tq,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      const std::map<uint32_t, std::vector<typename Engine::ObjectDigest>>&
          pending) const {
    if constexpr (Engine::kSupportsAggregation) {
      std::map<uint32_t, const typename Engine::Proof*> agg_proofs;
      for (const AggregatedProof<Engine>& a : vo.aggregated) {
        if (a.clause_idx >= tq.clauses.size()) {
          return Status::VerifyFailed("aggregated clause index out of range");
        }
        if (!agg_proofs.emplace(a.clause_idx, &a.proof).second) {
          return Status::VerifyFailed("duplicate aggregated proof");
        }
      }
      for (const auto& [clause_idx, digests] : pending) {
        auto it = agg_proofs.find(clause_idx);
        if (it == agg_proofs.end()) {
          return Status::VerifyFailed("missing aggregated proof for clause");
        }
        typename Engine::ObjectDigest summed = engine_.SumDigests(digests);
        if (!engine_.VerifyDisjoint(summed, clause_digests[clause_idx],
                                    *it->second)) {
          return Status::VerifyFailed("aggregated disjointness proof rejected");
        }
      }
    } else {
      if (!vo.aggregated.empty() || !pending.empty()) {
        return Status::VerifyFailed(
            "aggregation not supported by this engine");
      }
    }
    return Status::OK();
  }

  const Engine& engine_;
  const ChainConfig& config_;
  const chain::LightClient* lc_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_VERIFIER_H_

// The miner: builds ADS-extended blocks and seals them with consensus
// proofs (§5.1 "ADS Generation", Algorithm 2, §6.2).
//
// Templated on the accumulator engine; the engine's ProverMode decides
// whether digests are computed honestly from served public-key powers (what
// Table 1 measures) or via the oracle's trusted fast path (identical bytes;
// used when a benchmark measures query processing, not mining).

#ifndef VCHAIN_CORE_CHAIN_BUILDER_H_
#define VCHAIN_CORE_CHAIN_BUILDER_H_

#include <utility>
#include <vector>

#include "chain/light_client.h"
#include "common/timer.h"
#include "core/block.h"
#include "core/timestamp_index.h"

namespace vchain::core {

template <typename Engine>
class ChainBuilder {
 public:
  struct BuildStats {
    double ads_seconds = 0;   ///< time spent building digests/indexes
    size_t ads_bytes = 0;     ///< ADS size added to the block
    uint64_t pow_attempts = 0;
  };

  ChainBuilder(Engine engine, ChainConfig config)
      : engine_(std::move(engine)), config_(std::move(config)) {}

  /// Mine the next block from `objects` at `timestamp` (must be monotonic).
  Result<BuildStats> AppendBlock(std::vector<Object> objects,
                                 uint64_t timestamp) {
    if (objects.empty()) {
      return Status::InvalidArgument("empty block");
    }
    if (!blocks_.empty() &&
        timestamp < blocks_.back().header.timestamp) {
      return Status::InvalidArgument("non-monotonic block timestamp");
    }
    for (const Object& o : objects) {
      VCHAIN_RETURN_IF_ERROR(chain::ValidateObject(o, config_.schema));
    }

    BuildStats stats;
    Timer ads_timer;

    Block<Engine> block;
    block.objects = std::move(objects);
    block.header.height = blocks_.size();
    block.header.timestamp = timestamp;
    block.header.prev_hash =
        blocks_.empty() ? Hash32{} : blocks_.back().header.Hash();

    // Per-object ADS leaves.
    for (const Object& o : block.objects) {
      Multiset w = chain::TransformObject(o, config_.schema);
      auto digest = engine_.Digest(w);
      Hash32 inner = o.Hash();
      block.leaf_hashes.push_back(NodeHash(engine_, inner, digest));
      if (config_.mode != IndexMode::kNil) {
        IndexNode<Engine> leaf;
        leaf.w = w;
        leaf.digest = digest;
        leaf.hash = block.leaf_hashes.back();
        leaf.object_index = static_cast<int32_t>(block.leaf_digests.size());
        block.nodes.push_back(std::move(leaf));
      }
      block.block_w.UnionInPlace(w);
      block.object_ws.push_back(std::move(w));
      block.leaf_digests.push_back(std::move(digest));
    }

    // Object root: intra-index root (Algorithm 2) or plain Merkle.
    if (config_.mode != IndexMode::kNil) {
      block.root_index = BuildIntraIndex(engine_, &block);
      block.header.object_root = block.nodes[block.root_index].hash;
      block.block_digest = block.nodes[block.root_index].digest;
    } else {
      block.header.object_root = chain::MerkleRootOf(block.leaf_hashes);
      // kNil stores no aggregate digest; block_digest stays default (it is
      // only consumed by the skip list, which requires kBoth).
    }

    // Inter-block skip list.
    if (config_.mode == IndexMode::kBoth) {
      BuildSkips(&block);
      ByteWriter root_w;
      for (const SkipEntry<Engine>& s : block.skips) {
        root_w.PutFixed(crypto::HashSpan(s.entry_hash));
      }
      block.header.skiplist_root = crypto::Sha256Digest(
          ByteSpan(root_w.bytes().data(), root_w.bytes().size()));
    }

    stats.ads_seconds = ads_timer.ElapsedSeconds();
    stats.ads_bytes = block.AdsBytes(engine_);

    stats.pow_attempts = chain::MineNonce(&block.header, config_.pow);
    ts_index_.Append(block.header.timestamp);
    blocks_.push_back(std::move(block));
    return stats;
  }

  const std::vector<Block<Engine>>& blocks() const { return blocks_; }
  const Engine& engine() const { return engine_; }
  const ChainConfig& config() const { return config_; }
  /// Sorted timestamp -> height index maintained alongside the chain; feed
  /// it to QueryProcessor so window lookups are two binary searches.
  const TimestampIndex& timestamp_index() const { return ts_index_; }

  /// Feed all sealed headers to a light client (Fig 3's header sync).
  Status SyncLightClient(chain::LightClient* client) const {
    for (size_t h = client->Height(); h < blocks_.size(); ++h) {
      VCHAIN_RETURN_IF_ERROR(client->SyncHeader(blocks_[h].header));
    }
    return Status::OK();
  }

 private:
  void BuildSkips(Block<Engine>* block) {
    uint64_t height = block->header.height;
    uint32_t levels = config_.NumSkipLevels(height);
    for (uint32_t level = 0; level < levels; ++level) {
      uint64_t d = config_.SkipDistance(level);
      SkipEntry<Engine> entry;
      entry.distance = d;
      ByteWriter hs;
      for (uint64_t j = height - d; j < height; ++j) {
        hs.PutFixed(crypto::HashSpan(blocks_[j].header.Hash()));
      }
      entry.preskipped_hash = crypto::Sha256Digest(
          ByteSpan(hs.bytes().data(), hs.bytes().size()));
      if (level == 0) {
        std::vector<const Multiset*> parts;
        parts.reserve(static_cast<size_t>(d));
        for (uint64_t j = height - d; j < height; ++j) {
          parts.push_back(&blocks_[j].block_w);
        }
        entry.w.AddAll(parts);
      } else {
        // Each level doubles the previous one's coverage: reuse the last
        // level's multiset plus the farther half.
        entry.w = block->skips[level - 1].w;
        for (uint64_t j = height - d; j < height - d / 2; ++j) {
          entry.w.SumInPlace(blocks_[j].block_w);
        }
      }
      if constexpr (Engine::kSupportsAggregation) {
        // acc2 reuses per-block digests: one group op per covered block
        // (this is why Table 1's both-acc2 build time stays low).
        std::vector<typename Engine::ObjectDigest> parts;
        for (uint64_t j = height - d; j < height; ++j) {
          parts.push_back(blocks_[j].block_digest);
        }
        entry.digest = engine_.SumDigests(parts);
      } else {
        entry.digest = engine_.Digest(entry.w);
      }
      ByteWriter ew;
      ew.PutFixed(crypto::HashSpan(entry.preskipped_hash));
      engine_.SerializeDigest(entry.digest, &ew);
      entry.entry_hash = crypto::Sha256Digest(
          ByteSpan(ew.bytes().data(), ew.bytes().size()));
      block->skips.push_back(std::move(entry));
    }
  }

  Engine engine_;
  ChainConfig config_;
  std::vector<Block<Engine>> blocks_;
  TimestampIndex ts_index_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_CHAIN_BUILDER_H_

// The miner: builds ADS-extended blocks and seals them with consensus
// proofs (§5.1 "ADS Generation", Algorithm 2, §6.2).
//
// Templated on the accumulator engine; the engine's ProverMode decides
// whether digests are computed honestly from served public-key powers (what
// Table 1 measures) or via the oracle's trusted fast path (identical bytes;
// used when a benchmark measures query processing, not mining).
//
// Durability (store/ subsystem): `AttachStore` makes every mined block
// write through to an append-only BlockStore in O(1); `ResumeFromStore`
// reopens a persisted chain and continues mining without recomputing a
// single digest — only the skip-construction tail window is decoded back
// into memory. With a store attached, `SetRetainWindow` bounds the miner's
// resident blocks to that tail, so the *chain* can outgrow RAM while the
// miner keeps a fixed footprint (headers and the timestamp column stay
// resident; they are bytes per block, not kilobytes).

#ifndef VCHAIN_CORE_CHAIN_BUILDER_H_
#define VCHAIN_CORE_CHAIN_BUILDER_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "chain/light_client.h"
#include "common/timer.h"
#include "core/block.h"
#include "core/timestamp_index.h"
#include "store/block_serde.h"

namespace vchain::core {

template <typename Engine>
class ChainBuilder {
 public:
  struct BuildStats {
    double ads_seconds = 0;   ///< time spent building digests/indexes
    size_t ads_bytes = 0;     ///< ADS size added to the block
    uint64_t pow_attempts = 0;
  };

  ChainBuilder(Engine engine, ChainConfig config)
      : engine_(std::move(engine)), config_(std::move(config)) {}

  /// Reopen a persisted chain and continue mining from its tip. Decodes only
  /// the tail window skip construction needs; headers and the timestamp
  /// index are rebuilt from the store's resident header column.
  static Result<ChainBuilder> ResumeFromStore(Engine engine, ChainConfig config,
                                              store::BlockStore* store) {
    ChainBuilder builder(std::move(engine), std::move(config));
    uint64_t n = store->NumBlocks();
    uint64_t tail = std::min<uint64_t>(n, builder.NeededTailBlocks());
    builder.base_height_ = n - tail;
    for (uint64_t h = builder.base_height_; h < n; ++h) {
      auto block = store::ReadBlockFromStore(builder.engine_, *store, h);
      if (!block.ok()) return block.status();
      builder.blocks_.push_back(block.TakeValue());
    }
    builder.ts_index_ = store->RebuildTimestampIndex();
    builder.store_ = store;
    return builder;
  }

  /// Persist this chain: flush any blocks the store is missing, then write
  /// every future AppendBlock through. The store must be a prefix of this
  /// chain (typically: freshly created, or equal after a restart).
  Status AttachStore(store::BlockStore* store) {
    if (store->NumBlocks() > NumBlocks()) {
      return Status::InvalidArgument(
          "store is ahead of this chain; use ResumeFromStore");
    }
    if (base_height_ > 0) {
      return Status::InvalidArgument("builder already pruned past genesis");
    }
    for (uint64_t h = 0; h < store->NumBlocks(); ++h) {
      if (!(store->HeaderAt(h) == blocks_[h].header)) {
        return Status::InvalidArgument("store holds a different chain");
      }
    }
    for (uint64_t h = store->NumBlocks(); h < NumBlocks(); ++h) {
      VCHAIN_RETURN_IF_ERROR(
          store::AppendBlockToStore(engine_, blocks_[h], store));
    }
    store_ = store;
    return Status::OK();
  }

  /// Stop writing through (e.g. before the store object's lifetime ends —
  /// the builder never owns it). Refused while pruning is active: pruned
  /// heights are only reachable through the store.
  Status DetachStore() {
    if (retain_window_ != 0 || base_height_ != 0) {
      return Status::InvalidArgument(
          "cannot detach: pruned heights live only in the store");
    }
    store_ = nullptr;
    return Status::OK();
  }

  /// Bound the in-memory window to the last `retain` blocks (0 = keep all).
  /// Requires an attached store (older blocks remain reachable there) and at
  /// least the skip-construction tail.
  ///
  /// IMPORTANT: once pruning is active, `blocks()` is a *window* whose
  /// index i is height `base_height() + i` — do not wrap it in a
  /// VectorBlockSource (its height range would silently start at the
  /// window, not genesis). Serve queries from the attached store through a
  /// StoreBlockSource instead.
  Status SetRetainWindow(size_t retain) {
    if (retain != 0) {
      if (store_ == nullptr) {
        return Status::InvalidArgument(
            "pruning requires an attached block store");
      }
      if (retain < NeededTailBlocks()) {
        return Status::InvalidArgument(
            "retain window smaller than the skip-construction tail");
      }
    }
    retain_window_ = retain;
    Prune();
    return Status::OK();
  }

  /// Mine the next block from `objects` at `timestamp` (must be monotonic).
  Result<BuildStats> AppendBlock(std::vector<Object> objects,
                                 uint64_t timestamp) {
    if (objects.empty()) {
      return Status::InvalidArgument("empty block");
    }
    if (!blocks_.empty() &&
        timestamp < blocks_.back().header.timestamp) {
      return Status::InvalidArgument("non-monotonic block timestamp");
    }
    for (const Object& o : objects) {
      VCHAIN_RETURN_IF_ERROR(chain::ValidateObject(o, config_.schema));
    }

    BuildStats stats;
    Timer ads_timer;

    Block<Engine> block;
    block.objects = std::move(objects);
    block.header.height = NumBlocks();
    block.header.timestamp = timestamp;
    block.header.prev_hash =
        blocks_.empty() ? Hash32{} : blocks_.back().header.Hash();

    // Per-object ADS leaves.
    for (const Object& o : block.objects) {
      Multiset w = chain::TransformObject(o, config_.schema);
      auto digest = engine_.Digest(w);
      Hash32 inner = o.Hash();
      block.leaf_hashes.push_back(NodeHash(engine_, inner, digest));
      if (config_.mode != IndexMode::kNil) {
        IndexNode<Engine> leaf;
        leaf.w = w;
        leaf.digest = digest;
        leaf.hash = block.leaf_hashes.back();
        leaf.object_index = static_cast<int32_t>(block.leaf_digests.size());
        block.nodes.push_back(std::move(leaf));
      }
      block.block_w.UnionInPlace(w);
      block.object_ws.push_back(std::move(w));
      block.leaf_digests.push_back(std::move(digest));
    }

    // Object root: intra-index root (Algorithm 2) or plain Merkle.
    if (config_.mode != IndexMode::kNil) {
      block.root_index = BuildIntraIndex(engine_, &block);
      block.header.object_root = block.nodes[block.root_index].hash;
      block.block_digest = block.nodes[block.root_index].digest;
    } else {
      block.header.object_root = chain::MerkleRootOf(block.leaf_hashes);
      // kNil stores no aggregate digest; block_digest stays default (it is
      // only consumed by the skip list, which requires kBoth).
    }

    // Inter-block skip list.
    if (config_.mode == IndexMode::kBoth) {
      BuildSkips(&block);
      ByteWriter root_w;
      for (const SkipEntry<Engine>& s : block.skips) {
        root_w.PutFixed(crypto::HashSpan(s.entry_hash));
      }
      block.header.skiplist_root = crypto::Sha256Digest(
          ByteSpan(root_w.bytes().data(), root_w.bytes().size()));
    }

    stats.ads_seconds = ads_timer.ElapsedSeconds();
    stats.ads_bytes = block.AdsBytes(engine_);

    stats.pow_attempts = chain::MineNonce(&block.header, config_.pow);
    if (store_ != nullptr) {
      VCHAIN_RETURN_IF_ERROR(
          store::AppendBlockToStore(engine_, block, store_));
    }
    ts_index_.Append(block.header.timestamp);
    blocks_.push_back(std::move(block));
    Prune();
    return stats;
  }

  /// Chain height (total blocks mined, including pruned ones).
  uint64_t NumBlocks() const { return base_height_ + blocks_.size(); }

  /// The retained in-memory window: the whole chain unless pruning is
  /// enabled, in which case `blocks()[i]` is the block at height
  /// `base_height() + i`.
  const std::vector<Block<Engine>>& blocks() const { return blocks_; }
  uint64_t base_height() const { return base_height_; }
  const store::BlockStore* attached_store() const { return store_; }
  const Engine& engine() const { return engine_; }
  const ChainConfig& config() const { return config_; }
  /// Sorted timestamp -> height index maintained alongside the chain; feed
  /// it to QueryProcessor so window lookups are two binary searches.
  const TimestampIndex& timestamp_index() const { return ts_index_; }

  /// Feed all sealed headers to a light client (Fig 3's header sync).
  /// Pruned heights are served from the attached store's header column.
  Status SyncLightClient(chain::LightClient* client) const {
    for (uint64_t h = client->Height(); h < NumBlocks(); ++h) {
      const chain::BlockHeader& header =
          h < base_height_ ? store_->HeaderAt(h) : At(h).header;
      VCHAIN_RETURN_IF_ERROR(client->SyncHeader(header));
    }
    return Status::OK();
  }

 private:
  /// The retained block at absolute chain height `h`.
  const Block<Engine>& At(uint64_t h) const {
    return blocks_[h - base_height_];
  }

  /// Blocks the next BuildSkips may reach back over: the largest configured
  /// skip distance (1 when no skip list is built — the predecessor is still
  /// needed for prev_hash and the timestamp monotonicity check).
  uint64_t NeededTailBlocks() const {
    if (config_.mode != IndexMode::kBoth || config_.skiplist_size == 0) {
      return 1;
    }
    return config_.SkipDistance(config_.skiplist_size - 1);
  }

  void Prune() {
    if (retain_window_ == 0 || blocks_.size() <= retain_window_) return;
    size_t drop = blocks_.size() - retain_window_;
    blocks_.erase(blocks_.begin(),
                  blocks_.begin() + static_cast<ptrdiff_t>(drop));
    base_height_ += drop;
  }

  void BuildSkips(Block<Engine>* block) {
    uint64_t height = block->header.height;
    uint32_t levels = config_.NumSkipLevels(height);
    for (uint32_t level = 0; level < levels; ++level) {
      uint64_t d = config_.SkipDistance(level);
      SkipEntry<Engine> entry;
      entry.distance = d;
      ByteWriter hs;
      for (uint64_t j = height - d; j < height; ++j) {
        hs.PutFixed(crypto::HashSpan(At(j).header.Hash()));
      }
      entry.preskipped_hash = crypto::Sha256Digest(
          ByteSpan(hs.bytes().data(), hs.bytes().size()));
      if (level == 0) {
        std::vector<const Multiset*> parts;
        parts.reserve(static_cast<size_t>(d));
        for (uint64_t j = height - d; j < height; ++j) {
          parts.push_back(&At(j).block_w);
        }
        entry.w.AddAll(parts);
      } else {
        // Each level doubles the previous one's coverage: reuse the last
        // level's multiset plus the farther half.
        entry.w = block->skips[level - 1].w;
        for (uint64_t j = height - d; j < height - d / 2; ++j) {
          entry.w.SumInPlace(At(j).block_w);
        }
      }
      if constexpr (Engine::kSupportsAggregation) {
        // acc2 reuses per-block digests: one group op per covered block
        // (this is why Table 1's both-acc2 build time stays low).
        std::vector<typename Engine::ObjectDigest> parts;
        for (uint64_t j = height - d; j < height; ++j) {
          parts.push_back(At(j).block_digest);
        }
        entry.digest = engine_.SumDigests(parts);
      } else {
        entry.digest = engine_.Digest(entry.w);
      }
      ByteWriter ew;
      ew.PutFixed(crypto::HashSpan(entry.preskipped_hash));
      engine_.SerializeDigest(entry.digest, &ew);
      entry.entry_hash = crypto::Sha256Digest(
          ByteSpan(ew.bytes().data(), ew.bytes().size()));
      block->skips.push_back(std::move(entry));
    }
  }

  Engine engine_;
  ChainConfig config_;
  std::vector<Block<Engine>> blocks_;
  TimestampIndex ts_index_;
  store::BlockStore* store_ = nullptr;
  uint64_t base_height_ = 0;
  size_t retain_window_ = 0;  // 0 = retain everything
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_CHAIN_BUILDER_H_

// The service provider's query processor (Fig 3's SP).
//
// Implements verifiable time-window queries across the three index modes:
//   * kNil   — per-object matching with one disjoint proof per mismatching
//              object (Algorithm 1 applied repeatedly);
//   * kIntra — top-down traversal of the intra-block index, pruning whole
//              mismatching subtrees with a single proof (Algorithm 3);
//   * kBoth  — additionally consumes inter-block skip entries when a whole
//              run of previous blocks mismatches one clause (Algorithm 4).
//
// With an aggregating engine (acc2) the processor performs §6.3's online
// batch verification: mismatching nodes/skips are grouped by clause, their
// multisets summed in place, and a single aggregated proof per clause is
// emitted instead of per-node proofs.
//
// Hot-path structure (see ROADMAP.md "Performance architecture"):
//   * window lookup is two binary searches (TimestampIndex when provided,
//     else directly over the monotonic block timestamps);
//   * each node multiset is mapped through the engine once and probed
//     against every clause from that mapping;
//   * non-aggregating engines with num_prover_threads > 1 defer proofs and
//     resolve the deduplicated, cache-missing set on the process-wide
//     ThreadPool::Shared() — no threads are constructed per query;
//   * disjointness proofs are cached across queries; pass a shared
//     ProofCache to pool hits across processors serving the same chain.
//     The cache is internally synchronized (mutex-striped), so processors
//     on different threads may share one — the processor itself stays
//     single-threaded per instance (it keeps per-walk scratch state); the
//     concurrent-SP shape is one processor per query thread over a shared
//     cache and a thread-safe block source (see api/service.h).

#ifndef VCHAIN_CORE_PROCESSOR_H_
#define VCHAIN_CORE_PROCESSOR_H_

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/chain_builder.h"
#include "core/proof_cache.h"
#include "core/query.h"
#include "core/query_trace.h"
#include "core/timestamp_index.h"
#include "core/vo.h"
#include "store/block_source.h"

namespace vchain::core {

template <typename Engine>
class QueryProcessor {
 public:
  /// Serve from any BlockSource — an in-memory chain or a disk-backed store
  /// (store/block_source.h). `ts_index` (optional) is the builder- or
  /// store-maintained timestamp index; `shared_cache` (optional) substitutes
  /// an external cross-processor proof cache for the internal one.
  QueryProcessor(const Engine& engine, const ChainConfig& config,
                 const store::BlockSource<Engine>* source,
                 const TimestampIndex* ts_index = nullptr,
                 ProofCache<Engine>* shared_cache = nullptr)
      : engine_(engine),
        config_(config),
        source_(source),
        ts_index_(ts_index),
        own_cache_(config.proof_cache_capacity),
        cache_(shared_cache != nullptr ? shared_cache : &own_cache_) {}

  // cache_ may point at own_cache_, so a memberwise copy/move would leave
  // the new object aiming into the source's storage.
  QueryProcessor(const QueryProcessor&) = delete;
  QueryProcessor& operator=(const QueryProcessor&) = delete;

  /// Process q over the chain; returns <R, VO>, or Status::InvalidArgument
  /// for a structurally invalid query (inverted or out-of-domain range,
  /// out-of-schema dimension, empty OR-clause — see core::ValidateQuery).
  ///
  /// `trace` (optional) receives the per-stage wall-time/work breakdown
  /// (core/query_trace.h). Tracing only reads clocks and bumps counters —
  /// the VO bytes are bit-identical with tracing on or off.
  Result<QueryResponse<Engine>> TimeWindowQuery(const Query& q,
                                                QueryTrace* trace = nullptr) {
    trace_ = trace;
    // A traced call always has a span tree: stage timing is done entirely in
    // spans, and the flat fields are projected back at the end, so direct
    // callers of the processor (tests, benches) see the same stage numbers
    // the api tier does.
    spans_ = trace != nullptr ? trace->EnsureSpans() : nullptr;

    uint32_t s_setup = SpanBegin("setup");
    if (auto st = ValidateQuery(q, config_.schema); !st.ok()) {
      SpanEnd(s_setup);
      return FinishTrace(std::move(st));
    }
    TransformedQuery tq = TransformQuery(q, config_.schema);
    MappedQueryView view(engine_, tq);
    SpanEnd(s_setup);

    QueryResponse<Engine> resp;
    uint32_t s_window = SpanBegin("window_lookup");
    auto range = FindHeightRange(q.time_start, q.time_end);
    SpanEnd(s_window);
    if (!range) {
      return FinishTrace(std::move(resp));  // empty window: nothing to prove
    }

    Aggregator agg;
    walk_span_ = SpanBegin("match_walk");
    {
      // Layers with no trace parameter under the walk (the store's
      // block-read miss path) attach their spans via the ambient context.
      trace::AmbientScope ambient(
          spans_, walk_span_ != 0 ? walk_span_ : trace::kRootSpan);
      uint64_t cursor = range->second;
      // Walk newest-to-oldest (Algorithm 4's direction). One block is
      // materialized at a time (BlockSource's reference contract), so a
      // disk-backed source never holds more than its cache's worth of
      // blocks.
      for (;;) {
        const Block<Engine>& block = source_->BlockAt(cursor);
        resp.vo.steps.push_back(ProcessBlock(block, tq, view, &resp, &agg));
        if (trace) ++trace->blocks_walked;
        if (cursor == range->first) break;
        // Try the *largest* usable mismatching skip of the current block.
        bool jumped = false;
        if (config_.mode == IndexMode::kBoth) {
          for (size_t li = block.skips.size(); li-- > 0;) {
            const SkipEntry<Engine>& skip = block.skips[li];
            if (cursor < skip.distance ||
                cursor - skip.distance + 1 <= range->first) {
              continue;  // would overshoot the window start
            }
            view.MapForMatch(engine_, skip.w, &mapped_w_);
            int clause = view.FindDisjointClause(mapped_w_);
            if (clause < 0) continue;
            resp.vo.steps.push_back(MakeSkipStep(
                block, static_cast<uint32_t>(li),
                static_cast<uint32_t>(clause), tq, &agg));
            cursor -= skip.distance + 1;
            jumped = true;
            if (trace) ++trace->skips_taken;
            break;
          }
        }
        if (!jumped) --cursor;
        if (cursor + 1 == range->first) break;  // walked past the start
      }
    }
    if (spans_ != nullptr && walk_span_ != 0) {
      spans_->Note(walk_span_, "blocks", trace->blocks_walked);
      spans_->Note(walk_span_, "nodes", trace->nodes_visited);
      spans_->Note(walk_span_, "skips", trace->skips_taken);
    }
    SpanEnd(walk_span_);
    if (trace) trace->results_matched = resp.objects.size();

    {
      // FlushAggregates' inline proving (the acc2 batch path) deliberately
      // gets no span of its own: it stays inside the aggregate stage, as it
      // always has. Its MSM sub-stage does get "msm" child spans.
      trace::ScopedSpan s_agg(spans_, "aggregate");
      agg_span_ = s_agg.id();
      FlushAggregates(&agg, tq, &resp.vo);
      agg_span_ = 0;
    }
    ResolveDeferredProofs(tq, &resp.vo);
    return FinishTrace(std::move(resp));
  }

  typename ProofCache<Engine>::Stats cache_stats() const {
    return cache_->stats();
  }

 private:
  uint32_t SpanBegin(const char* name, uint32_t parent = trace::kRootSpan) {
    return spans_ != nullptr ? spans_->Begin(name, parent) : 0;
  }
  void SpanEnd(uint32_t id) {
    if (spans_ != nullptr) spans_->End(id);
  }

  /// Project the span tree into the flat stage fields and clear the
  /// per-call tracing state; passes its argument through so every return
  /// path reads `return FinishTrace(...)`.
  template <typename T>
  T FinishTrace(T value) {
    if (trace_ != nullptr) trace_->ProjectSpans();
    trace_ = nullptr;
    spans_ = nullptr;
    walk_span_ = 0;
    agg_span_ = 0;
    return value;
  }

  /// Pending per-clause aggregation state (acc2 batching).
  struct Aggregator {
    // clause_idx -> summed multiset of all proof-less mismatch nodes.
    std::map<uint32_t, Multiset> pending;
  };

  /// A proof postponed for the parallel resolution pass.
  struct DeferredProof {
    Multiset w;
    typename Engine::ObjectDigest digest;
    uint32_t clause_idx;
  };

  /// Cache-consulting proof with trace attribution. When tracing,
  /// hit/miss/proved counters are bumped and — for inline proofs during
  /// the walk (`in_walk`) — a "prove" span nested under the walk span is
  /// opened, which the stage projection subtracts from match_walk_ns so
  /// walk and prove stay non-overlapping (FlushAggregates' proving stays
  /// inside the aggregate stage instead).
  Result<typename Engine::Proof> TracedGetOrProve(
      const typename Engine::ObjectDigest& digest, const Multiset& w,
      const Multiset& clause, bool in_walk) {
    if (trace_ == nullptr) {
      return cache_->GetOrProve(engine_, digest, w, clause);
    }
    bool hit = false;
    uint32_t sp = 0;
    if (in_walk) {
      sp = SpanBegin("prove", walk_span_ != 0 ? walk_span_ : trace::kRootSpan);
    }
    auto proof = cache_->GetOrProve(engine_, digest, w, clause, &hit);
    SpanEnd(sp);
    if (hit) {
      ++trace_->proof_cache_hits;
    } else {
      ++trace_->proof_cache_misses;
      ++trace_->proofs_computed;
    }
    return proof;
  }

  std::optional<std::pair<uint64_t, uint64_t>> FindHeightRange(
      uint64_t ts, uint64_t te) const {
    if (ts_index_ != nullptr) {
      // The index may momentarily trail the block source (miner appending
      // while we serve); fall through to the direct search in that case.
      if (ts_index_->size() == source_->NumBlocks()) {
        return ts_index_->HeightRange(ts, te);
      }
    }
    // Timestamps are monotonic by construction, so binary-search the source
    // directly: first height with t >= ts, last with t <= te. TimestampAt is
    // a resident-header read in every source — no block is faulted in.
    if (ts > te || source_->NumBlocks() == 0) return std::nullopt;
    auto ts_of = [this](uint64_t h) { return source_->TimestampAt(h); };
    uint64_t lo = 0, hi = source_->NumBlocks();
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (ts_of(mid) < ts) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    uint64_t first = lo;
    hi = source_->NumBlocks();
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (ts_of(mid) <= te) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (first == lo) return std::nullopt;
    return std::make_pair(first, lo - 1);
  }

  typename WindowVO<Engine>::Step ProcessBlock(const Block<Engine>& block,
                                               const TransformedQuery& tq,
                                               const MappedQueryView& view,
                                               QueryResponse<Engine>* resp,
                                               Aggregator* agg) {
    BlockVO<Engine> bvo;
    bvo.height = block.header.height;
    if (config_.mode == IndexMode::kNil) {
      ProcessNilBlock(block, tq, view, resp, agg, &bvo);
    } else {
      bvo.root = EmitSubtree(block, block.root_index, tq, view, resp, agg,
                             &bvo.nodes);
    }
    return bvo;
  }

  void ProcessNilBlock(const Block<Engine>& block, const TransformedQuery& tq,
                       const MappedQueryView& view,
                       QueryResponse<Engine>* resp, Aggregator* agg,
                       BlockVO<Engine>* bvo) {
    for (size_t i = 0; i < block.objects.size(); ++i) {
      if (trace_) ++trace_->nodes_visited;
      VoNode<Engine> node;
      node.digest = block.leaf_digests[i];
      const Multiset& w = block.object_ws[i];
      view.MapForMatch(engine_, w, &mapped_w_);
      if (view.Matches(mapped_w_)) {
        node.kind = VoKind::kMatch;
        node.object_ref = static_cast<uint32_t>(resp->objects.size());
        resp->objects.push_back(block.objects[i]);
      } else {
        int clause = view.FindDisjointClause(mapped_w_);
        FillMismatch(block.objects[i].Hash(), node.digest, w,
                     static_cast<uint32_t>(clause), tq, agg, &node);
      }
      bvo->nodes.push_back(std::move(node));
    }
  }

  /// Algorithm 3, emitting VO nodes; returns the VO-node index.
  int32_t EmitSubtree(const Block<Engine>& block, int32_t node_idx,
                      const TransformedQuery& tq, const MappedQueryView& view,
                      QueryResponse<Engine>* resp, Aggregator* agg,
                      std::vector<VoNode<Engine>>* out) {
    const IndexNode<Engine>& n = block.nodes[node_idx];
    if (trace_) ++trace_->nodes_visited;
    VoNode<Engine> vn;
    vn.digest = n.digest;
    view.MapForMatch(engine_, n.w, &mapped_w_);
    if (view.Matches(mapped_w_)) {
      if (n.IsLeaf()) {
        vn.kind = VoKind::kMatch;
        vn.object_ref = static_cast<uint32_t>(resp->objects.size());
        resp->objects.push_back(block.objects[n.object_index]);
        out->push_back(std::move(vn));
        return static_cast<int32_t>(out->size()) - 1;
      }
      vn.kind = VoKind::kExpand;
      vn.left = EmitSubtree(block, n.left, tq, view, resp, agg, out);
      vn.right = EmitSubtree(block, n.right, tq, view, resp, agg, out);
      out->push_back(std::move(vn));
      return static_cast<int32_t>(out->size()) - 1;
    }
    int clause = view.FindDisjointClause(mapped_w_);
    Hash32 inner =
        n.IsLeaf() ? block.objects[n.object_index].Hash()
                   : crypto::HashPair(block.nodes[n.left].hash,
                                      block.nodes[n.right].hash);
    FillMismatch(inner, n.digest, n.w, static_cast<uint32_t>(clause), tq, agg,
                 &vn);
    out->push_back(std::move(vn));
    return static_cast<int32_t>(out->size()) - 1;
  }

  void FillMismatch(const Hash32& inner,
                    const typename Engine::ObjectDigest& digest,
                    const Multiset& w, uint32_t clause_idx,
                    const TransformedQuery& tq, Aggregator* agg,
                    VoNode<Engine>* node) {
    node->kind = VoKind::kMismatch;
    node->inner_hash = inner;
    node->clause_idx = clause_idx;
    if constexpr (Engine::kSupportsAggregation) {
      auto [it, inserted] = agg->pending.try_emplace(clause_idx, w);
      if (!inserted) it->second.SumInPlace(w);
      // proof omitted: covered by the per-clause aggregated proof
    } else {
      if (config_.num_prover_threads > 1) {
        // Defer: the proof is resolved on the worker pool after the walk;
        // the node is findable because VO nodes are only appended.
        deferred_.push_back(DeferredProof{w, digest, clause_idx});
        return;
      }
      auto proof =
          TracedGetOrProve(digest, w, tq.clauses[clause_idx], /*in_walk=*/true);
      // A failure here would mean the match decision and the accumulator
      // disagree, which the mapped-match relation rules out by construction.
      assert(proof.ok());
      node->proof = proof.TakeValue();
    }
  }

  /// Compute all deferred proofs on the shared worker pool (deduplicated and
  /// cache-filtered), then install them into the VO in discovery order.
  /// Proofs are deterministic, so the resulting bytes are identical to the
  /// single-threaded path.
  void ResolveDeferredProofs(const TransformedQuery& tq, WindowVO<Engine>* vo) {
    if constexpr (!Engine::kSupportsAggregation) {
      if (deferred_.empty()) return;
      // The whole resolution pass — dedup, pool proving, install-back — is
      // the "prove" stage; each pool job adds a "prove_task" child span
      // (from a worker thread; the tree is internally synchronized).
      trace::ScopedSpan prove_span(spans_, "prove");
      const uint32_t prove_id =
          prove_span.id() != 0 ? prove_span.id() : trace::kRootSpan;
      // Deduplicate under the cache key H(digest | clause) and resolve
      // cache hits up front; only genuinely new proofs hit the pool.
      using Key = typename ProofCache<Engine>::Key;
      struct Job {
        const DeferredProof* d;
        typename Engine::Proof proof;
        bool cached = false;
      };
      std::map<Key, size_t> unique;  // -> job index
      std::vector<Job> jobs;
      std::vector<size_t> job_of_deferred(deferred_.size());
      std::vector<size_t> to_compute;
      for (size_t i = 0; i < deferred_.size(); ++i) {
        Key key = ProofCache<Engine>::KeyFor(engine_, deferred_[i].digest,
                                             tq.clauses[deferred_[i].clause_idx]);
        auto [it, inserted] = unique.try_emplace(key, jobs.size());
        if (inserted) {
          Job job;
          job.d = &deferred_[i];
          if (cache_->Lookup(key, &job.proof)) {
            job.cached = true;
            if (trace_) ++trace_->proof_cache_hits;
          } else {
            to_compute.push_back(jobs.size());
            if (trace_) ++trace_->proof_cache_misses;
          }
          jobs.push_back(std::move(job));
        }
        job_of_deferred[i] = it->second;
      }
      if (trace_) trace_->proofs_computed += to_compute.size();
      ThreadPool::Shared().ParallelFor(
          to_compute.size(), config_.num_prover_threads, [&](size_t k) {
            trace::ScopedSpan task(spans_, "prove_task", prove_id);
            Job& job = jobs[to_compute[k]];
            auto proof = engine_.ProveDisjoint(
                job.d->w, tq.clauses[job.d->clause_idx]);
            assert(proof.ok());
            job.proof = proof.TakeValue();
          });
      // Publish fresh proofs to the cross-query cache.
      for (auto& [key, idx] : unique) {
        if (!jobs[idx].cached) cache_->Insert(key, jobs[idx].proof);
      }
      // Install proofs back into mismatch nodes in walk order.
      size_t cursor = 0;
      for (auto& step : vo->steps) {
        if (!std::holds_alternative<BlockVO<Engine>>(step)) {
          auto& svo = std::get<SkipVO<Engine>>(step);
          if (!svo.proof.has_value()) {
            svo.proof = jobs[job_of_deferred[cursor++]].proof;
          }
          continue;
        }
        for (VoNode<Engine>& n : std::get<BlockVO<Engine>>(step).nodes) {
          if (n.kind == VoKind::kMismatch && !n.proof.has_value()) {
            n.proof = jobs[job_of_deferred[cursor++]].proof;
          }
        }
      }
      assert(cursor == deferred_.size());
      deferred_.clear();
    } else {
      (void)tq;
      (void)vo;
    }
  }

  typename WindowVO<Engine>::Step MakeSkipStep(const Block<Engine>& block,
                                               uint32_t level,
                                               uint32_t clause_idx,
                                               const TransformedQuery& tq,
                                               Aggregator* agg) {
    const SkipEntry<Engine>& entry = block.skips[level];
    SkipVO<Engine> svo;
    svo.from_height = block.header.height;
    svo.level = level;
    svo.distance = entry.distance;
    svo.digest = entry.digest;
    svo.clause_idx = clause_idx;
    for (size_t li = 0; li < block.skips.size(); ++li) {
      if (li != level) {
        svo.other_entry_hashes.push_back(block.skips[li].entry_hash);
      }
    }
    if constexpr (Engine::kSupportsAggregation) {
      auto [it, inserted] = agg->pending.try_emplace(clause_idx, entry.w);
      if (!inserted) it->second.SumInPlace(entry.w);
    } else {
      if (config_.num_prover_threads > 1) {
        deferred_.push_back(DeferredProof{entry.w, entry.digest, clause_idx});
      } else {
        auto proof = TracedGetOrProve(entry.digest, entry.w,
                                      tq.clauses[clause_idx], /*in_walk=*/true);
        assert(proof.ok());
        svo.proof = proof.TakeValue();
      }
    }
    return svo;
  }

  void FlushAggregates(Aggregator* agg, const TransformedQuery& tq,
                       WindowVO<Engine>* vo) {
    if constexpr (Engine::kSupportsAggregation) {
      for (auto& [clause_idx, summed] : agg->pending) {
        // One proof over the summed multiset equals the ProofSum of the
        // individual proofs (A is linear), at a single multiexp's cost.
        uint32_t s_msm = SpanBegin(
            "msm", agg_span_ != 0 ? agg_span_ : trace::kRootSpan);
        auto digest = engine_.Digest(summed);
        SpanEnd(s_msm);
        auto proof = TracedGetOrProve(digest, summed, tq.clauses[clause_idx],
                                      /*in_walk=*/false);
        assert(proof.ok());
        vo->aggregated.push_back(
            AggregatedProof<Engine>{clause_idx, proof.TakeValue()});
      }
    } else {
      (void)agg;
      (void)tq;
      (void)vo;
    }
  }

  const Engine& engine_;
  const ChainConfig& config_;
  const store::BlockSource<Engine>* source_;
  const TimestampIndex* ts_index_;
  ProofCache<Engine> own_cache_;
  ProofCache<Engine>* cache_;
  std::vector<DeferredProof> deferred_;
  std::vector<uint64_t> mapped_w_;  // per-node mapping scratch
  QueryTrace* trace_ = nullptr;     // non-null only inside a traced call
  trace::SpanTree* spans_ = nullptr;  // trace_'s tree; same lifetime
  uint32_t walk_span_ = 0;  // open "match_walk" span during the walk
  uint32_t agg_span_ = 0;   // open "aggregate" span during FlushAggregates
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_PROCESSOR_H_

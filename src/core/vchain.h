// Umbrella header: the vChain public API.
//
// Typical wiring (see examples/quickstart.cpp):
//
//   auto oracle  = accum::KeyOracle::Create(seed);
//   accum::Acc2Engine engine(oracle);
//   core::ChainConfig config;                       // mode, schema, skip size
//   core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
//   miner.AppendBlock(objects, timestamp);          // miner builds the ADS
//
//   chain::LightClient light;                       // user syncs headers
//   miner.SyncLightClient(&light);
//
//   core::QueryProcessor<accum::Acc2Engine> sp(engine, config,
//                                              &miner.blocks());
//   auto resp = sp.TimeWindowQuery(q);              // SP: <R, VO>
//
//   core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
//   Status ok = verifier.VerifyTimeWindow(q, resp.value());
//
// Subscription queries live in sub/subscription.h.

#ifndef VCHAIN_CORE_VCHAIN_H_
#define VCHAIN_CORE_VCHAIN_H_

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/engine.h"
#include "accum/keys.h"
#include "accum/mock.h"
#include "chain/light_client.h"
#include "core/block.h"
#include "core/chain_builder.h"
#include "core/processor.h"
#include "core/query.h"
#include "core/verifier.h"
#include "core/vo.h"

#endif  // VCHAIN_CORE_VCHAIN_H_

// Umbrella header: the vChain public API.
//
// First contact: vchain::Service (src/api/service.h) — the SP's front door.
// One object owns the whole stack (miner write-through, durable block store,
// timestamp index, shared proof cache, subscriptions) behind a *runtime*
// engine choice, serves queries from any number of threads, and returns the
// library-wide Status taxonomy (see examples/quickstart.cpp):
//
//   vchain::ServiceOptions opts;
//   opts.engine = vchain::EngineKind::kAcc2;        // runtime, not template
//   opts.config.schema = {/*dims=*/1, /*bits=*/10};
//   opts.store_dir = "/var/lib/vchain";             // "" = in-memory chain
//   auto svc = vchain::Service::Open(opts).TakeValue();
//
//   svc->Append(objects, timestamp);                // miner side
//   auto result = svc->Query(vchain::QueryBuilder() // any thread
//                                .Window(ts, te)
//                                .Range(0, 200, 250)
//                                .AllOf({"Sedan"})
//                                .AnyOf({"Benz", "BMW"})
//                                .Build());
//
//   chain::LightClient light;                       // user side
//   svc->SyncLightClient(&light);
//   Status ok = svc->Verify(q, result.value(), light);
//
// Query/QueryBatch/Stats are safe from any number of threads concurrently
// (shared mutex-striped ProofCache, shared decoded-block cache with
// per-query handles); Append/Subscribe serialize against them. Concurrent
// execution is bit-identical to serial — interleaving can never change a
// digest, proof, or VO byte. Malformed queries (inverted or out-of-domain
// range, unknown dimension, empty OR-clause) are rejected with
// Status::InvalidArgument by every entry point (core::ValidateQuery).
//
// The typed, engine-templated layer underneath stays public for callers
// that need compile-time engines, custom block sources, or the lazy
// subscription scheme:
//
//   auto oracle  = accum::KeyOracle::Create(seed);
//   accum::Acc2Engine engine(oracle);
//   core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
//   miner.AppendBlock(objects, timestamp);          // miner builds the ADS
//   core::QueryProcessor<accum::Acc2Engine> sp(engine, config,
//                                              &miner.blocks(),
//                                              &miner.timestamp_index());
//   auto resp = sp.TimeWindowQuery(q);              // SP: <R, VO>
//   core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
//   Status ok2 = verifier.VerifyTimeWindow(q, resp.value());
//
// Durable storage (store/ subsystem): Service manages a BlockStore itself
// when `store_dir` is set; typed-layer code can do the same wiring by hand —
// `BlockStore::Open` + `ChainBuilder::AttachStore` (O(1) write-through,
// `SetRetainWindow` bounds miner RAM) or `ResumeFromStore` after a restart,
// then serve through a `StoreBlockSource` (single-threaded) or
// `ConcurrentStoreBlockSource` (many query threads, shared LRU). Cold start
// rebuilds `TimestampIndex` and re-syncs a `LightClient` straight from the
// store — no re-mining.
//
// Subscription queries live in sub/subscription.h; Service exposes the
// realtime scheme (Subscribe/TakeSubscriptionEvents/VerifyNotification),
// while the lazy scheme (§7.2, Algorithm 5) remains typed-layer via
// SubscriptionManager::ProcessNewBlocksLazy.
//
// Remote deployments (src/net/): `net::SpServer` publishes a Service over
// a dependency-free HTTP/1.1 wire protocol and `net::SpClient` is the
// light user's side — JSON queries out, canonical VO bytes back, headers
// synced and re-validated locally, nothing trusted past the socket (see
// examples/vchain_spd.cpp and examples/sp_query.cpp, or `README.md`).
//
// Concurrency knobs. `ServiceOptions::proof_cache_shards` stripes the
// shared disjointness-proof cache across independently-locked LRU
// partitions. `ChainConfig::num_prover_threads` caps how many workers of
// the process-wide `ThreadPool::Shared()` one query's deferred proofs may
// occupy (non-aggregating engines only; 1 = fully serial, the default).
// Engines additionally accept `set_thread_pool(&ThreadPool::Shared())` to
// window-parallelize their multi-scalar multiplications on the same pool.
// All parallel paths are bit-identical to their serial counterparts.
//
// Cache knobs (SP-local, never consensus): `ChainConfig::proof_cache_capacity`
// LRU-bounds the disjointness-proof cache; `ChainConfig::block_cache_blocks`
// sizes the decoded-block cache of either store-backed source.

#ifndef VCHAIN_CORE_VCHAIN_H_
#define VCHAIN_CORE_VCHAIN_H_

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/engine.h"
#include "accum/keys.h"
#include "accum/mock.h"
#include "api/query_builder.h"
#include "api/service.h"
#include "chain/light_client.h"
#include "core/block.h"
#include "core/chain_builder.h"
#include "core/processor.h"
#include "core/query.h"
#include "core/verifier.h"
#include "core/vo.h"
#include "net/sp_client.h"
#include "net/sp_server.h"
#include "store/block_serde.h"
#include "store/block_source.h"
#include "store/block_store.h"
#include "store/concurrent_block_source.h"
#include "store/segment_log.h"

#endif  // VCHAIN_CORE_VCHAIN_H_

// Umbrella header: the vChain public API.
//
// Typical wiring (see examples/quickstart.cpp):
//
//   auto oracle  = accum::KeyOracle::Create(seed);
//   accum::Acc2Engine engine(oracle);
//   core::ChainConfig config;                       // mode, schema, skip size
//   core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
//   miner.AppendBlock(objects, timestamp);          // miner builds the ADS
//
//   chain::LightClient light;                       // user syncs headers
//   miner.SyncLightClient(&light);
//
//   core::QueryProcessor<accum::Acc2Engine> sp(engine, config,
//                                              &miner.blocks(),
//                                              &miner.timestamp_index());
//   auto resp = sp.TimeWindowQuery(q);              // SP: <R, VO>
//
//   core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
//   Status ok = verifier.VerifyTimeWindow(q, resp.value());
//
// Subscription queries live in sub/subscription.h.
//
// Concurrency knobs. `ChainConfig::num_prover_threads` caps how many workers
// of the process-wide `ThreadPool::Shared()` one query's deferred
// disjointness proofs may occupy (non-aggregating engines only; 1 = fully
// serial, the default). Engines additionally accept
// `set_thread_pool(&ThreadPool::Shared())` to window-parallelize their
// multi-scalar multiplications on the same pool. Both parallel paths are
// bit-identical to their serial counterparts, so they can be flipped on per
// deployment without affecting any digest, proof, or VO byte.

#ifndef VCHAIN_CORE_VCHAIN_H_
#define VCHAIN_CORE_VCHAIN_H_

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/engine.h"
#include "accum/keys.h"
#include "accum/mock.h"
#include "chain/light_client.h"
#include "core/block.h"
#include "core/chain_builder.h"
#include "core/processor.h"
#include "core/query.h"
#include "core/verifier.h"
#include "core/vo.h"

#endif  // VCHAIN_CORE_VCHAIN_H_

// Umbrella header: the vChain public API.
//
// Typical wiring (see examples/quickstart.cpp):
//
//   auto oracle  = accum::KeyOracle::Create(seed);
//   accum::Acc2Engine engine(oracle);
//   core::ChainConfig config;                       // mode, schema, skip size
//   core::ChainBuilder<accum::Acc2Engine> miner(engine, config);
//   miner.AppendBlock(objects, timestamp);          // miner builds the ADS
//
//   chain::LightClient light;                       // user syncs headers
//   miner.SyncLightClient(&light);
//
//   core::QueryProcessor<accum::Acc2Engine> sp(engine, config,
//                                              &miner.blocks(),
//                                              &miner.timestamp_index());
//   auto resp = sp.TimeWindowQuery(q);              // SP: <R, VO>
//
//   core::Verifier<accum::Acc2Engine> verifier(engine, config, &light);
//   Status ok = verifier.VerifyTimeWindow(q, resp.value());
//
// Persistent SP (store/ subsystem) — the production shape: the chain lives
// in a crash-safe append-only store, the SP streams blocks through an LRU
// cache, and a restart resumes without recomputing any digest:
//
//   auto db = store::BlockStore::Open("/var/lib/vchain", {}).TakeValue();
//   miner.AttachStore(db.get());                    // O(1) write-through
//   miner.SetRetainWindow(64);                      //   + bounded miner RAM
//   ...mine...
//   db->Sync();                                     // commit point
//
//   // After a restart (or on a separate SP host sharing the directory):
//   auto db2 = store::BlockStore::Open("/var/lib/vchain", {}).TakeValue();
//   core::TimestampIndex ts = db2->RebuildTimestampIndex();
//   chain::LightClient light2;
//   db2->SyncLightClient(&light2);                  // cold start, no mining
//   store::StoreBlockSource<accum::Acc2Engine> src(engine, db2.get(),
//                                                  config.block_cache_blocks);
//   core::QueryProcessor<accum::Acc2Engine> sp2(engine, config, &src, &ts);
//   // ...bit-identical results and VO bytes to the in-memory SP, over a
//   // chain that can be arbitrarily larger than RAM.
//   // Mining can also continue from the tip:
//   //   ChainBuilder<...>::ResumeFromStore(engine, config, db2.get())
//
// Subscription queries live in sub/subscription.h; a standing SP drains new
// blocks from any BlockSource via SubscriptionManager::ProcessNewBlocks.
//
// Concurrency knobs. `ChainConfig::num_prover_threads` caps how many workers
// of the process-wide `ThreadPool::Shared()` one query's deferred
// disjointness proofs may occupy (non-aggregating engines only; 1 = fully
// serial, the default). Engines additionally accept
// `set_thread_pool(&ThreadPool::Shared())` to window-parallelize their
// multi-scalar multiplications on the same pool. Both parallel paths are
// bit-identical to their serial counterparts, so they can be flipped on per
// deployment without affecting any digest, proof, or VO byte.
//
// Cache knobs (SP-local, never consensus): `ChainConfig::proof_cache_capacity`
// LRU-bounds the disjointness-proof cache; `ChainConfig::block_cache_blocks`
// sizes StoreBlockSource's decoded-block cache.

#ifndef VCHAIN_CORE_VCHAIN_H_
#define VCHAIN_CORE_VCHAIN_H_

#include "accum/acc1.h"
#include "accum/acc2.h"
#include "accum/engine.h"
#include "accum/keys.h"
#include "accum/mock.h"
#include "chain/light_client.h"
#include "core/block.h"
#include "core/chain_builder.h"
#include "core/processor.h"
#include "core/query.h"
#include "core/verifier.h"
#include "core/vo.h"
#include "store/block_serde.h"
#include "store/block_source.h"
#include "store/block_store.h"
#include "store/segment_log.h"

#endif  // VCHAIN_CORE_VCHAIN_H_

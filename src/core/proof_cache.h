// SP-side disjointness-proof cache.
//
// The dominant SP cost is ProveDisjoint. The same (node multiset, clause)
// pair recurs constantly — across blocks of a window walk, and massively
// across subscription queries that share clauses (§7.1's motivation for the
// IP-Tree). Proofs are cached under H(digest_bytes | clause_bytes), which is
// canonical for any engine.
//
// NOT thread-safe: the map and stats counters are unsynchronized. A cache
// may be shared across QueryProcessors only when all of them issue queries
// from the same thread (the processors' own parallel passes keep cache
// access on the query thread, so they are fine).

#ifndef VCHAIN_CORE_PROOF_CACHE_H_
#define VCHAIN_CORE_PROOF_CACHE_H_

#include <cstring>
#include <unordered_map>

#include "accum/multiset.h"
#include "crypto/sha256.h"

namespace vchain::core {

template <typename Engine>
class ProofCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  using Key = crypto::Hash32;

  /// Canonical cache key for a (digest, clause) pair — H(digest | clause).
  /// Public so batch passes can key their own dedup maps consistently.
  static Key KeyFor(const Engine& engine,
                    const typename Engine::ObjectDigest& digest,
                    const accum::Multiset& clause) {
    ByteWriter w;
    engine.SerializeDigest(digest, &w);
    clause.Serialize(&w);
    return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
  }

  /// Returns the cached or freshly-computed proof for (w, clause); forwards
  /// ProveDisjoint errors (i.e. the sets intersect).
  Result<typename Engine::Proof> GetOrProve(
      const Engine& engine, const typename Engine::ObjectDigest& digest,
      const accum::Multiset& w, const accum::Multiset& clause) {
    Key key = KeyFor(engine, digest, clause);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
    auto proof = engine.ProveDisjoint(w, clause);
    if (proof.ok()) {
      map_.emplace(key, proof.value());
    }
    return proof;
  }

  /// Lookup without computing (used by the deferred-proof batch pass to
  /// skip already-proven jobs before they are dispatched to the pool).
  const typename Engine::Proof* Lookup(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return &it->second;
  }

  /// Install a proof computed out-of-band (e.g. on the worker pool).
  void Insert(const Key& key, const typename Engine::Proof& proof) {
    map_.emplace(key, proof);
  }

  const Stats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

 private:
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      size_t out;
      std::memcpy(&out, k.data(), sizeof(out));
      return out;
    }
  };

  std::unordered_map<Key, typename Engine::Proof, KeyHasher> map_;
  Stats stats_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_PROOF_CACHE_H_

// SP-side disjointness-proof cache.
//
// The dominant SP cost is ProveDisjoint. The same (node multiset, clause)
// pair recurs constantly — across blocks of a window walk, and massively
// across subscription queries that share clauses (§7.1's motivation for the
// IP-Tree). Proofs are cached under H(digest_bytes | clause_bytes), which is
// canonical for any engine.
//
// The cache is LRU-bounded (ChainConfig::proof_cache_capacity): a standing
// subscription SP proves against an ever-growing set of node digests, so an
// unbounded map is a slow leak. Hits refresh recency; inserting past
// capacity evicts the coldest entry and bumps `Stats::evictions`. Capacity 0
// means unbounded (benchmarks that want the old behavior).
//
// NOT thread-safe: the map and stats counters are unsynchronized. A cache
// may be shared across QueryProcessors only when all of them issue queries
// from the same thread (the processors' own parallel passes keep cache
// access on the query thread, so they are fine).

#ifndef VCHAIN_CORE_PROOF_CACHE_H_
#define VCHAIN_CORE_PROOF_CACHE_H_

#include <cstring>

#include "accum/multiset.h"
#include "common/lru.h"
#include "crypto/sha256.h"

namespace vchain::core {

template <typename Engine>
class ProofCache {
 public:
  using Stats = LruStats;
  using Key = crypto::Hash32;

  /// `capacity` = max resident proofs; 0 = unbounded.
  explicit ProofCache(size_t capacity = 0) : map_(capacity) {}

  /// Canonical cache key for a (digest, clause) pair — H(digest | clause).
  /// Public so batch passes can key their own dedup maps consistently.
  static Key KeyFor(const Engine& engine,
                    const typename Engine::ObjectDigest& digest,
                    const accum::Multiset& clause) {
    ByteWriter w;
    engine.SerializeDigest(digest, &w);
    clause.Serialize(&w);
    return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
  }

  /// Returns the cached or freshly-computed proof for (w, clause); forwards
  /// ProveDisjoint errors (i.e. the sets intersect).
  Result<typename Engine::Proof> GetOrProve(
      const Engine& engine, const typename Engine::ObjectDigest& digest,
      const accum::Multiset& w, const accum::Multiset& clause) {
    Key key = KeyFor(engine, digest, clause);
    if (const typename Engine::Proof* hit = map_.Get(key)) {
      return *hit;
    }
    auto proof = engine.ProveDisjoint(w, clause);
    if (proof.ok()) {
      map_.Put(key, proof.value());
    }
    return proof;
  }

  /// Lookup without computing (used by the deferred-proof batch pass to
  /// skip already-proven jobs before they are dispatched to the pool).
  /// The pointer is valid until the entry is evicted by a later insert.
  const typename Engine::Proof* Lookup(const Key& key) {
    return map_.Get(key);
  }

  /// Install a proof computed out-of-band (e.g. on the worker pool),
  /// evicting the least-recently-used entry when at capacity.
  void Insert(const Key& key, const typename Engine::Proof& proof) {
    map_.Put(key, proof);
  }

  const Stats& stats() const { return map_.stats(); }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return map_.capacity(); }
  void Clear() { map_.Clear(); }

 private:
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      size_t out;
      std::memcpy(&out, k.data(), sizeof(out));
      return out;
    }
  };

  LruMap<Key, typename Engine::Proof, KeyHasher> map_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_PROOF_CACHE_H_

// SP-side disjointness-proof cache.
//
// The dominant SP cost is ProveDisjoint. The same (node multiset, clause)
// pair recurs constantly — across blocks of a window walk, and massively
// across subscription queries that share clauses (§7.1's motivation for the
// IP-Tree). Proofs are cached under H(digest_bytes | clause_bytes), which is
// canonical for any engine.
//
// The cache is LRU-bounded (ChainConfig::proof_cache_capacity): a standing
// subscription SP proves against an ever-growing set of node digests, so an
// unbounded map is a slow leak. Hits refresh recency; inserting past
// capacity evicts the coldest entry and bumps `Stats::evictions`. Capacity 0
// means unbounded (benchmarks that want the old behavior).
//
// Thread safety: the cache is safe to share across QueryProcessors queried
// from many threads concurrently (the concurrent-SP shape of api::Service).
// Internally it is mutex-striped: keys are partitioned over `shards`
// independently-locked LRU maps, so concurrent queries only contend when
// their keys collide on a shard. With `shards == 1` (the default) the cache
// is one exact global LRU; with more shards each shard LRU-bounds its own
// partition (total resident proofs stay within capacity + shards - 1), which
// is the right trade for a cache hammered by many query threads. Proofs are
// deterministic, so cache behavior — including two threads racing to prove
// the same key — can never change a proof, digest, or VO byte; it only
// affects how often ProveDisjoint runs.

#ifndef VCHAIN_CORE_PROOF_CACHE_H_
#define VCHAIN_CORE_PROOF_CACHE_H_

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "accum/multiset.h"
#include "common/lru.h"
#include "crypto/sha256.h"

namespace vchain::core {

template <typename Engine>
class ProofCache {
 public:
  using Stats = LruStats;
  using Key = crypto::Hash32;

  /// `capacity` = max resident proofs; 0 = unbounded. `shards` = number of
  /// independently-locked LRU partitions (rounded up to 1); use 1 for an
  /// exact global LRU, more (e.g. 16) when many threads share the cache.
  explicit ProofCache(size_t capacity = 0, size_t shards = 1) {
    if (shards < 1) shards = 1;
    size_t per_shard =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
    capacity_ = capacity;
  }

  /// Canonical cache key for a (digest, clause) pair — H(digest | clause).
  /// Public so batch passes can key their own dedup maps consistently.
  static Key KeyFor(const Engine& engine,
                    const typename Engine::ObjectDigest& digest,
                    const accum::Multiset& clause) {
    ByteWriter w;
    engine.SerializeDigest(digest, &w);
    clause.Serialize(&w);
    return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
  }

  /// Returns the cached or freshly-computed proof for (w, clause); forwards
  /// ProveDisjoint errors (i.e. the sets intersect). The proof itself is
  /// computed outside any lock — a miss never serializes other threads
  /// behind a multiexp. `was_hit` (optional) reports whether the proof came
  /// from the cache — per-call attribution the aggregated stats() cannot
  /// give a tracing caller.
  Result<typename Engine::Proof> GetOrProve(
      const Engine& engine, const typename Engine::ObjectDigest& digest,
      const accum::Multiset& w, const accum::Multiset& clause,
      bool* was_hit = nullptr) {
    Key key = KeyFor(engine, digest, clause);
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (const typename Engine::Proof* hit = shard.map.Get(key)) {
        if (was_hit != nullptr) *was_hit = true;
        return *hit;
      }
    }
    if (was_hit != nullptr) *was_hit = false;
    auto proof = engine.ProveDisjoint(w, clause);
    if (proof.ok()) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.Put(key, proof.value());
    }
    return proof;
  }

  /// Lookup without computing (used by the deferred-proof batch pass to
  /// skip already-proven jobs before they are dispatched to the pool).
  /// Copies the proof into `*out` — under concurrency a pointer into the
  /// map could be evicted by another thread's insert before the caller
  /// dereferences it.
  bool Lookup(const Key& key, typename Engine::Proof* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const typename Engine::Proof* hit = shard.map.Get(key);
    if (hit == nullptr) return false;
    *out = *hit;
    return true;
  }

  /// Install a proof computed out-of-band (e.g. on the worker pool),
  /// evicting the shard's least-recently-used entry when at capacity.
  void Insert(const Key& key, const typename Engine::Proof& proof) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.Put(key, proof);
  }

  /// Aggregated hit/miss/eviction counters across all shards (a consistent
  /// per-shard snapshot; shards are read one lock at a time).
  Stats stats() const {
    Stats out;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      const Stats& s = shard->map.stats();
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
    }
    return out;
  }

  size_t size() const {
    size_t out = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out += shard->map.size();
    }
    return out;
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.Clear();
    }
  }

 private:
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      size_t out;
      std::memcpy(&out, k.data(), sizeof(out));
      return out;
    }
  };

  struct Shard {
    explicit Shard(size_t per_shard_capacity) : map(per_shard_capacity) {}
    mutable std::mutex mu;
    LruMap<Key, typename Engine::Proof, KeyHasher> map;
  };

  Shard& ShardFor(const Key& key) const {
    if (shards_.size() == 1) return *shards_[0];
    // Shard on a key byte the intra-shard hash does not consume (KeyHasher
    // reads bytes [0, 8)); SHA-256 output bytes are independent, so any
    // byte spreads uniformly.
    uint64_t sel;
    std::memcpy(&sel, key.data() + 8, sizeof(sel));
    return *shards_[sel % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t capacity_ = 0;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_PROOF_CACHE_H_

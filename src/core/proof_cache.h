// SP-side disjointness-proof cache.
//
// The dominant SP cost is ProveDisjoint. The same (node multiset, clause)
// pair recurs constantly — across blocks of a window walk, and massively
// across subscription queries that share clauses (§7.1's motivation for the
// IP-Tree). Proofs are cached under H(digest_bytes | clause_bytes), which is
// canonical for any engine.

#ifndef VCHAIN_CORE_PROOF_CACHE_H_
#define VCHAIN_CORE_PROOF_CACHE_H_

#include <cstring>
#include <unordered_map>

#include "accum/multiset.h"
#include "crypto/sha256.h"

namespace vchain::core {

template <typename Engine>
class ProofCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Returns the cached or freshly-computed proof for (w, clause); forwards
  /// ProveDisjoint errors (i.e. the sets intersect).
  Result<typename Engine::Proof> GetOrProve(
      const Engine& engine, const typename Engine::ObjectDigest& digest,
      const accum::Multiset& w, const accum::Multiset& clause) {
    Key key = MakeKey(engine, digest, clause);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
    auto proof = engine.ProveDisjoint(w, clause);
    if (proof.ok()) {
      map_.emplace(key, proof.value());
    }
    return proof;
  }

  const Stats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

 private:
  using Key = crypto::Hash32;

  struct KeyHasher {
    size_t operator()(const Key& k) const {
      size_t out;
      std::memcpy(&out, k.data(), sizeof(out));
      return out;
    }
  };

  static Key MakeKey(const Engine& engine,
                     const typename Engine::ObjectDigest& digest,
                     const accum::Multiset& clause) {
    ByteWriter w;
    engine.SerializeDigest(digest, &w);
    clause.Serialize(&w);
    return crypto::Sha256Digest(ByteSpan(w.bytes().data(), w.bytes().size()));
  }

  std::unordered_map<Key, typename Engine::Proof, KeyHasher> map_;
  Stats stats_;
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_PROOF_CACHE_H_

#include "core/block.h"

namespace vchain::core {

const char* IndexModeName(IndexMode mode) {
  switch (mode) {
    case IndexMode::kNil: return "nil";
    case IndexMode::kIntra: return "intra";
    case IndexMode::kBoth: return "both";
  }
  return "?";
}

}  // namespace vchain::core

#include "core/query.h"

#include <sstream>

#include "accum/element.h"

namespace vchain::core {

std::string Query::ToString() const {
  std::ostringstream os;
  os << "q<[" << time_start << "," << time_end << "], ";
  for (const RangePredicate& r : ranges) {
    os << "d" << r.dim << ":[" << r.lo << "," << r.hi << "] ";
  }
  os << "CNF:";
  for (size_t i = 0; i < keyword_cnf.size(); ++i) {
    if (i) os << " AND ";
    os << "(";
    for (size_t j = 0; j < keyword_cnf[i].size(); ++j) {
      if (j) os << " OR ";
      os << keyword_cnf[i][j];
    }
    os << ")";
  }
  os << ">";
  return os.str();
}

void SerializeQuery(const Query& q, ByteWriter* w) {
  w->PutU64(q.time_start);
  w->PutU64(q.time_end);
  w->PutU32(static_cast<uint32_t>(q.ranges.size()));
  for (const RangePredicate& r : q.ranges) {
    w->PutU32(r.dim);
    w->PutU64(r.lo);
    w->PutU64(r.hi);
  }
  w->PutU32(static_cast<uint32_t>(q.keyword_cnf.size()));
  for (const std::vector<std::string>& clause : q.keyword_cnf) {
    w->PutU32(static_cast<uint32_t>(clause.size()));
    for (const std::string& kw : clause) w->PutString(kw);
  }
}

Status DeserializeQuery(ByteReader* r, Query* out) {
  *out = Query{};
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->time_start));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->time_end));
  uint32_t n_ranges = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_ranges));
  if (n_ranges > 1u << 16) return Status::Corruption("too many ranges");
  out->ranges.resize(n_ranges);
  for (RangePredicate& rp : out->ranges) {
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&rp.dim));
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&rp.lo));
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&rp.hi));
  }
  uint32_t n_clauses = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_clauses));
  if (n_clauses > 1u << 16) return Status::Corruption("too many clauses");
  out->keyword_cnf.resize(n_clauses);
  for (std::vector<std::string>& clause : out->keyword_cnf) {
    uint32_t n_kw = 0;
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_kw));
    if (n_kw > 1u << 16) return Status::Corruption("too many keywords");
    clause.resize(n_kw);
    for (std::string& kw : clause) {
      VCHAIN_RETURN_IF_ERROR(r->GetString(&kw));
    }
  }
  return Status::OK();
}

Status ValidateQuery(const Query& q, const NumericSchema& schema) {
  for (size_t i = 0; i < q.ranges.size(); ++i) {
    const RangePredicate& r = q.ranges[i];
    if (r.dim >= schema.dims) {
      return Status::InvalidArgument(
          "range predicate " + std::to_string(i) + " on dimension " +
          std::to_string(r.dim) + ", but the schema has " +
          std::to_string(schema.dims) + " dimension(s)");
    }
    if (r.lo > r.hi) {
      return Status::InvalidArgument(
          "range predicate " + std::to_string(i) + " is inverted: lo " +
          std::to_string(r.lo) + " > hi " + std::to_string(r.hi));
    }
    // A 64-bit dimension's domain is all of uint64_t (and MaxValue() would
    // be UB to compute) — only narrower schemas can have out-of-domain hi.
    if (schema.bits < 64 && r.hi > schema.MaxValue()) {
      return Status::InvalidArgument(
          "range predicate " + std::to_string(i) + " hi " +
          std::to_string(r.hi) + " exceeds the " +
          std::to_string(schema.bits) + "-bit domain max " +
          std::to_string(schema.MaxValue()));
    }
  }
  for (size_t i = 0; i < q.keyword_cnf.size(); ++i) {
    if (q.keyword_cnf[i].empty()) {
      return Status::InvalidArgument(
          "keyword CNF clause " + std::to_string(i) +
          " is an empty OR (unsatisfiable)");
    }
  }
  return Status::OK();
}

TransformedQuery TransformQuery(const Query& q, const NumericSchema& schema) {
  TransformedQuery out;
  for (const RangePredicate& r : q.ranges) {
    Multiset clause;
    for (Element e :
         chain::RangeCoverElements(r.lo, r.hi, r.dim, schema)) {
      clause.Add(e);
    }
    out.clauses.push_back(std::move(clause));
  }
  for (const std::vector<std::string>& kw_clause : q.keyword_cnf) {
    Multiset clause;
    for (const std::string& kw : kw_clause) {
      clause.Add(accum::EncodeKeyword(kw));
    }
    out.clauses.push_back(std::move(clause));
  }
  return out;
}

bool LocalMatch(const Object& o, const Query& q, const NumericSchema& schema) {
  (void)schema;
  if (o.timestamp < q.time_start || o.timestamp > q.time_end) return false;
  for (const RangePredicate& r : q.ranges) {
    if (r.dim >= o.numeric.size()) return false;
    uint64_t v = o.numeric[r.dim];
    if (v < r.lo || v > r.hi) return false;
  }
  for (const std::vector<std::string>& clause : q.keyword_cnf) {
    bool any = false;
    for (const std::string& kw : clause) {
      for (const std::string& have : o.keywords) {
        if (kw == have) {
          any = true;
          break;
        }
      }
      if (any) break;
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace vchain::core

// Per-query stage trace: where did this query's wall time go?
//
// The paper's evaluation (vChain §8) breaks SP cost into window lookup,
// clause matching, disjointness proving, and MSM — QueryTrace reproduces
// that breakdown from a live server. QueryProcessor::TimeWindowQuery fills
// one when handed a non-null pointer; the api::Service wraps the call to
// add serialization and total time, aggregates stages into histograms, and
// the wire layer surfaces the trace as JSON in an `X-Vchain-Trace`
// response header when the request opts in.
//
// Two invariants:
//   * Tracing never touches query semantics — it reads clocks and bumps
//     counters, so VO bytes are bit-identical with tracing on or off
//     (asserted in tests/net/net_e2e_test.cc).
//   * The primary stages are non-overlapping and cover the whole
//     processor+serialize path, so their sum tracks total_ns to within
//     scheduling noise (the acceptance bound is ~10%). msm_ns is an
//     informational sub-stage of aggregate_ns (the accumulate-then-digest
//     multi-scalar exponentiation), not a sixth term of the sum.
//
// All times are monotonic-clock nanoseconds (metrics::MonotonicNanos).
//
// Since the introspection plane, the stage fields are a *projection* of the
// causal span tree (`spans`, common/span.h): the processor and api tiers
// open/close spans, and ProjectSpans() folds them back into the flat fields
// above so histograms, warn logs, and the trace header all read one
// measurement. Callers that hand the processor a bare QueryTrace without a
// tree get one auto-created (EnsureSpans), so the flat numbers never vanish.

#ifndef VCHAIN_CORE_QUERY_TRACE_H_
#define VCHAIN_CORE_QUERY_TRACE_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/span.h"

namespace vchain::core {

struct QueryTrace {
  // --- Non-overlapping wall-time stages (ns). Sum ≈ total_ns. ---
  /// Query validation, keyword→element mapping, processor setup.
  uint64_t setup_ns = 0;
  /// Height-range resolution for [ts, te] (timestamp index or binary
  /// search over headers).
  uint64_t window_lookup_ns = 0;
  /// The block walk: per-node clause matching, result collection,
  /// mismatch recording, skip-step attempts.
  uint64_t match_walk_ns = 0;
  /// FlushAggregates: summed-multiset digesting (the MSM) and inline
  /// aggregate proving.
  uint64_t aggregate_ns = 0;
  /// ResolveDeferredProofs: batch disjointness proving on the pool.
  uint64_t prove_ns = 0;
  /// Response serialization to canonical VO bytes (filled by api tier).
  uint64_t serialize_ns = 0;

  /// Whole server-side call, measured around everything above (api tier).
  uint64_t total_ns = 0;

  /// Informational sub-stage of aggregate_ns: time inside the engine
  /// digest of summed multisets — the multi-scalar multiplication.
  uint64_t msm_ns = 0;

  // --- Work counts. ---
  uint64_t blocks_walked = 0;
  uint64_t skips_taken = 0;       // skip-list hops that replaced block walks
  uint64_t nodes_visited = 0;     // intra-block tree nodes examined
  uint64_t results_matched = 0;   // objects returned
  uint64_t proofs_computed = 0;   // ProveDisjoint executions (cache misses)
  uint64_t proof_cache_hits = 0;
  uint64_t proof_cache_misses = 0;

  /// The causal span tree this trace's stage fields are projected from.
  /// Shared so the retention ring can outlive the QueryTrace.
  std::shared_ptr<trace::SpanTree> spans;

  /// The tree, creating it (rooted at `root`, started now) on first use.
  trace::SpanTree* EnsureSpans(const char* root = "query") {
    if (spans == nullptr) spans = std::make_shared<trace::SpanTree>(root);
    return spans.get();
  }

  /// Fold the span tree back into the flat stage fields. Inline "prove"
  /// spans nested under the walk are subtracted from match_walk_ns so the
  /// primary stages stay non-overlapping; when the tree overflowed
  /// (DroppedSpans > 0) un-subtracted prove time simply stays inside the
  /// walk, preserving the sum invariant. No-op without a tree.
  void ProjectSpans() {
    if (spans == nullptr) return;
    const trace::SpanTree& t = *spans;
    setup_ns = t.SumDurationsNs("setup");
    window_lookup_ns = t.SumDurationsNs("window_lookup");
    const uint64_t walk = t.SumDurationsNs("match_walk");
    const uint64_t inline_prove =
        t.SumDurationsUnderNs("prove", "match_walk");
    match_walk_ns = walk > inline_prove ? walk - inline_prove : 0;
    aggregate_ns = t.SumDurationsNs("aggregate");
    prove_ns = t.SumDurationsNs("prove");
    serialize_ns = t.SumDurationsNs("serialize");
    msm_ns = t.SumDurationsNs("msm");
    if (t.RootDurationNs() > 0) total_ns = t.RootDurationNs();
  }

  /// Sum of the non-overlapping stages — the number the ~10%-of-total
  /// acceptance bound is checked against.
  uint64_t StageSumNs() const {
    return setup_ns + window_lookup_ns + match_walk_ns + aggregate_ns +
           prove_ns + serialize_ns;
  }

  /// Spans emitted into the ToJson header payload at most — keeps the
  /// X-Vchain-Trace header comfortably under the client's 16 KB
  /// response-head cap even for pathological walks.
  static constexpr size_t kMaxJsonSpans = 64;

  /// Compact single-line JSON — header-safe (ASCII, no CR/LF), hand
  /// rolled so core does not depend on the net tier's codec. When a span
  /// tree is attached it is appended as "spans" (capped at kMaxJsonSpans,
  /// with "spans_dropped" counting tree-level drops).
  std::string ToJson() const {
    char buf[832];
    std::snprintf(
        buf, sizeof(buf),
        "{\"total_ns\":%" PRIu64 ",\"setup_ns\":%" PRIu64
        ",\"window_lookup_ns\":%" PRIu64 ",\"match_walk_ns\":%" PRIu64
        ",\"aggregate_ns\":%" PRIu64 ",\"prove_ns\":%" PRIu64
        ",\"serialize_ns\":%" PRIu64 ",\"msm_ns\":%" PRIu64
        ",\"blocks_walked\":%" PRIu64 ",\"skips_taken\":%" PRIu64
        ",\"nodes_visited\":%" PRIu64 ",\"results_matched\":%" PRIu64
        ",\"proofs_computed\":%" PRIu64 ",\"proof_cache_hits\":%" PRIu64
        ",\"proof_cache_misses\":%" PRIu64,
        total_ns, setup_ns, window_lookup_ns, match_walk_ns, aggregate_ns,
        prove_ns, serialize_ns, msm_ns, blocks_walked, skips_taken,
        nodes_visited, results_matched, proofs_computed, proof_cache_hits,
        proof_cache_misses);
    std::string out = buf;
    if (spans != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"spans_dropped\":%" PRIu64
                    ",\"spans\":", spans->DroppedSpans());
      out.append(buf);
      spans->AppendJson(&out, kMaxJsonSpans);
    }
    out.push_back('}');
    return out;
  }
};

}  // namespace vchain::core

#endif  // VCHAIN_CORE_QUERY_TRACE_H_

// Prime fields in Montgomery form over 4-limb moduli.
//
// `PrimeField<Params>` is instantiated twice for BN254: `Fp` (the base field,
// modulus p) and `Fr` (the scalar field, modulus r). All Montgomery constants
// (R mod p, R^2 mod p, -p^-1 mod 2^64) are derived at compile time from the
// modulus, so there are no hand-transcribed magic constants to get wrong.

#ifndef VCHAIN_CRYPTO_FIELD_H_
#define VCHAIN_CRYPTO_FIELD_H_

#include <cassert>
#include <string>

#include "crypto/u256.h"

namespace vchain::crypto {

/// Compile-time derived Montgomery parameters for an odd modulus < 2^255.
struct FieldParams {
  U256 modulus;
  uint64_t n0inv;    // -modulus^-1 mod 2^64
  U256 r_mod;        // R = 2^256 mod modulus (Montgomery form of 1)
  U256 r2_mod;       // R^2 mod modulus (conversion factor into Montgomery form)
  U256 modulus_minus_two;        // exponent for Fermat inversion
  U256 modulus_plus_one_div_4;   // sqrt exponent when modulus % 4 == 3
};

constexpr FieldParams ComputeFieldParams(const U256& modulus) {
  FieldParams fp{};
  fp.modulus = modulus;

  // n0inv by Newton iteration on the low limb: x_{k+1} = x_k (2 - m*x_k).
  uint64_t m0 = modulus.limb[0];
  uint64_t x = 1;
  for (int i = 0; i < 6; ++i) {
    x = x * (2 - m0 * x);
  }
  fp.n0inv = ~x + 1;  // -x mod 2^64

  // R and R^2 by modular doubling from 1.
  U256 t(1);
  for (int i = 0; i < 512; ++i) {
    uint64_t carry = t.Shl1InPlace();
    if (carry || t >= modulus) t.SubInPlace(modulus);
    if (i == 255) fp.r_mod = t;
  }
  fp.r2_mod = t;

  U256 m2 = modulus;
  m2.SubInPlace(U256(2));
  fp.modulus_minus_two = m2;

  U256 p1 = modulus;
  p1.AddInPlace(U256(1));  // p < 2^255 so no overflow
  p1.Shr1InPlace();
  p1.Shr1InPlace();
  fp.modulus_plus_one_div_4 = p1;
  return fp;
}

/// An element of GF(modulus), stored in Montgomery form.
template <const FieldParams& P>
class PrimeField {
 public:
  constexpr PrimeField() = default;

  /// The additive / multiplicative identities.
  static constexpr PrimeField Zero() { return PrimeField(); }
  static constexpr PrimeField One() { return FromMontgomery(P.r_mod); }

  /// Lift a small integer into the field.
  static PrimeField FromUint64(uint64_t v) {
    return FromCanonical(U256(v));
  }

  /// Lift a canonical (plain, < modulus) representative into the field.
  static PrimeField FromCanonical(const U256& v) {
    assert(v < P.modulus);
    PrimeField out;
    out.mont_ = MontMul(v, P.r2_mod);
    return out;
  }

  /// Reduce an arbitrary 256-bit value mod the modulus, then lift.
  static PrimeField FromU256Reduce(U256 v) {
    while (v >= P.modulus) v.SubInPlace(P.modulus);
    return FromCanonical(v);
  }

  /// Wrap a value already in Montgomery form (internal/test use).
  static constexpr PrimeField FromMontgomery(const U256& m) {
    PrimeField out;
    out.mont_ = m;
    return out;
  }

  /// Canonical (plain) representative in [0, modulus).
  U256 ToCanonical() const { return MontMul(mont_, U256(1)); }
  const U256& montgomery() const { return mont_; }

  bool IsZero() const { return mont_.IsZero(); }
  bool operator==(const PrimeField& o) const { return mont_ == o.mont_; }
  bool operator!=(const PrimeField& o) const { return !(mont_ == o.mont_); }

  PrimeField operator+(const PrimeField& o) const {
    PrimeField out = *this;
    uint64_t carry = out.mont_.AddInPlace(o.mont_);
    if (carry || out.mont_ >= P.modulus) out.mont_.SubInPlace(P.modulus);
    return out;
  }

  PrimeField operator-(const PrimeField& o) const {
    PrimeField out = *this;
    if (out.mont_.SubInPlace(o.mont_)) out.mont_.AddInPlace(P.modulus);
    return out;
  }

  PrimeField operator*(const PrimeField& o) const {
    return FromMontgomery(MontMul(mont_, o.mont_));
  }

  PrimeField& operator+=(const PrimeField& o) { return *this = *this + o; }
  PrimeField& operator-=(const PrimeField& o) { return *this = *this - o; }
  PrimeField& operator*=(const PrimeField& o) { return *this = *this * o; }

  PrimeField Neg() const {
    if (IsZero()) return *this;
    PrimeField out;
    out.mont_ = P.modulus;
    out.mont_.SubInPlace(mont_);
    return out;
  }

  PrimeField Double() const { return *this + *this; }
  PrimeField Square() const { return *this * *this; }

  /// this^e by square-and-multiply (left-to-right).
  PrimeField Pow(const U256& e) const {
    PrimeField acc = One();
    int n = e.BitLength();
    for (int i = n - 1; i >= 0; --i) {
      acc = acc.Square();
      if (e.Bit(i)) acc = acc * *this;
    }
    return acc;
  }

  /// Multiplicative inverse via the binary extended Euclidean algorithm.
  /// Returns Zero() for Zero() input (callers guard where it matters).
  PrimeField Inverse() const {
    if (IsZero()) return Zero();
    // Invert the Montgomery representative m = a*R: ext-gcd yields
    // m^-1 = a^-1 R^-1 (plain); two Montgomery multiplications by R^2
    // re-scale to a^-1 R, i.e. the Montgomery form of the inverse.
    U256 inv_plain = InvertCanonical(mont_);
    U256 t = MontMul(inv_plain, P.r2_mod);  // a^-1 R^-1 * R^2 * R^-1 = a^-1
    t = MontMul(t, P.r2_mod);               // a^-1 * R^2 * R^-1 = a^-1 R
    return FromMontgomery(t);
  }

  /// Square root when modulus % 4 == 3 (true for the BN254 base field).
  /// Returns false if this is a non-residue.
  bool Sqrt(PrimeField* out) const {
    PrimeField cand = Pow(P.modulus_plus_one_div_4);
    if (cand.Square() == *this) {
      *out = cand;
      return true;
    }
    return false;
  }

  /// True when the canonical representative is odd (used as the compressed
  /// point sign bit).
  bool CanonicalIsOdd() const { return ToCanonical().IsOdd(); }

  std::string ToString() const { return U256ToDecimal(ToCanonical()); }

  static const U256& Modulus() { return P.modulus; }

 private:
  /// CIOS Montgomery multiplication: a*b*R^-1 mod modulus.
  static constexpr U256 MontMul(const U256& a, const U256& b) {
    uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // Multiply-accumulate a * b[i] into t.
      uint128_t carry = 0;
      for (int j = 0; j < 4; ++j) {
        uint128_t cur =
            static_cast<uint128_t>(a.limb[j]) * b.limb[i] + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      uint128_t s = static_cast<uint128_t>(t[4]) + carry;
      t[4] = static_cast<uint64_t>(s);
      t[5] = static_cast<uint64_t>(s >> 64);

      // Reduce: add m * modulus so that the low limb becomes zero.
      uint64_t m = t[0] * P.n0inv;
      uint128_t cur = static_cast<uint128_t>(m) * P.modulus.limb[0] + t[0];
      carry = cur >> 64;
      for (int j = 1; j < 4; ++j) {
        cur = static_cast<uint128_t>(m) * P.modulus.limb[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      s = static_cast<uint128_t>(t[4]) + carry;
      t[3] = static_cast<uint64_t>(s);
      t[4] = t[5] + static_cast<uint64_t>(s >> 64);
    }
    U256 out(t[0], t[1], t[2], t[3]);
    if (t[4] != 0 || out >= P.modulus) out.SubInPlace(P.modulus);
    return out;
  }

  /// Binary extended Euclid: v^-1 mod modulus for 0 < v < modulus.
  static U256 InvertCanonical(const U256& v) {
    U256 u = v;
    U256 w = P.modulus;
    U256 x1(1);
    U256 x2(0);
    auto halve_mod = [](U256* x) {
      if (x->IsOdd()) {
        uint64_t carry = x->AddInPlace(P.modulus);
        x->Shr1InPlace();
        if (carry) x->limb[3] |= 1ULL << 63;
      } else {
        x->Shr1InPlace();
      }
    };
    while (!(u == U256(1)) && !(w == U256(1))) {
      while (!u.IsOdd()) {
        u.Shr1InPlace();
        halve_mod(&x1);
      }
      while (!w.IsOdd()) {
        w.Shr1InPlace();
        halve_mod(&x2);
      }
      if (u >= w) {
        u.SubInPlace(w);
        if (x1.SubInPlace(x2)) x1.AddInPlace(P.modulus);
      } else {
        w.SubInPlace(u);
        if (x2.SubInPlace(x1)) x2.AddInPlace(P.modulus);
      }
    }
    return (u == U256(1)) ? x1 : x2;
  }

  U256 mont_{};
};

// ---------------------------------------------------------------------------
// BN254 (alt_bn128) parameters. The curve seed is
//   u = 4965661367192848881,
// giving p = 36u^4 + 36u^3 + 24u^2 + 6u + 1 and r = 36u^4 + 36u^3 + 18u^2 +
// 6u + 1 (both verified against the seed polynomial in tests).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kBnU = 4965661367192848881ULL;

inline constexpr U256 kBnP = U256FromHex(
    "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47");
inline constexpr U256 kBnR = U256FromHex(
    "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001");

inline constexpr FieldParams kFpParams = ComputeFieldParams(kBnP);
inline constexpr FieldParams kFrParams = ComputeFieldParams(kBnR);

/// BN254 base field GF(p).
using Fp = PrimeField<kFpParams>;
/// BN254 scalar field GF(r) — exponents of group elements; the accumulator's
/// polynomial arithmetic lives here.
using Fr = PrimeField<kFrParams>;

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_FIELD_H_

// Fixed-width 256-bit unsigned integers (4 x 64-bit little-endian limbs).
//
// This is the arithmetic substrate for the BN254 prime fields. Everything
// needed at namespace scope for compile-time field-parameter derivation is
// constexpr; the heavier runtime-only helpers (division by a word, decimal
// parsing) live in u256.cc.

#ifndef VCHAIN_CRYPTO_U256_H_
#define VCHAIN_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace vchain::crypto {

using uint128_t = unsigned __int128;

/// 256-bit unsigned integer; limb[0] is least significant.
struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  constexpr bool IsZero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }

  constexpr bool operator==(const U256& o) const { return limb == o.limb; }

  /// -1 / 0 / +1 three-way comparison.
  constexpr int Cmp(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] < o.limb[i]) return -1;
      if (limb[i] > o.limb[i]) return 1;
    }
    return 0;
  }
  constexpr bool operator<(const U256& o) const { return Cmp(o) < 0; }
  constexpr bool operator>=(const U256& o) const { return Cmp(o) >= 0; }

  /// this += o; returns the carry-out bit.
  constexpr uint64_t AddInPlace(const U256& o) {
    uint128_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      uint128_t s = static_cast<uint128_t>(limb[i]) + o.limb[i] + carry;
      limb[i] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    return static_cast<uint64_t>(carry);
  }

  /// this -= o; returns the borrow-out bit.
  constexpr uint64_t SubInPlace(const U256& o) {
    uint128_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
      uint128_t d = static_cast<uint128_t>(limb[i]) -
                    static_cast<uint128_t>(o.limb[i]) - borrow;
      limb[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) & 1;
    }
    return static_cast<uint64_t>(borrow);
  }

  /// Logical left shift by one bit; returns the bit shifted out.
  constexpr uint64_t Shl1InPlace() {
    uint64_t out = limb[3] >> 63;
    limb[3] = (limb[3] << 1) | (limb[2] >> 63);
    limb[2] = (limb[2] << 1) | (limb[1] >> 63);
    limb[1] = (limb[1] << 1) | (limb[0] >> 63);
    limb[0] <<= 1;
    return out;
  }

  /// Logical right shift by one bit.
  constexpr void Shr1InPlace() {
    limb[0] = (limb[0] >> 1) | (limb[1] << 63);
    limb[1] = (limb[1] >> 1) | (limb[2] << 63);
    limb[2] = (limb[2] >> 1) | (limb[3] << 63);
    limb[3] >>= 1;
  }

  constexpr bool IsOdd() const { return limb[0] & 1; }

  constexpr bool Bit(int i) const {
    return (limb[i >> 6] >> (i & 63)) & 1;
  }

  /// Index of the highest set bit, or -1 if zero.
  constexpr int BitLength() const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != 0) {
        int hi = 63;
        while (!((limb[i] >> hi) & 1)) --hi;
        return i * 64 + hi + 1;
      }
    }
    return 0;
  }
};

/// Parse a hex literal (no 0x prefix, <= 64 nibbles). Usable in constexpr
/// initialization of the field moduli; traps (via throw in constexpr context)
/// on bad characters.
constexpr U256 U256FromHex(std::string_view hex) {
  U256 out;
  for (char c : hex) {
    uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      throw "invalid hex digit in U256 literal";
    }
    // out = out*16 + nibble
    for (int s = 0; s < 4; ++s) out.Shl1InPlace();
    out.limb[0] |= nibble;
  }
  return out;
}

/// q, r such that value = q * d + r (d != 0). Runtime helper for deriving
/// pairing exponents such as (p-1)/6.
void DivByWord(const U256& value, uint64_t d, U256* quotient, uint64_t* rem);

/// Parse a decimal string (runtime; used in tests to cross-check constants).
bool U256FromDecimal(const std::string& dec, U256* out);
std::string U256ToDecimal(const U256& v);

std::string U256ToHex(const U256& v);

/// Big-endian 32-byte encoding (canonical wire form for field elements).
void U256ToBytesBE(const U256& v, uint8_t out[32]);
U256 U256FromBytesBE(const uint8_t in[32]);

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_U256_H_

// Quadratic extension Fp2 = Fp[i] / (i^2 + 1).
//
// BN254 tower: Fp2 as here, Fp6 = Fp2[v]/(v^3 - xi) with xi = 9 + i, and
// Fp12 = Fp6[w]/(w^2 - v). The non-residue xi is fixed by the curve's twist.

#ifndef VCHAIN_CRYPTO_FP2_H_
#define VCHAIN_CRYPTO_FP2_H_

#include <string>

#include "crypto/field.h"

namespace vchain::crypto {

/// a + b*i with i^2 = -1.
struct Fp2 {
  Fp a;  // real coefficient
  Fp b;  // imaginary coefficient

  constexpr Fp2() = default;
  Fp2(const Fp& a_in, const Fp& b_in) : a(a_in), b(b_in) {}

  static Fp2 Zero() { return Fp2(); }
  static Fp2 One() { return Fp2(Fp::One(), Fp::Zero()); }
  static Fp2 FromFp(const Fp& x) { return Fp2(x, Fp::Zero()); }
  static Fp2 FromUint64(uint64_t x, uint64_t y) {
    return Fp2(Fp::FromUint64(x), Fp::FromUint64(y));
  }

  bool IsZero() const { return a.IsZero() && b.IsZero(); }
  bool operator==(const Fp2& o) const { return a == o.a && b == o.b; }
  bool operator!=(const Fp2& o) const { return !(*this == o); }

  Fp2 operator+(const Fp2& o) const { return Fp2(a + o.a, b + o.b); }
  Fp2 operator-(const Fp2& o) const { return Fp2(a - o.a, b - o.b); }

  Fp2 operator*(const Fp2& o) const {
    // Karatsuba: (a + bi)(c + di) = (ac - bd) + ((a+b)(c+d) - ac - bd) i.
    Fp ac = a * o.a;
    Fp bd = b * o.b;
    Fp cross = (a + b) * (o.a + o.b);
    return Fp2(ac - bd, cross - ac - bd);
  }

  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  Fp2 Neg() const { return Fp2(a.Neg(), b.Neg()); }
  Fp2 Double() const { return Fp2(a.Double(), b.Double()); }

  Fp2 Square() const {
    // (a + bi)^2 = (a+b)(a-b) + 2ab i.
    Fp t = (a + b) * (a - b);
    return Fp2(t, (a * b).Double());
  }

  Fp2 MulFp(const Fp& s) const { return Fp2(a * s, b * s); }

  /// Complex conjugate; also the p-power Frobenius on Fp2.
  Fp2 Conjugate() const { return Fp2(a, b.Neg()); }

  Fp2 Inverse() const {
    // 1/(a+bi) = (a-bi)/(a^2+b^2).
    Fp norm_inv = (a.Square() + b.Square()).Inverse();
    return Fp2(a * norm_inv, b.Neg() * norm_inv);
  }

  /// Multiply by the sextic non-residue xi = 9 + i.
  Fp2 MulByXi() const {
    // (a + bi)(9 + i) = (9a - b) + (a + 9b) i.
    Fp a9 = Times9(a);
    Fp b9 = Times9(b);
    return Fp2(a9 - b, a + b9);
  }

  Fp2 Pow(const U256& e) const {
    Fp2 acc = One();
    for (int i = e.BitLength() - 1; i >= 0; --i) {
      acc = acc.Square();
      if (e.Bit(i)) acc = acc * *this;
    }
    return acc;
  }

  /// Square root in Fp2 for p % 4 == 3 (Adj & Rodriguez-Henriquez).
  /// Returns false for quadratic non-residues.
  bool Sqrt(Fp2* out) const {
    if (IsZero()) {
      *out = Zero();
      return true;
    }
    // exponent (p-3)/4 = ((p+1)/4) - 1
    U256 e = kFpParams.modulus_plus_one_div_4;
    e.SubInPlace(U256(1));
    Fp2 a1 = Pow(e);
    Fp2 alpha = a1.Square() * *this;  // = this^((p-1)/2)
    Fp2 x0 = a1 * *this;              // = this^((p+1)/4)
    Fp2 minus_one = One().Neg();
    Fp2 cand;
    if (alpha == minus_one) {
      // Multiply by i (a square root of -1 in this tower).
      cand = Fp2(x0.b.Neg(), x0.a);
    } else {
      Fp2 b = (One() + alpha).Pow(ExpPMinus1Div2());
      cand = b * x0;
    }
    if (cand.Square() == *this) {
      *out = cand;
      return true;
    }
    return false;
  }

  std::string ToString() const {
    return "(" + a.ToString() + ", " + b.ToString() + ")";
  }

 private:
  static Fp Times9(const Fp& x) {
    Fp x2 = x.Double();
    Fp x4 = x2.Double();
    Fp x8 = x4.Double();
    return x8 + x;
  }

  static U256 ExpPMinus1Div2() {
    U256 e = kFpParams.modulus;
    e.SubInPlace(U256(1));
    e.Shr1InPlace();
    return e;
  }
};

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_FP2_H_

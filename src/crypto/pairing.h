// Optimal ate pairing on BN254: e : G1 x G2 -> GT.
//
// Miller loop over f_{6u+2,Q}(P) in affine coordinates plus the two
// Frobenius-twisted correction additions, followed by the standard final
// exponentiation (easy part, then the Devegili-Scott-Dominguez hard part
// driven by three u-power exponentiations). The 6u+2 loop runs over a NAF
// computed from the curve seed at startup; no hardcoded digit table.
//
// A multi-pairing entry point shares the final exponentiation across several
// Miller loops; `PairingProductIsOne` is the primitive behind every
// VerifyDisjoint in the accumulator layer.

#ifndef VCHAIN_CRYPTO_PAIRING_H_
#define VCHAIN_CRYPTO_PAIRING_H_

#include <utility>
#include <vector>

#include "crypto/bn254.h"

namespace vchain::crypto {

/// Full pairing e(P, Q). Returns GT::One() if either input is infinity.
GT Pairing(const G1Affine& p, const G2Affine& q);

/// Miller loop only (no final exponentiation); multiply several of these and
/// call FinalExponentiation once for a product of pairings.
GT MillerLoop(const G1Affine& p, const G2Affine& q);

GT FinalExponentiation(const GT& f);

/// prod_i e(ps[i], qs[i]).
GT PairingProduct(const std::vector<std::pair<G1Affine, G2Affine>>& pairs);

/// True iff prod_i e(ps[i], qs[i]) == 1. One shared final exponentiation.
bool PairingProductIsOne(
    const std::vector<std::pair<G1Affine, G2Affine>>& pairs);

/// Cached e(g1, g2) for verifier equations of the form "... == e(g1, g2)".
const GT& PairingOfGenerators();

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_PAIRING_H_

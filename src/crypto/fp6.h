// Cubic extension Fp6 = Fp2[v] / (v^3 - xi), xi = 9 + i.

#ifndef VCHAIN_CRYPTO_FP6_H_
#define VCHAIN_CRYPTO_FP6_H_

#include "crypto/fp2.h"

namespace vchain::crypto {

/// c0 + c1*v + c2*v^2 with v^3 = xi.
struct Fp6 {
  Fp2 c0, c1, c2;

  Fp6() = default;
  Fp6(const Fp2& x0, const Fp2& x1, const Fp2& x2) : c0(x0), c1(x1), c2(x2) {}

  static Fp6 Zero() { return Fp6(); }
  static Fp6 One() { return Fp6(Fp2::One(), Fp2::Zero(), Fp2::Zero()); }

  bool IsZero() const { return c0.IsZero() && c1.IsZero() && c2.IsZero(); }
  bool operator==(const Fp6& o) const {
    return c0 == o.c0 && c1 == o.c1 && c2 == o.c2;
  }
  bool operator!=(const Fp6& o) const { return !(*this == o); }

  Fp6 operator+(const Fp6& o) const {
    return Fp6(c0 + o.c0, c1 + o.c1, c2 + o.c2);
  }
  Fp6 operator-(const Fp6& o) const {
    return Fp6(c0 - o.c0, c1 - o.c1, c2 - o.c2);
  }

  Fp6 Neg() const { return Fp6(c0.Neg(), c1.Neg(), c2.Neg()); }
  Fp6 Double() const { return Fp6(c0.Double(), c1.Double(), c2.Double()); }

  Fp6 operator*(const Fp6& o) const {
    // Toom-style interpolation (Devegili et al.): 6 Fp2 mults.
    Fp2 a = c0 * o.c0;
    Fp2 b = c1 * o.c1;
    Fp2 c = c2 * o.c2;
    Fp2 t0 = ((c1 + c2) * (o.c1 + o.c2) - b - c).MulByXi() + a;
    Fp2 t1 = (c0 + c1) * (o.c0 + o.c1) - a - b + c.MulByXi();
    Fp2 t2 = (c0 + c2) * (o.c0 + o.c2) - a - c + b;
    return Fp6(t0, t1, t2);
  }

  Fp6& operator+=(const Fp6& o) { return *this = *this + o; }
  Fp6& operator-=(const Fp6& o) { return *this = *this - o; }
  Fp6& operator*=(const Fp6& o) { return *this = *this * o; }

  Fp6 Square() const { return *this * *this; }

  Fp6 MulFp2(const Fp2& s) const {
    return Fp6(c0 * s, c1 * s, c2 * s);
  }

  /// Multiply by v: (c0 + c1 v + c2 v^2) * v = c2*xi + c0 v + c1 v^2.
  Fp6 MulByV() const { return Fp6(c2.MulByXi(), c0, c1); }

  Fp6 Inverse() const {
    // Standard cubic-extension inversion via the adjugate.
    Fp2 a = c0.Square() - (c1 * c2).MulByXi();
    Fp2 b = c2.Square().MulByXi() - c0 * c1;
    Fp2 c = c1.Square() - c0 * c2;
    Fp2 det = c0 * a + (c2 * b + c1 * c).MulByXi();
    Fp2 det_inv = det.Inverse();
    return Fp6(a * det_inv, b * det_inv, c * det_inv);
  }
};

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_FP6_H_

// Quadratic extension Fp12 = Fp6[w] / (w^2 - v); the pairing target group GT
// is the order-r subgroup of Fp12*.
//
// Frobenius maps use the w-power basis {w^0..w^5} over Fp2 (w^6 = xi), where
// pi_p acts coefficient-wise by conjugation times gamma_i = xi^{i(p-1)/6}.
// The gamma constants are derived at first use from xi — nothing is
// hand-transcribed.

#ifndef VCHAIN_CRYPTO_FP12_H_
#define VCHAIN_CRYPTO_FP12_H_

#include <array>

#include "crypto/fp6.h"

namespace vchain::crypto {

/// c0 + c1*w with w^2 = v.
struct Fp12 {
  Fp6 c0, c1;

  Fp12() = default;
  Fp12(const Fp6& x0, const Fp6& x1) : c0(x0), c1(x1) {}

  static Fp12 Zero() { return Fp12(); }
  static Fp12 One() { return Fp12(Fp6::One(), Fp6::Zero()); }

  bool IsZero() const { return c0.IsZero() && c1.IsZero(); }
  bool IsOne() const { return *this == One(); }
  bool operator==(const Fp12& o) const { return c0 == o.c0 && c1 == o.c1; }
  bool operator!=(const Fp12& o) const { return !(*this == o); }

  Fp12 operator+(const Fp12& o) const { return Fp12(c0 + o.c0, c1 + o.c1); }
  Fp12 operator-(const Fp12& o) const { return Fp12(c0 - o.c0, c1 - o.c1); }

  Fp12 operator*(const Fp12& o) const {
    // Karatsuba over Fp6: (a0 + a1 w)(b0 + b1 w)
    //   = a0 b0 + a1 b1 v + ((a0+a1)(b0+b1) - a0 b0 - a1 b1) w.
    Fp6 t0 = c0 * o.c0;
    Fp6 t1 = c1 * o.c1;
    Fp6 cross = (c0 + c1) * (o.c0 + o.c1) - t0 - t1;
    return Fp12(t0 + t1.MulByV(), cross);
  }

  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  Fp12 Square() const {
    // Complex squaring: (a0 + a1 w)^2 = (a0+a1)(a0 + a1 v) - m - m v + 2 m w,
    // with m = a0 a1.
    Fp6 m = c0 * c1;
    Fp6 t = (c0 + c1) * (c0 + c1.MulByV());
    return Fp12(t - m - m.MulByV(), m.Double());
  }

  /// Multiply by the sparse line element L = (l00, 0, 0) + (l10, l11, 0) w
  /// produced by Miller-loop line evaluation (w-basis coefficients at
  /// w^0, w^1, w^3). ~40% cheaper than a generic multiplication.
  Fp12 MulBySparseLine(const Fp2& l00, const Fp2& l10, const Fp2& l11) const {
    Fp6 b0(l00, Fp2::Zero(), Fp2::Zero());
    Fp6 b1(l10, l11, Fp2::Zero());
    // Karatsuba with sparse operands.
    Fp6 t0 = c0.MulFp2(l00);
    Fp6 t1 = SparseMul1(c1, l10, l11);
    Fp6 sum_b = b0 + b1;  // (l00 + l10, l11, 0)
    Fp6 cross = SparseMul2(c0 + c1, sum_b.c0, sum_b.c1) - t0 - t1;
    return Fp12(t0 + t1.MulByV(), cross);
  }

  Fp12 Conjugate() const { return Fp12(c0, c1.Neg()); }

  Fp12 Inverse() const {
    // 1/(a0 + a1 w) = (a0 - a1 w) / (a0^2 - a1^2 v).
    Fp6 det = c0.Square() - c1.Square().MulByV();
    Fp6 det_inv = det.Inverse();
    return Fp12(c0 * det_inv, (c1 * det_inv).Neg());
  }

  Fp12 Pow(const U256& e) const {
    Fp12 acc = One();
    for (int i = e.BitLength() - 1; i >= 0; --i) {
      acc = acc.Square();
      if (e.Bit(i)) acc = acc * *this;
    }
    return acc;
  }

  /// p-power Frobenius endomorphism.
  Fp12 Frobenius() const {
    const auto& g = FrobeniusGammas();
    std::array<Fp2, 6> w = ToWBasis();
    std::array<Fp2, 6> out;
    for (int i = 0; i < 6; ++i) {
      out[i] = w[i].Conjugate() * g[i];
    }
    return FromWBasis(out);
  }

  /// p^2-power Frobenius (two applications of Frobenius()).
  Fp12 FrobeniusP2() const { return Frobenius().Frobenius(); }

 private:
  // w-basis order: {w^0, w^1, w^2, w^3, w^4, w^5} maps to Fp6/Fp2 slots
  // (c0.c0, c1.c0, c0.c1, c1.c1, c0.c2, c1.c2) since v = w^2.
  std::array<Fp2, 6> ToWBasis() const {
    return {c0.c0, c1.c0, c0.c1, c1.c1, c0.c2, c1.c2};
  }
  static Fp12 FromWBasis(const std::array<Fp2, 6>& w) {
    return Fp12(Fp6(w[0], w[2], w[4]), Fp6(w[1], w[3], w[5]));
  }

  /// gamma_i = xi^{i(p-1)/6}, derived once.
  static const std::array<Fp2, 6>& FrobeniusGammas() {
    static const std::array<Fp2, 6> kGammas = [] {
      U256 e;
      uint64_t rem = 0;
      U256 pm1 = kFpParams.modulus;
      pm1.SubInPlace(U256(1));
      DivByWord(pm1, 6, &e, &rem);
      Fp2 xi = Fp2::FromUint64(9, 1);
      Fp2 g1 = xi.Pow(e);
      std::array<Fp2, 6> out;
      out[0] = Fp2::One();
      for (int i = 1; i < 6; ++i) out[i] = out[i - 1] * g1;
      return out;
    }();
    return kGammas;
  }

  /// (a0 + a1 v + a2 v^2) * (b0 + b1 v) with sparse second operand.
  static Fp6 SparseMul1(const Fp6& a, const Fp2& b0, const Fp2& b1) {
    return Fp6(a.c0 * b0 + (a.c2 * b1).MulByXi(), a.c0 * b1 + a.c1 * b0,
               a.c1 * b1 + a.c2 * b0);
  }
  static Fp6 SparseMul2(const Fp6& a, const Fp2& b0, const Fp2& b1) {
    return SparseMul1(a, b0, b1);
  }
};

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_FP12_H_

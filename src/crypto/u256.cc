#include "crypto/u256.h"

#include <algorithm>

namespace vchain::crypto {

void DivByWord(const U256& value, uint64_t d, U256* quotient, uint64_t* rem) {
  U256 q;
  uint128_t r = 0;
  for (int i = 3; i >= 0; --i) {
    uint128_t cur = (r << 64) | value.limb[i];
    q.limb[i] = static_cast<uint64_t>(cur / d);
    r = cur % d;
  }
  *quotient = q;
  *rem = static_cast<uint64_t>(r);
}

bool U256FromDecimal(const std::string& dec, U256* out) {
  if (dec.empty()) return false;
  U256 acc;
  for (char c : dec) {
    if (c < '0' || c > '9') return false;
    // acc = acc*10 + digit, with overflow check via carry-out.
    U256 x8 = acc;
    U256 x2 = acc;
    uint64_t carry = 0;
    carry |= x2.Shl1InPlace();
    carry |= x8.Shl1InPlace();
    carry |= x8.Shl1InPlace();
    carry |= x8.Shl1InPlace();
    carry |= x8.AddInPlace(x2);
    carry |= x8.AddInPlace(U256(static_cast<uint64_t>(c - '0')));
    if (carry) return false;
    acc = x8;
  }
  *out = acc;
  return true;
}

std::string U256ToDecimal(const U256& v) {
  if (v.IsZero()) return "0";
  U256 cur = v;
  std::string out;
  while (!cur.IsZero()) {
    uint64_t digit = 0;
    DivByWord(cur, 10, &cur, &digit);
    out.push_back(static_cast<char>('0' + digit));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string U256ToHex(const U256& v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (int i = 3; i >= 0; --i) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      uint64_t nib = (v.limb[i] >> shift) & 0xF;
      if (!started && nib == 0) continue;
      started = true;
      out.push_back(kDigits[nib]);
    }
  }
  if (!started) out = "0";
  return out;
}

void U256ToBytesBE(const U256& v, uint8_t out[32]) {
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = v.limb[3 - i];
    for (int j = 0; j < 8; ++j) {
      out[i * 8 + j] = static_cast<uint8_t>(limb >> (56 - 8 * j));
    }
  }
}

U256 U256FromBytesBE(const uint8_t in[32]) {
  U256 v;
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int j = 0; j < 8; ++j) {
      limb = (limb << 8) | in[i * 8 + j];
    }
    v.limb[3 - i] = limb;
  }
  return v;
}

}  // namespace vchain::crypto

// BN254 (alt_bn128) pairing groups.
//
//   G1: E /Fp  : y^2 = x^3 + 3,          generator (1, 2), prime order r.
//   G2: E'/Fp2 : y^2 = x^3 + 3/(9 + i),  the sextic D-twist; the standard
//       generator below is the one fixed by the EIP-197 / alt_bn128
//       specification (validated on-curve and of order r in the tests).
//   GT: order-r subgroup of Fp12*.
//
// Serialization: G1 compresses to 32 bytes (two spare bits of the 254-bit
// x-coordinate carry the infinity flag and the y parity); G2 compresses to
// 64 bytes the same way, using Fp2 square roots for decompression.

#ifndef VCHAIN_CRYPTO_BN254_H_
#define VCHAIN_CRYPTO_BN254_H_

#include "common/serde.h"
#include "common/status.h"
#include "crypto/curve.h"
#include "crypto/fp12.h"

namespace vchain::crypto {

using G1Affine = AffinePoint<Fp>;
using G1 = JacobianPoint<Fp>;
using G2Affine = AffinePoint<Fp2>;
using G2 = JacobianPoint<Fp2>;
using GT = Fp12;

/// Curve coefficient b = 3 for G1.
const Fp& G1B();
/// Twist coefficient b' = 3 / (9 + i) for G2.
const Fp2& G2B();

/// Fixed generators.
const G1Affine& G1Generator();
const G2Affine& G2Generator();

/// g1 * k / g2 * k convenience (from the generators).
G1 G1Mul(const Fr& k);
G2 G2Mul(const Fr& k);

/// Convert an Fr scalar to its canonical integer for scalar multiplication.
inline U256 ScalarOf(const Fr& k) { return k.ToCanonical(); }

// --- Serialization -----------------------------------------------------------

inline constexpr size_t kG1SerializedSize = 32;
inline constexpr size_t kG2SerializedSize = 64;

void SerializeG1(const G1Affine& p, ByteWriter* w);
Status DeserializeG1(ByteReader* r, G1Affine* out);
void SerializeG2(const G2Affine& p, ByteWriter* w);
Status DeserializeG2(ByteReader* r, G2Affine* out);

/// Canonical byte form (for hashing group elements into block headers).
Bytes G1ToBytes(const G1Affine& p);
Bytes G2ToBytes(const G2Affine& p);

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_BN254_H_

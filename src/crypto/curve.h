// Short-Weierstrass curve arithmetic (a = 0) shared by BN254 G1 (over Fp)
// and G2 (over Fp2, on the sextic twist y^2 = x^3 + 3/xi).
//
// Points are held in Jacobian coordinates (X, Y, Z) with the point at
// infinity encoded as Z = 0; affine views are produced on demand. Formulas
// are the standard a=0 Jacobian doubling/addition (EFD dbl-2009-l /
// add-2007-bl), implemented here directly over the templated field.

#ifndef VCHAIN_CRYPTO_CURVE_H_
#define VCHAIN_CRYPTO_CURVE_H_

#include <cassert>
#include <vector>

#include "crypto/field.h"

namespace vchain::crypto {

template <typename F>
struct AffinePoint {
  F x, y;
  bool infinity = true;

  AffinePoint() = default;
  AffinePoint(const F& x_in, const F& y_in) : x(x_in), y(y_in), infinity(false) {}

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }

  AffinePoint Neg() const {
    if (infinity) return *this;
    return AffinePoint(x, y.Neg());
  }
};

template <typename F>
struct JacobianPoint {
  F x, y, z;  // affine (x/z^2, y/z^3); infinity iff z == 0

  JacobianPoint() : x(F::Zero()), y(F::One()), z(F::Zero()) {}

  static JacobianPoint Infinity() { return JacobianPoint(); }

  static JacobianPoint FromAffine(const AffinePoint<F>& p) {
    JacobianPoint out;
    if (p.infinity) return out;
    out.x = p.x;
    out.y = p.y;
    out.z = F::One();
    return out;
  }

  bool IsInfinity() const { return z.IsZero(); }

  AffinePoint<F> ToAffine() const {
    if (IsInfinity()) return AffinePoint<F>();
    F zi = z.Inverse();
    F zi2 = zi.Square();
    return AffinePoint<F>(x * zi2, y * zi2 * zi);
  }

  JacobianPoint Neg() const {
    JacobianPoint out = *this;
    out.y = out.y.Neg();
    return out;
  }

  /// Point doubling (a = 0).
  JacobianPoint Double() const {
    if (IsInfinity()) return *this;
    F a = x.Square();
    F b = y.Square();
    F c = b.Square();
    F d = ((x + b).Square() - a - c).Double();
    F e = a.Double() + a;
    F f = e.Square();
    JacobianPoint out;
    out.x = f - d.Double();
    out.y = e * (d - out.x) - c.Double().Double().Double();
    out.z = (y * z).Double();
    return out;
  }

  JacobianPoint Add(const JacobianPoint& o) const {
    if (IsInfinity()) return o;
    if (o.IsInfinity()) return *this;
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    F u1 = x * z2z2;
    F u2 = o.x * z1z1;
    F s1 = y * o.z * z2z2;
    F s2 = o.y * z * z1z1;
    if (u1 == u2) {
      if (s1 == s2) return Double();
      return Infinity();
    }
    F h = u2 - u1;
    F i = h.Double().Square();
    F j = h * i;
    F r = (s2 - s1).Double();
    F v = u1 * i;
    JacobianPoint out;
    out.x = r.Square() - j - v.Double();
    out.y = r * (v - out.x) - (s1 * j).Double();
    out.z = ((z + o.z).Square() - z1z1 - z2z2) * h;
    return out;
  }

  JacobianPoint AddAffine(const AffinePoint<F>& o) const {
    return Add(FromAffine(o));  // mixed addition; clarity over micro-speed
  }

  /// Scalar multiplication, binary double-and-add over the canonical scalar.
  JacobianPoint ScalarMul(const U256& k) const {
    JacobianPoint acc = Infinity();
    for (int i = k.BitLength() - 1; i >= 0; --i) {
      acc = acc.Double();
      if (k.Bit(i)) acc = acc.Add(*this);
    }
    return acc;
  }

  bool Equal(const JacobianPoint& o) const {
    // Compare in the projective sense: x1 z2^2 == x2 z1^2, y1 z2^3 == y2 z1^3.
    if (IsInfinity() || o.IsInfinity()) return IsInfinity() == o.IsInfinity();
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    return x * z2z2 == o.x * z1z1 && y * o.z * z2z2 == o.y * z * z1z1;
  }
};

/// True iff y^2 == x^3 + b.
template <typename F>
bool OnCurve(const AffinePoint<F>& p, const F& b) {
  if (p.infinity) return true;
  return p.y.Square() == p.x.Square() * p.x + b;
}

/// Multi-scalar multiplication (Pippenger buckets). Computes
/// sum_i scalars[i] * bases[i]; used heavily by the accumulator layer when
/// evaluating committed polynomials against the public key.
template <typename F>
JacobianPoint<F> MultiScalarMul(const std::vector<AffinePoint<F>>& bases,
                                const std::vector<U256>& scalars) {
  assert(bases.size() == scalars.size());
  using Point = JacobianPoint<F>;
  size_t n = bases.size();
  if (n == 0) return Point::Infinity();
  if (n == 1) return Point::FromAffine(bases[0]).ScalarMul(scalars[0]);

  // Window size heuristic.
  int c = 3;
  size_t t = n;
  while (t >>= 1) ++c;
  if (c > 16) c = 16;

  int max_bits = 0;
  for (const U256& s : scalars) {
    int b = s.BitLength();
    if (b > max_bits) max_bits = b;
  }
  if (max_bits == 0) return Point::Infinity();
  int num_windows = (max_bits + c - 1) / c;

  Point total = Point::Infinity();
  for (int w = num_windows - 1; w >= 0; --w) {
    for (int k = 0; k < c; ++k) total = total.Double();
    std::vector<Point> buckets(static_cast<size_t>(1) << c,
                               Point::Infinity());
    for (size_t i = 0; i < n; ++i) {
      uint64_t digit = 0;
      for (int k = c - 1; k >= 0; --k) {
        int bit = w * c + k;
        digit <<= 1;
        if (bit < 256 && scalars[i].Bit(bit)) digit |= 1;
      }
      if (digit != 0) {
        buckets[digit] = buckets[digit].AddAffine(bases[i]);
      }
    }
    // Sum j * buckets[j] via running suffix sums.
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t j = buckets.size() - 1; j >= 1; --j) {
      running = running.Add(buckets[j]);
      window_sum = window_sum.Add(running);
    }
    total = total.Add(window_sum);
  }
  return total;
}

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_CURVE_H_

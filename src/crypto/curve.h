// Short-Weierstrass curve arithmetic (a = 0) shared by BN254 G1 (over Fp)
// and G2 (over Fp2, on the sextic twist y^2 = x^3 + 3/xi).
//
// Points are held in Jacobian coordinates (X, Y, Z) with the point at
// infinity encoded as Z = 0; affine views are produced on demand. Formulas
// are the standard a=0 Jacobian doubling/addition (EFD dbl-2009-l /
// add-2007-bl), implemented here directly over the templated field.

#ifndef VCHAIN_CRYPTO_CURVE_H_
#define VCHAIN_CRYPTO_CURVE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/field.h"

namespace vchain::crypto {

template <typename F>
struct AffinePoint {
  F x, y;
  bool infinity = true;

  AffinePoint() = default;
  AffinePoint(const F& x_in, const F& y_in) : x(x_in), y(y_in), infinity(false) {}

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }

  AffinePoint Neg() const {
    if (infinity) return *this;
    return AffinePoint(x, y.Neg());
  }
};

template <typename F>
struct JacobianPoint {
  F x, y, z;  // affine (x/z^2, y/z^3); infinity iff z == 0

  JacobianPoint() : x(F::Zero()), y(F::One()), z(F::Zero()) {}

  static JacobianPoint Infinity() { return JacobianPoint(); }

  static JacobianPoint FromAffine(const AffinePoint<F>& p) {
    JacobianPoint out;
    if (p.infinity) return out;
    out.x = p.x;
    out.y = p.y;
    out.z = F::One();
    return out;
  }

  bool IsInfinity() const { return z.IsZero(); }

  AffinePoint<F> ToAffine() const {
    if (IsInfinity()) return AffinePoint<F>();
    F zi = z.Inverse();
    F zi2 = zi.Square();
    return AffinePoint<F>(x * zi2, y * zi2 * zi);
  }

  JacobianPoint Neg() const {
    JacobianPoint out = *this;
    out.y = out.y.Neg();
    return out;
  }

  /// Point doubling (a = 0).
  JacobianPoint Double() const {
    if (IsInfinity()) return *this;
    F a = x.Square();
    F b = y.Square();
    F c = b.Square();
    F d = ((x + b).Square() - a - c).Double();
    F e = a.Double() + a;
    F f = e.Square();
    JacobianPoint out;
    out.x = f - d.Double();
    out.y = e * (d - out.x) - c.Double().Double().Double();
    out.z = (y * z).Double();
    return out;
  }

  JacobianPoint Add(const JacobianPoint& o) const {
    if (IsInfinity()) return o;
    if (o.IsInfinity()) return *this;
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    F u1 = x * z2z2;
    F u2 = o.x * z1z1;
    F s1 = y * o.z * z2z2;
    F s2 = o.y * z * z1z1;
    if (u1 == u2) {
      if (s1 == s2) return Double();
      return Infinity();
    }
    F h = u2 - u1;
    F i = h.Double().Square();
    F j = h * i;
    F r = (s2 - s1).Double();
    F v = u1 * i;
    JacobianPoint out;
    out.x = r.Square() - j - v.Double();
    out.y = r * (v - out.x) - (s1 * j).Double();
    out.z = ((z + o.z).Square() - z1z1 - z2z2) * h;
    return out;
  }

  /// Mixed addition (madd-2007-bl, z2 = 1): 7M + 4S vs the 11M + 5S of the
  /// general add. The bucket suffix sums of MultiScalarMul live here.
  JacobianPoint AddAffine(const AffinePoint<F>& o) const {
    if (o.infinity) return *this;
    if (IsInfinity()) return FromAffine(o);
    F z1z1 = z.Square();
    F u2 = o.x * z1z1;
    F s2 = o.y * z * z1z1;
    if (u2 == x) {
      if (s2 == y) return Double();
      return Infinity();
    }
    F h = u2 - x;
    F hh = h.Square();
    F i = hh.Double().Double();
    F j = h * i;
    F r = (s2 - y).Double();
    F v = x * i;
    JacobianPoint out;
    out.x = r.Square() - j - v.Double();
    out.y = r * (v - out.x) - (y * j).Double();
    out.z = (z + h).Square() - z1z1 - hh;
    return out;
  }

  /// Scalar multiplication, binary double-and-add over the canonical scalar.
  JacobianPoint ScalarMul(const U256& k) const {
    JacobianPoint acc = Infinity();
    for (int i = k.BitLength() - 1; i >= 0; --i) {
      acc = acc.Double();
      if (k.Bit(i)) acc = acc.Add(*this);
    }
    return acc;
  }

  bool Equal(const JacobianPoint& o) const {
    // Compare in the projective sense: x1 z2^2 == x2 z1^2, y1 z2^3 == y2 z1^3.
    if (IsInfinity() || o.IsInfinity()) return IsInfinity() == o.IsInfinity();
    F z1z1 = z.Square();
    F z2z2 = o.z.Square();
    return x * z2z2 == o.x * z1z1 && y * o.z * z2z2 == o.y * z * z1z1;
  }
};

/// True iff y^2 == x^3 + b.
template <typename F>
bool OnCurve(const AffinePoint<F>& p, const F& b) {
  if (p.infinity) return true;
  return p.y.Square() == p.x.Square() * p.x + b;
}

/// Invert every element of xs[0..n) — all non-zero — at the cost of a single
/// field inversion plus 3n multiplications (Montgomery's simultaneous
/// inversion). `scratch` is caller-provided so hot loops can reuse it.
template <typename F>
void BatchInvert(F* xs, size_t n, std::vector<F>* scratch) {
  if (n == 0) return;
  scratch->resize(n);
  F acc = F::One();
  for (size_t i = 0; i < n; ++i) {
    (*scratch)[i] = acc;
    acc = acc * xs[i];
  }
  F inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    F tmp = xs[i];
    xs[i] = inv * (*scratch)[i];
    inv = inv * tmp;
  }
}

namespace msm_internal {

/// Decompose s into signed base-2^c digits: s == sum_w out[w*stride] * 2^(cw)
/// with every digit in [-2^(c-1), 2^(c-1)]. Limb-windowed extraction — no
/// per-bit probing. `num_windows * c` must exceed s.BitLength() so the final
/// borrow carry has somewhere to land.
inline void SignedDigits(const U256& s, int c, int num_windows, size_t stride,
                         int32_t* out) {
  const uint64_t mask = (uint64_t{1} << c) - 1;
  const uint64_t half = uint64_t{1} << (c - 1);
  uint64_t carry = 0;
  for (int w = 0; w < num_windows; ++w) {
    int bit = w * c;
    uint64_t raw = 0;
    if (bit < 256) {
      int li = bit >> 6;
      int off = bit & 63;
      raw = s.limb[static_cast<size_t>(li)] >> off;
      // c <= 16 so a straddling window implies off >= 49 > 0 — the shift by
      // (64 - off) below cannot be a shift by 64.
      if (off + c > 64 && li < 3) {
        raw |= s.limb[static_cast<size_t>(li) + 1] << (64 - off);
      }
      raw &= mask;
    }
    raw += carry;
    if (raw > half) {
      out[static_cast<size_t>(w) * stride] =
          static_cast<int32_t>(raw) - (int32_t{1} << c);
      carry = 1;
    } else {
      out[static_cast<size_t>(w) * stride] = static_cast<int32_t>(raw);
      carry = 0;
    }
  }
  assert(carry == 0);
}

/// Window width minimizing the estimated work, in field-multiplication
/// units: each window costs ~10 per point (digit handling, placement, its
/// share of pair additions) and ~28 per bucket (the two suffix-sum adds).
inline int ChooseWindowSize(size_t n, int max_bits) {
  int best_c = 2;
  uint64_t best = ~uint64_t{0};
  for (int c = 2; c <= 16; ++c) {
    uint64_t windows = static_cast<uint64_t>((max_bits + c - 1) / c) + 1;
    uint64_t cost =
        windows * (static_cast<uint64_t>(n) * 10 + (uint64_t{1} << (c - 1)) * 28);
    if (cost < best) {
      best = cost;
      best_c = c;
    }
  }
  return best_c;
}

/// Per-thread scratch reused across the windows of one MSM.
template <typename F>
struct MsmScratch {
  enum class PairKind : uint8_t { kAdd, kDouble, kDirect, kInfinity };
  struct PairJob {
    AffinePoint<F> a, b;  // operand copies (results are written in place)
    uint32_t out;         // destination slot in pts
    PairKind kind;
  };

  std::vector<uint32_t> starts;  // bucket segment offsets into pts
  std::vector<uint32_t> cursor;  // fill cursors / remaining lengths
  std::vector<uint32_t> len;     // live entries per bucket segment
  std::vector<AffinePoint<F>> pts;
  std::vector<PairJob> jobs;
  std::vector<F> denoms, inv_scratch;
};

/// Batch-affine pair additions only pay for themselves once enough pairs
/// share one field inversion (inversion ~ 290 Fp muls). Fp2's inversion is
/// relatively cheaper (one Fp inversion amortized over ~5x costlier muls),
/// so G2 flips to batch-affine earlier.
template <typename F>
constexpr size_t MinBatchPairs() {
  return sizeof(F) <= sizeof(U256) ? 64 : 24;
}

/// Sum of digit[i] * bases[i] over one signed-digit window, via bucket
/// accumulation: counting-sort the points into 2^(c-1) bucket segments,
/// shrink dense segments with batch-affine pairwise adds (one inversion per
/// round), then fold what remains with Jacobian mixed adds inside the
/// standard suffix-sum.
template <typename F>
JacobianPoint<F> MsmWindowSum(const std::vector<AffinePoint<F>>& bases,
                              const int32_t* digits, size_t n, int c,
                              MsmScratch<F>* s) {
  using Point = JacobianPoint<F>;
  using Scratch = MsmScratch<F>;
  using PairKind = typename Scratch::PairKind;
  const size_t half = size_t{1} << (c - 1);

  s->cursor.assign(half + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    int32_t d = digits[i];
    if (d != 0) {
      ++s->cursor[static_cast<size_t>(d < 0 ? -d : d)];
      ++total;
    }
  }
  if (total == 0) return Point::Infinity();

  // Counting sort into per-bucket segments of pts.
  s->starts.resize(half + 1);
  s->len.resize(half + 1);
  uint32_t offset = 0;
  for (size_t b = 1; b <= half; ++b) {
    s->starts[b] = offset;
    s->len[b] = s->cursor[b];
    offset += s->cursor[b];
    s->cursor[b] = s->starts[b];
  }
  s->pts.resize(total);
  for (size_t i = 0; i < n; ++i) {
    int32_t d = digits[i];
    if (d == 0) continue;
    size_t b = static_cast<size_t>(d < 0 ? -d : d);
    s->pts[s->cursor[b]++] = d < 0 ? bases[i].Neg() : bases[i];
  }

  // Batch-affine reduction rounds: halve every dense bucket segment while
  // the round is big enough to amortize its one inversion.
  for (;;) {
    // Cheap pre-check on segment lengths so the terminating round doesn't
    // pay for building (and discarding) the pair jobs.
    size_t potential_pairs = 0;
    for (size_t b = 1; b <= half; ++b) potential_pairs += s->len[b] / 2;
    if (potential_pairs < MinBatchPairs<F>()) break;

    s->jobs.clear();
    s->denoms.clear();
    size_t invertible = 0;
    for (size_t b = 1; b <= half; ++b) {
      uint32_t len = s->len[b];
      if (len < 2) continue;
      uint32_t start = s->starts[b];
      for (uint32_t t = 0; t + 1 < len; t += 2) {
        typename Scratch::PairJob job;
        job.a = s->pts[start + t];
        job.b = s->pts[start + t + 1];
        job.out = start + t / 2;
        if (job.a.infinity) {
          job.kind = PairKind::kDirect;
          job.a = job.b;
        } else if (job.b.infinity) {
          job.kind = PairKind::kDirect;
        } else if (job.a.x == job.b.x) {
          if (job.a.y == job.b.y && !job.a.y.IsZero()) {
            job.kind = PairKind::kDouble;
            s->denoms.push_back(job.a.y.Double());
            ++invertible;
          } else {
            job.kind = PairKind::kInfinity;  // P + (-P)
          }
        } else {
          job.kind = PairKind::kAdd;
          s->denoms.push_back(job.b.x - job.a.x);
          ++invertible;
        }
        s->jobs.push_back(job);
      }
    }
    if (invertible < MinBatchPairs<F>()) break;
    BatchInvert(s->denoms.data(), s->denoms.size(), &s->inv_scratch);

    size_t d = 0;
    for (const typename Scratch::PairJob& job : s->jobs) {
      AffinePoint<F>& out = s->pts[job.out];
      switch (job.kind) {
        case PairKind::kDirect:
          out = job.a;
          break;
        case PairKind::kInfinity:
          out = AffinePoint<F>();
          break;
        case PairKind::kDouble: {
          F xx = job.a.x.Square();
          F lam = (xx.Double() + xx) * s->denoms[d++];
          F x3 = lam.Square() - job.a.x.Double();
          out = AffinePoint<F>(x3, lam * (job.a.x - x3) - job.a.y);
          break;
        }
        case PairKind::kAdd: {
          F lam = (job.b.y - job.a.y) * s->denoms[d++];
          F x3 = lam.Square() - job.a.x - job.b.x;
          out = AffinePoint<F>(x3, lam * (job.a.x - x3) - job.a.y);
          break;
        }
      }
    }
    // Compact: results occupy the front of each segment, odd leftovers slide
    // up behind them.
    for (size_t b = 1; b <= half; ++b) {
      uint32_t len = s->len[b];
      if (len < 2) continue;
      uint32_t start = s->starts[b];
      uint32_t pairs = len / 2;
      if (len & 1) s->pts[start + pairs] = s->pts[start + len - 1];
      s->len[b] = pairs + (len & 1);
    }
  }

  // Suffix sums: running = sum_{j >= b} bucket_j, window = sum_b running.
  // Segments the reduction left with multiple entries fold into `running`
  // with mixed adds — identical algebra, no special case.
  Point running = Point::Infinity();
  Point window_sum = Point::Infinity();
  for (size_t b = half; b >= 1; --b) {
    uint32_t start = s->starts[b];
    for (uint32_t k = 0; k < s->len[b]; ++k) {
      running = running.AddAffine(s->pts[start + k]);
    }
    window_sum = window_sum.Add(running);
  }
  return window_sum;
}

/// Horner-combine the window sums of [w_lo, w_hi): result is
/// sum_{w in range} S_w * 2^(c * (w - w_lo)). `digits` is window-major
/// (digits[w * n + i] = digit of scalar i in window w).
template <typename F>
JacobianPoint<F> MsmWindowRange(const std::vector<AffinePoint<F>>& bases,
                                const std::vector<int32_t>& digits, size_t n,
                                int c, int w_lo, int w_hi) {
  using Point = JacobianPoint<F>;
  MsmScratch<F> scratch;
  Point total = Point::Infinity();
  for (int w = w_hi - 1; w >= w_lo; --w) {
    if (!total.IsInfinity()) {
      for (int k = 0; k < c; ++k) total = total.Double();
    }
    total = total.Add(
        MsmWindowSum(bases, digits.data() + static_cast<size_t>(w) * n, n, c,
                     &scratch));
  }
  return total;
}

}  // namespace msm_internal

/// Multi-scalar multiplication (Pippenger buckets). Computes
/// sum_i scalars[i] * bases[i]; used heavily by the accumulator layer when
/// evaluating committed polynomials against the public key.
///
/// Signed base-2^c digits halve the bucket count; the bucket phase shrinks
/// dense buckets with batch-affine additions (Montgomery simultaneous
/// inversion) before the Jacobian suffix sums.
template <typename F>
JacobianPoint<F> MultiScalarMul(const std::vector<AffinePoint<F>>& bases,
                                const std::vector<U256>& scalars) {
  assert(bases.size() == scalars.size());
  using Point = JacobianPoint<F>;
  size_t n = bases.size();
  if (n == 0) return Point::Infinity();
  if (n == 1) return Point::FromAffine(bases[0]).ScalarMul(scalars[0]);

  int max_bits = 0;
  for (const U256& s : scalars) {
    int b = s.BitLength();
    if (b > max_bits) max_bits = b;
  }
  if (max_bits == 0) return Point::Infinity();

  int c = msm_internal::ChooseWindowSize(n, max_bits);
  int num_windows = (max_bits + c - 1) / c + 1;  // +1 absorbs the top carry
  std::vector<int32_t> digits(static_cast<size_t>(num_windows) * n);
  for (size_t i = 0; i < n; ++i) {
    msm_internal::SignedDigits(scalars[i], c, num_windows, n, digits.data() + i);
  }
  return msm_internal::MsmWindowRange(bases, digits, n, c, 0, num_windows);
}

/// Parallel MultiScalarMul: contiguous window ranges are computed
/// concurrently on `pool` and Horner-combined. Results are bit-identical to
/// the serial version. Falls back to serial when `pool` is null or the
/// problem is too small to amortize scheduling. `max_threads` caps the
/// concurrency requested from the pool (0 = pool size).
template <typename F>
JacobianPoint<F> MultiScalarMul(const std::vector<AffinePoint<F>>& bases,
                                const std::vector<U256>& scalars,
                                ThreadPool* pool, size_t max_threads = 0) {
  using Point = JacobianPoint<F>;
  size_t n = bases.size();
  if (pool == nullptr || n < 2) return MultiScalarMul(bases, scalars);
  assert(bases.size() == scalars.size());

  int max_bits = 0;
  for (const U256& s : scalars) {
    int b = s.BitLength();
    if (b > max_bits) max_bits = b;
  }
  if (max_bits == 0) return Point::Infinity();

  int c = msm_internal::ChooseWindowSize(n, max_bits);
  int num_windows = (max_bits + c - 1) / c + 1;
  size_t want = max_threads == 0 ? pool->NumWorkers() + 1 : max_threads;
  size_t num_chunks =
      std::min({want, static_cast<size_t>(num_windows),
                static_cast<size_t>(8)});  // diminishing returns past 8
  if (num_chunks <= 1) return MultiScalarMul(bases, scalars);

  std::vector<int32_t> digits(static_cast<size_t>(num_windows) * n);
  for (size_t i = 0; i < n; ++i) {
    msm_internal::SignedDigits(scalars[i], c, num_windows, n, digits.data() + i);
  }
  int chunk = (num_windows + static_cast<int>(num_chunks) - 1) /
              static_cast<int>(num_chunks);
  std::vector<Point> partials(num_chunks, Point::Infinity());
  pool->ParallelFor(num_chunks, num_chunks, [&](size_t k) {
    int lo = static_cast<int>(k) * chunk;
    int hi = std::min(lo + chunk, num_windows);
    if (lo < hi) {
      partials[k] = msm_internal::MsmWindowRange(bases, digits, n, c, lo, hi);
    }
  });
  Point total = Point::Infinity();
  for (size_t k = num_chunks; k-- > 0;) {
    if (!total.IsInfinity()) {
      for (int d = 0; d < c * chunk; ++d) total = total.Double();
    }
    total = total.Add(partials[k]);
  }
  return total;
}

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_CURVE_H_

#include "crypto/bn254.h"

namespace vchain::crypto {

const Fp& G1B() {
  static const Fp kB = Fp::FromUint64(3);
  return kB;
}

const Fp2& G2B() {
  static const Fp2 kB =
      Fp2::FromFp(Fp::FromUint64(3)) * Fp2::FromUint64(9, 1).Inverse();
  return kB;
}

const G1Affine& G1Generator() {
  static const G1Affine kGen(Fp::FromUint64(1), Fp::FromUint64(2));
  return kGen;
}

const G2Affine& G2Generator() {
  // EIP-197 alt_bn128 G2 generator.
  static const G2Affine kGen = [] {
    Fp2 x(Fp::FromCanonical(U256FromHex(
              "1800deef121f1e76426a00665e5c4479674322d4f75edadd46debd5cd992f6"
              "ed")),
          Fp::FromCanonical(U256FromHex(
              "198e9393920d483a7260bfb731fb5d25f1aa493335a9e71297e485b7aef312"
              "c2")));
    Fp2 y(Fp::FromCanonical(U256FromHex(
              "12c85ea5db8c6deb4aab71808dcb408fe3d1e7690c43d37b4ce6cc0166fa7d"
              "aa")),
          Fp::FromCanonical(U256FromHex(
              "090689d0585ff075ec9e99ad690c3395bc4b313370b38ef355acdadcd12297"
              "5b")));
    G2Affine gen(x, y);
    assert(OnCurve(gen, G2B()));
    return gen;
  }();
  return kGen;
}

G1 G1Mul(const Fr& k) {
  return G1::FromAffine(G1Generator()).ScalarMul(ScalarOf(k));
}

G2 G2Mul(const Fr& k) {
  return G2::FromAffine(G2Generator()).ScalarMul(ScalarOf(k));
}

namespace {

// Flag bits stored in the two spare high bits of the big-endian x encoding.
constexpr uint8_t kFlagInfinity = 0x80;
constexpr uint8_t kFlagYOdd = 0x40;
constexpr uint8_t kFlagMask = 0xC0;

bool Fp2IsOdd(const Fp2& v) {
  // Parity of the canonical pair, tie-broken on the imaginary part.
  if (!v.a.IsZero()) return v.a.CanonicalIsOdd();
  return v.b.CanonicalIsOdd();
}

}  // namespace

void SerializeG1(const G1Affine& p, ByteWriter* w) {
  uint8_t buf[32] = {0};
  if (!p.infinity) {
    U256ToBytesBE(p.x.ToCanonical(), buf);
    if (p.y.CanonicalIsOdd()) buf[0] |= kFlagYOdd;
  } else {
    buf[0] |= kFlagInfinity;
  }
  w->PutFixed(ByteSpan(buf, 32));
}

Status DeserializeG1(ByteReader* r, G1Affine* out) {
  Bytes buf;
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  uint8_t flags = buf[0] & kFlagMask;
  buf[0] &= ~kFlagMask;
  if (flags & kFlagInfinity) {
    *out = G1Affine();
    return Status::OK();
  }
  U256 x_int = U256FromBytesBE(buf.data());
  if (!(x_int < Fp::Modulus())) {
    return Status::Corruption("G1 x coordinate out of range");
  }
  Fp x = Fp::FromCanonical(x_int);
  Fp y;
  Fp rhs = x.Square() * x + G1B();
  if (!rhs.Sqrt(&y)) {
    return Status::Corruption("G1 x coordinate not on curve");
  }
  if (y.CanonicalIsOdd() != static_cast<bool>(flags & kFlagYOdd)) y = y.Neg();
  *out = G1Affine(x, y);
  return Status::OK();
}

void SerializeG2(const G2Affine& p, ByteWriter* w) {
  uint8_t buf[64] = {0};
  if (!p.infinity) {
    // x = a + b i; encode b (with flags) then a, both big-endian.
    U256ToBytesBE(p.x.b.ToCanonical(), buf);
    U256ToBytesBE(p.x.a.ToCanonical(), buf + 32);
    if (Fp2IsOdd(p.y)) buf[0] |= kFlagYOdd;
  } else {
    buf[0] |= kFlagInfinity;
  }
  w->PutFixed(ByteSpan(buf, 64));
}

Status DeserializeG2(ByteReader* r, G2Affine* out) {
  Bytes buf;
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(64, &buf));
  uint8_t flags = buf[0] & kFlagMask;
  buf[0] &= ~kFlagMask;
  if (flags & kFlagInfinity) {
    *out = G2Affine();
    return Status::OK();
  }
  U256 xb = U256FromBytesBE(buf.data());
  U256 xa = U256FromBytesBE(buf.data() + 32);
  if (!(xa < Fp::Modulus()) || !(xb < Fp::Modulus())) {
    return Status::Corruption("G2 x coordinate out of range");
  }
  Fp2 x(Fp::FromCanonical(xa), Fp::FromCanonical(xb));
  Fp2 rhs = x.Square() * x + G2B();
  Fp2 y;
  if (!rhs.Sqrt(&y)) {
    return Status::Corruption("G2 x coordinate not on curve");
  }
  if (Fp2IsOdd(y) != static_cast<bool>(flags & kFlagYOdd)) y = y.Neg();
  *out = G2Affine(x, y);
  return Status::OK();
}

Bytes G1ToBytes(const G1Affine& p) {
  ByteWriter w;
  SerializeG1(p, &w);
  return w.TakeBytes();
}

Bytes G2ToBytes(const G2Affine& p) {
  ByteWriter w;
  SerializeG2(p, &w);
  return w.TakeBytes();
}

}  // namespace vchain::crypto

#include "crypto/pairing.h"

#include <array>
#include <cassert>

namespace vchain::crypto {

namespace {

// ---------------------------------------------------------------------------
// Loop parameter: NAF digits of 6u + 2 (u = kBnU), least significant first.
// ---------------------------------------------------------------------------

const std::vector<int>& SixUPlus2Naf() {
  static const std::vector<int> kNaf = [] {
    // 6u + 2 fits in 66 bits for the BN254 seed; track it as u128.
    uint128_t k = static_cast<uint128_t>(kBnU) * 6 + 2;
    std::vector<int> naf;
    while (k != 0) {
      if (k & 1) {
        int digit = static_cast<int>(k & 3);  // k mod 4 in {1, 3}
        digit = (digit == 3) ? -1 : 1;
        naf.push_back(digit);
        k -= static_cast<uint128_t>(static_cast<int64_t>(digit));
      } else {
        naf.push_back(0);
      }
      k >>= 1;
    }
    return naf;
  }();
  return kNaf;
}

// ---------------------------------------------------------------------------
// Affine line evaluation. For Q-side points A, B on the twist and P in G1,
// the line through psi(A), psi(B) on E(Fp12) evaluated at P is
//   l(P) = yP - (lambda xP) w + (lambda xA - yA) w^3,
// with lambda the twist-coordinate slope, via the untwist
// psi(x', y') = (x' w^2, y' w^3). The three w-basis coefficients map onto
// Fp12 slots (c0.c0, c1.c0, c1.c1) -- see Fp12::MulBySparseLine.
// ---------------------------------------------------------------------------

struct LineEval {
  Fp2 l00, l10, l11;
};

// Tangent line at T, evaluated at P; also doubles T in place.
LineEval DoubleStep(G2Affine* t, const G1Affine& p) {
  Fp2 xx = t->x.Square();
  Fp2 lambda = (xx.Double() + xx) * t->y.Double().Inverse();  // 3x^2 / 2y
  Fp2 x3 = lambda.Square() - t->x.Double();
  Fp2 y3 = lambda * (t->x - x3) - t->y;
  LineEval line;
  line.l00 = Fp2::FromFp(p.y);
  line.l10 = lambda.MulFp(p.x).Neg();
  line.l11 = lambda * t->x - t->y;
  t->x = x3;
  t->y = y3;
  return line;
}

// Chord line through T and Q, evaluated at P; also sets T = T + Q.
// Precondition: T != +-Q (holds throughout the optimal ate loop for
// prime-order inputs; asserted in debug builds).
LineEval AddStep(G2Affine* t, const G2Affine& q, const G1Affine& p) {
  assert(!(t->x == q.x));
  Fp2 lambda = (q.y - t->y) * (q.x - t->x).Inverse();
  Fp2 x3 = lambda.Square() - t->x - q.x;
  Fp2 y3 = lambda * (t->x - x3) - t->y;
  LineEval line;
  line.l00 = Fp2::FromFp(p.y);
  line.l10 = lambda.MulFp(p.x).Neg();
  line.l11 = lambda * t->x - t->y;
  t->x = x3;
  t->y = y3;
  return line;
}

// Frobenius endomorphism transported to the twist:
//   pi(x, y) = (conj(x) * xi^{(p-1)/3}, conj(y) * xi^{(p-1)/2}).
struct TwistFrobeniusConsts {
  Fp2 gamma_x;  // xi^{(p-1)/3}
  Fp2 gamma_y;  // xi^{(p-1)/2}
};

const TwistFrobeniusConsts& TwistFrobenius() {
  static const TwistFrobeniusConsts kConsts = [] {
    U256 pm1 = kFpParams.modulus;
    pm1.SubInPlace(U256(1));
    U256 e3, e2;
    uint64_t rem = 0;
    DivByWord(pm1, 3, &e3, &rem);
    e2 = pm1;
    e2.Shr1InPlace();
    Fp2 xi = Fp2::FromUint64(9, 1);
    return TwistFrobeniusConsts{xi.Pow(e3), xi.Pow(e2)};
  }();
  return kConsts;
}

G2Affine FrobeniusTwist(const G2Affine& q) {
  if (q.infinity) return q;
  const auto& c = TwistFrobenius();
  return G2Affine(q.x.Conjugate() * c.gamma_x, q.y.Conjugate() * c.gamma_y);
}

Fp12 PowU(const Fp12& f) {
  Fp12 acc = Fp12::One();
  U256 u(kBnU);
  for (int i = u.BitLength() - 1; i >= 0; --i) {
    acc = acc.Square();
    if (u.Bit(i)) acc = acc * f;
  }
  return acc;
}

}  // namespace

GT MillerLoop(const G1Affine& p, const G2Affine& q) {
  if (p.infinity || q.infinity) return GT::One();

  const std::vector<int>& naf = SixUPlus2Naf();
  G2Affine t = q;
  G2Affine minus_q = q.Neg();
  Fp12 f = Fp12::One();

  for (int i = static_cast<int>(naf.size()) - 2; i >= 0; --i) {
    f = f.Square();
    LineEval dl = DoubleStep(&t, p);
    f = f.MulBySparseLine(dl.l00, dl.l10, dl.l11);
    if (naf[i] == 1) {
      LineEval al = AddStep(&t, q, p);
      f = f.MulBySparseLine(al.l00, al.l10, al.l11);
    } else if (naf[i] == -1) {
      LineEval al = AddStep(&t, minus_q, p);
      f = f.MulBySparseLine(al.l00, al.l10, al.l11);
    }
  }

  // Correction additions with pi(Q) and -pi^2(Q).
  G2Affine q1 = FrobeniusTwist(q);
  G2Affine q2 = FrobeniusTwist(q1).Neg();
  LineEval l1 = AddStep(&t, q1, p);
  f = f.MulBySparseLine(l1.l00, l1.l10, l1.l11);
  LineEval l2 = AddStep(&t, q2, p);
  f = f.MulBySparseLine(l2.l00, l2.l10, l2.l11);
  return f;
}

GT FinalExponentiation(const GT& f_in) {
  // Easy part: f^((p^6 - 1)(p^2 + 1)).
  Fp12 f = f_in;
  Fp12 t1 = f.Conjugate() * f.Inverse();
  Fp12 t2 = t1.FrobeniusP2();
  f = t1 * t2;

  // Hard part (Devegili-Scott-Dominguez schedule for BN curves).
  Fp12 fp = f.Frobenius();
  Fp12 fp2 = f.FrobeniusP2();
  Fp12 fp3 = fp2.Frobenius();

  Fp12 fu = PowU(f);
  Fp12 fu2 = PowU(fu);
  Fp12 fu3 = PowU(fu2);

  Fp12 y3 = PowU(f).Frobenius();
  Fp12 fu2p = fu2.Frobenius();
  Fp12 fu3p = fu3.Frobenius();
  Fp12 y2 = fu2.FrobeniusP2();

  Fp12 y0 = fp * fp2 * fp3;
  Fp12 y1 = f.Conjugate();
  Fp12 y5 = fu2.Conjugate();
  y3 = y3.Conjugate();
  Fp12 y4 = (fu * fu2p).Conjugate();
  Fp12 y6 = (fu3 * fu3p).Conjugate();

  Fp12 t0 = y6.Square() * y4 * y5;
  Fp12 tt1 = y3 * y5 * t0;
  t0 = t0 * y2;
  tt1 = (tt1.Square() * t0).Square();
  t0 = tt1 * y1;
  tt1 = tt1 * y0;
  t0 = t0.Square() * tt1;
  return t0;
}

GT Pairing(const G1Affine& p, const G2Affine& q) {
  return FinalExponentiation(MillerLoop(p, q));
}

GT PairingProduct(const std::vector<std::pair<G1Affine, G2Affine>>& pairs) {
  Fp12 f = Fp12::One();
  for (const auto& [p, q] : pairs) {
    f = f * MillerLoop(p, q);
  }
  return FinalExponentiation(f);
}

bool PairingProductIsOne(
    const std::vector<std::pair<G1Affine, G2Affine>>& pairs) {
  return PairingProduct(pairs).IsOne();
}

const GT& PairingOfGenerators() {
  static const GT kE = Pairing(G1Generator(), G2Generator());
  return kE;
}

}  // namespace vchain::crypto

// SHA-256 (FIPS 180-4). Used as the vChain `hash(.)` primitive for block
// hashes, Merkle trees, proof-of-work, and attribute-element encoding.
// (The paper used 160-bit SHA-1 via Crypto++; we substitute SHA-256 — same
// API role, constant-factor larger digests.)

#ifndef VCHAIN_CRYPTO_SHA256_H_
#define VCHAIN_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace vchain::crypto {

using Hash32 = std::array<uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  void Update(const std::string& s) {
    Update(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  Hash32 Finalize();

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// One-shot digest.
Hash32 Sha256Digest(ByteSpan data);
Hash32 Sha256Digest(const std::string& s);

/// Digest of the concatenation of two hashes (Merkle interior nodes).
Hash32 HashPair(const Hash32& a, const Hash32& b);

/// First 8 bytes of the digest as a little-endian u64 (attribute encoding).
uint64_t Hash64(const std::string& s);

std::string HashToHex(const Hash32& h);

inline ByteSpan HashSpan(const Hash32& h) {
  return ByteSpan(h.data(), h.size());
}

/// Lexicographic comparison helper for PoW targets.
bool HashLessThan(const Hash32& a, const Hash32& b);

/// Number of leading zero bits (PoW difficulty check).
int LeadingZeroBits(const Hash32& h);

}  // namespace vchain::crypto

#endif  // VCHAIN_CRYPTO_SHA256_H_

// Verifiable subscription queries (§7).
//
// The SP registers standing queries and, per newly mined block, publishes to
// every subscriber either matching objects plus a proof tree, or evidence
// that nothing matched. Two publication disciplines:
//
//   * realtime — every block produces a per-query notification carrying a
//     pruned proof tree (like the time-window BlockVO, but mismatch nodes
//     may be excluded either by a CNF clause or by grid *cells* — "no object
//     under this node lies in cell C" — which lets different queries share
//     one proof);
//   * lazy (§7.2, Algorithm 5) — consecutive all-mismatch blocks are stacked
//     and consolidated through the inter-block skip list; one aggregated
//     disjointness proof (acc2's ProofSum/Sum) covers the entire run when a
//     match finally flushes it. Lazy requires an aggregating engine.
//
// Two matchers produce these notifications bit-identically (sub/match/):
//
//   * MatcherMode::kLinear — every block is matched against every standing
//     query independently: per query, map the block's root multiset and scan
//     the CNF (the paper's presentation; O(subscriptions) per block).
//   * MatcherMode::kIndexed — the block drives matching through the
//     clause-inverted index (sub/match/clause_index.h): the root multiset is
//     mapped ONCE, each mapped element marks the interned clauses posting
//     it, and per query only a hit-flag scan remains. Queries with a non-hit
//     clause take the exclusion fast path — their notification differs only
//     in query_id and clause_idx, so one root-mismatch template (one cached
//     proof probe) is built per distinct exclusion clause and stamped per
//     subscriber. Queries whose clauses were all hit are *candidates*: full
//     CNF proof-tree evaluation runs once per group of subscriptions with
//     identical clause content (identical content fixes the entire proof
//     walk, terminal cells included, because equal range covers imply equal
//     range boxes and the grid freezes cells at registration — see
//     ip_tree.h), then the group notification is stamped per subscriber.
//
// Proof sharing across queries (§7.1's motivation) happens through a
// content-keyed decision memo + proof cache: one (index node, clause/cell)
// disjointness decision and proof serves every query that needs it. The
// IP-Tree provides the grid cells, query classification, and fallback
// handling for queries the grid cannot resolve.
//
// Subscribe/Unsubscribe are incremental in both modes: interning and
// releasing postings, plus an incremental grid insert — no structure is
// rebuilt. Snapshot()/Restore() expose the full registration + lazy-run
// state for checkpoint persistence (sub/match/checkpoint.h).

#ifndef VCHAIN_SUB_SUBSCRIPTION_H_
#define VCHAIN_SUB_SUBSCRIPTION_H_

#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/processor.h"
#include "sub/ip_tree.h"
#include "sub/match/clause_index.h"
#include "sub/match/matcher.h"
#include "sub/match/metrics.h"

namespace vchain::sub {

using chain::Object;
using core::Block;
using core::ChainConfig;
using core::IndexMode;
using core::MappedQueryView;
using core::ProofCache;
using core::TransformedQuery;
using core::VoKind;

/// How a mismatch node excludes a query's results.
template <typename Engine>
struct SubExclusion {
  bool is_cell = false;
  uint32_t clause_idx = 0;  ///< when !is_cell: index into the query's CNF
  CellBox cell;             ///< when is_cell: proven-object-free grid cell
  typename Engine::Proof proof;
};

template <typename Engine>
struct SubVoNode {
  VoKind kind = VoKind::kExpand;
  typename Engine::ObjectDigest digest;
  uint32_t object_ref = 0;                       // kMatch
  chain::Hash32 inner_hash{};                    // kMismatch
  std::vector<SubExclusion<Engine>> exclusions;  // kMismatch
  int32_t left = -1, right = -1;                 // kExpand
};

/// Per-(query, block) realtime notification.
template <typename Engine>
struct SubNotification {
  uint32_t query_id = 0;
  uint64_t height = 0;
  std::vector<Object> objects;
  std::vector<SubVoNode<Engine>> nodes;
  int32_t root = -1;
};

/// Lazy-mode batch: proves blocks [from_height, to_height] had no results
/// (all excluded by one clause), optionally followed by a fully-processed
/// match block at to_height + 1.
template <typename Engine>
struct LazyBatch {
  struct BlockUnit {
    uint64_t height = 0;
    chain::Hash32 inner_hash{};
    typename Engine::ObjectDigest digest;
  };
  struct SkipUnit {
    uint64_t from_height = 0;  ///< block owning the skip entry
    uint32_t level = 0;
    uint64_t distance = 0;
    typename Engine::ObjectDigest digest;
    std::vector<chain::Hash32> other_entry_hashes;
  };
  using Unit = std::variant<BlockUnit, SkipUnit>;

  uint32_t query_id = 0;
  bool has_pending = false;
  uint64_t from_height = 0, to_height = 0;
  uint32_t clause_idx = 0;  ///< shared exclusion clause for all units
  std::vector<Unit> units;  ///< ascending heights, covering [from, to]
  std::optional<typename Engine::Proof> agg_proof;

  std::optional<SubNotification<Engine>> match;  ///< the flushing block
};

/// The full mutable subscription state, as one value: what a checkpoint
/// persists and a restarted SP restores. Ids are preserved (subscribers
/// hold them) and the id allocator resumes past every id ever handed out.
template <typename Engine>
struct SubscriptionSnapshot {
  struct Entry {
    uint32_t id = 0;
    Query query;
  };
  struct LazyEntry {
    uint32_t id = 0;
    uint32_t clause_idx = 0;
    Multiset w_sum;
    std::vector<typename LazyBatch<Engine>::Unit> units;
    std::vector<uint64_t> trailing_blocks;
  };
  uint32_t next_query_id = 0;
  std::vector<Entry> queries;    ///< ascending id
  std::vector<LazyEntry> lazy;   ///< ascending id, non-empty runs only
};

template <typename Engine>
class SubscriptionManager {
 public:
  struct Options {
    bool use_ip_tree = true;  ///< share decisions/proofs across queries
    bool lazy = false;        ///< Algorithm 5 (requires aggregation support)
    /// Prove range mismatches with grid-cell disjointness (sharable across
    /// queries with different ranges) before falling back to the query's own
    /// range-cover clause. Both strategies are sound; a range clause always
    /// exists, so this is purely a proof-sharing policy.
    bool prefer_cell_exclusions = false;
    /// Matching strategy; notifications are bit-identical either way.
    MatcherMode matcher = MatcherMode::kIndexed;
    IpTree::Options ip;
  };

  SubscriptionManager(const Engine& engine, const ChainConfig& config,
                      Options options)
      : engine_(engine),
        config_(config),
        options_(options),
        ip_tree_(config.schema, options.ip),
        cache_(config.proof_cache_capacity) {}

  /// Register a standing query; returns its id. Rejects a structurally
  /// invalid query (inverted/out-of-domain range, out-of-schema dimension,
  /// empty OR-clause) with Status::InvalidArgument instead of silently
  /// matching nothing. The raw unvalidated Subscribe this wrapped is gone —
  /// every registration validates.
  Result<uint32_t> TrySubscribe(const Query& q) {
    VCHAIN_RETURN_IF_ERROR(core::ValidateQuery(q, config_.schema));
    uint32_t id = ip_tree_.Register(q);
    InstallRuntime(id, q);
    return id;
  }

  /// Deregister; any pending lazy run is dropped (a subscriber leaving
  /// forfeits its undelivered evidence — flush first to keep it).
  void Unsubscribe(uint32_t id) {
    auto it = runtime_.find(id);
    if (it == runtime_.end()) return;
    for (uint32_t cid : it->second.clause_ids) index_.Release(cid);
    runtime_.erase(it);
    lazy_state_.erase(id);
    ip_tree_.Deregister(id);
  }

  const IpTree& ip_tree() const { return ip_tree_; }
  const ClauseIndex& clause_index() const { return index_; }
  MatcherMode matcher() const { return options_.matcher; }
  size_t NumActive() const { return runtime_.size(); }

  /// Realtime processing of a newly confirmed block: one notification per
  /// active query (ascending query id), identical bytes for both matchers.
  std::vector<SubNotification<Engine>> ProcessBlock(
      const Block<Engine>& block) {
    SubMetrics& m = SubMetrics::Get();
    metrics::ScopedTimer timer(m.match_seconds);
    std::vector<SubNotification<Engine>> out =
        options_.matcher == MatcherMode::kIndexed ? ProcessBlockIndexed(block)
                                                  : ProcessBlockLinear(block);
    m.notified->Inc(out.size());
    for (const auto& n : out) {
      if (!n.objects.empty()) m.matched->Inc();
    }
    return out;
  }

  /// Blocks one drain call processes before returning, so catching up on a
  /// long backlog never accumulates an unbounded notification vector —
  /// callers loop (publishing each batch) until `*next_height` reaches the
  /// source tip.
  static constexpr uint64_t kDefaultDrainBatch = 256;

  /// Drain blocks the SP has not yet published from a BlockSource
  /// (in-memory chain or disk-backed store): `*next_height` is the first
  /// unprocessed height, advanced by up to `max_blocks` per call. This is
  /// the standing-service loop — a restarted subscription SP re-opens its
  /// store, seeks to its checkpoint and loops this until caught up, a
  /// bounded batch at a time, regardless of how far the chain has grown
  /// past RAM.
  std::vector<SubNotification<Engine>> ProcessNewBlocks(
      const store::BlockSource<Engine>& source, uint64_t* next_height,
      uint64_t max_blocks = kDefaultDrainBatch) {
    std::vector<SubNotification<Engine>> out;
    for (uint64_t n = 0; n < max_blocks && *next_height < source.NumBlocks();
         ++n, ++*next_height) {
      auto batch = ProcessBlock(source.BlockAt(*next_height));
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
    return out;
  }

  /// Lazy-mode drain (acc2 only); see ProcessNewBlocks / ProcessBlockLazy.
  std::vector<LazyBatch<Engine>> ProcessNewBlocksLazy(
      const store::BlockSource<Engine>& source, uint64_t* next_height,
      uint64_t max_blocks = kDefaultDrainBatch) {
    std::vector<LazyBatch<Engine>> out;
    for (uint64_t n = 0; n < max_blocks && *next_height < source.NumBlocks();
         ++n, ++*next_height) {
      auto batch = ProcessBlockLazy(source.BlockAt(*next_height));
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
    return out;
  }

  /// Lazy processing (acc2 only): returns batches for queries flushed by
  /// this block (matches); silent queries keep accumulating.
  std::vector<LazyBatch<Engine>> ProcessBlockLazy(const Block<Engine>& block) {
    static_assert(Engine::kSupportsAggregation,
                  "lazy authentication requires an aggregating engine");
    metrics::ScopedTimer timer(SubMetrics::Get().match_seconds);
    return options_.matcher == MatcherMode::kIndexed
               ? ProcessBlockLazyIndexed(block)
               : ProcessBlockLazyLinear(block);
  }

  /// Re-match one already-mined block against a single standing query —
  /// the redelivery path for a subscriber whose cursor fell behind the
  /// bounded event log (api::Service::EventsSince). A pure function of
  /// (block, query): the notification's bytes are identical to what the
  /// realtime drain produced for the same block, so redelivered events
  /// verify exactly like originals. NotFound for an id that is not
  /// currently registered.
  Result<SubNotification<Engine>> RebuildNotification(
      const Block<Engine>& block, uint32_t query_id) {
    if (runtime_.find(query_id) == runtime_.end()) {
      return Status::NotFound("unknown subscription id");
    }
    MaterializeRuntime(query_id);
    return BuildNotification(block, query_id);
  }

  /// Flush all pending lazy runs (subscription period end / deregistration).
  std::vector<LazyBatch<Engine>> FlushAll() {
    std::vector<LazyBatch<Engine>> out;
    for (auto& [id, state] : lazy_state_) {
      if (!state.units.empty()) {
        out.push_back(FlushState(id, &state));
      }
    }
    return out;
  }

  // --- checkpointing --------------------------------------------------------

  /// The registration + lazy-run state a checkpoint persists.
  SubscriptionSnapshot<Engine> Snapshot() const {
    SubscriptionSnapshot<Engine> snap;
    snap.next_query_id = ip_tree_.NextId();
    snap.queries.reserve(runtime_.size());
    for (const auto& [id, rt] : runtime_) {
      (void)rt;
      snap.queries.push_back({id, ip_tree_.QueryOf(id)});
    }
    for (const auto& [id, state] : lazy_state_) {
      if (state.units.empty()) continue;
      typename SubscriptionSnapshot<Engine>::LazyEntry e;
      e.id = id;
      e.clause_idx = state.clause_idx;
      e.w_sum = state.w_sum;
      e.units = state.units;
      e.trailing_blocks = state.trailing_blocks;
      snap.lazy.push_back(std::move(e));
    }
    return snap;
  }

  /// Restore a snapshot into a freshly constructed manager: re-registers
  /// every query under its original id (subscribers hold those ids) and
  /// reinstates pending lazy runs. Grid cells may differ from the pre-crash
  /// instance (insertion order differs) — notifications stay sound and
  /// verifiable; cross-restart byte equality is not part of the contract.
  Status Restore(const SubscriptionSnapshot<Engine>& snap) {
    for (const auto& e : snap.queries) {
      VCHAIN_RETURN_IF_ERROR(core::ValidateQuery(e.query, config_.schema));
      VCHAIN_RETURN_IF_ERROR(ip_tree_.RegisterWithId(e.id, e.query));
      InstallRuntime(e.id, e.query);
    }
    ip_tree_.ReserveIds(snap.next_query_id);
    for (const auto& e : snap.lazy) {
      auto it = runtime_.find(e.id);
      if (it == runtime_.end()) {
        return Status::Corruption("lazy state for unknown subscription");
      }
      if (e.clause_idx >= NumClauses(it->second)) {
        return Status::Corruption("lazy clause index out of range");
      }
      LazyState st;
      st.clause_idx = e.clause_idx;
      st.w_sum = e.w_sum;
      st.units = e.units;
      st.trailing_blocks = e.trailing_blocks;
      lazy_state_[e.id] = std::move(st);
    }
    return Status::OK();
  }

  typename ProofCache<Engine>::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct QueryRuntime {
    /// Index of the first keyword clause (range covers precede keywords in
    /// TransformQuery's clause order); clause search starts here so shared
    /// keyword proofs are preferred over per-query range proofs.
    size_t first_keyword_clause = 0;
    /// kIndexed: interned clause refs in TransformQuery order, plus the
    /// grouped-dispatch key (clause_ids + first_keyword_clause). Identical
    /// keys imply identical notifications up to query_id.
    std::vector<uint32_t> clause_ids;
    std::vector<uint32_t> group_key;
    /// Materialized lazily under kIndexed (only group representatives and
    /// lazy flushes need the full view); eager under kLinear. At a million
    /// standing queries the per-query mapped views are the dominant memory,
    /// and the indexed matcher's point is to not need them.
    std::unique_ptr<TransformedQuery> tq;
    std::unique_ptr<MappedQueryView> view;
  };

  struct LazyState {
    uint32_t clause_idx = 0;
    Multiset w_sum;
    std::vector<typename LazyBatch<Engine>::Unit> units;
    // Parallel bookkeeping for skip consolidation: heights of trailing
    // consecutive block units.
    std::vector<uint64_t> trailing_blocks;
  };

  /// Orders per-block candidate groups by clause content (keys point at the
  /// stable per-query group_key vectors; no per-block key copies).
  struct GroupKeyLess {
    bool operator()(const std::vector<uint32_t>* a,
                    const std::vector<uint32_t>* b) const {
      return *a < *b;
    }
  };

  static const Multiset& RootW(const Block<Engine>& block) {
    return block.block_w;
  }

  void InstallRuntime(uint32_t id, const Query& q) {
    QueryRuntime rt;
    rt.first_keyword_clause = q.ranges.size();
    if (options_.matcher == MatcherMode::kIndexed) {
      TransformedQuery tq = core::TransformQuery(q, config_.schema);
      rt.clause_ids.reserve(tq.clauses.size());
      for (size_t ci = 0; ci < tq.clauses.size(); ++ci) {
        std::vector<uint64_t> mapped;
        mapped.reserve(tq.clauses[ci].DistinctSize());
        for (const Multiset::Entry& e : tq.clauses[ci].entries()) {
          mapped.push_back(engine_.MapElement(e.element));
        }
        rt.clause_ids.push_back(index_.Intern(tq.clauses[ci],
                                              std::move(mapped),
                                              ci < rt.first_keyword_clause));
      }
      rt.group_key = rt.clause_ids;
      rt.group_key.push_back(static_cast<uint32_t>(rt.first_keyword_clause));
    } else {
      rt.tq = std::make_unique<TransformedQuery>(
          core::TransformQuery(q, config_.schema));
      rt.view = std::make_unique<MappedQueryView>(engine_, *rt.tq);
    }
    runtime_.emplace(id, std::move(rt));
  }

  /// The proof walk needs the full mapped view; build it on first use and
  /// keep it (a group representative that matched once likely matches
  /// again).
  QueryRuntime& MaterializeRuntime(uint32_t id) {
    QueryRuntime& rt = runtime_.at(id);
    if (!rt.view) {
      rt.tq = std::make_unique<TransformedQuery>(
          core::TransformQuery(ip_tree_.QueryOf(id), config_.schema));
      rt.view = std::make_unique<MappedQueryView>(engine_, *rt.tq);
    }
    return rt;
  }

  size_t NumClauses(const QueryRuntime& rt) const {
    return options_.matcher == MatcherMode::kIndexed ? rt.clause_ids.size()
                                                     : rt.tq->clauses.size();
  }

  /// The clause multiset for proofs — interned content under kIndexed, the
  /// per-query transform under kLinear. Same bytes either way, so proof
  /// cache keys (H(digest | clause)) coincide across queries and matchers.
  const Multiset& ClauseSet(const QueryRuntime& rt, uint32_t clause_idx) {
    if (options_.matcher == MatcherMode::kIndexed) {
      return index_.SetOf(rt.clause_ids[clause_idx]);
    }
    return rt.tq->clauses[clause_idx];
  }

  // --- linear matcher -----------------------------------------------------

  std::vector<SubNotification<Engine>> ProcessBlockLinear(
      const Block<Engine>& block) {
    std::vector<SubNotification<Engine>> out;
    for (uint32_t id : ip_tree_.ActiveQueryIds()) {
      out.push_back(BuildNotification(block, id));
    }
    return out;
  }

  std::vector<LazyBatch<Engine>> ProcessBlockLazyLinear(
      const Block<Engine>& block) {
    std::vector<LazyBatch<Engine>> out;
    for (uint32_t id : ip_tree_.ActiveQueryIds()) {
      const QueryRuntime& rt = runtime_.at(id);
      LazyState& state = lazy_state_[id];
      const Multiset& root_w = RootW(block);
      rt.view->MapForMatch(engine_, root_w, &mapped_w_);
      int clause =
          rt.view->FindDisjointClauseFrom(mapped_w_, rt.first_keyword_clause);
      if (clause >= 0) {
        AppendPending(block, id, static_cast<uint32_t>(clause), &state, &out,
                      [&](size_t, const core::SkipEntry<Engine>& skip) {
                        return !rt.view->ClauseIntersects(
                            engine_, skip.w, static_cast<size_t>(clause));
                      });
      } else {
        // Root matches: flush pending evidence + full proof tree now.
        LazyBatch<Engine> batch = FlushState(id, &state);
        batch.match = BuildNotification(block, id);
        out.push_back(std::move(batch));
      }
    }
    return out;
  }

  // --- indexed matcher ----------------------------------------------------

  /// Map the block's root multiset once and mark every posting clause.
  void ProbeBlock(const Block<Engine>& block) {
    index_.BeginBlock();
    for (const Multiset::Entry& e : RootW(block).entries()) {
      index_.MarkElement(engine_.MapElement(e.element));
    }
  }

  /// The linear matcher's FindDisjointClauseFrom, answered from hit flags:
  /// first clause in wrap order from first_keyword_clause whose interned
  /// content was not hit by the block.
  int FirstNonHitClause(const QueryRuntime& rt) const {
    size_t n = rt.clause_ids.size();
    for (size_t k = 0; k < n; ++k) {
      size_t i = (rt.first_keyword_clause + k) % n;
      if (!index_.IsHit(rt.clause_ids[i])) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<SubNotification<Engine>> ProcessBlockIndexed(
      const Block<Engine>& block) {
    std::vector<SubNotification<Engine>> out;
    if (runtime_.empty()) return out;
    ProbeBlock(block);
    // The root-mismatch fast path needs the real tree root; flat-mode
    // blocks and cell-preferring policies route through the grouped full
    // walk instead (still one walk per distinct clause content).
    const bool fast = config_.mode != IndexMode::kNil &&
                      block.root_index >= 0 &&
                      !options_.prefer_cell_exclusions;
    std::unordered_map<uint32_t, SubNotification<Engine>> mismatch_tmpl;
    std::map<const std::vector<uint32_t>*, SubNotification<Engine>,
             GroupKeyLess>
        group_tmpl;
    SubMetrics& m = SubMetrics::Get();
    out.reserve(runtime_.size());
    for (auto& [id, rt] : runtime_) {
      int clause = FirstNonHitClause(rt);
      if (clause < 0) m.candidates->Inc();
      if (fast && clause >= 0) {
        uint32_t cid = rt.clause_ids[clause];
        auto it = mismatch_tmpl.find(cid);
        if (it == mismatch_tmpl.end()) {
          it = mismatch_tmpl.emplace(cid, BuildRootMismatch(block, cid))
                   .first;
        }
        SubNotification<Engine> notif = it->second;
        notif.query_id = id;
        notif.nodes[0].exclusions[0].clause_idx =
            static_cast<uint32_t>(clause);
        out.push_back(std::move(notif));
      } else {
        auto it = group_tmpl.find(&rt.group_key);
        if (it == group_tmpl.end()) {
          MaterializeRuntime(id);
          it = group_tmpl.emplace(&rt.group_key, BuildNotification(block, id))
                   .first;
        }
        SubNotification<Engine> notif = it->second;
        notif.query_id = id;
        out.push_back(std::move(notif));
      }
    }
    return out;
  }

  /// The shared root-mismatch notification for one exclusion clause:
  /// everything but query_id and the per-query clause_idx, built (and its
  /// proof probed) once per distinct clause per block. Field-for-field the
  /// root EmitSubtree mismatch emission.
  SubNotification<Engine> BuildRootMismatch(const Block<Engine>& block,
                                            uint32_t interned_clause) {
    SubNotification<Engine> notif;
    notif.height = block.header.height;
    const core::IndexNode<Engine>& u = block.nodes[block.root_index];
    SubVoNode<Engine> n;
    n.digest = u.digest;
    n.kind = VoKind::kMismatch;
    n.inner_hash = u.IsLeaf()
                       ? block.objects[u.object_index].Hash()
                       : crypto::HashPair(block.nodes[u.left].hash,
                                          block.nodes[u.right].hash);
    SubExclusion<Engine> ex;
    ex.is_cell = false;
    ex.proof = Prove(u.digest, u.w, index_.SetOf(interned_clause));
    n.exclusions.push_back(std::move(ex));
    notif.nodes.push_back(std::move(n));
    notif.root = 0;
    return notif;
  }

  std::vector<LazyBatch<Engine>> ProcessBlockLazyIndexed(
      const Block<Engine>& block) {
    std::vector<LazyBatch<Engine>> out;
    if (runtime_.empty()) return out;
    ProbeBlock(block);
    skip_memo_.clear();
    mapped_skips_.assign(block.skips.size(), {});
    mapped_skips_ready_.assign(block.skips.size(), false);
    std::map<const std::vector<uint32_t>*, SubNotification<Engine>,
             GroupKeyLess>
        group_tmpl;
    SubMetrics& m = SubMetrics::Get();
    for (auto& [id, rt] : runtime_) {
      LazyState& state = lazy_state_[id];
      int clause = FirstNonHitClause(rt);
      if (clause >= 0) {
        AppendPending(block, id, static_cast<uint32_t>(clause), &state, &out,
                      [&](size_t li, const core::SkipEntry<Engine>& skip) {
                        return SkipDisjointIndexed(
                            block, li, skip,
                            rt.clause_ids[static_cast<size_t>(clause)]);
                      });
      } else {
        m.candidates->Inc();
        LazyBatch<Engine> batch = FlushState(id, &state);
        auto it = group_tmpl.find(&rt.group_key);
        if (it == group_tmpl.end()) {
          MaterializeRuntime(id);
          it = group_tmpl.emplace(&rt.group_key, BuildNotification(block, id))
                   .first;
        }
        SubNotification<Engine> notif = it->second;
        notif.query_id = id;
        batch.match = std::move(notif);
        out.push_back(std::move(batch));
      }
    }
    return out;
  }

  /// Is the skip entry's summed multiset disjoint from the interned clause,
  /// in mapped space? Memoized per (level, clause content) per block — the
  /// decision depends on nothing per-query.
  bool SkipDisjointIndexed(const Block<Engine>& block, size_t li,
                           const core::SkipEntry<Engine>& skip,
                           uint32_t interned_clause) {
    uint64_t key = (static_cast<uint64_t>(li) << 32) | interned_clause;
    auto memo = skip_memo_.find(key);
    if (memo != skip_memo_.end()) return memo->second;
    if (!mapped_skips_ready_[li]) {
      std::vector<uint64_t>& mapped = mapped_skips_[li];
      mapped.reserve(skip.w.entries().size());
      for (const Multiset::Entry& e : skip.w.entries()) {
        mapped.push_back(engine_.MapElement(e.element));
      }
      std::sort(mapped.begin(), mapped.end());
      mapped_skips_ready_[li] = true;
    }
    const std::vector<uint64_t>& mapped = mapped_skips_[li];
    bool disjoint = true;
    for (uint64_t v : ClauseMapped(interned_clause)) {
      if (std::binary_search(mapped.begin(), mapped.end(), v)) {
        disjoint = false;
        break;
      }
    }
    skip_memo_.emplace(key, disjoint);
    return disjoint;
  }

  const std::vector<uint64_t>& ClauseMapped(uint32_t interned_clause) const {
    return index_.MappedOf(interned_clause);
  }

  // --- realtime proof walk (shared by both matchers) ----------------------

  SubNotification<Engine> BuildNotification(const Block<Engine>& block,
                                            uint32_t query_id) {
    SubNotification<Engine> notif;
    notif.query_id = query_id;
    notif.height = block.header.height;
    if (config_.mode == IndexMode::kNil || block.root_index < 0) {
      // Flat fallback: every leaf individually.
      for (size_t i = 0; i < block.objects.size(); ++i) {
        notif.nodes.push_back(LeafNode(block, static_cast<int32_t>(i),
                                       query_id, &notif));
      }
      notif.root = -1;
    } else {
      notif.root = EmitSubtree(block, block.root_index, query_id, &notif);
    }
    return notif;
  }

  SubVoNode<Engine> LeafNode(const Block<Engine>& block, int32_t obj_idx,
                             uint32_t query_id,
                             SubNotification<Engine>* notif) {
    const QueryRuntime& rt = runtime_.at(query_id);
    SubVoNode<Engine> n;
    n.digest = block.leaf_digests[obj_idx];
    const Multiset& w = block.object_ws[obj_idx];
    rt.view->MapForMatch(engine_, w, &mapped_w_);
    if (rt.view->Matches(mapped_w_)) {
      n.kind = VoKind::kMatch;
      n.object_ref = static_cast<uint32_t>(notif->objects.size());
      notif->objects.push_back(block.objects[obj_idx]);
    } else {
      n.kind = VoKind::kMismatch;
      n.inner_hash = block.objects[obj_idx].Hash();
      FillExclusions(w, n.digest, query_id, &n);
    }
    return n;
  }

  /// True iff every terminal cell of the query avoids `w` (then cell
  /// exclusions jointly exclude the query's whole range).
  bool AllCellsDisjoint(uint32_t query_id, const Multiset& w) {
    if (!ip_tree_.IsIndexable(query_id)) return false;
    const auto& cells = ip_tree_.TerminalCells(query_id);
    if (cells.empty()) return false;
    for (const CellBox& c : cells) {
      if (CellIntersects(w, c)) return false;
    }
    return true;
  }

  int32_t EmitSubtree(const Block<Engine>& block, int32_t node_idx,
                      uint32_t query_id, SubNotification<Engine>* notif) {
    const QueryRuntime& rt = runtime_.at(query_id);
    const core::IndexNode<Engine>& u = block.nodes[node_idx];
    // Prunable?
    bool cell_prunable =
        options_.prefer_cell_exclusions && AllCellsDisjoint(query_id, u.w);
    if (!cell_prunable) rt.view->MapForMatch(engine_, u.w, &mapped_w_);
    int clause = cell_prunable
                     ? -1
                     : rt.view->FindDisjointClauseFrom(
                           mapped_w_, rt.first_keyword_clause);
    if (clause < 0 && !cell_prunable) {
      cell_prunable = !options_.prefer_cell_exclusions &&
                      AllCellsDisjoint(query_id, u.w);
    }
    SubVoNode<Engine> n;
    n.digest = u.digest;
    if (clause >= 0 || cell_prunable) {
      n.kind = VoKind::kMismatch;
      n.inner_hash = u.IsLeaf()
                         ? block.objects[u.object_index].Hash()
                         : crypto::HashPair(block.nodes[u.left].hash,
                                            block.nodes[u.right].hash);
      if (clause >= 0) {
        AddClauseExclusion(u.w, n.digest, query_id,
                           static_cast<uint32_t>(clause), &n);
      } else {
        for (const CellBox& c : ip_tree_.TerminalCells(query_id)) {
          AddCellExclusion(u.w, n.digest, c, &n);
        }
      }
      notif->nodes.push_back(std::move(n));
      return static_cast<int32_t>(notif->nodes.size()) - 1;
    }
    if (u.IsLeaf()) {
      notif->nodes.push_back(LeafNode(block, u.object_index, query_id, notif));
      return static_cast<int32_t>(notif->nodes.size()) - 1;
    }
    n.kind = VoKind::kExpand;
    n.left = EmitSubtree(block, u.left, query_id, notif);
    n.right = EmitSubtree(block, u.right, query_id, notif);
    notif->nodes.push_back(std::move(n));
    return static_cast<int32_t>(notif->nodes.size()) - 1;
  }

  /// Leaf-level exclusions, honoring the cell-vs-clause policy. A range
  /// mismatch always has a disjoint range-cover clause, so cells are an
  /// optional sharing strategy, never a necessity.
  void FillExclusions(const Multiset& w,
                      const typename Engine::ObjectDigest& digest,
                      uint32_t query_id, SubVoNode<Engine>* n) {
    const QueryRuntime& rt = runtime_.at(query_id);
    if (options_.prefer_cell_exclusions && AllCellsDisjoint(query_id, w)) {
      for (const CellBox& c : ip_tree_.TerminalCells(query_id)) {
        AddCellExclusion(w, digest, c, n);
      }
      return;
    }
    rt.view->MapForMatch(engine_, w, &mapped_w_);
    int clause =
        rt.view->FindDisjointClauseFrom(mapped_w_, rt.first_keyword_clause);
    assert(clause >= 0);
    AddClauseExclusion(w, digest, query_id, static_cast<uint32_t>(clause), n);
  }

  void AddClauseExclusion(const Multiset& w,
                          const typename Engine::ObjectDigest& digest,
                          uint32_t query_id, uint32_t clause_idx,
                          SubVoNode<Engine>* n) {
    QueryRuntime& rt = runtime_.at(query_id);
    auto proof = Prove(digest, w, ClauseSet(rt, clause_idx));
    SubExclusion<Engine> ex;
    ex.is_cell = false;
    ex.clause_idx = clause_idx;
    ex.proof = std::move(proof);
    n->exclusions.push_back(std::move(ex));
  }

  void AddCellExclusion(const Multiset& w,
                        const typename Engine::ObjectDigest& digest,
                        const CellBox& cell, SubVoNode<Engine>* n) {
    Multiset set = cell.PrefixMultiset(config_.schema);
    auto proof = Prove(digest, w, set);
    SubExclusion<Engine> ex;
    ex.is_cell = true;
    ex.cell = cell;
    ex.proof = std::move(proof);
    n->exclusions.push_back(std::move(ex));
  }

  bool CellIntersects(const Multiset& w, const CellBox& cell) {
    Multiset set = cell.PrefixMultiset(config_.schema);
    return accum::MappedIntersects(engine_, w, set);
  }

  typename Engine::Proof Prove(const typename Engine::ObjectDigest& digest,
                               const Multiset& w, const Multiset& set) {
    if (options_.use_ip_tree) {
      auto proof = cache_.GetOrProve(engine_, digest, w, set);
      assert(proof.ok());
      return proof.TakeValue();
    }
    // nip: no cross-query sharing — always recompute.
    auto proof = engine_.ProveDisjoint(w, set);
    assert(proof.ok());
    return proof.TakeValue();
  }

  // --- lazy (shared by both matchers) -------------------------------------

  /// `skip_disjoint(level, skip)` answers "does the skip's summed multiset
  /// avoid the chosen clause" — per-query view scan under kLinear, memoized
  /// content probe under kIndexed; identical relation either way.
  template <typename SkipDisjoint>
  void AppendPending(const Block<Engine>& block, uint32_t query_id,
                     uint32_t clause_idx, LazyState* state,
                     std::vector<LazyBatch<Engine>>* out,
                     SkipDisjoint&& skip_disjoint) {
    if (!state->units.empty() && state->clause_idx != clause_idx) {
      out->push_back(FlushState(query_id, state));
    }
    state->clause_idx = clause_idx;
    // Try consolidating the trailing run through this block's skip list
    // (largest distance first), then push this block's own unit.
    if (config_.mode == IndexMode::kBoth) {
      for (size_t li = block.skips.size(); li-- > 0;) {
        const core::SkipEntry<Engine>& skip = block.skips[li];
        if (state->trailing_blocks.size() < skip.distance) continue;
        // The trailing `distance` block units must be exactly the previous
        // `distance` heights (contiguity).
        uint64_t h = block.header.height;
        bool contiguous = true;
        size_t nb = state->trailing_blocks.size();
        for (uint64_t k = 0; k < skip.distance; ++k) {
          if (state->trailing_blocks[nb - 1 - k] != h - 1 - k) {
            contiguous = false;
            break;
          }
        }
        if (!contiguous) continue;
        // The skip's summed multiset must still avoid the clause.
        if (!skip_disjoint(li, skip)) continue;
        // Replace the run with one skip unit.
        for (uint64_t k = 0; k < skip.distance; ++k) {
          state->units.pop_back();
          state->trailing_blocks.pop_back();
        }
        typename LazyBatch<Engine>::SkipUnit su;
        su.from_height = block.header.height;
        su.level = static_cast<uint32_t>(li);
        su.distance = skip.distance;
        su.digest = skip.digest;
        for (size_t other = 0; other < block.skips.size(); ++other) {
          if (other != li) {
            su.other_entry_hashes.push_back(block.skips[other].entry_hash);
          }
        }
        state->units.emplace_back(std::move(su));
        break;
      }
    }
    typename LazyBatch<Engine>::BlockUnit bu;
    bu.height = block.header.height;
    const core::IndexNode<Engine>& root = block.nodes[block.root_index];
    bu.inner_hash = root.IsLeaf()
                        ? block.objects[root.object_index].Hash()
                        : crypto::HashPair(block.nodes[root.left].hash,
                                           block.nodes[root.right].hash);
    bu.digest = root.digest;
    state->units.emplace_back(std::move(bu));
    state->trailing_blocks.push_back(block.header.height);
    state->w_sum = state->w_sum.SumWith(RootW(block));
  }

  LazyBatch<Engine> FlushState(uint32_t query_id, LazyState* state) {
    LazyBatch<Engine> batch;
    batch.query_id = query_id;
    if (!state->units.empty()) {
      batch.has_pending = true;
      batch.clause_idx = state->clause_idx;
      batch.units = std::move(state->units);
      // Heights covered: derive from the unit list.
      batch.from_height = UnitLow(batch.units.front());
      batch.to_height = UnitHigh(batch.units.back());
      QueryRuntime& rt = runtime_.at(query_id);
      auto digest = engine_.Digest(state->w_sum);
      auto proof = cache_.GetOrProve(engine_, digest, state->w_sum,
                                     ClauseSet(rt, batch.clause_idx));
      assert(proof.ok());
      batch.agg_proof = proof.TakeValue();
    }
    *state = LazyState{};
    return batch;
  }

  static uint64_t UnitLow(const typename LazyBatch<Engine>::Unit& u) {
    if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(u)) {
      return std::get<typename LazyBatch<Engine>::BlockUnit>(u).height;
    }
    const auto& s = std::get<typename LazyBatch<Engine>::SkipUnit>(u);
    return s.from_height - s.distance;
  }
  static uint64_t UnitHigh(const typename LazyBatch<Engine>::Unit& u) {
    if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(u)) {
      return std::get<typename LazyBatch<Engine>::BlockUnit>(u).height;
    }
    const auto& s = std::get<typename LazyBatch<Engine>::SkipUnit>(u);
    return s.from_height - 1;
  }

  Engine engine_;
  ChainConfig config_;
  Options options_;
  IpTree ip_tree_;
  ClauseIndex index_;
  std::map<uint32_t, QueryRuntime> runtime_;
  std::map<uint32_t, LazyState> lazy_state_;
  ProofCache<Engine> cache_;
  std::vector<uint64_t> mapped_w_;  // per-node mapping scratch
  // Per-block lazy-mode scratch (indexed matcher): mapped skip multisets by
  // level and the (level, clause) disjointness memo.
  std::vector<std::vector<uint64_t>> mapped_skips_;
  std::vector<bool> mapped_skips_ready_;
  std::unordered_map<uint64_t, bool> skip_memo_;
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_SUBSCRIPTION_H_

// Verifiable subscription queries (§7).
//
// The SP registers standing queries and, per newly mined block, publishes to
// every subscriber either matching objects plus a proof tree, or evidence
// that nothing matched. Two publication disciplines:
//
//   * realtime — every block produces a per-query notification carrying a
//     pruned proof tree (like the time-window BlockVO, but mismatch nodes
//     may be excluded either by a CNF clause or by grid *cells* — "no object
//     under this node lies in cell C" — which lets different queries share
//     one proof);
//   * lazy (§7.2, Algorithm 5) — consecutive all-mismatch blocks are stacked
//     and consolidated through the inter-block skip list; one aggregated
//     disjointness proof (acc2's ProofSum/Sum) covers the entire run when a
//     match finally flushes it. Lazy requires an aggregating engine.
//
// Proof sharing across queries (§7.1's motivation) happens through a
// content-keyed decision memo + proof cache: one (index node, clause/cell)
// disjointness decision and proof serves every query that needs it. The
// IP-Tree provides the grid cells, query classification, and fallback
// handling for queries the grid cannot resolve.

#ifndef VCHAIN_SUB_SUBSCRIPTION_H_
#define VCHAIN_SUB_SUBSCRIPTION_H_

#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/processor.h"
#include "sub/ip_tree.h"

namespace vchain::sub {

using chain::Object;
using core::Block;
using core::ChainConfig;
using core::IndexMode;
using core::MappedQueryView;
using core::ProofCache;
using core::TransformedQuery;
using core::VoKind;

/// How a mismatch node excludes a query's results.
template <typename Engine>
struct SubExclusion {
  bool is_cell = false;
  uint32_t clause_idx = 0;  ///< when !is_cell: index into the query's CNF
  CellBox cell;             ///< when is_cell: proven-object-free grid cell
  typename Engine::Proof proof;
};

template <typename Engine>
struct SubVoNode {
  VoKind kind = VoKind::kExpand;
  typename Engine::ObjectDigest digest;
  uint32_t object_ref = 0;                       // kMatch
  chain::Hash32 inner_hash{};                    // kMismatch
  std::vector<SubExclusion<Engine>> exclusions;  // kMismatch
  int32_t left = -1, right = -1;                 // kExpand
};

/// Per-(query, block) realtime notification.
template <typename Engine>
struct SubNotification {
  uint32_t query_id = 0;
  uint64_t height = 0;
  std::vector<Object> objects;
  std::vector<SubVoNode<Engine>> nodes;
  int32_t root = -1;
};

/// Lazy-mode batch: proves blocks [from_height, to_height] had no results
/// (all excluded by one clause), optionally followed by a fully-processed
/// match block at to_height + 1.
template <typename Engine>
struct LazyBatch {
  struct BlockUnit {
    uint64_t height = 0;
    chain::Hash32 inner_hash{};
    typename Engine::ObjectDigest digest;
  };
  struct SkipUnit {
    uint64_t from_height = 0;  ///< block owning the skip entry
    uint32_t level = 0;
    uint64_t distance = 0;
    typename Engine::ObjectDigest digest;
    std::vector<chain::Hash32> other_entry_hashes;
  };
  using Unit = std::variant<BlockUnit, SkipUnit>;

  uint32_t query_id = 0;
  bool has_pending = false;
  uint64_t from_height = 0, to_height = 0;
  uint32_t clause_idx = 0;  ///< shared exclusion clause for all units
  std::vector<Unit> units;  ///< ascending heights, covering [from, to]
  std::optional<typename Engine::Proof> agg_proof;

  std::optional<SubNotification<Engine>> match;  ///< the flushing block
};

template <typename Engine>
class SubscriptionManager {
 public:
  struct Options {
    bool use_ip_tree = true;  ///< share decisions/proofs across queries
    bool lazy = false;        ///< Algorithm 5 (requires aggregation support)
    /// Prove range mismatches with grid-cell disjointness (sharable across
    /// queries with different ranges) before falling back to the query's own
    /// range-cover clause. Both strategies are sound; a range clause always
    /// exists, so this is purely a proof-sharing policy.
    bool prefer_cell_exclusions = false;
    IpTree::Options ip;
  };

  SubscriptionManager(const Engine& engine, const ChainConfig& config,
                      Options options)
      : engine_(engine),
        config_(config),
        options_(options),
        ip_tree_(config.schema, options.ip),
        cache_(config.proof_cache_capacity) {}

  /// Register a standing query; returns its id. Rejects a structurally
  /// invalid query (inverted/out-of-domain range, out-of-schema dimension,
  /// empty OR-clause) with Status::InvalidArgument instead of silently
  /// matching nothing. The raw unvalidated Subscribe this wrapped is gone —
  /// every registration validates.
  Result<uint32_t> TrySubscribe(const Query& q) {
    VCHAIN_RETURN_IF_ERROR(core::ValidateQuery(q, config_.schema));
    uint32_t id = ip_tree_.Register(q);
    QueryRuntime rt;
    rt.tq = core::TransformQuery(q, config_.schema);
    rt.view = std::make_unique<MappedQueryView>(engine_, rt.tq);
    rt.first_keyword_clause = q.ranges.size();
    runtime_.emplace(id, std::move(rt));
    return id;
  }

  void Unsubscribe(uint32_t id) {
    ip_tree_.Deregister(id);
    runtime_.erase(id);
  }

  const IpTree& ip_tree() const { return ip_tree_; }

  /// Realtime processing of a newly confirmed block: one notification per
  /// active query.
  std::vector<SubNotification<Engine>> ProcessBlock(
      const Block<Engine>& block) {
    std::vector<SubNotification<Engine>> out;
    for (uint32_t id : ip_tree_.ActiveQueryIds()) {
      out.push_back(BuildNotification(block, id));
    }
    return out;
  }

  /// Blocks one drain call processes before returning, so catching up on a
  /// long backlog never accumulates an unbounded notification vector —
  /// callers loop (publishing each batch) until `*next_height` reaches the
  /// source tip.
  static constexpr uint64_t kDefaultDrainBatch = 256;

  /// Drain blocks the SP has not yet published from a BlockSource
  /// (in-memory chain or disk-backed store): `*next_height` is the first
  /// unprocessed height, advanced by up to `max_blocks` per call. This is
  /// the standing-service loop — a restarted subscription SP re-opens its
  /// store, seeks to its checkpoint and loops this until caught up, a
  /// bounded batch at a time, regardless of how far the chain has grown
  /// past RAM.
  std::vector<SubNotification<Engine>> ProcessNewBlocks(
      const store::BlockSource<Engine>& source, uint64_t* next_height,
      uint64_t max_blocks = kDefaultDrainBatch) {
    std::vector<SubNotification<Engine>> out;
    for (uint64_t n = 0; n < max_blocks && *next_height < source.NumBlocks();
         ++n, ++*next_height) {
      auto batch = ProcessBlock(source.BlockAt(*next_height));
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
    return out;
  }

  /// Lazy-mode drain (acc2 only); see ProcessNewBlocks / ProcessBlockLazy.
  std::vector<LazyBatch<Engine>> ProcessNewBlocksLazy(
      const store::BlockSource<Engine>& source, uint64_t* next_height,
      uint64_t max_blocks = kDefaultDrainBatch) {
    std::vector<LazyBatch<Engine>> out;
    for (uint64_t n = 0; n < max_blocks && *next_height < source.NumBlocks();
         ++n, ++*next_height) {
      auto batch = ProcessBlockLazy(source.BlockAt(*next_height));
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
    return out;
  }

  /// Lazy processing (acc2 only): returns batches for queries flushed by
  /// this block (matches); silent queries keep accumulating.
  std::vector<LazyBatch<Engine>> ProcessBlockLazy(const Block<Engine>& block) {
    static_assert(Engine::kSupportsAggregation,
                  "lazy authentication requires an aggregating engine");
    std::vector<LazyBatch<Engine>> out;
    for (uint32_t id : ip_tree_.ActiveQueryIds()) {
      const QueryRuntime& rt = runtime_.at(id);
      LazyState& state = lazy_state_[id];
      const Multiset& root_w = RootW(block);
      rt.view->MapForMatch(engine_, root_w, &mapped_w_);
      int clause =
          rt.view->FindDisjointClauseFrom(mapped_w_, rt.first_keyword_clause);
      if (clause >= 0) {
        AppendPending(block, id, static_cast<uint32_t>(clause), &state, &out);
      } else {
        // Root matches: flush pending evidence + full proof tree now.
        LazyBatch<Engine> batch = FlushState(id, &state);
        batch.match = BuildNotification(block, id);
        out.push_back(std::move(batch));
      }
    }
    return out;
  }

  /// Flush all pending lazy runs (subscription period end / deregistration).
  std::vector<LazyBatch<Engine>> FlushAll() {
    std::vector<LazyBatch<Engine>> out;
    for (auto& [id, state] : lazy_state_) {
      if (!state.units.empty()) {
        out.push_back(FlushState(id, &state));
      }
    }
    return out;
  }

  typename ProofCache<Engine>::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct QueryRuntime {
    TransformedQuery tq;
    std::unique_ptr<MappedQueryView> view;
    /// Index of the first keyword clause (range covers precede keywords in
    /// TransformQuery's clause order); clause search starts here so shared
    /// keyword proofs are preferred over per-query range proofs.
    size_t first_keyword_clause = 0;
  };

  struct LazyState {
    uint32_t clause_idx = 0;
    Multiset w_sum;
    std::vector<typename LazyBatch<Engine>::Unit> units;
    // Parallel bookkeeping for skip consolidation: heights of trailing
    // consecutive block units.
    std::vector<uint64_t> trailing_blocks;
  };

  static const Multiset& RootW(const Block<Engine>& block) {
    return block.block_w;
  }

  // --- realtime ---------------------------------------------------------

  SubNotification<Engine> BuildNotification(const Block<Engine>& block,
                                            uint32_t query_id) {
    SubNotification<Engine> notif;
    notif.query_id = query_id;
    notif.height = block.header.height;
    if (config_.mode == IndexMode::kNil || block.root_index < 0) {
      // Flat fallback: every leaf individually.
      for (size_t i = 0; i < block.objects.size(); ++i) {
        notif.nodes.push_back(LeafNode(block, static_cast<int32_t>(i),
                                       query_id, &notif));
      }
      notif.root = -1;
    } else {
      notif.root = EmitSubtree(block, block.root_index, query_id, &notif);
    }
    return notif;
  }

  SubVoNode<Engine> LeafNode(const Block<Engine>& block, int32_t obj_idx,
                             uint32_t query_id,
                             SubNotification<Engine>* notif) {
    const QueryRuntime& rt = runtime_.at(query_id);
    SubVoNode<Engine> n;
    n.digest = block.leaf_digests[obj_idx];
    const Multiset& w = block.object_ws[obj_idx];
    rt.view->MapForMatch(engine_, w, &mapped_w_);
    if (rt.view->Matches(mapped_w_)) {
      n.kind = VoKind::kMatch;
      n.object_ref = static_cast<uint32_t>(notif->objects.size());
      notif->objects.push_back(block.objects[obj_idx]);
    } else {
      n.kind = VoKind::kMismatch;
      n.inner_hash = block.objects[obj_idx].Hash();
      FillExclusions(w, n.digest, query_id, &n);
    }
    return n;
  }

  /// True iff every terminal cell of the query avoids `w` (then cell
  /// exclusions jointly exclude the query's whole range).
  bool AllCellsDisjoint(uint32_t query_id, const Multiset& w) {
    if (!ip_tree_.IsIndexable(query_id)) return false;
    const auto& cells = ip_tree_.TerminalCells(query_id);
    if (cells.empty()) return false;
    for (const CellBox& c : cells) {
      if (CellIntersects(w, c)) return false;
    }
    return true;
  }

  int32_t EmitSubtree(const Block<Engine>& block, int32_t node_idx,
                      uint32_t query_id, SubNotification<Engine>* notif) {
    const QueryRuntime& rt = runtime_.at(query_id);
    const core::IndexNode<Engine>& u = block.nodes[node_idx];
    // Prunable?
    bool cell_prunable =
        options_.prefer_cell_exclusions && AllCellsDisjoint(query_id, u.w);
    if (!cell_prunable) rt.view->MapForMatch(engine_, u.w, &mapped_w_);
    int clause = cell_prunable
                     ? -1
                     : rt.view->FindDisjointClauseFrom(
                           mapped_w_, rt.first_keyword_clause);
    if (clause < 0 && !cell_prunable) {
      cell_prunable = !options_.prefer_cell_exclusions &&
                      AllCellsDisjoint(query_id, u.w);
    }
    SubVoNode<Engine> n;
    n.digest = u.digest;
    if (clause >= 0 || cell_prunable) {
      n.kind = VoKind::kMismatch;
      n.inner_hash = u.IsLeaf()
                         ? block.objects[u.object_index].Hash()
                         : crypto::HashPair(block.nodes[u.left].hash,
                                            block.nodes[u.right].hash);
      if (clause >= 0) {
        AddClauseExclusion(u.w, n.digest, query_id,
                           static_cast<uint32_t>(clause), &n);
      } else {
        for (const CellBox& c : ip_tree_.TerminalCells(query_id)) {
          AddCellExclusion(u.w, n.digest, c, &n);
        }
      }
      notif->nodes.push_back(std::move(n));
      return static_cast<int32_t>(notif->nodes.size()) - 1;
    }
    if (u.IsLeaf()) {
      notif->nodes.push_back(LeafNode(block, u.object_index, query_id, notif));
      return static_cast<int32_t>(notif->nodes.size()) - 1;
    }
    n.kind = VoKind::kExpand;
    n.left = EmitSubtree(block, u.left, query_id, notif);
    n.right = EmitSubtree(block, u.right, query_id, notif);
    notif->nodes.push_back(std::move(n));
    return static_cast<int32_t>(notif->nodes.size()) - 1;
  }

  /// Leaf-level exclusions, honoring the cell-vs-clause policy. A range
  /// mismatch always has a disjoint range-cover clause, so cells are an
  /// optional sharing strategy, never a necessity.
  void FillExclusions(const Multiset& w,
                      const typename Engine::ObjectDigest& digest,
                      uint32_t query_id, SubVoNode<Engine>* n) {
    const QueryRuntime& rt = runtime_.at(query_id);
    if (options_.prefer_cell_exclusions && AllCellsDisjoint(query_id, w)) {
      for (const CellBox& c : ip_tree_.TerminalCells(query_id)) {
        AddCellExclusion(w, digest, c, n);
      }
      return;
    }
    rt.view->MapForMatch(engine_, w, &mapped_w_);
    int clause =
        rt.view->FindDisjointClauseFrom(mapped_w_, rt.first_keyword_clause);
    assert(clause >= 0);
    AddClauseExclusion(w, digest, query_id, static_cast<uint32_t>(clause), n);
  }

  void AddClauseExclusion(const Multiset& w,
                          const typename Engine::ObjectDigest& digest,
                          uint32_t query_id, uint32_t clause_idx,
                          SubVoNode<Engine>* n) {
    const QueryRuntime& rt = runtime_.at(query_id);
    auto proof = Prove(digest, w, rt.tq.clauses[clause_idx]);
    SubExclusion<Engine> ex;
    ex.is_cell = false;
    ex.clause_idx = clause_idx;
    ex.proof = std::move(proof);
    n->exclusions.push_back(std::move(ex));
  }

  void AddCellExclusion(const Multiset& w,
                        const typename Engine::ObjectDigest& digest,
                        const CellBox& cell, SubVoNode<Engine>* n) {
    Multiset set = cell.PrefixMultiset(config_.schema);
    auto proof = Prove(digest, w, set);
    SubExclusion<Engine> ex;
    ex.is_cell = true;
    ex.cell = cell;
    ex.proof = std::move(proof);
    n->exclusions.push_back(std::move(ex));
  }

  bool CellIntersects(const Multiset& w, const CellBox& cell) {
    Multiset set = cell.PrefixMultiset(config_.schema);
    return accum::MappedIntersects(engine_, w, set);
  }

  typename Engine::Proof Prove(const typename Engine::ObjectDigest& digest,
                               const Multiset& w, const Multiset& set) {
    if (options_.use_ip_tree) {
      auto proof = cache_.GetOrProve(engine_, digest, w, set);
      assert(proof.ok());
      return proof.TakeValue();
    }
    // nip: no cross-query sharing — always recompute.
    auto proof = engine_.ProveDisjoint(w, set);
    assert(proof.ok());
    return proof.TakeValue();
  }

  // --- lazy --------------------------------------------------------------

  void AppendPending(const Block<Engine>& block, uint32_t query_id,
                     uint32_t clause_idx, LazyState* state,
                     std::vector<LazyBatch<Engine>>* out) {
    if (!state->units.empty() && state->clause_idx != clause_idx) {
      out->push_back(FlushState(query_id, state));
    }
    state->clause_idx = clause_idx;
    // Try consolidating the trailing run through this block's skip list
    // (largest distance first), then push this block's own unit.
    if (config_.mode == IndexMode::kBoth) {
      for (size_t li = block.skips.size(); li-- > 0;) {
        const core::SkipEntry<Engine>& skip = block.skips[li];
        if (state->trailing_blocks.size() < skip.distance) continue;
        // The trailing `distance` block units must be exactly the previous
        // `distance` heights (contiguity).
        uint64_t h = block.header.height;
        bool contiguous = true;
        size_t nb = state->trailing_blocks.size();
        for (uint64_t k = 0; k < skip.distance; ++k) {
          if (state->trailing_blocks[nb - 1 - k] != h - 1 - k) {
            contiguous = false;
            break;
          }
        }
        if (!contiguous) continue;
        // The skip's summed multiset must still avoid the clause.
        const QueryRuntime& rt = runtime_.at(query_id);
        if (rt.view->ClauseIntersects(engine_, skip.w, clause_idx)) continue;
        // Replace the run with one skip unit.
        for (uint64_t k = 0; k < skip.distance; ++k) {
          state->units.pop_back();
          state->trailing_blocks.pop_back();
        }
        typename LazyBatch<Engine>::SkipUnit su;
        su.from_height = block.header.height;
        su.level = static_cast<uint32_t>(li);
        su.distance = skip.distance;
        su.digest = skip.digest;
        for (size_t other = 0; other < block.skips.size(); ++other) {
          if (other != li) {
            su.other_entry_hashes.push_back(block.skips[other].entry_hash);
          }
        }
        state->units.emplace_back(std::move(su));
        break;
      }
    }
    typename LazyBatch<Engine>::BlockUnit bu;
    bu.height = block.header.height;
    const core::IndexNode<Engine>& root = block.nodes[block.root_index];
    bu.inner_hash = root.IsLeaf()
                        ? block.objects[root.object_index].Hash()
                        : crypto::HashPair(block.nodes[root.left].hash,
                                           block.nodes[root.right].hash);
    bu.digest = root.digest;
    state->units.emplace_back(std::move(bu));
    state->trailing_blocks.push_back(block.header.height);
    state->w_sum = state->w_sum.SumWith(RootW(block));
  }

  LazyBatch<Engine> FlushState(uint32_t query_id, LazyState* state) {
    LazyBatch<Engine> batch;
    batch.query_id = query_id;
    if (!state->units.empty()) {
      batch.has_pending = true;
      batch.clause_idx = state->clause_idx;
      batch.units = std::move(state->units);
      // Heights covered: derive from the unit list.
      batch.from_height = UnitLow(batch.units.front());
      batch.to_height = UnitHigh(batch.units.back());
      const QueryRuntime& rt = runtime_.at(query_id);
      auto digest = engine_.Digest(state->w_sum);
      auto proof = cache_.GetOrProve(engine_, digest, state->w_sum,
                                     rt.tq.clauses[batch.clause_idx]);
      assert(proof.ok());
      batch.agg_proof = proof.TakeValue();
    }
    *state = LazyState{};
    return batch;
  }

  static uint64_t UnitLow(const typename LazyBatch<Engine>::Unit& u) {
    if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(u)) {
      return std::get<typename LazyBatch<Engine>::BlockUnit>(u).height;
    }
    const auto& s = std::get<typename LazyBatch<Engine>::SkipUnit>(u);
    return s.from_height - s.distance;
  }
  static uint64_t UnitHigh(const typename LazyBatch<Engine>::Unit& u) {
    if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(u)) {
      return std::get<typename LazyBatch<Engine>::BlockUnit>(u).height;
    }
    const auto& s = std::get<typename LazyBatch<Engine>::SkipUnit>(u);
    return s.from_height - 1;
  }

  Engine engine_;
  ChainConfig config_;
  Options options_;
  IpTree ip_tree_;
  std::map<uint32_t, QueryRuntime> runtime_;
  std::map<uint32_t, LazyState> lazy_state_;
  ProofCache<Engine> cache_;
  std::vector<uint64_t> mapped_w_;  // per-node mapping scratch
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_SUBSCRIPTION_H_

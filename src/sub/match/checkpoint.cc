#include "sub/match/checkpoint.h"

#include "common/crc32c.h"

namespace vchain::sub {

namespace {

// "VSUBCKP1" little-endian.
constexpr uint64_t kMagic = 0x31504b4342555356ull;
constexpr uint32_t kVersion = 1;
// magic u64 | version u32 | seq u64 | payload_len u32 | crc u32
constexpr size_t kHeaderSize = 8 + 4 + 8 + 4 + 4;
// Refuse absurd frames before allocating (a corrupt length field must not
// drive a multi-GB read).
constexpr uint64_t kMaxPayload = 1ull << 32;

uint32_t FrameCrc(uint64_t seq, ByteSpan payload) {
  ByteWriter w;
  w.PutU64(seq);
  w.PutFixed(payload);
  return Crc32c(ByteSpan(w.bytes().data(), w.bytes().size()));
}

}  // namespace

CheckpointSlots::CheckpointSlots(store::Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

std::string CheckpointSlots::SlotFileName(int slot) {
  return slot == 0 ? "SUBCKPT-A" : "SUBCKPT-B";
}

std::string CheckpointSlots::PathOf(int slot) const {
  return dir_ + "/" + SlotFileName(slot);
}

CheckpointSlots::Slot CheckpointSlots::ReadSlot(int slot) const {
  Slot out;
  auto exists = env_->FileExists(PathOf(slot));
  if (!exists.ok() || !exists.value()) return out;
  auto file = env_->OpenFile(PathOf(slot));
  if (!file.ok()) return out;
  auto size = file.value()->Size();
  if (!size.ok() || size.value() < kHeaderSize) return out;
  Bytes header(kHeaderSize);
  auto n = file.value()->Read(0, header.data(), kHeaderSize);
  if (!n.ok() || n.value() != kHeaderSize) return out;
  ByteReader r(ByteSpan(header.data(), header.size()));
  uint64_t magic = 0, seq = 0;
  uint32_t version = 0, payload_len = 0, crc = 0;
  if (!r.GetU64(&magic).ok() || magic != kMagic) return out;
  if (!r.GetU32(&version).ok() || version != kVersion) return out;
  if (!r.GetU64(&seq).ok()) return out;
  if (!r.GetU32(&payload_len).ok()) return out;
  if (!r.GetU32(&crc).ok()) return out;
  if (payload_len > kMaxPayload ||
      size.value() < kHeaderSize + uint64_t{payload_len}) {
    return out;  // torn write: frame truncated mid-payload
  }
  Bytes payload(payload_len);
  n = file.value()->Read(kHeaderSize, payload.data(), payload_len);
  if (!n.ok() || n.value() != payload_len) return out;
  if (FrameCrc(seq, ByteSpan(payload.data(), payload.size())) != crc) {
    return out;  // bit rot or torn header/payload mix
  }
  out.valid = true;
  out.seq = seq;
  out.payload = std::move(payload);
  return out;
}

Status CheckpointSlots::Open() {
  have_ = false;
  last_seq_ = 0;
  payload_.clear();
  for (int slot = 0; slot < 2; ++slot) {
    Slot s = ReadSlot(slot);
    if (s.valid && (!have_ || s.seq > last_seq_)) {
      have_ = true;
      last_seq_ = s.seq;
      payload_ = std::move(s.payload);
    }
  }
  return Status::OK();
}

Status CheckpointSlots::WriteNext(ByteSpan payload) {
  const uint64_t seq = last_seq_ + 1;
  const int slot = static_cast<int>(seq % 2);
  ByteWriter w;
  w.PutU64(kMagic);
  w.PutU32(kVersion);
  w.PutU64(seq);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(FrameCrc(seq, payload));
  w.PutFixed(payload);
  auto file = env_->OpenFile(PathOf(slot));
  VCHAIN_RETURN_IF_ERROR(file.status());
  VCHAIN_RETURN_IF_ERROR(
      file.value()->Write(0, w.bytes().data(), w.bytes().size()));
  // Drop any stale tail from a previous, larger frame in this slot.
  VCHAIN_RETURN_IF_ERROR(file.value()->Truncate(w.bytes().size()));
  VCHAIN_RETURN_IF_ERROR(file.value()->Sync());
  // Make the slot's directory entry durable (first write creates the file).
  VCHAIN_RETURN_IF_ERROR(env_->SyncDir(dir_));
  last_seq_ = seq;
  have_ = true;
  payload_.assign(payload.begin(), payload.end());
  return Status::OK();
}

}  // namespace vchain::sub

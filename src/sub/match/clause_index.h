// The clause-inverted index behind the indexed subscription matcher.
//
// Pub/sub at scale inverts matching: instead of scanning every standing
// query per block (linear in subscriptions), index the *clauses* of the
// registered CNFs and let the block's attributes drive lookups. Every
// transformed clause — a multiset of attribute elements — is interned once
// by content and posted under each of its engine-mapped element ids:
//
//   * numeric range predicates arrive as their dyadic cover (§5.3), so the
//     posting map doubles as a per-dimension interval tree laid out on the
//     dyadic grid: each cover element is a segment-tree node for an interval
//     of the domain, and a block value's root-to-leaf prefix path is exactly
//     the stabbing query that hits every registered interval containing it;
//   * keyword predicates post their (mapped) keyword elements — classic
//     posting lists.
//
// Everything is keyed by *mapped* ids, not raw elements, because the match
// relation the SP must reproduce bit-for-bit (core::MappedQueryView) runs in
// the engine's mapped universe — engines whose mapping folds the element
// space (acc2's universe reduction) make distinct raw elements collide, and
// an index keyed by raw values would miss those hits and diverge from the
// linear matcher.
//
// Per block the matcher marks every mapped element of the block's root
// multiset (epoch-stamped, O(1) reset); a clause is "hit" iff some posting
// matched, which is exactly "the mapped multisets intersect". A query is a
// match candidate iff all of its clauses are hit; otherwise its exclusion
// clause is the first non-hit clause in the linear matcher's wrap order.
//
// Interning is refcounted: clauses shared by many subscriptions (the common
// case the paper's §7.1 BCIF exploits) cost one entry and one posting set
// total, and unsubscribing decrements instead of rebuilding. Content
// equality is exact (full multiset compare under the hash bucket), so two
// distinct clauses never alias.

#ifndef VCHAIN_SUB_MATCH_CLAUSE_INDEX_H_
#define VCHAIN_SUB_MATCH_CLAUSE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "accum/multiset.h"
#include "common/status.h"

namespace vchain::sub {

class ClauseIndex {
 public:
  /// Intern `set` (the raw transformed clause) with its engine-mapped
  /// element ids (`mapped`: deduplicated — order irrelevant). Returns the
  /// clause id; re-interning identical content bumps a refcount and returns
  /// the existing id. `is_range` only feeds stats (range clauses are dyadic
  /// interval registrations, keyword clauses plain posting lists).
  uint32_t Intern(const accum::Multiset& set, std::vector<uint64_t> mapped,
                  bool is_range);

  /// Drop one reference; on the last release the clause and its postings
  /// are removed (ids are recycled).
  void Release(uint32_t clause_id);

  /// The raw clause multiset (for proofs: same bytes as the registering
  /// query's TransformedQuery clause, so proof-cache keys coincide).
  const accum::Multiset& SetOf(uint32_t clause_id) const {
    return clauses_[clause_id].set;
  }

  /// The clause's engine-mapped element ids, sorted ascending (the lazy
  /// matcher intersects these against mapped skip-entry multisets).
  const std::vector<uint64_t>& MappedOf(uint32_t clause_id) const {
    return clauses_[clause_id].mapped;
  }

  // --- per-block probe ------------------------------------------------------

  /// Start a new block epoch (invalidates all hit marks in O(1)).
  void BeginBlock() { ++epoch_; }

  /// Mark every clause posting `mapped_element`; called once per mapped
  /// element of the block's root multiset.
  void MarkElement(uint64_t mapped_element) {
    auto it = postings_.find(mapped_element);
    if (it == postings_.end()) return;
    for (uint32_t cid : it->second) clauses_[cid].hit_epoch = epoch_;
  }

  /// True iff a marked element belongs to the clause — i.e. the clause's
  /// mapped set intersects the block's mapped root multiset.
  bool IsHit(uint32_t clause_id) const {
    return clauses_[clause_id].hit_epoch == epoch_;
  }

  // --- stats ----------------------------------------------------------------

  size_t NumClauses() const { return live_clauses_; }
  size_t NumRangeClauses() const { return live_range_clauses_; }
  size_t NumPostings() const { return num_postings_; }

 private:
  struct Clause {
    accum::Multiset set;
    std::vector<uint64_t> mapped;
    uint64_t content_hash = 0;
    uint32_t refs = 0;
    uint64_t hit_epoch = 0;
    bool is_range = false;
  };

  static uint64_t HashSet(const accum::Multiset& set);

  std::vector<Clause> clauses_;
  std::vector<uint32_t> free_ids_;
  /// mapped element id -> interned clause ids containing it. One entry per
  /// *distinct clause*, not per subscriber — the whole point.
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  /// content hash -> candidate ids (full compare resolves collisions).
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_content_;
  uint64_t epoch_ = 0;
  size_t live_clauses_ = 0;
  size_t live_range_clauses_ = 0;
  size_t num_postings_ = 0;
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_MATCH_CLAUSE_INDEX_H_

// Matcher selection for the subscription engine (src/sub/match/).
//
// Two matchers produce bit-identical notifications:
//
//   * kLinear  — the original per-query scan: every block is matched against
//     every standing query independently (§7's presentation).
//   * kIndexed — the clause-inverted index (clause_index.h): the block's
//     attributes drive matching, full CNF evaluation runs only for queries
//     whose clauses were all hit, and VO work items are built once per
//     matched group instead of once per subscriber.
//
// The enum lives in its own header so api/service.h can expose the knob
// without pulling in the templated subscription machinery.

#ifndef VCHAIN_SUB_MATCH_MATCHER_H_
#define VCHAIN_SUB_MATCH_MATCHER_H_

#include <cstdint>
#include <string_view>

namespace vchain::sub {

enum class MatcherMode : uint8_t {
  kLinear = 0,
  kIndexed = 1,
};

inline const char* MatcherModeName(MatcherMode mode) {
  switch (mode) {
    case MatcherMode::kLinear:
      return "linear";
    case MatcherMode::kIndexed:
      return "indexed";
  }
  return "unknown";
}

inline bool MatcherModeFromName(std::string_view name, MatcherMode* out) {
  if (name == "linear") {
    *out = MatcherMode::kLinear;
    return true;
  }
  if (name == "indexed") {
    *out = MatcherMode::kIndexed;
    return true;
  }
  return false;
}

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_MATCH_MATCHER_H_

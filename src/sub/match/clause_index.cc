#include "sub/match/clause_index.h"

#include <algorithm>

#include "common/serde.h"

namespace vchain::sub {

uint64_t ClauseIndex::HashSet(const accum::Multiset& set) {
  // FNV-1a over the canonical (element, count) sequence; collisions are
  // resolved by a full compare in Intern, so this only needs to spread.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const accum::Multiset::Entry& e : set.entries()) {
    mix(e.element);
    mix(e.count);
  }
  return h;
}

uint32_t ClauseIndex::Intern(const accum::Multiset& set,
                             std::vector<uint64_t> mapped, bool is_range) {
  uint64_t h = HashSet(set);
  auto bucket = by_content_.find(h);
  if (bucket != by_content_.end()) {
    for (uint32_t cid : bucket->second) {
      if (clauses_[cid].set == set) {
        ++clauses_[cid].refs;
        return cid;
      }
    }
  }
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<uint32_t>(clauses_.size());
    clauses_.emplace_back();
  }
  Clause& c = clauses_[id];
  c.set = set;
  std::sort(mapped.begin(), mapped.end());
  mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
  c.mapped = std::move(mapped);
  c.content_hash = h;
  c.refs = 1;
  c.hit_epoch = 0;
  c.is_range = is_range;
  for (uint64_t m : c.mapped) {
    postings_[m].push_back(id);
    ++num_postings_;
  }
  by_content_[h].push_back(id);
  ++live_clauses_;
  if (is_range) ++live_range_clauses_;
  return id;
}

void ClauseIndex::Release(uint32_t clause_id) {
  Clause& c = clauses_[clause_id];
  if (c.refs == 0) return;  // already dead (defensive)
  if (--c.refs > 0) return;
  for (uint64_t m : c.mapped) {
    auto it = postings_.find(m);
    if (it == postings_.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), clause_id), ids.end());
    if (ids.empty()) postings_.erase(it);
    --num_postings_;
  }
  auto bucket = by_content_.find(c.content_hash);
  if (bucket != by_content_.end()) {
    auto& ids = bucket->second;
    ids.erase(std::remove(ids.begin(), ids.end(), clause_id), ids.end());
    if (ids.empty()) by_content_.erase(bucket);
  }
  c.set = accum::Multiset();
  c.mapped.clear();
  c.mapped.shrink_to_fit();
  --live_clauses_;
  if (c.is_range) --live_range_clauses_;
  free_ids_.push_back(clause_id);
}

}  // namespace vchain::sub

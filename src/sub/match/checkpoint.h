// Subscription checkpoint persistence.
//
// A standing subscription SP must survive restarts without replaying the
// chain from genesis: the checkpoint records (a) the next unprocessed block
// height, (b) the registered query set with its ids and the id allocator
// position, and (c) pending lazy-scheme runs (clause, aggregated multiset,
// evidence units). Together that is exactly SubscriptionManager's
// SubscriptionSnapshot plus the drain cursor.
//
// Durability goes through the same Env seam as the block store, so the
// FaultInjection crash tests drive this path too. The Env surface has no
// atomic rename, so the classic write-tmp-rename dance is unavailable;
// instead two *alternating slot files* (SUBCKPT-A / SUBCKPT-B) are used:
// a write with sequence number s goes to slot s % 2, fully framed
// (magic, version, seq, length, CRC32C over seq + payload) and fsync'd.
// A torn or corrupt write trashes at most the slot it targeted — the other
// slot still holds the previous complete checkpoint, and recovery picks the
// highest-sequence slot whose frame validates. The CRC covers the sequence
// number so a bit-flipped seq cannot reorder recovery.
//
// Recovery contract: the checkpoint is written *after* the notifications of
// the blocks it covers were handed to the publisher, so a crash between
// publishing and checkpointing re-delivers those blocks' notifications on
// restart — at-least-once, never skipped. Subscribers dedup by
// (query_id, height), which the notification already carries.

#ifndef VCHAIN_SUB_MATCH_CHECKPOINT_H_
#define VCHAIN_SUB_MATCH_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "store/env.h"
#include "sub/subscription.h"

namespace vchain::sub {

/// The two-slot frame store. Engine-agnostic: payloads are opaque bytes.
class CheckpointSlots {
 public:
  /// `dir` must exist (the store directory). Does not touch the disk until
  /// Open/WriteNext.
  CheckpointSlots(store::Env* env, std::string dir);

  /// Scan both slots; after Open, HasCheckpoint/ReadLatest reflect the best
  /// valid slot. Invalid/missing slots are not an error — only I/O is.
  Status Open();

  bool HasCheckpoint() const { return have_; }
  uint64_t latest_seq() const { return last_seq_; }

  /// Payload of the highest-sequence valid slot (requires HasCheckpoint).
  const Bytes& LatestPayload() const { return payload_; }

  /// Frame + write + fsync the next checkpoint into the alternate slot.
  /// On failure the previous checkpoint is untouched (it lives in the other
  /// slot) and the store stays usable.
  Status WriteNext(ByteSpan payload);

  static std::string SlotFileName(int slot);  // "SUBCKPT-A" / "SUBCKPT-B"

 private:
  struct Slot {
    bool valid = false;
    uint64_t seq = 0;
    Bytes payload;
  };
  Slot ReadSlot(int slot) const;
  std::string PathOf(int slot) const;

  store::Env* env_;
  std::string dir_;
  bool have_ = false;
  uint64_t last_seq_ = 0;
  Bytes payload_;
};

// --- payload serde ----------------------------------------------------------

template <typename Engine>
void SerializeLazyUnit(const Engine& e,
                       const typename LazyBatch<Engine>::Unit& u,
                       ByteWriter* w) {
  if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(u)) {
    const auto& b = std::get<typename LazyBatch<Engine>::BlockUnit>(u);
    w->PutU8(0);
    w->PutU64(b.height);
    w->PutFixed(crypto::HashSpan(b.inner_hash));
    e.SerializeDigest(b.digest, w);
  } else {
    const auto& s = std::get<typename LazyBatch<Engine>::SkipUnit>(u);
    w->PutU8(1);
    w->PutU64(s.from_height);
    w->PutU32(s.level);
    w->PutU64(s.distance);
    e.SerializeDigest(s.digest, w);
    w->PutU32(static_cast<uint32_t>(s.other_entry_hashes.size()));
    for (const chain::Hash32& h : s.other_entry_hashes) {
      w->PutFixed(crypto::HashSpan(h));
    }
  }
}

template <typename Engine>
Status DeserializeLazyUnit(const Engine& e, ByteReader* r,
                           typename LazyBatch<Engine>::Unit* out) {
  uint8_t tag = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU8(&tag));
  Bytes buf;
  if (tag == 0) {
    typename LazyBatch<Engine>::BlockUnit b;
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&b.height));
    VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
    std::copy(buf.begin(), buf.end(), b.inner_hash.begin());
    VCHAIN_RETURN_IF_ERROR(e.DeserializeDigest(r, &b.digest));
    *out = std::move(b);
    return Status::OK();
  }
  if (tag != 1) return Status::Corruption("bad lazy unit tag");
  typename LazyBatch<Engine>::SkipUnit s;
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&s.from_height));
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&s.level));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&s.distance));
  VCHAIN_RETURN_IF_ERROR(e.DeserializeDigest(r, &s.digest));
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 10) return Status::Corruption("too many skip entry hashes");
  s.other_entry_hashes.resize(n);
  for (chain::Hash32& h : s.other_entry_hashes) {
    VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
    std::copy(buf.begin(), buf.end(), h.begin());
  }
  *out = std::move(s);
  return Status::OK();
}

/// Payload = drain cursor + full subscription snapshot.
template <typename Engine>
void SerializeSubCheckpoint(const Engine& e, uint64_t next_height,
                            const SubscriptionSnapshot<Engine>& snap,
                            ByteWriter* w) {
  w->PutU64(next_height);
  w->PutU32(snap.next_query_id);
  w->PutU32(static_cast<uint32_t>(snap.queries.size()));
  for (const auto& entry : snap.queries) {
    w->PutU32(entry.id);
    core::SerializeQuery(entry.query, w);
  }
  w->PutU32(static_cast<uint32_t>(snap.lazy.size()));
  for (const auto& lz : snap.lazy) {
    w->PutU32(lz.id);
    w->PutU32(lz.clause_idx);
    lz.w_sum.Serialize(w);
    w->PutU32(static_cast<uint32_t>(lz.units.size()));
    for (const auto& u : lz.units) SerializeLazyUnit(e, u, w);
    w->PutU32(static_cast<uint32_t>(lz.trailing_blocks.size()));
    for (uint64_t h : lz.trailing_blocks) w->PutU64(h);
  }
}

template <typename Engine>
Status DeserializeSubCheckpoint(const Engine& e, ByteReader* r,
                                uint64_t* next_height,
                                SubscriptionSnapshot<Engine>* snap) {
  *snap = SubscriptionSnapshot<Engine>{};
  VCHAIN_RETURN_IF_ERROR(r->GetU64(next_height));
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&snap->next_query_id));
  uint32_t n_queries = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_queries));
  if (n_queries > 1u << 24) return Status::Corruption("too many queries");
  snap->queries.resize(n_queries);
  for (auto& entry : snap->queries) {
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&entry.id));
    VCHAIN_RETURN_IF_ERROR(core::DeserializeQuery(r, &entry.query));
  }
  uint32_t n_lazy = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_lazy));
  if (n_lazy > 1u << 24) return Status::Corruption("too many lazy entries");
  snap->lazy.resize(n_lazy);
  for (auto& lz : snap->lazy) {
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&lz.id));
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&lz.clause_idx));
    VCHAIN_RETURN_IF_ERROR(Multiset::Deserialize(r, &lz.w_sum));
    uint32_t n_units = 0;
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_units));
    if (n_units > 1u << 24) return Status::Corruption("too many lazy units");
    lz.units.resize(n_units);
    for (auto& u : lz.units) {
      VCHAIN_RETURN_IF_ERROR(DeserializeLazyUnit(e, r, &u));
    }
    uint32_t n_trail = 0;
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_trail));
    if (n_trail > 1u << 24) return Status::Corruption("too many trailing");
    lz.trailing_blocks.resize(n_trail);
    for (uint64_t& h : lz.trailing_blocks) {
      VCHAIN_RETURN_IF_ERROR(r->GetU64(&h));
    }
  }
  return Status::OK();
}

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_MATCH_CHECKPOINT_H_

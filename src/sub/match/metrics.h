// Subscription-tier instruments (vchain_sub_*), registered once per process
// against the default registry. The matcher is engine-templated, so the
// instruments live behind a plain struct with a function-local static —
// the same shape api/service.cc uses for the query-stage histograms.
//
// Families:
//   vchain_sub_registered                 gauge     live standing queries
//   vchain_sub_match_seconds              histogram per-block matching wall
//   vchain_sub_candidates_total           counter   queries needing full CNF
//                                                   tree evaluation
//   vchain_sub_matched_total              counter   notifications with >= 1
//                                                   matching object
//   vchain_sub_notified_total             counter   notifications emitted
//   vchain_sub_checkpoint_writes_total    counter   checkpoint slots written
//   vchain_sub_checkpoint_recoveries_total counter  restarts resumed from a
//                                                   checkpoint
//   vchain_sub_redelivered_total          counter   events regenerated for a
//                                                   cursor behind the bounded
//                                                   event log

#ifndef VCHAIN_SUB_MATCH_METRICS_H_
#define VCHAIN_SUB_MATCH_METRICS_H_

#include "common/metrics.h"

namespace vchain::sub {

struct SubMetrics {
  metrics::Gauge* registered;
  metrics::Histogram* match_seconds;
  metrics::Counter* candidates;
  metrics::Counter* matched;
  metrics::Counter* notified;
  metrics::Counter* checkpoint_writes;
  metrics::Counter* checkpoint_recoveries;
  metrics::Counter* redelivered_events;

  static SubMetrics& Get() {
    static SubMetrics m = [] {
      auto& r = metrics::Registry::Default();
      SubMetrics out;
      out.registered = r.GetGauge("vchain_sub_registered",
                                  "Standing subscription queries registered");
      out.match_seconds = r.GetLatencyHistogram(
          "vchain_sub_match_seconds",
          "Per-block subscription matching latency");
      out.candidates = r.GetCounter(
          "vchain_sub_candidates_total",
          "Subscriptions whose clauses were all hit by a block and required "
          "full CNF proof-tree evaluation");
      out.matched = r.GetCounter(
          "vchain_sub_matched_total",
          "Subscription notifications containing at least one match");
      out.notified = r.GetCounter("vchain_sub_notified_total",
                                  "Subscription notifications emitted");
      out.checkpoint_writes =
          r.GetCounter("vchain_sub_checkpoint_writes_total",
                       "Subscription checkpoint slots written");
      out.checkpoint_recoveries = r.GetCounter(
          "vchain_sub_checkpoint_recoveries_total",
          "Service restarts that resumed subscriptions from a checkpoint");
      out.redelivered_events = r.GetCounter(
          "vchain_sub_redelivered_total",
          "Subscription events regenerated for a cursor that fell behind "
          "the bounded event log");
      return out;
    }();
    return m;
  }
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_MATCH_METRICS_H_

#include "sub/ip_tree.h"

#include <algorithm>

namespace vchain::sub {

std::vector<CellBox> CellBox::Split() const {
  std::vector<CellBox> out;
  size_t d = dims.size();
  out.reserve(size_t{1} << d);
  for (uint64_t combo = 0; combo < (uint64_t{1} << d); ++combo) {
    CellBox child = *this;
    for (size_t i = 0; i < d; ++i) {
      child.dims[i].prefix_len += 1;
      child.dims[i].prefix_bits =
          (dims[i].prefix_bits << 1) | ((combo >> i) & 1);
    }
    out.push_back(std::move(child));
  }
  return out;
}

CellBox::Cover CellBox::CoverBy(const Query& q,
                                const NumericSchema& schema) const {
  bool full = true;
  for (uint32_t d = 0; d < dims.size(); ++d) {
    uint64_t cell_lo = dims[d].Lo(schema);
    uint64_t cell_hi = dims[d].Hi(schema);
    // Missing range predicate on a dimension = full domain.
    uint64_t q_lo = 0, q_hi = schema.MaxValue();
    for (const core::RangePredicate& r : q.ranges) {
      if (r.dim == d) {
        q_lo = r.lo;
        q_hi = r.hi;
      }
    }
    if (q_hi < cell_lo || q_lo > cell_hi) return Cover::kNone;
    if (q_lo > cell_lo || q_hi < cell_hi) full = false;
  }
  return full ? Cover::kFull : Cover::kPartial;
}

bool CellBox::ContainsPoint(const std::vector<uint64_t>& v,
                            const NumericSchema& schema) const {
  for (uint32_t d = 0; d < dims.size(); ++d) {
    if (d >= v.size() || !dims[d].Contains(v[d], schema)) return false;
  }
  return true;
}

bool CellBox::ContainsCell(const CellBox& other,
                           const NumericSchema& schema) const {
  if (other.dims.size() != dims.size()) return false;
  for (uint32_t d = 0; d < dims.size(); ++d) {
    if (other.dims[d].Lo(schema) < dims[d].Lo(schema) ||
        other.dims[d].Hi(schema) > dims[d].Hi(schema)) {
      return false;
    }
  }
  return true;
}

void CellBox::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(dims.size()));
  for (const DyadicRange& r : dims) {
    w->PutU64(r.prefix_bits);
    w->PutU32(r.prefix_len);
  }
}

Status CellBox::Deserialize(ByteReader* r, CellBox* out) {
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 64) return Status::Corruption("too many cell dimensions");
  out->dims.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->dims[i].prefix_bits));
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->dims[i].prefix_len));
  }
  return Status::OK();
}

namespace {

/// Does the intersection of `box` and q's range lie inside the cell union?
bool CoveredRec(const CellBox& box, const Query& q,
                const std::vector<CellBox>& cells,
                const NumericSchema& schema, uint32_t depth_limit) {
  switch (box.CoverBy(q, schema)) {
    case CellBox::Cover::kNone:
      return true;  // nothing of q's range in here
    case CellBox::Cover::kFull:
    case CellBox::Cover::kPartial:
      break;
  }
  for (const CellBox& c : cells) {
    if (c.ContainsCell(box, schema)) return true;
  }
  if (box.Depth() >= depth_limit) return false;
  for (const CellBox& child : box.Split()) {
    if (!CoveredRec(child, q, cells, schema, depth_limit)) return false;
  }
  return true;
}

}  // namespace

bool CellsCoverQueryRange(const Query& q, const std::vector<CellBox>& cells,
                          const NumericSchema& schema) {
  uint32_t deepest = 0;
  for (const CellBox& c : cells) {
    deepest = std::max(deepest, c.Depth());
  }
  // One level past the deepest cell is enough: below that, every dyadic box
  // is either inside a cell or disjoint from all of them.
  uint32_t limit = std::min(deepest + 1, schema.bits);
  return CoveredRec(CellBox::Root(schema), q, cells, schema, limit);
}

uint32_t IpTree::Register(const Query& q) {
  uint32_t id = next_id_++;
  QueryState state;
  state.query = q;
  queries_.emplace(id, std::move(state));
  InsertIntoGrid(id);
  return id;
}

Status IpTree::RegisterWithId(uint32_t id, const Query& q) {
  auto it = queries_.find(id);
  if (it != queries_.end() && it->second.active) {
    return Status::InvalidArgument("subscription id already registered");
  }
  if (it != queries_.end()) queries_.erase(it);
  QueryState state;
  state.query = q;
  queries_.emplace(id, std::move(state));
  if (id >= next_id_) next_id_ = id + 1;
  InsertIntoGrid(id);
  return Status::OK();
}

void IpTree::ReserveIds(uint32_t next_id) {
  if (next_id > next_id_) next_id_ = next_id;
}

void IpTree::Deregister(uint32_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  it->second.active = false;
}

std::vector<uint32_t> IpTree::ActiveQueryIds() const {
  std::vector<uint32_t> out;
  for (const auto& [id, state] : queries_) {
    if (state.active) out.push_back(id);
  }
  return out;
}

size_t IpTree::NodeCount() const { return nodes_.size(); }

void IpTree::InsertIntoGrid(uint32_t id) {
  QueryState& st = queries_.at(id);
  st.cells.clear();
  st.indexable = true;
  if (nodes_.empty()) {
    Node root;
    root.box = CellBox::Root(schema_);
    nodes_.push_back(std::move(root));
  }
  InsertRec(0, id);
}

void IpTree::InsertRec(int32_t node_idx, uint32_t id) {
  // nodes_ may reallocate under this frame (SplitNode appends), so re-index
  // nodes_[node_idx] after any call that can grow the vector.
  CellBox::Cover cover =
      nodes_[node_idx].box.CoverBy(queries_.at(id).query, schema_);
  if (cover == CellBox::Cover::kNone) return;
  if (cover == CellBox::Cover::kFull) {
    nodes_[node_idx].full.push_back(id);
    queries_.at(id).cells.push_back(nodes_[node_idx].box);
    return;
  }
  nodes_[node_idx].partial.push_back(id);
  if (nodes_[node_idx].children.empty() && !SplitNode(node_idx)) {
    // Capped leaf: the query stays partial here, so the grid cannot resolve
    // it (the "switch back" rule). Leaves that refused a split never get
    // another chance — the caps are monotone — keeping cells frozen.
    queries_.at(id).indexable = false;
    return;
  }
  std::vector<int32_t> children = nodes_[node_idx].children;
  for (int32_t c : children) InsertRec(c, id);
}

bool IpTree::SplitNode(int32_t node_idx) {
  size_t fanout = size_t{1} << schema_.dims;
  if (nodes_[node_idx].box.Depth() >= options_.max_depth ||
      nodes_[node_idx].box.Depth() >= schema_.bits ||
      nodes_.size() + fanout > options_.max_nodes) {
    return false;
  }
  std::vector<CellBox> child_boxes = nodes_[node_idx].box.Split();
  std::vector<int32_t> child_ids;
  child_ids.reserve(child_boxes.size());
  for (CellBox& cb : child_boxes) {
    Node child;
    child.box = std::move(cb);
    child_ids.push_back(static_cast<int32_t>(nodes_.size()));
    nodes_.push_back(std::move(child));
  }
  // No redistribution: a leaf with older partial queries is necessarily
  // capped (split-once semantics), so a successful split only ever serves
  // the query currently being inserted — its recursion descends next.
  nodes_[node_idx].children = std::move(child_ids);
  return true;
}

}  // namespace vchain::sub

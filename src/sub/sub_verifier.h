// Light-node verification of subscription notifications and lazy batches
// (user side of §7).
//
// A `SubscriptionSession` tracks, per registered query, the next block
// height for which evidence is still owed, so that a silent or withholding
// SP is detected: every height must eventually be covered by a verified
// notification (realtime) or batch (lazy), in order.
//
// Exclusion semantics per pruned mismatch node:
//   * a clause exclusion proves every object below fails that CNF clause;
//   * cell exclusions prove no object below lies in the given grid cells —
//     sufficient only when the cells jointly cover the query's whole range
//     box, which the verifier checks geometrically (CellsCoverQueryRange).

#ifndef VCHAIN_SUB_SUB_VERIFIER_H_
#define VCHAIN_SUB_SUB_VERIFIER_H_

#include <vector>

#include "chain/light_client.h"
#include "core/verifier.h"
#include "sub/subscription.h"

namespace vchain::sub {

template <typename Engine>
class SubVerifier {
 public:
  SubVerifier(const Engine& engine, const ChainConfig& config,
              const chain::LightClient* lc)
      : engine_(engine), config_(config), lc_(lc) {}

  /// Verify a realtime notification for `q` against the block header at
  /// notif.height.
  Status VerifyNotification(const Query& q,
                            const SubNotification<Engine>& notif) const {
    if (notif.height >= lc_->Height()) {
      return Status::VerifyFailed("notification for unknown block");
    }
    TransformedQuery tq = core::TransformQuery(q, config_.schema);
    MappedQueryView view(engine_, tq);
    std::vector<typename Engine::QueryDigest> clause_digests;
    for (const Multiset& c : tq.clauses) {
      clause_digests.push_back(engine_.QueryDigestOf(c));
    }

    const chain::BlockHeader& header = lc_->HeaderAt(notif.height);
    std::vector<bool> used(notif.objects.size(), false);
    chain::Hash32 root;
    if (notif.root < 0) {
      // Flat (nil-mode) notification.
      std::vector<chain::Hash32> leaves;
      for (const SubVoNode<Engine>& n : notif.nodes) {
        if (n.kind == VoKind::kExpand) {
          return Status::VerifyFailed("expand node in flat notification");
        }
        chain::Hash32 h;
        VCHAIN_RETURN_IF_ERROR(
            VerifyLeafish(n, q, tq, view, clause_digests, notif, &used, &h));
        leaves.push_back(h);
      }
      root = chain::MerkleRootOf(leaves);
    } else {
      std::vector<int> visited(notif.nodes.size(), 0);
      VCHAIN_RETURN_IF_ERROR(VerifyNode(notif, notif.root, q, tq, view,
                                        clause_digests, &used, &visited,
                                        &root));
    }
    if (root != header.object_root) {
      return Status::VerifyFailed("notification root mismatch");
    }
    for (bool u : used) {
      if (!u) return Status::VerifyFailed("unreferenced object");
    }
    return Status::OK();
  }

  /// Verify a lazy batch for `q`. `expected_from` is the first height still
  /// owed to this subscriber; on success returns (via out param) the next
  /// height owed after this batch.
  Status VerifyLazyBatch(const Query& q, const LazyBatch<Engine>& batch,
                         uint64_t expected_from, uint64_t* next_owed) const {
    TransformedQuery tq = core::TransformQuery(q, config_.schema);
    uint64_t cursor = expected_from;
    if (batch.has_pending) {
      if (batch.clause_idx >= tq.clauses.size()) {
        return Status::VerifyFailed("lazy clause index out of range");
      }
      if (batch.from_height != expected_from) {
        return Status::VerifyFailed("lazy batch leaves a gap");
      }
      if (batch.units.empty()) {
        return Status::VerifyFailed("pending batch without units");
      }
      std::vector<typename Engine::ObjectDigest> digests;
      for (const auto& unit : batch.units) {
        VCHAIN_RETURN_IF_ERROR(VerifyUnitStructure(unit, &cursor, &digests));
      }
      if (cursor != batch.to_height + 1) {
        return Status::VerifyFailed("lazy batch coverage inconsistent");
      }
      // One aggregated proof covers the whole run.
      if constexpr (Engine::kSupportsAggregation) {
        if (!batch.agg_proof.has_value()) {
          return Status::VerifyFailed("missing aggregated proof");
        }
        typename Engine::ObjectDigest summed = engine_.SumDigests(digests);
        typename Engine::QueryDigest cd =
            engine_.QueryDigestOf(tq.clauses[batch.clause_idx]);
        if (!engine_.VerifyDisjoint(summed, cd, *batch.agg_proof)) {
          return Status::VerifyFailed("aggregated lazy proof rejected");
        }
      } else {
        return Status::VerifyFailed(
            "lazy batches require an aggregating engine");
      }
    }
    if (batch.match.has_value()) {
      if (batch.match->height != cursor) {
        return Status::VerifyFailed("match block out of order");
      }
      // The notification carries its own object list.
      SubNotification<Engine> notif = *batch.match;
      VCHAIN_RETURN_IF_ERROR(VerifyNotification(q, notif));
      ++cursor;
    }
    *next_owed = cursor;
    return Status::OK();
  }

 private:
  Status VerifyNode(
      const SubNotification<Engine>& notif, int32_t idx, const Query& q,
      const TransformedQuery& tq, const MappedQueryView& view,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      std::vector<bool>* used, std::vector<int>* visited,
      chain::Hash32* out_hash) const {
    if (idx < 0 || idx >= static_cast<int32_t>(notif.nodes.size())) {
      return Status::VerifyFailed("node index out of range");
    }
    if ((*visited)[idx]++) {
      return Status::VerifyFailed("node referenced twice");
    }
    const SubVoNode<Engine>& n = notif.nodes[idx];
    if (n.kind == VoKind::kExpand) {
      chain::Hash32 hl, hr;
      VCHAIN_RETURN_IF_ERROR(VerifyNode(notif, n.left, q, tq, view,
                                        clause_digests, used, visited, &hl));
      VCHAIN_RETURN_IF_ERROR(VerifyNode(notif, n.right, q, tq, view,
                                        clause_digests, used, visited, &hr));
      *out_hash =
          core::NodeHash(engine_, crypto::HashPair(hl, hr), n.digest);
      return Status::OK();
    }
    return VerifyLeafish(n, q, tq, view, clause_digests, notif, used,
                         out_hash);
  }

  Status VerifyLeafish(
      const SubVoNode<Engine>& n, const Query& q, const TransformedQuery& tq,
      const MappedQueryView& view,
      const std::vector<typename Engine::QueryDigest>& clause_digests,
      const SubNotification<Engine>& notif, std::vector<bool>* used,
      chain::Hash32* out_hash) const {
    if (n.kind == VoKind::kMatch) {
      if (n.object_ref >= notif.objects.size()) {
        return Status::VerifyFailed("match references missing object");
      }
      if ((*used)[n.object_ref]) {
        return Status::VerifyFailed("object referenced twice");
      }
      (*used)[n.object_ref] = true;
      const Object& o = notif.objects[n.object_ref];
      Multiset w = chain::TransformObject(o, config_.schema);
      if (!view.Matches(engine_, w)) {
        return Status::VerifyFailed("returned object does not match query");
      }
      *out_hash = core::NodeHash(engine_, o.Hash(), n.digest);
      return Status::OK();
    }
    // Mismatch: exclusions must each verify AND jointly exclude q.
    if (n.exclusions.empty()) {
      return Status::VerifyFailed("mismatch node without exclusions");
    }
    bool clause_excluded = false;
    std::vector<CellBox> cells;
    for (const SubExclusion<Engine>& ex : n.exclusions) {
      if (!ex.is_cell) {
        if (ex.clause_idx >= tq.clauses.size()) {
          return Status::VerifyFailed("exclusion clause index out of range");
        }
        if (!engine_.VerifyDisjoint(n.digest, clause_digests[ex.clause_idx],
                                    ex.proof)) {
          return Status::VerifyFailed("clause exclusion proof rejected");
        }
        clause_excluded = true;
      } else {
        if (ex.cell.dims.size() != config_.schema.dims) {
          return Status::VerifyFailed("cell dimensionality mismatch");
        }
        for (const chain::DyadicRange& r : ex.cell.dims) {
          if (r.prefix_len > config_.schema.bits) {
            return Status::VerifyFailed("cell deeper than schema");
          }
        }
        Multiset set = ex.cell.PrefixMultiset(config_.schema);
        if (!engine_.VerifyDisjoint(n.digest, engine_.QueryDigestOf(set),
                                    ex.proof)) {
          return Status::VerifyFailed("cell exclusion proof rejected");
        }
        cells.push_back(ex.cell);
      }
    }
    if (!clause_excluded) {
      // Cell exclusions only: they must blanket q's entire range box.
      if (!CellsCoverQueryRange(q, cells, config_.schema)) {
        return Status::VerifyFailed(
            "cell exclusions do not cover the query range");
      }
    }
    *out_hash = core::NodeHash(engine_, n.inner_hash, n.digest);
    return Status::OK();
  }

  Status VerifyUnitStructure(
      const typename LazyBatch<Engine>::Unit& unit, uint64_t* cursor,
      std::vector<typename Engine::ObjectDigest>* digests) const {
    if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(unit)) {
      const auto& bu = std::get<typename LazyBatch<Engine>::BlockUnit>(unit);
      if (bu.height != *cursor) {
        return Status::VerifyFailed("lazy block unit out of order");
      }
      if (bu.height >= lc_->Height()) {
        return Status::VerifyFailed("lazy unit beyond known chain");
      }
      chain::Hash32 h = core::NodeHash(engine_, bu.inner_hash, bu.digest);
      if (h != lc_->HeaderAt(bu.height).object_root) {
        return Status::VerifyFailed("lazy block unit root mismatch");
      }
      digests->push_back(bu.digest);
      *cursor += 1;
      return Status::OK();
    }
    const auto& su = std::get<typename LazyBatch<Engine>::SkipUnit>(unit);
    if (su.from_height >= lc_->Height()) {
      return Status::VerifyFailed("skip unit beyond known chain");
    }
    uint32_t levels = config_.NumSkipLevels(su.from_height);
    if (su.level >= levels ||
        su.distance != config_.SkipDistance(su.level)) {
      return Status::VerifyFailed("invalid lazy skip level");
    }
    if (su.from_height < su.distance ||
        su.from_height - su.distance != *cursor) {
      return Status::VerifyFailed("lazy skip unit out of order");
    }
    if (su.other_entry_hashes.size() + 1 != levels) {
      return Status::VerifyFailed("wrong lazy skip sibling count");
    }
    ByteWriter hs;
    for (uint64_t j = su.from_height - su.distance; j < su.from_height; ++j) {
      hs.PutFixed(crypto::HashSpan(lc_->BlockHashAt(j)));
    }
    chain::Hash32 preskipped = crypto::Sha256Digest(
        ByteSpan(hs.bytes().data(), hs.bytes().size()));
    ByteWriter ew;
    ew.PutFixed(crypto::HashSpan(preskipped));
    engine_.SerializeDigest(su.digest, &ew);
    chain::Hash32 entry_hash = crypto::Sha256Digest(
        ByteSpan(ew.bytes().data(), ew.bytes().size()));
    ByteWriter root_w;
    size_t sib = 0;
    for (uint32_t li = 0; li < levels; ++li) {
      if (li == su.level) {
        root_w.PutFixed(crypto::HashSpan(entry_hash));
      } else {
        root_w.PutFixed(crypto::HashSpan(su.other_entry_hashes[sib++]));
      }
    }
    chain::Hash32 root = crypto::Sha256Digest(
        ByteSpan(root_w.bytes().data(), root_w.bytes().size()));
    if (root != lc_->HeaderAt(su.from_height).skiplist_root) {
      return Status::VerifyFailed("lazy skip root mismatch");
    }
    digests->push_back(su.digest);
    *cursor = su.from_height;
    return Status::OK();
  }

  Engine engine_;
  ChainConfig config_;
  const chain::LightClient* lc_;
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_SUB_VERIFIER_H_

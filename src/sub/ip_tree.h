// The inverted prefix tree (IP-Tree) over subscription queries (§7.1,
// Fig 8, Algorithm 6).
//
// A 2^d-ary dyadic grid tree over the numeric space. Each node keeps
//   RCIF — every registered query intersecting the cell, tagged full/partial;
//   BCIF — for full-cover queries, the inverted file clause -> query ids,
//          so one set-disjointness decision (and proof) serves all queries
//          sharing the clause.
// Nodes split until no partial query remains or the depth cap is reached;
// queries still partial at a capped leaf are marked non-indexable and fall
// back to individual processing (the paper's "switch back" rule).
//
// Registration is *incremental*: inserting a query walks the existing grid,
// splitting only the leaves where the new query is partial. A split is
// attempted at most once per leaf — the depth/bits caps are static and the
// node budget only shrinks — so a leaf that once refused to split refuses
// forever, which freezes every query's terminal cells and indexability the
// moment its own insert returns. Two queries with identical range boxes
// therefore always get identical cell lists (in identical order), no matter
// how many registrations happened in between; the subscription matcher's
// grouped dispatch relies on exactly that. Deregistration tombstones the
// query (node lists are not scrubbed); nothing reads inactive entries.
//
// The tree itself is engine-agnostic classification machinery; the
// subscription manager (subscription.h) attaches digests and proofs.

#ifndef VCHAIN_SUB_IP_TREE_H_
#define VCHAIN_SUB_IP_TREE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/query.h"

namespace vchain::sub {

using accum::Multiset;
using chain::DyadicRange;
using chain::NumericSchema;
using core::Query;

/// A d-dimensional dyadic grid cell.
struct CellBox {
  std::vector<DyadicRange> dims;  // one prefix per dimension

  bool operator==(const CellBox&) const = default;

  /// Whole-space root box.
  static CellBox Root(const NumericSchema& schema) {
    CellBox b;
    b.dims.assign(schema.dims, DyadicRange{0, 0});
    return b;
  }

  uint32_t Depth() const { return dims.empty() ? 0 : dims[0].prefix_len; }

  /// trans(cell): the per-dimension prefix elements identifying the cell.
  /// An object lies in the cell iff its prefix set contains all of them; a
  /// node multiset intersects the cell's candidate set per dimension.
  Multiset PrefixMultiset(const NumericSchema& schema) const {
    Multiset m;
    for (uint32_t d = 0; d < dims.size(); ++d) {
      m.Add(accum::EncodePrefix(d, dims[d].prefix_bits, dims[d].prefix_len,
                                schema.bits));
    }
    return m;
  }

  /// The 2^d children (each dimension halved).
  std::vector<CellBox> Split() const;

  /// Relation to a query's range box ([lo, hi] per dim, missing dims = full).
  enum class Cover { kNone, kPartial, kFull };
  Cover CoverBy(const Query& q, const NumericSchema& schema) const;

  /// True iff this cell contains the point `v`.
  bool ContainsPoint(const std::vector<uint64_t>& v,
                     const NumericSchema& schema) const;

  /// True iff `other` is fully inside this cell.
  bool ContainsCell(const CellBox& other, const NumericSchema& schema) const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, CellBox* out);
};

/// Geometric completeness check used by the subscription verifier: does the
/// union of `cells` cover the whole intersection of query q's range box with
/// the space? Implemented by recursive dyadic subdivision; `cells` are
/// dyadic, so recursion bottoms out at their granularity.
bool CellsCoverQueryRange(const Query& q, const std::vector<CellBox>& cells,
                          const NumericSchema& schema);

/// The IP-Tree.
class IpTree {
 public:
  struct Options {
    uint32_t max_depth = 6;  ///< grid levels below the root
    /// Hard cap on grid nodes. Each split fans out 2^dims children, so
    /// high-dimensional spaces explode combinatorially; once the budget is
    /// reached, still-partial queries fall back to individual processing
    /// (same escape hatch as the depth cap).
    size_t max_nodes = 4096;
  };

  explicit IpTree(const NumericSchema& schema)
      : IpTree(schema, Options()) {}
  IpTree(const NumericSchema& schema, Options options)
      : schema_(schema), options_(options) {}

  /// Register a subscription query; returns its id.
  uint32_t Register(const Query& q);
  /// Register under a caller-chosen id (checkpoint restore): ids must not
  /// collide with a live registration; `next id` advances past `id`.
  Status RegisterWithId(uint32_t id, const Query& q);
  /// Advance the id allocator so future Register calls never hand out an id
  /// below `next_id` (restore path: ids of queries unsubscribed before the
  /// checkpoint must stay retired).
  void ReserveIds(uint32_t next_id);
  void Deregister(uint32_t query_id);

  const Query& QueryOf(uint32_t id) const { return queries_.at(id).query; }
  /// The id the next Register call would hand out (checkpointed so a
  /// restored instance never reuses a retired id).
  uint32_t NextId() const { return next_id_; }
  bool IsActive(uint32_t id) const {
    return queries_.count(id) && queries_.at(id).active;
  }
  /// Queries the grid could not fully resolve (partial at a capped leaf).
  bool IsIndexable(uint32_t id) const { return queries_.at(id).indexable; }

  std::vector<uint32_t> ActiveQueryIds() const;

  /// The terminal cells of query `id`: the grid cells it fully covers, whose
  /// union equals its range box (when indexable).
  const std::vector<CellBox>& TerminalCells(uint32_t id) const {
    return queries_.at(id).cells;
  }

  /// Grid statistics (for tests/benches).
  size_t NodeCount() const;

 private:
  struct QueryState {
    Query query;
    bool active = true;
    bool indexable = true;
    std::vector<CellBox> cells;
  };

  struct Node {
    CellBox box;
    std::vector<uint32_t> full;     // RCIF entries with full cover
    std::vector<uint32_t> partial;  // RCIF entries with partial cover
    std::vector<int32_t> children;  // empty for leaves
  };

  /// Insert one query into the grid (Algorithm 6, incrementally): descend
  /// from the root, split the leaves where it is partial, record the full
  /// cover nodes as its terminal cells.
  void InsertIntoGrid(uint32_t id);
  void InsertRec(int32_t node_idx, uint32_t id);
  /// Split a leaf into its 2^dims children; false when a cap forbids it.
  bool SplitNode(int32_t node_idx);

  NumericSchema schema_;
  Options options_;
  std::map<uint32_t, QueryState> queries_;
  uint32_t next_id_ = 0;
  std::vector<Node> nodes_;

  friend class IpTreeTestPeer;
};

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_IP_TREE_H_

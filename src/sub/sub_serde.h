// Wire format for subscription notifications and lazy batches. The
// "accumulated VO size" series of Figs 13-15 is measured on these bytes.

#ifndef VCHAIN_SUB_SUB_SERDE_H_
#define VCHAIN_SUB_SUB_SERDE_H_

#include "sub/subscription.h"

namespace vchain::sub {

template <typename Engine>
void SerializeSubVoNode(const Engine& e, const SubVoNode<Engine>& n,
                        ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(n.kind));
  e.SerializeDigest(n.digest, w);
  switch (n.kind) {
    case VoKind::kMatch:
      w->PutU32(n.object_ref);
      break;
    case VoKind::kMismatch:
      w->PutFixed(crypto::HashSpan(n.inner_hash));
      w->PutU32(static_cast<uint32_t>(n.exclusions.size()));
      for (const SubExclusion<Engine>& ex : n.exclusions) {
        w->PutBool(ex.is_cell);
        if (ex.is_cell) {
          ex.cell.Serialize(w);
        } else {
          w->PutU32(ex.clause_idx);
        }
        e.SerializeProof(ex.proof, w);
      }
      break;
    case VoKind::kExpand:
      w->PutU32(static_cast<uint32_t>(n.left));
      w->PutU32(static_cast<uint32_t>(n.right));
      break;
  }
}

template <typename Engine>
Status DeserializeSubVoNode(const Engine& e, ByteReader* r,
                            SubVoNode<Engine>* out) {
  uint8_t kind = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU8(&kind));
  if (kind > 2) return Status::Corruption("bad sub VO node kind");
  out->kind = static_cast<VoKind>(kind);
  VCHAIN_RETURN_IF_ERROR(e.DeserializeDigest(r, &out->digest));
  switch (out->kind) {
    case VoKind::kMatch:
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->object_ref));
      break;
    case VoKind::kMismatch: {
      Bytes buf;
      VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
      std::copy(buf.begin(), buf.end(), out->inner_hash.begin());
      uint32_t n_ex = 0;
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&n_ex));
      if (n_ex > 1u << 16) return Status::Corruption("too many exclusions");
      out->exclusions.resize(n_ex);
      for (uint32_t i = 0; i < n_ex; ++i) {
        SubExclusion<Engine>& ex = out->exclusions[i];
        VCHAIN_RETURN_IF_ERROR(r->GetBool(&ex.is_cell));
        if (ex.is_cell) {
          VCHAIN_RETURN_IF_ERROR(CellBox::Deserialize(r, &ex.cell));
        } else {
          VCHAIN_RETURN_IF_ERROR(r->GetU32(&ex.clause_idx));
        }
        VCHAIN_RETURN_IF_ERROR(e.DeserializeProof(r, &ex.proof));
      }
      break;
    }
    case VoKind::kExpand: {
      uint32_t l = 0, rr = 0;
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&l));
      VCHAIN_RETURN_IF_ERROR(r->GetU32(&rr));
      out->left = static_cast<int32_t>(l);
      out->right = static_cast<int32_t>(rr);
      break;
    }
  }
  return Status::OK();
}

template <typename Engine>
void SerializeSubNotification(const Engine& e,
                              const SubNotification<Engine>& notif,
                              ByteWriter* w) {
  w->PutU32(notif.query_id);
  w->PutU64(notif.height);
  w->PutU32(static_cast<uint32_t>(notif.objects.size()));
  for (const Object& o : notif.objects) o.Serialize(w);
  w->PutU32(static_cast<uint32_t>(notif.nodes.size()));
  for (const SubVoNode<Engine>& n : notif.nodes) SerializeSubVoNode(e, n, w);
  w->PutU32(static_cast<uint32_t>(notif.root));
}

template <typename Engine>
Status DeserializeSubNotification(const Engine& e, ByteReader* r,
                                  SubNotification<Engine>* out) {
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&out->query_id));
  VCHAIN_RETURN_IF_ERROR(r->GetU64(&out->height));
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 22) return Status::Corruption("too many objects");
  out->objects.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VCHAIN_RETURN_IF_ERROR(Object::Deserialize(r, &out->objects[i]));
  }
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 22) return Status::Corruption("too many nodes");
  out->nodes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    VCHAIN_RETURN_IF_ERROR(DeserializeSubVoNode(e, r, &out->nodes[i]));
  }
  uint32_t root = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&root));
  out->root = static_cast<int32_t>(root);
  return Status::OK();
}

template <typename Engine>
void SerializeLazyBatch(const Engine& e, const LazyBatch<Engine>& b,
                        ByteWriter* w) {
  w->PutU32(b.query_id);
  w->PutBool(b.has_pending);
  if (b.has_pending) {
    w->PutU64(b.from_height);
    w->PutU64(b.to_height);
    w->PutU32(b.clause_idx);
    w->PutU32(static_cast<uint32_t>(b.units.size()));
    for (const auto& unit : b.units) {
      if (std::holds_alternative<typename LazyBatch<Engine>::BlockUnit>(
              unit)) {
        const auto& bu =
            std::get<typename LazyBatch<Engine>::BlockUnit>(unit);
        w->PutU8(0);
        w->PutU64(bu.height);
        w->PutFixed(crypto::HashSpan(bu.inner_hash));
        e.SerializeDigest(bu.digest, w);
      } else {
        const auto& su = std::get<typename LazyBatch<Engine>::SkipUnit>(unit);
        w->PutU8(1);
        w->PutU64(su.from_height);
        w->PutU32(su.level);
        w->PutU64(su.distance);
        e.SerializeDigest(su.digest, w);
        w->PutU32(static_cast<uint32_t>(su.other_entry_hashes.size()));
        for (const chain::Hash32& h : su.other_entry_hashes) {
          w->PutFixed(crypto::HashSpan(h));
        }
      }
    }
    w->PutBool(b.agg_proof.has_value());
    if (b.agg_proof) e.SerializeProof(*b.agg_proof, w);
  }
  w->PutBool(b.match.has_value());
  if (b.match) SerializeSubNotification(e, *b.match, w);
}

/// Serialized sizes for the benchmark metrics.
template <typename Engine>
size_t SubNotificationByteSize(const Engine& e,
                               const SubNotification<Engine>& n) {
  ByteWriter w;
  SerializeSubNotification(e, n, &w);
  return w.size();
}

template <typename Engine>
size_t LazyBatchByteSize(const Engine& e, const LazyBatch<Engine>& b) {
  ByteWriter w;
  SerializeLazyBatch(e, b, &w);
  return w.size();
}

}  // namespace vchain::sub

#endif  // VCHAIN_SUB_SUB_SERDE_H_

// Fluent construction of Boolean range queries.
//
// A raw core::Query is four loosely-coupled fields whose invariants (range
// bounds ordered and in-domain, dimensions inside the schema, no empty
// OR-clause) are easy to violate silently. The builder gives call sites a
// shape that reads like the paper's query notation —
//
//   core::Query q = api::QueryBuilder()
//                       .Window(ts, te)
//                       .Range(/*dim=*/0, 200, 250)
//                       .AllOf({"Sedan"})
//                       .AnyOf({"Benz", "BMW"})
//                       .Build();
//
// — i.e. <[ts,te], price in [200,250], "Sedan" AND ("Benz" OR "BMW")>.
//
// `Build()` returns the assembled query; `Build(schema)` additionally runs
// core::ValidateQuery and returns Status::InvalidArgument instead of a
// malformed query. api::Service validates every query it receives anyway,
// so the unvalidated form is always safe to hand to the service.

#ifndef VCHAIN_API_QUERY_BUILDER_H_
#define VCHAIN_API_QUERY_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "core/query.h"

namespace vchain::api {

class QueryBuilder {
 public:
  /// Restrict to blocks with timestamp in [time_start, time_end]
  /// (inclusive). Without a window the query spans the whole chain.
  QueryBuilder& Window(uint64_t time_start, uint64_t time_end) {
    q_.time_start = time_start;
    q_.time_end = time_end;
    return *this;
  }

  /// Require numeric dimension `dim` in [lo, hi] (inclusive). One range per
  /// dimension; multiple ranges AND together.
  QueryBuilder& Range(uint32_t dim, uint64_t lo, uint64_t hi) {
    q_.ranges.push_back(core::RangePredicate{dim, lo, hi});
    return *this;
  }

  /// Require at least one of `keywords` (one OR-clause of the CNF).
  QueryBuilder& AnyOf(std::vector<std::string> keywords) {
    q_.keyword_cnf.push_back(std::move(keywords));
    return *this;
  }

  /// Require every one of `keywords` (one single-keyword clause each).
  QueryBuilder& AllOf(const std::vector<std::string>& keywords) {
    for (const std::string& kw : keywords) {
      q_.keyword_cnf.push_back({kw});
    }
    return *this;
  }

  /// The assembled query, unvalidated (every consuming entry point
  /// validates against its chain's schema anyway).
  core::Query Build() const { return q_; }

  /// The assembled query, validated against `schema`;
  /// Status::InvalidArgument describes the first violated invariant.
  Result<core::Query> Build(const chain::NumericSchema& schema) const {
    VCHAIN_RETURN_IF_ERROR(core::ValidateQuery(q_, schema));
    return q_;
  }

 private:
  core::Query q_;
};

}  // namespace vchain::api

namespace vchain {
using api::QueryBuilder;
}  // namespace vchain

#endif  // VCHAIN_API_QUERY_BUILDER_H_

// ServiceBackend<Engine>: the typed SP stack behind api::Service.
//
// Owns, per service: the engine, the chain builder (miner write-through +
// timestamp index), the optional durable store with its shared decoded-block
// cache, the shared mutex-striped proof cache, and the subscription manager.
//
// Locking model (state_mu_, a shared_mutex):
//   * Query takes a *shared* lock: any number run concurrently. Each query
//     builds a throwaway single-threaded QueryProcessor (two pointers and a
//     scratch vector) over its own block-source view; the expensive state —
//     proof cache, decoded-block cache — is shared and internally
//     synchronized. The block-source view is frozen at the admission-time
//     tip, so a later append can never shift a window mid-walk.
//   * Append / Subscribe / Unsubscribe / TakeSubscriptionEvents / Sync take
//     the *exclusive* lock: they mutate the chain vectors, the timestamp
//     index, the store, or the event buffer that queries and stats read.
//
// Determinism: everything a query emits is a pure function of (chain,
// query, engine); caches only decide what gets recomputed. Concurrent runs
// are therefore byte-identical to serial runs — enforced by
// tests/api/service_test.cc's multi-threaded stress against a serial
// QueryProcessor baseline, for all four engines.

#ifndef VCHAIN_API_BACKEND_IMPL_H_
#define VCHAIN_API_BACKEND_IMPL_H_

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/backend.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/span.h"
#include "core/chain_builder.h"
#include "core/processor.h"
#include "core/proof_cache.h"
#include "core/verifier.h"
#include "store/block_source.h"
#include "store/concurrent_block_source.h"
#include "sub/match/checkpoint.h"
#include "sub/match/metrics.h"
#include "sub/sub_serde.h"
#include "sub/sub_verifier.h"
#include "sub/subscription.h"

namespace vchain::api {

template <typename Engine>
class ServiceBackend final : public IServiceBackend {
 public:
  static Result<std::unique_ptr<IServiceBackend>> Create(ServiceOptions options,
                                                         Engine engine) {
    std::unique_ptr<ServiceBackend> b(
        new ServiceBackend(std::move(options), std::move(engine)));
    const ServiceOptions& opts = b->options_;

    if (opts.store_dir.empty()) {
      if (opts.retain_window != 0) {
        return Status::InvalidArgument(
            "retain_window requires a store_dir (pruned blocks must stay "
            "reachable on disk)");
      }
      b->builder_ = std::make_unique<core::ChainBuilder<Engine>>(b->engine_,
                                                                 opts.config);
    } else {
      auto store = store::BlockStore::Open(opts.store_dir, opts.store_options);
      if (!store.ok()) return store.status();
      b->store_ = store.TakeValue();
      if (b->store_->NumBlocks() > 0) {
        // Resume the persisted chain: headers + timestamp index from the
        // store, only the skip-construction tail decoded back into RAM.
        auto resumed = core::ChainBuilder<Engine>::ResumeFromStore(
            b->engine_, opts.config, b->store_.get());
        if (!resumed.ok()) return resumed.status();
        b->builder_ =
            std::make_unique<core::ChainBuilder<Engine>>(resumed.TakeValue());
      } else {
        b->builder_ = std::make_unique<core::ChainBuilder<Engine>>(
            b->engine_, opts.config);
        VCHAIN_RETURN_IF_ERROR(b->builder_->AttachStore(b->store_.get()));
      }
      if (opts.retain_window != 0) {
        VCHAIN_RETURN_IF_ERROR(b->builder_->SetRetainWindow(opts.retain_window));
      }
      b->disk_source_ =
          std::make_unique<store::ConcurrentStoreBlockSource<Engine>>(
              b->engine_, b->store_.get(), opts.config.block_cache_blocks);
    }
    b->sub_next_height_ = b->builder_->NumBlocks();
    if (b->store_ != nullptr && opts.sub_checkpoints) {
      store::Env* env = opts.store_options.env != nullptr
                            ? opts.store_options.env
                            : store::Env::Default();
      b->ckpt_ = std::make_unique<sub::CheckpointSlots>(env, opts.store_dir);
      VCHAIN_RETURN_IF_ERROR(b->ckpt_->Open());
      if (b->ckpt_->HasCheckpoint()) {
        VCHAIN_RETURN_IF_ERROR(b->RestoreCheckpoint());
      }
    }
    return std::unique_ptr<IServiceBackend>(std::move(b));
  }

  // --- miner side ----------------------------------------------------------

  Status Append(std::vector<chain::Object> objects,
                uint64_t timestamp) override {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (degraded_) {
      return Status::Unavailable("service is read-only: " + degraded_reason_);
    }
    // The service shell installs an ambient "append" tree when tracing;
    // mining and the subscription drain hang their spans off it.
    const trace::AmbientSpan amb = trace::CurrentSpan();
    uint32_t mine_span =
        amb.tree != nullptr ? amb.tree->Begin("mine", amb.parent) : 0;
    auto stats = builder_->AppendBlock(std::move(objects), timestamp);
    if (amb.tree != nullptr) amb.tree->End(mine_span);
    if (!stats.ok()) {
      // AppendBlock writes through to the store *before* touching the
      // in-memory chain, so on failure memory still mirrors the durable
      // prefix — queries stay correct. A validation error (InvalidArgument)
      // is the caller's problem; anything else is a storage fault and
      // flips the service read-only until a restart reopens the store
      // through its recovery path.
      if (!stats.status().IsInvalidArgument()) {
        EnterDegradedLocked(stats.status());
      }
      return stats.status();
    }
    DrainSubscriptionsLocked();
    return Status::OK();
  }

  Status Sync() override {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (store_ == nullptr) return Status::OK();
    // Still attempted in degraded mode: fsyncing the clean prefix written
    // before the fault can only help.
    Status st = store_->Sync();
    if (!st.ok() && !degraded_) EnterDegradedLocked(st);
    if (!st.ok()) return st;
    // Sync is the hard commit point, so a checkpoint failure surfaces here
    // (unlike the best-effort periodic writes).
    return WriteCheckpointLocked();
  }

  Status Health() const override {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (degraded_) {
      return Status::Unavailable("degraded (read-only): " + degraded_reason_);
    }
    return Status::OK();
  }

  // --- query side ----------------------------------------------------------

  Result<QueryResult> Query(const core::Query& q,
                            core::QueryTrace* trace) override {
    VCHAIN_RETURN_IF_ERROR(core::ValidateQuery(q, options_.config.schema));
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (disk_source_ != nullptr) {
      auto handle = disk_source_->MakeHandle(store_->NumBlocks());
      core::QueryProcessor<Engine> sp(engine_, options_.config, &handle,
                                      &builder_->timestamp_index(),
                                      &proof_cache_);
      return Finish(sp.TimeWindowQuery(q, trace), trace);
    }
    store::VectorBlockSource<Engine> source(&builder_->blocks());
    core::QueryProcessor<Engine> sp(engine_, options_.config, &source,
                                    &builder_->timestamp_index(),
                                    &proof_cache_);
    return Finish(sp.TimeWindowQuery(q, trace), trace);
  }

  // --- user-side helpers ---------------------------------------------------

  Status SyncLightClient(chain::LightClient* client) const override {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return builder_->SyncLightClient(client);
  }

  Result<std::vector<chain::BlockHeader>> Headers(uint64_t from,
                                                  uint64_t to) const override {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    uint64_t tip = builder_->NumBlocks();
    std::vector<chain::BlockHeader> out;
    if (tip == 0 || from >= tip) return out;
    if (to >= tip) to = tip - 1;
    for (uint64_t h = from; h <= to; ++h) {
      // Pruned heights live only in the store's resident header column
      // (pruning requires an attached store, so store_ is non-null there).
      out.push_back(h < builder_->base_height()
                        ? store_->HeaderAt(h)
                        : builder_->blocks()[h - builder_->base_height()]
                              .header);
    }
    return out;
  }

  Result<QueryResult> DecodeResult(const Bytes& response_bytes) const override {
    ByteReader r(ByteSpan(response_bytes.data(), response_bytes.size()));
    core::QueryResponse<Engine> resp;
    VCHAIN_RETURN_IF_ERROR(core::DeserializeResponse(engine_, &r, &resp));
    if (r.Remaining() != 0) {
      return Status::Corruption("trailing bytes after query response");
    }
    QueryResult out;
    out.response_bytes = response_bytes;
    out.vo_bytes = core::VoByteSize(engine_, resp.vo);
    out.objects = std::move(resp.objects);
    return out;
  }

  Status Verify(const core::Query& q, const QueryResult& result,
                const chain::LightClient& client) const override {
    ByteReader r(ByteSpan(result.response_bytes.data(),
                          result.response_bytes.size()));
    core::QueryResponse<Engine> resp;
    VCHAIN_RETURN_IF_ERROR(core::DeserializeResponse(engine_, &r, &resp));
    if (r.Remaining() != 0) {
      return Status::Corruption("trailing bytes after query response");
    }
    core::Verifier<Engine> verifier(engine_, options_.config, &client);
    return verifier.VerifyTimeWindow(q, resp);
  }

  Status VerifyNotification(const core::Query& q, const SubscriptionEvent& ev,
                            const chain::LightClient& client) const override {
    ByteReader r(ByteSpan(ev.notification_bytes.data(),
                          ev.notification_bytes.size()));
    sub::SubNotification<Engine> notif;
    VCHAIN_RETURN_IF_ERROR(
        sub::DeserializeSubNotification(engine_, &r, &notif));
    if (r.Remaining() != 0) {
      return Status::Corruption("trailing bytes after notification");
    }
    sub::SubVerifier<Engine> verifier(engine_, options_.config, &client);
    return verifier.VerifyNotification(q, notif);
  }

  // --- subscriptions -------------------------------------------------------

  Result<uint32_t> Subscribe(const core::Query& q) override {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    auto id = subs_.TrySubscribe(q);
    if (!id.ok()) return id.status();
    active_subscriptions_.emplace(id.value(), builder_->NumBlocks());
    flight::FlightRecorder::Get().Record("sub", "subscribe", id.value());
    // Events cover blocks appended from here on; with no prior subscribers
    // the drain cursor may lag (drains are skipped while nobody listens).
    sub_next_height_ = builder_->NumBlocks();
    sub::SubMetrics::Get().registered->Set(
        static_cast<double>(subs_.NumActive()));
    // Best-effort durability; Sync() is the hard commit point.
    (void)WriteCheckpointLocked();
    return id;
  }

  Status Unsubscribe(uint32_t id) override {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (active_subscriptions_.erase(id) == 0) {
      return Status::NotFound("unknown subscription id");
    }
    subs_.Unsubscribe(id);
    flight::FlightRecorder::Get().Record("sub", "unsubscribe", id);
    sub::SubMetrics::Get().registered->Set(
        static_cast<double>(subs_.NumActive()));
    (void)WriteCheckpointLocked();
    return Status::OK();
  }

  Result<SubscriptionEventBatch> EventsSince(uint32_t id, uint64_t cursor,
                                             size_t max_events) override {
    // Exclusive: regenerating a trimmed event re-matches a block through the
    // subscription manager, which mutates its per-query runtime caches.
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    auto it = active_subscriptions_.find(id);
    if (it == active_subscriptions_.end()) {
      return Status::NotFound("unknown subscription id");
    }
    if (max_events == 0) max_events = 1;
    const uint64_t end = sub_next_height_;  // heights below this are drained
    uint64_t from = std::max(cursor, it->second);
    SubscriptionEventBatch batch;
    batch.next_cursor = from;
    if (from >= end) return batch;
    // Index the still-logged events for this subscriber, then walk heights:
    // serve from the log when possible, regenerate when trimmed away.
    std::unordered_map<uint64_t, const SubscriptionEvent*> logged;
    for (const SubscriptionEvent& ev : event_log_) {
      if (ev.query_id == id && ev.height >= from && ev.height < end) {
        logged.emplace(ev.height, &ev);
      }
    }
    for (uint64_t h = from; h < end && batch.events.size() < max_events; ++h) {
      auto hit = logged.find(h);
      if (hit != logged.end()) {
        batch.events.push_back(*hit->second);
      } else {
        auto regen = RegenerateEventLocked(id, h);
        if (!regen.ok()) return regen.status();
        batch.events.push_back(regen.TakeValue());
        batch.redelivered = true;
        sub::SubMetrics::Get().redelivered_events->Inc();
      }
      batch.next_cursor = h + 1;
    }
    return batch;
  }

  Result<SubscriptionEvent> DecodeNotification(
      const Bytes& notification_bytes) const override {
    ByteReader r(
        ByteSpan(notification_bytes.data(), notification_bytes.size()));
    sub::SubNotification<Engine> notif;
    VCHAIN_RETURN_IF_ERROR(
        sub::DeserializeSubNotification(engine_, &r, &notif));
    if (r.Remaining() != 0) {
      return Status::Corruption("trailing bytes after notification");
    }
    SubscriptionEvent ev;
    ev.query_id = notif.query_id;
    ev.height = notif.height;
    ev.objects = std::move(notif.objects);
    ev.notification_bytes = notification_bytes;
    return ev;
  }

  std::vector<SubscriptionEvent> TakeSubscriptionEvents() override {
    // Legacy global drain, now a cursor over the shared event log: hand out
    // every event not yet taken, but leave them in the log so EventsSince
    // subscribers can still read their own slices.
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    const uint64_t log_end = log_start_seq_ + event_log_.size();
    uint64_t seq = std::max(take_seq_, log_start_seq_);
    std::vector<SubscriptionEvent> out;
    out.reserve(log_end - seq);
    for (; seq < log_end; ++seq) {
      out.push_back(event_log_[seq - log_start_seq_]);
    }
    take_seq_ = log_end;
    return out;
  }

  // --- introspection -------------------------------------------------------

  ServiceStats Stats() const override {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    ServiceStats s;
    s.engine = options_.engine;
    s.durable = store_ != nullptr;
    s.degraded = degraded_;
    s.num_blocks = builder_->NumBlocks();
    s.queries_served = queries_served_.load(std::memory_order_relaxed);
    s.subscriptions_active = subs_.NumActive();
    s.subscription_events_pending =
        (log_start_seq_ + event_log_.size()) -
        std::max(take_seq_, log_start_seq_);
    s.sub_matcher = subs_.matcher();
    if (ckpt_ != nullptr) s.sub_checkpoint_seq = ckpt_->latest_seq();
    s.proof_cache = proof_cache_.stats();
    if (disk_source_ != nullptr) s.block_cache = disk_source_->cache_stats();
    return s;
  }

  uint64_t NumBlocks() const override {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return builder_->NumBlocks();
  }

  const ServiceOptions& options() const override { return options_; }

 private:
  ServiceBackend(ServiceOptions options, Engine engine)
      : options_(std::move(options)),
        engine_(std::move(engine)),
        proof_cache_(options_.config.proof_cache_capacity,
                     options_.proof_cache_shards),
        subs_(engine_, options_.config, SubOptions()) {}

  typename sub::SubscriptionManager<Engine>::Options SubOptions() const {
    typename sub::SubscriptionManager<Engine>::Options o;
    o.use_ip_tree = options_.subscriptions_share_proofs;
    o.matcher = options_.sub_matcher;
    return o;
  }

  /// Rebuild subscription state from the latest valid checkpoint slot, then
  /// catch up on blocks mined while the SP was down (their notifications are
  /// buffered — blocks drained after the persisted cursor but before the
  /// crash are re-delivered: at-least-once). Runs at Create, pre-threading.
  Status RestoreCheckpoint() {
    const Bytes& payload = ckpt_->LatestPayload();
    ByteReader r(ByteSpan(payload.data(), payload.size()));
    uint64_t next_height = 0;
    sub::SubscriptionSnapshot<Engine> snap;
    VCHAIN_RETURN_IF_ERROR(
        sub::DeserializeSubCheckpoint(engine_, &r, &next_height, &snap));
    VCHAIN_RETURN_IF_ERROR(subs_.Restore(snap));
    for (const auto& entry : snap.queries) {
      // The original start height is not checkpointed; 0 permits redelivery
      // from genesis, and EventsSince callers clamp with their own cursor.
      active_subscriptions_.emplace(entry.id, 0);
    }
    // A crash can lose unsynced blocks the checkpoint already covered;
    // clamp and let the re-mined chain re-deliver.
    sub_next_height_ = std::min(next_height, builder_->NumBlocks());
    sub::SubMetrics::Get().registered->Set(
        static_cast<double>(subs_.NumActive()));
    sub::SubMetrics::Get().checkpoint_recoveries->Inc();
    flight::FlightRecorder::Get().Record("sub", "checkpoint_restore",
                                         ckpt_->latest_seq(),
                                         sub_next_height_);
    logging::Info("sub_checkpoint_restored")
        .Kv("seq", ckpt_->latest_seq())
        .Kv("subscriptions", subs_.NumActive())
        .Kv("next_height", sub_next_height_);
    DrainSubscriptionsLocked();
    return WriteCheckpointLocked();
  }

  /// Persist the current subscription state. Skipped while there is nothing
  /// to record (no subscriber ever registered and no prior checkpoint).
  /// Caller holds the exclusive lock (or runs pre-threading in Create).
  Status WriteCheckpointLocked() {
    if (ckpt_ == nullptr) return Status::OK();
    if (subs_.NumActive() == 0 && !ckpt_->HasCheckpoint()) return Status::OK();
    ByteWriter w;
    sub::SerializeSubCheckpoint(engine_, sub_next_height_, subs_.Snapshot(),
                                &w);
    Status st = ckpt_->WriteNext(ByteSpan(w.bytes().data(), w.bytes().size()));
    if (!st.ok()) {
      logging::Error("sub_checkpoint_write_failed")
          .Kv("reason", st.ToString());
      return st;
    }
    sub::SubMetrics::Get().checkpoint_writes->Inc();
    flight::FlightRecorder::Get().Record("sub", "checkpoint_write",
                                         ckpt_->latest_seq(),
                                         sub_next_height_);
    ckpt_height_ = sub_next_height_;
    return Status::OK();
  }

  /// Serialize a successful response into the erased QueryResult
  /// (serialize first, then move the result objects out — no copies).
  Result<QueryResult> Finish(Result<core::QueryResponse<Engine>> resp,
                             core::QueryTrace* trace) {
    if (!resp.ok()) return resp.status();
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    QueryResult out;
    {
      trace::ScopedSpan serialize_span(
          trace != nullptr ? trace->EnsureSpans() : nullptr, "serialize");
      ByteWriter w;
      core::SerializeResponse(engine_, resp.value(), &w);
      out.response_bytes = std::move(w.bytes());
      out.vo_bytes = core::VoByteSize(engine_, resp.value().vo);
      out.objects = std::move(resp.value().objects);
    }
    // Re-project so direct backend callers see serialize_ns without going
    // through the service shell (which projects again after ending the
    // root — projection is idempotent).
    if (trace != nullptr) trace->ProjectSpans();
    return out;
  }

  /// Rebuild one event that the bounded log no longer holds by re-matching
  /// its block against the standing query. Pure function of (block, query):
  /// the regenerated notification_bytes are identical to what the realtime
  /// drain produced. Caller holds the exclusive lock; `height` must be
  /// below the drain cursor.
  Result<SubscriptionEvent> RegenerateEventLocked(uint32_t id,
                                                  uint64_t height) {
    auto build = [&](const core::Block<Engine>& block)
        -> Result<SubscriptionEvent> {
      auto notif = subs_.RebuildNotification(block, id);
      if (!notif.ok()) return notif.status();
      SubscriptionEvent ev;
      ev.query_id = notif.value().query_id;
      ev.height = notif.value().height;
      ByteWriter w;
      sub::SerializeSubNotification(engine_, notif.value(), &w);
      ev.notification_bytes = std::move(w.bytes());
      ev.objects = std::move(notif.value().objects);
      return ev;
    };
    if (disk_source_ != nullptr) {
      auto handle = disk_source_->MakeHandle(store_->NumBlocks());
      return build(handle.BlockAt(height));
    }
    // In-memory mode never prunes (retain_window requires a store), so the
    // builder's vector is indexed by absolute height.
    return build(builder_->blocks()[height]);
  }

  /// Caller holds the exclusive lock. Keeps the first fault's message.
  void EnterDegradedLocked(const Status& cause) {
    degraded_ = true;
    degraded_reason_ = cause.ToString();
    metrics::Registry::Default()
        .GetGauge("vchain_service_degraded",
                  "1 while the service is read-only after a storage fault")
        ->Set(1);
    flight::FlightRecorder::Get().Record("service", "degraded",
                                         builder_->NumBlocks());
    logging::Error("service_degraded").Kv("reason", degraded_reason_);
  }

  /// Run every block since the last drain past the standing queries,
  /// buffering one event per (query, block). Caller holds the exclusive
  /// lock. Skips entirely (cursor fast-forwarded at Subscribe) while no
  /// subscription is active.
  void DrainSubscriptionsLocked() {
    uint64_t tip = builder_->NumBlocks();
    if (active_subscriptions_.empty()) {
      sub_next_height_ = tip;
      return;
    }
    static metrics::Histogram* drain_seconds =
        metrics::Registry::Default().GetLatencyHistogram(
            "vchain_service_subscription_drain_seconds",
            "Per-append standing-query drain latency");
    metrics::ScopedTimer timer(drain_seconds);
    const trace::AmbientSpan amb = trace::CurrentSpan();
    trace::ScopedSpan dispatch_span(
        amb.tree, "sub_dispatch",
        amb.parent != 0 ? amb.parent : trace::kRootSpan);
    const uint64_t drain_from = sub_next_height_;
    const uint64_t events_before = log_start_seq_ + event_log_.size();
    auto drain = [&](const store::BlockSource<Engine>& source) {
      while (sub_next_height_ < tip) {
        for (auto& notif : subs_.ProcessNewBlocks(source, &sub_next_height_)) {
          SubscriptionEvent ev;
          ev.query_id = notif.query_id;
          ev.height = notif.height;
          ev.objects = notif.objects;
          ByteWriter w;
          sub::SerializeSubNotification(engine_, notif, &w);
          ev.notification_bytes = std::move(w.bytes());
          event_log_.push_back(std::move(ev));
        }
        // Bound the redelivery log; trimmed events are regenerated on
        // demand by EventsSince (memory stays O(capacity) no matter how
        // far a slow consumer falls behind).
        while (options_.sub_event_log_capacity != 0 &&
               event_log_.size() > options_.sub_event_log_capacity) {
          event_log_.pop_front();
          ++log_start_seq_;
        }
      }
    };
    if (disk_source_ != nullptr) {
      auto handle = disk_source_->MakeHandle(tip);
      drain(handle);
    } else {
      store::VectorBlockSource<Engine> source(&builder_->blocks());
      drain(source);
    }
    dispatch_span.Note("blocks", sub_next_height_ - drain_from);
    dispatch_span.Note("events",
                       (log_start_seq_ + event_log_.size()) - events_before);
    // Periodic checkpoint: bound the at-least-once replay window to the
    // configured number of drained blocks. Best-effort (Sync is the hard
    // commit point; a failure already logged inside).
    if (ckpt_ != nullptr && options_.sub_checkpoint_interval_blocks != 0 &&
        sub_next_height_ - ckpt_height_ >=
            options_.sub_checkpoint_interval_blocks) {
      (void)WriteCheckpointLocked();
    }
  }

  ServiceOptions options_;
  Engine engine_;

  std::unique_ptr<store::BlockStore> store_;  // null in in-memory mode
  std::unique_ptr<core::ChainBuilder<Engine>> builder_;
  std::unique_ptr<store::ConcurrentStoreBlockSource<Engine>> disk_source_;

  core::ProofCache<Engine> proof_cache_;
  sub::SubscriptionManager<Engine> subs_;
  /// id -> first block height the subscription covers (cursors below it are
  /// clamped up; 0 after a checkpoint restore, where the original start is
  /// unknown and redelivery from genesis is permitted).
  std::map<uint32_t, uint64_t> active_subscriptions_;
  uint64_t sub_next_height_ = 0;
  /// Bounded redelivery log: every drained event, oldest first. Events are
  /// assigned monotonically increasing sequence numbers; the front of the
  /// deque holds seq `log_start_seq_`. Capacity-trimmed at append
  /// (ServiceOptions::sub_event_log_capacity); EventsSince regenerates
  /// anything trimmed away by re-matching the block.
  std::deque<SubscriptionEvent> event_log_;
  uint64_t log_start_seq_ = 0;
  /// High-water mark of the legacy global drain (TakeSubscriptionEvents):
  /// events with seq below it were already handed out by Take.
  uint64_t take_seq_ = 0;
  std::unique_ptr<sub::CheckpointSlots> ckpt_;  // null unless durable + on
  uint64_t ckpt_height_ = 0;  ///< drain cursor at the last checkpoint write

  bool degraded_ = false;  ///< storage write fault -> read-only
  std::string degraded_reason_;

  mutable std::shared_mutex state_mu_;
  std::atomic<uint64_t> queries_served_{0};
};

}  // namespace vchain::api

#endif  // VCHAIN_API_BACKEND_IMPL_H_

// vchain::Service — the SP's front door (Fig 3's service provider as one
// object).
//
// The cryptographic core is engine-templated (accum/engine.h), which is the
// right shape for the protocol layers but the wrong shape for a deployment
// boundary: callers had to pick an accumulator at *compile time* and wire
// five templates together by hand. Service erases the engine behind a
// runtime `EngineKind` and owns the whole SP stack — block store (or
// in-memory chain), miner write-through, timestamp index, shared
// disjointness-proof cache, decoded-block cache, subscription manager — so
// a deployment is:
//
//   api::ServiceOptions opts;
//   opts.engine = api::EngineKind::kAcc2;          // runtime choice
//   opts.config.schema = {/*dims=*/1, /*bits=*/10};
//   opts.store_dir = "/var/lib/vchain";            // "" = in-memory
//   auto svc = api::Service::Open(std::move(opts)).TakeValue();
//
//   svc->Append(objects, timestamp);               // miner side
//   auto result = svc->Query(api::QueryBuilder()   // user-facing side
//                                .Window(ts, te)
//                                .Range(0, 200, 250)
//                                .AnyOf({"Benz", "BMW"})
//                                .Build());
//
// Thread safety. Queries are the hot path and run concurrently: any number
// of threads may call Query/QueryBatch/Stats/Verify simultaneously; every
// query gets its own single-threaded QueryProcessor over a shared
// mutex-striped proof cache and a shared decoded-block cache (per-query
// handles, store/concurrent_block_source.h). Append/Subscribe/Unsubscribe
// take the write side of one shared_mutex — an append waits for in-flight
// queries and vice versa, which matches the workload (one block per mining
// interval, queries continuous). Concurrent execution is bit-identical to
// serial: proofs are deterministic, so thread interleaving can never change
// a digest, proof, or VO byte.
//
// Every entry point validates its query (core::ValidateQuery) and returns
// the library-wide Status taxonomy: InvalidArgument for malformed queries
// or options, NotFound for unknown subscription ids, Corruption for
// undecodable response bytes, VerifyFailed from the user-side checks.
//
// The typed, templated layer stays public underneath (core/vchain.h) for
// callers that need compile-time engines, custom block sources, or the
// lazy subscription scheme; Service is a facade, not a replacement.

#ifndef VCHAIN_API_SERVICE_H_
#define VCHAIN_API_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "accum/acc1.h"  // ProverMode
#include "accum/keys.h"
#include "chain/light_client.h"
#include "common/lru.h"
#include "common/span.h"
#include "core/block.h"
#include "core/query.h"
#include "core/query_trace.h"
#include "store/block_store.h"
#include "sub/match/matcher.h"

namespace vchain::api {

/// Accumulator engine, chosen at runtime. The mock engines are transparent
/// test doubles (fast, zero security — see accum/mock.h); acc1/acc2 are the
/// paper's two bilinear constructions (acc2 adds digest/proof aggregation).
enum class EngineKind : uint8_t {
  kMockAcc1 = 0,
  kMockAcc2 = 1,
  kAcc1 = 2,
  kAcc2 = 3,
};

const char* EngineKindName(EngineKind kind);

/// Inverse of EngineKindName ("acc2" -> kAcc2, etc.); false when `name`
/// names no engine. The wire layer and CLI flags parse engines with this.
bool EngineKindFromName(std::string_view name, EngineKind* out);

/// Everything a Service deployment fixes at startup.
struct ServiceOptions {
  EngineKind engine = EngineKind::kAcc2;

  /// Chain-wide consensus parameters (index mode, schema, skip list) plus
  /// the SP-local tuning knobs (num_prover_threads, proof_cache_capacity,
  /// block_cache_blocks) they carry.
  core::ChainConfig config;

  /// Trusted setup. Pass a shared oracle to make several services (or a
  /// service plus typed-layer code) byte-compatible; otherwise one is
  /// created from `oracle_seed` / `acc_params`.
  std::shared_ptr<accum::KeyOracle> oracle;
  uint64_t oracle_seed = 42;
  accum::AccParams acc_params;
  accum::ProverMode prover_mode = accum::ProverMode::kHonest;

  /// Durable store directory; empty = in-memory chain. A non-empty dir is
  /// opened (created if absent) and appends write through; reopening the
  /// same dir resumes the persisted chain without recomputing a digest.
  std::string store_dir;
  store::BlockStore::Options store_options;
  /// With a store: bound the miner's resident tail to this many blocks
  /// (0 = keep all decoded blocks in RAM; queries read through the store's
  /// block cache either way).
  size_t retain_window = 0;

  /// Stripes of the shared disjointness-proof cache (1 = one exact global
  /// LRU; more stripes cut contention between query threads).
  size_t proof_cache_shards = 16;

  /// Subscription proof sharing across standing queries (§7.1).
  bool subscriptions_share_proofs = true;

  /// Subscription matching strategy (sub/match/): kLinear scans every
  /// standing query per block; kIndexed drives matching through the
  /// clause-inverted index and builds each notification once per group of
  /// identical queries. Notifications are bit-identical either way — this
  /// knob trades per-subscribe indexing work for per-block matching cost.
  sub::MatcherMode sub_matcher = sub::MatcherMode::kIndexed;

  /// Persist subscription state (registered queries + ids, drain cursor,
  /// pending lazy runs) as CRC-framed alternating slot files in `store_dir`,
  /// and resume from the latest valid slot on reopen — a restarted SP picks
  /// up its standing queries without replaying the chain. Requires a
  /// store_dir; ignored in in-memory mode. Blocks drained after the last
  /// checkpoint are re-matched on restart, so their notifications are
  /// re-delivered (at-least-once; subscribers dedup by (query_id, height)).
  bool sub_checkpoints = true;

  /// Also write a checkpoint every N drained blocks (0 = only at Sync and
  /// on Subscribe/Unsubscribe), bounding the at-least-once replay window.
  uint64_t sub_checkpoint_interval_blocks = 64;

  /// Bound on buffered subscription events retained for redelivery
  /// (EventsSince). A subscriber whose cursor falls behind this window gets
  /// its events regenerated by re-matching the mined blocks — same bytes,
  /// higher cost — so memory stays bounded no matter how slow a consumer
  /// is. 0 = unbounded log.
  size_t sub_event_log_capacity = 4096;

  // --- introspection plane (common/span.h, common/flight_recorder.h) -------

  /// Build a causal span tree for every Query/QueryBatch/Append and feed the
  /// stage histograms from its projection. Off = the processor runs with no
  /// trace at all (the true zero-overhead baseline; only total latency is
  /// observed). Callers that pass their own QueryTrace are always traced,
  /// regardless of this switch. Tracing never changes response bytes.
  bool tracing = true;

  /// Finished span trees retained for GET /debug/traces: FIFO capacity of
  /// the sampled set (the slowest handful is kept on top of this).
  size_t trace_ring_capacity = 64;
  /// Keep every Nth finished tree (0 = keep only the slowest set).
  uint64_t trace_sample_every = 16;

  /// Verification canary: every Nth successful query is replayed through
  /// Verify against a fresh light client on a background thread, feeding
  /// vchain_canary_{verified,failed,skipped}_total. 0 = canary off. A
  /// nonzero failed counter means the SP served an answer its own auditor
  /// could not verify — a page-worthy integrity signal.
  uint64_t canary_sample_every = 0;
  /// Audit-queue budget: sampled queries beyond this many pending audits
  /// are counted as skipped instead of queued (bounded memory, bounded
  /// audit lag).
  size_t canary_max_pending = 32;
};

/// An engine-erased query answer: the result set plus the canonical
/// serialized <R, VO> response — the bytes an SP would put on the wire, and
/// what Verify() checks against block headers.
struct QueryResult {
  std::vector<chain::Object> objects;
  Bytes response_bytes;
  /// Size of the VO alone (the paper's VO-size metric; response_bytes also
  /// carries the result objects).
  size_t vo_bytes = 0;
};

/// One per-(standing query, block) notification, buffered at Append and
/// drained with TakeSubscriptionEvents. `notification_bytes` is the
/// canonical serialized proof tree for VerifyNotification.
struct SubscriptionEvent {
  uint32_t query_id = 0;
  uint64_t height = 0;
  std::vector<chain::Object> objects;  ///< matches (often empty)
  Bytes notification_bytes;
};

/// One page of a subscriber's event stream (EventsSince): the events for
/// heights [cursor, next_cursor) in appended order, plus where to resume.
struct SubscriptionEventBatch {
  std::vector<SubscriptionEvent> events;
  /// Pass this as `cursor` on the next call; equals the cursor argument
  /// (clamped to the subscription's start) when nothing new is available.
  uint64_t next_cursor = 0;
  /// True when at least one event was regenerated by re-matching a block —
  /// the caller's cursor had fallen behind the bounded in-memory log. The
  /// bytes are identical to the originals; this is a diagnostics signal.
  bool redelivered = false;
};

/// A consistent snapshot of the service's observable state.
struct ServiceStats {
  EngineKind engine = EngineKind::kAcc2;
  bool durable = false;
  /// Read-only after a storage write fault; queries keep serving, Append
  /// returns Unavailable until the process restarts over a reopened store.
  bool degraded = false;
  uint64_t num_blocks = 0;
  uint64_t queries_served = 0;
  uint64_t subscriptions_active = 0;
  uint64_t subscription_events_pending = 0;
  /// Which matcher serves the standing queries (mirrors
  /// ServiceOptions::sub_matcher; also visible as the sub-tier metrics).
  sub::MatcherMode sub_matcher = sub::MatcherMode::kIndexed;
  /// Sequence number of the latest durable subscription checkpoint
  /// (0 = none written or loaded; checkpointing off or in-memory mode).
  uint64_t sub_checkpoint_seq = 0;
  LruStats proof_cache;
  LruStats block_cache;  ///< zero in in-memory mode (no decoded-block cache)

  // Introspection plane (process-wide families read back from the metrics
  // registry — one source of truth; see ServiceOptions::canary_sample_every).
  uint64_t canary_verified = 0;
  uint64_t canary_failed = 0;  ///< nonzero = integrity alarm
  uint64_t canary_skipped = 0;
  /// Span trees currently retained for /debug/traces (this service's ring).
  uint64_t trace_ring_occupancy = 0;
  /// Events ever recorded by the process-wide flight recorder.
  uint64_t flight_recorder_seq = 0;
};

class IServiceBackend;

class Service {
 public:
  /// Build a service from `options`: create the engine (or adopt
  /// options.oracle), open/resume the store when `store_dir` is set, and
  /// wire the caches. InvalidArgument for inconsistent options; store-open
  /// failures (Corruption etc.) pass through.
  static Result<std::unique_ptr<Service>> Open(ServiceOptions options);

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- miner side (exclusive; serialized against queries) -----------------

  /// Mine the next block from `objects` at `timestamp` (monotonic), write
  /// it through to the store when durable, and run it past every standing
  /// subscription (events are buffered for TakeSubscriptionEvents).
  Status Append(std::vector<chain::Object> objects, uint64_t timestamp);

  /// Durable commit point: fsync the store and advance its commit
  /// watermark. No-op in in-memory mode.
  Status Sync();

  /// OK while the service accepts writes; Unavailable (with the original
  /// fault in the message) once a storage write fault has forced read-only
  /// degraded mode. Queries are unaffected either way — this is what a
  /// load balancer or /healthz endpoint should poll.
  Status Health() const;

  // --- query side (thread-safe, concurrent) -------------------------------

  /// Answer one Boolean range query: <R, VO> as a QueryResult.
  /// InvalidArgument for a structurally invalid query.
  ///
  /// `trace` (optional) receives the per-stage wall-time/work breakdown
  /// (core/query_trace.h), total_ns included. Every query is stage-timed
  /// internally either way — the breakdown feeds the
  /// vchain_service_query_stage_seconds histograms — so passing a trace
  /// costs nothing extra and never changes the response bytes.
  Result<QueryResult> Query(const core::Query& q,
                            core::QueryTrace* trace = nullptr);

  /// Answer a batch concurrently on the shared worker pool (results in
  /// input order, each independently ok or failed). Byte-identical to
  /// issuing the same queries serially.
  std::vector<Result<QueryResult>> QueryBatch(
      const std::vector<core::Query>& queries);

  // --- user-side helpers ---------------------------------------------------

  /// Feed the chain's sealed headers to a light client (Fig 3 header sync).
  Status SyncLightClient(chain::LightClient* client) const;

  /// One page of sealed headers, heights [from, to] inclusive (both clamped
  /// to the tip; empty when `from` is past it). This is the light-client
  /// sync primitive a remote transport exposes (GET /headers): the caller
  /// pages forward and feeds each header to its own LightClient, which
  /// re-validates linkage and consensus — nothing here is trusted.
  Result<std::vector<chain::BlockHeader>> Headers(uint64_t from,
                                                  uint64_t to) const;

  /// Decode canonical response bytes (the on-the-wire form) back into a
  /// QueryResult — result objects and VO size re-derived from the bytes.
  /// Corruption when the bytes don't decode exactly. A remote client pairs
  /// this with Verify: decode what arrived, then check it against headers.
  Result<QueryResult> DecodeResult(const Bytes& response_bytes) const;

  /// Replay `result` against headers only: soundness + completeness
  /// (core/verifier.h). VerifyFailed = the response lies; Corruption = the
  /// bytes don't decode.
  Status Verify(const core::Query& q, const QueryResult& result,
                const chain::LightClient& client) const;

  /// Verify one buffered subscription event against headers only.
  Status VerifyNotification(const core::Query& q, const SubscriptionEvent& ev,
                            const chain::LightClient& client) const;

  // --- subscriptions -------------------------------------------------------

  /// Register a standing query; events cover blocks appended afterwards.
  Result<uint32_t> Subscribe(const core::Query& q);
  Status Unsubscribe(uint32_t id);

  /// Per-subscriber event cursor — the wire-facing read path. Returns up to
  /// `max_events` events for subscription `id` covering block heights
  /// [cursor, next_cursor), oldest first. Cursors are block heights: a new
  /// subscriber starts at the height returned by the transport at subscribe
  /// time; after each batch it resumes from `next_cursor`. Events still in
  /// the bounded in-memory log are served as-is; older ones are regenerated
  /// by re-matching the mined block (bit-identical bytes, `redelivered`
  /// set). NotFound for an unknown id. Delivery is at-least-once; consumers
  /// dedup by (query_id, height).
  Result<SubscriptionEventBatch> EventsSince(uint32_t id, uint64_t cursor,
                                             size_t max_events = 64);

  /// Decode canonical notification bytes (the on-the-wire form) back into a
  /// SubscriptionEvent — query_id, height and matched objects re-derived
  /// from the bytes. Corruption when they don't decode exactly. A remote
  /// subscriber pairs this with VerifyNotification, exactly like
  /// DecodeResult pairs with Verify.
  Result<SubscriptionEvent> DecodeNotification(
      const Bytes& notification_bytes) const;

  /// Register one process-wide listener called after every successful
  /// Append with the new chain tip. The transport uses this to wake parked
  /// long-poll/SSE subscribers the moment events exist, instead of polling.
  /// Called on the appending thread with no Service locks held; keep it
  /// cheap (flag + notify). Pass nullptr to clear.
  void SetSubscriptionListener(std::function<void(uint64_t tip)> listener);

  /// Drain all buffered subscription events (appended order).
  ///
  /// DEPRECATED: this is the pre-cursor global drain — one caller consumes
  /// everything, which cannot serve multiple wire subscribers. It now runs
  /// as a thin wrapper over the cursor machinery behind EventsSince and
  /// will be removed next PR; migrate to EventsSince(id, cursor).
  std::vector<SubscriptionEvent> TakeSubscriptionEvents();

  // --- introspection -------------------------------------------------------

  ServiceStats Stats() const;
  uint64_t NumBlocks() const;
  EngineKind engine_kind() const;
  const core::ChainConfig& config() const;
  const ServiceOptions& options() const;

  /// Block until every canary audit enqueued so far has run (tests and
  /// graceful shutdown). No-op when the canary is off.
  void DrainCanary();

  /// The retained span trees (sampled + slowest) as one JSON document —
  /// what GET /debug/traces serves.
  std::string DebugTracesJson() const;

  /// Effective configuration with per-field provenance ("default" | "set",
  /// against a default-constructed ServiceOptions/ChainConfig) — what
  /// GET /debug/config serves.
  std::string DebugConfigJson() const;

 private:
  explicit Service(std::unique_ptr<IServiceBackend> backend);

  struct CanaryItem {
    core::Query query;
    Bytes response_bytes;
    uint64_t tip = 0;  ///< chain height when the answer was produced
  };

  Result<QueryResult> QueryInternal(const core::Query& q,
                                    core::QueryTrace* caller_trace);
  void MaybeEnqueueCanary(const core::Query& q, const QueryResult& result);
  void CanaryLoop();
  void RunCanaryItem(const CanaryItem& item);
  void NotifySubscriptionListener();

  std::unique_ptr<IServiceBackend> backend_;

  /// Retention ring behind /debug/traces; always present so opted-in traces
  /// are retained even with ServiceOptions::tracing == false.
  std::unique_ptr<trace::TraceRing> ring_;

  std::atomic<uint64_t> canary_tick_{0};
  mutable std::mutex canary_mu_;
  std::condition_variable canary_cv_;
  std::deque<CanaryItem> canary_queue_;
  bool canary_stop_ = false;
  bool canary_busy_ = false;
  std::thread canary_thread_;  ///< joinable only when canary_sample_every > 0

  mutable std::mutex listener_mu_;
  std::function<void(uint64_t)> sub_listener_;  ///< SetSubscriptionListener
};

}  // namespace vchain::api

namespace vchain {
// The service layer is the intended first contact with the library; alias
// it into the top-level namespace (vchain::Service, vchain::QueryBuilder in
// api/query_builder.h).
using api::EngineKind;
using api::QueryResult;
using api::Service;
using api::ServiceOptions;
using api::ServiceStats;
using api::SubscriptionEvent;
using api::SubscriptionEventBatch;
}  // namespace vchain

#endif  // VCHAIN_API_SERVICE_H_

// The engine-erasure seam under api::Service.
//
// Service is the public, engine-agnostic shell; IServiceBackend is the
// virtual interface it forwards to; ServiceBackend<Engine>
// (api/backend_impl.h) is the one implementation, instantiated for each
// EngineKind by Service::Open. Virtual-dispatch cost is irrelevant here —
// one call per query against milliseconds of proving — and in exchange the
// engine choice (and with it every template parameter in the stack) becomes
// a runtime value.
//
// Thread-safety contract: Query / Stats / NumBlocks / SyncLightClient /
// Verify* are safe from any thread, concurrently; Append / Subscribe /
// Unsubscribe / TakeSubscriptionEvents / Sync are safe from any thread but
// serialize against queries (implementations hold a shared_mutex — queries
// shared, mutations exclusive).

#ifndef VCHAIN_API_BACKEND_H_
#define VCHAIN_API_BACKEND_H_

#include <vector>

#include "api/service.h"
#include "core/query_trace.h"

namespace vchain::api {

class IServiceBackend {
 public:
  virtual ~IServiceBackend() = default;

  virtual Status Append(std::vector<chain::Object> objects,
                        uint64_t timestamp) = 0;
  virtual Status Sync() = 0;
  virtual Status Health() const = 0;

  /// `trace` (optional) receives the per-stage breakdown, serialize_ns
  /// included; tracing never changes the response bytes.
  virtual Result<QueryResult> Query(const core::Query& q,
                                    core::QueryTrace* trace) = 0;

  virtual Status SyncLightClient(chain::LightClient* client) const = 0;
  virtual Result<std::vector<chain::BlockHeader>> Headers(
      uint64_t from, uint64_t to) const = 0;
  virtual Result<QueryResult> DecodeResult(
      const Bytes& response_bytes) const = 0;
  virtual Status Verify(const core::Query& q, const QueryResult& result,
                        const chain::LightClient& client) const = 0;
  virtual Status VerifyNotification(const core::Query& q,
                                    const SubscriptionEvent& ev,
                                    const chain::LightClient& client) const = 0;

  virtual Result<uint32_t> Subscribe(const core::Query& q) = 0;
  virtual Status Unsubscribe(uint32_t id) = 0;
  virtual Result<SubscriptionEventBatch> EventsSince(uint32_t id,
                                                     uint64_t cursor,
                                                     size_t max_events) = 0;
  virtual Result<SubscriptionEvent> DecodeNotification(
      const Bytes& notification_bytes) const = 0;
  virtual std::vector<SubscriptionEvent> TakeSubscriptionEvents() = 0;

  virtual ServiceStats Stats() const = 0;
  virtual uint64_t NumBlocks() const = 0;
  virtual const ServiceOptions& options() const = 0;
};

}  // namespace vchain::api

#endif  // VCHAIN_API_BACKEND_H_

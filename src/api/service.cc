// api::Service — engine dispatch and the erased forwarding shell.
//
// The only engine-kind switch in the library lives here: Open instantiates
// ServiceBackend<Engine> for the requested EngineKind, and everything after
// that is virtual calls through IServiceBackend. QueryBatch is implemented
// at this layer (it is pure orchestration — fan the per-query calls out on
// the process-wide ThreadPool and keep input order) so backends stay a
// single-query interface.

#include "api/service.h"

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <utility>

#include "accum/acc2.h"
#include "accum/mock.h"
#include "api/backend_impl.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace vchain::api {

namespace {

/// One registration, process-wide: total query latency, the per-stage
/// share histograms the paper's cost breakdown reads from, and the
/// served/error counters. Pointers are stable, so grab them once.
struct QueryMetrics {
  metrics::Histogram* query_seconds;
  metrics::Histogram* stage_setup;
  metrics::Histogram* stage_window_lookup;
  metrics::Histogram* stage_match_walk;
  metrics::Histogram* stage_aggregate;
  metrics::Histogram* stage_prove;
  metrics::Histogram* stage_serialize;
  metrics::Counter* queries_total;
  metrics::Counter* query_errors_total;
  metrics::Counter* proof_cache_hits_total;
  metrics::Counter* proof_cache_misses_total;

  static const QueryMetrics& Get() {
    static const QueryMetrics m = [] {
      metrics::Registry& r = metrics::Registry::Default();
      const char* stage_name = "vchain_service_query_stage_seconds";
      const char* stage_help =
          "Per-stage server-side query latency (see core/query_trace.h)";
      QueryMetrics out;
      out.query_seconds = r.GetLatencyHistogram(
          "vchain_service_query_seconds",
          "End-to-end server-side query latency, serialization included");
      out.stage_setup =
          r.GetLatencyHistogram(stage_name, stage_help, {{"stage", "setup"}});
      out.stage_window_lookup = r.GetLatencyHistogram(
          stage_name, stage_help, {{"stage", "window_lookup"}});
      out.stage_match_walk = r.GetLatencyHistogram(
          stage_name, stage_help, {{"stage", "match_walk"}});
      out.stage_aggregate = r.GetLatencyHistogram(stage_name, stage_help,
                                                  {{"stage", "aggregate"}});
      out.stage_prove =
          r.GetLatencyHistogram(stage_name, stage_help, {{"stage", "prove"}});
      out.stage_serialize = r.GetLatencyHistogram(stage_name, stage_help,
                                                  {{"stage", "serialize"}});
      out.queries_total = r.GetCounter("vchain_service_queries_total",
                                       "Queries answered successfully");
      out.query_errors_total = r.GetCounter(
          "vchain_service_query_errors_total",
          "Queries rejected or failed (validation errors included)");
      out.proof_cache_hits_total =
          r.GetCounter("vchain_service_proof_cache_hits_total",
                       "Disjointness-proof cache hits observed by queries");
      out.proof_cache_misses_total =
          r.GetCounter("vchain_service_proof_cache_misses_total",
                       "Disjointness-proof cache misses (proofs computed)");
      return out;
    }();
    return m;
  }
};

/// The canary's own tier: audit verdict counters plus replay latency.
/// Registered once per process (families are visible at 0 from startup so a
/// flat vchain_canary_failed_total of 0 is an observable "all clear").
struct CanaryMetrics {
  metrics::Counter* verified_total;
  metrics::Counter* failed_total;
  metrics::Counter* skipped_total;
  metrics::Histogram* verify_seconds;

  static const CanaryMetrics& Get() {
    static const CanaryMetrics m = [] {
      metrics::Registry& r = metrics::Registry::Default();
      CanaryMetrics out;
      out.verified_total = r.GetCounter(
          "vchain_canary_verified_total",
          "Sampled answers the background auditor re-verified successfully");
      out.failed_total = r.GetCounter(
          "vchain_canary_failed_total",
          "Sampled answers that FAILED re-verification (integrity alarm)");
      out.skipped_total = r.GetCounter(
          "vchain_canary_skipped_total",
          "Sampled answers dropped because the audit queue was full");
      out.verify_seconds = r.GetLatencyHistogram(
          "vchain_canary_verify_seconds",
          "Canary replay latency (light-client sync + Verify)");
      return out;
    }();
    return m;
  }
};

void ObserveQueryTrace(const core::QueryTrace& t, bool ok) {
  const QueryMetrics& m = QueryMetrics::Get();
  if (!ok) {
    m.query_errors_total->Inc();
    return;
  }
  m.queries_total->Inc();
  m.query_seconds->Observe(static_cast<double>(t.total_ns) * 1e-9);
  m.stage_setup->Observe(static_cast<double>(t.setup_ns) * 1e-9);
  m.stage_window_lookup->Observe(static_cast<double>(t.window_lookup_ns) *
                                 1e-9);
  m.stage_match_walk->Observe(static_cast<double>(t.match_walk_ns) * 1e-9);
  m.stage_aggregate->Observe(static_cast<double>(t.aggregate_ns) * 1e-9);
  m.stage_prove->Observe(static_cast<double>(t.prove_ns) * 1e-9);
  m.stage_serialize->Observe(static_cast<double>(t.serialize_ns) * 1e-9);
  m.proof_cache_hits_total->Inc(t.proof_cache_hits);
  m.proof_cache_misses_total->Inc(t.proof_cache_misses);
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMockAcc1: return "mock-acc1";
    case EngineKind::kMockAcc2: return "mock-acc2";
    case EngineKind::kAcc1: return "acc1";
    case EngineKind::kAcc2: return "acc2";
  }
  return "unknown";
}

bool EngineKindFromName(std::string_view name, EngineKind* out) {
  for (EngineKind kind : {EngineKind::kMockAcc1, EngineKind::kMockAcc2,
                          EngineKind::kAcc1, EngineKind::kAcc2}) {
    if (name == EngineKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<Service>> Service::Open(ServiceOptions options) {
  if (options.proof_cache_shards == 0) options.proof_cache_shards = 1;
  std::shared_ptr<accum::KeyOracle> oracle =
      options.oracle != nullptr
          ? options.oracle
          : accum::KeyOracle::Create(options.oracle_seed, options.acc_params);
  options.oracle = oracle;
  // Read out of `options` before the moves below — argument evaluation
  // order within each Create call is unspecified.
  const accum::ProverMode prover_mode = options.prover_mode;

  Result<std::unique_ptr<IServiceBackend>> backend =
      Status::InvalidArgument("unknown engine kind");
  switch (options.engine) {
    case EngineKind::kMockAcc1:
      backend = ServiceBackend<accum::MockAcc1Engine>::Create(
          std::move(options), accum::MockAcc1Engine(oracle));
      break;
    case EngineKind::kMockAcc2:
      backend = ServiceBackend<accum::MockAcc2Engine>::Create(
          std::move(options), accum::MockAcc2Engine(oracle));
      break;
    case EngineKind::kAcc1:
      backend = ServiceBackend<accum::Acc1Engine>::Create(
          std::move(options), accum::Acc1Engine(oracle, prover_mode));
      break;
    case EngineKind::kAcc2:
      backend = ServiceBackend<accum::Acc2Engine>::Create(
          std::move(options), accum::Acc2Engine(oracle, prover_mode));
      break;
  }
  if (!backend.ok()) return backend.status();
  return std::unique_ptr<Service>(new Service(backend.TakeValue()));
}

Service::Service(std::unique_ptr<IServiceBackend> backend)
    : backend_(std::move(backend)) {
  const ServiceOptions& opts = backend_->options();
  ring_ = std::make_unique<trace::TraceRing>(opts.trace_ring_capacity,
                                             opts.trace_sample_every);
  // Register the canary families up front (visible at 0) even when the
  // canary is off, so dashboards see an explicit "all clear", not absence.
  (void)CanaryMetrics::Get();
  if (opts.canary_sample_every > 0) {
    canary_thread_ = std::thread([this] { CanaryLoop(); });
  }
}

Service::~Service() {
  if (canary_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(canary_mu_);
      canary_stop_ = true;
    }
    canary_cv_.notify_all();
    canary_thread_.join();  // the loop drains the queue before exiting
  }
}

Status Service::Append(std::vector<chain::Object> objects,
                       uint64_t timestamp) {
  static metrics::Histogram* append_seconds =
      metrics::Registry::Default().GetLatencyHistogram(
          "vchain_service_append_seconds",
          "Mine-and-write-through latency per appended block");
  metrics::ScopedTimer timer(append_seconds);
  if (!backend_->options().tracing) {
    Status st = backend_->Append(std::move(objects), timestamp);
    if (st.ok()) NotifySubscriptionListener();
    return st;
  }
  // The append path has no trace parameter (miners don't opt in), so the
  // tree is ambient: the backend attaches "mine" and "sub_dispatch" spans
  // through trace::CurrentSpan().
  auto tree = std::make_shared<trace::SpanTree>("append");
  Status st;
  {
    trace::AmbientScope scope(tree.get(), trace::kRootSpan);
    st = backend_->Append(std::move(objects), timestamp);
  }
  tree->EndRoot();
  ring_->Offer(std::move(tree));
  if (st.ok()) NotifySubscriptionListener();
  return st;
}

Status Service::Sync() { return backend_->Sync(); }

Status Service::Health() const { return backend_->Health(); }

Result<QueryResult> Service::QueryInternal(const core::Query& q,
                                           core::QueryTrace* caller_trace) {
  if (caller_trace == nullptr && !backend_->options().tracing) {
    // True zero-overhead baseline: the processor never sees a trace. Only
    // total latency and the served/error counters are observed; the stage
    // histograms go unfed (they are a projection of spans and there are
    // none). bench_query_stages measures traced-vs-this to bound overhead.
    const QueryMetrics& m = QueryMetrics::Get();
    uint64_t t0 = metrics::MonotonicNanos();
    auto out = backend_->Query(q, nullptr);
    if (out.ok()) {
      m.queries_total->Inc();
      m.query_seconds->Observe(
          static_cast<double>(metrics::MonotonicNanos() - t0) * 1e-9);
      MaybeEnqueueCanary(q, out.value());
    } else {
      m.query_errors_total->Inc();
    }
    return out;
  }
  // Traced path: one span tree per call, rooted here so total_ns is the
  // root span's interval — stage histograms, slow-query logs, the trace
  // header, and /debug/traces all project from this one tree.
  core::QueryTrace local;
  core::QueryTrace* t = caller_trace != nullptr ? caller_trace : &local;
  trace::SpanTree* tree = t->EnsureSpans("query");
  auto out = backend_->Query(q, t);
  tree->EndRoot();
  t->ProjectSpans();
  ObserveQueryTrace(*t, out.ok());
  ring_->Offer(t->spans);
  if (out.ok()) MaybeEnqueueCanary(q, out.value());
  return out;
}

Result<QueryResult> Service::Query(const core::Query& q,
                                   core::QueryTrace* trace) {
  return QueryInternal(q, trace);
}

std::vector<Result<QueryResult>> Service::QueryBatch(
    const std::vector<core::Query>& queries) {
  static metrics::Histogram* batch_seconds =
      metrics::Registry::Default().GetLatencyHistogram(
          "vchain_service_batch_seconds",
          "Whole-batch latency of QueryBatch calls");
  metrics::ScopedTimer timer(batch_seconds);
  std::vector<Result<QueryResult>> out(
      queries.size(), Result<QueryResult>(Status::Internal("not executed")));
  ThreadPool& pool = ThreadPool::Shared();
  pool.ParallelFor(queries.size(), pool.NumWorkers() + 1, [&](size_t i) {
    out[i] = QueryInternal(queries[i], nullptr);
  });
  return out;
}

void Service::MaybeEnqueueCanary(const core::Query& q,
                                 const QueryResult& result) {
  if (!canary_thread_.joinable()) return;
  const uint64_t n = canary_tick_.fetch_add(1, std::memory_order_relaxed);
  if (n % backend_->options().canary_sample_every != 0) return;
  CanaryItem item;
  item.query = q;
  item.response_bytes = result.response_bytes;
  item.tip = backend_->NumBlocks();
  {
    std::lock_guard<std::mutex> lock(canary_mu_);
    if (canary_queue_.size() >= backend_->options().canary_max_pending) {
      CanaryMetrics::Get().skipped_total->Inc();
      return;
    }
    canary_queue_.push_back(std::move(item));
  }
  canary_cv_.notify_one();
}

void Service::CanaryLoop() {
  for (;;) {
    CanaryItem item;
    {
      std::unique_lock<std::mutex> lock(canary_mu_);
      canary_cv_.wait(lock, [this] {
        return canary_stop_ || !canary_queue_.empty();
      });
      if (canary_queue_.empty()) {
        if (canary_stop_) return;  // stopped with nothing left to audit
        continue;
      }
      item = std::move(canary_queue_.front());
      canary_queue_.pop_front();
      canary_busy_ = true;
    }
    RunCanaryItem(item);
    {
      std::lock_guard<std::mutex> lock(canary_mu_);
      canary_busy_ = false;
    }
    canary_cv_.notify_all();  // wake DrainCanary waiters
  }
}

void Service::RunCanaryItem(const CanaryItem& item) {
  const CanaryMetrics& m = CanaryMetrics::Get();
  metrics::ScopedTimer timer(m.verify_seconds);
  // Replay exactly what an honest light client would do, against the chain
  // as of when the answer was produced: sync headers [0, tip) into a fresh
  // client (re-validating linkage + consensus), then run the full
  // soundness/completeness check. Bounding the sync at item.tip keeps
  // blocks appended after the answer from reading as "missing results".
  Status st = Status::OK();
  chain::LightClient client(backend_->options().config.pow);
  if (item.tip > 0) {
    auto headers = backend_->Headers(0, item.tip - 1);
    if (!headers.ok()) {
      st = headers.status();
    } else {
      for (const chain::BlockHeader& h : headers.value()) {
        st = client.SyncHeader(h);
        if (!st.ok()) break;
      }
    }
  }
  if (st.ok()) {
    QueryResult replayed;
    replayed.response_bytes = item.response_bytes;
    st = backend_->Verify(item.query, replayed, client);
  }
  if (st.ok()) {
    m.verified_total->Inc();
  } else {
    m.failed_total->Inc();
    flight::FlightRecorder::Get().Record("canary", "verify_failed", item.tip);
    logging::Error("canary_verify_failed")
        .Kv("tip", item.tip)
        .Kv("reason", st.ToString());
  }
}

void Service::DrainCanary() {
  if (!canary_thread_.joinable()) return;
  std::unique_lock<std::mutex> lock(canary_mu_);
  canary_cv_.wait(lock, [this] {
    return canary_queue_.empty() && !canary_busy_;
  });
}

Status Service::SyncLightClient(chain::LightClient* client) const {
  return backend_->SyncLightClient(client);
}

Result<std::vector<chain::BlockHeader>> Service::Headers(uint64_t from,
                                                         uint64_t to) const {
  return backend_->Headers(from, to);
}

Result<QueryResult> Service::DecodeResult(const Bytes& response_bytes) const {
  return backend_->DecodeResult(response_bytes);
}

Status Service::Verify(const core::Query& q, const QueryResult& result,
                       const chain::LightClient& client) const {
  return backend_->Verify(q, result, client);
}

Status Service::VerifyNotification(const core::Query& q,
                                   const SubscriptionEvent& ev,
                                   const chain::LightClient& client) const {
  return backend_->VerifyNotification(q, ev, client);
}

Result<uint32_t> Service::Subscribe(const core::Query& q) {
  return backend_->Subscribe(q);
}

Status Service::Unsubscribe(uint32_t id) { return backend_->Unsubscribe(id); }

Result<SubscriptionEventBatch> Service::EventsSince(uint32_t id,
                                                    uint64_t cursor,
                                                    size_t max_events) {
  return backend_->EventsSince(id, cursor, max_events);
}

Result<SubscriptionEvent> Service::DecodeNotification(
    const Bytes& notification_bytes) const {
  return backend_->DecodeNotification(notification_bytes);
}

void Service::SetSubscriptionListener(
    std::function<void(uint64_t tip)> listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  sub_listener_ = std::move(listener);
}

void Service::NotifySubscriptionListener() {
  std::function<void(uint64_t)> listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = sub_listener_;
  }
  if (listener) listener(backend_->NumBlocks());
}

std::vector<SubscriptionEvent> Service::TakeSubscriptionEvents() {
  return backend_->TakeSubscriptionEvents();
}

ServiceStats Service::Stats() const {
  ServiceStats s = backend_->Stats();
  // One source of truth: the canary totals come back out of the registry
  // (the counters the auditor itself bumps), not a parallel tally.
  const CanaryMetrics& m = CanaryMetrics::Get();
  s.canary_verified = static_cast<uint64_t>(m.verified_total->Value());
  s.canary_failed = static_cast<uint64_t>(m.failed_total->Value());
  s.canary_skipped = static_cast<uint64_t>(m.skipped_total->Value());
  s.trace_ring_occupancy = ring_->Occupancy();
  s.flight_recorder_seq = flight::FlightRecorder::Get().NextSeq();
  return s;
}

uint64_t Service::NumBlocks() const { return backend_->NumBlocks(); }

EngineKind Service::engine_kind() const { return backend_->options().engine; }

const core::ChainConfig& Service::config() const {
  return backend_->options().config;
}

const ServiceOptions& Service::options() const { return backend_->options(); }

std::string Service::DebugTracesJson() const {
  return ring_->ToJson(core::QueryTrace::kMaxJsonSpans);
}

namespace {

/// Append `"key":{"value":<value>,"provenance":"default|set"}` — value
/// emission differs per type, provenance is always a comparison against the
/// default-constructed options.
void AppendField(std::string* out, const char* key, uint64_t value,
                 uint64_t def, bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s\"%s\":{\"value\":%" PRIu64 ",\"provenance\":\"%s\"}",
                *first ? "" : ",", key, value,
                value == def ? "default" : "set");
  *first = false;
  out->append(buf);
}

void AppendBoolField(std::string* out, const char* key, bool value, bool def,
                     bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s\"%s\":{\"value\":%s,\"provenance\":\"%s\"}",
                *first ? "" : ",", key, value ? "true" : "false",
                value == def ? "default" : "set");
  *first = false;
  out->append(buf);
}

void AppendStringField(std::string* out, const char* key,
                       const std::string& value, const std::string& def,
                       bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("\"");
  out->append(key);
  out->append("\":{\"value\":\"");
  for (char c : value) {  // minimal JSON string escaping
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
  out->append("\",\"provenance\":");
  out->append(value == def ? "\"default\"}" : "\"set\"}");
}

const char* ProverModeName(accum::ProverMode mode) {
  return mode == accum::ProverMode::kHonest ? "honest" : "trusted-fast";
}

}  // namespace

std::string Service::DebugConfigJson() const {
  const ServiceOptions& o = backend_->options();
  const ServiceOptions defaults;
  const core::ChainConfig& c = o.config;
  const core::ChainConfig cdef;
  std::string out = "{\"service\":{";
  bool first = true;
  AppendStringField(&out, "engine", EngineKindName(o.engine),
                    EngineKindName(defaults.engine), &first);
  AppendStringField(&out, "prover_mode", ProverModeName(o.prover_mode),
                    ProverModeName(defaults.prover_mode), &first);
  AppendField(&out, "oracle_seed", o.oracle_seed, defaults.oracle_seed,
              &first);
  AppendStringField(&out, "store_dir", o.store_dir, defaults.store_dir,
                    &first);
  AppendField(&out, "retain_window", o.retain_window, defaults.retain_window,
              &first);
  AppendField(&out, "proof_cache_shards", o.proof_cache_shards,
              defaults.proof_cache_shards, &first);
  AppendBoolField(&out, "subscriptions_share_proofs",
                  o.subscriptions_share_proofs,
                  defaults.subscriptions_share_proofs, &first);
  AppendStringField(&out, "sub_matcher", sub::MatcherModeName(o.sub_matcher),
                    sub::MatcherModeName(defaults.sub_matcher), &first);
  AppendBoolField(&out, "sub_checkpoints", o.sub_checkpoints,
                  defaults.sub_checkpoints, &first);
  AppendField(&out, "sub_checkpoint_interval_blocks",
              o.sub_checkpoint_interval_blocks,
              defaults.sub_checkpoint_interval_blocks, &first);
  AppendField(&out, "sub_event_log_capacity", o.sub_event_log_capacity,
              defaults.sub_event_log_capacity, &first);
  AppendBoolField(&out, "tracing", o.tracing, defaults.tracing, &first);
  AppendField(&out, "trace_ring_capacity", o.trace_ring_capacity,
              defaults.trace_ring_capacity, &first);
  AppendField(&out, "trace_sample_every", o.trace_sample_every,
              defaults.trace_sample_every, &first);
  AppendField(&out, "canary_sample_every", o.canary_sample_every,
              defaults.canary_sample_every, &first);
  AppendField(&out, "canary_max_pending", o.canary_max_pending,
              defaults.canary_max_pending, &first);
  out.append("},\"chain\":{");
  first = true;
  AppendStringField(&out, "mode", core::IndexModeName(c.mode),
                    core::IndexModeName(cdef.mode), &first);
  AppendField(&out, "schema_dims", c.schema.dims, cdef.schema.dims, &first);
  AppendField(&out, "schema_bits", c.schema.bits, cdef.schema.bits, &first);
  AppendField(&out, "skiplist_size", c.skiplist_size, cdef.skiplist_size,
              &first);
  AppendField(&out, "pow_difficulty_bits", c.pow.difficulty_bits,
              cdef.pow.difficulty_bits, &first);
  AppendField(&out, "num_prover_threads", c.num_prover_threads,
              cdef.num_prover_threads, &first);
  AppendField(&out, "proof_cache_capacity", c.proof_cache_capacity,
              cdef.proof_cache_capacity, &first);
  AppendField(&out, "block_cache_blocks", c.block_cache_blocks,
              cdef.block_cache_blocks, &first);
  out.append("}}");
  return out;
}

}  // namespace vchain::api

// api::Service — engine dispatch and the erased forwarding shell.
//
// The only engine-kind switch in the library lives here: Open instantiates
// ServiceBackend<Engine> for the requested EngineKind, and everything after
// that is virtual calls through IServiceBackend. QueryBatch is implemented
// at this layer (it is pure orchestration — fan the per-query calls out on
// the process-wide ThreadPool and keep input order) so backends stay a
// single-query interface.

#include "api/service.h"

#include <utility>

#include "accum/acc2.h"
#include "accum/mock.h"
#include "api/backend_impl.h"
#include "common/thread_pool.h"

namespace vchain::api {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMockAcc1: return "mock-acc1";
    case EngineKind::kMockAcc2: return "mock-acc2";
    case EngineKind::kAcc1: return "acc1";
    case EngineKind::kAcc2: return "acc2";
  }
  return "unknown";
}

bool EngineKindFromName(std::string_view name, EngineKind* out) {
  for (EngineKind kind : {EngineKind::kMockAcc1, EngineKind::kMockAcc2,
                          EngineKind::kAcc1, EngineKind::kAcc2}) {
    if (name == EngineKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<Service>> Service::Open(ServiceOptions options) {
  if (options.proof_cache_shards == 0) options.proof_cache_shards = 1;
  std::shared_ptr<accum::KeyOracle> oracle =
      options.oracle != nullptr
          ? options.oracle
          : accum::KeyOracle::Create(options.oracle_seed, options.acc_params);
  options.oracle = oracle;
  // Read out of `options` before the moves below — argument evaluation
  // order within each Create call is unspecified.
  const accum::ProverMode prover_mode = options.prover_mode;

  Result<std::unique_ptr<IServiceBackend>> backend =
      Status::InvalidArgument("unknown engine kind");
  switch (options.engine) {
    case EngineKind::kMockAcc1:
      backend = ServiceBackend<accum::MockAcc1Engine>::Create(
          std::move(options), accum::MockAcc1Engine(oracle));
      break;
    case EngineKind::kMockAcc2:
      backend = ServiceBackend<accum::MockAcc2Engine>::Create(
          std::move(options), accum::MockAcc2Engine(oracle));
      break;
    case EngineKind::kAcc1:
      backend = ServiceBackend<accum::Acc1Engine>::Create(
          std::move(options), accum::Acc1Engine(oracle, prover_mode));
      break;
    case EngineKind::kAcc2:
      backend = ServiceBackend<accum::Acc2Engine>::Create(
          std::move(options), accum::Acc2Engine(oracle, prover_mode));
      break;
  }
  if (!backend.ok()) return backend.status();
  return std::unique_ptr<Service>(new Service(backend.TakeValue()));
}

Service::Service(std::unique_ptr<IServiceBackend> backend)
    : backend_(std::move(backend)) {}

Service::~Service() = default;

Status Service::Append(std::vector<chain::Object> objects,
                       uint64_t timestamp) {
  return backend_->Append(std::move(objects), timestamp);
}

Status Service::Sync() { return backend_->Sync(); }

Status Service::Health() const { return backend_->Health(); }

Result<QueryResult> Service::Query(const core::Query& q) {
  return backend_->Query(q);
}

std::vector<Result<QueryResult>> Service::QueryBatch(
    const std::vector<core::Query>& queries) {
  std::vector<Result<QueryResult>> out(
      queries.size(), Result<QueryResult>(Status::Internal("not executed")));
  ThreadPool& pool = ThreadPool::Shared();
  pool.ParallelFor(queries.size(), pool.NumWorkers() + 1,
                   [&](size_t i) { out[i] = backend_->Query(queries[i]); });
  return out;
}

Status Service::SyncLightClient(chain::LightClient* client) const {
  return backend_->SyncLightClient(client);
}

Result<std::vector<chain::BlockHeader>> Service::Headers(uint64_t from,
                                                         uint64_t to) const {
  return backend_->Headers(from, to);
}

Result<QueryResult> Service::DecodeResult(const Bytes& response_bytes) const {
  return backend_->DecodeResult(response_bytes);
}

Status Service::Verify(const core::Query& q, const QueryResult& result,
                       const chain::LightClient& client) const {
  return backend_->Verify(q, result, client);
}

Status Service::VerifyNotification(const core::Query& q,
                                   const SubscriptionEvent& ev,
                                   const chain::LightClient& client) const {
  return backend_->VerifyNotification(q, ev, client);
}

Result<uint32_t> Service::Subscribe(const core::Query& q) {
  return backend_->Subscribe(q);
}

Status Service::Unsubscribe(uint32_t id) { return backend_->Unsubscribe(id); }

std::vector<SubscriptionEvent> Service::TakeSubscriptionEvents() {
  return backend_->TakeSubscriptionEvents();
}

ServiceStats Service::Stats() const { return backend_->Stats(); }

uint64_t Service::NumBlocks() const { return backend_->NumBlocks(); }

EngineKind Service::engine_kind() const { return backend_->options().engine; }

const core::ChainConfig& Service::config() const {
  return backend_->options().config;
}

}  // namespace vchain::api

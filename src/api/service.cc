// api::Service — engine dispatch and the erased forwarding shell.
//
// The only engine-kind switch in the library lives here: Open instantiates
// ServiceBackend<Engine> for the requested EngineKind, and everything after
// that is virtual calls through IServiceBackend. QueryBatch is implemented
// at this layer (it is pure orchestration — fan the per-query calls out on
// the process-wide ThreadPool and keep input order) so backends stay a
// single-query interface.

#include "api/service.h"

#include <utility>

#include "accum/acc2.h"
#include "accum/mock.h"
#include "api/backend_impl.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace vchain::api {

namespace {

/// One registration, process-wide: total query latency, the per-stage
/// share histograms the paper's cost breakdown reads from, and the
/// served/error counters. Pointers are stable, so grab them once.
struct QueryMetrics {
  metrics::Histogram* query_seconds;
  metrics::Histogram* stage_setup;
  metrics::Histogram* stage_window_lookup;
  metrics::Histogram* stage_match_walk;
  metrics::Histogram* stage_aggregate;
  metrics::Histogram* stage_prove;
  metrics::Histogram* stage_serialize;
  metrics::Counter* queries_total;
  metrics::Counter* query_errors_total;
  metrics::Counter* proof_cache_hits_total;
  metrics::Counter* proof_cache_misses_total;

  static const QueryMetrics& Get() {
    static const QueryMetrics m = [] {
      metrics::Registry& r = metrics::Registry::Default();
      const char* stage_name = "vchain_service_query_stage_seconds";
      const char* stage_help =
          "Per-stage server-side query latency (see core/query_trace.h)";
      QueryMetrics out;
      out.query_seconds = r.GetLatencyHistogram(
          "vchain_service_query_seconds",
          "End-to-end server-side query latency, serialization included");
      out.stage_setup =
          r.GetLatencyHistogram(stage_name, stage_help, {{"stage", "setup"}});
      out.stage_window_lookup = r.GetLatencyHistogram(
          stage_name, stage_help, {{"stage", "window_lookup"}});
      out.stage_match_walk = r.GetLatencyHistogram(
          stage_name, stage_help, {{"stage", "match_walk"}});
      out.stage_aggregate = r.GetLatencyHistogram(stage_name, stage_help,
                                                  {{"stage", "aggregate"}});
      out.stage_prove =
          r.GetLatencyHistogram(stage_name, stage_help, {{"stage", "prove"}});
      out.stage_serialize = r.GetLatencyHistogram(stage_name, stage_help,
                                                  {{"stage", "serialize"}});
      out.queries_total = r.GetCounter("vchain_service_queries_total",
                                       "Queries answered successfully");
      out.query_errors_total = r.GetCounter(
          "vchain_service_query_errors_total",
          "Queries rejected or failed (validation errors included)");
      out.proof_cache_hits_total =
          r.GetCounter("vchain_service_proof_cache_hits_total",
                       "Disjointness-proof cache hits observed by queries");
      out.proof_cache_misses_total =
          r.GetCounter("vchain_service_proof_cache_misses_total",
                       "Disjointness-proof cache misses (proofs computed)");
      return out;
    }();
    return m;
  }
};

void ObserveQueryTrace(const core::QueryTrace& t, bool ok) {
  const QueryMetrics& m = QueryMetrics::Get();
  if (!ok) {
    m.query_errors_total->Inc();
    return;
  }
  m.queries_total->Inc();
  m.query_seconds->Observe(static_cast<double>(t.total_ns) * 1e-9);
  m.stage_setup->Observe(static_cast<double>(t.setup_ns) * 1e-9);
  m.stage_window_lookup->Observe(static_cast<double>(t.window_lookup_ns) *
                                 1e-9);
  m.stage_match_walk->Observe(static_cast<double>(t.match_walk_ns) * 1e-9);
  m.stage_aggregate->Observe(static_cast<double>(t.aggregate_ns) * 1e-9);
  m.stage_prove->Observe(static_cast<double>(t.prove_ns) * 1e-9);
  m.stage_serialize->Observe(static_cast<double>(t.serialize_ns) * 1e-9);
  m.proof_cache_hits_total->Inc(t.proof_cache_hits);
  m.proof_cache_misses_total->Inc(t.proof_cache_misses);
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMockAcc1: return "mock-acc1";
    case EngineKind::kMockAcc2: return "mock-acc2";
    case EngineKind::kAcc1: return "acc1";
    case EngineKind::kAcc2: return "acc2";
  }
  return "unknown";
}

bool EngineKindFromName(std::string_view name, EngineKind* out) {
  for (EngineKind kind : {EngineKind::kMockAcc1, EngineKind::kMockAcc2,
                          EngineKind::kAcc1, EngineKind::kAcc2}) {
    if (name == EngineKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<Service>> Service::Open(ServiceOptions options) {
  if (options.proof_cache_shards == 0) options.proof_cache_shards = 1;
  std::shared_ptr<accum::KeyOracle> oracle =
      options.oracle != nullptr
          ? options.oracle
          : accum::KeyOracle::Create(options.oracle_seed, options.acc_params);
  options.oracle = oracle;
  // Read out of `options` before the moves below — argument evaluation
  // order within each Create call is unspecified.
  const accum::ProverMode prover_mode = options.prover_mode;

  Result<std::unique_ptr<IServiceBackend>> backend =
      Status::InvalidArgument("unknown engine kind");
  switch (options.engine) {
    case EngineKind::kMockAcc1:
      backend = ServiceBackend<accum::MockAcc1Engine>::Create(
          std::move(options), accum::MockAcc1Engine(oracle));
      break;
    case EngineKind::kMockAcc2:
      backend = ServiceBackend<accum::MockAcc2Engine>::Create(
          std::move(options), accum::MockAcc2Engine(oracle));
      break;
    case EngineKind::kAcc1:
      backend = ServiceBackend<accum::Acc1Engine>::Create(
          std::move(options), accum::Acc1Engine(oracle, prover_mode));
      break;
    case EngineKind::kAcc2:
      backend = ServiceBackend<accum::Acc2Engine>::Create(
          std::move(options), accum::Acc2Engine(oracle, prover_mode));
      break;
  }
  if (!backend.ok()) return backend.status();
  return std::unique_ptr<Service>(new Service(backend.TakeValue()));
}

Service::Service(std::unique_ptr<IServiceBackend> backend)
    : backend_(std::move(backend)) {}

Service::~Service() = default;

Status Service::Append(std::vector<chain::Object> objects,
                       uint64_t timestamp) {
  static metrics::Histogram* append_seconds =
      metrics::Registry::Default().GetLatencyHistogram(
          "vchain_service_append_seconds",
          "Mine-and-write-through latency per appended block");
  metrics::ScopedTimer timer(append_seconds);
  return backend_->Append(std::move(objects), timestamp);
}

Status Service::Sync() { return backend_->Sync(); }

Status Service::Health() const { return backend_->Health(); }

Result<QueryResult> Service::Query(const core::Query& q,
                                   core::QueryTrace* trace) {
  // Every query is stage-timed: the trace is a handful of clock reads
  // against milliseconds of proving, and always collecting it keeps the
  // stage histograms honest instead of sampling only opted-in requests.
  core::QueryTrace local;
  core::QueryTrace* t = trace != nullptr ? trace : &local;
  uint64_t t0 = metrics::MonotonicNanos();
  auto out = backend_->Query(q, t);
  t->total_ns += metrics::MonotonicNanos() - t0;
  ObserveQueryTrace(*t, out.ok());
  return out;
}

std::vector<Result<QueryResult>> Service::QueryBatch(
    const std::vector<core::Query>& queries) {
  static metrics::Histogram* batch_seconds =
      metrics::Registry::Default().GetLatencyHistogram(
          "vchain_service_batch_seconds",
          "Whole-batch latency of QueryBatch calls");
  metrics::ScopedTimer timer(batch_seconds);
  std::vector<Result<QueryResult>> out(
      queries.size(), Result<QueryResult>(Status::Internal("not executed")));
  ThreadPool& pool = ThreadPool::Shared();
  pool.ParallelFor(queries.size(), pool.NumWorkers() + 1, [&](size_t i) {
    core::QueryTrace t;
    uint64_t t0 = metrics::MonotonicNanos();
    out[i] = backend_->Query(queries[i], &t);
    t.total_ns += metrics::MonotonicNanos() - t0;
    ObserveQueryTrace(t, out[i].ok());
  });
  return out;
}

Status Service::SyncLightClient(chain::LightClient* client) const {
  return backend_->SyncLightClient(client);
}

Result<std::vector<chain::BlockHeader>> Service::Headers(uint64_t from,
                                                         uint64_t to) const {
  return backend_->Headers(from, to);
}

Result<QueryResult> Service::DecodeResult(const Bytes& response_bytes) const {
  return backend_->DecodeResult(response_bytes);
}

Status Service::Verify(const core::Query& q, const QueryResult& result,
                       const chain::LightClient& client) const {
  return backend_->Verify(q, result, client);
}

Status Service::VerifyNotification(const core::Query& q,
                                   const SubscriptionEvent& ev,
                                   const chain::LightClient& client) const {
  return backend_->VerifyNotification(q, ev, client);
}

Result<uint32_t> Service::Subscribe(const core::Query& q) {
  return backend_->Subscribe(q);
}

Status Service::Unsubscribe(uint32_t id) { return backend_->Unsubscribe(id); }

std::vector<SubscriptionEvent> Service::TakeSubscriptionEvents() {
  return backend_->TakeSubscriptionEvents();
}

ServiceStats Service::Stats() const { return backend_->Stats(); }

uint64_t Service::NumBlocks() const { return backend_->NumBlocks(); }

EngineKind Service::engine_kind() const { return backend_->options().engine; }

const core::ChainConfig& Service::config() const {
  return backend_->options().config;
}

}  // namespace vchain::api

#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

namespace vchain::workload {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::k4SQ: return "4SQ";
    case DatasetKind::kWX: return "WX";
    case DatasetKind::kETH: return "ETH";
  }
  return "?";
}

DatasetProfile Profile4SQ(size_t objects_per_block) {
  DatasetProfile p;
  p.kind = DatasetKind::k4SQ;
  p.schema = NumericSchema{2, 16};  // (longitude, latitude) grid
  p.objects_per_block = objects_per_block;
  p.block_interval = 30;
  p.keywords_per_object = 2;
  p.vocabulary = 512;
  p.zipf_skew = 0.9;
  p.default_selectivity = 0.10;
  p.default_clause_size = 3;
  p.range_dims_per_query = 2;
  return p;
}

DatasetProfile ProfileWX(size_t objects_per_block) {
  DatasetProfile p;
  p.kind = DatasetKind::kWX;
  p.schema = NumericSchema{7, 12};  // seven sensor channels
  p.objects_per_block = objects_per_block;
  p.block_interval = 3600;
  p.keywords_per_object = 2;
  p.vocabulary = 64;  // weather descriptions are a small vocabulary
  p.zipf_skew = 1.1;
  p.default_selectivity = 0.10;
  p.default_clause_size = 3;
  p.range_dims_per_query = 2;  // "two attributes involved in each predicate"
  return p;
}

DatasetProfile ProfileETH(size_t objects_per_block) {
  DatasetProfile p;
  p.kind = DatasetKind::kETH;
  p.schema = NumericSchema{1, 16};  // transfer amount
  p.objects_per_block = objects_per_block;
  p.block_interval = 15;
  p.keywords_per_object = 2;  // sender + receiver address
  p.vocabulary = 4096;        // account universe
  p.zipf_skew = 1.2;          // exchange accounts dominate
  p.default_selectivity = 0.50;
  p.default_clause_size = 9;
  p.range_dims_per_query = 1;
  return p;
}

DatasetProfile ProfileFor(DatasetKind kind, size_t objects_per_block) {
  switch (kind) {
    case DatasetKind::k4SQ: return Profile4SQ(objects_per_block);
    case DatasetKind::kWX: return ProfileWX(objects_per_block);
    case DatasetKind::kETH: return ProfileETH(objects_per_block);
  }
  return Profile4SQ(objects_per_block);
}

ZipfSampler::ZipfSampler(size_t n, double skew) {
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

DatasetGenerator::DatasetGenerator(const DatasetProfile& profile,
                                   uint64_t seed)
    : profile_(profile),
      rng_(seed),
      query_rng_(seed ^ 0x51E12D5EEDULL),
      keyword_sampler_(profile.vocabulary, profile.zipf_skew) {
  // Cluster centers: 4SQ hot spots / WX city baselines.
  size_t num_centers = profile_.kind == DatasetKind::kWX ? 36 : 24;
  std::vector<uint64_t> global;
  for (uint32_t d = 0; d < profile_.schema.dims; ++d) {
    global.push_back(rng_.Below(profile_.schema.DomainSize()));
  }
  for (size_t c = 0; c < num_centers; ++c) {
    std::vector<uint64_t> center;
    for (uint32_t d = 0; d < profile_.schema.dims; ++d) {
      if (profile_.kind == DatasetKind::kWX) {
        // Weather readings are regionally correlated: cities offset only
        // slightly from a shared baseline, giving the high cross-object
        // similarity the paper's WX dataset exhibits.
        uint64_t domain = profile_.schema.DomainSize();
        uint64_t spread = domain / 64 + 1;
        uint64_t v = global[d] + rng_.Below(2 * spread + 1);
        center.push_back((v >= spread && v - spread < domain) ? v - spread
                                                              : global[d]);
      } else {
        center.push_back(rng_.Below(profile_.schema.DomainSize()));
      }
    }
    centers_.push_back(std::move(center));
  }
}

std::string DatasetGenerator::KeywordOf(size_t index) const {
  switch (profile_.kind) {
    case DatasetKind::k4SQ: return "venue:" + std::to_string(index);
    case DatasetKind::kWX: return "wx:" + std::to_string(index);
    case DatasetKind::kETH: return "addr:" + std::to_string(index);
  }
  return "kw:" + std::to_string(index);
}

uint64_t DatasetGenerator::SampleNumeric(uint32_t dim) {
  uint64_t domain = profile_.schema.DomainSize();
  switch (profile_.kind) {
    case DatasetKind::k4SQ: {
      // Gaussian-ish spread around a hot spot.
      const auto& center = centers_[rng_.Below(centers_.size())];
      uint64_t spread = domain / 64;
      uint64_t offset = rng_.Below(2 * spread + 1);
      uint64_t v = center[dim] + offset;
      return (v >= spread && v - spread < domain) ? v - spread
                                                  : center[dim];
    }
    case DatasetKind::kWX: {
      // Stable per-city sensor values with small drift.
      const auto& center = centers_[next_id_ % centers_.size()];
      uint64_t drift = domain / 128 + 1;
      uint64_t v = center[dim] + rng_.Below(2 * drift + 1);
      return (v >= drift && v - drift < domain) ? v - drift : center[dim];
    }
    case DatasetKind::kETH: {
      // Mixture: mostly spread-out transfer amounts with a heavy small-value
      // tail — low prefix sharing across objects (ETH's low similarity).
      double u = rng_.NextDouble();
      double v = rng_.Chance(0.5) ? u : std::pow(u, 4.0);
      return static_cast<uint64_t>(v * static_cast<double>(domain - 1));
    }
  }
  return rng_.Below(domain);
}

std::vector<Object> DatasetGenerator::NextBlock() {
  std::vector<Object> objects;
  uint64_t ts = TimestampOfBlock(next_height_);
  for (size_t i = 0; i < profile_.objects_per_block; ++i) {
    Object o;
    o.id = next_id_;
    o.timestamp = ts;
    for (uint32_t d = 0; d < profile_.schema.dims; ++d) {
      o.numeric.push_back(SampleNumeric(d));
    }
    // Distinct keywords per object.
    while (o.keywords.size() < profile_.keywords_per_object) {
      std::string kw = KeywordOf(keyword_sampler_.Sample(&rng_));
      if (std::find(o.keywords.begin(), o.keywords.end(), kw) ==
          o.keywords.end()) {
        o.keywords.push_back(std::move(kw));
      }
    }
    ++next_id_;
    objects.push_back(std::move(o));
  }
  ++next_height_;
  return objects;
}

Query DatasetGenerator::MakeQuery(double selectivity, size_t clause_size,
                                  uint64_t time_start, uint64_t time_end) {
  Query q;
  q.time_start = time_start;
  q.time_end = time_end;
  uint64_t domain = profile_.schema.DomainSize();
  auto width = static_cast<uint64_t>(selectivity * static_cast<double>(domain));
  if (width == 0) width = 1;
  // Anchor ranges near a data cluster (with jitter) so that the requested
  // selectivity translates into actual data coverage, as in the paper's
  // query workloads.
  const auto& anchor = centers_[query_rng_.Below(centers_.size())];
  for (uint32_t d = 0; d < profile_.range_dims_per_query; ++d) {
    uint64_t jitter = query_rng_.Below(width + 1);
    uint64_t lo = anchor[d] > width / 2 + jitter
                      ? anchor[d] - width / 2 - jitter
                      : 0;
    if (lo > domain - width) lo = domain - width;
    q.ranges.push_back(core::RangePredicate{d, lo, lo + width - 1});
  }
  std::vector<std::string> clause;
  while (clause.size() < clause_size) {
    std::string kw = KeywordOf(keyword_sampler_.Sample(&query_rng_));
    if (std::find(clause.begin(), clause.end(), kw) == clause.end()) {
      clause.push_back(std::move(kw));
    }
  }
  q.keyword_cnf.push_back(std::move(clause));
  return q;
}

Query DatasetGenerator::MakeDefaultQuery(uint64_t time_start,
                                         uint64_t time_end) {
  return MakeQuery(profile_.default_selectivity, profile_.default_clause_size,
                   time_start, time_end);
}

}  // namespace vchain::workload

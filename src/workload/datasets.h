// Synthetic workloads mirroring the paper's three evaluation datasets (§9).
//
// The originals (Foursquare check-ins, Kaggle hourly weather, a 14-day
// Ethereum transaction extract) are not redistributable offline, so each
// generator reproduces the *statistics that drive query/verification cost*:
// objects per block, numeric dimensionality and spread, keywords per object,
// vocabulary size and skew (Zipf), and cross-object similarity. Everything
// is seeded and deterministic. See DESIGN.md "Substitutions".
//
//   4SQ — 2-d (longitude, latitude) points clustered around urban hot
//         spots; ~2 venue keywords from a skewed vocabulary; ~125 checkins
//         per 30 s block in the paper, scaled by `objects_per_block`.
//   WX  — 7 numeric sensors (temperature, humidity, ...) per city, 36
//         objects per hourly block; ~2 skewed weather-description keywords;
//         high cross-object similarity (neighboring cities, stable weather).
//   ETH — 1 numeric amount (heavy-tailed); ~2 address keywords drawn from a
//         heavy-tailed account popularity distribution; ~12 transactions
//         per 15 s block; low cross-object similarity.

#ifndef VCHAIN_WORKLOAD_DATASETS_H_
#define VCHAIN_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "chain/object.h"
#include "chain/transform.h"
#include "common/rand.h"
#include "core/query.h"

namespace vchain::workload {

using chain::NumericSchema;
using chain::Object;
using core::Query;

enum class DatasetKind { k4SQ, kWX, kETH };

const char* DatasetName(DatasetKind kind);

/// Per-dataset shape parameters (paper defaults; benches scale them down).
struct DatasetProfile {
  DatasetKind kind = DatasetKind::k4SQ;
  NumericSchema schema;
  size_t objects_per_block = 16;
  uint64_t block_interval = 30;  ///< seconds between blocks
  uint64_t base_time = 1'000'000;
  size_t keywords_per_object = 2;
  size_t vocabulary = 512;       ///< distinct keyword universe
  double zipf_skew = 0.9;
  /// Default evaluation knobs from §9: numeric-range selectivity and the
  /// size of the disjunctive Boolean clause.
  double default_selectivity = 0.10;
  size_t default_clause_size = 3;
  size_t range_dims_per_query = 1;
};

/// Paper-faithful profiles (with a scale knob for block fan-out).
DatasetProfile Profile4SQ(size_t objects_per_block = 16);
DatasetProfile ProfileWX(size_t objects_per_block = 16);
DatasetProfile ProfileETH(size_t objects_per_block = 8);
DatasetProfile ProfileFor(DatasetKind kind, size_t objects_per_block);

/// Zipf-distributed sampler over [0, n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew);
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

/// Deterministic dataset generator: streams blocks of objects.
class DatasetGenerator {
 public:
  DatasetGenerator(const DatasetProfile& profile, uint64_t seed);

  /// Objects for block at the given height (timestamps filled in).
  std::vector<Object> NextBlock();

  /// A random query matching the profile's attribute shape: numeric ranges
  /// with roughly `selectivity` per-dimension coverage and one disjunctive
  /// keyword clause of `clause_size` vocabulary words (§9 defaults).
  Query MakeQuery(double selectivity, size_t clause_size,
                  uint64_t time_start, uint64_t time_end);
  Query MakeDefaultQuery(uint64_t time_start, uint64_t time_end);

  const DatasetProfile& profile() const { return profile_; }
  uint64_t TimestampOfBlock(uint64_t height) const {
    return profile_.base_time + height * profile_.block_interval;
  }

 private:
  std::string KeywordOf(size_t index) const;
  uint64_t SampleNumeric(uint32_t dim);

  DatasetProfile profile_;
  Rng rng_;
  Rng query_rng_;
  ZipfSampler keyword_sampler_;
  uint64_t next_height_ = 0;
  uint64_t next_id_ = 0;
  // Cluster centers (4SQ hot spots / WX city baselines).
  std::vector<std::vector<uint64_t>> centers_;
};

}  // namespace vchain::workload

#endif  // VCHAIN_WORKLOAD_DATASETS_H_
